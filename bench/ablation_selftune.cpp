// Ablation: first-come shared cache vs MRC-driven partitioning (DESIGN.md
// §13).
//
// Serves the same 4-job batch — [pagerank, bfs, sssp, spmv], all in flight
// at once over one store — twice through GraphService: once with the shared
// BlockCache left first-come-first-served (the §8 baseline), once with
// shadow miss-ratio tracking on and the scheduler tick re-splitting the
// cache budget across the running jobs. Reported per arm: batch makespan,
// per-job p95 wall, total bytes read from the store, the cache ledger, and
// how many re-partitions the hill-climb actually installed.
//
// This is a behavioural ablation, not a gated one: on a page-cache-backed
// CI runner the wall-clock delta is noise, and whether the climb installs a
// split depends on the jobs' overlap. The bench asserts only mechanism —
// every job completes in both arms and the partitioned arm really ran with
// a CachePartitionManager attached. CI smokes this at scale 10.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_support/harness.hpp"
#include "bench_support/report.hpp"
#include "husg/husg.hpp"
#include "util/timer.hpp"

using namespace husg;
using namespace husg::bench;

namespace {

struct BenchOptions {
  unsigned scale = 12;
  double degree = 8.0;
  std::uint32_t partitions = 4;
  std::string out_dir = ".";
  std::string data_dir;  ///< default: <out_dir>/ablation_selftune_data
};

int usage() {
  std::fprintf(stderr,
               "usage: ablation_selftune [--scale N] [--degree D]"
               " [--partitions P] [--out-dir DIR] [--data-dir DIR]\n");
  return 2;
}

/// On-disk adjacency bytes of both block grids (cache sizing base).
std::uint64_t edge_bytes(const StoreMeta& m) {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < m.p(); ++i) {
    for (std::uint32_t j = 0; j < m.p(); ++j) {
      total += m.out_block(i, j).adj_bytes + m.in_block(i, j).adj_bytes;
    }
  }
  return total;
}

/// The fixed 4-job batch: one heavy iterative job (PageRank, enough sweeps
/// to live across several re-partition ticks) plus three lighter jobs with
/// different reuse patterns.
std::vector<JobSpec> batch(VertexId source) {
  const ServiceAlgo cycle[] = {ServiceAlgo::kPageRank, ServiceAlgo::kBfs,
                               ServiceAlgo::kSssp, ServiceAlgo::kSpmv};
  std::vector<JobSpec> jobs;
  for (ServiceAlgo algo : cycle) {
    JobSpec spec;
    spec.name = to_string(algo);
    spec.algo = algo;
    spec.source = source;
    if (algo == ServiceAlgo::kPageRank) spec.max_iterations = 40;
    if (algo == ServiceAlgo::kSpmv) spec.max_iterations = 20;
    jobs.push_back(spec);
  }
  return jobs;
}

struct ArmResult {
  double makespan = 0;
  double p95_wall = 0;
  ServiceStats stats;
  std::uint64_t repartitions = 0;
};

ArmResult run_arm(const DualBlockStore& store, std::uint64_t cache_budget,
                  VertexId source, bool partitioned) {
  ServiceOptions opts;
  opts.max_concurrent_jobs = 4;
  opts.max_queued_jobs = 8;
  opts.threads_per_job = 2;
  opts.cache_budget_bytes = cache_budget;
  opts.device = bench_ssd();
  opts.cache_partition = partitioned;
  // Tick fast so short CI jobs still see several climbs; track every block
  // (the stores here are small, so full sampling is cheap and exact).
  opts.repartition_interval_ms = 10;
  opts.shadow.sample_rate = 1.0;
  GraphService svc(store, opts);
  HUSG_CHECK(partitioned == (svc.partition() != nullptr),
             "cache_partition flag did not take effect");

  ArmResult arm;
  Timer timer;
  std::vector<JobTicket> tickets;
  for (JobSpec& spec : batch(source)) tickets.push_back(svc.submit(spec));
  for (JobTicket& ticket : tickets) {
    const JobResult& res = ticket.result.get();
    HUSG_CHECK(res.status == JobStatus::kCompleted,
               "selftune bench job failed: " + res.error);
  }
  arm.makespan = timer.seconds();
  arm.stats = svc.stats();
  arm.p95_wall = arm.stats.job_wall.p95_seconds;
  if (const CachePartitionManager* pm = svc.partition()) {
    arm.repartitions = pm->repartitions_applied();
  }
  svc.shutdown();
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt;
  for (int k = 1; k < argc; ++k) {
    std::string flag = argv[k];
    if (k + 1 >= argc) return usage();
    std::string val = argv[++k];
    if (flag == "--scale") {
      opt.scale = static_cast<unsigned>(std::stoul(val));
    } else if (flag == "--degree") {
      opt.degree = std::stod(val);
    } else if (flag == "--partitions") {
      opt.partitions = static_cast<std::uint32_t>(std::stoul(val));
    } else if (flag == "--out-dir") {
      opt.out_dir = val;
    } else if (flag == "--data-dir") {
      opt.data_dir = val;
    } else {
      return usage();
    }
  }
  if (opt.data_dir.empty()) {
    opt.data_dir = opt.out_dir + "/ablation_selftune_data";
  }

  banner("Ablation: self-tuning cache partition",
         "repo extension, not a paper figure (DESIGN.md section 13); 4-job "
         "serve sweep, first-come vs MRC-partitioned shared cache");

  EdgeList graph = gen::rmat(opt.scale, opt.degree, /*seed=*/42);
  std::filesystem::path dir = std::filesystem::path(opt.data_dir) /
                              ("scale" + std::to_string(opt.scale));
  std::filesystem::create_directories(dir);
  DualBlockStore::build(graph, dir / "store", StoreOptions{opt.partitions});
  DualBlockStore store = DualBlockStore::open(dir / "store");
  // Half the edge bytes: small enough that the jobs contend, large enough
  // that a good split matters.
  const std::uint64_t cache_budget = edge_bytes(store.meta()) / 2;
  const VertexId source = 0;
  std::printf("  cache budget: %s (half the edge bytes)\n",
              human_bytes(cache_budget).c_str());

  JsonReport report("ablation_selftune");
  Table t({"arm", "makespan s", "p95 job s", "read MB", "hit rate",
           "cross-job hits", "repartitions"});
  for (bool partitioned : {false, true}) {
    ArmResult arm = run_arm(store, cache_budget, source, partitioned);
    const ServiceStats& st = arm.stats;
    const std::string label = partitioned ? "mrc-partitioned" : "first-come";
    t.add_row({label, fmt(arm.makespan, 3), fmt(arm.p95_wall, 3),
               fmt(static_cast<double>(st.io.total_read_bytes()) / 1e6, 2),
               fmt(100.0 * st.cache.hit_rate(), 1) + "%",
               std::to_string(st.cache.cross_job_hits),
               std::to_string(arm.repartitions)});
    // Aggregate row: the whole batch as one measurement for this arm.
    RunStats agg;
    agg.total_io = st.io;
    agg.cache = st.cache;
    agg.edges_processed = st.edges_processed;
    agg.wall_seconds = arm.makespan;
    report.add_run(label, agg,
                   {{"repartitions_applied", arm.repartitions},
                    {"jobs_completed", st.completed}},
                   {{"job_p95_wall_seconds", arm.p95_wall}});
  }
  std::printf("\n");
  t.print();
  report.write(opt.out_dir);
  return 0;
}
