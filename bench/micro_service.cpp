// Micro-bench: concurrent graph service (DESIGN.md §8).
//
// Sweeps 1/2/4/8 jobs in flight over one GraphService on twitter-sim. Every
// level submits the same 8-job batch — two rounds of [pagerank, bfs, sssp,
// spmv] — so the work is fixed and only the concurrency varies. Reported per
// level: batch makespan, per-job latency, aggregate throughput over the
// shared store, and the shared block cache's ledger including cross-job
// hits (a hit on a block some other job faulted in), the quantity that
// makes one cache per service cheaper than one cache per job.
#include <cstdio>
#include <vector>

#include "bench_support/harness.hpp"
#include "bench_support/report.hpp"
#include "husg/husg.hpp"
#include "util/timer.hpp"

using namespace husg;
using namespace husg::bench;

namespace {

/// On-disk adjacency bytes of both block grids (cache sizing base).
std::uint64_t edge_bytes(const StoreMeta& m) {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < m.p(); ++i) {
    for (std::uint32_t j = 0; j < m.p(); ++j) {
      total += m.out_block(i, j).adj_bytes + m.in_block(i, j).adj_bytes;
    }
  }
  return total;
}

/// The fixed 8-job batch. SSSP runs on the directed store's unit weights;
/// WCC is omitted because the service holds one directed store.
std::vector<JobSpec> batch(VertexId source) {
  const ServiceAlgo cycle[] = {ServiceAlgo::kPageRank, ServiceAlgo::kBfs,
                               ServiceAlgo::kSssp, ServiceAlgo::kSpmv};
  std::vector<JobSpec> jobs;
  for (int round = 0; round < 2; ++round) {
    for (ServiceAlgo algo : cycle) {
      JobSpec spec;
      spec.name = std::string(to_string(algo)) + "#" +
                  std::to_string(round + 1);
      spec.algo = algo;
      spec.source = source;
      jobs.push_back(spec);
    }
  }
  return jobs;
}

}  // namespace

int main() {
  banner("micro: concurrent graph service",
         "one store + one shared cache serving 1/2/4/8 jobs in flight");
  Dataset ds(dataset("twitter-sim"));
  const DualBlockStore& store = ds.hus_store(GraphVariant::kDirected);
  const std::uint64_t cache_budget = edge_bytes(store.meta()) / 2;
  const VertexId source = ds.traversal_source();
  std::printf("  cache budget: %s (half the edge bytes)\n",
              human_bytes(cache_budget).c_str());

  JsonReport report("service");
  Table t({"jobs in flight", "makespan s", "mean job s", "max job s",
           "Medges/s", "hit rate", "cross-job hits"});
  for (std::size_t level : {1u, 2u, 4u, 8u}) {
    ServiceOptions opts;
    opts.max_concurrent_jobs = level;
    opts.max_queued_jobs = 16;
    opts.threads_per_job = 2;
    opts.cache_budget_bytes = cache_budget;
    opts.device = bench_ssd();
    GraphService svc(store, opts);

    Timer timer;
    std::vector<JobTicket> tickets;
    for (JobSpec& spec : batch(source)) tickets.push_back(svc.submit(spec));
    std::vector<double> latencies;
    double latency_sum = 0, latency_max = 0;
    for (JobTicket& ticket : tickets) {
      const JobResult& res = ticket.result.get();
      HUSG_CHECK(res.status == JobStatus::kCompleted,
                 "service bench job failed: " + res.error);
      latencies.push_back(res.wall_seconds);
      latency_sum += res.wall_seconds;
      latency_max = std::max(latency_max, res.wall_seconds);
      report.add_run("jobs=" + std::to_string(level) + "/" + res.name,
                     res.stats);
    }
    const double makespan = timer.seconds();
    const ServiceStats st = svc.stats();
    svc.shutdown();

    const std::string label = "jobs=" + std::to_string(level);
    print_series(label + " per-job latency", latencies, "s");
    t.add_row({std::to_string(level), fmt(makespan, 3),
               fmt(latency_sum / static_cast<double>(tickets.size()), 3),
               fmt(latency_max, 3),
               fmt(static_cast<double>(st.edges_processed) / makespan / 1e6, 1),
               fmt(100.0 * st.cache.hit_rate(), 1) + "%",
               std::to_string(st.cache.cross_job_hits)});
    // Aggregate row: the whole batch as one measurement at this level.
    RunStats agg;
    agg.total_io = st.io;
    agg.cache = st.cache;
    agg.edges_processed = st.edges_processed;
    agg.wall_seconds = makespan;
    report.add_run(label, agg);
  }
  std::printf("\n");
  t.print();
  report.write();
  return 0;
}
