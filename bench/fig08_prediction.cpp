// Figure 8: effect of the I/O-based performance prediction method.
//
// Runs BFS and WCC on UKunion under ROP-only, COP-only and Hybrid, and
// prints the per-iteration modeled runtime of each. Reproduction claims
// (paper §4.3):
//   * COP's per-iteration time is roughly constant (it always streams
//     everything);
//   * ROP's time tracks the active-vertex count and crosses above COP in the
//     dense middle iterations;
//   * Hybrid tracks the lower envelope of the two curves in most iterations
//     (mispredictions cluster near the crossover).
#include <algorithm>
#include <cstdio>

#include "bench_support/harness.hpp"
#include "bench_support/report.hpp"
#include "obs/calibrate.hpp"

using namespace husg;
using namespace husg::bench;

namespace {

std::vector<double> per_iteration_seconds(const RunStats& stats) {
  std::vector<double> out;
  for (const auto& it : stats.iterations) out.push_back(it.modeled_seconds());
  return out;
}

void run_algo(Dataset& ds, AlgoKind algo, JsonReport& report) {
  std::printf("\n--- %s on ukunion-sim ---\n", to_string(algo));
  std::vector<double> series[3];
  const SystemKind kModes[] = {SystemKind::kHusRop, SystemKind::kHusCop,
                               SystemKind::kHusHybrid};
  const char* kNames[] = {"ROP", "COP", "Hybrid"};
  RunStats hybrid_stats;
  DeviceProfile device;
  PredictorFlavor flavor = PredictorFlavor::kDeviceExact;
  double alpha = 0.05;
  for (int m = 0; m < 3; ++m) {
    RunConfig cfg;
    cfg.system = kModes[m];
    cfg.algo = algo;
    RunOutcome r = run_system(ds, cfg);
    series[m] = per_iteration_seconds(r.stats);
    print_series(kNames[m], series[m], "modeled s/iter");
    if (kModes[m] == SystemKind::kHusHybrid) {
      hybrid_stats = std::move(r.stats);
      device = cfg.device;
      flavor = cfg.predictor;
      alpha = cfg.alpha;
    }
  }

  // Predictor accuracy: pair each hybrid interval decision's predicted
  // C_rop/C_cop with the observed traffic of executing it (priced by the
  // same device profile) and report the symmetric relative error.
  obs::PredictorAudit audit = obs::PredictorAudit::from_run(hybrid_stats,
                                                            device);
  obs::AuditSummary acc = audit.summarize();
  std::printf("predictor accuracy (hybrid run):\n");
  std::printf("  decisions=%zu evaluated=%zu\n", acc.entries, acc.evaluated);
  std::printf("  mean rel error %.3f (rop %.3f, cop %.3f), max %.3f\n",
              acc.mean_rel_error, acc.mean_rel_error_rop,
              acc.mean_rel_error_cop, acc.max_rel_error);
  // Calibration split (DESIGN.md §13): re-predict every recorded decision
  // under the preset profile and under the live-calibrated one, scored
  // against observed wall seconds. The preset models a bench HDD while CI
  // reads hit the page cache, so the calibrated profile should explain the
  // observed wall time far better — that gap is the whole point of online
  // calibration.
  const obs::DeviceCalibrator& cal = obs::DeviceCalibrator::instance();
  const obs::CalibrationSnapshot snap = cal.snapshot();
  obs::AuditSummary preset_acc =
      obs::PredictorAudit::from_run_wall(hybrid_stats, device, flavor, alpha)
          .summarize();
  obs::AuditSummary cal_acc =
      obs::PredictorAudit::from_run_wall(hybrid_stats, cal.calibrated(device),
                                         flavor, alpha)
          .summarize();
  std::printf(
      "wall-clock audit (hybrid run, %llu rand + %llu seq samples, "
      "calibration %s): mean rel error preset=%.3f calibrated=%.3f "
      "(%zu decisions)\n",
      static_cast<unsigned long long>(snap.rand_samples),
      static_cast<unsigned long long>(snap.seq_samples),
      snap.warm ? "warm" : "cold", preset_acc.mean_rel_error,
      cal_acc.mean_rel_error, preset_acc.evaluated);
  report.add_run(std::string(to_string(algo)) + "/hybrid", hybrid_stats, acc);
  report.add_run(
      std::string(to_string(algo)) + "/hybrid/wall_audit", hybrid_stats,
      {{"wall_audit_decisions", preset_acc.evaluated}},
      {{"wall_audit_preset_rel_error", preset_acc.mean_rel_error},
       {"wall_audit_calibrated_rel_error", cal_acc.mean_rel_error}});

  // Shape checks over the common iteration range.
  std::size_t iters =
      std::min({series[0].size(), series[1].size(), series[2].size()});
  int hybrid_tracks_best = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    double best = std::min(series[0][i], series[1][i]);
    if (series[2][i] <= best * 1.25 + 1e-9) ++hybrid_tracks_best;
  }
  double cop_min = *std::min_element(series[1].begin(), series[1].end());
  double cop_max = *std::max_element(series[1].begin(), series[1].end());
  bool rop_crosses = false;
  for (std::size_t i = 0; i < iters; ++i) {
    if (series[0][i] > series[1][i] * 2) rop_crosses = true;
  }
  std::printf("shape checks:\n");
  std::printf("  COP roughly constant (max/min %.2f)\n",
              cop_min > 0 ? cop_max / cop_min : 0.0);
  std::printf("  ROP exceeds 2x COP somewhere (random-I/O storm): %s\n",
              rop_crosses ? "yes" : "no");
  std::printf("  Hybrid within 25%% of the best model: %d / %zu iterations\n",
              hybrid_tracks_best, iters);
}

}  // namespace

int main() {
  banner("Figure 8: per-iteration runtime of ROP / COP / Hybrid (UKunion)",
         "hybrid selects the optimal model in most iterations; wrong "
         "predictions cluster near the ROP/COP crossover");
  Dataset ds(dataset("ukunion-sim"));
  // Observe-mode calibration on every op: the wall-clock audit below needs a
  // warm measured profile even on the bench's small datasets. Observe never
  // changes decisions, so the figure's modeled series are untouched.
  obs::DeviceCalibrator::instance().arm(DeviceProfile::sata_ssd(),
                                        obs::CalibrationMode::kObserve,
                                        /*sample_every=*/1);
  JsonReport report("fig08_prediction");
  run_algo(ds, AlgoKind::kBfs, report);
  run_algo(ds, AlgoKind::kWcc, report);
  obs::DeviceCalibrator::instance().disarm();
  report.write();
  return 0;
}
