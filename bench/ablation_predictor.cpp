// Ablation: the I/O-based performance prediction method (§3.4) and the
// engine's design knobs.
//
// (1) Predictor accuracy vs oracle. Under Jacobi sync the frontier sequence
//     is identical for ROP-only, COP-only and Hybrid, so the per-iteration
//     oracle is simply argmin of the forced-mode per-iteration times. We
//     report how often each predictor flavor (the paper's closed formulas
//     vs the device-exact refinement the paper's §4.3 calls for) picks the
//     oracle's model.
// (2) α sweep: the shortcut threshold's effect on total time.
// (3) Engine extensions the paper does not evaluate: coalesced ROP point
//     loads and COP block skipping.
#include <algorithm>
#include <cstdio>

#include "bench_support/harness.hpp"
#include "husg/husg.hpp"
#include "bench_support/report.hpp"

using namespace husg;
using namespace husg::bench;

namespace {

std::vector<double> iter_seconds(const RunStats& s) {
  std::vector<double> out;
  for (const auto& it : s.iterations) out.push_back(it.modeled_seconds());
  return out;
}

void predictor_accuracy(Dataset& ds, AlgoKind algo,
                        const DeviceProfile& device, const char* label) {
  std::printf("\n--- predictor accuracy: %s on %s (%s) ---\n",
              to_string(algo), ds.spec().name.c_str(), label);
  RunConfig cfg;
  cfg.algo = algo;
  cfg.device = device;
  cfg.system = SystemKind::kHusRop;
  auto rop = iter_seconds(run_system(ds, cfg).stats);
  cfg.system = SystemKind::kHusCop;
  auto cop = iter_seconds(run_system(ds, cfg).stats);

  for (PredictorFlavor flavor :
       {PredictorFlavor::kPaper, PredictorFlavor::kDeviceExact}) {
    cfg.system = SystemKind::kHusHybrid;
    cfg.predictor = flavor;
    RunOutcome hybrid = run_system(ds, cfg);
    std::size_t iters = std::min(
        {rop.size(), cop.size(), hybrid.stats.iterations.size()});
    int correct = 0;
    for (std::size_t i = 0; i < iters; ++i) {
      bool oracle_rop = rop[i] <= cop[i];
      bool chose_rop = hybrid.stats.iterations[i].decisions.front().used_rop;
      if (oracle_rop == chose_rop) ++correct;
    }
    std::printf(
        "  %-12s: %2d/%zu oracle-matching decisions, total %.2f s "
        "(oracle lower bound %.2f s)\n",
        flavor == PredictorFlavor::kPaper ? "paper" : "device-exact", correct,
        iters, hybrid.modeled_seconds, [&] {
          double t = 0;
          for (std::size_t i = 0; i < iters; ++i) t += std::min(rop[i], cop[i]);
          return t;
        }());
  }
}

void alpha_sweep(Dataset& ds) {
  std::printf("\n--- alpha sweep (WCC on %s) ---\n", ds.spec().name.c_str());
  Table t({"alpha", "modeled s", "I/O GB"});
  for (double alpha : {0.01, 0.05, 0.2, 1.0}) {
    RunConfig cfg;
    cfg.algo = AlgoKind::kWcc;
    cfg.alpha = alpha;
    RunOutcome r = run_system(ds, cfg);
    t.add_row({fmt(alpha), fmt(r.modeled_seconds), fmt(r.io_gb, 3)});
  }
  t.print();
  std::printf("  (paper sets alpha = 5%% of |V|)\n");
}

void engine_extensions(Dataset& ds) {
  std::printf("\n--- engine extensions (BFS on %s) ---\n",
              ds.spec().name.c_str());
  const DualBlockStore& store = ds.hus_store(GraphVariant::kDirected);
  BfsProgram bfs{.source = ds.traversal_source()};
  auto run_with = [&](bool coalesce, bool skip_blocks, UpdateMode mode,
                      bool file_backed = true) {
    EngineOptions o;
    o.mode = mode;
    o.device = bench_hdd();
    o.coalesce_rop_loads = coalesce;
    o.cop_skip_inactive_blocks = skip_blocks;
    o.file_backed_values = file_backed;
    Engine e(store, o);
    auto r = e.run(bfs, Frontier::single(store.meta(), bfs.source,
                                         store.out_degrees()));
    return r.stats;
  };
  Table t({"configuration", "modeled s", "random ops", "I/O GB"});
  {
    auto s = run_with(false, false, UpdateMode::kRop);
    t.add_row({"ROP, per-vertex loads (paper)",
               fmt(s.modeled_seconds()),
               std::to_string(s.total_io.rand_read_ops),
               fmt(gb(s.total_io.total_bytes()), 3)});
  }
  {
    auto s = run_with(true, false, UpdateMode::kRop);
    t.add_row({"ROP, coalesced loads (extension)",
               fmt(s.modeled_seconds()),
               std::to_string(s.total_io.rand_read_ops),
               fmt(gb(s.total_io.total_bytes()), 3)});
  }
  {
    auto s = run_with(false, false, UpdateMode::kCop);
    t.add_row({"COP, stream all blocks (paper)", fmt(s.modeled_seconds()),
               std::to_string(s.total_io.rand_read_ops),
               fmt(gb(s.total_io.total_bytes()), 3)});
  }
  {
    auto s = run_with(false, true, UpdateMode::kCop);
    t.add_row({"COP, skip inactive blocks (extension)",
               fmt(s.modeled_seconds()),
               std::to_string(s.total_io.rand_read_ops),
               fmt(gb(s.total_io.total_bytes()), 3)});
  }
  {
    // FlashGraph/Graphene-style semi-external configuration (paper §5):
    // vertex values pinned in memory, only edges on disk.
    auto s = run_with(false, false, UpdateMode::kHybrid,
                      /*file_backed=*/false);
    t.add_row({"Hybrid, semi-external vertex values",
               fmt(s.modeled_seconds()),
               std::to_string(s.total_io.rand_read_ops),
               fmt(gb(s.total_io.total_bytes()), 3)});
  }
  {
    auto s = run_with(false, false, UpdateMode::kHybrid);
    t.add_row({"Hybrid, out-of-core vertex values (paper)",
               fmt(s.modeled_seconds()),
               std::to_string(s.total_io.rand_read_ops),
               fmt(gb(s.total_io.total_bytes()), 3)});
  }
  {
    // Delta-varint compressed in-blocks (extension): COP streams fewer
    // bytes at identical results.
    auto dir = std::filesystem::temp_directory_path() / "husg_abl_comp";
    remove_tree(dir);
    StoreOptions copts{ds.p()};
    copts.codec = BlockCodecKind::kDeltaVarint;
    auto cstore = DualBlockStore::build(
        ds.graph(GraphVariant::kDirected), dir, copts);
    EngineOptions o;
    o.mode = UpdateMode::kCop;
    o.device = bench_hdd();
    Engine e(cstore, o);
    auto r = e.run(bfs, Frontier::single(cstore.meta(), bfs.source,
                                         cstore.out_degrees()));
    t.add_row({"COP, varint-compressed in-blocks (extension)",
               fmt(r.stats.modeled_seconds()),
               std::to_string(r.stats.total_io.rand_read_ops),
               fmt(gb(r.stats.total_io.total_bytes()), 3)});
    remove_tree(dir);
  }
  t.print();
}

}  // namespace

int main() {
  banner("Ablation: I/O-based performance prediction and engine knobs",
         "paper §3.4/§4.3 — predictor vs oracle, alpha, and the finer-"
         "grained refinements the paper suggests as future work");
  Dataset ds(dataset("ukunion-sim"));
  // At the scale-matched device both flavors should track the oracle; at the
  // raw laptop-scale HDD the paper's closed formula (fixed-request-size
  // T_random) misprices ROP badly — exactly the sensitivity §4.3 alludes to.
  predictor_accuracy(ds, AlgoKind::kBfs, bench_hdd(), "scale-matched HDD");
  predictor_accuracy(ds, AlgoKind::kWcc, bench_hdd(), "scale-matched HDD");
  predictor_accuracy(ds, AlgoKind::kBfs, DeviceProfile::hdd7200(),
                     "raw HDD, unmatched scale");
  alpha_sweep(ds);
  engine_extensions(ds);
  return 0;
}
