// Figure 10: effect of the number of threads on performance.
//
// (a) PageRank on the in-memory-sized graph (paper: LiveJournal; here the
//     smaller lj-sim stands in): HUS-Graph and GridGraph scale with threads;
//     GraphChi's deterministic parallelism flattens early.
// (b) BFS on the large web graph (UK2007): all three systems are disk-bound,
//     so thread count matters much less.
//
// This host has one physical core, so the reported numbers are the modeled
// time (exact measured I/O through the device model + the CPU model with
// each engine's parallel-efficiency cap, see DESIGN.md). The structural
// claim — who scales and where scaling stops mattering — comes from those
// measured components.
#include <cstdio>

#include "bench_support/harness.hpp"
#include "bench_support/report.hpp"

using namespace husg;
using namespace husg::bench;

namespace {

void sweep(Dataset& ds, AlgoKind algo, const DeviceProfile& device,
           const char* label) {
  std::printf("\n--- %s ---\n", label);
  const std::size_t kThreads[] = {1, 2, 4, 8, 16};
  const SystemKind kSystems[] = {SystemKind::kHusHybrid, SystemKind::kGraphChi,
                                 SystemKind::kGridGraph};
  Table t({"threads", "HUS-Graph", "GraphChi", "GridGraph"});
  double first[3] = {0, 0, 0}, last[3] = {0, 0, 0};
  for (std::size_t ti = 0; ti < std::size(kThreads); ++ti) {
    std::vector<std::string> row{std::to_string(kThreads[ti])};
    for (int s = 0; s < 3; ++s) {
      RunConfig cfg;
      cfg.system = kSystems[s];
      cfg.algo = algo;
      cfg.threads = kThreads[ti];
      cfg.device = device;
      double secs = run_system(ds, cfg).modeled_seconds;
      if (ti == 0) first[s] = secs;
      last[s] = secs;
      row.push_back(fmt(secs, 3) + " s");
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("speedup 1->16 threads: HUS %.2fx, GraphChi %.2fx, GridGraph "
              "%.2fx\n",
              first[0] / last[0], first[1] / last[1], first[2] / last[2]);
}

}  // namespace

int main() {
  banner("Figure 10: effect of the number of threads",
         "in-memory-scale graph: HUS/GridGraph scale, GraphChi flattens; "
         "disk-bound web graph: threads matter little");

  {
    // (a) PageRank on the small social graph with a fast device, where CPU
    // is a meaningful fraction of the runtime.
    Dataset ds(dataset("lj-sim"));
    sweep(ds, AlgoKind::kPageRank, bench_nvme(),
          "(a) PageRank on lj-sim (in-memory scale, NVMe)");
  }
  {
    // (b) BFS on the big web graph on HDD: I/O dominates.
    Dataset ds(dataset("uk-sim"));
    sweep(ds, AlgoKind::kBfs, bench_hdd(),
          "(b) BFS on uk-sim (disk-bound, HDD)");
  }
  return 0;
}
