// Figure 9: I/O amount comparison (PageRank, BFS, SSSP on Twitter2010,
// SK2005 and UK2007) for HUS-Graph, GraphChi-like and GridGraph-like.
//
// Reproduction claims (paper §4.4):
//   * PageRank: HUS I/O ~3.9x smaller than GraphChi and ~1.9x smaller than
//     GridGraph (compact CSR blocks vs edge lists; GraphChi also rewrites
//     edge values);
//   * BFS/SSSP: ~18.4x / ~8.8x smaller (selective access of active edges);
//   * GraphChi writes a large amount of intermediate data, GridGraph and
//     HUS-Graph write only vertex values.
#include <cstdio>

#include "bench_support/harness.hpp"
#include "bench_support/report.hpp"

using namespace husg;
using namespace husg::bench;

int main() {
  banner("Figure 9: I/O amount comparison",
         "PageRank: 3.9x / 1.9x less I/O than GraphChi / GridGraph; "
         "BFS+SSSP: 18.4x / 8.8x less");

  const AlgoKind kAlgos[] = {AlgoKind::kPageRank, AlgoKind::kBfs,
                             AlgoKind::kSssp};
  double pr_chi_ratio = 0, pr_grid_ratio = 0;
  double trav_chi_ratio = 0, trav_grid_ratio = 0;
  int pr_n = 0, trav_n = 0;
  bool chi_write_heavy = true;

  for (const char* name : {"twitter-sim", "sk-sim", "uk-sim"}) {
    Dataset ds(dataset(name));
    std::printf("\n--- %s (%s) ---\n", name, ds.spec().paper_name.c_str());
    Table t({"algorithm", "HUS GB", "GraphChi GB", "GridGraph GB",
             "chi/HUS", "grid/HUS"});
    for (AlgoKind algo : kAlgos) {
      RunOutcome r[3];
      const SystemKind kSystems[] = {SystemKind::kHusHybrid,
                                     SystemKind::kGraphChi,
                                     SystemKind::kGridGraph};
      for (int s = 0; s < 3; ++s) {
        RunConfig cfg;
        cfg.system = kSystems[s];
        cfg.algo = algo;
        r[s] = run_system(ds, cfg);
      }
      double chi_ratio = r[1].io_gb / r[0].io_gb;
      double grid_ratio = r[2].io_gb / r[0].io_gb;
      if (algo == AlgoKind::kPageRank) {
        pr_chi_ratio += chi_ratio;
        pr_grid_ratio += grid_ratio;
        ++pr_n;
      } else {
        trav_chi_ratio += chi_ratio;
        trav_grid_ratio += grid_ratio;
        ++trav_n;
      }
      // GraphChi rewrites edge values (∝ |E| per iteration); GridGraph and
      // HUS write only vertex values (∝ |V|·P per iteration at worst).
      chi_write_heavy &= r[1].stats.total_io.write_bytes >
                         1.5 * r[2].stats.total_io.write_bytes;
      t.add_row({to_string(algo), fmt(r[0].io_gb, 3), fmt(r[1].io_gb, 3),
                 fmt(r[2].io_gb, 3), fmt_ratio(chi_ratio),
                 fmt_ratio(grid_ratio)});
    }
    t.print();
  }

  std::printf("\nsummary (average ratios):\n");
  std::printf("  PageRank: GraphChi/HUS = %.1fx (paper 3.9x), GridGraph/HUS "
              "= %.1fx (paper 1.9x)\n",
              pr_chi_ratio / pr_n, pr_grid_ratio / pr_n);
  std::printf("  BFS+SSSP: GraphChi/HUS = %.1fx (paper 18.4x), GridGraph/HUS "
              "= %.1fx (paper 8.8x)\n",
              trav_chi_ratio / trav_n, trav_grid_ratio / trav_n);
  std::printf("shape checks:\n");
  std::printf("  HUS always reads least, GraphChi most: %s\n",
              (pr_chi_ratio / pr_n > pr_grid_ratio / pr_n &&
               pr_grid_ratio / pr_n > 1.0)
                  ? "yes"
                  : "NO");
  std::printf("  traversal I/O advantage exceeds PageRank advantage: %s\n",
              (trav_grid_ratio / trav_n > pr_grid_ratio / pr_n) ? "yes" : "NO");
  std::printf("  GraphChi writes substantially more intermediate data than "
              "GridGraph: %s\n",
              chi_write_heavy ? "yes" : "NO");
  return 0;
}
