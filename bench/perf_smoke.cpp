// Deterministic performance smoke bench for the regression gate
// (tools/bench_regress.py). Unlike the figure/table benches this one is not
// reproducing a paper claim: it pins a tiny fixed workload whose I/O and
// cache counters are bit-stable across runs of the same binary, so a diff
// against bench/baselines/perf_smoke.json flags any change in engine
// traffic. Everything that could wobble is nailed down: fixed R-MAT seed,
// one thread (two pool workers racing a cold block would both read it),
// in-memory vertex values, and a modeled device so modeled_seconds is a
// pure function of the byte counts. Only wall_seconds varies run to run;
// the comparator treats it as advisory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "husg/husg.hpp"

#include "bench_support/report.hpp"
#include "obs/heatmap.hpp"
#include "obs/iotrace.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

using namespace husg;
using namespace husg::bench;

namespace {

struct SmokeOptions {
  unsigned scale = 11;
  double degree = 8.0;
  std::uint32_t partitions = 4;
  std::string out_dir = ".";
  std::string data_dir;     ///< default: <out_dir>/perf_smoke_data
  std::string iotrace_out;  ///< record the cache run's block I/O trace here
};

int usage() {
  std::fprintf(stderr,
               "usage: perf_smoke [--scale N] [--degree D] [--partitions P]"
               " [--out-dir DIR] [--data-dir DIR] [--iotrace-out FILE]\n");
  return 2;
}

EngineOptions base_options() {
  EngineOptions o;
  o.threads = 1;
  o.file_backed_values = false;
  o.device = DeviceProfile::sata_ssd();
  return o;
}

/// Fixed CPU spin the profiler-overhead run times with the profiler off and
/// then armed. The iteration count is pinned (not time-calibrated) so both
/// arms execute the identical instruction stream; only the SIGPROF handler
/// differs between them.
double spin_wall_seconds() {
  constexpr std::uint64_t kIters = 60'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  volatile std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < kIters; ++i) acc = acc * 6364136223846793005ull + i;
  (void)acc;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Min-of-N wall time for the spin (min is robust to scheduler noise on
/// shared CI runners; the overhead ceiling in bench_regress.py is 5% while
/// the real SIGPROF cost at 997 Hz is well under 1%).
double spin_best_of(int reps) {
  double best = spin_wall_seconds();
  for (int r = 1; r < reps; ++r) {
    const double w = spin_wall_seconds();
    if (w < best) best = w;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  SmokeOptions opt;
  for (int k = 1; k < argc; ++k) {
    std::string flag = argv[k];
    if (k + 1 >= argc) return usage();
    std::string val = argv[++k];
    if (flag == "--scale") {
      opt.scale = static_cast<unsigned>(std::stoul(val));
    } else if (flag == "--degree") {
      opt.degree = std::stod(val);
    } else if (flag == "--partitions") {
      opt.partitions = static_cast<std::uint32_t>(std::stoul(val));
    } else if (flag == "--out-dir") {
      opt.out_dir = val;
    } else if (flag == "--data-dir") {
      opt.data_dir = val;
    } else if (flag == "--iotrace-out") {
      opt.iotrace_out = val;
    } else {
      return usage();
    }
  }
  if (opt.data_dir.empty()) opt.data_dir = opt.out_dir + "/perf_smoke_data";

  banner("Perf smoke (regression gate)",
         "");  // not a paper figure: fixed workload for bench_regress.py
  std::printf("workload: rmat scale=%u degree=%.1f seed=42, P=%u, 1 thread\n",
              opt.scale, opt.degree, opt.partitions);

  EdgeList graph = gen::rmat(opt.scale, opt.degree, /*seed=*/42);
  std::filesystem::create_directories(opt.data_dir);
  DualBlockStore store = DualBlockStore::build(
      graph, std::filesystem::path(opt.data_dir) / "store",
      StoreOptions{opt.partitions});

  // Observability guard: the whole bench runs with the flight recorder armed
  // at its default budget. Recording is side-effect-free on engine traffic,
  // so every pinned counter in the JSON report must stay byte-identical to
  // the recorder-off baseline — bench_regress.py diffs the same
  // bench/baselines/perf_smoke.json either way.
  obs::FlightRecorder::instance().start();

  JsonReport report("perf_smoke");
  Table t({"run", "iters", "modeled s", "I/O MB", "rand ops", "hit rate"});
  // Heatmap totals ride along in the JSON report so bench_regress.py gates
  // cache behaviour (hits/misses/evictions per block grid), not just engine
  // byte counts. The heatmap is re-armed (zeroed) per run and cleared after
  // the totals are taken.
  auto heat_totals = [] {
    const obs::Heatmap& h = obs::Heatmap::instance();
    std::uint64_t reads = 0, hits = 0, misses = 0, evictions = 0;
    for (obs::HeatDir dir : {obs::HeatDir::kOut, obs::HeatDir::kIn}) {
      for (std::uint32_t i = 0; i < h.p(); ++i) {
        for (std::uint32_t j = 0; j < h.p(); ++j) {
          const obs::HeatCell c = h.cell(dir, i, j);
          reads += c.reads;
          hits += c.hits;
          misses += c.misses;
          evictions += c.evictions;
        }
      }
    }
    return std::vector<std::pair<std::string, std::uint64_t>>{
        {"heatmap_reads", reads},
        {"heatmap_hits", hits},
        {"heatmap_misses", misses},
        {"heatmap_evictions", evictions}};
  };
  // bytes/edge ratios (float-gated by bench_regress.py): read traffic per
  // processed edge, and the store's at-rest adjacency footprint per edge —
  // codec=none must keep both byte-identical to the pre-codec baseline.
  auto store_adj_bytes = [&store] {
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < store.meta().p(); ++i) {
      for (std::uint32_t j = 0; j < store.meta().p(); ++j) {
        total += store.meta().out_block(i, j).adj_bytes +
                 store.meta().in_block(i, j).adj_bytes;
      }
    }
    return total;
  };
  auto record = [&](const char* label, const RunStats& stats) {
    t.add_row({label, std::to_string(stats.iterations_run()),
               fmt(stats.modeled_seconds(), 4),
               fmt(static_cast<double>(stats.total_io.total_bytes()) / 1e6, 3),
               std::to_string(stats.total_io.rand_read_ops),
               fmt(100.0 * stats.cache.hit_rate(), 1) + "%"});
    const double edges = static_cast<double>(store.meta().num_edges);
    report.add_run(
        label, stats, heat_totals(),
        {{"read_bytes_per_edge",
          static_cast<double>(stats.total_io.total_read_bytes()) / edges},
         {"store_adj_bytes_per_edge",
          static_cast<double>(store_adj_bytes()) / (2.0 * edges)}});
    obs::Heatmap::instance().clear();
  };

  {
    EngineOptions o = base_options();
    o.max_iterations = 5;
    Engine e(store, o);
    PageRankProgram p;
    obs::Heatmap::instance().start(opt.partitions);
    record("pagerank/hybrid",
           e.run(p, Frontier::all(store.meta(), store.out_degrees())).stats);
  }
  {
    EngineOptions o = base_options();
    o.mode = UpdateMode::kCop;
    o.max_iterations = 5;
    Engine e(store, o);
    PageRankProgram p;
    obs::Heatmap::instance().start(opt.partitions);
    record("pagerank/cop",
           e.run(p, Frontier::all(store.meta(), store.out_degrees())).stats);
  }
  {
    EngineOptions o = base_options();
    Engine e(store, o);
    BfsProgram b{.source = 1};
    obs::Heatmap::instance().start(opt.partitions);
    record("bfs/hybrid",
           e.run(b, Frontier::single(store.meta(), 1, store.out_degrees()))
               .stats);
  }
  {
    // Cache path: ROP point loads against a budget that holds ~half the
    // out-blocks, exercising fill, hits, and evictions deterministically
    // (one thread keeps the CLOCK sweep order stable).
    std::uint64_t out_adj = 0;
    for (std::uint32_t i = 0; i < store.meta().p(); ++i) {
      for (std::uint32_t j = 0; j < store.meta().p(); ++j) {
        out_adj += store.meta().out_block(i, j).adj_bytes;
      }
    }
    EngineOptions o = base_options();
    o.mode = UpdateMode::kRop;
    o.max_iterations = 5;
    o.cache_budget_bytes = out_adj / 2;
    Engine e(store, o);
    PageRankProgram p;
    obs::Heatmap::instance().start(opt.partitions);
    // Record the cache run's block I/O trace for the replay fidelity gate
    // (tools/husg_replay --check): single-threaded, so the simulated CLOCK
    // must reproduce the live counters exactly.
    if (!opt.iotrace_out.empty()) {
      obs::TraceRunInfo info;
      info.p = opt.partitions;
      info.budget_bytes = o.cache_budget_bytes;
      info.max_block_fraction = o.cache_max_block_fraction;
      info.fill_rop = o.cache_fill_rop;
      info.flavor = static_cast<std::uint8_t>(o.predictor);
      info.granularity = static_cast<std::uint8_t>(o.granularity);
      info.alpha = o.alpha;
      info.seq_read_bw = o.device.seq_read_bw;
      info.rand_read_bw = o.device.rand_read_bw;
      info.write_bw = o.device.write_bw;
      info.seek_seconds = o.device.seek_seconds;
      info.num_vertices = store.meta().num_vertices;
      info.num_edges = store.meta().num_edges;
      info.edge_bytes = store.meta().edge_record_bytes();
      obs::IoTrace::instance().start(opt.iotrace_out, info);
    }
    RunStats stats =
        e.run(p, Frontier::all(store.meta(), store.out_degrees())).stats;
    if (!opt.iotrace_out.empty()) {
      obs::IoTrace::instance().stop();
      std::printf("iotrace: %s (%llu events)\n", opt.iotrace_out.c_str(),
                  static_cast<unsigned long long>(
                      obs::IoTrace::instance().events_recorded()));
    }
    record("pagerank/rop+cache", stats);
  }

  // Observability guard (DESIGN.md §15): the four pinned runs above must
  // execute with every profiler gate disarmed — an armed sampler,
  // attribution, or lock profile would not change the engine's I/O or cache
  // counters, but this bench is the proof of that claim, so it refuses to
  // certify a report produced with any gate live.
  if (obs::Profiler::instance().running() || obs::attribution_enabled() ||
      obs::lock_profile_enabled()) {
    std::fprintf(stderr,
                 "perf_smoke: profiler/attribution/lock gates must be"
                 " disarmed for the pinned runs (report not written)\n");
    return 1;
  }

  {
    // Fifth run: armed-profiler overhead on a pinned CPU spin. No engine
    // traffic — every gated counter is zero by construction; the run exists
    // to carry profiler_overhead_ratio, which bench_regress.py caps at an
    // absolute ceiling rather than diffing against the baseline value.
    const double off = spin_best_of(3);
    obs::Profiler::set_thread_role("bench");
    obs::Profiler::instance().start(/*hz=*/997);
    double on = 0;
    {
      HUSG_SPAN("bench", "profiler_overhead_spin");
      on = spin_best_of(3);
    }
    obs::Profiler::instance().stop();
    const std::uint64_t samples = obs::Profiler::instance().samples();
    obs::Profiler::instance().clear();
    const double ratio = off > 0 ? std::max(0.0, (on - off) / off) : 0.0;
    std::printf("profiler overhead: %.4fs off vs %.4fs on at 997 Hz"
                " (%llu samples, ratio %.4f)\n",
                off, on, static_cast<unsigned long long>(samples), ratio);
    RunStats stats;
    stats.wall_seconds = on;
    report.add_run("profiler/overhead", stats, {},
                   {{"profiler_overhead_ratio", ratio}});
    if (obs::Profiler::instance().running()) {
      std::fprintf(stderr, "perf_smoke: profiler still armed after the"
                           " overhead run\n");
      return 1;
    }
  }

  t.print();
  report.write(opt.out_dir);
  // Advisory only (not part of the gated report): confirm the recorder was
  // live for the runs above.
  obs::FlightRecorder& flight = obs::FlightRecorder::instance();
  std::printf("flight: %llu events recorded, %llu dropped"
              " (report unaffected)\n",
              static_cast<unsigned long long>(flight.recorded()),
              static_cast<unsigned long long>(flight.dropped()));
  flight.stop();
  return 0;
}
