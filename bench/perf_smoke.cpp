// Deterministic performance smoke bench for the regression gate
// (tools/bench_regress.py). Unlike the figure/table benches this one is not
// reproducing a paper claim: it pins a tiny fixed workload whose I/O and
// cache counters are bit-stable across runs of the same binary, so a diff
// against bench/baselines/perf_smoke.json flags any change in engine
// traffic. Everything that could wobble is nailed down: fixed R-MAT seed,
// one thread (two pool workers racing a cold block would both read it),
// in-memory vertex values, and a modeled device so modeled_seconds is a
// pure function of the byte counts. Only wall_seconds varies run to run;
// the comparator treats it as advisory.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "husg/husg.hpp"

#include "bench_support/report.hpp"

using namespace husg;
using namespace husg::bench;

namespace {

struct SmokeOptions {
  unsigned scale = 11;
  double degree = 8.0;
  std::uint32_t partitions = 4;
  std::string out_dir = ".";
  std::string data_dir;  ///< default: <out_dir>/perf_smoke_data
};

int usage() {
  std::fprintf(stderr,
               "usage: perf_smoke [--scale N] [--degree D] [--partitions P]"
               " [--out-dir DIR] [--data-dir DIR]\n");
  return 2;
}

EngineOptions base_options() {
  EngineOptions o;
  o.threads = 1;
  o.file_backed_values = false;
  o.device = DeviceProfile::sata_ssd();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  SmokeOptions opt;
  for (int k = 1; k < argc; ++k) {
    std::string flag = argv[k];
    if (k + 1 >= argc) return usage();
    std::string val = argv[++k];
    if (flag == "--scale") {
      opt.scale = static_cast<unsigned>(std::stoul(val));
    } else if (flag == "--degree") {
      opt.degree = std::stod(val);
    } else if (flag == "--partitions") {
      opt.partitions = static_cast<std::uint32_t>(std::stoul(val));
    } else if (flag == "--out-dir") {
      opt.out_dir = val;
    } else if (flag == "--data-dir") {
      opt.data_dir = val;
    } else {
      return usage();
    }
  }
  if (opt.data_dir.empty()) opt.data_dir = opt.out_dir + "/perf_smoke_data";

  banner("Perf smoke (regression gate)",
         "");  // not a paper figure: fixed workload for bench_regress.py
  std::printf("workload: rmat scale=%u degree=%.1f seed=42, P=%u, 1 thread\n",
              opt.scale, opt.degree, opt.partitions);

  EdgeList graph = gen::rmat(opt.scale, opt.degree, /*seed=*/42);
  std::filesystem::create_directories(opt.data_dir);
  DualBlockStore store = DualBlockStore::build(
      graph, std::filesystem::path(opt.data_dir) / "store",
      StoreOptions{opt.partitions});

  JsonReport report("perf_smoke");
  Table t({"run", "iters", "modeled s", "I/O MB", "rand ops", "hit rate"});
  auto record = [&](const char* label, const RunStats& stats) {
    t.add_row({label, std::to_string(stats.iterations_run()),
               fmt(stats.modeled_seconds(), 4),
               fmt(static_cast<double>(stats.total_io.total_bytes()) / 1e6, 3),
               std::to_string(stats.total_io.rand_read_ops),
               fmt(100.0 * stats.cache.hit_rate(), 1) + "%"});
    report.add_run(label, stats);
  };

  {
    EngineOptions o = base_options();
    o.max_iterations = 5;
    Engine e(store, o);
    PageRankProgram p;
    record("pagerank/hybrid",
           e.run(p, Frontier::all(store.meta(), store.out_degrees())).stats);
  }
  {
    EngineOptions o = base_options();
    o.mode = UpdateMode::kCop;
    o.max_iterations = 5;
    Engine e(store, o);
    PageRankProgram p;
    record("pagerank/cop",
           e.run(p, Frontier::all(store.meta(), store.out_degrees())).stats);
  }
  {
    EngineOptions o = base_options();
    Engine e(store, o);
    BfsProgram b{.source = 1};
    record("bfs/hybrid",
           e.run(b, Frontier::single(store.meta(), 1, store.out_degrees()))
               .stats);
  }
  {
    // Cache path: ROP point loads against a budget that holds ~half the
    // out-blocks, exercising fill, hits, and evictions deterministically
    // (one thread keeps the CLOCK sweep order stable).
    std::uint64_t out_adj = 0;
    for (std::uint32_t i = 0; i < store.meta().p(); ++i) {
      for (std::uint32_t j = 0; j < store.meta().p(); ++j) {
        out_adj += store.meta().out_block(i, j).adj_bytes;
      }
    }
    EngineOptions o = base_options();
    o.mode = UpdateMode::kRop;
    o.max_iterations = 5;
    o.cache_budget_bytes = out_adj / 2;
    Engine e(store, o);
    PageRankProgram p;
    record("pagerank/rop+cache",
           e.run(p, Frontier::all(store.meta(), store.out_degrees())).stats);
  }

  t.print();
  report.write(opt.out_dir);
  return 0;
}
