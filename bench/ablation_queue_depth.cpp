// Ablation: I/O backend x queue depth x update strategy (DESIGN.md §12).
//
// Sweeps the pluggable read path — sync pread vs io_uring rings — across
// submission queue depths on a forced-ROP run (point loads, where batching
// matters) and a forced-COP run (sequential streams, where double-buffering
// matters). Reports wall time, modeled time and measured I/O per cell, and
// enforces the subsystem's core guarantee as a gate: every cell's I/O
// counters (bytes AND op counts, both directions) must equal the sync/depth-1
// baseline of its mode, byte for byte. A backend that reads more, less, or
// differently than the historical pread engine fails the bench.
//
// uring rows appear only where the kernel grants io_uring; the gate and the
// sync rows run everywhere (CI smokes this at scale 10 with --backends sync).
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_support/harness.hpp"
#include "bench_support/report.hpp"
#include "husg/husg.hpp"
#include "io/backend/io_backend.hpp"

using namespace husg;
using namespace husg::bench;

namespace {

struct BenchOptions {
  unsigned scale = 12;
  double degree = 8.0;
  std::uint32_t partitions = 4;
  std::string out_dir = ".";
  std::string data_dir;  ///< default: <out_dir>/ablation_queue_depth_data
  std::string backends = "auto";  ///< "sync", "uring" or "auto" (= both)
};

int usage() {
  std::fprintf(stderr,
               "usage: ablation_queue_depth [--scale N] [--degree D]"
               " [--partitions P] [--backends sync|uring|auto]"
               " [--out-dir DIR] [--data-dir DIR]\n");
  return 2;
}

EngineOptions base_options(UpdateMode mode) {
  EngineOptions o;
  o.mode = mode;
  o.threads = 1;  // deterministic I/O counters, same rationale as perf_smoke
  o.file_backed_values = false;
  o.device = DeviceProfile::sata_ssd();
  o.max_iterations = 5;
  return o;
}

bool io_equal(const IoSnapshot& a, const IoSnapshot& b) {
  return a.seq_read_bytes == b.seq_read_bytes &&
         a.rand_read_bytes == b.rand_read_bytes &&
         a.seq_read_ops == b.seq_read_ops &&
         a.rand_read_ops == b.rand_read_ops &&
         a.write_bytes == b.write_bytes && a.write_ops == b.write_ops;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt;
  for (int k = 1; k < argc; ++k) {
    std::string flag = argv[k];
    if (k + 1 >= argc) return usage();
    std::string val = argv[++k];
    if (flag == "--scale") {
      opt.scale = static_cast<unsigned>(std::stoul(val));
    } else if (flag == "--degree") {
      opt.degree = std::stod(val);
    } else if (flag == "--partitions") {
      opt.partitions = static_cast<std::uint32_t>(std::stoul(val));
    } else if (flag == "--backends") {
      if (val != "sync" && val != "uring" && val != "auto") return usage();
      opt.backends = val;
    } else if (flag == "--out-dir") {
      opt.out_dir = val;
    } else if (flag == "--data-dir") {
      opt.data_dir = val;
    } else {
      return usage();
    }
  }
  if (opt.data_dir.empty()) {
    opt.data_dir = opt.out_dir + "/ablation_queue_depth_data";
  }

  banner("Ablation: I/O backend x queue depth x ROP/COP",
         "repo extension, not a paper figure (DESIGN.md section 12); the "
         "byte-identity gate pins every backend to the pread baseline");

  std::vector<IoBackendKind> kinds;
  if (opt.backends != "uring") kinds.push_back(IoBackendKind::kSync);
  if (opt.backends != "sync") {
    if (uring_available()) {
      kinds.push_back(IoBackendKind::kUring);
    } else if (opt.backends == "uring") {
      std::fprintf(stderr,
                   "ablation_queue_depth: io_uring unavailable on this "
                   "kernel\n");
      return 2;
    } else {
      std::printf("io_uring unavailable: sweeping the sync backend only\n");
    }
  }

  EdgeList graph = gen::rmat(opt.scale, opt.degree, /*seed=*/42);
  std::filesystem::path dir =
      std::filesystem::path(opt.data_dir) / ("scale" + std::to_string(opt.scale));
  std::filesystem::create_directories(dir);
  DualBlockStore::build(graph, dir / "store", StoreOptions{opt.partitions});

  JsonReport report("ablation_queue_depth");
  Table t({"backend", "depth", "mode", "wall s", "modeled s", "I/O MB",
           "rand ops", "identical"});

  const std::uint32_t depths[] = {1, 4, 16, 64};
  bool gate_ok = true;
  for (UpdateMode mode : {UpdateMode::kRop, UpdateMode::kCop}) {
    // The gate's reference cell: the historical engine (sync pread, no
    // batch overlap).
    bool have_baseline = false;
    IoSnapshot baseline;
    for (IoBackendKind kind : kinds) {
      for (std::uint32_t depth : depths) {
        DualBlockStore store = DualBlockStore::open(
            dir / "store", IoBackendConfig{kind, depth, false});
        Engine engine(store, base_options(mode));
        PageRankProgram pr;
        RunStats stats =
            engine.run(pr, Frontier::all(store.meta(), store.out_degrees()))
                .stats;
        if (!have_baseline) {
          baseline = stats.total_io;
          have_baseline = true;
        }
        const bool identical = io_equal(stats.total_io, baseline);
        if (!identical) gate_ok = false;
        const std::string label = std::string(store.io_backend().name()) +
                                  "/qd" + std::to_string(depth) + "/" +
                                  to_string(mode);
        t.add_row({to_string(kind), std::to_string(depth), to_string(mode),
                   fmt(stats.wall_seconds, 4), fmt(stats.modeled_seconds(), 4),
                   fmt(static_cast<double>(stats.total_io.total_bytes()) / 1e6,
                       2),
                   std::to_string(stats.total_io.rand_read_ops),
                   identical ? "yes" : "NO"});
        report.add_run(label, stats);
      }
    }
  }

  t.print();
  const IoBackendTotals totals = io_backend_totals();
  std::printf(
      "backend totals: submitted=%llu completed=%llu batches=%llu "
      "inflight_peak=%llu\n",
      static_cast<unsigned long long>(totals.reads_submitted),
      static_cast<unsigned long long>(totals.reads_completed),
      static_cast<unsigned long long>(totals.batches),
      static_cast<unsigned long long>(totals.inflight_peak));
  report.write(opt.out_dir);
  if (!gate_ok) {
    std::fprintf(stderr,
                 "ablation_queue_depth: byte-identity gate FAILED — some "
                 "backend/depth cell diverged from the pread baseline\n");
    return 1;
  }
  return 0;
}
