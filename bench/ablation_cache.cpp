// Ablation: the memory-budgeted block cache (buffer manager extension).
//
// The paper's engine re-reads every edge block from disk on every iteration;
// with a few hundred MB of RAM to spare, a buffer manager over decompressed
// blocks turns repeat I/O into memory hits. This bench sweeps the cache
// budget — none, 25 % of the edge bytes, and the full edge set — on
// PageRank (dense, every block touched every sweep) and BFS (frontier-driven,
// mixed ROP/COP) and reports modeled time, measured I/O, and the cache's own
// ledger. With the full-budget cache, PageRank sweeps >= 2 perform zero edge
// reads from disk.
//
// The cache-aware predictor row runs the same sweep with
// PredictorFlavor::kCacheAware, which costs C_rop/C_cop over the uncached
// residual of each interval (cached bytes are free), shifting the hybrid
// crossover as the cache warms.
#include <cstdio>

#include "bench_support/harness.hpp"
#include "bench_support/report.hpp"
#include "husg/husg.hpp"

using namespace husg;
using namespace husg::bench;

namespace {

/// Total on-disk adjacency bytes of both block grids (the cache can end up
/// holding the out- and the in-copy of every edge).
std::uint64_t edge_bytes(const StoreMeta& m) {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < m.p(); ++i) {
    for (std::uint32_t j = 0; j < m.p(); ++j) {
      total += m.out_block(i, j).adj_bytes + m.in_block(i, j).adj_bytes;
    }
  }
  return total;
}

/// Upper bound on the CSR index bytes (both sides), so the "100 %" budget
/// genuinely fits everything the engine ever loads.
std::uint64_t index_bytes(const StoreMeta& m) {
  return 2ull * m.p() * (m.num_vertices + m.p()) * sizeof(std::uint32_t);
}

void sweep(Dataset& ds, AlgoKind algo, JsonReport& report) {
  const StoreMeta& meta = ds.hus_store(GraphVariant::kDirected).meta();
  const std::uint64_t all_edges = edge_bytes(meta);
  const std::uint64_t full = all_edges + index_bytes(meta);

  std::printf("\n--- %s on %s (edge bytes: %s) ---\n", to_string(algo),
              ds.spec().name.c_str(), human_bytes(all_edges).c_str());
  Table t({"budget", "predictor", "modeled s", "I/O GB", "hit rate",
           "saved GB"});
  struct Tier {
    const char* label;
    std::uint64_t budget;
  };
  const Tier tiers[] = {
      {"none", 0}, {"25% edges", all_edges / 4}, {"100% edges", full}};
  for (const Tier& tier : tiers) {
    for (PredictorFlavor flavor :
         {PredictorFlavor::kDeviceExact, PredictorFlavor::kCacheAware}) {
      // A cache-aware predictor without a cache is identical to device-exact;
      // skip the duplicate row.
      if (tier.budget == 0 && flavor == PredictorFlavor::kCacheAware) continue;
      RunConfig cfg;
      cfg.algo = algo;
      cfg.device = bench_hdd();
      cfg.predictor = flavor;
      cfg.cache_budget_bytes = tier.budget;
      // Semi-external vertex values: what remains on disk is exactly the
      // edge blocks the cache is supposed to absorb.
      cfg.file_backed_values = false;
      RunOutcome r = run_system(ds, cfg);
      const CacheStats& c = r.stats.cache;
      const char* pname =
          flavor == PredictorFlavor::kCacheAware ? "cache-aware" : "exact";
      t.add_row({tier.label, pname, fmt(r.modeled_seconds), fmt(r.io_gb, 3),
                 fmt(100.0 * c.hit_rate(), 1) + "%",
                 fmt(gb(c.bytes_saved), 3)});
      report.add_run(std::string(to_string(algo)) + "/" + tier.label + "/" +
                         pname,
                     r.stats);
      // The acceptance check for the full budget: after the warm-up sweep
      // every edge byte is resident, so later iterations read nothing.
      if (tier.budget >= full && algo == AlgoKind::kPageRank) {
        for (std::size_t i = 1; i < r.stats.iterations.size(); ++i) {
          const IoSnapshot& io = r.stats.iterations[i].io;
          if (io.total_read_bytes() > 0) {
            std::printf("  !! iteration %zu still read %s from disk\n", i,
                        human_bytes(io.total_read_bytes()).c_str());
          }
        }
      }
    }
  }
  t.print();
}

}  // namespace

int main() {
  banner("Ablation: memory-budgeted block cache",
         "extension beyond the paper — buffer manager over decompressed "
         "blocks; budget 0 reproduces the paper's always-from-disk engine");
  Dataset ds(dataset("lj-sim"));
  JsonReport report("cache");
  sweep(ds, AlgoKind::kPageRank, report);
  sweep(ds, AlgoKind::kBfs, report);
  report.write();
  return 0;
}
