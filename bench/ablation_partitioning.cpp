// Ablation: dual-block partitioning choices.
//
// The paper picks P "such that each in-block or out-block and the
// corresponding vertices can fit in memory" (§3.2) and assumes equal-size
// vertex intervals in the §3.4 formulas. This bench sweeps:
//   (1) the number of intervals P — more intervals mean finer ROP/COP
//       decisions and smaller vertex working sets, but more index overhead
//       and more point loads per active vertex;
//   (2) equal-vertex vs degree-balanced interval boundaries — power-law
//       graphs concentrate half the edge mass in the first interval under
//       equal-vertex splitting.
#include <cstdio>

#include "bench_support/report.hpp"
#include "husg/husg.hpp"

using namespace husg;
using namespace husg::bench;

namespace {

struct Outcome {
  double modeled = 0;
  double io_gb = 0;
  std::uint64_t rand_ops = 0;
};

Outcome run_bfs(const DualBlockStore& store, VertexId source) {
  EngineOptions o;
  o.device = DeviceProfile::hdd7200().with_seek_scale(1e-3);
  Engine e(store, o);
  BfsProgram bfs{.source = source};
  auto r = e.run(bfs, Frontier::single(store.meta(), source,
                                       store.out_degrees()));
  return {r.stats.modeled_seconds(),
          static_cast<double>(r.stats.total_io.total_bytes()) / 1e9,
          r.stats.total_io.rand_read_ops};
}

Outcome run_pr(const DualBlockStore& store) {
  EngineOptions o;
  o.mode = UpdateMode::kCop;
  o.max_iterations = 5;
  o.device = DeviceProfile::hdd7200().with_seek_scale(1e-3);
  Engine e(store, o);
  PageRankProgram pr;
  auto r = e.run(pr, Frontier::all(store.meta(), store.out_degrees()));
  return {r.stats.modeled_seconds(),
          static_cast<double>(r.stats.total_io.total_bytes()) / 1e9, 0};
}

}  // namespace

int main() {
  banner("Ablation: dual-block partitioning (P and interval scheme)",
         "paper §3.2 picks P for memory fit and §3.4 assumes equal-size "
         "intervals; this quantifies both choices");

  EdgeList g = gen::webgraph(15, 14.0, 21);
  VertexId source = 3;
  auto root = std::filesystem::temp_directory_path() / "husg_ablation_part";
  remove_tree(root);

  std::printf("\n--- interval count sweep (BFS + 5-iteration PageRank) ---\n");
  Table t({"P", "BFS modeled s", "BFS rand ops", "PR modeled s", "PR I/O GB"});
  for (std::uint32_t p : {2u, 4u, 8u, 16u, 32u}) {
    auto dir = root / ("p" + std::to_string(p));
    auto store = DualBlockStore::build(g, dir, StoreOptions{p});
    Outcome bfs = run_bfs(store, source);
    Outcome pr = run_pr(store);
    t.add_row({std::to_string(p), fmt(bfs.modeled, 3),
               std::to_string(bfs.rand_ops), fmt(pr.modeled, 3),
               fmt(pr.io_gb, 4)});
  }
  t.print();
  std::printf("  (ROP pays up to P point loads per active vertex; PageRank "
              "pays P vertex-interval sweeps per column — both grow with P, "
              "so the paper's 'just fits in memory' guidance means: pick the "
              "smallest P that fits)\n");

  std::printf("\n--- interval scheme (P = 8) ---\n");
  Table s({"scheme", "largest block share", "BFS modeled s", "PR modeled s"});
  for (PartitionScheme scheme :
       {PartitionScheme::kEqualVertices, PartitionScheme::kEqualDegree}) {
    auto dir = root / (scheme == PartitionScheme::kEqualVertices ? "ev" : "ed");
    auto store = DualBlockStore::build(g, dir, StoreOptions{8, scheme});
    std::uint64_t biggest = 0;
    for (std::uint32_t i = 0; i < 8; ++i) {
      for (std::uint32_t j = 0; j < 8; ++j) {
        biggest = std::max(biggest, store.meta().out_block(i, j).edge_count);
      }
    }
    Outcome bfs = run_bfs(store, source);
    Outcome pr = run_pr(store);
    s.add_row({scheme == PartitionScheme::kEqualVertices ? "equal vertices"
                                                         : "degree balanced",
               fmt(100.0 * static_cast<double>(biggest) /
                       static_cast<double>(g.num_edges()),
                   1) +
                   " %",
               fmt(bfs.modeled, 3), fmt(pr.modeled, 3)});
  }
  s.print();
  std::printf("  (degree balancing equalizes block sizes — the memory-fit "
              "constraint §3.2 cares about — at equal I/O volume)\n");

  remove_tree(root);
  return 0;
}
