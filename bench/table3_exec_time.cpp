// Table 3: execution time of PageRank/BFS/WCC/SSSP across HUS-Graph,
// GraphChi-like and GridGraph-like on all five datasets.
//
// Reproduction claims (paper §4.4):
//   * HUS-Graph beats GraphChi by 3.3x-23.1x and GridGraph by 1.4x-11.5x;
//   * on the traversal algorithms (BFS/WCC/SSSP) the average speedups are
//     ~11.2x / ~6.4x (selective access wins big);
//   * on PageRank (always dense) the speedups shrink to ~4.6x / ~3.2x
//     (compact storage + parallelism, no selectivity advantage).
// We check ordering and the sparse-vs-dense contrast, not absolute numbers.
#include <cstdio>
#include <limits>

#include "bench_support/harness.hpp"
#include "util/options.hpp"
#include "bench_support/report.hpp"

using namespace husg;
using namespace husg::bench;

int main(int argc, char** argv) {
  Options opts = Options::parse(argc, argv);
  banner("Table 3: execution time (modeled seconds on HDD)",
         "HUS-Graph outperforms GraphChi by 3.3x-23.1x and GridGraph by "
         "1.4x-11.5x");

  const AlgoKind kAlgos[] = {AlgoKind::kPageRank, AlgoKind::kBfs,
                             AlgoKind::kWcc, AlgoKind::kSssp};

  double chi_speedup_min = std::numeric_limits<double>::infinity();
  double chi_speedup_max = 0;
  double grid_speedup_min = std::numeric_limits<double>::infinity();
  double grid_speedup_max = 0;
  double sparse_grid_speedup_sum = 0, dense_grid_speedup_sum = 0;
  int sparse_runs = 0, dense_runs = 0;
  bool hus_always_fastest = true;

  for (const DatasetSpec& spec : all_datasets()) {
    Dataset ds(spec);
    std::printf("\n--- %s (%s) ---\n", spec.name.c_str(),
                spec.paper_name.c_str());
    Table t({"algorithm", "HUS-Graph", "GraphChi", "GridGraph",
             "vs GraphChi", "vs GridGraph"});
    for (AlgoKind algo : kAlgos) {
      double secs[3];
      const SystemKind kSystems[] = {SystemKind::kHusHybrid,
                                     SystemKind::kGraphChi,
                                     SystemKind::kGridGraph};
      for (int s = 0; s < 3; ++s) {
        RunConfig cfg;
        cfg.system = kSystems[s];
        cfg.algo = algo;
        cfg.threads = opts.get_int("threads", 16);
        secs[s] = run_system(ds, cfg).modeled_seconds;
      }
      double vs_chi = secs[1] / secs[0];
      double vs_grid = secs[2] / secs[0];
      chi_speedup_min = std::min(chi_speedup_min, vs_chi);
      chi_speedup_max = std::max(chi_speedup_max, vs_chi);
      grid_speedup_min = std::min(grid_speedup_min, vs_grid);
      grid_speedup_max = std::max(grid_speedup_max, vs_grid);
      if (algo == AlgoKind::kPageRank) {
        dense_grid_speedup_sum += vs_grid;
        ++dense_runs;
      } else {
        sparse_grid_speedup_sum += vs_grid;
        ++sparse_runs;
      }
      hus_always_fastest &= vs_chi >= 1.0 && vs_grid >= 1.0;
      t.add_row({to_string(algo), fmt(secs[0]) + " s", fmt(secs[1]) + " s",
                 fmt(secs[2]) + " s", fmt_ratio(vs_chi), fmt_ratio(vs_grid)});
    }
    t.print();
  }

  std::printf("\nsummary:\n");
  std::printf("  speedup vs GraphChi:  %.1fx - %.1fx (paper: 3.3x - 23.1x)\n",
              chi_speedup_min, chi_speedup_max);
  std::printf("  speedup vs GridGraph: %.1fx - %.1fx (paper: 1.4x - 11.5x)\n",
              grid_speedup_min, grid_speedup_max);
  std::printf("  avg vs GridGraph, traversal algos: %.1fx (paper ~6.4x)\n",
              sparse_grid_speedup_sum / sparse_runs);
  std::printf("  avg vs GridGraph, PageRank:        %.1fx (paper ~3.2x)\n",
              dense_grid_speedup_sum / dense_runs);
  std::printf("shape checks:\n");
  std::printf("  HUS-Graph fastest in every cell: %s\n",
              hus_always_fastest ? "yes" : "NO");
  std::printf("  traversal speedup exceeds PageRank speedup: %s\n",
              (sparse_grid_speedup_sum / sparse_runs >
               dense_grid_speedup_sum / dense_runs)
                  ? "yes"
                  : "NO");
  return 0;
}
