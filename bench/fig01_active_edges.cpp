// Figure 1: the percentage of active edges per iteration for PageRank, BFS
// and WCC on LiveJournal.
//
// Reproduction claim: PageRank stays at 100 % in every iteration; BFS and
// WCC need only a small fraction of edges in most iterations (BFS ramps up
// then collapses; WCC starts at 100 % and decays fast). This motivates the
// hybrid I/O strategy.
#include <cstdio>

#include "bench_support/datasets.hpp"
#include "bench_support/report.hpp"
#include "graph/reference.hpp"

using namespace husg;
using namespace husg::bench;

namespace {

std::vector<double> to_percent(const ref::ActivityProfile& prof) {
  std::vector<double> out;
  out.reserve(prof.active_edges_per_iter.size());
  for (std::uint64_t e : prof.active_edges_per_iter) {
    out.push_back(100.0 * static_cast<double>(e) /
                  static_cast<double>(prof.total_edges));
  }
  return out;
}

}  // namespace

int main() {
  banner("Figure 1: percentage of active edges per iteration (LiveJournal)",
         "PageRank always 100%; BFS/WCC need a small portion of edges in "
         "most iterations");

  Dataset ds(dataset("lj-sim"));
  const EdgeList& directed = ds.graph(GraphVariant::kDirected);
  const EdgeList& sym = ds.graph(GraphVariant::kSymmetrized);
  VertexId source = ds.traversal_source();

  auto pr = to_percent(ref::pagerank_activity(directed, 5));
  // BFS frontier behaviour is what the out-of-core engine sees: run on the
  // directed graph from a low-degree source.
  auto bfs = to_percent(ref::bfs_activity(sym, source));
  auto wcc = to_percent(ref::wcc_activity(directed));

  print_series("PageRank", pr, "% active edges");
  print_series("BFS", bfs, "% active edges");
  print_series("WCC", wcc, "% active edges");

  // Shape checks mirrored from the paper's figure.
  bool pr_always_full = true;
  for (double v : pr) pr_always_full &= v >= 99.9;
  double bfs_sparse_iters = 0;
  for (double v : bfs) bfs_sparse_iters += (v < 10.0) ? 1 : 0;
  bool wcc_decays = wcc.size() >= 3 && wcc.front() >= 99.9 &&
                    wcc.back() < wcc.front() / 10;

  std::printf("\nshape checks:\n");
  std::printf("  PageRank at 100%% every iteration: %s\n",
              pr_always_full ? "yes" : "NO");
  std::printf("  BFS iterations below 10%% active edges: %.0f of %zu\n",
              bfs_sparse_iters, bfs.size());
  std::printf("  WCC starts dense and decays >10x: %s\n",
              wcc_decays ? "yes" : "NO");
  return 0;
}
