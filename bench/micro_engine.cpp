// Micro-benchmarks (google-benchmark) for the engines: full algorithm runs
// on a small R-MAT graph, per system. Items processed = edges scanned, so
// the throughput column is comparable across engines.
#include <benchmark/benchmark.h>

#include "algos/bfs.hpp"
#include "algos/pagerank.hpp"
#include "baselines/graphchi/chi_engine.hpp"
#include "baselines/gridgraph/grid_engine.hpp"
#include "baselines/xstream/xstream_engine.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace husg {
namespace {

constexpr unsigned kScale = 12;
constexpr double kDegree = 12.0;

const EdgeList& bench_graph() {
  static EdgeList g = gen::rmat(kScale, kDegree, 99);
  return g;
}

std::filesystem::path root() {
  static auto dir = std::filesystem::temp_directory_path() / "husg_micro_eng";
  return dir;
}

void BM_HusPageRank(benchmark::State& state) {
  static auto store =
      DualBlockStore::build(bench_graph(), root() / "hus", StoreOptions{4});
  EngineOptions opts;
  opts.mode = UpdateMode::kCop;
  opts.max_iterations = 5;
  opts.threads = static_cast<std::size_t>(state.range(0));
  opts.device = DeviceProfile::null_device();
  Engine engine(store, opts);
  PageRankProgram pr;
  std::uint64_t edges = 0;
  for (auto _ : state) {
    auto r = engine.run(pr, Frontier::all(store.meta(), store.out_degrees()));
    edges += r.stats.edges_processed;
    benchmark::DoNotOptimize(r.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_HusPageRank)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_HusBfsHybrid(benchmark::State& state) {
  static auto store =
      DualBlockStore::build(bench_graph(), root() / "hus2", StoreOptions{4});
  EngineOptions opts;
  opts.threads = 2;
  Engine engine(store, opts);
  BfsProgram bfs{.source = 1};
  std::uint64_t edges = 0;
  for (auto _ : state) {
    auto r = engine.run(
        bfs, Frontier::single(store.meta(), 1, store.out_degrees()));
    edges += r.stats.edges_processed;
    benchmark::DoNotOptimize(r.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_HusBfsHybrid)->Unit(benchmark::kMillisecond);

void BM_GridPageRank(benchmark::State& state) {
  static auto store =
      baselines::GridStore::build(bench_graph(), root() / "grid", 4);
  baselines::GridEngine::Options opts;
  opts.max_iterations = 5;
  baselines::GridEngine engine(store, opts);
  PageRankProgram pr;
  std::uint64_t edges = 0;
  for (auto _ : state) {
    auto r = engine.run(pr, baselines::StartSet::all());
    edges += r.stats.edges_processed;
    benchmark::DoNotOptimize(r.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_GridPageRank)->Unit(benchmark::kMillisecond);

void BM_ChiPageRank(benchmark::State& state) {
  static auto store =
      baselines::ChiStore::build(bench_graph(), root() / "chi", 4);
  baselines::ChiEngine::Options opts;
  opts.max_iterations = 5;
  baselines::ChiEngine engine(store, opts);
  PageRankProgram pr;
  std::uint64_t edges = 0;
  for (auto _ : state) {
    auto r = engine.run(pr, baselines::StartSet::all());
    edges += r.stats.edges_processed;
    benchmark::DoNotOptimize(r.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_ChiPageRank)->Unit(benchmark::kMillisecond);

void BM_XsPageRank(benchmark::State& state) {
  static auto store =
      baselines::XStreamStore::build(bench_graph(), root() / "xs", 4);
  baselines::XStreamEngine::Options opts;
  opts.max_iterations = 5;
  baselines::XStreamEngine engine(store, opts);
  PageRankProgram pr;
  std::uint64_t edges = 0;
  for (auto _ : state) {
    auto r = engine.run(pr, baselines::StartSet::all());
    edges += r.stats.edges_processed;
    benchmark::DoNotOptimize(r.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_XsPageRank)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace husg

BENCHMARK_MAIN();
