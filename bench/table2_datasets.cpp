// Table 2: datasets used in evaluation.
//
// Prints the registry of synthetic stand-ins next to the paper's graphs so
// every other bench's workload is documented.
#include <cstdio>

#include "bench_support/datasets.hpp"
#include "bench_support/report.hpp"
#include "util/format.hpp"

using namespace husg;
using namespace husg::bench;

int main() {
  banner("Table 2: Datasets used in evaluation (synthetic stand-ins)",
         "LiveJournal 69M, Twitter2010 1.5B, SK2005 1.9B, UK2007 3.7B, "
         "UKunion 5.5B edges");
  Table t({"dataset", "stands for", "paper size", "type", "|V|", "|E|",
           "avg deg", "max deg"});
  for (const DatasetSpec& spec : all_datasets()) {
    Dataset ds(spec);
    const EdgeList& g = ds.graph(GraphVariant::kDirected);
    auto deg = g.out_degrees();
    VertexId max_deg = 0;
    for (VertexId d : deg) max_deg = std::max(max_deg, d);
    t.add_row({spec.name, spec.paper_name, spec.paper_size, spec.type,
               with_commas(g.num_vertices()), with_commas(g.num_edges()),
               fmt(static_cast<double>(g.num_edges()) / g.num_vertices(), 1),
               with_commas(max_deg)});
  }
  t.print();
  std::printf(
      "\nEach stand-in matches the paper graph's family (R-MAT skew for the\n"
      "social graphs; low-noise R-MAT + chain backbone for the higher-\n"
      "diameter web graphs) and average degree, at laptop scale.\n");
  return 0;
}
