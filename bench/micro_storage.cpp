// Micro-benchmarks (google-benchmark) for the storage and utility layers:
// dual-block build, ROP point loads, COP streaming, frontier and bitmap ops.
#include <benchmark/benchmark.h>

#include "core/frontier.hpp"
#include "graph/generators.hpp"
#include "storage/store.hpp"
#include "util/bitmap.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace husg {
namespace {

const EdgeList& bench_graph() {
  static EdgeList g = gen::rmat(14, 16.0, 1234);
  return g;
}

std::filesystem::path bench_dir() {
  static std::filesystem::path dir = [] {
    auto d = std::filesystem::temp_directory_path() / "husg_micro_store";
    remove_tree(d);
    return d;
  }();
  return dir;
}

const DualBlockStore& bench_store() {
  static DualBlockStore store =
      DualBlockStore::build(bench_graph(), bench_dir(), StoreOptions{8});
  return store;
}

void BM_DualBlockBuild(benchmark::State& state) {
  const EdgeList& g = bench_graph();
  auto dir = std::filesystem::temp_directory_path() / "husg_micro_build";
  for (auto _ : state) {
    remove_tree(dir);
    auto store = DualBlockStore::build(
        g, dir, StoreOptions{static_cast<std::uint32_t>(state.range(0))});
    benchmark::DoNotOptimize(store.meta().num_edges);
  }
  remove_tree(dir);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_DualBlockBuild)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_OutIndexLoad(benchmark::State& state) {
  const DualBlockStore& store = bench_store();
  std::vector<std::uint32_t> idx;
  std::uint32_t j = 0;
  for (auto _ : state) {
    store.load_out_index(0, j, idx);
    j = (j + 1) % store.meta().p();
    benchmark::DoNotOptimize(idx.data());
  }
}
BENCHMARK(BM_OutIndexLoad);

void BM_RopPointLoad(benchmark::State& state) {
  const DualBlockStore& store = bench_store();
  std::vector<std::uint32_t> idx;
  store.load_out_index(0, 0, idx);
  AdjacencyBuffer buf;
  SplitMix64 rng(7);
  // Collect vertices with edges in block (0,0).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  for (std::size_t v = 0; v + 1 < idx.size(); ++v) {
    if (idx[v + 1] > idx[v]) ranges.emplace_back(idx[v], idx[v + 1]);
  }
  for (auto _ : state) {
    auto [lo, hi] = ranges[rng.next_below(ranges.size())];
    auto slice = store.load_out_edges(0, 0, lo, hi, buf);
    benchmark::DoNotOptimize(slice.neighbors.data());
  }
}
BENCHMARK(BM_RopPointLoad);

void BM_CopStreamBlock(benchmark::State& state) {
  const DualBlockStore& store = bench_store();
  AdjacencyBuffer buf;
  std::uint64_t edges = 0;
  for (auto _ : state) {
    auto slice = store.stream_in_block(0, 0, buf);
    edges += slice.neighbors.size();
    benchmark::DoNotOptimize(slice.neighbors.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_CopStreamBlock)->Unit(benchmark::kMicrosecond);

void BM_FrontierFromBits(benchmark::State& state) {
  const DualBlockStore& store = bench_store();
  std::uint64_t n = store.meta().num_vertices;
  AtomicBitmap bits(n);
  SplitMix64 rng(9);
  for (std::uint64_t i = 0; i < n / 10; ++i) bits.set(rng.next_below(n));
  for (auto _ : state) {
    Frontier f = Frontier::from_bits(store.meta(), bits, store.out_degrees());
    benchmark::DoNotOptimize(f.active_vertices());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FrontierFromBits)->Unit(benchmark::kMicrosecond);

void BM_BitmapForEachSet(benchmark::State& state) {
  Bitmap b(1 << 20);
  SplitMix64 rng(11);
  for (int i = 0; i < state.range(0); ++i) b.set(rng.next_below(1 << 20));
  for (auto _ : state) {
    std::uint64_t sum = 0;
    b.for_each_set(0, b.size(), [&](std::size_t v) { sum += v; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitmapForEachSet)->Arg(100)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_ThreadPoolParallelFor(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    pool.parallel_for(1024, 16, [&](std::size_t i) {
      sink.fetch_add(i, std::memory_order_relaxed);
    });
  }
  benchmark::DoNotOptimize(sink.load());
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace husg

BENCHMARK_MAIN();
