// Figure 7: effect of the hybrid update strategy.
//
// Compares ROP-only, COP-only and Hybrid on Twitter2010 and SK2005 for BFS,
// WCC and SSSP — execution time (7a/7c) and I/O amount (7b/7d).
//
// Reproduction claims (paper §4.2):
//   * Hybrid always achieves the best (or tied-best) runtime;
//   * ROP is worst for WCC (dense early iterations -> random I/O storm);
//   * ROP always accesses the least data, COP the most, Hybrid in between.
//
// The paper additionally reports COP-only losing to ROP-only in *total* time
// for BFS/SSSP. On the social stand-ins (few iterations, dense middle) that
// inversion does not appear at laptop scale; on the long-diameter web
// stand-in (ukunion-sim, appended below) it does — most iterations are
// sparse, so COP's full sweeps dominate and ROP wins outright, exactly the
// paper's mechanism (see also fig08_prediction and EXPERIMENTS.md).
#include <cstdio>

#include "bench_support/harness.hpp"
#include "util/options.hpp"
#include "bench_support/report.hpp"

using namespace husg;
using namespace husg::bench;

int main(int argc, char** argv) {
  Options opts = Options::parse(argc, argv);
  banner("Figure 7: ROP vs COP vs Hybrid (runtime and I/O amount)",
         "Hybrid always best; ROP worst for WCC (random-I/O storm); "
         "I/O: ROP < Hybrid < COP");

  const SystemKind kModes[] = {SystemKind::kHusRop, SystemKind::kHusCop,
                               SystemKind::kHusHybrid};
  const AlgoKind kAlgos[] = {AlgoKind::kBfs, AlgoKind::kWcc, AlgoKind::kSssp};

  bool all_hybrid_best = true, io_ordered = true;
  bool web_cop_worst_bfs = true;
  for (const char* name : {"twitter-sim", "sk-sim", "ukunion-sim"}) {
    Dataset ds(dataset(name));
    std::printf("\n--- %s (%s) ---\n", name, ds.spec().paper_name.c_str());
    Table time_table({"algorithm", "ROP", "COP", "Hybrid", "hybrid best?"});
    Table io_table({"algorithm", "ROP GB", "COP GB", "Hybrid GB"});
    for (AlgoKind algo : kAlgos) {
      double secs[3], gbs[3];
      for (int m = 0; m < 3; ++m) {
        RunConfig cfg;
        cfg.system = kModes[m];
        cfg.algo = algo;
        cfg.threads = opts.get_int("threads", 16);
        RunOutcome r = run_system(ds, cfg);
        secs[m] = r.modeled_seconds;
        gbs[m] = r.io_gb;
      }
      bool hybrid_best =
          secs[2] <= secs[0] * 1.05 && secs[2] <= secs[1] * 1.05;
      all_hybrid_best &= hybrid_best;
      if (std::string(name) == "ukunion-sim" &&
          (algo == AlgoKind::kBfs || algo == AlgoKind::kSssp)) {
        web_cop_worst_bfs &= secs[1] > secs[0];
      }
      io_ordered &= gbs[0] <= gbs[2] && gbs[2] <= gbs[1] * 1.001;
      time_table.add_row({to_string(algo), fmt(secs[0]) + " s",
                          fmt(secs[1]) + " s", fmt(secs[2]) + " s",
                          hybrid_best ? "yes" : "NO"});
      io_table.add_row({to_string(algo), fmt(gbs[0], 3), fmt(gbs[1], 3),
                        fmt(gbs[2], 3)});
    }
    std::printf("modeled execution time (HDD):\n");
    time_table.print();
    std::printf("I/O amount:\n");
    io_table.print();
  }

  std::printf("\nshape checks:\n");
  std::printf("  hybrid best (within 5%%) everywhere: %s\n",
              all_hybrid_best ? "yes" : "NO");
  std::printf("  I/O amount ordered ROP <= Hybrid <= COP: %s\n",
              io_ordered ? "yes" : "NO");
  std::printf("  COP worst for BFS/SSSP on the long-diameter web graph: %s\n",
              web_cop_worst_bfs ? "yes" : "NO");
  return 0;
}
