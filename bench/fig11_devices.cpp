// Figure 11: effect of I/O devices (HDD vs SATA SSD) on WCC and SSSP
// (SK2005) for GraphChi-like, X-Stream-like and HUS-Graph.
//
// Reproduction claim (paper §4.5): moving from HDD to SSD speeds up
// GraphChi ~1.4x, X-Stream ~1.6x and HUS-Graph ~1.9x — HUS-Graph benefits
// most because its selective (random) loads are the access pattern SSDs
// fix. Ordering is the claim; exact ratios depend on the drives.
#include <cstdio>

#include "bench_support/harness.hpp"
#include "bench_support/report.hpp"

using namespace husg;
using namespace husg::bench;

int main() {
  banner("Figure 11: effect of I/O devices (HDD -> SATA SSD speedup)",
         "GraphChi 1.4x, X-Stream 1.6x, HUS-Graph 1.9x — selective access "
         "benefits most from SSD");

  Dataset ds(dataset("sk-sim"));
  const SystemKind kSystems[] = {SystemKind::kGraphChi, SystemKind::kXStream,
                                 SystemKind::kHusHybrid};
  double speedups[2][3];
  const AlgoKind kAlgos[] = {AlgoKind::kWcc, AlgoKind::kSssp};
  for (int a = 0; a < 2; ++a) {
    std::printf("\n--- %s on sk-sim ---\n", to_string(kAlgos[a]));
    Table t({"system", "HDD", "SSD", "speedup", "random-read share"});
    for (int s = 0; s < 3; ++s) {
      RunConfig cfg;
      cfg.system = kSystems[s];
      cfg.algo = kAlgos[a];
      cfg.device = bench_hdd();
      RunOutcome hdd_run = run_system(ds, cfg);
      double hdd = hdd_run.modeled_seconds;
      cfg.device = bench_ssd();
      double ssd = run_system(ds, cfg).modeled_seconds;
      speedups[a][s] = hdd / ssd;
      double rand_share =
          static_cast<double>(hdd_run.stats.total_io.rand_read_bytes) /
          std::max<std::uint64_t>(1, hdd_run.stats.total_io.total_bytes());
      t.add_row({to_string(kSystems[s]), fmt(hdd, 3) + " s",
                 fmt(ssd, 3) + " s", fmt(hdd / ssd, 3) + "x",
                 fmt(100.0 * rand_share, 1) + " %"});
    }
    t.print();
  }

  std::printf("\nshape checks:\n");
  bool hus_benefits_most = true;
  for (int a = 0; a < 2; ++a) {
    hus_benefits_most &= speedups[a][2] >= speedups[a][0] &&
                         speedups[a][2] >= speedups[a][1];
  }
  std::printf("  HUS-Graph gains the most from SSD in both algorithms: %s\n",
              hus_benefits_most ? "yes" : "NO");
  return 0;
}
