// Ablation: the block codec (delta-gap varint) and frontier-driven skip
// filters, swept over R-MAT scales.
//
// For each scale the same edge list is packed twice — codec=none (raw
// fixed-width ids, the paper's layout) and codec=delta-varint — and the two
// stores run identical workloads: PageRank (dense, every block touched
// every sweep) and BFS with the skip filter armed (sparse frontiers, where
// Bloom signatures cancel whole block reads before any I/O). Reported per
// (codec, scale): at-rest adjacency bytes/edge, read traffic bytes/edge,
// modeled and wall end-to-end time, and the codec's own decode/skip ledger.
//
// The binary enforces the subsystem's headline claim itself: delta-varint
// must come in strictly below codec=none on at-rest bytes/edge at EVERY
// scale, or it exits non-zero — so the CI smoke run doubles as a
// compression-ratio regression gate.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "husg/husg.hpp"

#include "bench_support/report.hpp"

using namespace husg;
using namespace husg::bench;

namespace {

struct BenchOptions {
  std::vector<unsigned> scales{10, 12, 14};
  double degree = 8.0;
  std::uint32_t partitions = 4;
  std::string out_dir = ".";
  std::string data_dir;  ///< default: <out_dir>/ablation_compression_data
};

int usage() {
  std::fprintf(stderr,
               "usage: ablation_compression [--scales N,N,...] [--degree D]"
               " [--partitions P] [--out-dir DIR] [--data-dir DIR]\n");
  return 2;
}

bool parse_scales(const std::string& val, std::vector<unsigned>* out) {
  out->clear();
  std::size_t pos = 0;
  while (pos < val.size()) {
    std::size_t comma = val.find(',', pos);
    if (comma == std::string::npos) comma = val.size();
    try {
      out->push_back(
          static_cast<unsigned>(std::stoul(val.substr(pos, comma - pos))));
    } catch (const std::exception&) {
      return false;
    }
    pos = comma + 1;
  }
  return !out->empty();
}

/// At-rest adjacency bytes of both block grids (what the codec shrinks).
std::uint64_t store_adj_bytes(const StoreMeta& m) {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < m.p(); ++i) {
    for (std::uint32_t j = 0; j < m.p(); ++j) {
      total += m.out_block(i, j).adj_bytes + m.in_block(i, j).adj_bytes;
    }
  }
  return total;
}

EngineOptions base_options() {
  EngineOptions o;
  o.threads = 1;  // deterministic I/O counters, same rationale as perf_smoke
  o.file_backed_values = false;
  o.device = DeviceProfile::sata_ssd();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt;
  for (int k = 1; k < argc; ++k) {
    std::string flag = argv[k];
    if (k + 1 >= argc) return usage();
    std::string val = argv[++k];
    if (flag == "--scales") {
      if (!parse_scales(val, &opt.scales)) return usage();
    } else if (flag == "--degree") {
      opt.degree = std::stod(val);
    } else if (flag == "--partitions") {
      opt.partitions = static_cast<std::uint32_t>(std::stoul(val));
    } else if (flag == "--out-dir") {
      opt.out_dir = val;
    } else if (flag == "--data-dir") {
      opt.data_dir = val;
    } else {
      return usage();
    }
  }
  if (opt.data_dir.empty()) {
    opt.data_dir = opt.out_dir + "/ablation_compression_data";
  }

  banner("Ablation: block codec x scale (compressed blocks + skip filters)",
         "");  // repo extension, not a paper figure (DESIGN.md section 11)

  JsonReport report("ablation_compression");
  Table t({"scale", "codec", "algo", "adj B/edge", "read B/edge", "modeled s",
           "wall s", "skipped"});

  struct CodecRow {
    const char* label;
    BlockCodecKind kind;
  };
  const CodecRow codecs[] = {{"none", BlockCodecKind::kNone},
                             {"delta-varint", BlockCodecKind::kDeltaVarint}};

  bool ratio_ok = true;
  for (unsigned scale : opt.scales) {
    EdgeList graph = gen::rmat(scale, opt.degree, /*seed=*/42);
    const double edges = static_cast<double>(graph.edges().size());
    // Per-codec at-rest footprint, for the strict-shrink gate below.
    double adj_per_edge[2] = {0, 0};

    for (std::size_t c = 0; c < 2; ++c) {
      const CodecRow& codec = codecs[c];
      std::filesystem::path dir = std::filesystem::path(opt.data_dir) /
                                  ("scale" + std::to_string(scale)) /
                                  codec.label;
      std::filesystem::create_directories(dir);
      StoreOptions so{opt.partitions};
      so.codec = codec.kind;
      DualBlockStore store = DualBlockStore::build(graph, dir / "store", so);
      // Both grids store every edge once, hence the 2x in the denominator.
      adj_per_edge[c] =
          static_cast<double>(store_adj_bytes(store.meta())) / (2.0 * edges);

      auto record = [&](const char* algo, const RunStats& stats) {
        const double read_per_edge =
            static_cast<double>(stats.total_io.total_read_bytes()) / edges;
        t.add_row({std::to_string(scale), codec.label, algo,
                   fmt(adj_per_edge[c], 3), fmt(read_per_edge, 3),
                   fmt(stats.modeled_seconds(), 4), fmt(stats.wall_seconds, 4),
                   std::to_string(stats.codec.blocks_skipped)});
        report.add_run(
            "scale" + std::to_string(scale) + "/" + codec.label + "/" + algo,
            stats,
            {{"codec_blocks_decoded", stats.codec.blocks_decoded},
             {"codec_encoded_bytes", stats.codec.encoded_bytes},
             {"codec_decoded_bytes", stats.codec.decoded_bytes},
             {"skip_blocks_skipped", stats.codec.blocks_skipped},
             {"skip_skipped_bytes", stats.codec.skipped_bytes}},
            {{"store_adj_bytes_per_edge", adj_per_edge[c]},
             {"read_bytes_per_edge", read_per_edge}});
      };

      {
        EngineOptions o = base_options();
        o.max_iterations = 5;
        Engine e(store, o);
        PageRankProgram p;
        record("pagerank",
               e.run(p, Frontier::all(store.meta(), store.out_degrees()))
                   .stats);
      }
      {
        EngineOptions o = base_options();
        o.skip_filter = true;  // sparse BFS tails are where skips pay off
        Engine e(store, o);
        BfsProgram b{.source = 1};
        record("bfs+skip",
               e.run(b, Frontier::single(store.meta(), 1, store.out_degrees()))
                   .stats);
      }
    }

    std::printf("scale %u: adj bytes/edge none=%.3f delta-varint=%.3f "
                "(%.1f%% of raw)\n",
                scale, adj_per_edge[0], adj_per_edge[1],
                100.0 * adj_per_edge[1] / adj_per_edge[0]);
    if (!(adj_per_edge[1] < adj_per_edge[0])) {
      std::fprintf(stderr,
                   "FAIL: delta-varint did not shrink the store at scale %u "
                   "(%.3f vs %.3f bytes/edge)\n",
                   scale, adj_per_edge[1], adj_per_edge[0]);
      ratio_ok = false;
    }
  }

  t.print();
  report.write(opt.out_dir);
  if (!ratio_ok) {
    std::fprintf(stderr,
                 "ablation_compression: compression-ratio gate FAILED\n");
    return 1;
  }
  std::printf("compression-ratio gate: OK (delta-varint < none at every "
              "scale)\n");
  return 0;
}
