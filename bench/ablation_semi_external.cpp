// Ablation: semi-external (FlashGraph-like) vs out-of-core (HUS-Graph)
// across storage devices.
//
// Paper §5: "FlashGraph [23] and Graphene [16] implement a semi-external
// memory graph engine ... they both rely on expensive SSD arrays and large
// memory ... while most out-of-core systems are HDD-friendly and aim to
// achieve reasonable performance with low hardware costs."
//
// Reproduction claims:
//   * on SSD, the semi-external engine's pure selective access makes it
//     highly competitive (its whole design assumes cheap random reads);
//   * on HDD, its per-list random reads collapse while HUS-Graph degrades
//     gracefully (the hybrid predictor falls back to streaming);
//   * the semi-external engine performs zero vertex-value I/O, at the cost
//     of pinning |V| values + the CSR index in memory.
#include <cstdio>

#include "baselines/flashgraph/flash_engine.hpp"
#include "bench_support/harness.hpp"
#include "bench_support/report.hpp"
#include "husg/husg.hpp"

using namespace husg;
using namespace husg::bench;

namespace {

struct Cell {
  double modeled = 0;
  double io_gb = 0;
};

Cell run_flash(const baselines::FlashStore& store, VertexId source,
               const DeviceProfile& device) {
  baselines::FlashEngine::Options o;
  o.device = device;
  baselines::FlashEngine engine(store, o);
  BfsProgram bfs{.source = source};
  auto r = engine.run(bfs, baselines::StartSet::single(source));
  return {r.stats.modeled_seconds(), gb(r.stats.total_io.total_bytes())};
}

Cell run_hus(Dataset& ds, const DeviceProfile& device) {
  RunConfig cfg;
  cfg.algo = AlgoKind::kBfs;
  cfg.device = device;
  RunOutcome r = run_system(ds, cfg);
  return {r.modeled_seconds, r.io_gb};
}

}  // namespace

int main() {
  banner("Ablation: semi-external (FlashGraph-like) vs out-of-core "
         "(HUS-Graph)",
         "paper §5 — semi-external engines need SSDs; out-of-core hybrids "
         "stay HDD-friendly");

  Dataset ds(dataset("twitter-sim"));
  auto flash_dir = Dataset::cache_root() / "twitter-sim" / "flash_dir";
  auto flash_store = [&] {
    try {
      return baselines::FlashStore::open(flash_dir);
    } catch (const std::exception&) {
      remove_tree(flash_dir);
      return baselines::FlashStore::build(ds.graph(GraphVariant::kDirected),
                                          flash_dir);
    }
  }();
  VertexId source = ds.traversal_source();

  Table t({"device", "FlashGraph-like", "HUS-Graph", "Flash I/O GB",
           "HUS I/O GB"});
  double flash_secs[2], hus_secs[2];
  const DeviceProfile devices[2] = {bench_hdd(), bench_ssd()};
  const char* names[2] = {"HDD (scale-matched)", "SATA SSD (scale-matched)"};
  for (int d = 0; d < 2; ++d) {
    Cell f = run_flash(flash_store, source, devices[d]);
    Cell h = run_hus(ds, devices[d]);
    flash_secs[d] = f.modeled;
    hus_secs[d] = h.modeled;
    t.add_row({names[d], fmt(f.modeled, 3) + " s", fmt(h.modeled, 3) + " s",
               fmt(f.io_gb, 4), fmt(h.io_gb, 4)});
  }
  t.print();

  double flash_penalty = flash_secs[0] / flash_secs[1];
  double hus_penalty = hus_secs[0] / hus_secs[1];
  std::printf("\nHDD-vs-SSD slowdown: FlashGraph-like %.1fx, HUS-Graph "
              "%.1fx\n",
              flash_penalty, hus_penalty);
  std::printf("shape checks:\n");
  std::printf("  semi-external suffers more on HDD than HUS-Graph: %s\n",
              flash_penalty > hus_penalty ? "yes" : "NO");
  std::printf("  semi-external reads less total data (no vertex I/O, pure "
              "selectivity): %s\n",
              run_flash(flash_store, source, devices[1]).io_gb <
                      run_hus(ds, devices[1]).io_gb
                  ? "yes"
                  : "NO");
  return 0;
}
