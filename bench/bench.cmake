# One binary per reproduced table/figure (custom harness mains printing the
# paper-style rows), plus google-benchmark micro-benchmarks.
#
# Included from the top-level CMakeLists (not add_subdirectory) so that
# ${CMAKE_BINARY_DIR}/bench holds ONLY the bench executables and
# `for b in build/bench/*; do $b; done` regenerates the whole evaluation
# without tripping over CMake artifacts.
set(HUSG_BENCH_DIR ${CMAKE_SOURCE_DIR}/bench)

function(husg_bench name)
  add_executable(${name} ${HUSG_BENCH_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE husg)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

function(husg_microbench name)
  add_executable(${name} ${HUSG_BENCH_DIR}/${name}.cpp)
  target_link_libraries(${name} PRIVATE husg benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

husg_bench(table2_datasets)
husg_bench(fig01_active_edges)
husg_bench(fig07_hybrid_effect)
husg_bench(fig08_prediction)
husg_bench(table3_exec_time)
husg_bench(fig09_io_amount)
husg_bench(fig10_threads)
husg_bench(fig11_devices)
husg_bench(ablation_predictor)
husg_bench(ablation_partitioning)
husg_bench(ablation_semi_external)
husg_bench(ablation_cache)
husg_bench(ablation_compression)
husg_bench(ablation_queue_depth)
husg_bench(ablation_selftune)
husg_bench(micro_service)
husg_bench(perf_smoke)

# Regression gate: perf_smoke output must match the checked-in baseline
# (and the comparator must reject a doctored one).
add_test(NAME perf_regress
         COMMAND sh ${CMAKE_SOURCE_DIR}/tests/perf_regress_test.sh
                 $<TARGET_FILE:perf_smoke> ${CMAKE_SOURCE_DIR})

husg_microbench(micro_storage)
husg_microbench(micro_engine)
