// Low-overhead span tracer (observability layer, DESIGN.md §9).
//
// Spans cover the engine's iteration → interval → ROP-row / COP-column /
// prefetch / value-swap hierarchy, block reads and evictions in the cache,
// and job lifecycle in the service. Design constraints, in order:
//
//  1. Disabled tracing must cost nothing measurable on the hot paths: a Span
//     constructor is one relaxed atomic load and a branch, no clock read, no
//     allocation, no thread registration. Defining HUSG_OBS_DISABLE_TRACING
//     compiles every HUSG_SPAN site out entirely.
//  2. Enabled tracing must not serialize the pool: events land in per-thread
//     ring buffers (registered once per thread per session); the only global
//     lock is taken at registration and export time.
//  3. The output is Chrome-trace/Perfetto JSON ("traceEvents" with "ph":"X"
//     complete events), so `--trace-out` files open directly in
//     chrome://tracing or ui.perfetto.dev.
//
// Ring semantics: each thread keeps the most recent `events_per_thread`
// spans; older ones are overwritten and counted in dropped(). Span names and
// categories must be string literals (the tracer stores the pointers).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/profiler.hpp"

namespace husg::obs {

/// Nanoseconds since a process-wide steady-clock epoch (first call).
std::uint64_t now_ns();

namespace detail {
extern std::atomic<bool> g_tracing;
}  // namespace detail

/// Inline fast-path check: disabled span sites pay this relaxed load and a
/// branch, with no out-of-line call to perturb the surrounding codegen.
inline bool tracing_enabled() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// One completed span. `cat`/`name`/arg keys must be string literals.
struct TraceEvent {
  const char* cat = nullptr;
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< tracer-assigned, dense from 1
  const char* arg1_key = nullptr;
  std::int64_t arg1 = 0;
  const char* arg2_key = nullptr;
  std::int64_t arg2 = 0;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  /// The process-wide tracer every HUSG_SPAN records into.
  static Tracer& instance();

  /// Clears any previous session and enables recording. Each thread that
  /// records gets its own ring of `events_per_thread` events.
  void start(std::size_t events_per_thread = kDefaultCapacity);

  /// Disables recording; captured events stay available for export.
  void stop();

  /// Drops all captured events and thread buffers (recording threads
  /// re-register lazily).
  void clear();

  bool enabled() const { return tracing_enabled(); }

  /// Records one completed span on the calling thread's ring. No-op when
  /// disabled. Key/name pointers must outlive the tracer session.
  void record(const char* cat, const char* name, std::uint64_t start_ns,
              std::uint64_t dur_ns, const char* arg1_key = nullptr,
              std::int64_t arg1 = 0, const char* arg2_key = nullptr,
              std::int64_t arg2 = 0);

  /// All captured events merged across threads, sorted by start time.
  std::vector<TraceEvent> events() const;

  std::size_t event_count() const;
  std::uint64_t dropped() const;
  /// Number of registered per-thread rings (0 until something records).
  std::size_t thread_buffer_count() const;

  /// Chrome-trace JSON: {"traceEvents": [...]} with "ph":"X" complete
  /// events, timestamps in microseconds. Loads in chrome://tracing and
  /// Perfetto as-is.
  void write_chrome_json(std::ostream& os) const;

 private:
  struct ThreadBuffer;

  /// The calling thread's buffer for the current session (registers one on
  /// first use after each start()/clear()).
  ThreadBuffer* local_buffer();

  std::atomic<std::uint64_t> epoch_{1};  ///< bumped by start()/clear()

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint32_t next_tid_ = 1;
};

/// RAII span: captures the start time if the tracer is enabled at
/// construction and records on destruction. When the sampling profiler is
/// armed the span also pushes its cat/name onto the thread's live frame
/// stack (profiler.hpp), so samples attribute to the innermost span. Cheap
/// enough for block-level call sites; do not put one inside per-edge loops.
class Span {
 public:
  explicit Span(const char* cat, const char* name,
                const char* arg1_key = nullptr, std::int64_t arg1 = 0,
                const char* arg2_key = nullptr, std::int64_t arg2 = 0)
      : armed_(false), pushed_(false) {
    if (tracing_enabled() || profiling_enabled()) [[unlikely]] {
      arm(cat, name, arg1_key, arg1, arg2_key, arg2);
    }
  }

  ~Span() {
    if (armed_ || pushed_) [[unlikely]] {
      finish();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  // Outlined so a disabled span site is just the loads, the branch, and two
  // dead stores — no clock reads or calls in the inlined fast path.
  void arm(const char* cat, const char* name, const char* arg1_key,
           std::int64_t arg1, const char* arg2_key, std::int64_t arg2);
  void finish();

  // Only armed_/pushed_ are initialized on the fast path; the rest is
  // written by arm() and read by finish(), both guarded on armed_.
  bool armed_;
  bool pushed_;  ///< profiler frame pushed (popped in finish)
  const char* cat_;
  const char* name_;
  const char* arg1_key_;
  std::int64_t arg1_;
  const char* arg2_key_;
  std::int64_t arg2_;
  std::uint64_t start_ns_;
};

}  // namespace husg::obs

// HUSG_SPAN("cat", "name"[, "key", value[, "key2", value2]]) — scoped span.
#if defined(HUSG_OBS_DISABLE_TRACING)
#define HUSG_SPAN(...) \
  do {                 \
  } while (0)
#else
#define HUSG_SPAN_CONCAT2(a, b) a##b
#define HUSG_SPAN_CONCAT(a, b) HUSG_SPAN_CONCAT2(a, b)
#define HUSG_SPAN(...) \
  ::husg::obs::Span HUSG_SPAN_CONCAT(husg_span_, __COUNTER__)(__VA_ARGS__)
#endif
