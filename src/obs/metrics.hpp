// Metrics registry (observability layer, DESIGN.md §9).
//
// Three primitives — Counter (monotone), Gauge (level), Histogram
// (log-scaled latency/size distribution with p50/p95/p99) — owned by a
// Registry that exports the whole set in Prometheus text exposition format.
// The registry is the single export sink behind RunStats / CacheStats /
// ServiceStats: each ledger keeps its exact per-run bookkeeping (snapshots
// and deltas need per-instance counters) and publishes into the registry via
// its `publish()` method, while live distributions (device I/O latency,
// per-job wall time) are recorded directly into histograms as they happen.
//
// Histogram buckets are logarithmic with four linear sub-buckets per
// power of two (HdrHistogram-lite): relative quantile error is bounded by
// one sub-bucket width (< 25%), memory is a fixed 252 atomic counters, and
// record() is two relaxed fetch_adds plus two CAS min/max updates — safe and
// cheap under the thread pool.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace husg::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// Sub-bucket resolution: 2 bits = 4 linear sub-buckets per octave.
  static constexpr unsigned kSubShift = 2;
  /// Indices 0..3 are exact; 62 octaves of 4 sub-buckets cover all uint64.
  static constexpr std::size_t kBuckets = ((64 - kSubShift) << kSubShift) + 4;

  /// `scale` converts recorded integer units to exported values (a latency
  /// histogram records nanoseconds and exports seconds with scale 1e-9).
  explicit Histogram(double scale = 1.0) : scale_(scale) {}

  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  double scale() const { return scale_; }

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double scale = 1.0;

    /// Interpolated quantile in exported units; q in [0, 1].
    double quantile(double q) const;
    double mean() const {
      return count == 0
                 ? 0.0
                 : scale * static_cast<double>(sum) / static_cast<double>(count);
    }
    double min_value() const { return scale * static_cast<double>(min); }
    double max_value() const { return scale * static_cast<double>(max); }
  };

  Snapshot snapshot() const;

  /// Bucket index for a recorded value: values < 4 map exactly, larger ones
  /// to (octave, top-2-mantissa-bits).
  static std::size_t bucket_index(std::uint64_t v);
  /// Inclusive [lower, upper] value range of a bucket.
  static std::uint64_t bucket_lower(std::size_t index);
  static std::uint64_t bucket_upper(std::size_t index);

 private:
  double scale_;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_{0};
};

/// Compact latency digest derived from a Histogram snapshot; plain values so
/// ledgers (ServiceStats) can carry it by copy.
struct LatencySummary {
  std::uint64_t count = 0;
  double min_seconds = 0;
  double mean_seconds = 0;
  double max_seconds = 0;
  double p50_seconds = 0;
  double p95_seconds = 0;
  double p99_seconds = 0;

  static LatencySummary from(const Histogram::Snapshot& snap);
};

/// Named metrics, exported together. Metric names must match the Prometheus
/// grammar ([a-zA-Z_:][a-zA-Z0-9_:]*); registering the same name twice
/// returns the existing instance (the kind must match).
class Registry {
 public:
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  Histogram& histogram(const std::string& name, const std::string& help,
                       double scale = 1.0);

  /// Prometheus text exposition format: # HELP / # TYPE preambles, counter
  /// and gauge samples, histograms as cumulative `_bucket{le=...}` series
  /// plus `_sum` and `_count`.
  void write_prometheus(std::ostream& os) const;

  /// The process-wide registry the CLI exports with --metrics-out.
  static Registry& global();

 private:
  struct Metric {
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric& get_or_create(const std::string& name, const std::string& help,
                        Metric::Kind kind, double scale);

  mutable std::mutex mu_;
  std::map<std::string, Metric> metrics_;  ///< sorted => stable export order
};

/// Device-layer I/O latency histograms (registered in Registry::global();
/// see TrackedFile). Recording is gated on set_io_timing so the default
/// engine path never pays the clock reads.
struct IoLatency {
  Histogram* seq_read = nullptr;
  Histogram* rand_read = nullptr;
  Histogram* write = nullptr;
};

const IoLatency& io_latency();

void set_io_timing(bool enabled);

namespace detail {
extern std::atomic<bool> g_io_timing;
}  // namespace detail

inline bool io_timing_enabled() {
  return detail::g_io_timing.load(std::memory_order_relaxed);
}

}  // namespace husg::obs
