// Block I/O trace capture (observability layer, DESIGN.md §9).
//
// The heatmap aggregates block traffic; this recorder keeps the *stream*:
// every cache consult/admission the CachedBlockReader performs (all four
// BlockKinds, hit and miss and uncached passthrough alike), every BlockCache
// eviction, and every §3.4 ROP/COP decision with its full PredictionInputs.
// One recorded run is then enough to answer sizing questions offline — the
// replay simulator (obs/iotrace_replay.hpp, tools/husg_replay.cpp) re-drives
// the access stream through a simulated BlockCache at any budget and
// re-evaluates the recorded decisions under any PredictorFlavor, no disk or
// re-run required.
//
// Every access event carries the budget-INDEPENDENT facts of the request
// (what a hit saves, what a miss would insert and read) next to the observed
// outcome, so a replay at a different budget can take the other branch with
// exact byte accounting. The fidelity invariant — replaying at the recorded
// budget reproduces the live hit/miss/insert/reject/eviction counters and
// disk bytes — holds for single-threaded runs (multi-threaded runs record
// events in completion order and live pinning perturbs CLOCK, so replay is
// then an approximation; ctest and CI assert exactness on the 1-thread
// perf_smoke workload).
//
// Recording mirrors the tracer/heatmap gating idiom: sites pay one inline
// acquire load and a branch when disarmed; armed, events serialize into
// per-thread buffers (one leaf mutex each, uncontended off the flush path)
// that spill to the output file in ~256 KiB batches under a file mutex.
// A process-wide atomic sequence number gives the merged stream a total
// order. Arm via `husg_cli run|serve --iotrace-out FILE` or
// IoTrace::start(); volume/drop gauges surface as `husg_iotrace_*` through
// RunStats::publish().
//
// Binary format (version 1, little-endian, field-by-field — no struct
// padding on disk):
//
//   header:  magic "HUSGIOT1"            offset  0, 8 bytes
//            version        u32          offset  8
//            p              u32          offset 12
//            budget_bytes   u64          offset 16  <- doctored-trace CI
//            max_block_fraction f64      offset 24     control patches here
//            alpha          f64          offset 32
//            seq_read_bw    f64          offset 40
//            rand_read_bw   f64          offset 48
//            write_bw       f64          offset 56
//            seek_seconds   f64          offset 64
//            num_vertices   u64          offset 72
//            num_edges      u64          offset 80
//            edge_bytes     u32          offset 88
//            fill_rop u8, flavor u8, granularity u8, pad u8   offset 92
//   records: type u8 (1 access, 2 evict, 3 decision) followed by the
//            fixed fields of that record type (see the structs below).
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace husg::obs {

class Registry;

/// Mirrors husg::BlockKind (kept separate so the trace layer has no cache
/// dependency and the on-disk values are pinned).
enum class TraceBlockKind : std::uint8_t {
  kOutAdj = 0,
  kOutIdx = 1,
  kInAdj = 2,
  kInIdx = 3,
};

const char* to_string(TraceBlockKind kind);

/// What the live run observed for this request.
enum class TraceOutcome : std::uint8_t {
  kMiss = 0,
  kHit = 1,
  /// No cache attached (uncached engine): the request went straight to
  /// disk. Replay still simulates these as consults, so a trace of an
  /// uncached run yields a full miss-ratio curve.
  kBypass = 2,
};

/// What the miss path does with the block, independent of the live outcome.
enum class TraceInsertMode : std::uint8_t {
  kNone = 0,    ///< never admitted (e.g. out-adj point loads with fill off)
  kAlways = 1,  ///< admit() is always called (index blocks, in-adj streams)
  /// Whole-block ROP fill, gated on payload_bytes <= max_admissible_bytes();
  /// an oversize block skips admit() entirely (no reject is counted).
  kIfAdmissible = 2,
};

/// Live admission result (kNone when no insert was attempted).
enum class TraceAdmit : std::uint8_t {
  kNone = 0,
  kInserted = 1,
  kRejected = 2,
};

struct AccessEvent {
  std::uint64_t seq = 0;  ///< assigned by the recorder (process-wide order)
  TraceBlockKind kind = TraceBlockKind::kOutAdj;
  TraceOutcome outcome = TraceOutcome::kMiss;
  TraceInsertMode insert_mode = TraceInsertMode::kNone;
  TraceAdmit admit = TraceAdmit::kNone;
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  std::uint32_t owner = 0;  ///< job id for shared-cache (serve) traces
  /// Disk bytes a hit avoids == the direct-read size of this request.
  std::uint64_t saved_bytes = 0;
  /// In-memory payload a miss inserts (decompressed size for varint
  /// in-blocks); 0 with insert_mode kNone.
  std::uint64_t payload_bytes = 0;
  /// Disk bytes the miss-with-insert path reads (the whole block for a ROP
  /// fill; == saved_bytes for the always-admit kinds).
  std::uint64_t disk_bytes = 0;
};

struct EvictEvent {
  std::uint64_t seq = 0;
  TraceBlockKind kind = TraceBlockKind::kOutAdj;
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  std::uint64_t bytes = 0;  ///< payload bytes freed
};

/// One §3.4 interval decision with everything predict() consumed, so a
/// replay can re-run any flavor over the exact same inputs. row/column
/// bytes are recorded for every flavor (the live engine only needs
/// row_edge_bytes for kCacheAware, but a what-if under kCacheAware needs
/// them regardless of what the live run used).
struct DecisionEvent {
  std::uint64_t seq = 0;
  std::uint32_t iteration = 0;
  std::uint32_t interval = 0;
  std::uint64_t active_vertices = 0;    ///< |A_i|
  std::uint64_t active_degree_sum = 0;  ///< Σ_{v∈A_i} d_v
  std::uint32_t value_bytes = 4;        ///< N
  std::uint64_t column_edge_bytes = 0;
  std::uint64_t row_edge_bytes = 0;
  std::uint64_t cached_row_edge_bytes = 0;
  std::uint64_t cached_column_edge_bytes = 0;
  double c_rop = 0;  ///< live prediction (0 under the α shortcut)
  double c_cop = 0;
  bool used_rop = false;  ///< the live decision, post global-granularity
  bool alpha_shortcut = false;
};

/// Run parameters the replay needs, written into the trace header.
struct TraceRunInfo {
  std::uint32_t p = 0;
  std::uint64_t budget_bytes = 0;  ///< 0 = uncached run
  double max_block_fraction = 0.25;
  bool fill_rop = true;
  std::uint8_t flavor = 0;       ///< PredictorFlavor as int
  std::uint8_t granularity = 0;  ///< DecisionGranularity as int
  /// IoBackendKind the run executed with (0 = sync; pre-backend traces wrote
  /// a zero pad byte here, so they replay as sync — which they were).
  std::uint8_t backend = 0;
  double alpha = 0.05;
  /// DeviceProfile parameters (the what-if cost model).
  double seq_read_bw = 0;
  double rand_read_bw = 0;
  double write_bw = 0;
  double seek_seconds = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t edge_bytes = 4;  ///< M
};

namespace detail {
extern std::atomic<bool> g_iotrace;
}  // namespace detail

/// Inline gate for recording sites (same contract as heatmap_enabled()).
inline bool iotrace_enabled() {
  return detail::g_iotrace.load(std::memory_order_acquire);
}

class IoTrace {
 public:
  /// The process-wide recorder every instrumented site feeds.
  static IoTrace& instance();

  /// Opens `path`, writes the header, and enables recording. Throws IoError
  /// when the file cannot be opened. Must not race active recorders — arm
  /// before the run, like Heatmap::start().
  void start(const std::string& path, const TraceRunInfo& info);

  /// Disables recording, drains every thread buffer, and closes the file.
  /// Safe to call when not started (no-op).
  void stop();

  /// The event's seq is assigned internally; calls while disarmed are
  /// dropped (uncounted before the first start, counted while stopping).
  void record_access(AccessEvent e);
  void record_evict(TraceBlockKind kind, std::uint32_t row, std::uint32_t col,
                    std::uint64_t bytes);
  void record_decision(DecisionEvent e);

  bool armed() const { return iotrace_enabled(); }
  std::uint64_t events_recorded() const {
    return events_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  /// `husg_iotrace_*` volume/drop gauges. RunStats::publish() calls this
  /// when any events were recorded.
  void publish(Registry& registry) const;

 private:
  IoTrace() = default;
  struct Impl;
  Impl* impl();  // lazily built, leaked (outlives recording threads)

  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

// ---------------------------------------------------------------------------
// Reading traces back (the replay side).
// ---------------------------------------------------------------------------

/// One record of the merged stream; `type` selects the active member.
struct TraceRecord {
  enum class Type : std::uint8_t { kAccess = 1, kEvict = 2, kDecision = 3 };
  Type type = Type::kAccess;
  AccessEvent access;
  EvictEvent evict;
  DecisionEvent decision;

  std::uint64_t seq() const;
};

struct TraceFile {
  TraceRunInfo info;
  std::vector<TraceRecord> records;  ///< sorted by seq
};

/// Parses a trace written by IoTrace. Throws DataError on a bad magic,
/// unknown version, or truncated record.
TraceFile load_trace(const std::string& path);

/// One JSON object per line ({"type":"access",...}), the trace's
/// human-greppable export path (husg_replay --jsonl).
void write_jsonl(const TraceFile& trace, std::ostream& os);

}  // namespace husg::obs
