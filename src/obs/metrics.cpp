#include "obs/metrics.hpp"

#include <bit>
#include <cmath>

#include "util/common.hpp"

namespace husg::obs {

std::size_t Histogram::bucket_index(std::uint64_t v) {
  if (v < 4) return static_cast<std::size_t>(v);
  // `msb` is the position of the highest set bit (>= 2 here). The octave
  // [2^msb, 2^(msb+1)) splits into 4 linear sub-buckets selected by the two
  // mantissa bits below the msb.
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
  const std::uint64_t sub = (v >> (msb - kSubShift)) & 3u;
  return (static_cast<std::size_t>(msb - 1) << kSubShift) +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_lower(std::size_t index) {
  if (index < 4) return index;
  const unsigned msb = static_cast<unsigned>(index >> kSubShift) + 1;
  const std::uint64_t sub = index & 3u;
  return (std::uint64_t{1} << msb) + (sub << (msb - kSubShift));
}

std::uint64_t Histogram::bucket_upper(std::size_t index) {
  if (index < 4) return index;
  const unsigned msb = static_cast<unsigned>(index >> kSubShift) + 1;
  const std::uint64_t width = std::uint64_t{1} << (msb - kSubShift);
  return bucket_lower(index) + width - 1;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.scale = scale_;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    snap.counts[k] = buckets_[k].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0 : min;
  return snap;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based), then walk the cumulative
  // counts and linearly interpolate inside the bucket that crosses it.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    if (counts[k] == 0) continue;
    const std::uint64_t prev = cum;
    cum += counts[k];
    if (static_cast<double>(cum) >= rank) {
      const double lo = static_cast<double>(bucket_lower(k));
      const double hi = static_cast<double>(bucket_upper(k));
      const double frac =
          counts[k] <= 1
              ? 0.0
              : (rank - static_cast<double>(prev) - 1.0) /
                    static_cast<double>(counts[k] - 1);
      double v = lo + frac * (hi - lo);
      // Clamp to the observed range: bucket bounds can exceed the true
      // extremes, which are tracked exactly.
      v = std::min(v, static_cast<double>(max));
      v = std::max(v, static_cast<double>(min));
      return scale * v;
    }
  }
  return scale * static_cast<double>(max);
}

LatencySummary LatencySummary::from(const Histogram::Snapshot& snap) {
  LatencySummary s;
  s.count = snap.count;
  if (snap.count == 0) return s;
  s.min_seconds = snap.min_value();
  s.mean_seconds = snap.mean();
  s.max_seconds = snap.max_value();
  s.p50_seconds = snap.quantile(0.50);
  s.p95_seconds = snap.quantile(0.95);
  s.p99_seconds = snap.quantile(0.99);
  return s;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  Metric& m = get_or_create(name, help, Metric::Kind::kCounter, 1.0);
  return *m.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  Metric& m = get_or_create(name, help, Metric::Kind::kGauge, 1.0);
  return *m.gauge;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               double scale) {
  Metric& m = get_or_create(name, help, Metric::Kind::kHistogram, scale);
  return *m.histogram;
}

Registry::Metric& Registry::get_or_create(const std::string& name,
                                          const std::string& help,
                                          Metric::Kind kind, double scale) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    HUSG_CHECK(it->second.kind == kind,
               "metric registered twice with different kinds: " + name);
    return it->second;
  }
  Metric m;
  m.kind = kind;
  m.help = help;
  switch (kind) {
    case Metric::Kind::kCounter:
      m.counter = std::make_unique<Counter>();
      break;
    case Metric::Kind::kGauge:
      m.gauge = std::make_unique<Gauge>();
      break;
    case Metric::Kind::kHistogram:
      m.histogram = std::make_unique<Histogram>(scale);
      break;
  }
  return metrics_.emplace(name, std::move(m)).first->second;
}

namespace {

/// Prometheus floats: plain decimal for integers-as-doubles, scientific for
/// the rest; never locale-dependent.
void write_value(std::ostream& os, double v) {
  if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  if (std::isnan(v)) {
    os << "NaN";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void Registry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, m] : metrics_) {
    os << "# HELP " << name << " " << m.help << "\n";
    switch (m.kind) {
      case Metric::Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << " " << m.counter->value() << "\n";
        break;
      case Metric::Kind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << " ";
        write_value(os, m.gauge->value());
        os << "\n";
        break;
      case Metric::Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        const Histogram::Snapshot snap = m.histogram->snapshot();
        std::uint64_t cum = 0;
        for (std::size_t k = 0; k < Histogram::kBuckets; ++k) {
          if (snap.counts[k] == 0) continue;
          cum += snap.counts[k];
          os << name << "_bucket{le=\"";
          write_value(os, snap.scale *
                              static_cast<double>(Histogram::bucket_upper(k)));
          os << "\"} " << cum << "\n";
        }
        os << name << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
        os << name << "_sum ";
        write_value(os, snap.scale * static_cast<double>(snap.sum));
        os << "\n";
        os << name << "_count " << snap.count << "\n";
        break;
      }
    }
  }
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

namespace detail {
std::atomic<bool> g_io_timing{false};
}  // namespace detail

void set_io_timing(bool enabled) {
  detail::g_io_timing.store(enabled, std::memory_order_relaxed);
}

const IoLatency& io_latency() {
  static const IoLatency lat = [] {
    Registry& reg = Registry::global();
    IoLatency l;
    l.seq_read = &reg.histogram(
        "husg_io_seq_read_seconds",
        "Device-layer sequential read latency (enabled by --metrics-out)",
        1e-9);
    l.rand_read = &reg.histogram(
        "husg_io_rand_read_seconds",
        "Device-layer random read latency (enabled by --metrics-out)", 1e-9);
    l.write = &reg.histogram(
        "husg_io_write_seconds",
        "Device-layer write/append latency (enabled by --metrics-out)", 1e-9);
    return l;
  }();
  return lat;
}

}  // namespace husg::obs
