// Anomaly watchdog for serve mode (DESIGN.md §14).
//
// The scheduler dispatcher gathers a JobHealth row per running job (start
// time, last ProgressBeat tick, cumulative progress, mispredict streak) on
// its periodic tick and hands it to evaluate() together with the job-wall
// latency digest and a cache counter snapshot — all outside the scheduler
// lock. The watchdog diffs that picture against four rules:
//
//   stalled_job        no heartbeat tick for longer than `stall_ms`
//   slo_burn           job p95 wall above the configured `slo_ms` target
//   cache_thrash       between-tick eviction/insertion ratio above
//                      `thrash_eviction_rate` while the hit rate sits below
//                      `thrash_hit_floor` (needs `min_cache_lookups` of
//                      fresh traffic to fire — cold caches always miss)
//   mispredict_streak  a job's §3.4 predictor missed `mispredict_streak`
//                      consecutive intervals by more than 2x
//
// Active anomalies flip degraded() (the admin /readyz turns 503 with a JSON
// reason list) and clear themselves when the condition goes away. Every
// trip increments a husg_anomaly_* counter — the counters are registered at
// construction so the family is present (at zero) in every scrape — records
// a flight-recorder event, and invokes the on_trip hook (the postmortem
// bundle writer).
//
// Thread model: evaluate() runs on the scheduler dispatcher only; degraded /
// readyz_json / active are called from the admin plane and tests under the
// internal mutex. The on_trip hook runs on the dispatcher with no watchdog
// lock held.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "cache/cache_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace husg::obs {

enum class AnomalyKind : std::uint8_t {
  kStalledJob = 1,
  kSloBurn = 2,
  kCacheThrash = 3,
  kMispredictStreak = 4,
};

const char* to_string(AnomalyKind kind);

struct WatchdogOptions {
  /// No heartbeat for this long marks a running job stalled. 0 disables.
  std::uint32_t stall_ms = 5000;
  /// Job p95 wall target in milliseconds. 0 disables the SLO rule.
  std::uint32_t slo_ms = 0;
  /// Cache-thrash rule: evictions per insertion above this ...
  double thrash_eviction_rate = 0.9;
  /// ... while the between-tick hit rate is below this floor.
  double thrash_hit_floor = 0.10;
  /// Fresh lookups a tick must see before the thrash rule can fire.
  std::uint64_t min_cache_lookups = 1024;
  /// Consecutive 2x predictor misses before the streak rule fires.
  /// 0 disables.
  std::uint32_t mispredict_streak = 8;
};

/// One running job's health as sampled by the scheduler tick.
struct JobHealth {
  std::uint64_t id = 0;
  std::string name;
  std::uint64_t start_ns = 0;      ///< now_ns() timeline
  std::uint64_t last_tick_ns = 0;  ///< 0 = no heartbeat yet (use start_ns)
  std::uint64_t iteration = 0;
  std::uint64_t edges = 0;
  std::uint64_t io_bytes = 0;
  std::uint32_t mispredict_streak = 0;
  /// Live CPU/wait attribution (§15); valid when has_usage. Lets the
  /// stalled/SLO rules say WHY a job is slow, not just that it is.
  JobUsageSnapshot usage;
  bool has_usage = false;
};

/// Classifies a job's dominant wall component from its usage split:
/// "decode-bound" (decode >= 40% of wall), "lock-bound" (lock wait >= 25%),
/// "io-bound" (io wait >= 40%), "cpu-bound" (cpu >= 40%), else "mixed".
/// Decode outranks the others because decode time is also CPU time — a
/// decode-dominated job should be attacked at the codec, not the scheduler.
const char* classify_bound(const JobUsageSnapshot& usage, double wall_seconds);

struct Anomaly {
  AnomalyKind kind = AnomalyKind::kStalledJob;
  std::uint64_t job = 0;  ///< 0 = service-wide (SLO, cache)
  std::string detail;
  std::uint64_t since_ns = 0;
};

class AnomalyWatchdog {
 public:
  explicit AnomalyWatchdog(WatchdogOptions options,
                           Registry& registry = Registry::global());

  /// One scheduler tick: re-derive the active anomaly set. `wall` is the
  /// completed-job latency digest; `cache` may be null (no shared cache).
  void evaluate(const std::vector<JobHealth>& jobs, const LatencySummary& wall,
                const CacheStats* cache);

  /// Fired once per anomaly transition from absent to active, on the
  /// evaluating thread with no lock held.
  void set_on_trip(std::function<void(const Anomaly&)> fn) {
    on_trip_ = std::move(fn);
  }

  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  std::vector<Anomaly> active() const;
  /// {"status":"degraded","reasons":[...]} — the /readyz 503 body.
  std::string readyz_json() const;
  /// Anomaly trips since construction (all kinds).
  std::uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }

  const WatchdogOptions& options() const { return opts_; }

  /// husg_anomaly_active gauge (counters update at trip time).
  void publish(Registry& registry) const;

 private:
  /// Stable identity of an anomaly across ticks.
  static std::uint64_t key(AnomalyKind kind, std::uint64_t job) {
    return (static_cast<std::uint64_t>(kind) << 56) | (job & 0xffffffffffffull);
  }
  Counter& counter_for(AnomalyKind kind);

  WatchdogOptions opts_;
  std::function<void(const Anomaly&)> on_trip_;

  Counter* stalled_total_;
  Counter* slo_total_;
  Counter* thrash_total_;
  Counter* mispredict_total_;
  Gauge* active_gauge_;

  mutable std::mutex mu_;
  std::vector<Anomaly> active_;  ///< few entries; linear scans are fine
  std::atomic<bool> degraded_{false};
  std::atomic<std::uint64_t> trips_{0};
  bool have_prev_cache_ = false;
  CacheStats prev_cache_;
};

}  // namespace husg::obs
