#include "obs/calibrate.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace husg::obs {

namespace detail {
std::atomic<std::uint32_t> g_calibrate_every{0};
std::atomic<std::uint64_t> g_calibrate_tick{0};
}  // namespace detail

const char* to_string(CalibrationMode mode) {
  switch (mode) {
    case CalibrationMode::kOff:
      return "off";
    case CalibrationMode::kObserve:
      return "observe";
    case CalibrationMode::kApply:
      return "apply";
  }
  return "?";
}

bool parse_calibration_mode(const std::string& text, CalibrationMode& out) {
  if (text == "off") {
    out = CalibrationMode::kOff;
  } else if (text == "observe") {
    out = CalibrationMode::kObserve;
  } else if (text == "apply") {
    out = CalibrationMode::kApply;
  } else {
    return false;
  }
  return true;
}

DeviceCalibrator& DeviceCalibrator::instance() {
  static DeviceCalibrator* cal = new DeviceCalibrator();  // leaked on purpose
  return *cal;
}

DeviceCalibrator::DeviceCalibrator() : DeviceCalibrator(Options{}) {}

DeviceCalibrator::DeviceCalibrator(Options options) : opts_(options) {}

void DeviceCalibrator::arm(const DeviceProfile& preset, CalibrationMode mode) {
  arm(preset, mode, opts_.sample_every);
}

void DeviceCalibrator::arm(const DeviceProfile& preset, CalibrationMode mode,
                           std::uint32_t sample_every) {
  reset();
  {
    std::lock_guard<std::mutex> lock(mu_);
    preset_ = preset;
    mode_ = mode;
  }
  detail::g_calibrate_tick.store(0, std::memory_order_relaxed);
  detail::g_calibrate_every.store(
      mode == CalibrationMode::kOff ? 0 : std::max(sample_every, 1u),
      std::memory_order_release);
}

void DeviceCalibrator::disarm() {
  detail::g_calibrate_every.store(0, std::memory_order_release);
}

CalibrationMode DeviceCalibrator::mode() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mode_;
}

void DeviceCalibrator::record_random(std::uint64_t ops, std::uint64_t bytes,
                                     std::uint64_t ns) {
  if (ops == 0) return;
  const double seconds = static_cast<double>(ns) * 1e-9;
  const double per_op_seconds = seconds / static_cast<double>(ops);
  const double per_op_bytes =
      static_cast<double>(bytes) / static_cast<double>(ops);
  std::lock_guard<std::mutex> lock(mu_);
  // Outlier clamp: once the class has a few samples, a per-op latency far
  // above the EWMA mean is a scheduling hiccup, not the device.
  if (rand_latency_.samples >= std::max<std::uint64_t>(opts_.min_samples / 8, 4) &&
      per_op_seconds > opts_.outlier_factor * rand_latency_.value) {
    ++outliers_;
    return;
  }
  rand_latency_.add(per_op_seconds, opts_.ewma_alpha);
  rand_bytes_.add(per_op_bytes, opts_.ewma_alpha);
  if (ops >= 4) {
    // Queue-lane estimate: a batch of K ops that completes faster than K
    // serial ops reveals the device's effective concurrency. Modeled serial
    // time uses the current per-op estimates, so this only feeds after the
    // latency EWMA has something to say.
    if (rand_latency_.samples >= 4 && seconds > 0) {
      const double serial =
          static_cast<double>(ops) *
          (rand_latency_.value > 0 ? rand_latency_.value : per_op_seconds);
      const double lanes = std::clamp(serial / seconds, 1.0, 256.0);
      lanes_.add(lanes, opts_.ewma_alpha);
    }
  }
}

void DeviceCalibrator::record_sequential(std::uint64_t bytes,
                                         std::uint64_t ns) {
  const double seconds = static_cast<double>(ns) * 1e-9;
  std::lock_guard<std::mutex> lock(mu_);
  if (seq_seconds_.samples >= std::max<std::uint64_t>(opts_.min_samples / 8, 4) &&
      seconds > opts_.outlier_factor * std::max(seq_seconds_.value, 1e-9)) {
    ++outliers_;
    return;
  }
  seq_seconds_.add(seconds, opts_.ewma_alpha);
  seq_bytes_.add(static_cast<double>(bytes), opts_.ewma_alpha);
}

void DeviceCalibrator::record_write(std::uint64_t bytes, std::uint64_t ns) {
  const double seconds = static_cast<double>(ns) * 1e-9;
  std::lock_guard<std::mutex> lock(mu_);
  if (write_seconds_.samples >= std::max<std::uint64_t>(opts_.min_samples / 8, 4) &&
      seconds > opts_.outlier_factor * std::max(write_seconds_.value, 1e-9)) {
    ++outliers_;
    return;
  }
  write_seconds_.add(seconds, opts_.ewma_alpha);
  write_bytes_.add(static_cast<double>(bytes), opts_.ewma_alpha);
}

bool DeviceCalibrator::warm() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rand_latency_.samples >= opts_.min_samples &&
         seq_seconds_.samples >= opts_.min_samples;
}

double DeviceCalibrator::seq_bw_locked() const {
  if (seq_seconds_.samples == 0 || seq_seconds_.value <= 0) return 0;
  return seq_bytes_.value / seq_seconds_.value;
}

CalibrationSnapshot DeviceCalibrator::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  CalibrationSnapshot s;
  s.mode = mode_;
  s.sample_every = detail::g_calibrate_every.load(std::memory_order_relaxed);
  s.rand_samples = rand_latency_.samples;
  s.seq_samples = seq_seconds_.samples;
  s.write_samples = write_seconds_.samples;
  s.batch_samples = lanes_.samples;
  s.outliers = outliers_;
  s.rand_latency_seconds = rand_latency_.value;
  s.rand_bytes = rand_bytes_.value;
  s.seq_bw = seq_bw_locked();
  s.write_bw = write_seconds_.samples > 0 && write_seconds_.value > 0
                   ? write_bytes_.value / write_seconds_.value
                   : 0;
  s.lanes = lanes_.value;
  s.warm = rand_latency_.samples >= opts_.min_samples &&
           seq_seconds_.samples >= opts_.min_samples;
  return s;
}

DeviceProfile DeviceCalibrator::calibrated_locked(
    const DeviceProfile& preset) const {
  DeviceProfile out = preset;
  out.name = preset.name.empty() ? "calibrated" : preset.name + "+calibrated";
  const double seq_bw = seq_bw_locked();
  if (seq_seconds_.samples >= opts_.min_samples && seq_bw > 0) {
    out.seq_read_bw = seq_bw;
  }
  if (write_seconds_.samples >= opts_.min_samples &&
      write_seconds_.value > 0) {
    out.write_bw = write_bytes_.value / write_seconds_.value;
  }
  if (rand_latency_.samples >= opts_.min_samples) {
    // Transfer happens at the measured streaming rate; everything the mean
    // per-op latency holds beyond the transfer time is per-op positioning.
    const double transfer_bw =
        out.seq_read_bw > 0 ? out.seq_read_bw : preset.rand_read_bw;
    if (transfer_bw > 0) {
      out.rand_read_bw = transfer_bw;
      out.seek_seconds = std::max(
          0.0, rand_latency_.value - rand_bytes_.value / transfer_bw);
    }
  }
  if (lanes_.samples >= std::max<std::uint64_t>(opts_.min_samples / 8, 4)) {
    out.queue_lanes = static_cast<std::uint32_t>(
        std::clamp(std::llround(lanes_.value), 1ll, 256ll));
  }
  return out;
}

DeviceProfile DeviceCalibrator::calibrated(const DeviceProfile& preset) const {
  std::lock_guard<std::mutex> lock(mu_);
  return calibrated_locked(preset);
}

DeviceProfile DeviceCalibrator::calibrated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return calibrated_locked(preset_);
}

const DeviceProfile& DeviceCalibrator::preset() const {
  // preset_ only changes under arm(); callers hold it by reference across a
  // run, never across re-arms.
  return preset_;
}

void DeviceCalibrator::publish(Registry& registry) const {
  CalibrationSnapshot s;
  DeviceProfile preset;
  DeviceProfile cal;
  {
    std::lock_guard<std::mutex> lock(mu_);
    preset = preset_;
    cal = calibrated_locked(preset_);
  }
  s = snapshot();
  registry
      .gauge("husg_calibration_mode",
             "Calibration mode of the current run (0 off, 1 observe, 2 apply)")
      .set(static_cast<double>(s.mode));
  registry
      .gauge("husg_calibration_warm",
             "1 once the random and sequential classes passed the warmup "
             "floor")
      .set(s.warm ? 1 : 0);
  registry
      .gauge("husg_calibration_rand_samples",
             "Accepted random-read latency samples")
      .set(static_cast<double>(s.rand_samples));
  registry
      .gauge("husg_calibration_seq_samples",
             "Accepted sequential-read latency samples")
      .set(static_cast<double>(s.seq_samples));
  registry
      .gauge("husg_calibration_write_samples",
             "Accepted write latency samples")
      .set(static_cast<double>(s.write_samples));
  registry
      .gauge("husg_calibration_outlier_samples",
             "Latency samples dropped by the outlier clamp")
      .set(static_cast<double>(s.outliers));
  registry
      .gauge("husg_calibration_seek_seconds",
             "Measured per-op random-read positioning cost (preset value "
             "until warm)")
      .set(cal.seek_seconds);
  registry
      .gauge("husg_calibration_seq_read_bw_bytes_per_second",
             "Measured sequential read bandwidth (preset value until warm)")
      .set(cal.seq_read_bw);
  registry
      .gauge("husg_calibration_rand_read_bw_bytes_per_second",
             "Measured random-read transfer bandwidth (preset value until "
             "warm)")
      .set(cal.rand_read_bw);
  registry
      .gauge("husg_calibration_write_bw_bytes_per_second",
             "Measured write bandwidth (preset value until warm)")
      .set(cal.write_bw);
  registry
      .gauge("husg_calibration_queue_lanes",
             "Measured effective concurrent request streams")
      .set(static_cast<double>(cal.queue_lanes));
  registry
      .gauge("husg_calibration_preset_seek_seconds",
             "Preset per-op positioning cost the run was configured with")
      .set(preset.seek_seconds);
  registry
      .gauge("husg_calibration_preset_seq_read_bw_bytes_per_second",
             "Preset sequential read bandwidth the run was configured with")
      .set(preset.seq_read_bw);
}

namespace {

void write_profile_json(std::ostream& os, const DeviceProfile& p) {
  os << "{\"name\":\"" << p.name << "\",\"seq_read_bw\":" << p.seq_read_bw
     << ",\"rand_read_bw\":" << p.rand_read_bw << ",\"write_bw\":" << p.write_bw
     << ",\"seek_seconds\":" << p.seek_seconds
     << ",\"queue_lanes\":" << p.queue_lanes << "}";
}

}  // namespace

void DeviceCalibrator::write_json(std::ostream& os) const {
  DeviceProfile preset;
  DeviceProfile cal;
  {
    std::lock_guard<std::mutex> lock(mu_);
    preset = preset_;
    cal = calibrated_locked(preset_);
  }
  const CalibrationSnapshot s = snapshot();
  os << "{\"mode\":\"" << to_string(s.mode)
     << "\",\"sample_every\":" << s.sample_every
     << ",\"warm\":" << (s.warm ? "true" : "false") << ",\"samples\":{\"random\":"
     << s.rand_samples << ",\"sequential\":" << s.seq_samples
     << ",\"write\":" << s.write_samples << ",\"batch\":" << s.batch_samples
     << ",\"outliers\":" << s.outliers << "},\"ewma\":{\"rand_latency_seconds\":"
     << s.rand_latency_seconds << ",\"rand_bytes\":" << s.rand_bytes
     << ",\"seq_bw\":" << s.seq_bw << ",\"write_bw\":" << s.write_bw
     << ",\"lanes\":" << s.lanes << "},\"preset\":";
  write_profile_json(os, preset);
  os << ",\"calibrated\":";
  write_profile_json(os, cal);
  os << "}\n";
}

void DeviceCalibrator::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = CalibrationMode::kOff;
  rand_latency_ = Ewma{};
  rand_bytes_ = Ewma{};
  seq_seconds_ = Ewma{};
  seq_bytes_ = Ewma{};
  write_seconds_ = Ewma{};
  write_bytes_ = Ewma{};
  lanes_ = Ewma{};
  outliers_ = 0;
}

}  // namespace husg::obs
