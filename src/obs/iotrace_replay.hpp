// Offline replay simulator for block I/O traces (DESIGN.md §9).
//
// Re-drives a recorded access stream (obs/iotrace.hpp) through a simulated
// BlockCache — the REAL cache class, so CLOCK second-chance order, the
// admission policy, and duplicate-key handling are the production code, not
// a model — with no disk I/O: payloads are re-materialized at their recorded
// sizes. Three questions a single trace answers:
//
//  * fidelity  — replay_cache() at the recorded budget must equal
//                live_counters() (the outcomes written in the trace) on
//                every counter, including modeled disk bytes. ctest and CI
//                assert this on the single-threaded perf_smoke workload;
//                multi-threaded traces replay in completion order, so there
//                it is an approximation.
//  * sizing    — miss_ratio_curve() sweeps budgets and recommends the knee
//                (max distance to the chord, the standard MRC heuristic).
//                Note CLOCK is not a stack algorithm, so monotonicity in
//                budget is an empirical property, not a theorem; the curve
//                reports whatever the simulation produces.
//  * what-if   — whatif_predictor() re-evaluates every recorded §3.4
//                decision under another PredictorFlavor (each DecisionEvent
//                carries the full PredictionInputs, including the live
//                resident row/column bytes, so every flavor re-costs
//                exactly) and reports how many ROP/COP choices flip plus
//                the modeled I/O delta.
#pragma once

#include <cstdint>
#include <vector>

#include "core/predictor.hpp"
#include "obs/iotrace.hpp"

namespace husg::obs {

/// Counters of one (simulated or live) pass over the access stream.
struct ReplayCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t admission_rejects = 0;
  std::uint64_t bytes_saved = 0;
  /// Modeled disk read bytes of the adjacency/index stream: 0 per hit, the
  /// insert-path read per admitted miss, the direct-read size otherwise.
  std::uint64_t disk_read_bytes = 0;

  std::uint64_t lookups() const { return hits + misses; }
  double miss_ratio() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(misses) /
                                static_cast<double>(lookups());
  }
  bool operator==(const ReplayCounters&) const = default;
};

/// What the live run observed, reconstructed from the recorded outcomes
/// (kBypass events — uncached runs — count toward nothing but disk bytes).
ReplayCounters live_counters(const TraceFile& trace);

/// Simulates the access stream against a fresh BlockCache of the given
/// budget. Budget 0 skips the cache entirely (all counters zero, disk bytes
/// = the direct-read stream), matching a live uncached run.
ReplayCounters replay_cache(const TraceFile& trace,
                            std::uint64_t budget_bytes,
                            double max_block_fraction);

struct MissRatioPoint {
  std::uint64_t budget_bytes = 0;
  ReplayCounters counters;
};

struct MissRatioCurve {
  std::vector<MissRatioPoint> points;  ///< sorted by budget, ascending
  /// Knee of (budget, miss_ratio): the point with maximum perpendicular
  /// distance to the chord between the curve's endpoints (normalized axes).
  std::uint64_t knee_budget_bytes = 0;
  /// Σ over distinct keys of the largest payload seen — the budget beyond
  /// which every block fits at once (the sweep's upper end is 1.25× this).
  std::uint64_t unique_payload_bytes = 0;
};

/// Budget sweep: geometric steps from unique_payload_bytes/64 up to 1.25×
/// unique_payload_bytes, plus the recorded budget when nonzero. Budget 0 is
/// excluded — with no cache there are no lookups and no miss ratio.
MissRatioCurve miss_ratio_curve(const TraceFile& trace,
                                std::size_t num_points = 16);

struct WhatIfResult {
  PredictorFlavor flavor = PredictorFlavor::kPaper;
  std::uint64_t decisions = 0;  ///< interval decisions re-evaluated
  std::uint64_t flips = 0;      ///< decisions differing from the live run
  /// Σ modeled seconds of the chosen model per interval, under `flavor` /
  /// under the trace's own flavor (both recomputed from recorded inputs, so
  /// α-shortcut intervals get real costs and the delta is apples-to-apples).
  double modeled_io_seconds = 0;
  double baseline_modeled_io_seconds = 0;
  /// Recomputed baseline decisions that disagree with the recorded ones — a
  /// consistency check, 0 when the trace came from a single-threaded run.
  std::uint64_t baseline_mismatches = 0;
};

/// Re-evaluates every recorded decision under `flavor`, mirroring the
/// engine's decision rule at the trace's recorded granularity (global α
/// shortcut + summed costs, or per-interval predict()).
WhatIfResult whatif_predictor(const TraceFile& trace, PredictorFlavor flavor);

}  // namespace husg::obs
