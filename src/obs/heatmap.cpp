#include "obs/heatmap.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace husg::obs {

namespace detail {
std::atomic<bool> g_heatmap{false};
}  // namespace detail

const char* to_string(HeatDir dir) {
  return dir == HeatDir::kOut ? "out" : "in";
}

Heatmap& Heatmap::instance() {
  static Heatmap* heatmap = new Heatmap();  // leaked: outlives all threads
  return *heatmap;
}

void Heatmap::start(std::uint32_t p) {
  std::lock_guard<std::mutex> lock(mu_);
  detail::g_heatmap.store(false, std::memory_order_release);
  p_ = p;
  const std::size_t n = 2ull * p * p * kFields;
  cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (std::size_t k = 0; k < n; ++k) {
    cells_[k].store(0, std::memory_order_relaxed);
  }
  // Release-publish the array: recorders gate on an acquire load.
  detail::g_heatmap.store(p > 0, std::memory_order_release);
}

void Heatmap::stop() {
  std::lock_guard<std::mutex> lock(mu_);
  detail::g_heatmap.store(false, std::memory_order_release);
}

void Heatmap::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  detail::g_heatmap.store(false, std::memory_order_release);
  p_ = 0;
  cells_.reset();
}

bool Heatmap::has_data() const {
  if (p_ == 0 || cells_ == nullptr) return false;
  const std::size_t n = 2ull * p_ * p_ * kFields;
  for (std::size_t k = 0; k < n; ++k) {
    if (cells_[k].load(std::memory_order_relaxed) != 0) return true;
  }
  return false;
}

void Heatmap::bump(HeatDir dir, std::uint32_t row, std::uint32_t col,
                   std::size_t field, std::uint64_t delta) {
  // Recorders re-check the gate (call sites already did, but stop() can land
  // between their check and this call; the array itself stays valid until
  // clear(), which must not race recording).
  if (!heatmap_enabled()) return;
  if (row >= p_ || col >= p_) return;
  cells_[index(dir, row, col) + field].fetch_add(delta,
                                                 std::memory_order_relaxed);
}

void Heatmap::record_read(HeatDir dir, std::uint32_t row, std::uint32_t col,
                          std::uint64_t bytes) {
  record_read(dir, row, col, bytes, bytes);
}

void Heatmap::record_read(HeatDir dir, std::uint32_t row, std::uint32_t col,
                          std::uint64_t bytes, std::uint64_t payload_bytes) {
  bump(dir, row, col, 0, 1);
  bump(dir, row, col, 1, bytes);
  bump(dir, row, col, 5, payload_bytes);
}

void Heatmap::record_hit(HeatDir dir, std::uint32_t row, std::uint32_t col) {
  bump(dir, row, col, 2, 1);
}

void Heatmap::record_miss(HeatDir dir, std::uint32_t row, std::uint32_t col) {
  bump(dir, row, col, 3, 1);
}

void Heatmap::record_eviction(HeatDir dir, std::uint32_t row,
                              std::uint32_t col) {
  bump(dir, row, col, 4, 1);
}

HeatCell Heatmap::cell(HeatDir dir, std::uint32_t row,
                       std::uint32_t col) const {
  HeatCell c;
  if (p_ == 0 || cells_ == nullptr || row >= p_ || col >= p_) return c;
  const std::size_t base = index(dir, row, col);
  c.reads = cells_[base + 0].load(std::memory_order_relaxed);
  c.bytes = cells_[base + 1].load(std::memory_order_relaxed);
  c.hits = cells_[base + 2].load(std::memory_order_relaxed);
  c.misses = cells_[base + 3].load(std::memory_order_relaxed);
  c.evictions = cells_[base + 4].load(std::memory_order_relaxed);
  c.payload_bytes = cells_[base + 5].load(std::memory_order_relaxed);
  return c;
}

std::vector<HotBlock> Heatmap::hottest(std::size_t k) const {
  std::vector<HotBlock> all;
  for (HeatDir dir : {HeatDir::kOut, HeatDir::kIn}) {
    for (std::uint32_t i = 0; i < p_; ++i) {
      for (std::uint32_t j = 0; j < p_; ++j) {
        HeatCell c = cell(dir, i, j);
        if (c.empty()) continue;
        all.push_back(HotBlock{dir, i, j, c});
      }
    }
  }
  std::sort(all.begin(), all.end(), [](const HotBlock& a, const HotBlock& b) {
    if (a.cell.accesses() != b.cell.accesses()) {
      return a.cell.accesses() > b.cell.accesses();
    }
    return a.cell.bytes > b.cell.bytes;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

namespace {

double skew(const std::vector<std::uint64_t>& totals) {
  std::uint64_t sum = 0, max = 0;
  for (std::uint64_t t : totals) {
    sum += t;
    max = std::max(max, t);
  }
  if (sum == 0 || totals.empty()) return 0.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(totals.size());
  return static_cast<double>(max) / mean;
}

}  // namespace

double Heatmap::row_skew() const {
  std::vector<std::uint64_t> rows(p_, 0);
  for (HeatDir dir : {HeatDir::kOut, HeatDir::kIn}) {
    for (std::uint32_t i = 0; i < p_; ++i) {
      for (std::uint32_t j = 0; j < p_; ++j) {
        rows[i] += cell(dir, i, j).accesses();
      }
    }
  }
  return skew(rows);
}

double Heatmap::col_skew() const {
  std::vector<std::uint64_t> cols(p_, 0);
  for (HeatDir dir : {HeatDir::kOut, HeatDir::kIn}) {
    for (std::uint32_t i = 0; i < p_; ++i) {
      for (std::uint32_t j = 0; j < p_; ++j) {
        cols[j] += cell(dir, i, j).accesses();
      }
    }
  }
  return skew(cols);
}

namespace {

void write_cell_json(std::ostream& os, HeatDir dir, std::uint32_t row,
                     std::uint32_t col, const HeatCell& c) {
  os << "{\"dir\": \"" << to_string(dir) << "\", \"row\": " << row
     << ", \"col\": " << col << ", \"reads\": " << c.reads
     << ", \"bytes\": " << c.bytes
     << ", \"payload_bytes\": " << c.payload_bytes << ", \"hits\": " << c.hits
     << ", \"misses\": " << c.misses << ", \"evictions\": " << c.evictions
     << "}";
}

}  // namespace

void Heatmap::write_json(std::ostream& os, std::size_t top_k) const {
  os << "{\n  \"p\": " << p_ << ",\n  \"blocks\": [\n";
  bool first = true;
  for (HeatDir dir : {HeatDir::kOut, HeatDir::kIn}) {
    for (std::uint32_t i = 0; i < p_; ++i) {
      for (std::uint32_t j = 0; j < p_; ++j) {
        HeatCell c = cell(dir, i, j);
        if (c.empty()) continue;
        if (!first) os << ",\n";
        first = false;
        os << "    ";
        write_cell_json(os, dir, i, j, c);
      }
    }
  }
  os << "\n  ],\n  \"hottest\": [\n";
  std::vector<HotBlock> top = hottest(top_k);
  for (std::size_t k = 0; k < top.size(); ++k) {
    os << "    ";
    write_cell_json(os, top[k].dir, top[k].row, top[k].col, top[k].cell);
    os << (k + 1 < top.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"row_skew\": " << row_skew()
     << ",\n  \"col_skew\": " << col_skew() << "\n}\n";
}

void Heatmap::write_csv(std::ostream& os) const {
  os << "dir,row,col,reads,bytes,payload_bytes,hits,misses,evictions\n";
  for (HeatDir dir : {HeatDir::kOut, HeatDir::kIn}) {
    for (std::uint32_t i = 0; i < p_; ++i) {
      for (std::uint32_t j = 0; j < p_; ++j) {
        HeatCell c = cell(dir, i, j);
        if (c.empty()) continue;
        os << to_string(dir) << "," << i << "," << j << "," << c.reads << ","
           << c.bytes << "," << c.payload_bytes << "," << c.hits << ","
           << c.misses << "," << c.evictions << "\n";
      }
    }
  }
}

void Heatmap::publish(Registry& reg) const {
  std::uint64_t touched = 0;
  for (HeatDir dir : {HeatDir::kOut, HeatDir::kIn}) {
    for (std::uint32_t i = 0; i < p_; ++i) {
      for (std::uint32_t j = 0; j < p_; ++j) {
        if (!cell(dir, i, j).empty()) ++touched;
      }
    }
  }
  reg.gauge("husg_heatmap_blocks_touched",
            "Adjacency blocks with any recorded access")
      .set(static_cast<double>(touched));
  reg.gauge("husg_heatmap_row_skew",
            "max/mean of per-interval-row block accesses (1 = uniform)")
      .set(row_skew());
  reg.gauge("husg_heatmap_col_skew",
            "max/mean of per-interval-col block accesses (1 = uniform)")
      .set(col_skew());
  std::vector<HotBlock> top = hottest(1);
  if (!top.empty()) {
    reg.gauge("husg_heatmap_hottest_accesses",
              "Disk reads + cache hits of the hottest block")
        .set(static_cast<double>(top[0].cell.accesses()));
    reg.gauge("husg_heatmap_hottest_row", "Interval row of the hottest block")
        .set(static_cast<double>(top[0].row));
    reg.gauge("husg_heatmap_hottest_col", "Interval col of the hottest block")
        .set(static_cast<double>(top[0].col));
  }
}

}  // namespace husg::obs
