#include "obs/watchdog.hpp"

#include <algorithm>
#include <sstream>

#include "obs/flight_recorder.hpp"

namespace husg::obs {

const char* classify_bound(const JobUsageSnapshot& usage,
                           double wall_seconds) {
  if (wall_seconds <= 0) return "mixed";
  const double cpu = static_cast<double>(usage.cpu_ns) / 1e9 / wall_seconds;
  const double io = static_cast<double>(usage.io_wait_ns) / 1e9 / wall_seconds;
  const double lock =
      static_cast<double>(usage.lock_wait_ns) / 1e9 / wall_seconds;
  const double decode =
      static_cast<double>(usage.decode_ns) / 1e9 / wall_seconds;
  if (decode >= 0.40) return "decode-bound";
  if (lock >= 0.25) return "lock-bound";
  if (io >= 0.40) return "io-bound";
  if (cpu >= 0.40) return "cpu-bound";
  return "mixed";
}

namespace {

/// "io-bound (cpu 12% / io 71% / lock 2% of wall)" — appended to anomaly
/// details when the scheduler supplied usage for the job.
void append_bound(std::ostringstream& os, const JobUsageSnapshot& usage,
                  double wall_seconds) {
  if (wall_seconds <= 0) return;
  auto pct = [wall_seconds](std::uint64_t ns) {
    return static_cast<int>(100.0 * static_cast<double>(ns) / 1e9 /
                            wall_seconds);
  };
  os << "; " << classify_bound(usage, wall_seconds) << " (cpu "
     << pct(usage.cpu_ns) << "% / io " << pct(usage.io_wait_ns) << "% / lock "
     << pct(usage.lock_wait_ns) << "% / decode " << pct(usage.decode_ns)
     << "% of wall)";
}

}  // namespace

const char* to_string(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kStalledJob:
      return "stalled_job";
    case AnomalyKind::kSloBurn:
      return "slo_burn";
    case AnomalyKind::kCacheThrash:
      return "cache_thrash";
    case AnomalyKind::kMispredictStreak:
      return "mispredict_streak";
  }
  return "unknown";
}

AnomalyWatchdog::AnomalyWatchdog(WatchdogOptions options, Registry& registry)
    : opts_(options),
      // Registered eagerly so every husg_anomaly_* family shows up (at zero)
      // in scrapes taken before the first trip.
      stalled_total_(&registry.counter(
          "husg_anomaly_stalled_jobs_total",
          "Watchdog trips: running job with no heartbeat for stall_ms")),
      slo_total_(&registry.counter(
          "husg_anomaly_slo_burn_total",
          "Watchdog trips: job p95 wall above the --slo-ms target")),
      thrash_total_(&registry.counter(
          "husg_anomaly_cache_thrash_total",
          "Watchdog trips: cache evicting hard while the hit rate is low")),
      mispredict_total_(&registry.counter(
          "husg_anomaly_mispredict_streak_total",
          "Watchdog trips: consecutive 2x predictor misses")),
      active_gauge_(&registry.gauge("husg_anomaly_active",
                                    "Currently active watchdog anomalies")) {}

Counter& AnomalyWatchdog::counter_for(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kStalledJob:
      return *stalled_total_;
    case AnomalyKind::kSloBurn:
      return *slo_total_;
    case AnomalyKind::kCacheThrash:
      return *thrash_total_;
    case AnomalyKind::kMispredictStreak:
      return *mispredict_total_;
  }
  return *stalled_total_;
}

void AnomalyWatchdog::evaluate(const std::vector<JobHealth>& jobs,
                               const LatencySummary& wall,
                               const CacheStats* cache) {
  const std::uint64_t now = now_ns();
  std::vector<Anomaly> current;

  if (opts_.stall_ms > 0) {
    const std::uint64_t limit =
        static_cast<std::uint64_t>(opts_.stall_ms) * 1'000'000ull;
    for (const JobHealth& j : jobs) {
      const std::uint64_t last = std::max(j.last_tick_ns, j.start_ns);
      if (now <= last || now - last <= limit) continue;
      Anomaly a;
      a.kind = AnomalyKind::kStalledJob;
      a.job = j.id;
      std::ostringstream detail;
      detail << "job " << j.id << " (" << j.name << ") silent for "
             << (now - last) / 1'000'000 << " ms at iteration " << j.iteration;
      if (j.has_usage) {
        append_bound(detail,
                     j.usage,
                     static_cast<double>(now - std::min(now, j.start_ns)) *
                         1e-9);
      }
      a.detail = detail.str();
      current.push_back(std::move(a));
    }
  }

  if (opts_.mispredict_streak > 0) {
    for (const JobHealth& j : jobs) {
      if (j.mispredict_streak < opts_.mispredict_streak) continue;
      Anomaly a;
      a.kind = AnomalyKind::kMispredictStreak;
      a.job = j.id;
      std::ostringstream detail;
      detail << "job " << j.id << " (" << j.name << ") predictor missed "
             << j.mispredict_streak << " intervals in a row";
      a.detail = detail.str();
      current.push_back(std::move(a));
    }
  }

  if (opts_.slo_ms > 0 && wall.count > 0) {
    const double p95_ms = wall.p95_seconds * 1e3;
    if (p95_ms > static_cast<double>(opts_.slo_ms)) {
      Anomaly a;
      a.kind = AnomalyKind::kSloBurn;
      std::ostringstream detail;
      detail << "job wall p95 " << p95_ms << " ms over the " << opts_.slo_ms
             << " ms target (" << wall.count << " jobs)";
      // Aggregate the running jobs' usage so the burn says what the service
      // is currently spending its wall on.
      JobUsageSnapshot agg;
      double agg_wall = 0;
      for (const JobHealth& j : jobs) {
        if (!j.has_usage) continue;
        agg.cpu_ns += j.usage.cpu_ns;
        agg.io_wait_ns += j.usage.io_wait_ns;
        agg.lock_wait_ns += j.usage.lock_wait_ns;
        agg.decode_ns += j.usage.decode_ns;
        agg_wall +=
            static_cast<double>(now - std::min(now, j.start_ns)) * 1e-9;
      }
      if (agg_wall > 0) append_bound(detail, agg, agg_wall);
      a.detail = detail.str();
      current.push_back(std::move(a));
    }
  }

  if (cache != nullptr) {
    if (have_prev_cache_) {
      const CacheStats delta = *cache - prev_cache_;
      if (delta.lookups() >= opts_.min_cache_lookups &&
          delta.insertions > 0 &&
          static_cast<double>(delta.evictions) /
                  static_cast<double>(delta.insertions) >
              opts_.thrash_eviction_rate &&
          delta.hit_rate() < opts_.thrash_hit_floor) {
        Anomaly a;
        a.kind = AnomalyKind::kCacheThrash;
        std::ostringstream detail;
        detail << "cache evicted " << delta.evictions << "/"
               << delta.insertions << " inserts with hit rate "
               << delta.hit_rate();
        a.detail = detail.str();
        current.push_back(std::move(a));
      }
    }
    prev_cache_ = *cache;
    have_prev_cache_ = true;
  }

  // Diff against the previous active set: carry over since_ns for anomalies
  // that persist, collect fresh trips to fire outside the lock.
  std::vector<Anomaly> tripped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Anomaly& a : current) {
      a.since_ns = now;
      bool fresh = true;
      for (const Anomaly& prev : active_) {
        if (key(prev.kind, prev.job) == key(a.kind, a.job)) {
          a.since_ns = prev.since_ns;
          fresh = false;
          break;
        }
      }
      if (fresh) tripped.push_back(a);
    }
    active_ = current;
    degraded_.store(!active_.empty(), std::memory_order_release);
    active_gauge_->set(static_cast<double>(active_.size()));
  }

  for (const Anomaly& a : tripped) {
    counter_for(a.kind).inc();
    trips_.fetch_add(1, std::memory_order_relaxed);
    if (flight_enabled()) {
      FlightEvent e;
      e.type = FlightEventType::kAnomaly;
      e.flag = static_cast<std::uint8_t>(a.kind);
      e.job = a.job;
      FlightRecorder::instance().record(e);
    }
    if (on_trip_) on_trip_(a);
  }
}

std::vector<Anomaly> AnomalyWatchdog::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

std::string AnomalyWatchdog::readyz_json() const {
  std::vector<Anomaly> active = this->active();
  std::ostringstream os;
  os << "{\"status\":\"degraded\",\"reasons\":[";
  for (std::size_t k = 0; k < active.size(); ++k) {
    if (k > 0) os << ",";
    std::string detail = active[k].detail;
    for (char& c : detail) {
      if (c == '"' || c == '\\') c = '\'';
    }
    os << "{\"kind\":\"" << to_string(active[k].kind)
       << "\",\"job\":" << active[k].job << ",\"detail\":\"" << detail
       << "\"}";
  }
  os << "]}\n";
  return os.str();
}

void AnomalyWatchdog::publish(Registry& registry) const {
  (void)registry;  // counters/gauge already live in the ctor registry
  std::lock_guard<std::mutex> lock(mu_);
  active_gauge_->set(static_cast<double>(active_.size()));
}

}  // namespace husg::obs
