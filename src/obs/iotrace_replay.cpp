#include "obs/iotrace_replay.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "cache/block_cache.hpp"
#include "io/device.hpp"
#include "util/common.hpp"

namespace husg::obs {

namespace {

// TraceBlockKind is pinned to BlockKind's values (iotrace.hpp); the replay is
// where the two layers meet.
BlockKey to_key(const AccessEvent& a) {
  return BlockKey{static_cast<BlockKind>(a.kind), a.row, a.col};
}

}  // namespace

ReplayCounters live_counters(const TraceFile& trace) {
  ReplayCounters c;
  for (const TraceRecord& r : trace.records) {
    if (r.type == TraceRecord::Type::kEvict) {
      ++c.evictions;
      continue;
    }
    if (r.type != TraceRecord::Type::kAccess) continue;
    const AccessEvent& a = r.access;
    switch (a.outcome) {
      case TraceOutcome::kBypass:
        // Uncached passthrough: a direct read, no cache consult.
        c.disk_read_bytes += a.saved_bytes;
        break;
      case TraceOutcome::kHit:
        ++c.hits;
        c.bytes_saved += a.saved_bytes;
        break;
      case TraceOutcome::kMiss:
        ++c.misses;
        switch (a.admit) {
          case TraceAdmit::kInserted:
            ++c.insertions;
            c.disk_read_bytes += a.disk_bytes;
            break;
          case TraceAdmit::kRejected:
            ++c.admission_rejects;
            // The insert-path read happened before admission was refused.
            c.disk_read_bytes += a.disk_bytes;
            break;
          case TraceAdmit::kNone:
            c.disk_read_bytes += a.saved_bytes;
            break;
        }
        break;
    }
  }
  return c;
}

ReplayCounters replay_cache(const TraceFile& trace, std::uint64_t budget_bytes,
                            double max_block_fraction) {
  ReplayCounters c;
  if (budget_bytes == 0) {
    // A zero-budget engine bypasses the cache entirely: every access is the
    // direct read, no consults, no counters — bit-identical to uncached.
    for (const TraceRecord& r : trace.records) {
      if (r.type == TraceRecord::Type::kAccess) {
        c.disk_read_bytes += r.access.saved_bytes;
      }
    }
    return c;
  }
  BlockCache cache(BlockCache::Options{budget_bytes, max_block_fraction});
  for (const TraceRecord& r : trace.records) {
    if (r.type != TraceRecord::Type::kAccess) continue;
    const AccessEvent& a = r.access;
    const BlockKey key = to_key(a);
    if (BlockCache::PinnedBytes hit = cache.find(key, a.owner)) {
      cache.add_bytes_saved(a.saved_bytes);
      continue;  // a hit reads nothing; the handle unpins immediately
    }
    // Miss: take the recorded miss path. kIfAdmissible mirrors the reader's
    // fill gate — an oversize payload skips insert() entirely and the live
    // path falls back to the point load (saved_bytes of direct reads).
    const bool attempt =
        a.insert_mode == TraceInsertMode::kAlways ||
        (a.insert_mode == TraceInsertMode::kIfAdmissible &&
         a.payload_bytes <= cache.max_admissible_bytes());
    if (attempt) {
      cache.insert(key, std::vector<char>(a.payload_bytes), a.disk_bytes,
                   a.owner);
      c.disk_read_bytes += a.disk_bytes;
    } else {
      c.disk_read_bytes += a.saved_bytes;
    }
  }
  const CacheStats s = cache.stats();
  c.hits = s.hits;
  c.misses = s.misses;
  c.insertions = s.insertions;
  c.evictions = s.evictions;
  c.admission_rejects = s.admission_rejects;
  c.bytes_saved = s.bytes_saved;
  return c;
}

MissRatioCurve miss_ratio_curve(const TraceFile& trace,
                                std::size_t num_points) {
  MissRatioCurve curve;

  // Working-set upper bound: Σ over distinct keys of the largest payload a
  // miss would insert.
  std::unordered_map<BlockKey, std::uint64_t, BlockKeyHash> largest;
  for (const TraceRecord& r : trace.records) {
    if (r.type != TraceRecord::Type::kAccess) continue;
    const AccessEvent& a = r.access;
    if (a.insert_mode == TraceInsertMode::kNone) continue;
    std::uint64_t& slot = largest[to_key(a)];
    slot = std::max(slot, a.payload_bytes);
  }
  for (const auto& [key, bytes] : largest) curve.unique_payload_bytes += bytes;

  // Budget 0 is degenerate (no cache, no lookups, miss_ratio undefined) and
  // would distort the curve's shape; the sweep starts at a real budget.
  std::set<std::uint64_t> budgets;
  if (trace.info.budget_bytes > 0) budgets.insert(trace.info.budget_bytes);
  const std::uint64_t u = curve.unique_payload_bytes;
  if (u > 0 && num_points >= 2) {
    const double lo = static_cast<double>(std::max<std::uint64_t>(4096, u / 64));
    const double hi = std::max(lo + 1, 1.25 * static_cast<double>(u));
    const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(num_points - 1));
    double b = lo;
    for (std::size_t k = 0; k < num_points; ++k, b *= ratio) {
      budgets.insert(static_cast<std::uint64_t>(std::llround(b)));
    }
  }

  for (std::uint64_t b : budgets) {
    curve.points.push_back(MissRatioPoint{
        b, replay_cache(trace, b, trace.info.max_block_fraction)});
  }

  // Knee: the point farthest from the chord between the endpoints of the
  // (budget, miss_ratio) curve, both axes normalized to [0,1]. Falls back to
  // the smallest budget reaching the final miss ratio when the curve is flat.
  if (!curve.points.empty()) {
    const double max_b =
        std::max<double>(1.0, static_cast<double>(curve.points.back().budget_bytes));
    const double x0 = static_cast<double>(curve.points.front().budget_bytes) / max_b;
    const double y0 = curve.points.front().counters.miss_ratio();
    const double x1 = static_cast<double>(curve.points.back().budget_bytes) / max_b;
    const double y1 = curve.points.back().counters.miss_ratio();
    double best = 0;
    curve.knee_budget_bytes = curve.points.front().budget_bytes;
    for (const MissRatioPoint& pt : curve.points) {
      const double x = static_cast<double>(pt.budget_bytes) / max_b;
      const double y = pt.counters.miss_ratio();
      const double dist = std::abs((x1 - x0) * (y0 - y) - (x0 - x) * (y1 - y0));
      if (dist > best) {
        best = dist;
        curve.knee_budget_bytes = pt.budget_bytes;
      }
    }
    if (best <= 0) {
      for (const MissRatioPoint& pt : curve.points) {
        if (pt.counters.miss_ratio() <= y1 + 1e-12) {
          curve.knee_budget_bytes = pt.budget_bytes;
          break;
        }
      }
    }
  }
  return curve;
}

WhatIfResult whatif_predictor(const TraceFile& trace, PredictorFlavor flavor) {
  WhatIfResult r;
  r.flavor = flavor;

  const TraceRunInfo& info = trace.info;
  DeviceProfile dev;
  dev.name = "trace";
  dev.seq_read_bw = info.seq_read_bw;
  dev.rand_read_bw = info.rand_read_bw;
  dev.write_bw = info.write_bw;
  dev.seek_seconds = info.seek_seconds;

  const IoCostPredictor what(dev, flavor, info.alpha);
  const IoCostPredictor base(
      dev, static_cast<PredictorFlavor>(info.flavor), info.alpha);
  // TraceRunInfo::granularity pins DecisionGranularity's values: 0 = global,
  // 1 = per-interval.
  const bool per_interval = info.granularity == 1;

  // One engine iteration = one decision per interval; regroup the stream so
  // the global granularity rule (summed costs + whole-graph α) can be
  // mirrored exactly.
  std::map<std::uint32_t, std::vector<const DecisionEvent*>> iterations;
  for (const TraceRecord& rec : trace.records) {
    if (rec.type == TraceRecord::Type::kDecision) {
      iterations[rec.decision.iteration].push_back(&rec.decision);
    }
  }

  for (const auto& [iter, decisions] : iterations) {
    struct Costed {
      const DecisionEvent* e;
      Prediction what_cost;  // use_alpha=false: always real numbers
      Prediction base_cost;
      bool what_rop = false;
      bool base_rop = false;
    };
    std::vector<Costed> costed;
    costed.reserve(decisions.size());
    std::uint64_t total_active = 0;
    for (const DecisionEvent* e : decisions) {
      PredictionInputs in;
      in.active_vertices = e->active_vertices;
      in.active_degree_sum = e->active_degree_sum;
      in.num_vertices = info.num_vertices;
      in.num_edges = info.num_edges;
      in.p = info.p;
      in.edge_bytes = info.edge_bytes;
      in.value_bytes = e->value_bytes;
      in.column_edge_bytes = e->column_edge_bytes;
      in.row_edge_bytes = e->row_edge_bytes;
      in.cached_row_edge_bytes = e->cached_row_edge_bytes;
      in.cached_column_edge_bytes = e->cached_column_edge_bytes;
      total_active += e->active_vertices;

      Costed c;
      c.e = e;
      c.what_cost = what.predict(in, /*use_alpha=*/false);
      c.base_cost = base.predict(in, /*use_alpha=*/false);
      if (per_interval) {
        c.what_rop = what.predict(in, /*use_alpha=*/true).choose_rop;
        c.base_rop = base.predict(in, /*use_alpha=*/true).choose_rop;
      }
      costed.push_back(c);
    }

    if (!per_interval) {
      // Engine::decide, global granularity: α on the whole-graph active
      // fraction, then one comparison of the summed predicted costs.
      const bool shortcut =
          info.alpha > 0 &&
          static_cast<double>(total_active) >
              info.alpha * static_cast<double>(info.num_vertices);
      double what_rop_sum = 0, what_cop_sum = 0, base_rop_sum = 0,
             base_cop_sum = 0;
      for (const Costed& c : costed) {
        what_rop_sum += c.what_cost.c_rop;
        what_cop_sum += c.what_cost.c_cop;
        base_rop_sum += c.base_cost.c_rop;
        base_cop_sum += c.base_cost.c_cop;
      }
      const bool what_rop = !shortcut && what_rop_sum <= what_cop_sum;
      const bool base_rop = !shortcut && base_rop_sum <= base_cop_sum;
      for (Costed& c : costed) {
        c.what_rop = what_rop;
        c.base_rop = base_rop;
      }
    }

    for (const Costed& c : costed) {
      ++r.decisions;
      if (c.what_rop != c.e->used_rop) ++r.flips;
      if (c.base_rop != c.e->used_rop) ++r.baseline_mismatches;
      r.modeled_io_seconds +=
          c.what_rop ? c.what_cost.c_rop : c.what_cost.c_cop;
      r.baseline_modeled_io_seconds +=
          c.base_rop ? c.base_cost.c_rop : c.base_cost.c_cop;
    }
  }
  return r;
}

}  // namespace husg::obs
