// Postmortem bundles: one self-contained JSON document capturing everything
// an operator needs to diagnose an incident after the fact (DESIGN.md §14).
//
// A bundle is written when the anomaly watchdog trips, when a job reaches a
// bad terminal state (timeout / cancel / failure), on GET /debug/bundle, or
// — in a reduced async-signal-safe form — on a fatal signal. Schema
// (bundle_version 1):
//
//   {
//     "bundle_version": 1,
//     "reason": "<trigger>",
//     "written_ns": <now_ns() timeline>,
//     "store": {dir, vertices, edges, partitions, weighted, codec,
//               skip_filters, edge_record_bytes},
//     "incident": {id, name, status, error, wall_seconds, iteration, edges,
//                  io_bytes, last_tick_age_seconds},      // when job-caused
//     "anomalies": [{kind, job, detail, since_ns}, ...],
//     "jobs": {"jobs": [...]},            // live job table (jobs_view_json)
//     "service": {counters...},           // ServiceStats ledger
//     "flight": {recorded, dropped, events_per_thread},
//     "flight_events": [...],             // drained recorder rings
//     "calibration": {...},               // DeviceCalibrator (when armed)
//     "mrc": {...},                       // cache partition state (when on)
//     "locks": [...],                     // top contended locks (§15)
//     "metrics_prom": "..."               // Prometheus exposition, escaped
//   }
//
// The fatal-signal path cannot allocate or lock, so it writes only the
// header and the flight_events array (FlightRecorder::drain_to_fd) to a
// pre-opened fd — see install_crash_handler().
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "obs/watchdog.hpp"
#include "service/job.hpp"
#include "storage/layout.hpp"

namespace husg::obs {

class Registry;

/// The job that triggered a bundle (timeout / cancel / failure), captured at
/// terminal time — by then the job has left the live table.
struct IncidentInfo {
  std::uint64_t id = 0;
  std::string name;
  std::string status;
  std::string error;
  double wall_seconds = 0;
  std::uint64_t iteration = 0;
  std::uint64_t edges = 0;
  std::uint64_t io_bytes = 0;
  double last_tick_age_seconds = -1;
};

/// Everything write_bundle_json serializes. Optional sections are skipped
/// when their flag/pointer is unset — the schema's required keys are
/// bundle_version, reason, written_ns, flight, and flight_events.
struct BundleContext {
  std::string reason;
  std::string store_dir;
  const StoreMeta* meta = nullptr;
  bool has_incident = false;
  IncidentInfo incident;
  std::vector<Anomaly> anomalies;
  std::vector<JobView> jobs;
  bool has_stats = false;
  ServiceStats stats;
  /// Extra JSON objects appended verbatim (calibration / MRC state).
  std::function<void(std::ostream&)> calibration_json;
  std::function<void(std::ostream&)> mrc_json;
  Registry* registry = nullptr;  ///< metrics snapshot (escaped prom text)
};

void write_bundle_json(std::ostream& os, const BundleContext& ctx);

/// Writes bundles into a directory, one file per incident. The context
/// callback gathers the live BundleContext at write time (it runs on the
/// triggering thread — scheduler dispatcher, pool worker, or admin plane —
/// and must not hold locks the gathered accessors take).
class PostmortemWriter {
 public:
  struct Options {
    /// Empty disables file output (bundle_json still serves /debug/bundle).
    std::filesystem::path dir;
    /// Oldest bundles are deleted once the directory holds more than this.
    std::size_t max_bundles = 16;
  };

  using ContextFn = std::function<BundleContext(const std::string& reason)>;

  PostmortemWriter(Options options, ContextFn context);

  /// Serializes a bundle for `reason`; does not touch the filesystem.
  std::string bundle_json(const std::string& reason,
                          const IncidentInfo* incident = nullptr) const;

  /// Writes `<dir>/<unix_ms>-<seq>-<reason>.bundle.json` and prunes old
  /// bundles past max_bundles. Returns the path ("" when dir is unset or
  /// the write failed — incident paths must not throw).
  std::filesystem::path write(const std::string& reason,
                              const IncidentInfo* incident = nullptr);

  std::uint64_t bundles_written() const {
    return written_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return opts_; }

 private:
  Options opts_;
  ContextFn context_;
  mutable std::mutex mu_;  ///< serializes write() (file naming + pruning)
  std::atomic<std::uint64_t> written_{0};
};

/// Installs a fatal-signal handler (SIGSEGV/SIGBUS/SIGFPE/SIGABRT) that
/// dumps a minimal crash bundle — header plus the drained flight-recorder
/// rings — to `<dir>/crash-<pid>.bundle.json` via a pre-opened fd, then
/// re-raises with the default disposition. Async-signal-safe: the handler
/// uses only write(2) and atomic loads. Call at most once per process.
void install_crash_handler(const std::filesystem::path& dir);

}  // namespace husg::obs
