#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "obs/calibrate.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/common.hpp"
#include "util/logging.hpp"

namespace husg::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing useful to do on an admin plane
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Parses "ms=N" style queries; returns false on absent/garbage values.
bool query_uint(const std::string& query, const std::string& key,
                std::uint64_t& out) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      const std::string value = query.substr(eq + 1, amp - eq - 1);
      if (value.empty()) return false;
      std::uint64_t v = 0;
      for (char c : value) {
        if (c < '0' || c > '9') return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
        if (v > 1'000'000'000ull) return false;  // caller caps anyway
      }
      out = v;
      return true;
    }
    pos = amp + 1;
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

AdminServer::AdminServer(AdminOptions options, Registry& registry)
    : opts_(std::move(options)), registry_(&registry) {}

AdminServer::~AdminServer() { stop(); }

void AdminServer::start() {
  HUSG_CHECK(listen_fd_ < 0, "admin server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw IoError("admin server: socket() failed: " +
                  std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("admin server: invalid bind address '" + opts_.bind_address +
                  "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("admin server: cannot bind " + opts_.bind_address + ":" +
                  std::to_string(opts_.port) + ": " + err);
  }
  if (::listen(listen_fd_, 16) < 0) {
    std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("admin server: listen() failed: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  if (::pipe(wake_pipe_) < 0) {
    std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("admin server: pipe() failed: " + err);
  }
  serving_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  HUSG_INFO << "admin server listening on " << opts_.bind_address << ":"
            << bound_port_;
}

void AdminServer::stop() {
  if (!serving_.exchange(false, std::memory_order_acq_rel)) {
    // Not serving; still release a bound-but-never-started listener.
    if (listen_fd_ >= 0 && !thread_.joinable()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (thread_.joinable()) thread_.join();
    return;
  }
  char b = 'q';
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void AdminServer::serve_loop() {
  while (serving_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    int r = ::poll(fds, 2, -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop() poked the pipe
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // A stalled client must not wedge the (single) admin thread.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    handle_connection(fd);
    ::close(fd);
  }
}

void AdminServer::handle_connection(int fd) {
  // Read headers (bounded), then the Content-Length body if any.
  std::string req;
  constexpr std::size_t kMaxRequest = 64 * 1024;
  std::size_t header_end = std::string::npos;
  char buf[4096];
  while (header_end == std::string::npos && req.size() < kMaxRequest) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    req.append(buf, static_cast<std::size_t>(n));
    header_end = req.find("\r\n\r\n");
  }
  if (header_end == std::string::npos) return;

  std::istringstream head(req.substr(0, header_end));
  std::string method, target, version;
  head >> method >> target >> version;
  if (method.empty() || target.empty()) return;

  std::size_t content_length = 0;
  std::string line;
  std::getline(head, line);  // consume the rest of the request line
  while (std::getline(head, line)) {
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (name == "content-length") {
      try {
        content_length = static_cast<std::size_t>(
            std::stoul(trim(line.substr(colon + 1))));
      } catch (...) {
        content_length = 0;
      }
      if (content_length > kMaxRequest) return;
    }
  }
  std::string body = req.substr(header_end + 4);
  while (body.size() < content_length) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    body.append(buf, static_cast<std::size_t>(n));
  }
  body.resize(std::min(body.size(), content_length));

  Response res = handle_request(method, target, body);
  std::ostringstream out;
  out << "HTTP/1.1 " << res.status << " " << status_text(res.status)
      << "\r\nContent-Type: " << res.content_type
      << "\r\nContent-Length: " << res.body.size()
      << "\r\nConnection: close\r\n\r\n";
  send_all(fd, out.str());
  if (method != "HEAD") send_all(fd, res.body);
}

AdminServer::Response AdminServer::handle_request(const std::string& method,
                                                  const std::string& target,
                                                  const std::string& body) {
  Response res;
  std::string path = target;
  std::string query;
  if (std::size_t q = target.find('?'); q != std::string::npos) {
    path = target.substr(0, q);
    query = target.substr(q + 1);
  }
  const bool is_get = method == "GET" || method == "HEAD";

  if (path == "/healthz") {
    if (!is_get) {
      res.status = 405;
      res.body = "method not allowed\n";
      return res;
    }
    res.body = "ok\n";
    return res;
  }
  if (path == "/readyz") {
    if (!is_get) {
      res.status = 405;
      res.body = "method not allowed\n";
      return res;
    }
    if (ready_ && !ready_()) {
      res.status = 503;
      res.body = "not ready\n";
      return res;
    }
    // Degraded ranks below not-ready: the service is up and accepting, but
    // the watchdog holds an active anomaly, so probes should route away.
    if (degraded_) {
      std::string reasons = degraded_();
      if (!reasons.empty()) {
        res.status = 503;
        res.content_type = "application/json";
        res.body = std::move(reasons);
        return res;
      }
    }
    res.body = "ready\n";
    return res;
  }
  if (path == "/metrics") {
    if (!is_get) {
      res.status = 405;
      res.body = "method not allowed\n";
      return res;
    }
    if (pre_scrape_) pre_scrape_(*registry_);
    std::ostringstream os;
    registry_->write_prometheus(os);
    res.content_type = "text/plain; version=0.0.4; charset=utf-8";
    res.body = os.str();
    return res;
  }
  if (path == "/jobs") {
    if (!is_get) {
      res.status = 405;
      res.body = "method not allowed\n";
      return res;
    }
    if (!jobs_) {
      res.status = 404;
      res.body = "no job scheduler attached\n";
      return res;
    }
    res.content_type = "application/json";
    res.body = jobs_();
    return res;
  }
  if (path == "/heatmap") {
    if (!is_get) {
      res.status = 405;
      res.body = "method not allowed\n";
      return res;
    }
    std::ostringstream os;
    Heatmap::instance().write_json(os);
    res.content_type = "application/json";
    res.body = os.str();
    return res;
  }
  if (path == "/calibration") {
    if (!is_get) {
      res.status = 405;
      res.body = "method not allowed\n";
      return res;
    }
    std::ostringstream os;
    DeviceCalibrator::instance().write_json(os);
    res.content_type = "application/json";
    res.body = os.str();
    return res;
  }
  if (path == "/mrc") {
    if (!is_get) {
      res.status = 405;
      res.body = "method not allowed\n";
      return res;
    }
    if (!mrc_) {
      res.status = 404;
      res.body = "cache partitioning is not enabled\n";
      return res;
    }
    res.content_type = "application/json";
    res.body = mrc_();
    return res;
  }
  if (path == "/trace") {
    if (!is_get) {
      res.status = 405;
      res.body = "method not allowed\n";
      return res;
    }
    std::uint64_t ms = 0;
    if (!query_uint(query, "ms", ms) || ms == 0) {
      res.status = 400;
      res.body = "usage: /trace?ms=N (capture window in milliseconds)\n";
      return res;
    }
    Tracer& tracer = Tracer::instance();
    if (tracer.enabled()) {
      // A --trace-out session owns the tracer; stealing it would truncate
      // that file's window.
      res.status = 409;
      res.body = "a trace session is already running\n";
      return res;
    }
    ms = std::min<std::uint64_t>(ms, opts_.max_trace_ms);
    tracer.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    tracer.stop();
    std::ostringstream os;
    tracer.write_chrome_json(os);
    tracer.clear();
    res.content_type = "application/json";
    res.body = os.str();
    return res;
  }
  if (path == "/profile") {
    if (!is_get) {
      res.status = 405;
      res.body = "method not allowed\n";
      return res;
    }
    std::uint64_t ms = 0;
    if (!query_uint(query, "ms", ms) || ms == 0) {
      res.status = 400;
      res.body =
          "usage: /profile?ms=N[&hz=H] (capture window in milliseconds)\n";
      return res;
    }
    std::uint64_t hz = Profiler::kDefaultHz;
    if (query.find("hz=") != std::string::npos &&
        (!query_uint(query, "hz", hz) || hz == 0 || hz > 1000)) {
      res.status = 400;
      res.body = "bad hz= value (want 1..1000)\n";
      return res;
    }
    Profiler& profiler = Profiler::instance();
    if (profiler.running()) {
      // A --profile-out session owns the profiler; stealing it would leave
      // that file with a truncated window.
      res.status = 409;
      res.body = "a profile session is already running\n";
      return res;
    }
    ms = std::min<std::uint64_t>(ms, opts_.max_trace_ms);
    profiler.clear();
    profiler.start(static_cast<std::uint32_t>(hz));
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    profiler.stop();
    std::ostringstream os;
    profiler.write_folded(os);
    res.content_type = "text/plain; charset=utf-8";
    res.body = os.str();
    return res;
  }
  if (path == "/cpu") {
    if (!is_get) {
      res.status = 405;
      res.body = "method not allowed\n";
      return res;
    }
    res.content_type = "application/json";
    // No scheduler (single-run CLI): an empty-but-well-formed document, so
    // dashboards can poll unconditionally.
    res.body = cpu_ ? cpu_() : std::string("{\"jobs\": []}\n");
    return res;
  }
  if (path == "/debug/bundle") {
    if (!is_get) {
      res.status = 405;
      res.body = "method not allowed\n";
      return res;
    }
    if (!bundle_) {
      res.status = 404;
      res.body = "no postmortem writer attached\n";
      return res;
    }
    res.content_type = "application/json";
    res.body = bundle_();
    return res;
  }
  if (path == "/loglevel") {
    if (is_get) {
      switch (log::level()) {
        case log::Level::kDebug:
          res.body = "debug\n";
          break;
        case log::Level::kInfo:
          res.body = "info\n";
          break;
        case log::Level::kWarn:
          res.body = "warn\n";
          break;
        case log::Level::kError:
          res.body = "quiet\n";
          break;
      }
      return res;
    }
    if (method != "POST") {
      res.status = 405;
      res.body = "POST a level: debug | info | warn | quiet\n";
      return res;
    }
    const std::string level = trim(body);
    if (level == "debug") {
      log::set_level(log::Level::kDebug);
    } else if (level == "info") {
      log::set_level(log::Level::kInfo);
    } else if (level == "warn") {
      log::set_level(log::Level::kWarn);
    } else if (level == "quiet") {
      log::set_level(log::Level::kError);
    } else {
      res.status = 400;
      res.body = "unknown level '" + level +
                 "' (want debug | info | warn | quiet)\n";
      return res;
    }
    res.body = "log level set to " + level + "\n";
    return res;
  }
  res.status = 404;
  res.body = "unknown path (try /healthz /readyz /metrics /jobs /heatmap "
             "/calibration /mrc /trace?ms=N /profile?ms=N /cpu /loglevel "
             "/debug/bundle)\n";
  return res;
}

}  // namespace husg::obs
