#include "obs/flight_recorder.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <ostream>

#include "obs/metrics.hpp"

namespace husg::obs {

namespace detail {
std::atomic<bool> g_flight{false};
}  // namespace detail

const char* to_string(FlightEventType type) {
  switch (type) {
    case FlightEventType::kJobSubmitted:
      return "job_submitted";
    case FlightEventType::kJobStarted:
      return "job_started";
    case FlightEventType::kJobFinished:
      return "job_finished";
    case FlightEventType::kProgress:
      return "progress";
    case FlightEventType::kDecision:
      return "decision";
    case FlightEventType::kRepartition:
      return "repartition";
    case FlightEventType::kBackendError:
      return "backend_error";
    case FlightEventType::kAnomaly:
      return "anomaly";
    case FlightEventType::kBundle:
      return "bundle";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // leak: signal path
  return *recorder;
}

void FlightRecorder::start(std::size_t events_per_thread) {
  if (events_per_thread == 0) events_per_thread = 1;
  std::lock_guard<std::mutex> lock(mu_);
  events_per_thread_.store(events_per_thread, std::memory_order_relaxed);
  seq_.store(0, std::memory_order_relaxed);
  overflowed_.store(0, std::memory_order_relaxed);
  // Bumping the epoch before enabling makes every thread re-register into a
  // fresh ring; stale rings stay allocated but are skipped by readers.
  epoch_.fetch_add(1, std::memory_order_release);
  detail::g_flight.store(true, std::memory_order_release);
}

void FlightRecorder::stop() {
  detail::g_flight.store(false, std::memory_order_release);
}

FlightRecorder::Ring* FlightRecorder::ring_for_thread() {
  thread_local Ring* tls_ring = nullptr;
  thread_local std::uint64_t tls_epoch = 0;
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (tls_ring != nullptr && tls_epoch == epoch) return tls_ring;
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t idx = ring_count_.load(std::memory_order_relaxed);
  if (idx >= kMaxRings) {
    tls_ring = nullptr;
    tls_epoch = epoch;
    return nullptr;
  }
  owned_.push_back(std::make_unique<Ring>(
      events_per_thread_.load(std::memory_order_relaxed), epoch,
      static_cast<std::uint16_t>(idx)));
  Ring* ring = owned_.back().get();
  rings_[idx].store(ring, std::memory_order_release);
  ring_count_.store(idx + 1, std::memory_order_release);
  tls_ring = ring;
  tls_epoch = epoch;
  return ring;
}

void FlightRecorder::record(FlightEvent e) {
  if (!flight_enabled()) return;
  Ring* ring = ring_for_thread();
  if (ring == nullptr) {
    overflowed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[head % ring->slots.size()];
  // seq=0 marks the slot mid-write so a concurrent reader discards it.
  slot.seq.store(0, std::memory_order_release);
  slot.ts_ns.store(now_ns(), std::memory_order_relaxed);
  slot.meta.store(static_cast<std::uint64_t>(e.type) |
                      (static_cast<std::uint64_t>(e.flag) << 8) |
                      (static_cast<std::uint64_t>(ring->tid) << 16) |
                      (static_cast<std::uint64_t>(e.a) << 32),
                  std::memory_order_relaxed);
  slot.job.store(e.job, std::memory_order_relaxed);
  slot.v1.store(e.v1, std::memory_order_relaxed);
  slot.v2.store(e.v2, std::memory_order_relaxed);
  slot.v3.store(e.v3, std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_release);
  ring->head.store(head + 1, std::memory_order_release);
}

bool FlightRecorder::read_slot(const Slot& slot, FlightEvent* out) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0) return false;  // empty or mid-write
    FlightEvent e;
    e.seq = s1;
    e.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    e.type = static_cast<FlightEventType>(meta & 0xff);
    e.flag = static_cast<std::uint8_t>((meta >> 8) & 0xff);
    e.tid = static_cast<std::uint16_t>((meta >> 16) & 0xffff);
    e.a = static_cast<std::uint32_t>(meta >> 32);
    e.job = slot.job.load(std::memory_order_relaxed);
    e.v1 = slot.v1.load(std::memory_order_relaxed);
    e.v2 = slot.v2.load(std::memory_order_relaxed);
    e.v3 = slot.v3.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) == s1) {
      *out = e;
      return true;
    }
  }
  return false;  // kept losing the race to the writer; slot is hot, skip it
}

std::vector<FlightEvent> FlightRecorder::drain() const {
  std::vector<FlightEvent> out;
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  const std::size_t n = ring_count_.load(std::memory_order_acquire);
  for (std::size_t r = 0; r < n; ++r) {
    const Ring* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr || ring->epoch != epoch) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    const std::uint64_t count = std::min(head, cap);
    for (std::uint64_t i = head - count; i < head; ++i) {
      FlightEvent e;
      if (read_slot(ring->slots[i % cap], &e)) out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::uint64_t FlightRecorder::dropped() const {
  std::uint64_t dropped = overflowed_.load(std::memory_order_relaxed);
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  const std::size_t n = ring_count_.load(std::memory_order_acquire);
  for (std::size_t r = 0; r < n; ++r) {
    const Ring* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr || ring->epoch != epoch) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t cap = ring->slots.size();
    if (head > cap) dropped += head - cap;
  }
  return dropped;
}

void FlightRecorder::emit_event_json(std::ostream& os, const FlightEvent& e) {
  os << "{\"seq\":" << e.seq << ",\"ts_ns\":" << e.ts_ns << ",\"type\":\""
     << to_string(e.type) << "\",\"tid\":" << e.tid << ",\"job\":" << e.job
     << ",\"flag\":" << static_cast<unsigned>(e.flag) << ",\"a\":" << e.a
     << ",\"v1\":" << e.v1 << ",\"v2\":" << e.v2 << ",\"v3\":" << e.v3 << "}";
}

void FlightRecorder::write_events_json(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (const FlightEvent& e : drain()) {
    if (!first) os << ",";
    first = false;
    os << "\n    ";
    emit_event_json(os, e);
  }
  os << (first ? "]" : "\n  ]");
}

namespace {

// write(2) with partial-write retry; gives up on error (signal context —
// there is nothing useful to do about a failed crash dump).
void fd_write(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

void fd_write_str(int fd, const char* s) { fd_write(fd, s, std::strlen(s)); }

void fd_write_u64(int fd, std::uint64_t v) {
  char buf[24];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  fd_write(fd, p, static_cast<std::size_t>(buf + sizeof(buf) - p));
}

}  // namespace

void FlightRecorder::drain_to_fd(int fd) const {
  fd_write_str(fd, "[");
  bool first = true;
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  const std::size_t n = ring_count_.load(std::memory_order_acquire);
  for (std::size_t r = 0; r < n; ++r) {
    const Ring* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr || ring->epoch != epoch) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    const std::uint64_t count = std::min(head, cap);
    for (std::uint64_t i = head - count; i < head; ++i) {
      FlightEvent e;
      if (!read_slot(ring->slots[i % cap], &e)) continue;
      if (!first) fd_write_str(fd, ",");
      first = false;
      fd_write_str(fd, "\n    {\"seq\":");
      fd_write_u64(fd, e.seq);
      fd_write_str(fd, ",\"ts_ns\":");
      fd_write_u64(fd, e.ts_ns);
      fd_write_str(fd, ",\"type\":\"");
      fd_write_str(fd, to_string(e.type));
      fd_write_str(fd, "\",\"tid\":");
      fd_write_u64(fd, e.tid);
      fd_write_str(fd, ",\"job\":");
      fd_write_u64(fd, e.job);
      fd_write_str(fd, ",\"flag\":");
      fd_write_u64(fd, e.flag);
      fd_write_str(fd, ",\"a\":");
      fd_write_u64(fd, e.a);
      fd_write_str(fd, ",\"v1\":");
      fd_write_u64(fd, e.v1);
      fd_write_str(fd, ",\"v2\":");
      fd_write_u64(fd, e.v2);
      fd_write_str(fd, ",\"v3\":");
      fd_write_u64(fd, e.v3);
      fd_write_str(fd, "}");
    }
  }
  fd_write_str(fd, first ? "]" : "\n  ]");
}

void FlightRecorder::publish(Registry& registry) const {
  registry
      .gauge("husg_flight_events_recorded",
             "Flight-recorder events recorded since arming")
      .set(static_cast<double>(recorded()));
  registry
      .gauge("husg_flight_events_dropped",
             "Flight-recorder events overwritten by the ring budget")
      .set(static_cast<double>(dropped()));
  registry
      .gauge("husg_flight_rings", "Per-thread flight-recorder rings in use")
      .set(static_cast<double>(ring_count_.load(std::memory_order_relaxed)));
}

}  // namespace husg::obs
