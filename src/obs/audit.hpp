// Predictor audit log (observability layer, DESIGN.md §9).
//
// The hybrid engine's value rests on §3.4's claim that C_rop / C_cop track
// real I/O cost. The audit makes that claim queryable: for every evaluated
// per-interval decision it pairs the predicted costs with the *observed*
// traffic of executing the interval (priced through the same DeviceProfile,
// so both sides are in modeled seconds on equal footing) and reports the
// relative error.
//
// Error metric: symmetric relative error
//
//   rel = |pred − obs| / max(pred, obs, ε)
//
// bounded to [0, 1] — robust to near-zero observations (null_device prices
// all traffic at 0) where a conventional |pred−obs|/obs blows up.
//
// Entries where the predictor never ran its formulas (α shortcut, forced
// ROP/COP mode, global granularity) are kept in the log for completeness but
// excluded from the error aggregates.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "core/run_stats.hpp"
#include "io/device.hpp"

namespace husg::obs {

class Registry;

/// One decision with both sides of the ledger; all costs in modeled seconds.
struct AuditEntry {
  int iteration = 0;
  std::uint32_t interval = 0;
  double c_rop = 0;
  double c_cop = 0;
  bool chose_rop = false;
  bool alpha_shortcut = false;
  /// True when the engine measured the interval AND the predictor evaluated
  /// its formulas — only then is rel_error meaningful.
  bool evaluated = false;
  std::uint64_t observed_bytes = 0;
  double observed_seconds = 0;  ///< observed traffic priced by the device
  double observed_wall_seconds = 0;
  double rel_error = 0;  ///< chosen-cost vs observed, in [0, 1]
};

struct AuditSummary {
  std::size_t entries = 0;
  std::size_t evaluated = 0;  ///< entries contributing to the means
  double mean_rel_error = 0;
  double mean_rel_error_rop = 0;  ///< over evaluated entries that chose ROP
  double mean_rel_error_cop = 0;  ///< over evaluated entries that chose COP
  double max_rel_error = 0;
};

class PredictorAudit {
 public:
  /// Builds the audit from a finished run: every DecisionRecord with
  /// observed per-interval traffic becomes an entry, priced by `device`
  /// (use the same profile the run was configured with).
  static PredictorAudit from_run(const RunStats& stats,
                                 const DeviceProfile& device);

  /// Calibration-audit variant: re-predicts every recorded decision from its
  /// stored PredictionInputs under `device` (which need NOT be the profile
  /// the run decided with — pass the preset and the calibrated profile to
  /// split the error) and scores the chosen model's cost against the
  /// interval's *observed wall seconds*. Entries whose inputs were never
  /// captured (forced mode, α shortcut) are excluded from the aggregates.
  static PredictorAudit from_run_wall(const RunStats& stats,
                                      const DeviceProfile& device,
                                      PredictorFlavor flavor, double alpha);

  const std::vector<AuditEntry>& entries() const { return entries_; }

  AuditSummary summarize() const;

  /// Records every evaluated entry's rel_error into the registry's
  /// `husg_predictor_rel_error` histogram and sets the summary gauges.
  void publish(Registry& registry) const;

  /// CSV dump (header + one row per entry) for offline analysis.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<AuditEntry> entries_;
};

/// Wall-decomposition audit of the codec model's T_decode CPU term (§15).
/// The block codec prices decode as decoded_bytes / decode_bps; attribution
/// measures the actual decode CPU (CodecStats::decode_ns — only populated
/// while obs::attribution is armed). The same symmetric relative error as
/// the predictor audit scores the model against the measurement.
struct DecodeAudit {
  /// True when both sides exist: decode traffic happened, attribution was
  /// armed (decode_ns > 0), and a decode_bps estimate is available.
  bool evaluated = false;
  std::uint64_t decoded_bytes = 0;
  double predicted_seconds = 0;  ///< decoded_bytes / decode_bps
  double measured_seconds = 0;   ///< CodecStats::decode_ns
  double rel_error = 0;          ///< symmetric, in [0, 1]; 0 when !evaluated
};

DecodeAudit audit_decode(const CodecStats& codec, double decode_bytes_per_sec);

/// husg_cpu_decode_{predicted_seconds,measured_seconds,rel_error} gauges —
/// always present (zero when the audit never evaluated).
void publish(const DecodeAudit& audit, Registry& registry);

}  // namespace husg::obs
