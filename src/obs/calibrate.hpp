// Online device calibration (observability layer, DESIGN.md §13).
//
// Every DeviceProfile the predictor prices against so far is a *preset* —
// representative of a device class, not of this machine. The calibrator
// closes that gap: TrackedFile feeds it observed per-op latencies (random
// vs sequential vs write, plus whole-batch samples for queue-lane
// estimation) and it maintains EWMA estimates from which a measured
// DeviceProfile is derived:
//
//   seq_read_bw  = ewma(bytes) / ewma(seconds) over sequential reads
//   rand_read_bw = the measured sequential bandwidth (transfer happens at
//                  media rate; the per-op overhead is the seek term)
//   seek_seconds = ewma(latency) − ewma(bytes) / rand_read_bw, clamped ≥ 0
//   write_bw     = ewma(bytes) / ewma(seconds) over writes
//   queue_lanes  = ewma of (modeled serial batch time / observed batch time)
//
// Robustness: a per-class warmup floor (below it calibrated() returns the
// preset unchanged and warm() is false) and outlier clamping (once a class
// has a few samples, a latency more than `outlier_factor` above the EWMA
// mean is counted and dropped, so page-cache hiccups and first-touch faults
// cannot yank the estimate).
//
// Sampling: the 1-in-N gate below costs one relaxed atomic load when
// disarmed, so it is cheap enough to leave on for whole runs — full
// --io-timing histograms are NOT required for calibration. When io-timing
// is armed anyway, every op (not 1-in-N) feeds the calibrator for free.
//
// Modes (--calibrate off|observe|apply): off never arms the gate — every
// existing counter and baseline stays byte-identical; observe samples and
// reports the preset-vs-measured delta (gauges + the PredictorAudit wall
// split) without changing any decision; apply additionally re-prices the
// engine's §3.4 decide() with the calibrated profile once warm.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>

#include "io/device.hpp"

namespace husg::obs {

class Registry;

enum class CalibrationMode { kOff, kObserve, kApply };

const char* to_string(CalibrationMode mode);
/// "off" | "observe" | "apply" → mode; false on anything else.
bool parse_calibration_mode(const std::string& text, CalibrationMode& out);

namespace detail {
/// 0 = disarmed; otherwise sample one op in every `g_calibrate_every`.
extern std::atomic<std::uint32_t> g_calibrate_every;
extern std::atomic<std::uint64_t> g_calibrate_tick;
}  // namespace detail

/// Inline gate for recording sites (same contract as io_timing_enabled()).
inline bool calibration_enabled() {
  return detail::g_calibrate_every.load(std::memory_order_relaxed) != 0;
}

/// Consumes a sampling token: true when this op should be timed for the
/// calibrator (1-in-N of all ops across threads). One relaxed load when
/// disarmed.
inline bool calibration_sample() {
  const std::uint32_t every =
      detail::g_calibrate_every.load(std::memory_order_relaxed);
  if (every == 0) return false;
  return detail::g_calibrate_tick.fetch_add(1, std::memory_order_relaxed) %
             every ==
         0;
}

/// Point-in-time view of the calibrator state (the /calibration route and
/// the husg_calibration_* gauges render this).
struct CalibrationSnapshot {
  CalibrationMode mode = CalibrationMode::kOff;
  std::uint32_t sample_every = 0;
  std::uint64_t rand_samples = 0;
  std::uint64_t seq_samples = 0;
  std::uint64_t write_samples = 0;
  std::uint64_t batch_samples = 0;
  std::uint64_t outliers = 0;
  /// EWMA state (zero until the first sample of the class).
  double rand_latency_seconds = 0;  ///< mean per-op random-read latency
  double rand_bytes = 0;            ///< mean random-read request size
  double seq_bw = 0;                ///< bytes/second
  double write_bw = 0;              ///< bytes/second
  double lanes = 0;                 ///< effective concurrent request streams
  bool warm = false;                ///< rand + seq past the warmup floor
};

class DeviceCalibrator {
 public:
  struct Options {
    /// Per-class warmup floor: below this many accepted samples the class
    /// falls back to the preset value and warm() stays false.
    std::uint64_t min_samples = 64;
    /// EWMA weight of each new sample.
    double ewma_alpha = 0.05;
    /// Outlier clamp: once a class has min_samples/8 samples, a latency more
    /// than this factor above the EWMA mean is dropped (and counted).
    double outlier_factor = 32.0;
    /// Default 1-in-N op sampling rate installed by arm().
    std::uint32_t sample_every = 8;
  };

  /// The process-wide calibrator every TrackedFile feeds (mirrors
  /// Heatmap::instance()).
  static DeviceCalibrator& instance();

  // (Two constructors instead of one defaulted-argument form: a `= {}`
  // default would be parsed before the nested Options' member initializers.)
  DeviceCalibrator();
  explicit DeviceCalibrator(Options options);

  /// Resets state, stores the preset the run prices against, and arms the
  /// sampling gate (mode kOff leaves it disarmed). Arm before the run, like
  /// Heatmap::start().
  void arm(const DeviceProfile& preset, CalibrationMode mode);
  void arm(const DeviceProfile& preset, CalibrationMode mode,
           std::uint32_t sample_every);
  /// Disarms the gate; the accumulated state stays readable.
  void disarm();

  CalibrationMode mode() const;

  /// One timed random read batch: `ops` point loads totalling `bytes`,
  /// completed in `ns`. ops == 1 feeds the latency/size EWMAs; ops > 1 (one
  /// backend batch) additionally feeds the queue-lane estimate.
  void record_random(std::uint64_t ops, std::uint64_t bytes, std::uint64_t ns);
  void record_sequential(std::uint64_t bytes, std::uint64_t ns);
  void record_write(std::uint64_t bytes, std::uint64_t ns);

  /// True once both the random and sequential classes passed the floor.
  bool warm() const;

  CalibrationSnapshot snapshot() const;

  /// The measured profile: starts from `preset` and replaces every parameter
  /// whose class is past the warmup floor (a cold calibrator returns the
  /// preset unchanged).
  DeviceProfile calibrated(const DeviceProfile& preset) const;
  /// Same, against the preset stored by arm().
  DeviceProfile calibrated() const;
  const DeviceProfile& preset() const;

  /// `husg_calibration_*` gauges (gauges only — safe as a pre-scrape hook).
  void publish(Registry& registry) const;

  /// The /calibration JSON body: mode, sample counts, EWMA state, preset vs
  /// calibrated profile side by side.
  void write_json(std::ostream& os) const;

  void reset();

 private:
  struct Ewma {
    std::uint64_t samples = 0;
    double value = 0;  ///< EWMA of the tracked quantity

    void add(double sample, double alpha) {
      value = samples == 0 ? sample : value + alpha * (sample - value);
      ++samples;
    }
  };

  DeviceProfile calibrated_locked(const DeviceProfile& preset) const;
  double seq_bw_locked() const;

  Options opts_;

  mutable std::mutex mu_;
  CalibrationMode mode_ = CalibrationMode::kOff;
  DeviceProfile preset_;
  Ewma rand_latency_;  ///< seconds per random op
  Ewma rand_bytes_;    ///< bytes per random op
  Ewma seq_seconds_;   ///< seconds per sequential sample
  Ewma seq_bytes_;     ///< bytes per sequential sample
  Ewma write_seconds_;
  Ewma write_bytes_;
  Ewma lanes_;  ///< effective queue lanes from batch samples
  std::uint64_t outliers_ = 0;
};

}  // namespace husg::obs
