#include "obs/audit.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace husg::obs {

PredictorAudit PredictorAudit::from_run(const RunStats& stats,
                                        const DeviceProfile& device) {
  PredictorAudit audit;
  for (const IterationStats& it : stats.iterations) {
    for (const DecisionRecord& d : it.decisions) {
      AuditEntry e;
      e.iteration = it.iteration;
      e.interval = d.interval;
      e.c_rop = d.prediction.c_rop;
      e.c_cop = d.prediction.c_cop;
      e.chose_rop = d.used_rop;
      e.alpha_shortcut = d.prediction.alpha_shortcut;
      if (d.observed) {
        e.observed_bytes = d.observed_io.total_bytes();
        e.observed_seconds = device.modeled_seconds(d.observed_io);
        e.observed_wall_seconds = d.observed_wall_seconds;
        // The α shortcut picks COP without evaluating either formula; its
        // entries carry zero predicted cost and cannot be error-scored.
        e.evaluated = !d.prediction.alpha_shortcut;
      }
      if (e.evaluated) {
        const double pred = e.chose_rop ? e.c_rop : e.c_cop;
        const double denom =
            std::max(std::max(pred, e.observed_seconds), 1e-12);
        e.rel_error = std::abs(pred - e.observed_seconds) / denom;
      }
      audit.entries_.push_back(e);
    }
  }
  return audit;
}

PredictorAudit PredictorAudit::from_run_wall(const RunStats& stats,
                                             const DeviceProfile& device,
                                             PredictorFlavor flavor,
                                             double alpha) {
  PredictorAudit audit;
  const IoCostPredictor predictor(device, flavor, alpha);
  for (const IterationStats& it : stats.iterations) {
    for (const DecisionRecord& d : it.decisions) {
      AuditEntry e;
      e.iteration = it.iteration;
      e.interval = d.interval;
      e.chose_rop = d.used_rop;
      e.alpha_shortcut = d.prediction.alpha_shortcut;
      // Inputs are only captured when the formulas actually ran; a
      // zero-vertex record (forced mode, α shortcut) cannot be re-priced.
      const bool have_inputs = d.inputs.num_vertices > 0;
      if (have_inputs) {
        const Prediction p = predictor.predict(d.inputs, /*use_alpha=*/false);
        e.c_rop = p.c_rop;
        e.c_cop = p.c_cop;
      }
      if (d.observed && have_inputs && !d.prediction.alpha_shortcut) {
        e.observed_bytes = d.observed_io.total_bytes();
        e.observed_seconds = d.observed_wall_seconds;
        e.observed_wall_seconds = d.observed_wall_seconds;
        e.evaluated = true;
        const double pred = e.chose_rop ? e.c_rop : e.c_cop;
        const double denom =
            std::max(std::max(pred, e.observed_seconds), 1e-12);
        e.rel_error = std::abs(pred - e.observed_seconds) / denom;
      }
      audit.entries_.push_back(e);
    }
  }
  return audit;
}

AuditSummary PredictorAudit::summarize() const {
  AuditSummary s;
  s.entries = entries_.size();
  double sum = 0, sum_rop = 0, sum_cop = 0;
  std::size_t n_rop = 0, n_cop = 0;
  for (const AuditEntry& e : entries_) {
    if (!e.evaluated) continue;
    ++s.evaluated;
    sum += e.rel_error;
    s.max_rel_error = std::max(s.max_rel_error, e.rel_error);
    if (e.chose_rop) {
      sum_rop += e.rel_error;
      ++n_rop;
    } else {
      sum_cop += e.rel_error;
      ++n_cop;
    }
  }
  if (s.evaluated > 0) sum /= static_cast<double>(s.evaluated);
  s.mean_rel_error = sum;
  s.mean_rel_error_rop = n_rop > 0 ? sum_rop / static_cast<double>(n_rop) : 0;
  s.mean_rel_error_cop = n_cop > 0 ? sum_cop / static_cast<double>(n_cop) : 0;
  return s;
}

void PredictorAudit::publish(Registry& registry) const {
  // Histogram records integers; rel_error ∈ [0,1] is stored in micro-units
  // and exported back at scale 1e-6.
  Histogram& hist = registry.histogram(
      "husg_predictor_rel_error",
      "Symmetric relative error of the chosen C_rop/C_cop prediction vs "
      "observed modeled I/O, per evaluated interval decision",
      1e-6);
  for (const AuditEntry& e : entries_) {
    if (!e.evaluated) continue;
    hist.record(static_cast<std::uint64_t>(std::llround(e.rel_error * 1e6)));
  }
  const AuditSummary s = summarize();
  registry
      .counter("husg_predictor_decisions_total",
               "Hybrid ROP/COP decisions recorded in the audit log")
      .inc(s.entries);
  registry
      .counter("husg_predictor_decisions_evaluated_total",
               "Audit entries with both a formula prediction and an observed "
               "measurement")
      .inc(s.evaluated);
  // Gauge semantics: the most recently published run's mean (the histogram
  // above carries the cross-run aggregate).
  registry
      .gauge("husg_predictor_mean_rel_error",
             "Mean symmetric relative error over evaluated decisions")
      .set(s.mean_rel_error);
}

DecodeAudit audit_decode(const CodecStats& codec, double decode_bytes_per_sec) {
  DecodeAudit a;
  a.decoded_bytes = codec.decoded_bytes;
  a.measured_seconds = static_cast<double>(codec.decode_ns) / 1e9;
  if (decode_bytes_per_sec > 0) {
    a.predicted_seconds =
        static_cast<double>(codec.decoded_bytes) / decode_bytes_per_sec;
  }
  // decode_ns stays 0 unless attribution was armed for the run; without the
  // measurement (or without any decode traffic) there is nothing to score.
  a.evaluated = codec.decode_ns > 0 && codec.decoded_bytes > 0 &&
                decode_bytes_per_sec > 0;
  if (a.evaluated) {
    const double denom =
        std::max(std::max(a.predicted_seconds, a.measured_seconds), 1e-12);
    a.rel_error = std::abs(a.predicted_seconds - a.measured_seconds) / denom;
  }
  return a;
}

void publish(const DecodeAudit& audit, Registry& registry) {
  registry
      .gauge("husg_cpu_decode_predicted_seconds",
             "Codec model's T_decode for the run (decoded_bytes / decode_bps)")
      .set(audit.predicted_seconds);
  registry
      .gauge("husg_cpu_decode_measured_seconds",
             "Decode CPU measured by attribution (CodecStats::decode_ns)")
      .set(audit.measured_seconds);
  registry
      .gauge("husg_cpu_decode_rel_error",
             "Symmetric relative error of predicted vs measured decode time")
      .set(audit.rel_error);
}

void PredictorAudit::write_csv(std::ostream& os) const {
  os << "iteration,interval,c_rop,c_cop,chose_rop,alpha_shortcut,evaluated,"
        "observed_bytes,observed_seconds,observed_wall_seconds,rel_error\n";
  for (const AuditEntry& e : entries_) {
    os << e.iteration << ',' << e.interval << ',' << e.c_rop << ',' << e.c_cop
       << ',' << (e.chose_rop ? 1 : 0) << ',' << (e.alpha_shortcut ? 1 : 0)
       << ',' << (e.evaluated ? 1 : 0) << ',' << e.observed_bytes << ','
       << e.observed_seconds << ',' << e.observed_wall_seconds << ','
       << e.rel_error << '\n';
  }
}

}  // namespace husg::obs
