// Embedded admin HTTP server (observability layer, DESIGN.md §9).
//
// Everything the telemetry layer produced before this was dump-at-exit; a
// long `husg_cli serve` run was a black box until it finished. AdminServer
// is the live counterpart: a tiny HTTP/1.1 responder over plain POSIX
// sockets (no dependencies) that a curl or a Prometheus scraper can hit
// while jobs are in flight:
//
//   GET  /healthz       process is up → 200 "ok"
//   GET  /readyz        ready hook (store open, scheduler accepting) → 200;
//                       503 "not ready" when the hook says no, 503 with a
//                       JSON reason list when the anomaly watchdog holds an
//                       active anomaly (degraded hook)
//   GET  /metrics       live Prometheus exposition of the attached Registry;
//                       the pre-scrape hook refreshes point-in-time gauges
//                       first (gauges only — counters that accumulate per
//                       publish() call must not run per scrape)
//   GET  /jobs          live per-job JSON (queued + running) from the jobs
//                       hook; 404 when no hook is installed (single-run CLI)
//   GET  /heatmap       block-access heatmap JSON (Heatmap::write_json) for
//                       the process-wide heatmap; {"p": 0, ...} when not
//                       armed — scrape mid-run to watch the access pattern
//   GET  /calibration   live DeviceCalibrator state JSON (mode, per-class
//                       EWMA samples, preset vs calibrated profile) — always
//                       available, mode "off" when never armed
//   GET  /mrc           shadow miss-ratio curves + the installed cache
//                       partition from the mrc hook; 404 when no hook is
//                       installed (partitioning off or no cache)
//   GET  /trace?ms=N    arm the span tracer for N ms (capped), then return
//                       the Chrome-trace JSON of that window; 409 if a trace
//                       session (e.g. --trace-out) is already running
//   GET  /profile?ms=N  arm the sampling CPU profiler for N ms (capped by
//                       the same max_trace_ms; optional &hz=H overrides the
//                       sample rate), then return the window's folded stacks
//                       (flamegraph.pl / speedscope format); 409 if a
//                       --profile-out session owns the profiler
//   GET  /cpu           per-job CPU/wait attribution JSON (wall split into
//                       cpu / io_wait / lock_wait / decode / queued) from
//                       the cpu hook; {"jobs": []} when no hook is installed
//   POST /loglevel      body "debug"|"info"|"warn"|"quiet" adjusts the log
//                       threshold at runtime; GET reads the effective level
//   GET  /debug/bundle  one freshly assembled postmortem bundle (flight
//                       events, job table, metrics snapshot) from the bundle
//                       hook; 404 when no hook is installed
//
// Scope boundaries, deliberately: one serving thread handles one connection
// at a time (admin plane, not a data plane — /trace blocks it for the
// capture window); binds 127.0.0.1 by default (operator-local, no auth);
// `Connection: close` per request (no keep-alive state machine). Port 0
// binds an ephemeral port, readable via port() — tests and parallel CI use
// this to avoid collisions.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace husg::obs {

class Registry;

struct AdminOptions {
  /// IPv4 dotted-quad to bind. Default loopback: the admin plane is
  /// unauthenticated, so exposing it wider is an explicit operator choice.
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral, read back via port()
  /// Upper bound on a /trace?ms=N capture window (the serving thread sleeps
  /// through it, so it also bounds admin-plane unavailability).
  std::uint32_t max_trace_ms = 10'000;
};

class AdminServer {
 public:
  /// Returns the /jobs JSON body (see jobs_json in service/job.hpp).
  using JobsFn = std::function<std::string()>;
  /// Returns the /mrc JSON body (CachePartitionManager::write_json).
  using MrcFn = std::function<std::string()>;
  /// Returns the /cpu JSON body (JobScheduler::cpu_json).
  using CpuFn = std::function<std::string()>;
  /// Liveness of the thing being served; false → /readyz returns 503.
  using ReadyFn = std::function<bool()>;
  /// Anomaly state for /readyz (AnomalyWatchdog::readyz_json): an empty
  /// string means healthy; anything else is served verbatim as a JSON body
  /// with status 503 "degraded".
  using DegradedFn = std::function<std::string()>;
  /// Returns one serialized postmortem bundle (GET /debug/bundle).
  using BundleFn = std::function<std::string()>;
  /// Runs before every /metrics scrape. Must only set gauges: publish()
  /// methods that inc() counters accumulate per call and would inflate
  /// under repeated scrapes.
  using PreScrapeFn = std::function<void(Registry&)>;

  /// `registry` must outlive the server (Registry::global() qualifies).
  AdminServer(AdminOptions options, Registry& registry);
  ~AdminServer();  ///< stop()s if the caller has not.

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  void set_ready(ReadyFn fn) { ready_ = std::move(fn); }
  void set_degraded(DegradedFn fn) { degraded_ = std::move(fn); }
  void set_bundle(BundleFn fn) { bundle_ = std::move(fn); }
  void set_jobs(JobsFn fn) { jobs_ = std::move(fn); }
  void set_mrc(MrcFn fn) { mrc_ = std::move(fn); }
  void set_cpu(CpuFn fn) { cpu_ = std::move(fn); }
  void set_pre_scrape(PreScrapeFn fn) { pre_scrape_ = std::move(fn); }

  /// Binds, listens, and launches the serving thread. Throws IoError when
  /// the address or port cannot be bound. Install hooks before start().
  void start();

  /// Shuts the listener down and joins the serving thread. Idempotent.
  void stop();

  /// The bound port (resolves port 0 after start()).
  std::uint16_t port() const { return bound_port_; }
  bool running() const { return serving_.load(std::memory_order_acquire); }

  /// One request/response cycle on an accepted connection; exposed for the
  /// route unit tests via handle_request below.
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// Pure route dispatch (no sockets): `method` + `target` (path?query) +
  /// request body in, Response out. The socket loop and the tests share it.
  Response handle_request(const std::string& method, const std::string& target,
                          const std::string& body);

 private:
  void serve_loop();
  void handle_connection(int fd);

  AdminOptions opts_;
  Registry* registry_;
  ReadyFn ready_;
  DegradedFn degraded_;
  BundleFn bundle_;
  JobsFn jobs_;
  MrcFn mrc_;
  CpuFn cpu_;
  PreScrapeFn pre_scrape_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< stop() writes, serve_loop poll()s
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> serving_{false};
  std::thread thread_;
};

}  // namespace husg::obs
