#include "obs/iotrace.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>

#include "io/backend/io_backend.hpp"
#include "obs/metrics.hpp"
#include "util/common.hpp"

namespace husg::obs {

namespace detail {
std::atomic<bool> g_iotrace{false};
}  // namespace detail

const char* to_string(TraceBlockKind kind) {
  switch (kind) {
    case TraceBlockKind::kOutAdj:
      return "out.adj";
    case TraceBlockKind::kOutIdx:
      return "out.idx";
    case TraceBlockKind::kInAdj:
      return "in.adj";
    case TraceBlockKind::kInIdx:
      return "in.idx";
  }
  return "?";
}

namespace {

constexpr char kMagic[8] = {'H', 'U', 'S', 'G', 'I', 'O', 'T', '1'};
constexpr std::uint32_t kVersion = 1;
/// Flush a thread buffer to the file once it holds this many bytes.
constexpr std::size_t kFlushBytes = 256 * 1024;

// Little-endian field-by-field serialization: the in-memory structs never
// touch the disk directly, so there is no padding/ABI coupling.
void put_u8(std::vector<char>& b, std::uint8_t v) {
  b.push_back(static_cast<char>(v));
}

void put_u32(std::vector<char>& b, std::uint32_t v) {
  for (int k = 0; k < 4; ++k) b.push_back(static_cast<char>(v >> (8 * k)));
}

void put_u64(std::vector<char>& b, std::uint64_t v) {
  for (int k = 0; k < 8; ++k) b.push_back(static_cast<char>(v >> (8 * k)));
}

void put_f64(std::vector<char>& b, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(b, bits);
}

void serialize_access(std::vector<char>& b, const AccessEvent& e) {
  put_u8(b, static_cast<std::uint8_t>(TraceRecord::Type::kAccess));
  put_u64(b, e.seq);
  put_u8(b, static_cast<std::uint8_t>(e.kind));
  put_u8(b, static_cast<std::uint8_t>(e.outcome));
  put_u8(b, static_cast<std::uint8_t>(e.insert_mode));
  put_u8(b, static_cast<std::uint8_t>(e.admit));
  put_u32(b, e.row);
  put_u32(b, e.col);
  put_u32(b, e.owner);
  put_u64(b, e.saved_bytes);
  put_u64(b, e.payload_bytes);
  put_u64(b, e.disk_bytes);
}

void serialize_evict(std::vector<char>& b, const EvictEvent& e) {
  put_u8(b, static_cast<std::uint8_t>(TraceRecord::Type::kEvict));
  put_u64(b, e.seq);
  put_u8(b, static_cast<std::uint8_t>(e.kind));
  put_u32(b, e.row);
  put_u32(b, e.col);
  put_u64(b, e.bytes);
}

void serialize_decision(std::vector<char>& b, const DecisionEvent& e) {
  put_u8(b, static_cast<std::uint8_t>(TraceRecord::Type::kDecision));
  put_u64(b, e.seq);
  put_u32(b, e.iteration);
  put_u32(b, e.interval);
  put_u64(b, e.active_vertices);
  put_u64(b, e.active_degree_sum);
  put_u32(b, e.value_bytes);
  put_u64(b, e.column_edge_bytes);
  put_u64(b, e.row_edge_bytes);
  put_u64(b, e.cached_row_edge_bytes);
  put_u64(b, e.cached_column_edge_bytes);
  put_f64(b, e.c_rop);
  put_f64(b, e.c_cop);
  put_u8(b, e.used_rop ? 1 : 0);
  put_u8(b, e.alpha_shortcut ? 1 : 0);
}

}  // namespace

std::uint64_t TraceRecord::seq() const {
  switch (type) {
    case Type::kAccess:
      return access.seq;
    case Type::kEvict:
      return evict.seq;
    case Type::kDecision:
      return decision.seq;
  }
  return 0;
}

/// Recorder internals: per-thread byte buffers registered on first use, one
/// output stream guarded by a file mutex. The gate (detail::g_iotrace) stays
/// the hot-path filter; buffer mutexes are leaves taken per event
/// (uncontended except when stop() drains).
struct IoTrace::Impl {
  struct Buffer {
    std::mutex mu;
    std::vector<char> bytes;
  };

  std::mutex mu;  ///< guards file, buffers registry, armed transitions
  std::ofstream file;
  bool open = false;
  std::vector<std::shared_ptr<Buffer>> buffers;
  std::atomic<std::uint64_t> seq{0};

  Buffer& local() {
    thread_local std::shared_ptr<Buffer> buf;
    if (!buf) {
      buf = std::make_shared<Buffer>();
      std::lock_guard<std::mutex> lock(mu);
      buffers.push_back(buf);
    }
    return *buf;
  }

  /// Appends `bytes` to the calling thread's buffer, spilling to the file
  /// when full. Returns false when recording stopped underneath the caller.
  bool append(IoTrace& owner, const std::vector<char>& bytes) {
    Buffer& b = local();
    std::vector<char> spill;
    {
      std::lock_guard<std::mutex> lock(b.mu);
      // Re-check under the buffer lock: stop() flips the gate first, then
      // drains buffers, so an append that lost the race lands here.
      if (!iotrace_enabled()) return false;
      b.bytes.insert(b.bytes.end(), bytes.begin(), bytes.end());
      if (b.bytes.size() < kFlushBytes) return true;
      spill.swap(b.bytes);
    }
    std::lock_guard<std::mutex> lock(mu);
    if (!open) return false;
    file.write(spill.data(), static_cast<std::streamsize>(spill.size()));
    owner.bytes_written_.fetch_add(spill.size(), std::memory_order_relaxed);
    return true;
  }
};

IoTrace& IoTrace::instance() {
  static IoTrace* trace = new IoTrace();  // leaked: outlives all threads
  return *trace;
}

IoTrace::Impl* IoTrace::impl() {
  static Impl* impl = new Impl();
  return impl;
}

void IoTrace::start(const std::string& path, const TraceRunInfo& info) {
  Impl& im = *impl();
  std::lock_guard<std::mutex> lock(im.mu);
  HUSG_CHECK(!im.open, "iotrace already recording");
  im.file.open(path, std::ios::binary | std::ios::trunc);
  if (!im.file) {
    throw IoError("iotrace: cannot open '" + path + "' for writing");
  }
  std::vector<char> header;
  header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
  put_u32(header, kVersion);
  put_u32(header, info.p);
  put_u64(header, info.budget_bytes);  // offset 16, see header comment
  put_f64(header, info.max_block_fraction);
  put_f64(header, info.alpha);
  put_f64(header, info.seq_read_bw);
  put_f64(header, info.rand_read_bw);
  put_f64(header, info.write_bw);
  put_f64(header, info.seek_seconds);
  put_u64(header, info.num_vertices);
  put_u64(header, info.num_edges);
  put_u32(header, info.edge_bytes);
  put_u8(header, info.fill_rop ? 1 : 0);
  put_u8(header, info.flavor);
  put_u8(header, info.granularity);
  put_u8(header, info.backend);
  im.file.write(header.data(), static_cast<std::streamsize>(header.size()));
  im.open = true;
  im.seq.store(0, std::memory_order_relaxed);
  events_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  bytes_written_.store(header.size(), std::memory_order_relaxed);
  detail::g_iotrace.store(true, std::memory_order_release);
}

void IoTrace::stop() {
  Impl& im = *impl();
  detail::g_iotrace.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(im.mu);
  if (!im.open) return;
  for (const auto& buf : im.buffers) {
    std::lock_guard<std::mutex> block(buf->mu);
    if (buf->bytes.empty()) continue;
    im.file.write(buf->bytes.data(),
                  static_cast<std::streamsize>(buf->bytes.size()));
    bytes_written_.fetch_add(buf->bytes.size(), std::memory_order_relaxed);
    buf->bytes.clear();
  }
  im.file.close();
  im.open = false;
}

void IoTrace::record_access(AccessEvent e) {
  Impl& im = *impl();
  e.seq = im.seq.fetch_add(1, std::memory_order_relaxed);
  std::vector<char> bytes;
  serialize_access(bytes, e);
  if (im.append(*this, bytes)) {
    events_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void IoTrace::record_evict(TraceBlockKind kind, std::uint32_t row,
                           std::uint32_t col, std::uint64_t bytes_freed) {
  Impl& im = *impl();
  EvictEvent e;
  e.seq = im.seq.fetch_add(1, std::memory_order_relaxed);
  e.kind = kind;
  e.row = row;
  e.col = col;
  e.bytes = bytes_freed;
  std::vector<char> bytes;
  serialize_evict(bytes, e);
  if (im.append(*this, bytes)) {
    events_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void IoTrace::record_decision(DecisionEvent e) {
  Impl& im = *impl();
  e.seq = im.seq.fetch_add(1, std::memory_order_relaxed);
  std::vector<char> bytes;
  serialize_decision(bytes, e);
  if (im.append(*this, bytes)) {
    events_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void IoTrace::publish(Registry& reg) const {
  reg.gauge("husg_iotrace_events", "I/O trace events recorded by the last run")
      .set(static_cast<double>(events_recorded()));
  reg.gauge("husg_iotrace_dropped",
            "I/O trace events dropped (recorded while stopping)")
      .set(static_cast<double>(dropped()));
  reg.gauge("husg_iotrace_file_bytes", "Bytes written to the I/O trace file")
      .set(static_cast<double>(bytes_written()));
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

struct Cursor {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;
  const std::string* path;

  void need(std::size_t n) const {
    if (pos + n > size) {
      throw DataError("iotrace: truncated record in '" + *path + "'");
    }
  }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data[pos++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[pos++]))
           << (8 * k);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int k = 0; k < 8; ++k) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[pos++]))
           << (8 * k);
    }
    return v;
  }
  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
};

}  // namespace

TraceFile load_trace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IoError("iotrace: cannot open '" + path + "'");
  std::vector<char> bytes((std::istreambuf_iterator<char>(f)),
                          std::istreambuf_iterator<char>());
  Cursor c{bytes.data(), bytes.size(), 0, &path};

  c.need(sizeof(kMagic));
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw DataError("iotrace: bad magic in '" + path + "'");
  }
  c.pos = sizeof(kMagic);
  std::uint32_t version = c.u32();
  if (version != kVersion) {
    throw DataError("iotrace: unsupported version " + std::to_string(version) +
                    " in '" + path + "'");
  }
  TraceFile out;
  out.info.p = c.u32();
  out.info.budget_bytes = c.u64();
  out.info.max_block_fraction = c.f64();
  out.info.alpha = c.f64();
  out.info.seq_read_bw = c.f64();
  out.info.rand_read_bw = c.f64();
  out.info.write_bw = c.f64();
  out.info.seek_seconds = c.f64();
  out.info.num_vertices = c.u64();
  out.info.num_edges = c.u64();
  out.info.edge_bytes = c.u32();
  out.info.fill_rop = c.u8() != 0;
  out.info.flavor = c.u8();
  out.info.granularity = c.u8();
  out.info.backend = c.u8();

  while (c.pos < c.size) {
    TraceRecord rec;
    std::uint8_t type = c.u8();
    switch (type) {
      case static_cast<std::uint8_t>(TraceRecord::Type::kAccess): {
        rec.type = TraceRecord::Type::kAccess;
        AccessEvent& e = rec.access;
        e.seq = c.u64();
        e.kind = static_cast<TraceBlockKind>(c.u8());
        e.outcome = static_cast<TraceOutcome>(c.u8());
        e.insert_mode = static_cast<TraceInsertMode>(c.u8());
        e.admit = static_cast<TraceAdmit>(c.u8());
        e.row = c.u32();
        e.col = c.u32();
        e.owner = c.u32();
        e.saved_bytes = c.u64();
        e.payload_bytes = c.u64();
        e.disk_bytes = c.u64();
        break;
      }
      case static_cast<std::uint8_t>(TraceRecord::Type::kEvict): {
        rec.type = TraceRecord::Type::kEvict;
        EvictEvent& e = rec.evict;
        e.seq = c.u64();
        e.kind = static_cast<TraceBlockKind>(c.u8());
        e.row = c.u32();
        e.col = c.u32();
        e.bytes = c.u64();
        break;
      }
      case static_cast<std::uint8_t>(TraceRecord::Type::kDecision): {
        rec.type = TraceRecord::Type::kDecision;
        DecisionEvent& e = rec.decision;
        e.seq = c.u64();
        e.iteration = c.u32();
        e.interval = c.u32();
        e.active_vertices = c.u64();
        e.active_degree_sum = c.u64();
        e.value_bytes = c.u32();
        e.column_edge_bytes = c.u64();
        e.row_edge_bytes = c.u64();
        e.cached_row_edge_bytes = c.u64();
        e.cached_column_edge_bytes = c.u64();
        e.c_rop = c.f64();
        e.c_cop = c.f64();
        e.used_rop = c.u8() != 0;
        e.alpha_shortcut = c.u8() != 0;
        break;
      }
      default:
        throw DataError("iotrace: unknown record type " +
                        std::to_string(type) + " in '" + path + "'");
    }
    out.records.push_back(rec);
  }
  // Thread buffers flush independently, so file order is per-thread; the
  // global seq restores the recording order.
  std::stable_sort(out.records.begin(), out.records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.seq() < b.seq();
                   });
  return out;
}

namespace {

const char* outcome_name(TraceOutcome o) {
  switch (o) {
    case TraceOutcome::kMiss:
      return "miss";
    case TraceOutcome::kHit:
      return "hit";
    case TraceOutcome::kBypass:
      return "bypass";
  }
  return "?";
}

const char* insert_mode_name(TraceInsertMode m) {
  switch (m) {
    case TraceInsertMode::kNone:
      return "none";
    case TraceInsertMode::kAlways:
      return "always";
    case TraceInsertMode::kIfAdmissible:
      return "if_admissible";
  }
  return "?";
}

const char* admit_name(TraceAdmit a) {
  switch (a) {
    case TraceAdmit::kNone:
      return "none";
    case TraceAdmit::kInserted:
      return "inserted";
    case TraceAdmit::kRejected:
      return "rejected";
  }
  return "?";
}

}  // namespace

void write_jsonl(const TraceFile& trace, std::ostream& os) {
  const TraceRunInfo& h = trace.info;
  os << "{\"type\": \"header\", \"p\": " << h.p
     << ", \"budget_bytes\": " << h.budget_bytes
     << ", \"max_block_fraction\": " << h.max_block_fraction
     << ", \"alpha\": " << h.alpha << ", \"fill_rop\": "
     << (h.fill_rop ? "true" : "false")
     << ", \"flavor\": " << static_cast<int>(h.flavor)
     << ", \"granularity\": " << static_cast<int>(h.granularity)
     << ", \"backend\": \""
     << to_string(static_cast<IoBackendKind>(h.backend))
     << "\", \"num_vertices\": " << h.num_vertices
     << ", \"num_edges\": " << h.num_edges
     << ", \"edge_bytes\": " << h.edge_bytes << "}\n";
  for (const TraceRecord& rec : trace.records) {
    switch (rec.type) {
      case TraceRecord::Type::kAccess: {
        const AccessEvent& e = rec.access;
        os << "{\"type\": \"access\", \"seq\": " << e.seq << ", \"kind\": \""
           << to_string(e.kind) << "\", \"outcome\": \""
           << outcome_name(e.outcome) << "\", \"insert_mode\": \""
           << insert_mode_name(e.insert_mode) << "\", \"admit\": \""
           << admit_name(e.admit) << "\", \"row\": " << e.row
           << ", \"col\": " << e.col << ", \"owner\": " << e.owner
           << ", \"saved_bytes\": " << e.saved_bytes
           << ", \"payload_bytes\": " << e.payload_bytes
           << ", \"disk_bytes\": " << e.disk_bytes << "}\n";
        break;
      }
      case TraceRecord::Type::kEvict: {
        const EvictEvent& e = rec.evict;
        os << "{\"type\": \"evict\", \"seq\": " << e.seq << ", \"kind\": \""
           << to_string(e.kind) << "\", \"row\": " << e.row
           << ", \"col\": " << e.col << ", \"bytes\": " << e.bytes << "}\n";
        break;
      }
      case TraceRecord::Type::kDecision: {
        const DecisionEvent& e = rec.decision;
        os << "{\"type\": \"decision\", \"seq\": " << e.seq
           << ", \"iteration\": " << e.iteration
           << ", \"interval\": " << e.interval
           << ", \"active_vertices\": " << e.active_vertices
           << ", \"active_degree_sum\": " << e.active_degree_sum
           << ", \"value_bytes\": " << e.value_bytes
           << ", \"column_edge_bytes\": " << e.column_edge_bytes
           << ", \"row_edge_bytes\": " << e.row_edge_bytes
           << ", \"cached_row_edge_bytes\": " << e.cached_row_edge_bytes
           << ", \"cached_column_edge_bytes\": " << e.cached_column_edge_bytes
           << ", \"c_rop\": " << e.c_rop << ", \"c_cop\": " << e.c_cop
           << ", \"used_rop\": " << (e.used_rop ? "true" : "false")
           << ", \"alpha_shortcut\": " << (e.alpha_shortcut ? "true" : "false")
           << "}\n";
        break;
      }
    }
  }
}

}  // namespace husg::obs
