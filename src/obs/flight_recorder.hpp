// Always-on incident diagnostics: a fixed-budget flight recorder of compact
// structured events plus per-job progress heartbeats (DESIGN.md §14).
//
// Unlike the opt-in Tracer (--trace-out) and IoTrace (--iotrace-out), the
// flight recorder is meant to run for the whole life of a serve process: it
// keeps only the last `events_per_thread` events per recording thread in a
// lock-free ring (old events are overwritten, never flushed), and the rings
// are materialized only on demand — a watchdog trip, a job timeout, a fatal
// signal, or GET /debug/bundle drains them into a postmortem bundle.
//
// Event write protocol (per slot, all fields std::atomic):
//   writer:  seq := 0 (release)  →  payload fields (relaxed)  →
//            seq := global sequence (release)
// A reader takes a consistent snapshot by loading seq (acquire), the payload
// (relaxed), an acquire fence, then seq again — a changed or zero seq means
// the slot was mid-overwrite and is skipped. Each ring has one writer (its
// owning thread) and any number of concurrent readers, so record() never
// takes a lock and drain_to_fd() is async-signal-safe (atomic loads and
// write(2) only). Registration of a new thread's ring takes the registry
// mutex once per thread per start() epoch.
//
// When the recorder is disabled every record site costs one relaxed atomic
// load and a predicted-not-taken branch, same contract as tracing_enabled().
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

namespace husg::obs {

class Registry;

std::uint64_t now_ns();  // trace.hpp's steady-clock epoch (shared timeline)

/// What a FlightEvent describes; `flag`/`a`/`v1..v3` are type-specific:
///   kJobSubmitted:  job, v1=priority (int64 cast), v2=estimate bytes
///   kJobStarted:    job, v1=estimate bytes
///   kJobFinished:   job, flag=terminal JobStatus, v1=wall µs
///   kProgress:      job, a=iteration, v1=active vertices, v2=edges so far,
///                   v3=disk bytes so far
///   kDecision:      job, a=iteration, flag=used_rop, v1=interval,
///                   v2=predicted µs, v3=observed µs
///   kRepartition:   job=owner, v1=old quota bytes, v2=new quota bytes
///   kBackendError:  v1=backend kind hash/errno, v2=bytes in flight
///   kAnomaly:       job (0=service-wide), flag=AnomalyKind, v1=detail
///   kBundle:        v1=trigger ordinal
enum class FlightEventType : std::uint8_t {
  kJobSubmitted = 1,
  kJobStarted = 2,
  kJobFinished = 3,
  kProgress = 4,
  kDecision = 5,
  kRepartition = 6,
  kBackendError = 7,
  kAnomaly = 8,
  kBundle = 9,
};

const char* to_string(FlightEventType type);

struct FlightEvent {
  std::uint64_t seq = 0;    ///< process-wide order (assigned by record())
  std::uint64_t ts_ns = 0;  ///< now_ns() timeline (assigned by record())
  FlightEventType type = FlightEventType::kProgress;
  std::uint8_t flag = 0;
  std::uint16_t tid = 0;  ///< recorder ring index (assigned by record())
  std::uint32_t a = 0;
  std::uint64_t job = 0;
  std::uint64_t v1 = 0;
  std::uint64_t v2 = 0;
  std::uint64_t v3 = 0;
};

/// Per-job heartbeat the engine ticks and the watchdog reads; all atomics,
/// shared between the engine worker (writer) and the scheduler dispatcher /
/// admin plane (readers). Owned by the scheduler for the life of a running
/// job (shared_ptr — it must outlive the engine that ticks it).
struct ProgressBeat {
  std::atomic<std::uint64_t> last_tick_ns{0};
  std::atomic<std::uint64_t> iteration{0};
  std::atomic<std::uint64_t> active_vertices{0};
  std::atomic<std::uint64_t> edges{0};     ///< cumulative edges processed
  std::atomic<std::uint64_t> io_bytes{0};  ///< cumulative disk bytes
  /// Consecutive §3.4 intervals whose predicted cost missed the observed
  /// wall by more than 2x in either direction; reset by a good prediction.
  std::atomic<std::uint32_t> mispredict_streak{0};
  /// Test hook (HUSG_TEST_FREEZE_HEARTBEAT): a frozen beat ignores every
  /// tick, simulating a wedged worker for watchdog/e2e coverage.
  std::atomic<bool> frozen{false};

  /// Cheap keep-alive from inner interval loops: timestamp only.
  void touch() {
    if (frozen.load(std::memory_order_relaxed)) return;
    last_tick_ns.store(now_ns(), std::memory_order_relaxed);
  }

  /// Full end-of-iteration progress tick.
  void tick(std::uint64_t iter, std::uint64_t active, std::uint64_t edges_total,
            std::uint64_t io_total) {
    if (frozen.load(std::memory_order_relaxed)) return;
    iteration.store(iter, std::memory_order_relaxed);
    active_vertices.store(active, std::memory_order_relaxed);
    edges.store(edges_total, std::memory_order_relaxed);
    io_bytes.store(io_total, std::memory_order_relaxed);
    last_tick_ns.store(now_ns(), std::memory_order_relaxed);
  }

  void note_prediction(bool mispredicted) {
    if (mispredicted) {
      mispredict_streak.fetch_add(1, std::memory_order_relaxed);
    } else {
      mispredict_streak.store(0, std::memory_order_relaxed);
    }
  }
};

namespace detail {
extern std::atomic<bool> g_flight;
}  // namespace detail

/// Inline fast-path check, same contract as tracing_enabled().
inline bool flight_enabled() {
  return detail::g_flight.load(std::memory_order_relaxed);
}

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultEventsPerThread = 4096;
  /// Rings a process can register across all start() epochs; threads beyond
  /// this record nothing (counted in overflowed()).
  static constexpr std::size_t kMaxRings = 512;

  static FlightRecorder& instance();

  /// Arms recording with a fixed per-thread ring budget. Restarting bumps
  /// the epoch: existing threads lazily re-register and old rings become
  /// inert (their memory is retained — threads may still hold pointers).
  void start(std::size_t events_per_thread = kDefaultEventsPerThread);
  void stop();

  /// Records one event (seq/ts_ns/tid are assigned here; caller fills the
  /// rest). No-op when disabled. Never blocks: one uncontended atomic
  /// sequence fetch_add plus relaxed slot stores.
  void record(FlightEvent e);

  /// Snapshot of every live ring, sorted by seq. Non-destructive — the
  /// rings keep rolling; safe concurrently with record().
  std::vector<FlightEvent> drain() const;

  /// Events recorded since the last start().
  std::uint64_t recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }
  /// Events overwritten in-ring (budget exceeded) plus events from threads
  /// that could not get a ring.
  std::uint64_t dropped() const;
  std::size_t events_per_thread() const {
    return events_per_thread_.load(std::memory_order_relaxed);
  }

  /// The drained events as a JSON array (postmortem bundle section).
  void write_events_json(std::ostream& os) const;

  /// Async-signal-safe drain: writes the same JSON array to `fd` using only
  /// atomic loads, stack buffers, and write(2). Returns bytes written (best
  /// effort; short writes are abandoned). Events are emitted in ring order,
  /// not globally sorted — sorting needs heap allocation.
  void drain_to_fd(int fd) const;

  /// husg_flight_* gauges (safe for the admin pre-scrape hook).
  void publish(Registry& registry) const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 0 = empty or mid-write
    std::atomic<std::uint64_t> ts_ns{0};
    /// type | flag<<8 | tid<<16 | a<<32
    std::atomic<std::uint64_t> meta{0};
    std::atomic<std::uint64_t> job{0};
    std::atomic<std::uint64_t> v1{0};
    std::atomic<std::uint64_t> v2{0};
    std::atomic<std::uint64_t> v3{0};
  };

  struct Ring {
    Ring(std::size_t cap, std::uint64_t ring_epoch, std::uint16_t ring_tid)
        : slots(cap), epoch(ring_epoch), tid(ring_tid) {}
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> head{0};  ///< next write index (monotone)
    std::uint64_t epoch;
    std::uint16_t tid;
  };

  FlightRecorder() = default;

  Ring* ring_for_thread();
  /// Reads one slot's consistent snapshot into `out`; false if the slot was
  /// empty or mid-overwrite.
  static bool read_slot(const Slot& slot, FlightEvent* out);
  static void emit_event_json(std::ostream& os, const FlightEvent& e);

  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> events_per_thread_{kDefaultEventsPerThread};
  std::atomic<std::uint64_t> overflowed_{0};

  /// Lock-free iteration surface for readers (incl. signal handlers): slots
  /// are published with a release store after the ring is fully built.
  std::atomic<Ring*> rings_[kMaxRings] = {};
  std::atomic<std::size_t> ring_count_{0};

  std::mutex mu_;  ///< serializes registration and ownership
  std::vector<std::unique_ptr<Ring>> owned_;
};

}  // namespace husg::obs
