// CPU-side observability pillar (DESIGN.md §15): where the wall time goes.
//
// The I/O side is deeply instrumented (spans, iotrace, calibration, flight
// recorder), but decode CPU (codec stores) and lock waits (shared cache,
// uring submission, scheduler queue) were invisible. This header adds three
// cooperating facilities, each one relaxed atomic load when disarmed:
//
//  1. Sampling profiler (Profiler) — per-thread CPU-clock timers
//     (timer_create + SIGEV_THREAD_ID + SIGPROF) fire an async-signal-safe
//     handler that snapshots the thread's live HUSG_SPAN context stack into
//     a per-thread seqlock ring (the flight-recorder slot protocol). Samples
//     fold offline into flamegraph.pl / speedscope "folded" stacks
//     (`role;cat.name;... count`). CPU-clock timers only run while the
//     thread burns CPU, so idle threads cost and record nothing.
//  2. Per-job CPU/wait attribution (JobUsage / UsageScope) — a thread-local
//     usage binding charges CLOCK_THREAD_CPUTIME_ID deltas, tracked-file
//     wait wall, lock-wait wall and codec decode time to the owning job,
//     splitting its wall into cpu / io-wait / lock-wait / queued.
//  3. Lock contention (ProfiledMutex / LockRegistry) — a BasicLockable
//     std::mutex wrapper. Disarmed: one relaxed load and the plain
//     lock/unlock. Armed: acquisition counts, contended-wait wall (also
//     charged to the bound job) and hold time per named site.
//
// Signal-safety rules for the SIGPROF handler: atomic loads/stores only, no
// allocation, no locks, no clock reads (the sampled stack IS the payload),
// no errno-touching calls. Span frames are plain stores ordered by
// std::atomic_signal_fence — the handler interrupts the very thread that
// wrote them, so no cross-thread visibility is needed; cross-thread readers
// only ever touch the atomic sample slots.
//
// This header stays lightweight (standard headers + a Registry forward
// declaration): hot-path headers (codec, tracked_file, cache) include it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace husg::obs {

class Registry;

/// Nanoseconds since the process steady-clock epoch (same clock as
/// trace.hpp's now_ns — one definition, declared in both headers).
std::uint64_t now_ns();

/// The calling thread's consumed CPU time (CLOCK_THREAD_CPUTIME_ID).
std::uint64_t thread_cpu_ns();

/// Cumulative time the calling thread has spent runnable-but-descheduled
/// (field 2 of /proc/thread-self/schedstat). 0 where the kernel does not
/// expose schedstats; callers treat it as best-effort.
std::uint64_t thread_sched_wait_ns();

namespace detail {
extern std::atomic<bool> g_profiling;     ///< sampling profiler armed
extern std::atomic<bool> g_attribution;   ///< per-job usage charging armed
extern std::atomic<bool> g_lock_profile;  ///< lock contention counting armed
}  // namespace detail

inline bool profiling_enabled() {
  return detail::g_profiling.load(std::memory_order_relaxed);
}
inline bool attribution_enabled() {
  return detail::g_attribution.load(std::memory_order_relaxed);
}
inline bool lock_profile_enabled() {
  return detail::g_lock_profile.load(std::memory_order_relaxed);
}

/// Arms/disarms attribution and lock profiling (the sampling profiler has
/// its own start/stop on Profiler because it also owns timers).
void set_attribution(bool enabled);
void set_lock_profile(bool enabled);

// ---------------------------------------------------------------------------
// Per-job CPU/wait attribution.

/// Live accumulator for one job. The scheduler owns it (shared with the
/// watchdog snapshot path); every thread that works for the job charges into
/// it through the thread-local binding below. decode_ns is an informational
/// subset of cpu_ns (decode work burns CPU); io/lock waits are wall time
/// spent blocked, disjoint from CPU by construction.
struct JobUsage {
  std::atomic<std::uint64_t> cpu_ns{0};
  std::atomic<std::uint64_t> io_wait_ns{0};
  std::atomic<std::uint64_t> lock_wait_ns{0};
  std::atomic<std::uint64_t> decode_ns{0};
  /// Critical-path lane: the subset of the totals above charged by the
  /// job's own body thread (UsageScope::kRoot). Helper threads (gang
  /// workers, one-shot carriers) run concurrently with the body thread, so
  /// their charges overlap its wall — only the root lane satisfies the
  /// decomposition identity  wall ≈ root_cpu + root_io + root_lock, which
  /// is what cpu_json and the serve report present as the job's wall split
  /// (the totals still price the job's full cost across threads).
  std::atomic<std::uint64_t> root_cpu_ns{0};
  std::atomic<std::uint64_t> root_io_wait_ns{0};
  std::atomic<std::uint64_t> root_lock_wait_ns{0};
  /// Root-thread time spent runnable-but-descheduled (kernel schedstat
  /// run-queue wait): wall that is neither CPU nor a blocking wait. Matters
  /// whenever jobs share cores — without it the decomposition undercounts
  /// on loaded machines.
  std::atomic<std::uint64_t> root_sched_wait_ns{0};
  /// Submit-to-dispatch wall; written once by the scheduler before any
  /// worker binds this usage.
  std::uint64_t queued_ns = 0;
};

/// Value snapshot of a JobUsage, carried in JobResult / JobHealth / reports.
struct JobUsageSnapshot {
  std::uint64_t cpu_ns = 0;
  std::uint64_t io_wait_ns = 0;
  std::uint64_t lock_wait_ns = 0;
  std::uint64_t decode_ns = 0;
  std::uint64_t root_cpu_ns = 0;
  std::uint64_t root_io_wait_ns = 0;
  std::uint64_t root_lock_wait_ns = 0;
  std::uint64_t root_sched_wait_ns = 0;
  std::uint64_t queued_ns = 0;

  bool any() const {
    return cpu_ns != 0 || io_wait_ns != 0 || lock_wait_ns != 0 ||
           decode_ns != 0 || queued_ns != 0;
  }
};

JobUsageSnapshot snapshot_usage(const JobUsage& usage);

namespace detail {
extern thread_local JobUsage* t_usage;
/// True when the current binding is the job's body thread (UsageScope
/// kRoot): waits also land in the critical-path lane.
extern thread_local bool t_usage_root;
}  // namespace detail

/// The job usage the calling thread currently charges into (null = none).
inline JobUsage* current_usage() { return detail::t_usage; }

inline void charge_io_wait(std::uint64_t ns) {
  if (JobUsage* u = detail::t_usage) {
    u->io_wait_ns.fetch_add(ns, std::memory_order_relaxed);
    if (detail::t_usage_root) {
      u->root_io_wait_ns.fetch_add(ns, std::memory_order_relaxed);
    }
  }
}
inline void charge_lock_wait(std::uint64_t ns) {
  if (JobUsage* u = detail::t_usage) {
    u->lock_wait_ns.fetch_add(ns, std::memory_order_relaxed);
    if (detail::t_usage_root) {
      u->root_lock_wait_ns.fetch_add(ns, std::memory_order_relaxed);
    }
  }
}
inline void charge_decode(std::uint64_t ns) {
  if (JobUsage* u = detail::t_usage) {
    u->decode_ns.fetch_add(ns, std::memory_order_relaxed);
  }
}

/// RAII binding: routes the calling thread's charges into `usage` for the
/// scope's lifetime and, on exit, charges the thread's consumed CPU delta
/// (CLOCK_THREAD_CPUTIME_ID). Pass null to suspend charging (restores the
/// previous binding either way). Pool workers and the scheduler wrap each
/// task execution in one of these.
///
/// kRoot (the default, and what the scheduler uses for the job body) also
/// feeds the critical-path lane so the per-job wall decomposition sums to
/// the job's wall; pool workers lending cycles to someone else's job bind
/// with kHelper — their charges overlap the body thread's wall and only
/// belong in the cross-thread totals.
class UsageScope {
 public:
  enum Lane { kRoot, kHelper };

  explicit UsageScope(JobUsage* usage, Lane lane = kRoot)
      : prev_(detail::t_usage),
        prev_root_(detail::t_usage_root),
        usage_(usage),
        root_(usage != nullptr && lane == kRoot),
        cpu0_(usage != nullptr ? thread_cpu_ns() : 0),
        sched0_(root_ ? thread_sched_wait_ns() : 0) {
    detail::t_usage = usage;
    detail::t_usage_root = root_;
  }
  ~UsageScope() {
    if (usage_ != nullptr) {
      const std::uint64_t cpu = thread_cpu_ns() - cpu0_;
      usage_->cpu_ns.fetch_add(cpu, std::memory_order_relaxed);
      if (root_) {
        usage_->root_cpu_ns.fetch_add(cpu, std::memory_order_relaxed);
        const std::uint64_t sched = thread_sched_wait_ns();
        if (sched > sched0_) {  // a 0 read means schedstat is unavailable
          usage_->root_sched_wait_ns.fetch_add(sched - sched0_,
                                               std::memory_order_relaxed);
        }
      }
    }
    detail::t_usage = prev_;
    detail::t_usage_root = prev_root_;
  }
  UsageScope(const UsageScope&) = delete;
  UsageScope& operator=(const UsageScope&) = delete;

 private:
  JobUsage* prev_;
  bool prev_root_;
  JobUsage* usage_;
  bool root_;
  std::uint64_t cpu0_;
  std::uint64_t sched0_;
};

// ---------------------------------------------------------------------------
// Lock contention observability.

/// Cumulative counters of one named lock site (process lifetime).
struct LockSiteStats {
  const char* name = "";
  std::uint64_t acquisitions = 0;  ///< armed lock() calls
  std::uint64_t contended = 0;     ///< armed lock() calls that had to wait
  std::uint64_t wait_ns = 0;       ///< wall spent blocked acquiring
  std::uint64_t hold_ns = 0;       ///< wall the lock was held (armed holds)
};

class LockSite {
 public:
  explicit LockSite(const char* name) : name_(name) {}

  const char* name() const { return name_; }
  void on_acquire() { acquisitions_.fetch_add(1, std::memory_order_relaxed); }
  void on_wait(std::uint64_t ns) {
    contended_.fetch_add(1, std::memory_order_relaxed);
    wait_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void on_hold(std::uint64_t ns) {
    hold_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  LockSiteStats stats() const;

 private:
  const char* name_;
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> contended_{0};
  std::atomic<std::uint64_t> wait_ns_{0};
  std::atomic<std::uint64_t> hold_ns_{0};
};

/// Process-wide registry of named lock sites. Sites are created once (at
/// ProfiledMutex construction) and live forever; multiple mutexes may share
/// one site name (their counters aggregate).
class LockRegistry {
 public:
  static LockRegistry& instance();

  /// Get-or-create by name. `name` must be a string literal (stored).
  LockSite* site(const char* name);

  std::vector<LockSiteStats> stats() const;

  /// husg_lock_* gauges, one family member per site plus a site count.
  /// Gauges only: safe as (part of) an admin pre-scrape hook.
  void publish(Registry& registry) const;

  /// Top-contended-locks JSON array, sorted by cumulative wait:
  /// [{"name": ..., "acquisitions": ..., "contended": ...,
  ///   "wait_seconds": ..., "hold_seconds": ...}, ...]
  void write_top_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<LockSite>> sites_;
};

/// std::mutex wrapper with per-site contention accounting. BasicLockable +
/// try_lock, so std::lock_guard, std::unique_lock and
/// std::condition_variable_any all work unchanged.
///
/// Disarmed cost: lock() is one relaxed atomic load, a branch, and the plain
/// mutex lock; unlock() is one plain-bool branch (guarded by the mutex
/// itself) and the plain unlock. No allocation ever.
class ProfiledMutex {
 public:
  explicit ProfiledMutex(const char* site_name)
      : site_(LockRegistry::instance().site(site_name)) {}

  ProfiledMutex(const ProfiledMutex&) = delete;
  ProfiledMutex& operator=(const ProfiledMutex&) = delete;

  void lock() {
    if (!lock_profile_enabled()) [[likely]] {
      mu_.lock();
      return;
    }
    lock_slow();
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    if (lock_profile_enabled()) [[unlikely]] {
      site_->on_acquire();
      arm_hold();
    }
    return true;
  }

  void unlock() {
    // hold_armed_ is guarded by the mutex we are about to release, so this
    // is a plain read; it is only ever true for holds that began armed.
    if (hold_armed_) [[unlikely]] {
      hold_armed_ = false;
      site_->on_hold(now_ns() - hold_start_ns_);
    }
    mu_.unlock();
  }

  const LockSite* site() const { return site_; }

 private:
  void lock_slow();
  void arm_hold() {
    hold_start_ns_ = now_ns();
    hold_armed_ = true;
  }

  std::mutex mu_;
  LockSite* site_;
  bool hold_armed_ = false;          ///< guarded by mu_
  std::uint64_t hold_start_ns_ = 0;  ///< guarded by mu_
};

// ---------------------------------------------------------------------------
// Sampling CPU profiler.

class Profiler {
 public:
  /// Span frames captured per sample (deep stacks keep the root side plus
  /// the leaf — the phase context matters more than mid-stack detail).
  static constexpr std::uint32_t kMaxCapture = 8;
  /// Samples retained per thread (ring; oldest overwritten and counted as
  /// dropped). 2048 at the default 97 Hz is a ~21 s window per thread.
  static constexpr std::uint32_t kRingSlots = 2048;
  /// Live span-stack depth tracked per thread.
  static constexpr std::uint32_t kMaxSpanDepth = 64;
  static constexpr std::uint32_t kDefaultHz = 97;  ///< prime: avoids beating

  static Profiler& instance();

  /// Arms sampling at `hz` (clamped to [1, 1000]). Threads attach their
  /// CPU-clock timer lazily at the next span or pool checkpoint — a thread
  /// that never runs code is never sampled (its CPU clock does not advance
  /// anyway). Returns false if already running.
  bool start(std::uint32_t hz = kDefaultHz);

  /// Disarms sampling. Captured samples stay available for export; stale
  /// per-thread timers fire into a handler that returns immediately and are
  /// deleted at the thread's next checkpoint or exit.
  void stop();

  /// Drops all captured samples (ring seqs and counters).
  void clear();

  bool running() const { return profiling_enabled(); }
  std::uint32_t hz() const;
  std::uint64_t samples() const;   ///< recorded since clear(), all threads
  std::uint64_t dropped() const;   ///< overwritten ring slots
  std::size_t thread_count() const;

  /// flamegraph.pl / speedscope folded stacks, aggregated across threads:
  /// one `role;cat.name;...;cat.name count` line per distinct stack.
  void write_folded(std::ostream& os) const;

  /// husg_cpu_profile_* gauges. Gauges only: pre-scrape safe.
  void publish(Registry& registry) const;

  /// Labels the calling thread's samples ("main", "pool_worker",
  /// "dispatcher"...). `role` must be a string literal.
  static void set_thread_role(const char* role);

  /// Cheap checkpoint for threads that may not pass a span (pool workers
  /// between tasks, the dispatcher loop): when sampling is armed, lazily
  /// create/refresh this thread's CPU-clock timer. One relaxed load
  /// disarmed.
  static void tick_current_thread() {
    if (profiling_enabled()) [[unlikely]] {
      attach_current_thread();
    }
  }

  /// Span-stack maintenance, called by Span::arm/finish when profiling is
  /// armed. Frames are plain stores ordered by signal fences (same-thread
  /// signal visibility only). push returns false at depth capacity —
  /// callers skip the matching pop.
  static bool push_frame(const char* cat, const char* name);
  static void pop_frame();

  struct ThreadState;  ///< defined in profiler.cpp (signal handler interface)

  /// Registers the calling thread's state (called once per thread via the
  /// internal thread-local handle; not for general use).
  ThreadState* register_thread();

 private:
  Profiler() = default;
  static void attach_current_thread();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadState>> threads_;  ///< process lifetime
  std::atomic<std::uint64_t> epoch_{1};  ///< bumped by start/stop
  std::atomic<std::uint32_t> hz_{0};
};

}  // namespace husg::obs
