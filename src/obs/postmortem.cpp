#include "obs/postmortem.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "codec/block_codec.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace husg::obs {

namespace {

void append_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void write_latency_json(std::ostream& os, const LatencySummary& l) {
  os << "{\"count\":" << l.count << ",\"mean_seconds\":" << l.mean_seconds
     << ",\"min_seconds\":" << l.min_seconds
     << ",\"max_seconds\":" << l.max_seconds
     << ",\"p50_seconds\":" << l.p50_seconds
     << ",\"p95_seconds\":" << l.p95_seconds
     << ",\"p99_seconds\":" << l.p99_seconds << "}";
}

void write_service_json(std::ostream& os, const ServiceStats& st) {
  os << "{\"submitted\":" << st.submitted << ",\"accepted\":" << st.accepted
     << ",\"rejected_queue_full\":" << st.rejected_queue_full
     << ",\"rejected_memory\":" << st.rejected_memory
     << ",\"rejected_shutdown\":" << st.rejected_shutdown
     << ",\"completed\":" << st.completed << ",\"failed\":" << st.failed
     << ",\"cancelled\":" << st.cancelled << ",\"timed_out\":" << st.timed_out
     << ",\"edges_processed\":" << st.edges_processed
     << ",\"io_read_bytes\":" << st.io.total_read_bytes()
     << ",\"io_write_bytes\":" << st.io.write_bytes
     << ",\"peak_reserved_bytes\":" << st.peak_reserved_bytes
     << ",\"cache_hits\":" << st.cache.hits
     << ",\"cache_misses\":" << st.cache.misses
     << ",\"cache_evictions\":" << st.cache.evictions << ",\"job_wall\":";
  write_latency_json(os, st.job_wall);
  os << "}";
}

}  // namespace

void write_bundle_json(std::ostream& os, const BundleContext& ctx) {
  FlightRecorder& flight = FlightRecorder::instance();
  os << "{\n  \"bundle_version\": 1,\n  \"reason\": \"";
  append_escaped(os, ctx.reason);
  os << "\",\n  \"written_ns\": " << now_ns();

  if (ctx.meta != nullptr) {
    os << ",\n  \"store\": {\"dir\": \"";
    append_escaped(os, ctx.store_dir);
    os << "\", \"vertices\": " << ctx.meta->num_vertices
       << ", \"edges\": " << ctx.meta->num_edges
       << ", \"partitions\": " << ctx.meta->p()
       << ", \"weighted\": " << (ctx.meta->weighted ? "true" : "false")
       << ", \"codec\": \"" << to_string(ctx.meta->codec)
       << "\", \"skip_filters\": "
       << (ctx.meta->has_skip_filters ? "true" : "false")
       << ", \"edge_record_bytes\": " << ctx.meta->edge_record_bytes() << "}";
  }

  if (ctx.has_incident) {
    const IncidentInfo& inc = ctx.incident;
    os << ",\n  \"incident\": {\"id\": " << inc.id << ", \"name\": \"";
    append_escaped(os, inc.name);
    os << "\", \"status\": \"" << inc.status << "\", \"error\": \"";
    append_escaped(os, inc.error);
    os << "\", \"wall_seconds\": " << inc.wall_seconds
       << ", \"iteration\": " << inc.iteration << ", \"edges\": " << inc.edges
       << ", \"io_bytes\": " << inc.io_bytes
       << ", \"last_tick_age_seconds\": " << inc.last_tick_age_seconds << "}";
  }

  os << ",\n  \"anomalies\": [";
  for (std::size_t k = 0; k < ctx.anomalies.size(); ++k) {
    const Anomaly& a = ctx.anomalies[k];
    if (k > 0) os << ",";
    os << "\n    {\"kind\": \"" << to_string(a.kind) << "\", \"job\": "
       << a.job << ", \"since_ns\": " << a.since_ns << ", \"detail\": \"";
    append_escaped(os, a.detail);
    os << "\"}";
  }
  os << (ctx.anomalies.empty() ? "]" : "\n  ]");

  {
    // jobs_view_json already returns a complete {"jobs": [...]} document.
    std::string jobs = jobs_view_json(ctx.jobs);
    while (!jobs.empty() && jobs.back() == '\n') jobs.pop_back();
    os << ",\n  \"jobs\": " << jobs;
  }

  if (ctx.has_stats) {
    os << ",\n  \"service\": ";
    write_service_json(os, ctx.stats);
  }

  os << ",\n  \"flight\": {\"recorded\": " << flight.recorded()
     << ", \"dropped\": " << flight.dropped()
     << ", \"events_per_thread\": " << flight.events_per_thread() << "}";
  os << ",\n  \"flight_events\": ";
  flight.write_events_json(os);

  if (ctx.calibration_json) {
    std::ostringstream extra;
    ctx.calibration_json(extra);
    if (!extra.str().empty()) os << ",\n  \"calibration\": " << extra.str();
  }
  if (ctx.mrc_json) {
    std::ostringstream extra;
    ctx.mrc_json(extra);
    if (!extra.str().empty()) os << ",\n  \"mrc\": " << extra.str();
  }

  // Top contended locks (§15), sorted by cumulative wait. Counts are zero
  // unless --lock-profile armed the sites, but the section is always present
  // so bundle consumers need no feature detection.
  os << ",\n  \"locks\": ";
  LockRegistry::instance().write_top_json(os);

  if (ctx.registry != nullptr) {
    std::ostringstream prom;
    ctx.registry->write_prometheus(prom);
    os << ",\n  \"metrics_prom\": \"";
    append_escaped(os, prom.str());
    os << "\"";
  }

  os << "\n}\n";
}

PostmortemWriter::PostmortemWriter(Options options, ContextFn context)
    : opts_(std::move(options)), context_(std::move(context)) {}

std::string PostmortemWriter::bundle_json(const std::string& reason,
                                          const IncidentInfo* incident) const {
  BundleContext ctx = context_ ? context_(reason) : BundleContext{};
  ctx.reason = reason;
  if (incident != nullptr) {
    ctx.has_incident = true;
    ctx.incident = *incident;
  }
  std::ostringstream os;
  write_bundle_json(os, ctx);
  return os.str();
}

std::filesystem::path PostmortemWriter::write(const std::string& reason,
                                              const IncidentInfo* incident) {
  if (opts_.dir.empty()) return {};
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  std::filesystem::create_directories(opts_.dir, ec);

  // Sanitize the reason into a filename fragment.
  std::string slug;
  for (char c : reason) {
    slug.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '-');
  }
  if (slug.size() > 48) slug.resize(48);
  const auto unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  const std::uint64_t n = written_.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream name;
  name << unix_ms << "-" << n << "-" << slug << ".bundle.json";
  const std::filesystem::path path = opts_.dir / name.str();

  try {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return {};
    out << bundle_json(reason, incident);
    out.flush();
    if (!out) return {};
  } catch (...) {
    return {};  // incident paths must never throw into the scheduler
  }

  // Prune oldest bundles past the cap (lexicographic order == time order:
  // names start with the millisecond timestamp... of equal digit count for
  // the next ~250 years; sort by file write time to be exact).
  std::vector<std::filesystem::path> bundles;
  for (const auto& entry : std::filesystem::directory_iterator(opts_.dir, ec)) {
    const std::string fn = entry.path().filename().string();
    if (fn.size() > 12 && fn.rfind(".bundle.json") == fn.size() - 12) {
      bundles.push_back(entry.path());
    }
  }
  if (bundles.size() > opts_.max_bundles) {
    std::sort(bundles.begin(), bundles.end());
    const std::size_t excess = bundles.size() - opts_.max_bundles;
    for (std::size_t k = 0; k < excess; ++k) {
      std::filesystem::remove(bundles[k], ec);
    }
  }
  return path;
}

namespace {

int g_crash_fd = -1;

extern "C" void husg_crash_handler(int sig) {
  const int fd = g_crash_fd;
  if (fd >= 0) {
    // Minimal bundle: header + flight events. snprintf is not on the
    // async-signal-safe list, so the signal number is formatted by hand.
    static const char kHead[] =
        "{\n  \"bundle_version\": 1,\n  \"reason\": \"signal:";
    ssize_t ignored = ::write(fd, kHead, sizeof(kHead) - 1);
    char digits[16];
    char* p = digits + sizeof(digits);
    unsigned v = sig < 0 ? 0u : static_cast<unsigned>(sig);
    do {
      *--p = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    ignored = ::write(fd, p, static_cast<std::size_t>(digits + sizeof(digits) - p));
    static const char kMid[] = "\",\n  \"flight_events\": ";
    ignored = ::write(fd, kMid, sizeof(kMid) - 1);
    FlightRecorder::instance().drain_to_fd(fd);
    ignored = ::write(fd, "\n}\n", 3);
    (void)ignored;
    ::fsync(fd);
  }
  // SA_RESETHAND restored the default disposition; re-raise to die with the
  // original signal (core dump semantics preserved).
  ::raise(sig);
}

}  // namespace

void install_crash_handler(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ostringstream name;
  name << "crash-" << ::getpid() << ".bundle.json";
  const std::filesystem::path path = dir / name.str();
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return;
  g_crash_fd = fd;

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = husg_crash_handler;
  sa.sa_flags = SA_RESETHAND | SA_NODEFER;
  sigemptyset(&sa.sa_mask);
  for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace husg::obs
