// Block-access heatmap profiler (observability layer, DESIGN.md §9).
//
// The engine's entire I/O behaviour is decided block by block over the P×P
// grid — which rows ROP point-loads, which columns COP streams, which blocks
// the cache keeps resident — yet until now the only record of it was
// run-level byte totals. The heatmap keeps one cell of atomic counters per
// (direction, interval-row, interval-col) adjacency block:
//
//   reads          disk reads of the block (cache miss fills, pass-throughs)
//   bytes          DISK bytes those reads transferred (encoded size for
//                  codec stores — what actually crossed the device)
//   payload_bytes  logical (decoded) bytes those reads delivered; equals
//                  bytes for uncompressed stores
//   hits           cache hits served without touching disk
//   misses         cache lookups that fell through to disk
//   evictions      times the cache evicted this block
//
// Index (CSR offset) I/O is deliberately excluded: it scales with vertices,
// not edges, and would blur the edge-traffic map the ROP/COP and cache-budget
// tuning questions are about.
//
// Gating mirrors the span tracer: recording sites pay one inline atomic load
// and a branch when disabled (see heatmap_enabled()); arming allocates a
// dense 2·P² cell array once. Arm before the run starts — start() must not
// race recording threads. Feeds live in CachedBlockReader (reads, bytes,
// hits, misses — the passthrough path records too, so an uncached engine
// still produces a heatmap) and BlockCache::make_room (evictions).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace husg::obs {

class Registry;

/// Which block grid a cell describes: out-blocks (ROP rows) or in-blocks
/// (COP columns).
enum class HeatDir : std::uint8_t { kOut = 0, kIn = 1 };

const char* to_string(HeatDir dir);

/// Plain snapshot of one block's counters.
struct HeatCell {
  std::uint64_t reads = 0;
  std::uint64_t bytes = 0;          ///< disk (encoded) bytes
  std::uint64_t payload_bytes = 0;  ///< logical bytes; == bytes uncompressed
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  /// Total demand on the block, however it was served.
  std::uint64_t accesses() const { return reads + hits; }
  bool empty() const {
    return reads == 0 && bytes == 0 && payload_bytes == 0 && hits == 0 &&
           misses == 0 && evictions == 0;
  }
};

/// One entry of the top-k ranking (ordered by accesses(), descending).
struct HotBlock {
  HeatDir dir = HeatDir::kOut;
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  HeatCell cell;
};

namespace detail {
extern std::atomic<bool> g_heatmap;
}  // namespace detail

/// Inline gate for recording sites. Acquire pairs with start()'s release so
/// an enabled observer also sees the allocated cell array.
inline bool heatmap_enabled() {
  return detail::g_heatmap.load(std::memory_order_acquire);
}

class Heatmap {
 public:
  /// The process-wide heatmap every recording site feeds.
  static Heatmap& instance();

  /// Allocates (or re-allocates, zeroed) the 2·p·p cell array and enables
  /// recording. Must not race active recorders — arm before the run.
  void start(std::uint32_t p);

  /// Disables recording; captured counters stay available for export.
  void stop();

  /// Disables recording and drops the cell array.
  void clear();

  std::uint32_t p() const { return p_; }
  bool has_data() const;

  /// Recording (relaxed fetch_adds). Out-of-range coordinates and calls
  /// while disabled are dropped. The 4-arg form is for uncompressed reads
  /// (payload == disk bytes); codec reads pass both.
  void record_read(HeatDir dir, std::uint32_t row, std::uint32_t col,
                   std::uint64_t bytes);
  void record_read(HeatDir dir, std::uint32_t row, std::uint32_t col,
                   std::uint64_t bytes, std::uint64_t payload_bytes);
  void record_hit(HeatDir dir, std::uint32_t row, std::uint32_t col);
  void record_miss(HeatDir dir, std::uint32_t row, std::uint32_t col);
  void record_eviction(HeatDir dir, std::uint32_t row, std::uint32_t col);

  HeatCell cell(HeatDir dir, std::uint32_t row, std::uint32_t col) const;

  /// Top-k blocks by accesses() (disk reads + cache hits), hottest first.
  std::vector<HotBlock> hottest(std::size_t k) const;

  /// max/mean of per-row (per-col) access totals across both directions;
  /// 1.0 = perfectly uniform, 0 when there is no data. High row skew says a
  /// few intervals dominate ROP traffic; high col skew the COP side.
  double row_skew() const;
  double col_skew() const;

  /// {"p": N, "blocks": [...nonzero cells...], "hottest": [...top_k...],
  ///  "row_skew": x, "col_skew": y} — the --heatmap-out JSON schema.
  void write_json(std::ostream& os, std::size_t top_k = 8) const;

  /// dir,row,col,reads,bytes,payload_bytes,hits,misses,evictions — nonzero
  /// cells only.
  void write_csv(std::ostream& os) const;

  /// Summary gauges (husg_heatmap_*: hottest block coordinates and load,
  /// blocks touched, row/col skew). RunStats::publish() calls this when the
  /// heatmap holds data, so ROP-vs-COP tuning reports see the skew next to
  /// the run counters.
  void publish(Registry& registry) const;

 private:
  Heatmap() = default;

  // reads,bytes,hits,misses,evictions,payload_bytes (payload appended last
  // so the first five keep their historical indices)
  static constexpr std::size_t kFields = 6;
  std::size_t index(HeatDir dir, std::uint32_t row, std::uint32_t col) const {
    return ((static_cast<std::size_t>(dir) * p_ + row) * p_ + col) * kFields;
  }
  void bump(HeatDir dir, std::uint32_t row, std::uint32_t col,
            std::size_t field, std::uint64_t delta);

  std::mutex mu_;  ///< serializes start/stop/clear
  std::uint32_t p_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
};

}  // namespace husg::obs
