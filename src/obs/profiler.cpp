#include "obs/profiler.hpp"

#include <csignal>
#include <cstring>
#include <ctime>
#include <algorithm>
#include <map>
#include <sstream>

#include <fcntl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include "obs/metrics.hpp"

// glibc exposes SIGEV_THREAD_ID but (unlike musl) not always the accessor
// macro for the target tid field.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace husg::obs {

namespace detail {
std::atomic<bool> g_profiling{false};
std::atomic<bool> g_attribution{false};
std::atomic<bool> g_lock_profile{false};
thread_local JobUsage* t_usage = nullptr;
thread_local bool t_usage_root = false;
}  // namespace detail

void set_attribution(bool enabled) {
  detail::g_attribution.store(enabled, std::memory_order_relaxed);
}
void set_lock_profile(bool enabled) {
  detail::g_lock_profile.store(enabled, std::memory_order_relaxed);
}

std::uint64_t thread_cpu_ns() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t thread_sched_wait_ns() {
  // /proc/thread-self/schedstat: "<oncpu_ns> <runqueue_wait_ns> <slices>".
  // Read per call (UsageScope binds twice per job body, not per block), no
  // caching: the fd cannot outlive the thread.
  const int fd = ::open("/proc/thread-self/schedstat", O_RDONLY);
  if (fd < 0) return 0;
  char buf[96];
  const ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  ::close(fd);
  if (n <= 0) return 0;
  buf[n] = '\0';
  const char* p = buf;
  while (*p != '\0' && *p != ' ') ++p;  // skip the on-cpu field
  if (*p != ' ') return 0;
  ++p;
  std::uint64_t wait = 0;
  while (*p >= '0' && *p <= '9') wait = wait * 10 + (*p++ - '0');
  return wait;
}

JobUsageSnapshot snapshot_usage(const JobUsage& usage) {
  JobUsageSnapshot s;
  s.cpu_ns = usage.cpu_ns.load(std::memory_order_relaxed);
  s.io_wait_ns = usage.io_wait_ns.load(std::memory_order_relaxed);
  s.lock_wait_ns = usage.lock_wait_ns.load(std::memory_order_relaxed);
  s.decode_ns = usage.decode_ns.load(std::memory_order_relaxed);
  s.root_cpu_ns = usage.root_cpu_ns.load(std::memory_order_relaxed);
  s.root_io_wait_ns = usage.root_io_wait_ns.load(std::memory_order_relaxed);
  s.root_lock_wait_ns =
      usage.root_lock_wait_ns.load(std::memory_order_relaxed);
  s.root_sched_wait_ns =
      usage.root_sched_wait_ns.load(std::memory_order_relaxed);
  s.queued_ns = usage.queued_ns;
  return s;
}

// ---------------------------------------------------------------------------
// Lock contention.

LockSiteStats LockSite::stats() const {
  LockSiteStats s;
  s.name = name_;
  s.acquisitions = acquisitions_.load(std::memory_order_relaxed);
  s.contended = contended_.load(std::memory_order_relaxed);
  s.wait_ns = wait_ns_.load(std::memory_order_relaxed);
  s.hold_ns = hold_ns_.load(std::memory_order_relaxed);
  return s;
}

LockRegistry& LockRegistry::instance() {
  static LockRegistry* reg = new LockRegistry();  // never destroyed: sites
  return *reg;                                    // outlive static teardown
}

LockSite* LockRegistry::site(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : sites_) {
    if (std::strcmp(s->name(), name) == 0) return s.get();
  }
  sites_.push_back(std::make_unique<LockSite>(name));
  return sites_.back().get();
}

std::vector<LockSiteStats> LockRegistry::stats() const {
  std::vector<LockSiteStats> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(sites_.size());
  for (const auto& s : sites_) out.push_back(s->stats());
  return out;
}

void LockRegistry::publish(Registry& registry) const {
  const std::vector<LockSiteStats> all = stats();
  // Always present (even with zero sites) so serve-mode scrapes can require
  // the husg_lock family unconditionally.
  registry.gauge("husg_lock_sites", "profiled lock sites registered")
      .set(static_cast<double>(all.size()));
  for (const LockSiteStats& s : all) {
    const std::string suffix = std::string("_") + s.name;
    registry
        .gauge("husg_lock_acquisitions" + suffix,
               "armed lock acquisitions (cumulative)")
        .set(static_cast<double>(s.acquisitions));
    registry
        .gauge("husg_lock_contended" + suffix,
               "armed lock acquisitions that blocked (cumulative)")
        .set(static_cast<double>(s.contended));
    registry
        .gauge("husg_lock_wait_seconds" + suffix,
               "wall spent blocked acquiring (cumulative)")
        .set(static_cast<double>(s.wait_ns) / 1e9);
    registry
        .gauge("husg_lock_hold_seconds" + suffix,
               "wall the lock was held by armed holders (cumulative)")
        .set(static_cast<double>(s.hold_ns) / 1e9);
  }
}

void LockRegistry::write_top_json(std::ostream& os) const {
  std::vector<LockSiteStats> all = stats();
  std::sort(all.begin(), all.end(),
            [](const LockSiteStats& a, const LockSiteStats& b) {
              return a.wait_ns > b.wait_ns;
            });
  os << "[";
  bool first = true;
  for (const LockSiteStats& s : all) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << s.name << "\",\"acquisitions\":" << s.acquisitions
       << ",\"contended\":" << s.contended
       << ",\"wait_seconds\":" << static_cast<double>(s.wait_ns) / 1e9
       << ",\"hold_seconds\":" << static_cast<double>(s.hold_ns) / 1e9 << "}";
  }
  os << "]";
}

void ProfiledMutex::lock_slow() {
  site_->on_acquire();
  if (mu_.try_lock()) {
    arm_hold();
    return;
  }
  const std::uint64_t t0 = now_ns();
  mu_.lock();
  const std::uint64_t dt = now_ns() - t0;
  site_->on_wait(dt);
  charge_lock_wait(dt);
  arm_hold();
}

// ---------------------------------------------------------------------------
// Sampling profiler.

/// Everything the SIGPROF handler touches, one instance per sampled thread.
/// Owned by the Profiler registry for the life of the process (a sample slot
/// may be drained long after its thread exited); the thread-local handle
/// below only manages the timer.
struct Profiler::ThreadState {
  // --- live span stack: written by the owning thread (plain stores ordered
  // by signal fences), read only by that thread's own signal handler.
  const char* frame_cat[kMaxSpanDepth];
  const char* frame_name[kMaxSpanDepth];
  std::atomic<std::uint32_t> depth{0};
  /// Atomic only for drain-side visibility (written by the owning thread,
  /// read by write_folded on any thread); the handler never touches it.
  std::atomic<const char*> role{"main"};

  // --- sample ring: written by the signal handler, read by drain threads.
  // Flight-recorder seqlock slot protocol: seq=0 (release) -> payload
  // (relaxed) -> seq=sample_no (release); readers acquire-load seq, copy,
  // acquire-fence, recheck.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> cat[kMaxCapture];
    std::atomic<const char*> name[kMaxCapture];
    std::atomic<std::uint32_t> depth{0};
  };
  Slot slots[kRingSlots];
  std::atomic<std::uint64_t> samples{0};

  // --- timer bookkeeping: owning thread only.
  timer_t timer{};
  bool timer_armed = false;
  std::uint64_t timer_epoch = 0;
};

namespace {

void sigprof_handler(int /*signo*/, siginfo_t* si, void* /*uctx*/) {
  // Async-signal-safe: atomic ops on the ThreadState delivered via
  // sival_ptr, nothing else (no allocation, locks, clocks, or errno).
  auto* ts = static_cast<Profiler::ThreadState*>(si->si_value.sival_ptr);
  if (ts == nullptr || !profiling_enabled()) return;
  const std::uint32_t depth = ts->depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);

  const std::uint64_t n = ts->samples.load(std::memory_order_relaxed) + 1;
  Profiler::ThreadState::Slot& slot =
      ts->slots[(n - 1) % Profiler::kRingSlots];
  slot.seq.store(0, std::memory_order_release);
  // Deep stacks keep the root side (phase context) plus the current leaf.
  std::uint32_t cap = depth;
  if (cap > Profiler::kMaxCapture) cap = Profiler::kMaxCapture;
  for (std::uint32_t k = 0; k < cap; ++k) {
    std::uint32_t src = k;
    if (depth > Profiler::kMaxCapture && k == cap - 1) src = depth - 1;
    slot.cat[k].store(ts->frame_cat[src], std::memory_order_relaxed);
    slot.name[k].store(ts->frame_name[src], std::memory_order_relaxed);
  }
  slot.depth.store(cap, std::memory_order_relaxed);
  slot.seq.store(n, std::memory_order_release);
  ts->samples.store(n, std::memory_order_relaxed);
}

void install_handler_once() {
  static bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &sigprof_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGPROF, &sa, nullptr);
    return true;
  }();
  (void)installed;
}

/// Role label applied when (if) this thread registers. Kept outside
/// ThreadState so set_thread_role stays allocation-free — every pool worker
/// calls it unconditionally, but the ~300 KB sample ring is only allocated
/// for threads that actually get sampled.
thread_local const char* t_role = "main";

/// Thread-local: pins this thread's ThreadState and deletes its timer at
/// thread exit (the state itself stays in the registry for draining).
struct ProfilerThreadHandle {
  Profiler::ThreadState* state = nullptr;

  Profiler::ThreadState* get() {
    if (state == nullptr) {
      state = Profiler::instance().register_thread();
      state->role.store(t_role, std::memory_order_relaxed);
    }
    return state;
  }

  ~ProfilerThreadHandle() {
    if (state != nullptr && state->timer_armed) {
      timer_delete(state->timer);
      state->timer_armed = false;
    }
  }
};

thread_local ProfilerThreadHandle t_handle;

}  // namespace

Profiler& Profiler::instance() {
  static Profiler* p = new Profiler();  // never destroyed: signal handlers
  return *p;                            // and timers may outlive teardown
}

Profiler::ThreadState* Profiler::register_thread() {
  auto state = std::make_unique<ThreadState>();
  ThreadState* raw = state.get();
  std::lock_guard<std::mutex> lock(mu_);
  threads_.push_back(std::move(state));
  return raw;
}

bool Profiler::start(std::uint32_t hz) {
  if (profiling_enabled()) return false;
  if (hz < 1) hz = 1;
  if (hz > 1000) hz = 1000;
  install_handler_once();
  hz_.store(hz, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_relaxed);
  detail::g_profiling.store(true, std::memory_order_relaxed);
  // Arm the calling thread immediately; others attach at their next span or
  // pool checkpoint.
  attach_current_thread();
  return true;
}

void Profiler::stop() {
  detail::g_profiling.store(false, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ts : threads_) {
    // Invalidate slots before zeroing the count so a concurrent drain never
    // pairs an old slot with the reset counter.
    for (auto& slot : ts->slots) slot.seq.store(0, std::memory_order_release);
    ts->samples.store(0, std::memory_order_relaxed);
  }
}

std::uint32_t Profiler::hz() const {
  return hz_.load(std::memory_order_relaxed);
}

std::uint64_t Profiler::samples() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ts : threads_) {
    total += ts->samples.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Profiler::dropped() const {
  std::uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ts : threads_) {
    const std::uint64_t n = ts->samples.load(std::memory_order_relaxed);
    if (n > kRingSlots) dropped += n - kRingSlots;
  }
  return dropped;
}

std::size_t Profiler::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

void Profiler::set_thread_role(const char* role) {
  t_role = role;
  if (t_handle.state != nullptr) {
    t_handle.state->role.store(role, std::memory_order_relaxed);
  }
}

void Profiler::attach_current_thread() {
  ThreadState* ts = t_handle.get();
  Profiler& p = instance();
  const std::uint64_t epoch = p.epoch_.load(std::memory_order_relaxed);
  if (ts->timer_armed && ts->timer_epoch == epoch) return;
  if (ts->timer_armed) {
    timer_delete(ts->timer);
    ts->timer_armed = false;
  }
  ts->timer_epoch = epoch;
  if (!profiling_enabled()) return;

  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_value.sival_ptr = ts;
  sev.sigev_notify_thread_id = static_cast<pid_t>(syscall(SYS_gettid));
  // The thread's own CPU clock: ticks (and fires) only while this thread
  // burns CPU, so blocked/idle threads are never sampled.
  if (timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &ts->timer) != 0) return;

  const std::uint32_t hz = p.hz();
  const long period_ns = static_cast<long>(1000000000ull / (hz ? hz : 1));
  struct itimerspec its;
  std::memset(&its, 0, sizeof(its));
  its.it_value.tv_sec = period_ns / 1000000000L;
  its.it_value.tv_nsec = period_ns % 1000000000L;
  its.it_interval = its.it_value;
  if (timer_settime(ts->timer, 0, &its, nullptr) != 0) {
    timer_delete(ts->timer);
    return;
  }
  ts->timer_armed = true;
}

bool Profiler::push_frame(const char* cat, const char* name) {
  ThreadState* ts = t_handle.get();
  const std::uint32_t depth = ts->depth.load(std::memory_order_relaxed);
  if (depth >= kMaxSpanDepth) return false;
  ts->frame_cat[depth] = cat;
  ts->frame_name[depth] = name;
  // Publish the frame before the new depth for this thread's own signal
  // handler; cross-thread visibility is not needed (frames are never read
  // off-thread).
  std::atomic_signal_fence(std::memory_order_release);
  ts->depth.store(depth + 1, std::memory_order_relaxed);
  return true;
}

void Profiler::pop_frame() {
  ThreadState* ts = t_handle.get();
  const std::uint32_t depth = ts->depth.load(std::memory_order_relaxed);
  if (depth > 0) ts->depth.store(depth - 1, std::memory_order_relaxed);
}

void Profiler::write_folded(std::ostream& os) const {
  // Aggregate identical stacks across all threads; map keeps output order
  // deterministic for a given sample set.
  std::map<std::string, std::uint64_t> folded;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ts : threads_) {
    const std::uint64_t n = ts->samples.load(std::memory_order_acquire);
    const std::uint64_t span = n < kRingSlots ? n : kRingSlots;
    for (std::uint64_t k = 0; k < span; ++k) {
      const ThreadState::Slot& slot = ts->slots[k % kRingSlots];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq == 0) continue;  // never written or being rewritten
      const char* cat[kMaxCapture];
      const char* name[kMaxCapture];
      std::uint32_t depth = slot.depth.load(std::memory_order_relaxed);
      if (depth > kMaxCapture) depth = kMaxCapture;
      for (std::uint32_t f = 0; f < depth; ++f) {
        cat[f] = slot.cat[f].load(std::memory_order_relaxed);
        name[f] = slot.name[f].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq) continue;  // torn
      std::string stack = ts->role.load(std::memory_order_relaxed);
      if (depth == 0) {
        stack += ";(no span)";
      } else {
        for (std::uint32_t f = 0; f < depth; ++f) {
          if (cat[f] == nullptr || name[f] == nullptr) {
            // Torn same-slot rewrite that kept the seq (ring wrapped a full
            // multiple); the recheck above catches all other cases.
            stack.clear();
            break;
          }
          stack += ";";
          stack += cat[f];
          stack += ".";
          stack += name[f];
        }
        if (stack.empty()) continue;
      }
      folded[stack] += 1;
    }
  }
  for (const auto& [stack, count] : folded) {
    os << stack << " " << count << "\n";
  }
}

void Profiler::publish(Registry& registry) const {
  // Always-present members of the husg_cpu family (scrapes require the
  // prefix even before any samples or jobs exist).
  registry.gauge("husg_cpu_profile_hz", "sampling profiler rate (0 = off)")
      .set(running() ? static_cast<double>(hz()) : 0.0);
  registry
      .gauge("husg_cpu_profile_samples", "profiler samples captured (all threads)")
      .set(static_cast<double>(samples()));
  registry
      .gauge("husg_cpu_profile_threads", "threads registered with the profiler")
      .set(static_cast<double>(thread_count()));
  registry
      .gauge("husg_cpu_profile_dropped", "profiler samples overwritten in rings")
      .set(static_cast<double>(dropped()));
}

}  // namespace husg::obs
