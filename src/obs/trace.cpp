#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace husg::obs {

namespace detail {
std::atomic<bool> g_tracing{false};
}  // namespace detail

std::uint64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

struct Tracer::ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> ring;
  std::size_t capacity = 0;
  std::size_t head = 0;  ///< next write slot
  std::size_t size = 0;
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
};

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::start(std::size_t events_per_thread) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  next_tid_ = 1;
  capacity_ = events_per_thread == 0 ? 1 : events_per_thread;
  epoch_.fetch_add(1, std::memory_order_relaxed);
  detail::g_tracing.store(true, std::memory_order_relaxed);
}

void Tracer::stop() {
  detail::g_tracing.store(false, std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  next_tid_ = 1;
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

Tracer::ThreadBuffer* Tracer::local_buffer() {
  // Per-thread cache of the registered buffer. `epoch` detects a tracer
  // restart: start()/clear() invalidate every thread's cached pointer, and
  // the thread re-registers on its next record.
  thread_local std::shared_ptr<ThreadBuffer> t_buffer;
  thread_local std::uint64_t t_epoch = 0;
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (t_buffer == nullptr || t_epoch != epoch) {
    auto buf = std::make_shared<ThreadBuffer>();
    {
      std::lock_guard<std::mutex> lock(mu_);
      buf->capacity = capacity_;
      buf->ring.resize(capacity_);
      buf->tid = next_tid_++;
      buffers_.push_back(buf);
    }
    t_buffer = std::move(buf);
    t_epoch = epoch;
  }
  return t_buffer.get();
}

void Tracer::record(const char* cat, const char* name, std::uint64_t start_ns,
                    std::uint64_t dur_ns, const char* arg1_key,
                    std::int64_t arg1, const char* arg2_key,
                    std::int64_t arg2) {
  if (!enabled()) return;
  ThreadBuffer* buf = local_buffer();
  TraceEvent ev;
  ev.cat = cat;
  ev.name = name;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.tid = buf->tid;
  ev.arg1_key = arg1_key;
  ev.arg1 = arg1;
  ev.arg2_key = arg2_key;
  ev.arg2 = arg2;
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->ring[buf->head] = ev;
  buf->head = (buf->head + 1) % buf->capacity;
  if (buf->size < buf->capacity) {
    ++buf->size;
  } else {
    ++buf->dropped;  // overwrote the oldest event
  }
}

void Span::arm(const char* cat, const char* name, const char* arg1_key,
               std::int64_t arg1, const char* arg2_key, std::int64_t arg2) {
  cat_ = cat;
  name_ = name;
  arg1_key_ = arg1_key;
  arg1_ = arg1;
  arg2_key_ = arg2_key;
  arg2_ = arg2;
  if (profiling_enabled()) {
    // Span sites double as the lazy timer checkpoints: any thread doing
    // span-covered work attaches its CPU-clock sampler here.
    Profiler::tick_current_thread();
    pushed_ = Profiler::push_frame(cat, name);
  }
  if (tracing_enabled()) {
    start_ns_ = now_ns();
    armed_ = true;
  }
}

void Span::finish() {
  if (armed_) {
    Tracer::instance().record(cat_, name_, start_ns_, now_ns() - start_ns_,
                              arg1_key_, arg1_, arg2_key_, arg2_);
  }
  if (pushed_) Profiler::pop_frame();
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    // Oldest first: the ring's logical start is head - size (mod capacity).
    std::size_t first = (buf->head + buf->capacity - buf->size) % buf->capacity;
    for (std::size_t k = 0; k < buf->size; ++k) {
      out.push_back(buf->ring[(first + k) % buf->capacity]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->size;
  }
  return n;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->dropped;
  }
  return n;
}

std::size_t Tracer::thread_buffer_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffers_.size();
}

void Tracer::write_chrome_json(std::ostream& os) const {
  std::vector<TraceEvent> evs = events();
  os << "{\"traceEvents\": [\n";
  for (std::size_t k = 0; k < evs.size(); ++k) {
    const TraceEvent& e = evs[k];
    // Chrome trace timestamps are microseconds; fractional values keep the
    // nanosecond resolution.
    os << "  {\"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << static_cast<double>(e.start_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(e.dur_ns) / 1e3 << ", \"cat\": \""
       << (e.cat != nullptr ? e.cat : "") << "\", \"name\": \""
       << (e.name != nullptr ? e.name : "") << "\"";
    if (e.arg1_key != nullptr || e.arg2_key != nullptr) {
      os << ", \"args\": {";
      if (e.arg1_key != nullptr) {
        os << "\"" << e.arg1_key << "\": " << e.arg1;
        if (e.arg2_key != nullptr) os << ", ";
      }
      if (e.arg2_key != nullptr) os << "\"" << e.arg2_key << "\": " << e.arg2;
      os << "}";
    }
    os << "}" << (k + 1 < evs.size() ? ",\n" : "\n");
  }
  os << "], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace husg::obs
