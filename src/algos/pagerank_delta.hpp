// PageRank-Delta (the paper's footnote 1): a vertex is active only while it
// has accumulated enough residual change, so the frontier thins out as ranks
// converge and the hybrid strategy can switch to ROP for the long tail.
//
// Value = {rank, residual}. An active vertex pushes damping*residual/outdeg
// to each out-neighbour; at the end of the iteration the engine's
// on_processed hook folds the consumed residual into the rank. Additive, so
// NOT idempotent: requires the (default) global decision granularity.
#pragma once

#include "core/program.hpp"

namespace husg {

struct PageRankDeltaValue {
  float rank = 0.0f;
  float residual = 0.0f;
};

struct PageRankDeltaProgram {
  using Value = PageRankDeltaValue;
  static constexpr bool kAccumulating = false;
  static constexpr bool kIdempotent = false;

  float damping = 0.85f;
  float epsilon = 1e-3f;  ///< activation threshold on the residual

  Value initial(const ProgramContext&, VertexId) const {
    // Neumann-series formulation: rank accumulates consumed residuals, so at
    // convergence rank_v = 0.15 · Σ_k (0.85·M)^k · 1 — the fixed point of
    // pr(v) = 0.15 + 0.85 Σ pr(u)/d_u.
    return Value{0.0f, 0.15f};
  }

  bool update(const ProgramContext& ctx, const Value& sval, VertexId s,
              Value& dval, VertexId, Weight) const {
    VertexId deg = ctx.out_degrees[s];
    if (deg == 0 || sval.residual <= 0.0f) return false;
    dval.residual += damping * sval.residual / static_cast<float>(deg);
    // Activate whenever the pending residual exceeds the threshold. This can
    // keep a vertex active one extra iteration (its own residual is consumed
    // at the iteration boundary), which costs a little work but never drops
    // residual mass.
    return dval.residual > epsilon;
  }

  /// Consumes the residual this vertex pushed during the iteration.
  void on_processed(const ProgramContext&, VertexId, Value& value,
                    const Value& prev) const {
    value.rank += prev.residual;
    value.residual -= prev.residual;
  }
};

}  // namespace husg
