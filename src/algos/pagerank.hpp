// Standard PageRank (the paper's dense workload: every vertex recomputes its
// rank every iteration, so the engine always streams with COP).
//
// Formulation per the paper's footnote 1 and the GraphChi/GridGraph
// convention:  pr(v) = 0.15 + 0.85 * Σ_{u->v} pr(u) / outdeg(u),
// starting from pr = 1.0; dangling mass is not redistributed.
//
// Accumulating program; run it with EngineOptions::max_iterations set to the
// desired sweep count (the paper uses 5).
#pragma once

#include <cmath>

#include "core/program.hpp"

namespace husg {

struct PageRankProgram {
  using Value = float;
  static constexpr bool kAccumulating = true;
  static constexpr bool kIdempotent = false;

  float damping = 0.85f;
  /// Vertices whose rank moved less than this stop being active; 0 keeps
  /// everything active so the run lasts exactly max_iterations.
  float tolerance = 0.0f;

  Value initial(const ProgramContext&, VertexId) const { return 1.0f; }

  Value gather_zero(const ProgramContext&, VertexId) const { return 0.0f; }

  void gather(const ProgramContext& ctx, Value& acc, const Value& sval,
              VertexId s, Weight) const {
    acc += sval / static_cast<float>(ctx.out_degrees[s]);
  }

  /// acc holds the gathered sum on entry and the new rank on exit; the
  /// return value is whether the vertex stays active.
  bool apply(const ProgramContext&, VertexId, Value& acc,
             const Value& prev) const {
    acc = (1.0f - damping) + damping * acc;
    return tolerance <= 0.0f || std::fabs(acc - prev) > tolerance;
  }
};

}  // namespace husg
