// k-core decomposition membership: iteratively peel vertices whose (induced)
// degree drops below k; the survivors are the k-core. Run on a symmetrized
// store.
//
// Push formulation: a vertex activates exactly once — when its remaining
// degree first crosses below k — and during its single active iteration it
// pushes a decrement to every neighbour, then the engine's on_processed hook
// marks it removed. Additive (not idempotent): requires the default global
// decision granularity and Jacobi sync, both enforced by the engine.
//
// The initial frontier is the set of vertices with degree < k
// (kcore_initial_frontier below).
#pragma once

#include "core/frontier.hpp"
#include "core/program.hpp"
#include "storage/store.hpp"

namespace husg {

struct KCoreValue {
  std::uint32_t degree = 0;   ///< remaining (induced) degree
  std::uint32_t removed = 0;  ///< 1 once peeled out of the core
};

struct KCoreProgram {
  using Value = KCoreValue;
  static constexpr bool kAccumulating = false;
  static constexpr bool kIdempotent = false;

  std::uint32_t k = 2;

  Value initial(const ProgramContext& ctx, VertexId v) const {
    return Value{ctx.out_degrees[v], 0};
  }

  bool update(const ProgramContext&, const Value& sval, VertexId,
              Value& dval, VertexId, Weight) const {
    (void)sval;  // the mere activity of the (being-removed) source matters
    if (dval.removed != 0) return false;
    std::uint32_t old = dval.degree;
    if (old > 0) dval.degree = old - 1;
    // Activate exactly on the crossing below k; degrees only decrease, so
    // this fires at most once per vertex.
    return old >= k && dval.degree < k;
  }

  void on_processed(const ProgramContext&, VertexId, Value& value,
                    const Value&) const {
    value.removed = 1;
  }
};

/// Frontier of vertices whose initial degree is already below k.
inline Frontier kcore_initial_frontier(const DualBlockStore& store,
                                       std::uint32_t k) {
  AtomicBitmap bits(store.meta().num_vertices);
  for (VertexId v = 0; v < store.meta().num_vertices; ++v) {
    if (store.out_degrees()[v] < k) bits.set(v);
  }
  return Frontier::from_bits(store.meta(), bits, store.out_degrees());
}

}  // namespace husg
