// Eccentricity / radii estimation via multi-source BFS (the MS-BFS / Ligra
// "Radii" technique): propagate a 64-bit root mask and record, per vertex,
// the iteration at which the last new root reached it. At convergence
// `level[v] = max_{r in sample, r reaches v} d(r, v)`, a lower bound on v's
// eccentricity; the maximum over all vertices lower-bounds the graph
// diameter. Run on a symmetrized store for the undirected estimate.
//
// Monotone and idempotent (bit-OR dominates; the level only rewrites when
// new bits arrive, and re-applying the same merge changes nothing).
#pragma once

#include <cstdint>
#include <vector>

#include "core/program.hpp"

namespace husg {

struct EccValue {
  std::uint64_t bits = 0;   ///< which sampled roots reach this vertex
  std::uint32_t level = 0;  ///< iteration of the latest bit arrival
};

struct EccentricityProgram {
  using Value = EccValue;
  static constexpr bool kAccumulating = false;
  static constexpr bool kIdempotent = true;

  std::vector<VertexId> roots;  ///< up to 64 sampled roots

  Value initial(const ProgramContext&, VertexId v) const {
    Value val;
    for (std::size_t i = 0; i < roots.size() && i < 64; ++i) {
      if (roots[i] == v) val.bits |= (1ULL << i);
    }
    return val;
  }

  bool update(const ProgramContext& ctx, const Value& sval, VertexId,
              Value& dval, VertexId, Weight) const {
    std::uint64_t merged = dval.bits | sval.bits;
    if (merged == dval.bits) return false;
    dval.bits = merged;
    // A bit arriving while iteration k executes travelled k+1 hops.
    dval.level = static_cast<std::uint32_t>(ctx.iteration) + 1;
    return true;
  }
};

}  // namespace husg
