// Breadth-first search: hop distance from a source vertex.
// Monotone min-combining program; idempotent, so every hybrid mode applies.
#pragma once

#include <limits>

#include "core/program.hpp"

namespace husg {

struct BfsProgram {
  using Value = std::uint32_t;
  static constexpr bool kAccumulating = false;
  static constexpr bool kIdempotent = true;
  static constexpr Value kUnreached = std::numeric_limits<Value>::max();

  VertexId source = 0;

  Value initial(const ProgramContext&, VertexId v) const {
    return v == source ? 0 : kUnreached;
  }

  bool update(const ProgramContext&, const Value& sval, VertexId,
              Value& dval, VertexId, Weight) const {
    if (sval == kUnreached) return false;
    Value cand = sval + 1;
    if (cand < dval) {
      dval = cand;
      return true;
    }
    return false;
  }
};

}  // namespace husg
