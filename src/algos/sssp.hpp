// Single-source shortest paths (Bellman-Ford style relaxation over a
// weighted store). Converges to exact distances for non-negative weights.
#pragma once

#include <limits>

#include "core/program.hpp"

namespace husg {

struct SsspProgram {
  using Value = float;
  static constexpr bool kAccumulating = false;
  static constexpr bool kIdempotent = true;
  static constexpr Value kUnreached = std::numeric_limits<Value>::infinity();

  VertexId source = 0;

  Value initial(const ProgramContext&, VertexId v) const {
    return v == source ? 0.0f : kUnreached;
  }

  bool update(const ProgramContext&, const Value& sval, VertexId,
              Value& dval, VertexId, Weight w) const {
    if (sval == kUnreached) return false;
    Value cand = sval + w;
    if (cand < dval) {
      dval = cand;
      return true;
    }
    return false;
  }
};

}  // namespace husg
