// Weakly connected components by label propagation: every vertex starts with
// its own id and the minimum id floods each component. The input graph must
// be symmetrized (paper §3.1: undirected graphs are stored as edge pairs);
// on a directed store the fixed point is the minimum reachable-ancestor
// label instead.
#pragma once

#include "core/program.hpp"

namespace husg {

struct WccProgram {
  using Value = VertexId;
  static constexpr bool kAccumulating = false;
  static constexpr bool kIdempotent = true;

  Value initial(const ProgramContext&, VertexId v) const { return v; }

  bool update(const ProgramContext&, const Value& sval, VertexId,
              Value& dval, VertexId, Weight) const {
    if (sval < dval) {
      dval = sval;
      return true;
    }
    return false;
  }
};

}  // namespace husg
