// Multi-source BFS / reachability: propagates a 64-bit source bitmask, so
// one pass answers "which of these 64 roots reach v" (the building block of
// MS-BFS-style radii and centrality estimators). Bit-OR is monotone and
// idempotent, so the full hybrid machinery applies.
#pragma once

#include <cstdint>
#include <vector>

#include "core/program.hpp"

namespace husg {

struct MultiBfsProgram {
  using Value = std::uint64_t;  ///< bit i set <=> reachable from root i
  static constexpr bool kAccumulating = false;
  static constexpr bool kIdempotent = true;

  /// roots[i] owns bit i; fewer than 64 roots leave the high bits unused.
  std::vector<VertexId> roots;

  Value initial(const ProgramContext&, VertexId v) const {
    Value bits = 0;
    for (std::size_t i = 0; i < roots.size() && i < 64; ++i) {
      if (roots[i] == v) bits |= (1ULL << i);
    }
    return bits;
  }

  bool update(const ProgramContext&, const Value& sval, VertexId,
              Value& dval, VertexId, Weight) const {
    Value merged = dval | sval;
    if (merged != dval) {
      dval = merged;
      return true;
    }
    return false;
  }
};

}  // namespace husg
