// Sparse matrix-vector multiplication over the graph's (weighted) adjacency
// matrix: y[v] = Σ_{(u,v) ∈ E} w(u,v) · x[u], iterated k times (power
// iteration without normalization). The paper calls PageRank "a
// representative sparse matrix multiplication algorithm"; this program is
// the raw primitive.
//
// Accumulating program; the input vector is the initial value assignment.
// Run with max_iterations = k.
#pragma once

#include <cmath>
#include <span>

#include "core/program.hpp"

namespace husg {

struct SpmvProgram {
  using Value = float;
  static constexpr bool kAccumulating = true;
  static constexpr bool kIdempotent = false;

  /// Input vector x; empty means x = all-ones.
  std::span<const float> x;

  Value initial(const ProgramContext&, VertexId v) const {
    return x.empty() ? 1.0f : x[v];
  }

  Value gather_zero(const ProgramContext&, VertexId) const { return 0.0f; }

  void gather(const ProgramContext&, Value& acc, const Value& sval, VertexId,
              Weight w) const {
    acc += w * sval;
  }

  bool apply(const ProgramContext&, VertexId, Value& acc,
             const Value&) const {
    // acc already holds y[v]; keep every vertex active so repeated
    // application computes A^k x under max_iterations = k.
    (void)acc;
    return true;
  }
};

}  // namespace husg
