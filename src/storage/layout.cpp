#include "storage/layout.hpp"

#include <algorithm>

namespace husg {

std::uint32_t StoreMeta::interval_of(VertexId v) const {
  HUSG_CHECK(v < num_vertices, "interval_of: vertex " << v << " out of range");
  auto it = std::upper_bound(boundaries.begin(), boundaries.end(), v);
  return static_cast<std::uint32_t>(it - boundaries.begin()) - 1;
}

}  // namespace husg
