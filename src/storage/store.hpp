// DualBlockStore: builder and reader for the paper's dual-block graph
// representation (§3.2). The reader exposes exactly the two access paths the
// hybrid update strategy needs:
//   * ROP — load one block's out-index, then point-load the out-edge runs of
//     active vertices (random I/O);
//   * COP — stream a whole in-block plus its in-index (sequential I/O).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <vector>

#include "codec/block_codec.hpp"
#include "graph/edge_list.hpp"
#include "io/backend/io_backend.hpp"
#include "io/io_stats.hpp"
#include "io/tracked_file.hpp"
#include "storage/layout.hpp"

namespace husg {

/// A decoded adjacency run: neighbour ids and (optional) weights.
/// Points into a caller-provided scratch buffer; valid until the next decode.
struct AdjacencySlice {
  std::span<const VertexId> neighbors;
  std::span<const Weight> weights;  ///< empty for unweighted stores
  Weight weight(std::size_t k) const {
    return weights.empty() ? Weight{1} : weights[k];
  }
};

/// Reusable decode scratch; one per worker thread.
class AdjacencyBuffer {
 public:
  std::vector<char> raw;
  std::vector<VertexId> ids;
  std::vector<Weight> ws;
  /// Keep-alive for zero-copy slices served out of shared storage (e.g. the
  /// block cache): the slice points into *guard's* bytes, not raw/ids/ws.
  std::shared_ptr<const void> guard;

  /// Whole-block decode memo for codec stores: point loads decode a block
  /// once into `ids` and later loads of the same block reuse it. Any decode
  /// of a different block through this buffer invalidates the memo.
  bool memo_valid = false;
  std::uint8_t memo_kind = 0;  ///< 0 = out-block, 1 = in-block
  std::uint32_t memo_i = 0;
  std::uint32_t memo_j = 0;

  bool memo_matches(std::uint8_t kind, std::uint32_t i,
                    std::uint32_t j) const {
    return memo_valid && memo_kind == kind && memo_i == i && memo_j == j;
  }
  void memo_set(std::uint8_t kind, std::uint32_t i, std::uint32_t j) {
    memo_valid = true;
    memo_kind = kind;
    memo_i = i;
    memo_j = j;
  }
};

class DualBlockStore {
 public:
  /// Builds the on-disk representation from an edge list and opens it.
  /// `io_config` selects the I/O backend of the returned (opened) store.
  static DualBlockStore build(const EdgeList& graph,
                              const std::filesystem::path& dir,
                              const StoreOptions& options = {},
                              const IoBackendConfig& io_config = {});

  /// Opens an existing store directory; validates header and file sizes.
  /// Reads go through the sync I/O backend (historical behaviour).
  static DualBlockStore open(const std::filesystem::path& dir);

  /// Opens with an explicit I/O backend configuration: all four data files
  /// read through the instantiated backend (uring when requested/available),
  /// optionally with O_DIRECT. kAuto degrades to sync at runtime; kUring
  /// throws IoError when the kernel denies io_uring.
  static DualBlockStore open(const std::filesystem::path& dir,
                             const IoBackendConfig& io_config);

  DualBlockStore(DualBlockStore&&) = default;
  DualBlockStore& operator=(DualBlockStore&&) = default;

  const StoreMeta& meta() const { return meta_; }
  const std::filesystem::path& dir() const { return dir_; }

  /// Out-degree / in-degree of every vertex (loaded once at open; charged as
  /// sequential I/O).
  std::span<const VertexId> out_degrees() const { return out_degrees_; }
  std::span<const VertexId> in_degrees() const { return in_degrees_; }

  /// I/O accounting sink shared by all files of this store. Engines snapshot
  /// it around phases. Mutable because reads are logically const.
  IoStats& io() const { return *io_; }

  /// The backend every read of this store goes through. Engines feed its
  /// kind/queue depth into DeviceProfile::for_backend so the §3.4 decision
  /// prices the path actually in use.
  const IoBackend& io_backend() const { return *backend_; }

  // --- ROP access path -----------------------------------------------------

  /// Loads the CSR index of out-block (i,j): interval_size(i)+1 offsets (in
  /// edge units, local to the block). Sequential read.
  void load_out_index(std::uint32_t i, std::uint32_t j,
                      std::vector<std::uint32_t>& out) const;

  /// Point-loads the out-edges of the local CSR range [lo,hi) of out-block
  /// (i,j) into `buf`; returns a decoded view. One random I/O op.
  AdjacencySlice load_out_edges(std::uint32_t i, std::uint32_t j,
                                std::uint32_t lo, std::uint32_t hi,
                                AdjacencyBuffer& buf) const;

  /// Batched ROP point loads (non-codec stores): each op's `offset` is a
  /// byte offset *within* out-block (i,j)'s adjacency; all ops go down as a
  /// single backend submission (one ring batch under uring). Charged exactly
  /// like a loop of load_out_edges calls: one random op per range.
  void load_out_ranges(std::uint32_t i, std::uint32_t j, IoReadOp* ops,
                       std::size_t count) const;

  // --- COP access path -----------------------------------------------------

  /// Loads the CSR index of in-block (i,j) (over interval j's vertices).
  void load_in_index(std::uint32_t i, std::uint32_t j,
                     std::vector<std::uint32_t>& out) const;

  /// Streams the whole adjacency of in-block (i,j) into `buf` (sequential)
  /// and returns the decoded view over all its edges. Codec payloads are
  /// self-delimiting, so no index is needed to decode.
  AdjacencySlice stream_in_block(std::uint32_t i, std::uint32_t j,
                                 AdjacencyBuffer& buf) const;

  // --- Codec access ---------------------------------------------------------

  /// Reads the full on-disk bytes (codec header + encoded payload) of
  /// out-block (i,j) into `out`. One random I/O op — the codec-mode
  /// equivalent of a point load, issued once per block thanks to the
  /// AdjacencyBuffer memo.
  void read_out_block_raw(std::uint32_t i, std::uint32_t j,
                          std::vector<char>& out) const;

  /// Same for in-block (i,j), charged sequential in stream-chunk units.
  void read_in_block_raw(std::uint32_t i, std::uint32_t j,
                         std::vector<char>& out) const;

  // --- Generic helpers ------------------------------------------------------

  /// Recomputes the FNV-1a checksum of every data file and compares it with
  /// the values recorded at build time; throws DataError on any mismatch.
  /// (open() validates structure cheaply; verify() reads every byte.)
  void verify() const;

  /// Reconstructs the full edge multiset (sorted by (src,dst)); test helper
  /// for round-trip validation.
  EdgeList reconstruct_edges() const;

 private:
  DualBlockStore() = default;

  AdjacencySlice decode(const char* raw, std::uint64_t record_count,
                        AdjacencyBuffer& buf) const;

  std::filesystem::path dir_;
  StoreMeta meta_;
  std::unique_ptr<IoStats> io_;
  /// The store's read path; TrackedFiles keep a pointer into it, and it is
  /// heap-held so those pointers survive moves of the store.
  std::unique_ptr<IoBackend> backend_;
  /// Stages encoded block bytes in codec read paths; pooled so concurrent
  /// workers reuse allocations. Null for kNone stores.
  std::unique_ptr<ScratchPool> scratch_;
  TrackedFile out_adj_, out_idx_, in_adj_, in_idx_;
  std::vector<VertexId> out_degrees_;
  std::vector<VertexId> in_degrees_;
};

/// Computes interval boundaries for a scheme. Exposed for tests.
std::vector<VertexId> compute_boundaries(const EdgeList& graph,
                                         std::uint32_t p,
                                         PartitionScheme scheme);

}  // namespace husg
