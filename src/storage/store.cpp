#include "storage/store.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "io/buffered.hpp"
#include "util/checksum.hpp"
#include "util/logging.hpp"

namespace husg {

namespace {

/// Builder-internal edge record (also the temp-bucket-file format of the
/// external build mode).
struct BuildEdge {
  VertexId src;
  VertexId dst;
  Weight weight;
};
static_assert(sizeof(BuildEdge) == 12);

constexpr const char* kMetaFile = "meta.bin";
constexpr const char* kDegreesFile = "degrees.bin";
constexpr const char* kOutAdjFile = "out.adj";
constexpr const char* kOutIdxFile = "out.idx";
constexpr const char* kInAdjFile = "in.adj";
constexpr const char* kInIdxFile = "in.idx";

void write_meta(const std::filesystem::path& dir, const StoreMeta& meta) {
  File f(dir / kMetaFile, File::Mode::kWrite);
  StoreHeader hdr;
  hdr.num_vertices = meta.num_vertices;
  hdr.num_edges = meta.num_edges;
  hdr.num_partitions = meta.num_partitions;
  hdr.weighted = meta.weighted ? 1 : 0;
  hdr.codec = static_cast<std::uint32_t>(meta.codec);
  hdr.skip_filters = meta.has_skip_filters ? 1 : 0;
  std::uint64_t off = 0;
  f.pwrite_exact(&hdr, sizeof(hdr), off);
  off += sizeof(hdr);
  f.pwrite_exact(meta.boundaries.data(),
                 meta.boundaries.size() * sizeof(VertexId), off);
  off += meta.boundaries.size() * sizeof(VertexId);
  f.pwrite_exact(meta.out_blocks.data(),
                 meta.out_blocks.size() * sizeof(BlockExtent), off);
  off += meta.out_blocks.size() * sizeof(BlockExtent);
  f.pwrite_exact(meta.in_blocks.data(),
                 meta.in_blocks.size() * sizeof(BlockExtent), off);
  off += meta.in_blocks.size() * sizeof(BlockExtent);
  f.pwrite_exact(meta.checksums, sizeof(meta.checksums), off);
  off += sizeof(meta.checksums);
  if (meta.has_skip_filters) {
    f.pwrite_exact(meta.block_signatures.data(),
                   meta.block_signatures.size() * sizeof(BlockSignature), off);
  }
}

/// FNV-1a over a whole file, streamed in chunks.
std::uint64_t checksum_file(const std::filesystem::path& path) {
  File f(path, File::Mode::kRead);
  std::uint64_t size = f.size();
  std::vector<char> buf(std::min<std::uint64_t>(size, 4u << 20));
  std::uint64_t state = kFnvOffset;
  std::uint64_t pos = 0;
  while (pos < size) {
    std::uint64_t len = std::min<std::uint64_t>(buf.size(), size - pos);
    f.pread_exact(buf.data(), len, pos);
    state = fnv1a(buf.data(), len, state);
    pos += len;
  }
  return state;
}

/// Streams `bytes` from `offset` into `dst`, charged sequential in
/// kDefaultStreamChunk units and submitted to the backend as one batch.
void stream_chunks(const TrackedFile& file, char* dst, std::uint64_t bytes,
                   std::uint64_t offset) {
  if (bytes == 0) return;
  std::vector<IoReadOp> ops;
  ops.reserve(static_cast<std::size_t>(
      (bytes + kDefaultStreamChunk - 1) / kDefaultStreamChunk));
  std::uint64_t pos = 0;
  while (pos < bytes) {
    std::uint64_t len =
        std::min<std::uint64_t>(kDefaultStreamChunk, bytes - pos);
    ops.push_back(IoReadOp{dst + pos, static_cast<std::size_t>(len),
                           offset + pos});
    pos += len;
  }
  file.read_sequential_batch(ops.data(), ops.size());
}

const char* data_file_name(std::size_t index) {
  static const char* kNames[kStoreDataFiles] = {
      kOutAdjFile, kOutIdxFile, kInAdjFile, kInIdxFile, kDegreesFile};
  return kNames[index];
}

StoreMeta read_meta(const std::filesystem::path& dir) {
  File f(dir / kMetaFile, File::Mode::kRead);
  StoreHeader hdr;
  HUSG_CHECK(f.size() >= sizeof(hdr),
             "store meta too small: " << (dir / kMetaFile).string());
  f.pread_exact(&hdr, sizeof(hdr), 0);
  HUSG_CHECK(hdr.magic == kStoreMagic,
             "bad store magic in " << (dir / kMetaFile).string());
  HUSG_CHECK(hdr.version == kStoreVersion,
             "unsupported store version " << hdr.version << " (expected "
                                          << kStoreVersion << ")");
  HUSG_CHECK(hdr.num_partitions > 0, "store has zero partitions");
  StoreMeta meta;
  meta.num_vertices = hdr.num_vertices;
  meta.num_edges = hdr.num_edges;
  meta.num_partitions = hdr.num_partitions;
  meta.weighted = hdr.weighted != 0;
  HUSG_CHECK(hdr.codec <= static_cast<std::uint32_t>(BlockCodecKind::kDeltaVarint),
             "unknown block codec id " << hdr.codec << " in store meta");
  meta.codec = static_cast<BlockCodecKind>(hdr.codec);
  meta.has_skip_filters = hdr.skip_filters != 0;
  HUSG_CHECK(!(meta.weighted && meta.codec != BlockCodecKind::kNone),
             "codec blocks are only supported for unweighted stores");
  std::size_t p = meta.num_partitions;
  std::uint64_t expected = sizeof(hdr) + (p + 1) * sizeof(VertexId) +
                           2 * p * p * sizeof(BlockExtent) +
                           sizeof(meta.checksums);
  if (meta.has_skip_filters) expected += p * p * sizeof(BlockSignature);
  HUSG_CHECK(f.size() == expected,
             "store meta size mismatch: " << f.size() << " vs " << expected);
  meta.boundaries.resize(p + 1);
  std::uint64_t off = sizeof(hdr);
  f.pread_exact(meta.boundaries.data(), (p + 1) * sizeof(VertexId), off);
  off += (p + 1) * sizeof(VertexId);
  meta.out_blocks.resize(p * p);
  f.pread_exact(meta.out_blocks.data(), p * p * sizeof(BlockExtent), off);
  off += p * p * sizeof(BlockExtent);
  meta.in_blocks.resize(p * p);
  f.pread_exact(meta.in_blocks.data(), p * p * sizeof(BlockExtent), off);
  off += p * p * sizeof(BlockExtent);
  f.pread_exact(meta.checksums, sizeof(meta.checksums), off);
  off += sizeof(meta.checksums);
  if (meta.has_skip_filters) {
    meta.block_signatures.resize(p * p);
    f.pread_exact(meta.block_signatures.data(), p * p * sizeof(BlockSignature),
                  off);
  }
  // Basic sanity over boundaries.
  HUSG_CHECK(meta.boundaries.front() == 0 &&
                 meta.boundaries.back() == meta.num_vertices,
             "corrupt interval boundaries");
  for (std::size_t k = 0; k + 1 < meta.boundaries.size(); ++k) {
    HUSG_CHECK(meta.boundaries[k] <= meta.boundaries[k + 1],
               "non-monotone interval boundaries");
  }
  return meta;
}

}  // namespace

std::vector<VertexId> compute_boundaries(const EdgeList& graph,
                                         std::uint32_t p,
                                         PartitionScheme scheme) {
  HUSG_CHECK(p > 0, "need at least one partition");
  VertexId n = graph.num_vertices();
  std::vector<VertexId> b(p + 1, 0);
  if (scheme == PartitionScheme::kEqualVertices) {
    for (std::uint32_t k = 0; k <= p; ++k) {
      b[k] = static_cast<VertexId>(
          static_cast<std::uint64_t>(n) * k / p);
    }
    return b;
  }
  // kEqualDegree: balance out+in degree mass.
  std::vector<std::uint64_t> mass(n, 1);  // +1 so empty vertices still spread
  for (const Edge& e : graph.edges()) {
    ++mass[e.src];
    ++mass[e.dst];
  }
  std::uint64_t total = std::accumulate(mass.begin(), mass.end(), 0ULL);
  std::uint64_t per = (total + p - 1) / p;
  std::uint64_t acc = 0;
  std::uint32_t k = 1;
  for (VertexId v = 0; v < n && k < p; ++v) {
    acc += mass[v];
    if (acc >= per * k) b[k++] = v + 1;
  }
  while (k < p) b[k++] = n;
  b[p] = n;
  return b;
}

DualBlockStore DualBlockStore::build(const EdgeList& graph,
                                     const std::filesystem::path& dir,
                                     const StoreOptions& options,
                                     const IoBackendConfig& io_config) {
  HUSG_CHECK(options.num_partitions > 0, "num_partitions must be positive");
  HUSG_CHECK(graph.num_vertices() > 0, "cannot build a store for |V|=0");
  ensure_directory(dir);
  const std::uint32_t p = options.num_partitions;
  const bool weighted = graph.weighted();
  const std::uint32_t rec = weighted ? sizeof(WeightedRecord) : sizeof(VertexId);

  HUSG_CHECK(!(options.codec != BlockCodecKind::kNone && weighted),
             "block codecs require an unweighted graph");

  StoreMeta meta;
  meta.num_vertices = graph.num_vertices();
  meta.num_edges = graph.num_edges();
  meta.num_partitions = p;
  meta.weighted = weighted;
  meta.codec = options.codec;
  meta.has_skip_filters = options.skip_filters;
  meta.boundaries = compute_boundaries(graph, p, options.scheme);
  meta.out_blocks.assign(static_cast<std::size_t>(p) * p, BlockExtent{});
  meta.in_blocks.assign(static_cast<std::size_t>(p) * p, BlockExtent{});
  if (meta.has_skip_filters) {
    meta.block_signatures.assign(static_cast<std::size_t>(p) * p,
                                 BlockSignature{});
  }

  // Map vertex -> interval once (O(1) lookups during the scatter pass).
  std::vector<std::uint32_t> interval_of(graph.num_vertices());
  for (std::uint32_t k = 0; k < p; ++k) {
    for (VertexId v = meta.boundaries[k]; v < meta.boundaries[k + 1]; ++v) {
      interval_of[v] = k;
    }
  }

  File out_adj(dir / kOutAdjFile, File::Mode::kWrite);
  File out_idx(dir / kOutIdxFile, File::Mode::kWrite);
  File in_adj(dir / kInAdjFile, File::Mode::kWrite);
  File in_idx(dir / kInIdxFile, File::Mode::kWrite);

  std::uint64_t out_adj_off = 0, out_idx_off = 0;
  std::uint64_t in_adj_off = 0, in_idx_off = 0;
  std::vector<char> adj_buf;
  std::vector<std::uint32_t> idx_buf;
  std::vector<VertexId> id_buf;  // codec staging: bare ids in CSR order

  auto emit_record = [&](std::size_t at, VertexId vid, Weight w) {
    if (weighted) {
      WeightedRecord r{vid, w};
      std::memcpy(adj_buf.data() + at * sizeof(r), &r, sizeof(r));
    } else {
      std::memcpy(adj_buf.data() + at * sizeof(vid), &vid, sizeof(vid));
    }
  };

  /// Emits one block's out- and in-side given its (unsorted) edge set.
  auto emit_block = [&](std::uint32_t i, std::uint32_t j,
                        std::vector<BuildEdge>& block_edges) {
    // ---- pack-time Bloom signature over the block's endpoints -------------
    if (meta.has_skip_filters) {
      BlockSignature& sig =
          meta.block_signatures[static_cast<std::size_t>(i) * p + j];
      for (const BuildEdge& e : block_edges) {
        signature_add(sig.src, e.src);
        signature_add(sig.dst, e.dst);
      }
    }

    // ---- out-block (i,j): sort by (src,dst), record = dst ----------------
    std::sort(block_edges.begin(), block_edges.end(),
              [](const BuildEdge& a, const BuildEdge& b) {
                if (a.src != b.src) return a.src < b.src;
                return a.dst < b.dst;
              });
    VertexId src_base = meta.boundaries[i];
    VertexId src_count = meta.boundaries[i + 1] - src_base;
    idx_buf.assign(static_cast<std::size_t>(src_count) + 1, 0);
    for (const BuildEdge& e : block_edges) ++idx_buf[e.src - src_base + 1];
    for (std::size_t k = 1; k < idx_buf.size(); ++k) idx_buf[k] += idx_buf[k - 1];
    if (meta.codec != BlockCodecKind::kNone) {
      id_buf.resize(block_edges.size());
      for (std::size_t k = 0; k < block_edges.size(); ++k) {
        id_buf[k] = block_edges[k].dst;
      }
      encode_block(id_buf.data(), id_buf.size(), idx_buf.data(), src_count,
                   adj_buf);
    } else {
      adj_buf.resize(block_edges.size() * rec);
      for (std::size_t k = 0; k < block_edges.size(); ++k) {
        emit_record(k, block_edges[k].dst, block_edges[k].weight);
      }
    }
    BlockExtent& ob = meta.out_blocks[static_cast<std::size_t>(i) * p + j];
    ob.adj_offset = out_adj_off;
    ob.adj_bytes = adj_buf.size();
    ob.idx_offset = out_idx_off;
    ob.edge_count = block_edges.size();
    if (!adj_buf.empty()) {
      out_adj.pwrite_exact(adj_buf.data(), adj_buf.size(), out_adj_off);
    }
    out_adj_off += adj_buf.size();
    out_idx.pwrite_exact(idx_buf.data(),
                         idx_buf.size() * sizeof(std::uint32_t), out_idx_off);
    out_idx_off += idx_buf.size() * sizeof(std::uint32_t);

    // ---- in-block (i,j): sort by (dst,src), record = src ------------------
    std::sort(block_edges.begin(), block_edges.end(),
              [](const BuildEdge& a, const BuildEdge& b) {
                if (a.dst != b.dst) return a.dst < b.dst;
                return a.src < b.src;
              });
    VertexId dst_base = meta.boundaries[j];
    VertexId dst_count = meta.boundaries[j + 1] - dst_base;
    idx_buf.assign(static_cast<std::size_t>(dst_count) + 1, 0);
    for (const BuildEdge& e : block_edges) ++idx_buf[e.dst - dst_base + 1];
    for (std::size_t k = 1; k < idx_buf.size(); ++k) idx_buf[k] += idx_buf[k - 1];
    if (meta.codec != BlockCodecKind::kNone) {
      id_buf.resize(block_edges.size());
      for (std::size_t k = 0; k < block_edges.size(); ++k) {
        id_buf[k] = block_edges[k].src;
      }
      encode_block(id_buf.data(), id_buf.size(), idx_buf.data(), dst_count,
                   adj_buf);
    } else {
      adj_buf.resize(block_edges.size() * rec);
      for (std::size_t k = 0; k < block_edges.size(); ++k) {
        emit_record(k, block_edges[k].src, block_edges[k].weight);
      }
    }
    BlockExtent& ib = meta.in_blocks[static_cast<std::size_t>(i) * p + j];
    ib.adj_offset = in_adj_off;
    ib.adj_bytes = adj_buf.size();
    ib.idx_offset = in_idx_off;
    ib.edge_count = block_edges.size();
    if (!adj_buf.empty()) {
      in_adj.pwrite_exact(adj_buf.data(), adj_buf.size(), in_adj_off);
    }
    in_adj_off += adj_buf.size();
    in_idx.pwrite_exact(idx_buf.data(),
                        idx_buf.size() * sizeof(std::uint32_t), in_idx_off);
    in_idx_off += idx_buf.size() * sizeof(std::uint32_t);
  };

  if (options.build_mode == BuildMode::kInMemory) {
    // Bucket edge ids per block, then sort each block's edges.
    std::size_t blocks = static_cast<std::size_t>(p) * p;
    std::vector<std::vector<EdgeId>> bucket(blocks);
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const Edge& ed = graph.edge(e);
      bucket[static_cast<std::size_t>(interval_of[ed.src]) * p +
             interval_of[ed.dst]]
          .push_back(e);
    }
    std::vector<BuildEdge> block_edges;
    for (std::uint32_t i = 0; i < p; ++i) {
      for (std::uint32_t j = 0; j < p; ++j) {
        std::vector<EdgeId>& ids = bucket[static_cast<std::size_t>(i) * p + j];
        block_edges.clear();
        block_edges.reserve(ids.size());
        for (EdgeId e : ids) {
          block_edges.push_back(
              BuildEdge{graph.edge(e).src, graph.edge(e).dst, graph.weight(e)});
        }
        emit_block(i, j, block_edges);
        ids.clear();
        ids.shrink_to_fit();
      }
    }
  } else {
    // External-memory preprocessing: scatter to per-block temp bucket files
    // with small append buffers, then sort one block at a time. Working
    // memory stays O(P^2 * buffer + largest block) regardless of |E|.
    constexpr std::size_t kBucketBuffer = 64u << 10;
    IoStats scatter_io;  // local accounting; preprocessing I/O is not part of
                         // any algorithm run
    std::vector<TrackedFile> bucket_files;
    std::vector<std::unique_ptr<RecordWriter<BuildEdge>>> writers;
    bucket_files.reserve(static_cast<std::size_t>(p) * p);
    auto bucket_path = [&](std::uint32_t i, std::uint32_t j) {
      return dir / ("bucket_" + std::to_string(i) + "_" + std::to_string(j) +
                    ".tmp");
    };
    for (std::uint32_t i = 0; i < p; ++i) {
      for (std::uint32_t j = 0; j < p; ++j) {
        bucket_files.emplace_back(bucket_path(i, j), File::Mode::kReadWrite,
                                  &scatter_io);
      }
    }
    for (auto& f : bucket_files) {
      writers.push_back(
          std::make_unique<RecordWriter<BuildEdge>>(f, kBucketBuffer));
    }
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const Edge& ed = graph.edge(e);
      std::size_t b = static_cast<std::size_t>(interval_of[ed.src]) * p +
                      interval_of[ed.dst];
      writers[b]->push(BuildEdge{ed.src, ed.dst, graph.weight(e)});
    }
    for (auto& w : writers) w->flush();
    writers.clear();

    std::vector<BuildEdge> block_edges;
    for (std::uint32_t i = 0; i < p; ++i) {
      for (std::uint32_t j = 0; j < p; ++j) {
        TrackedFile& f = bucket_files[static_cast<std::size_t>(i) * p + j];
        std::uint64_t count = f.size() / sizeof(BuildEdge);
        block_edges.resize(count);
        if (count > 0) {
          f.read_sequential(block_edges.data(), count * sizeof(BuildEdge), 0);
        }
        emit_block(i, j, block_edges);
      }
    }
    bucket_files.clear();
    for (std::uint32_t i = 0; i < p; ++i) {
      for (std::uint32_t j = 0; j < p; ++j) {
        std::error_code ec;
        std::filesystem::remove(bucket_path(i, j), ec);
      }
    }
  }

  // Degrees file: out-degrees then in-degrees.
  {
    File deg(dir / kDegreesFile, File::Mode::kWrite);
    std::vector<VertexId> od = graph.out_degrees();
    std::vector<VertexId> id = graph.in_degrees();
    deg.pwrite_exact(od.data(), od.size() * sizeof(VertexId), 0);
    deg.pwrite_exact(id.data(), id.size() * sizeof(VertexId),
                     od.size() * sizeof(VertexId));
  }

  for (std::size_t k = 0; k < kStoreDataFiles; ++k) {
    meta.checksums[k] = checksum_file(dir / data_file_name(k));
  }

  write_meta(dir, meta);
  HUSG_INFO << "built dual-block store at " << dir.string() << ": |V|="
            << meta.num_vertices << " |E|=" << meta.num_edges << " P=" << p
            << (weighted ? " weighted" : "");
  return open(dir, io_config);
}

DualBlockStore DualBlockStore::open(const std::filesystem::path& dir) {
  return open(dir, IoBackendConfig{});
}

DualBlockStore DualBlockStore::open(const std::filesystem::path& dir,
                                    const IoBackendConfig& io_config) {
  DualBlockStore s;
  s.dir_ = dir;
  s.meta_ = read_meta(dir);
  s.io_ = std::make_unique<IoStats>();
  s.backend_ = make_io_backend(io_config);
  const IoBackend* be = s.backend_.get();
  const bool direct = io_config.direct;
  s.out_adj_ = TrackedFile(dir / kOutAdjFile, File::Mode::kRead, s.io_.get(),
                           be, direct);
  s.out_idx_ = TrackedFile(dir / kOutIdxFile, File::Mode::kRead, s.io_.get(),
                           be, direct);
  s.in_adj_ = TrackedFile(dir / kInAdjFile, File::Mode::kRead, s.io_.get(),
                          be, direct);
  s.in_idx_ = TrackedFile(dir / kInIdxFile, File::Mode::kRead, s.io_.get(),
                          be, direct);

  if (s.meta_.codec != BlockCodecKind::kNone) {
    s.scratch_ = std::make_unique<ScratchPool>();
  }

  // Validate packed file sizes against the directory. For codec stores the
  // extents are variable-sized; each non-empty block must at least hold its
  // codec header.
  const std::uint32_t rec = s.meta_.edge_record_bytes();
  const bool codec = s.meta_.codec != BlockCodecKind::kNone;
  auto check_extent = [&](const BlockExtent& b, const char* side) {
    if (codec) {
      HUSG_CHECK((b.edge_count == 0) == (b.adj_bytes == 0) &&
                     (b.adj_bytes == 0 || b.adj_bytes >= sizeof(CodecBlockHeader)),
                 side << "-block extent inconsistent with codec framing");
    } else {
      HUSG_CHECK(b.adj_bytes == b.edge_count * rec,
                 side << "-block extent inconsistent with record size");
    }
  };
  std::uint64_t out_bytes = 0, in_bytes = 0, out_edges = 0, in_edges = 0;
  for (const BlockExtent& b : s.meta_.out_blocks) {
    out_bytes += b.adj_bytes;
    out_edges += b.edge_count;
    check_extent(b, "out");
  }
  for (const BlockExtent& b : s.meta_.in_blocks) {
    in_bytes += b.adj_bytes;
    in_edges += b.edge_count;
    check_extent(b, "in");
  }
  HUSG_CHECK(out_edges == s.meta_.num_edges && in_edges == s.meta_.num_edges,
             "block directory edge counts do not sum to |E|: out=" << out_edges
                 << " in=" << in_edges << " |E|=" << s.meta_.num_edges);
  HUSG_CHECK(s.out_adj_.size() == out_bytes,
             "out.adj truncated: " << s.out_adj_.size() << " vs " << out_bytes);
  HUSG_CHECK(s.in_adj_.size() == in_bytes,
             "in.adj truncated: " << s.in_adj_.size() << " vs " << in_bytes);

  // Load degrees (one sequential pass each).
  TrackedFile deg(dir / kDegreesFile, File::Mode::kRead, s.io_.get(), be,
                  direct);
  std::uint64_t n = s.meta_.num_vertices;
  HUSG_CHECK(deg.size() == 2 * n * sizeof(VertexId),
             "degrees.bin size mismatch: " << deg.size());
  s.out_degrees_.resize(n);
  s.in_degrees_.resize(n);
  deg.read_sequential(s.out_degrees_.data(), n * sizeof(VertexId), 0);
  deg.read_sequential(s.in_degrees_.data(), n * sizeof(VertexId),
                      n * sizeof(VertexId));
  return s;
}

void DualBlockStore::load_out_index(std::uint32_t i, std::uint32_t j,
                                    std::vector<std::uint32_t>& out) const {
  const BlockExtent& b = meta_.out_block(i, j);
  std::size_t entries = static_cast<std::size_t>(meta_.interval_size(i)) + 1;
  out.resize(entries);
  out_idx_.read_sequential(out.data(), entries * sizeof(std::uint32_t),
                           b.idx_offset);
}

void DualBlockStore::load_in_index(std::uint32_t i, std::uint32_t j,
                                   std::vector<std::uint32_t>& out) const {
  const BlockExtent& b = meta_.in_block(i, j);
  std::size_t entries = static_cast<std::size_t>(meta_.interval_size(j)) + 1;
  out.resize(entries);
  in_idx_.read_sequential(out.data(), entries * sizeof(std::uint32_t),
                          b.idx_offset);
}

AdjacencySlice DualBlockStore::decode(const char* raw,
                                      std::uint64_t record_count,
                                      AdjacencyBuffer& buf) const {
  buf.memo_valid = false;
  if (!meta_.weighted) {
    // Records are bare uint32 ids; reinterpret directly from raw bytes.
    buf.ids.resize(record_count);
    std::memcpy(buf.ids.data(), raw, record_count * sizeof(VertexId));
    return AdjacencySlice{std::span<const VertexId>(buf.ids), {}};
  }
  buf.ids.resize(record_count);
  buf.ws.resize(record_count);
  const WeightedRecord* recs = reinterpret_cast<const WeightedRecord*>(raw);
  for (std::uint64_t k = 0; k < record_count; ++k) {
    buf.ids[k] = recs[k].vid;
    buf.ws[k] = recs[k].weight;
  }
  return AdjacencySlice{std::span<const VertexId>(buf.ids),
                        std::span<const Weight>(buf.ws)};
}

void DualBlockStore::read_out_block_raw(std::uint32_t i, std::uint32_t j,
                                        std::vector<char>& out) const {
  const BlockExtent& b = meta_.out_block(i, j);
  out.resize(b.adj_bytes);
  if (b.adj_bytes > 0) {
    out_adj_.read_random(out.data(), b.adj_bytes, b.adj_offset);
  }
}

void DualBlockStore::read_in_block_raw(std::uint32_t i, std::uint32_t j,
                                       std::vector<char>& out) const {
  const BlockExtent& b = meta_.in_block(i, j);
  out.resize(b.adj_bytes);
  stream_chunks(in_adj_, out.data(), b.adj_bytes, b.adj_offset);
}

AdjacencySlice DualBlockStore::load_out_edges(std::uint32_t i, std::uint32_t j,
                                              std::uint32_t lo,
                                              std::uint32_t hi,
                                              AdjacencyBuffer& buf) const {
  HUSG_CHECK(lo <= hi, "load_out_edges: bad range");
  const BlockExtent& b = meta_.out_block(i, j);
  if (meta_.codec != BlockCodecKind::kNone) {
    // Codec blocks are whole-block reads: decode once per buffer, memoize,
    // and serve every CSR range of the block from the decoded ids.
    if (!buf.memo_matches(0, i, j)) {
      auto lease = scratch_->acquire();
      read_out_block_raw(i, j, *lease);
      std::size_t n = decode_block(lease->data(), lease->size(), buf.ids);
      HUSG_CHECK(n == b.edge_count,
                 "out-block (" << i << "," << j << ") decoded " << n
                               << " ids, directory says " << b.edge_count);
      buf.memo_set(0, i, j);
    }
    HUSG_CHECK(hi <= buf.ids.size(), "load_out_edges: range beyond block");
    return AdjacencySlice{
        std::span<const VertexId>(buf.ids).subspan(lo, hi - lo), {}};
  }
  const std::uint32_t rec = meta_.edge_record_bytes();
  std::uint64_t count = hi - lo;
  std::uint64_t bytes = count * rec;
  HUSG_CHECK(static_cast<std::uint64_t>(hi) * rec <= b.adj_bytes,
             "load_out_edges: range beyond block");
  buf.raw.resize(bytes);
  if (bytes > 0) {
    out_adj_.read_random(buf.raw.data(), bytes,
                         b.adj_offset + static_cast<std::uint64_t>(lo) * rec);
  }
  return decode(buf.raw.data(), count, buf);
}

void DualBlockStore::load_out_ranges(std::uint32_t i, std::uint32_t j,
                                     IoReadOp* ops, std::size_t count) const {
  if (count == 0) return;
  const BlockExtent& b = meta_.out_block(i, j);
  for (std::size_t k = 0; k < count; ++k) {
    HUSG_CHECK(ops[k].offset + ops[k].len <= b.adj_bytes,
               "load_out_ranges: range beyond block");
    ops[k].offset += b.adj_offset;
  }
  out_adj_.read_random_batch(ops, count);
}

AdjacencySlice DualBlockStore::stream_in_block(std::uint32_t i, std::uint32_t j,
                                               AdjacencyBuffer& buf) const {
  const BlockExtent& b = meta_.in_block(i, j);
  if (meta_.codec != BlockCodecKind::kNone) {
    if (!buf.memo_matches(1, i, j)) {
      auto lease = scratch_->acquire();
      read_in_block_raw(i, j, *lease);
      std::size_t n = decode_block(lease->data(), lease->size(), buf.ids);
      HUSG_CHECK(n == b.edge_count,
                 "in-block (" << i << "," << j << ") decoded " << n
                              << " ids, directory says " << b.edge_count);
      buf.memo_set(1, i, j);
    }
    return AdjacencySlice{std::span<const VertexId>(buf.ids), {}};
  }
  buf.raw.resize(b.adj_bytes);
  if (b.adj_bytes > 0) {
    // One streaming pass over the block; charged sequential in chunk units
    // and submitted as a single backend batch (all chunks in flight at once
    // under uring).
    stream_chunks(in_adj_, buf.raw.data(), b.adj_bytes, b.adj_offset);
  }
  return decode(buf.raw.data(), b.edge_count, buf);
}

void DualBlockStore::verify() const {
  for (std::size_t k = 0; k < kStoreDataFiles; ++k) {
    std::uint64_t actual = checksum_file(dir_ / data_file_name(k));
    HUSG_CHECK(actual == meta_.checksums[k],
               "checksum mismatch in " << data_file_name(k) << ": stored 0x"
                                       << std::hex << meta_.checksums[k]
                                       << ", computed 0x" << actual);
  }
}

EdgeList DualBlockStore::reconstruct_edges() const {
  std::vector<Edge> edges;
  std::vector<Weight> weights;
  edges.reserve(meta_.num_edges);
  if (meta_.weighted) weights.reserve(meta_.num_edges);
  AdjacencyBuffer buf;
  std::vector<std::uint32_t> idx;
  for (std::uint32_t i = 0; i < meta_.p(); ++i) {
    for (std::uint32_t j = 0; j < meta_.p(); ++j) {
      load_out_index(i, j, idx);
      const BlockExtent& b = meta_.out_block(i, j);
      AdjacencySlice all = load_out_edges(
          i, j, 0, static_cast<std::uint32_t>(b.edge_count), buf);
      VertexId base = meta_.interval_begin(i);
      for (VertexId local = 0; local < meta_.interval_size(i); ++local) {
        for (std::uint32_t k = idx[local]; k < idx[local + 1]; ++k) {
          edges.push_back(Edge{base + local, all.neighbors[k]});
          if (meta_.weighted) weights.push_back(all.weight(k));
        }
      }
    }
  }
  VertexId n = static_cast<VertexId>(meta_.num_vertices);
  EdgeList out = meta_.weighted
                     ? EdgeList(n, std::move(edges), std::move(weights))
                     : EdgeList(n, std::move(edges));
  out.sort_and_maybe_dedupe(false);
  return out;
}

}  // namespace husg
