// On-disk layout of the dual-block representation (paper §3.2).
//
// A store directory contains:
//   meta.bin     header, interval boundaries, block directory
//   degrees.bin  out-degrees then in-degrees (uint32 per vertex each)
//   out.adj      P*P out-blocks packed back to back; block (i,j) holds the
//                edges src∈I_i, dst∈I_j sorted by (src,dst); each record is
//                the destination id (+ weight if the store is weighted)
//   out.idx      per-block CSR offsets over the *source* interval's vertices
//   in.adj       P*P in-blocks; block (i,j) holds the same edge set sorted by
//                (dst,src); each record is the source id (+ weight)
//   in.idx       per-block CSR offsets over the *destination* interval's
//                vertices
//
// Out-records store only the destination (the source is implied by the CSR
// index), so the per-edge footprint M is 4 bytes unweighted / 8 weighted —
// the "more compact storage" the paper credits for its PageRank I/O edge
// over GridGraph's 8-byte edge-list format.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/block_codec.hpp"
#include "codec/block_signature.hpp"
#include "util/common.hpp"

namespace husg {

inline constexpr std::uint64_t kStoreMagic = 0x4855534744423031ULL;  // HUSGDB01
inline constexpr std::uint64_t kStoreVersion = 5;

/// Number of checksummed data files (out.adj, out.idx, in.adj, in.idx,
/// degrees.bin), in that order in StoreMeta::checksums.
inline constexpr std::size_t kStoreDataFiles = 5;

/// Extent of one block inside a packed .adj/.idx file pair. For codec
/// stores adj_bytes is the true on-disk size (codec header + encoded
/// payload); for kNone it is edge_count * record size as before.
struct BlockExtent {
  std::uint64_t adj_offset = 0;  ///< byte offset into the .adj file
  std::uint64_t adj_bytes = 0;   ///< on-disk adjacency bytes of the block
  std::uint64_t idx_offset = 0;  ///< byte offset into the .idx file
  std::uint64_t edge_count = 0;
};

/// Weighted adjacency record (unweighted blocks store bare uint32 ids).
struct WeightedRecord {
  VertexId vid;
  Weight weight;
};
static_assert(sizeof(WeightedRecord) == 8);

/// Fixed-size header at the front of meta.bin.
struct StoreHeader {
  std::uint64_t magic = kStoreMagic;
  std::uint64_t version = kStoreVersion;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t num_partitions = 0;
  std::uint32_t weighted = 0;
  std::uint32_t codec = 0;         ///< BlockCodecKind of every adjacency block
  std::uint32_t skip_filters = 0;  ///< 1 when per-block signatures follow
};

/// Fully parsed metadata.
struct StoreMeta {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t num_partitions = 0;
  bool weighted = false;
  /// Codec every adjacency block (out and in side) was packed with (see
  /// codec/block_codec.hpp). kNone keeps the v4 fixed-width record format.
  BlockCodecKind codec = BlockCodecKind::kNone;
  /// Per-block Bloom signatures present (StoreOptions::skip_filters).
  bool has_skip_filters = false;
  /// boundaries[k] = first vertex of interval k; boundaries[P] = |V|.
  std::vector<VertexId> boundaries;
  /// Block directories, row-major: block (i,j) at index i*P+j.
  std::vector<BlockExtent> out_blocks;
  std::vector<BlockExtent> in_blocks;
  /// Pack-time Bloom signatures, row-major like the directories; empty
  /// unless has_skip_filters (out-block (i,j) and in-block (i,j) cover the
  /// same edge set, so one signature serves both grids).
  std::vector<BlockSignature> block_signatures;
  /// FNV-1a checksums of the data files (see kStoreDataFiles); checked on
  /// demand by DualBlockStore::verify().
  std::uint64_t checksums[kStoreDataFiles] = {0, 0, 0, 0, 0};

  std::uint32_t p() const { return num_partitions; }

  /// Bytes of one adjacency record (the paper's M).
  std::uint32_t edge_record_bytes() const {
    return weighted ? sizeof(WeightedRecord) : sizeof(VertexId);
  }

  VertexId interval_begin(std::uint32_t i) const { return boundaries[i]; }
  VertexId interval_end(std::uint32_t i) const { return boundaries[i + 1]; }
  VertexId interval_size(std::uint32_t i) const {
    return boundaries[i + 1] - boundaries[i];
  }

  /// Interval containing vertex v.
  std::uint32_t interval_of(VertexId v) const;

  const BlockExtent& out_block(std::uint32_t i, std::uint32_t j) const {
    return out_blocks[static_cast<std::size_t>(i) * num_partitions + j];
  }
  const BlockExtent& in_block(std::uint32_t i, std::uint32_t j) const {
    return in_blocks[static_cast<std::size_t>(i) * num_partitions + j];
  }
  /// Signature of block pair (i,j); only valid when has_skip_filters.
  const BlockSignature& block_signature(std::uint32_t i,
                                        std::uint32_t j) const {
    return block_signatures[static_cast<std::size_t>(i) * num_partitions + j];
  }
};

/// How vertices are split into the P disjoint intervals.
enum class PartitionScheme {
  kEqualVertices,  ///< boundaries at k*|V|/P (the paper's assumption in §3.4)
  kEqualDegree,    ///< boundaries balance (out+in) degree mass per interval
};

/// How the builder stages edges while constructing the blocks.
enum class BuildMode {
  /// Bucket all edge ids in memory (fastest; needs O(|E|) extra memory).
  kInMemory,
  /// External-memory preprocessing: scatter edges into per-block temporary
  /// bucket files with small write buffers, then sort one block at a time.
  /// Working memory is O(P^2 · buffer + largest block), the standard
  /// out-of-core preprocessing discipline (GraphChi's sharder, GridGraph's
  /// grid partitioner).
  kExternal,
};

struct StoreOptions {
  std::uint32_t num_partitions = 8;
  PartitionScheme scheme = PartitionScheme::kEqualVertices;
  BuildMode build_mode = BuildMode::kInMemory;
  /// Codec for every adjacency block, both sides (~40-60 % smaller on
  /// power-law graphs with kDeltaVarint). Codec blocks are whole-block
  /// reads — ROP trades its per-vertex point loads for one block read that
  /// is memoized per worker and cached compressed. Unweighted stores only.
  BlockCodecKind codec = BlockCodecKind::kNone;
  /// Write per-block Bloom signatures into meta.bin (enables the engine's
  /// frontier-driven block skipping). On by default: 128 bytes per block
  /// pair in the unmeasured metadata file, no effect on data-file layout.
  bool skip_filters = true;
};

}  // namespace husg
