// Per-block Bloom signatures for active-block skipping.
//
// Each (i,j) block pair of the dual-block store gets one 1024-bit signature:
// a 512-bit Bloom over the block's source vertices and another over its
// destinations, built once at pack time (out-block (i,j) and in-block (i,j)
// cover the same edge set, so one signature serves both grids). At run time
// BlockSkipFilter Blooms the frontier per interval; a zero intersection with
// a block's source words proves no active vertex has edges in that block, so
// the engine skips it before any I/O is issued. False positives only cost a
// wasted read — never a missed edge.
//
// Lives apart from the codec and the store layout so layout.hpp can embed
// BlockSignature in StoreMeta without pulling in frontier/engine headers.
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace husg {

inline constexpr std::size_t kSignatureWords = 8;  // 512 bits per side

/// splitmix64: cheap, well-mixed 64-bit hash for Bloom probes.
inline std::uint64_t signature_hash(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Sets vertex v's probe bit in a 512-bit Bloom. One bit per vertex, not the
/// classic k bits: the membership test here is an INTERSECTION (does the
/// active Bloom share any bit with the signature?), which fires on any one
/// shared bit — extra probes per vertex only add collision surface, so k=1
/// minimizes the false-positive rate for this test.
inline void signature_add(std::uint64_t (&words)[kSignatureWords], VertexId v) {
  std::uint64_t h = signature_hash(v);
  std::uint32_t b = static_cast<std::uint32_t>(h) & 511u;
  words[b >> 6] |= 1ull << (b & 63u);
}

/// True when the two Blooms share any set bit. A zero intersection with an
/// interval's active Bloom is a proof of absence (skips are always safe);
/// a non-zero one may be a false positive.
inline bool signature_intersects(const std::uint64_t (&a)[kSignatureWords],
                                 const std::uint64_t (&b)[kSignatureWords]) {
  std::uint64_t acc = 0;
  for (std::size_t k = 0; k < kSignatureWords; ++k) acc |= a[k] & b[k];
  return acc != 0;
}

/// On-disk signature of one block pair, stored row-major in meta.bin for
/// stores built with StoreOptions::skip_filters.
struct BlockSignature {
  std::uint64_t src[kSignatureWords] = {};  ///< Bloom over source vertices
  std::uint64_t dst[kSignatureWords] = {};  ///< Bloom over destinations
};
static_assert(sizeof(BlockSignature) == 128);

}  // namespace husg
