#include "codec/skip_filter.hpp"

#include <cstring>

namespace husg {

BlockSkipFilter::BlockSkipFilter(const StoreMeta& meta)
    : meta_(&meta), active_(meta.p()) {}

void BlockSkipFilter::rebuild(const Frontier& frontier) {
  for (std::uint32_t k = 0; k < meta_->p(); ++k) {
    ActiveBloom& bloom = active_[k];
    std::memset(bloom.words, 0, sizeof(bloom.words));
    if (frontier.active_in(k) == 0) continue;
    frontier.for_each_active(
        meta_->interval_begin(k), meta_->interval_end(k),
        [&](VertexId v) { signature_add(bloom.words, v); });
  }
  ++rebuilds_;
}

bool BlockSkipFilter::may_have_active_source(std::uint32_t i,
                                             std::uint32_t j) const {
  if (!available()) return true;
  return signature_intersects(meta_->block_signature(i, j).src,
                              active_[i].words);
}

bool BlockSkipFilter::may_have_active_destination(std::uint32_t i,
                                                  std::uint32_t j) const {
  if (!available()) return true;
  return signature_intersects(meta_->block_signature(i, j).dst,
                              active_[j].words);
}

}  // namespace husg
