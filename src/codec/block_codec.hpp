// Pluggable block codec for the dual-block store (semi-external mode).
//
// A codec store packs every non-empty adjacency block — out-blocks and
// in-blocks alike — as a 32-byte CodecBlockHeader followed by a
// self-delimiting payload:
//
//   header   magic 'HBK1', codec id, raw/encoded byte sizes, FNV-1a checksum
//            of the encoded payload
//   payload  one varint group per non-empty CSR run:
//              tag        varint64, 2*len + (sorted ? 0 : 1)
//              first id   varint32
//              deltas     len-1 gaps — plain varint32 for sorted runs,
//                         zigzag varint64 otherwise
//
// The payload needs no external index to decode (the tag carries each run's
// length), so blocks travel and cache compressed: the block cache admits the
// encoded bytes — multiplying its effective capacity — and readers decode
// into per-thread scratch only when a block is actually applied. kNone keeps
// the fixed-width record format byte-identical to pre-codec stores.
//
// Codec blocks are unweighted only (weighted records interleave floats that
// delta-coding would garble); the builder rejects the combination.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/profiler.hpp"
#include "util/common.hpp"

namespace husg {

enum class BlockCodecKind : std::uint16_t {
  kNone = 0,         ///< fixed-width records, byte-identical to v4 stores
  kDeltaVarint = 1,  ///< delta-gap varint over CSR neighbor runs
};

const char* to_string(BlockCodecKind kind);

/// Parses "none" / "delta-varint" into `out`; returns false on anything else
/// (the CLI maps that to its invalid-option exit code).
bool parse_block_codec(const std::string& name, BlockCodecKind* out);

inline constexpr std::uint32_t kCodecBlockMagic = 0x314B4248;  // "HBK1"

/// Per-block on-disk header preceding every non-empty encoded block.
/// Empty blocks occupy zero bytes (no header), exactly like the raw format.
struct CodecBlockHeader {
  std::uint32_t magic = kCodecBlockMagic;
  std::uint16_t codec = 0;     ///< BlockCodecKind
  std::uint16_t reserved = 0;
  std::uint64_t raw_bytes = 0;      ///< decoded size: edge_count * 4
  std::uint64_t encoded_bytes = 0;  ///< payload size following this header
  std::uint64_t checksum = 0;       ///< FNV-1a over the encoded payload
};
static_assert(sizeof(CodecBlockHeader) == 32);

/// Encodes `count` neighbor ids split into `runs` CSR runs (run_offsets has
/// runs+1 entries, run_offsets[runs] == count) as header + payload, replacing
/// the contents of `out`. count == 0 leaves `out` empty.
void encode_block(const VertexId* ids, std::size_t count,
                  const std::uint32_t* run_offsets, std::size_t runs,
                  std::vector<char>& out);

/// Decodes a block written by encode_block into `out`, returning the id
/// count. Validates magic, codec id, sizes, and the payload checksum; throws
/// DataError on any mismatch or truncation. Empty input decodes to zero ids.
std::size_t decode_block(const char* data, std::size_t size,
                         std::vector<VertexId>& out);

/// Measures decode throughput (raw bytes produced per second) of `kind` on a
/// synthetic power-law-ish block. Backend-profiled input for the predictor's
/// T_decode term; returns 0 for kNone (nothing to decode).
double profile_decode_throughput(BlockCodecKind kind);

/// Thread-safe freelist of byte buffers: codec read paths stage encoded
/// block bytes in a pooled buffer instead of allocating per read. Lease
/// returns the buffer on destruction.
class ScratchPool {
 public:
  class Lease {
   public:
    Lease(ScratchPool* pool, std::vector<char> buf)
        : pool_(pool), buf_(std::move(buf)) {}
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), buf_(std::move(other.buf_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (pool_ != nullptr) pool_->release(std::move(buf_));
    }
    std::vector<char>& operator*() { return buf_; }
    std::vector<char>* operator->() { return &buf_; }

   private:
    ScratchPool* pool_;
    std::vector<char> buf_;
  };

  ScratchPool() : mu_("scratch_pool") {}

  Lease acquire() {
    std::lock_guard<obs::ProfiledMutex> lock(mu_);
    if (free_.empty()) return Lease(this, {});
    std::vector<char> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    return Lease(this, std::move(buf));
  }

 private:
  void release(std::vector<char> buf) {
    std::lock_guard<obs::ProfiledMutex> lock(mu_);
    free_.push_back(std::move(buf));
  }

  obs::ProfiledMutex mu_;  ///< contention-profiled (DESIGN.md §15)
  std::vector<std::vector<char>> free_;
};

/// Codec-layer activity of one run: decode work (the predictor's T_decode is
/// calibrated against exactly these bytes) and what the skip filters saved.
/// Published as husg_codec_* / husg_skip_* by RunStats::publish.
struct CodecStats {
  std::uint64_t blocks_decoded = 0;
  std::uint64_t encoded_bytes = 0;  ///< compressed bytes fed to the decoder
  std::uint64_t decoded_bytes = 0;  ///< raw id bytes the decoder produced
  /// Measured decode CPU wall (only populated while obs attribution is
  /// armed — the default engine path never pays the clock reads). The
  /// DecodeAudit compares this against the predictor's T_decode term.
  std::uint64_t decode_ns = 0;
  std::uint64_t skip_filter_rebuilds = 0;
  std::uint64_t blocks_skipped = 0;
  std::uint64_t skipped_bytes = 0;  ///< on-disk bytes the skips avoided

  bool any() const {
    return blocks_decoded != 0 || skip_filter_rebuilds != 0 ||
           blocks_skipped != 0;
  }

  CodecStats& operator+=(const CodecStats& o) {
    blocks_decoded += o.blocks_decoded;
    encoded_bytes += o.encoded_bytes;
    decoded_bytes += o.decoded_bytes;
    decode_ns += o.decode_ns;
    skip_filter_rebuilds += o.skip_filter_rebuilds;
    blocks_skipped += o.blocks_skipped;
    skipped_bytes += o.skipped_bytes;
    return *this;
  }

  CodecStats operator-(const CodecStats& o) const {
    CodecStats d;
    d.blocks_decoded = blocks_decoded - o.blocks_decoded;
    d.encoded_bytes = encoded_bytes - o.encoded_bytes;
    d.decoded_bytes = decoded_bytes - o.decoded_bytes;
    d.decode_ns = decode_ns - o.decode_ns;
    d.skip_filter_rebuilds = skip_filter_rebuilds - o.skip_filter_rebuilds;
    d.blocks_skipped = blocks_skipped - o.blocks_skipped;
    d.skipped_bytes = skipped_bytes - o.skipped_bytes;
    return d;
  }
};

}  // namespace husg
