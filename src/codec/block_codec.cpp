#include "codec/block_codec.hpp"

#include <algorithm>
#include <cstring>

#include "util/checksum.hpp"
#include "util/timer.hpp"
#include "util/varint.hpp"

namespace husg {

const char* to_string(BlockCodecKind kind) {
  switch (kind) {
    case BlockCodecKind::kNone:
      return "none";
    case BlockCodecKind::kDeltaVarint:
      return "delta-varint";
  }
  return "?";
}

bool parse_block_codec(const std::string& name, BlockCodecKind* out) {
  if (name == "none") {
    *out = BlockCodecKind::kNone;
    return true;
  }
  if (name == "delta-varint") {
    *out = BlockCodecKind::kDeltaVarint;
    return true;
  }
  return false;
}

void encode_block(const VertexId* ids, std::size_t count,
                  const std::uint32_t* run_offsets, std::size_t runs,
                  std::vector<char>& out) {
  out.clear();
  if (count == 0) return;
  HUSG_CHECK(run_offsets[runs] == count,
             "encode_block: run offsets do not cover the id array");
  out.resize(sizeof(CodecBlockHeader));  // patched after the payload is known
  for (std::size_t r = 0; r < runs; ++r) {
    std::uint32_t lo = run_offsets[r], hi = run_offsets[r + 1];
    if (lo == hi) continue;
    std::size_t len = hi - lo;
    bool sorted = true;
    for (std::size_t k = lo + 1; k < hi; ++k) {
      if (ids[k] < ids[k - 1]) {
        sorted = false;
        break;
      }
    }
    varint64_encode(2 * static_cast<std::uint64_t>(len) + (sorted ? 0 : 1),
                    out);
    varint_encode(ids[lo], out);
    for (std::size_t k = lo + 1; k < hi; ++k) {
      if (sorted) {
        varint_encode(ids[k] - ids[k - 1], out);
      } else {
        varint64_encode(zigzag_encode(static_cast<std::int64_t>(ids[k]) -
                                      static_cast<std::int64_t>(ids[k - 1])),
                        out);
      }
    }
  }
  CodecBlockHeader hdr;
  hdr.codec = static_cast<std::uint16_t>(BlockCodecKind::kDeltaVarint);
  hdr.raw_bytes = count * sizeof(VertexId);
  hdr.encoded_bytes = out.size() - sizeof(hdr);
  hdr.checksum = fnv1a(out.data() + sizeof(hdr), hdr.encoded_bytes);
  std::memcpy(out.data(), &hdr, sizeof(hdr));
}

std::size_t decode_block(const char* data, std::size_t size,
                         std::vector<VertexId>& out) {
  out.clear();
  if (size == 0) return 0;
  HUSG_CHECK(size >= sizeof(CodecBlockHeader),
             "codec block truncated: " << size << " bytes, need at least "
                                       << sizeof(CodecBlockHeader));
  CodecBlockHeader hdr;
  std::memcpy(&hdr, data, sizeof(hdr));
  HUSG_CHECK(hdr.magic == kCodecBlockMagic, "bad codec block magic");
  HUSG_CHECK(hdr.codec ==
                 static_cast<std::uint16_t>(BlockCodecKind::kDeltaVarint),
             "unknown block codec id " << hdr.codec);
  HUSG_CHECK(hdr.raw_bytes % sizeof(VertexId) == 0,
             "codec block raw size not a whole id count");
  HUSG_CHECK(size == sizeof(hdr) + hdr.encoded_bytes,
             "codec block size mismatch: " << size << " vs "
                                           << sizeof(hdr) + hdr.encoded_bytes);
  const char* payload = data + sizeof(hdr);
  HUSG_CHECK(fnv1a(payload, hdr.encoded_bytes) == hdr.checksum,
             "codec block payload checksum mismatch");
  const std::size_t n = hdr.raw_bytes / sizeof(VertexId);
  out.resize(n);
  std::size_t pos = 0, at = 0;
  while (at < n) {
    std::uint64_t tag = varint64_decode(payload, hdr.encoded_bytes, pos);
    std::size_t len = static_cast<std::size_t>(tag >> 1);
    HUSG_CHECK(len > 0 && at + len <= n,
               "codec block run overflows the declared id count");
    out[at] = varint_decode(payload, hdr.encoded_bytes, pos);
    if ((tag & 1) == 0) {
      for (std::size_t k = 1; k < len; ++k) {
        out[at + k] =
            out[at + k - 1] + varint_decode(payload, hdr.encoded_bytes, pos);
      }
    } else {
      for (std::size_t k = 1; k < len; ++k) {
        std::int64_t delta =
            zigzag_decode(varint64_decode(payload, hdr.encoded_bytes, pos));
        out[at + k] = static_cast<VertexId>(
            static_cast<std::int64_t>(out[at + k - 1]) + delta);
      }
    }
    at += len;
  }
  HUSG_CHECK(pos == hdr.encoded_bytes, "codec block has trailing bytes");
  return n;
}

double profile_decode_throughput(BlockCodecKind kind) {
  if (kind == BlockCodecKind::kNone) return 0;
  // Synthetic block: 64Ki ids in runs of 16 with small sorted gaps — the
  // shape a power-law CSR block decodes as. Deterministic input; only the
  // measured wall time varies across hosts, which is the point.
  constexpr std::size_t kIds = 64 * 1024, kRun = 16;
  std::vector<VertexId> ids(kIds);
  std::vector<std::uint32_t> offsets;
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  for (std::size_t r = 0; r * kRun < kIds; ++r) {
    offsets.push_back(static_cast<std::uint32_t>(r * kRun));
    VertexId v = static_cast<VertexId>(state % 1024);
    for (std::size_t k = 0; k < kRun; ++k) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      v += static_cast<VertexId>(state % 7 + 1);
      ids[r * kRun + k] = v;
    }
  }
  offsets.push_back(static_cast<std::uint32_t>(kIds));
  std::vector<char> encoded;
  encode_block(ids.data(), kIds, offsets.data(), offsets.size() - 1, encoded);
  std::vector<VertexId> decoded;
  const double raw_bytes = static_cast<double>(kIds * sizeof(VertexId));
  Timer timer;
  std::size_t reps = 0;
  do {
    decode_block(encoded.data(), encoded.size(), decoded);
    ++reps;
  } while (timer.seconds() < 0.005);
  return raw_bytes * static_cast<double>(reps) /
         std::max(timer.seconds(), 1e-9);
}

}  // namespace husg
