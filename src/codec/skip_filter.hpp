// BlockSkipFilter: frontier-side half of the block-skipping scheme (the
// store-side half is the pack-time BlockSignature in meta.bin).
//
// rebuild() Blooms the active vertices of every interval — O(|A|) hashing,
// done once per iteration before the ROP/COP decision — and the per-block
// tests are then eight AND-OR words each: ROP consults them before loading a
// block's out-index, COP while assembling its column's block list. An
// interval with no active vertices yields an all-zero Bloom, so every one of
// its blocks tests negative deterministically (no false-positive caveat on
// the empty case).
#pragma once

#include <cstdint>
#include <vector>

#include "codec/block_signature.hpp"
#include "core/frontier.hpp"
#include "storage/layout.hpp"

namespace husg {

class BlockSkipFilter {
 public:
  /// Borrows `meta`; the store must outlive the filter.
  explicit BlockSkipFilter(const StoreMeta& meta);

  /// True when the store carries block signatures (built with
  /// StoreOptions::skip_filters); without them every may_* test passes.
  bool available() const { return meta_->has_skip_filters; }

  /// Re-Blooms the frontier per interval. Call at the top of each iteration,
  /// before the first may_* test.
  void rebuild(const Frontier& frontier);

  /// May block (i,j) — sources in interval i, destinations in interval j —
  /// contain an edge from a currently-active source? false is a proof (skip
  /// is safe); true may be a Bloom false positive.
  bool may_have_active_source(std::uint32_t i, std::uint32_t j) const;

  /// Same test against the destination side of the signature.
  bool may_have_active_destination(std::uint32_t i, std::uint32_t j) const;

  std::uint64_t rebuilds() const { return rebuilds_; }

 private:
  struct ActiveBloom {
    std::uint64_t words[kSignatureWords] = {};
  };

  const StoreMeta* meta_;
  std::vector<ActiveBloom> active_;  ///< one Bloom per interval
  std::uint64_t rebuilds_ = 0;
};

}  // namespace husg
