// Umbrella header: the public HUS-Graph API.
//
//   #include <husg/husg.hpp>
//
//   auto graph = husg::gen::rmat(18, 16.0, /*seed=*/1);
//   auto store = husg::DualBlockStore::build(graph, "/tmp/mygraph");
//   husg::Engine engine(store, husg::EngineOptions{});
//   husg::BfsProgram bfs{.source = 0};
//   auto r = engine.run(bfs, husg::Frontier::single(store.meta(), 0,
//                                                   store.out_degrees()));
//
// See README.md for a tour and DESIGN.md for the architecture.
#pragma once

#include "algos/bfs.hpp"
#include "algos/eccentricity.hpp"
#include "algos/kcore.hpp"
#include "algos/multi_bfs.hpp"
#include "algos/pagerank.hpp"
#include "algos/pagerank_delta.hpp"
#include "algos/spmv.hpp"
#include "algos/sssp.hpp"
#include "algos/wcc.hpp"
#include "cache/block_cache.hpp"
#include "cache/cache_stats.hpp"
#include "cache/cached_reader.hpp"
#include "codec/block_codec.hpp"
#include "codec/skip_filter.hpp"
#include "core/cancellation.hpp"
#include "core/engine.hpp"
#include "core/frontier.hpp"
#include "core/predictor.hpp"
#include "core/program.hpp"
#include "core/run_stats.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/reference.hpp"
#include "io/device.hpp"
#include "io/io_stats.hpp"
#include "obs/audit.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heatmap.hpp"
#include "obs/http_server.hpp"
#include "obs/iotrace.hpp"
#include "obs/iotrace_replay.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "service/graph_service.hpp"
#include "service/job.hpp"
#include "service/jobs_json.hpp"
#include "service/scheduler.hpp"
#include "storage/store.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
