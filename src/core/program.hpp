// Vertex-program interface. One program definition drives every engine in
// the repository (HUS ROP/COP/Hybrid and the three baseline systems), so the
// cross-system benchmarks compare I/O architectures, not algorithm variants.
//
// Two program families:
//
// * Monotone/push (kAccumulating == false): the edge relation is applied by
//   `update(ctx, src_value, s, dst_value, d, w)`, mutating the destination in
//   place and returning true if it changed (which activates `d`). BFS, WCC,
//   SSSP (idempotent, min-combining) and PageRank-Delta (additive) live here.
//
// * Accumulating/pull (kAccumulating == true): each iteration recomputes
//   every destination from scratch: `acc = gather_zero()`, folds
//   `gather(ctx, acc, src_value, s, w)` over in-edges, then
//   `apply(ctx, v, prev, acc) -> (new_value, active_next)`. Standard
//   PageRank lives here (dense: every vertex active every iteration).
//
// kIdempotent marks updates that may safely be applied more than once per
// iteration (min-combining). Only idempotent programs may use the
// paper-literal per-interval hybrid decision granularity, because mixed
// ROP/COP decisions can cover an edge block from both sides (see
// engine.hpp).
#pragma once

#include <concepts>
#include <span>

#include "util/common.hpp"

namespace husg {

/// Read-only graph context available to program callbacks.
struct ProgramContext {
  std::span<const VertexId> out_degrees;
  std::span<const VertexId> in_degrees;
  /// Zero-based index of the iteration currently executing (engines update
  /// it before each sweep; programs like EccentricityProgram use it to
  /// record arrival distances).
  int iteration = 0;
};

// clang-format off
template <class P>
concept MonotoneProgram = requires(const P p, const ProgramContext ctx,
                                   typename P::Value v, VertexId id, Weight w) {
  typename P::Value;
  { P::kAccumulating } -> std::convertible_to<bool>;
  { P::kIdempotent } -> std::convertible_to<bool>;
  { p.initial(ctx, id) } -> std::same_as<typename P::Value>;
  { p.update(ctx, v, id, v, id, w) } -> std::same_as<bool>;
} && !P::kAccumulating;

template <class P>
concept AccumulatingProgram = requires(const P p, const ProgramContext ctx,
                                       typename P::Value v, VertexId id,
                                       Weight w) {
  typename P::Value;
  { P::kAccumulating } -> std::convertible_to<bool>;
  { p.initial(ctx, id) } -> std::same_as<typename P::Value>;
  { p.gather_zero(ctx, id) } -> std::same_as<typename P::Value>;
  { p.gather(ctx, v, v, id, w) } -> std::same_as<void>;
  { p.apply(ctx, id, v, v) } -> std::same_as<bool>;
} && P::kAccumulating;

template <class P>
concept VertexProgram = MonotoneProgram<P> || AccumulatingProgram<P>;
// clang-format on

namespace detail {

/// Invokes prog.on_processed(ctx, v, value, prev) if the program defines it
/// (e.g. PageRank-Delta consumes the residual of processed vertices).
template <class P, class V>
void maybe_on_processed(const P& prog, const ProgramContext& ctx, VertexId v,
                        V& value, const V& prev) {
  if constexpr (requires { prog.on_processed(ctx, v, value, prev); }) {
    prog.on_processed(ctx, v, value, prev);
  }
}

}  // namespace detail

}  // namespace husg
