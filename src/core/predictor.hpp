// I/O-based performance prediction (paper §3.4).
//
// Per vertex interval i the engine predicts the edge-loading cost of each
// update model and picks the cheaper one:
//
//   C_rop = (Σ_{v∈A_i} d_v · M) / T_random + ((2|V|/P + |V|) · N) / T_sequential
//   C_cop = ((|E|/P) · M + (2|V|/P + |V|) · N) / T_sequential
//
// Shortcut: when |A_i| exceeds α·|V| (α defaults to the paper's 5 %), COP is
// selected without evaluating the formulas.
//
// Two flavors:
//  * kPaper        — the formulas verbatim, with T_random / T_sequential as
//                    fixed measured constants (the paper measures them with
//                    fio; we derive them from the DeviceProfile at a 4 KiB
//                    random request size).
//  * kDeviceExact  — the same decision but costed against the device model
//                    directly: per-point-load seek latency plus transfer, and
//                    the actual (not average) column size for COP. This is the
//                    "more accurate and fine-grained" predictor the paper's
//                    §4.3 closes by calling for; the ablation bench compares
//                    both against the oracle.
//  * kCacheAware   — kDeviceExact extended for the block cache: bytes
//                    resident in the cache cost zero I/O, so C_rop / C_cop
//                    are computed over the *uncached residual* of each
//                    interval. As the cache warms, both costs shrink and the
//                    ROP/COP crossover shifts (a fully-cached column makes
//                    COP nearly free regardless of frontier density).
#pragma once

#include <cstdint>

#include "io/device.hpp"

namespace husg {

enum class PredictorFlavor { kPaper, kDeviceExact, kCacheAware };

struct PredictionInputs {
  std::uint64_t active_vertices = 0;    ///< |A_i|
  std::uint64_t active_degree_sum = 0;  ///< Σ_{v∈A_i} d_v
  std::uint64_t num_vertices = 0;       ///< |V|
  std::uint64_t num_edges = 0;          ///< |E|
  std::uint32_t p = 1;                  ///< number of intervals
  std::uint32_t edge_bytes = 4;         ///< M
  std::uint32_t value_bytes = 4;        ///< N
  /// Exact bytes of the in-blocks of this interval's column (kDeviceExact).
  std::uint64_t column_edge_bytes = 0;
  /// kCacheAware only: exact bytes of the out-blocks of this interval's row,
  /// and how many of the row/column bytes are resident in the block cache
  /// (zero I/O cost). Left zero by cache-less engines.
  std::uint64_t row_edge_bytes = 0;
  std::uint64_t cached_row_edge_bytes = 0;
  std::uint64_t cached_column_edge_bytes = 0;
  /// Codec stores: ROP point loads become whole-block reads (one positioning
  /// + one transfer per non-skipped block of the row), so cost by block
  /// loads, not per-vertex ops. row_edge_bytes then carries the encoded
  /// bytes of the non-skipped blocks.
  bool whole_block_rop = false;
  std::uint64_t row_block_loads = 0;  ///< non-skipped blocks in the row
  /// Decoded (raw CSR) bytes behind the row/column byte estimates; the
  /// T_decode CPU term charges raw/decode_bytes_per_sec on top of the I/O
  /// cost. Zero for kNone stores (no decode cost).
  std::uint64_t row_raw_bytes = 0;
  std::uint64_t column_raw_bytes = 0;
  double decode_bytes_per_sec = 0;
};

struct Prediction {
  double c_rop = 0;
  double c_cop = 0;
  bool choose_rop = false;
  bool alpha_shortcut = false;  ///< true if α cut selection short
};

class IoCostPredictor {
 public:
  IoCostPredictor(const DeviceProfile& device, PredictorFlavor flavor,
                  double alpha)
      : device_(device), flavor_(flavor), alpha_(alpha) {}

  /// use_alpha=false disables the α shortcut (the engine's global decision
  /// granularity applies α to the whole-graph active fraction instead).
  Prediction predict(const PredictionInputs& in, bool use_alpha = true) const;

  double alpha() const { return alpha_; }
  PredictorFlavor flavor() const { return flavor_; }

 private:
  DeviceProfile device_;
  PredictorFlavor flavor_;
  double alpha_;
};

}  // namespace husg
