#include "core/engine.hpp"

#include <atomic>
#include <optional>
#include <unistd.h>

#include "obs/calibrate.hpp"
#include "obs/iotrace.hpp"

namespace husg {

Engine::Engine(const DualBlockStore& store, EngineOptions options)
    : store_(&store),
      opts_(std::move(options)),
      pool_(opts_.threads),
      // §3.4 decisions are priced against the I/O path actually in use:
      // sync leaves the profile untouched, uring divides the per-op
      // positioning cost across the device's queue lanes.
      predictor_(opts_.device.for_backend(store.io_backend().kind(),
                                          store.io_backend().queue_depth()),
                 opts_.predictor, opts_.alpha),
      cache_(opts_.shared_cache == nullptr && opts_.cache_budget_bytes > 0
                 ? std::make_unique<BlockCache>(BlockCache::Options{
                       opts_.cache_budget_bytes,
                       opts_.cache_max_block_fraction})
                 : nullptr),
      reader_(store,
              opts_.shared_cache != nullptr ? opts_.shared_cache : cache_.get(),
              opts_.cache_fill_rop, opts_.cache_owner) {
  reader_.set_shadow(opts_.shadow_mrc);
  HUSG_CHECK(opts_.max_iterations > 0, "max_iterations must be positive");
  HUSG_CHECK(opts_.alpha >= 0 && opts_.alpha <= 1,
             "alpha must be in [0,1], got " << opts_.alpha);
  HUSG_CHECK(opts_.cache_max_block_fraction > 0 &&
                 opts_.cache_max_block_fraction <= 1,
             "cache_max_block_fraction must be in (0,1], got "
                 << opts_.cache_max_block_fraction);
  if (opts_.skip_filter) {
    HUSG_CHECK(store.meta().has_skip_filters,
               "skip_filter requires a store built with block signatures "
               "(StoreOptions::skip_filters)");
    skip_ = std::make_unique<BlockSkipFilter>(store.meta());
  }
  if (store.meta().codec != BlockCodecKind::kNone) {
    decode_bps_ = opts_.decode_bytes_per_sec > 0
                      ? opts_.decode_bytes_per_sec
                      : profile_decode_throughput(store.meta().codec);
  }
}

CodecStats Engine::codec_stats() const {
  CodecStats s = reader_.codec_stats();
  s.blocks_skipped = blocks_skipped_.load(std::memory_order_relaxed);
  s.skipped_bytes = skipped_bytes_.load(std::memory_order_relaxed);
  if (skip_) s.skip_filter_rebuilds = skip_->rebuilds();
  return s;
}

CacheStats Engine::cache_stats() const {
  if (cache_) return cache_->stats();
  // A shared cache's global counters mix every job's traffic; report this
  // engine's own share instead (eviction/residency gauges stay zero).
  if (opts_.shared_cache != nullptr) return reader_.local_stats();
  return CacheStats{};
}

std::uint64_t Engine::column_bytes(std::uint32_t i) const {
  // Skip-aware: blocks the filter proves inactive this iteration are never
  // streamed, so they cost nothing in either model's byte estimate.
  const StoreMeta& meta = store_->meta();
  std::uint64_t bytes = 0;
  for (std::uint32_t j = 0; j < meta.p(); ++j) {
    if (skip_ && !skip_->may_have_active_source(j, i)) continue;
    bytes += meta.in_block(j, i).adj_bytes;
  }
  return bytes;
}

std::uint64_t Engine::row_bytes(std::uint32_t i) const {
  const StoreMeta& meta = store_->meta();
  std::uint64_t bytes = 0;
  for (std::uint32_t j = 0; j < meta.p(); ++j) {
    if (skip_ && !skip_->may_have_active_source(i, j)) continue;
    bytes += meta.out_block(i, j).adj_bytes;
  }
  return bytes;
}

std::vector<DecisionRecord> Engine::decide(const Frontier& frontier,
                                           std::uint32_t value_bytes,
                                           std::uint32_t iter) const {
  const StoreMeta& meta = store_->meta();
  const std::uint32_t p = meta.p();
  std::vector<DecisionRecord> out(p);
  for (std::uint32_t i = 0; i < p; ++i) out[i].interval = i;

  if (opts_.mode != UpdateMode::kHybrid) {
    bool rop = opts_.mode == UpdateMode::kRop;
    for (auto& d : out) d.used_rop = rop;
    return out;
  }

  const bool tracing = obs::iotrace_enabled();
  const bool codec = meta.codec != BlockCodecKind::kNone;

  // --calibrate apply: once the calibrator is warm, price this iteration's
  // decisions against the measured profile instead of the preset. Rebuilt
  // per call (it's two divides per parameter) so the decision tracks the
  // EWMAs as they converge during the run.
  const IoCostPredictor* predictor = &predictor_;
  std::optional<IoCostPredictor> recalibrated;
  if (opts_.calibrate == obs::CalibrationMode::kApply) {
    const obs::DeviceCalibrator& cal = obs::DeviceCalibrator::instance();
    if (cal.warm()) {
      recalibrated.emplace(
          cal.calibrated(opts_.device)
              .for_backend(store_->io_backend().kind(),
                           store_->io_backend().queue_depth()),
          opts_.predictor, opts_.alpha);
      predictor = &*recalibrated;
    }
  }

  for (std::uint32_t i = 0; i < p; ++i) {
    HUSG_SPAN("engine", "predict", "interval", static_cast<std::int64_t>(i));
    PredictionInputs in;
    in.active_vertices = frontier.active_in(i);
    in.active_degree_sum = frontier.active_degree_in(i);
    in.num_vertices = meta.num_vertices;
    in.num_edges = meta.num_edges;
    in.p = p;
    in.edge_bytes = meta.edge_record_bytes();
    in.value_bytes = value_bytes;  // N
    in.column_edge_bytes = column_bytes(i);
    if (opts_.predictor == PredictorFlavor::kCacheAware || tracing || codec) {
      // §3.4, cache-aware: resident bytes cost zero I/O, so both models are
      // costed over the uncached residual of the interval. As the cache
      // warms, the residual shrinks and the ROP/COP crossover moves.
      // (Filled under tracing for every flavor — only kCacheAware reads
      // them, and the trace wants the inputs any what-if flavor needs.)
      in.row_edge_bytes = row_bytes(i);
      in.cached_row_edge_bytes = reader_.cached_row_bytes(i);
      in.cached_column_edge_bytes = reader_.cached_column_bytes(i);
    }
    if (codec) {
      // Codec ROP reads whole blocks (decoded once, memoized); cost by
      // surviving block count and charge T_decode for the raw CSR volume
      // behind each model's reads. Skipped blocks contribute to neither.
      in.whole_block_rop = true;
      in.decode_bytes_per_sec = decode_bps_;
      for (std::uint32_t j = 0; j < p; ++j) {
        const BlockExtent& ob = meta.out_block(i, j);
        if (in.active_vertices > 0 && ob.edge_count > 0 &&
            !(skip_ && !skip_->may_have_active_source(i, j))) {
          ++in.row_block_loads;
          in.row_raw_bytes += ob.edge_count * sizeof(VertexId);
        }
        const BlockExtent& ib = meta.in_block(j, i);
        if (ib.edge_count > 0 &&
            !(skip_ && !skip_->may_have_active_source(j, i))) {
          in.column_raw_bytes += ib.edge_count * sizeof(VertexId);
        }
      }
    }
    // With global granularity the α shortcut is applied to the whole-graph
    // active fraction below, not interval by interval.
    bool per_interval_alpha =
        opts_.granularity == DecisionGranularity::kPerInterval;
    out[i].prediction = predictor->predict(in, per_interval_alpha);
    out[i].used_rop = out[i].prediction.choose_rop;
    // Kept on the record so audits can re-price the decision under a
    // different profile after the run (obs/audit.hpp from_run_wall), and so
    // the trace below can emit the final (post-global-pass) decision.
    out[i].inputs = in;
  }

  if (opts_.granularity == DecisionGranularity::kGlobal) {
    // One decision per iteration: compare the summed predicted costs, with
    // the α shortcut applied to the global active fraction.
    bool shortcut =
        predictor->alpha() > 0 &&
        static_cast<double>(frontier.active_vertices()) >
            predictor->alpha() * static_cast<double>(meta.num_vertices);
    double c_rop = 0, c_cop = 0;
    for (const auto& d : out) {
      c_rop += d.prediction.c_rop;
      c_cop += d.prediction.c_cop;
    }
    bool rop = !shortcut && c_rop <= c_cop;
    for (auto& d : out) d.used_rop = rop;
  }

  if (tracing) [[unlikely]] {
    for (std::uint32_t i = 0; i < p; ++i) {
      obs::DecisionEvent e;
      e.iteration = iter;
      e.interval = i;
      e.active_vertices = out[i].inputs.active_vertices;
      e.active_degree_sum = out[i].inputs.active_degree_sum;
      e.value_bytes = value_bytes;
      e.column_edge_bytes = out[i].inputs.column_edge_bytes;
      e.row_edge_bytes = out[i].inputs.row_edge_bytes;
      e.cached_row_edge_bytes = out[i].inputs.cached_row_edge_bytes;
      e.cached_column_edge_bytes = out[i].inputs.cached_column_edge_bytes;
      e.c_rop = out[i].prediction.c_rop;
      e.c_cop = out[i].prediction.c_cop;
      e.used_rop = out[i].used_rop;
      e.alpha_shortcut = out[i].prediction.alpha_shortcut;
      obs::IoTrace::instance().record_decision(e);
    }
  }
  return out;
}

void Engine::note_iteration(const IterationStats& istats,
                            std::uint64_t edges_total,
                            std::uint64_t io_total) const {
  // Predictor health: a decision "missed" when the chosen side's predicted
  // cost is off the observed interval wall by more than 2x either way. The
  // alpha shortcut skips the formula entirely, so it never counts, and
  // sub-millisecond intervals are noise, not evidence.
  if (opts_.heartbeat != nullptr) {
    for (const DecisionRecord& dec : istats.decisions) {
      if (!dec.observed || dec.prediction.alpha_shortcut) continue;
      const double predicted =
          dec.used_rop ? dec.prediction.c_rop : dec.prediction.c_cop;
      const double observed = dec.observed_wall_seconds;
      if (predicted <= 0 || observed < 1e-3) continue;
      const double ratio = predicted / observed;
      opts_.heartbeat->note_prediction(ratio > 2.0 || ratio < 0.5);
    }
  }
  if (!obs::flight_enabled()) return;
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  obs::FlightEvent progress;
  progress.type = obs::FlightEventType::kProgress;
  progress.job = opts_.cache_owner;
  progress.a = static_cast<std::uint32_t>(istats.iteration);
  progress.v1 = istats.active_vertices;
  progress.v2 = edges_total;
  progress.v3 = io_total;
  recorder.record(progress);
  for (const DecisionRecord& dec : istats.decisions) {
    if (!dec.observed) continue;
    obs::FlightEvent e;
    e.type = obs::FlightEventType::kDecision;
    e.flag = dec.used_rop ? 1 : 0;
    e.job = opts_.cache_owner;
    e.a = static_cast<std::uint32_t>(istats.iteration);
    e.v1 = dec.interval;
    const double predicted =
        dec.used_rop ? dec.prediction.c_rop : dec.prediction.c_cop;
    e.v2 = static_cast<std::uint64_t>(predicted * 1e6);
    e.v3 = static_cast<std::uint64_t>(dec.observed_wall_seconds * 1e6);
    recorder.record(e);
  }
}

std::filesystem::path Engine::scratch_file() const {
  static std::atomic<std::uint64_t> counter{0};
  std::filesystem::path dir =
      opts_.scratch_dir.empty() ? store_->dir() : opts_.scratch_dir;
  ensure_directory(dir);
  return dir / ("values_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter.fetch_add(1)) + ".tmp");
}

}  // namespace husg
