// The HUS-Graph engine: hybrid ROP/COP execution over the dual-block store
// (paper §3.3–3.5).
//
// Correctness note on decision granularity
// ----------------------------------------
// Algorithm 1 of the paper selects ROP or COP *per vertex interval*. Taken
// literally this loses edges: if interval `a` selects COP (pulling its
// column, i.e. its in-edges) while interval `b` selects ROP (pushing its
// row), then edge block (a,b) is neither pushed as part of row `a` nor
// pulled as part of column `b`, so a's active out-edges toward b are silently
// dropped that iteration. This engine therefore supports:
//
//  * DecisionGranularity::kGlobal (default) — one ROP-or-COP decision per
//    iteration, comparing the summed per-interval cost predictions. Correct
//    for every program, and what the paper's per-iteration plots (Fig. 8)
//    describe.
//  * DecisionGranularity::kPerInterval — the paper-literal rule plus a
//    coverage repair: every interval `b` that chose ROP additionally pulls
//    the in-blocks (a,b) of each COP-choosing interval `a` with active
//    vertices. Repair can apply an edge from both sides in one iteration, so
//    this mode requires an idempotent program (BFS/WCC/SSSP).
//
// Synchronization
// ---------------
//  * SyncMode::kJacobi (default) — sources read the previous iteration's
//    values; results match the in-memory reference oracles exactly.
//  * SyncMode::kPaperAsync — the pseudocode's behaviour: vertex values are
//    synchronized after every row/column, so later intervals observe newer
//    values within an iteration (Gauss-Seidel flavour; same fixed point for
//    monotone programs, usually fewer iterations).
#pragma once

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <functional>
#include <future>
#include <vector>

#include "cache/block_cache.hpp"
#include "cache/cached_reader.hpp"
#include "codec/skip_filter.hpp"
#include "core/cancellation.hpp"
#include "core/frontier.hpp"
#include "core/predictor.hpp"
#include "core/program.hpp"
#include "core/run_stats.hpp"
#include "core/value_store.hpp"
#include "io/device.hpp"
#include "obs/calibrate.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace.hpp"
#include "storage/store.hpp"
#include "util/logging.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace husg {

enum class SyncMode { kJacobi, kPaperAsync };
enum class DecisionGranularity { kGlobal, kPerInterval };

struct EngineOptions {
  UpdateMode mode = UpdateMode::kHybrid;
  SyncMode sync = SyncMode::kJacobi;
  DecisionGranularity granularity = DecisionGranularity::kGlobal;
  /// kDeviceExact by default: in the dual-block layout an active vertex
  /// costs up to P point loads, so a fixed-request-size T_random constant
  /// (the paper's formula) underestimates ROP heavily away from the paper's
  /// testbed; the ablation bench quantifies the difference.
  PredictorFlavor predictor = PredictorFlavor::kDeviceExact;
  std::size_t threads = 4;
  DeviceProfile device = DeviceProfile::sata_ssd();
  /// §3.4's α: above this active-vertex fraction COP is chosen outright.
  double alpha = 0.05;
  /// Mirror vertex values to a scratch file and perform the Load/Store steps
  /// of Algorithms 2/3 as real I/O (default). Disable for in-memory runs.
  bool file_backed_values = true;
  /// Merge point loads of consecutive active vertices into one request
  /// (extension; off to match the paper's per-vertex loads).
  bool coalesce_rop_loads = false;
  /// Skip streaming in-blocks whose source interval has no active vertices
  /// during COP (extension; off = paper's "stream all edges" behaviour).
  bool cop_skip_inactive_blocks = false;
  /// §3.5: overlap CPU and disk I/O by prefetching the next in-block while
  /// the current one is being processed (COP; ROP already overlaps blocks
  /// across pool workers). Wall-clock optimization only — I/O traffic and
  /// results are identical either way.
  bool overlap_io = true;
  int max_iterations = 100000;
  /// CPU cost model: nanoseconds per scanned edge (see DESIGN.md; modeled
  /// time = modeled device time + edge work / effective parallelism).
  double cpu_ns_per_edge = 4.0;
  std::filesystem::path scratch_dir;  ///< default: the store directory
  /// Memory budget for the block cache (bytes). 0 (default) disables the
  /// cache entirely; per-iteration I/O is then bit-identical to the
  /// pre-cache engine. See src/cache/block_cache.hpp.
  std::uint64_t cache_budget_bytes = 0;
  /// Admission policy: never cache a block whose payload exceeds this
  /// fraction of the budget.
  double cache_max_block_fraction = 0.25;
  /// On a ROP miss of an admissible out-block, read and cache the whole
  /// block (one positioning + one transfer) instead of point-loading a
  /// single vertex's run; later point loads of the block are then free.
  bool cache_fill_rop = true;
  /// Borrow an externally-owned cache instead of building a private one
  /// (GraphService shares one cache across concurrent jobs). Takes precedence
  /// over cache_budget_bytes; the engine never evicts-on-destroy or resizes a
  /// shared cache. cache_owner tags this engine's accesses for per-job charge
  /// accounting and cross-job hit attribution.
  BlockCache* shared_cache = nullptr;
  std::uint32_t cache_owner = 0;
  /// Frontier-driven block skipping: rebuild a per-interval active Bloom each
  /// iteration and test it against the store's pack-time block signatures, so
  /// ROP rows and COP columns drop blocks with no active endpoints before any
  /// I/O is issued. Requires a store built with StoreOptions::skip_filters.
  bool skip_filter = false;
  /// Codec decode throughput fed to the predictor's T_decode term (bytes of
  /// DECODED output per second). 0 = micro-profile the store's codec at
  /// engine construction; benches pin a fixed value for determinism. Ignored
  /// for kNone stores.
  double decode_bytes_per_sec = 0;
  /// Cooperative cancellation: when set, run() polls the token at the top of
  /// every iteration and between edge blocks/intervals, unwinding with
  /// OperationCancelled (scratch files are still cleaned up). The token must
  /// outlive the engine run.
  const CancellationToken* cancel = nullptr;
  /// Online device calibration (obs/calibrate.hpp). kOff and kObserve leave
  /// every decision byte-identical to the preset engine (the calibrator only
  /// listens); kApply re-prices decide() against the measured profile once
  /// the calibrator is warm. Arming the calibrator itself is the CLI's job.
  obs::CalibrationMode calibrate = obs::CalibrationMode::kOff;
  /// Shadow miss-ratio tracker fed from every cached block access
  /// (cache/shadow_mrc.hpp); owned by the caller (GraphService's partition
  /// manager) and must outlive the run. Null (default) = no shadow
  /// accounting, zero overhead.
  ShadowMrc* shadow_mrc = nullptr;
  /// Per-job heartbeat for the anomaly watchdog (obs/flight_recorder.hpp):
  /// touched between intervals, ticked with cumulative progress at the end
  /// of every iteration. Owned by the caller (the scheduler keeps it alive
  /// past the run). Null (default) = no heartbeat, zero overhead.
  obs::ProgressBeat* heartbeat = nullptr;
};

template <class V>
struct RunResult {
  std::vector<V> values;
  RunStats stats;
};

class Engine {
 public:
  Engine(const DualBlockStore& store, EngineOptions options);

  const EngineOptions& options() const { return opts_; }
  const DualBlockStore& store() const { return *store_; }
  /// Block-cache counters since construction (zero-valued when the cache is
  /// disabled). Per-iteration deltas land in IterationStats::cache.
  CacheStats cache_stats() const;
  /// Codec/skip counters since construction: the reader's decode side plus
  /// this engine's skip-filter side. All-zero for kNone stores without a
  /// skip filter. The run() delta lands in RunStats::codec.
  CodecStats codec_stats() const;

  /// Resolved decode throughput the predictor prices T_decode with
  /// (bytes/sec; 0 for kNone stores). The DecodeAudit divides
  /// CodecStats::decoded_bytes by this to get the predicted decode wall.
  double decode_bps() const { return decode_bps_; }

  /// Runs `prog` to convergence (empty frontier) or max_iterations.
  template <VertexProgram P>
  RunResult<typename P::Value> run(const P& prog, const Frontier& initial);

 private:
  /// Per-interval ROP/COP decisions for one iteration. value_bytes is the
  /// program's sizeof(Value) (the N of §3.4); iter tags the I/O-trace
  /// decision events (obs/iotrace.hpp).
  std::vector<DecisionRecord> decide(const Frontier& frontier,
                                     std::uint32_t value_bytes,
                                     std::uint32_t iter) const;

  /// Exact byte size of the in-blocks in interval i's column.
  std::uint64_t column_bytes(std::uint32_t i) const;

  /// Exact byte size of the out-blocks in interval i's row.
  std::uint64_t row_bytes(std::uint32_t i) const;

  std::filesystem::path scratch_file() const;

  /// Cancellation point (no-op without a token).
  void check_cancelled() const {
    if (opts_.cancel != nullptr) opts_.cancel->check();
  }

  /// Watchdog keep-alive between intervals (no-op without a heartbeat).
  void heartbeat_touch() const {
    if (opts_.heartbeat != nullptr) opts_.heartbeat->touch();
  }

  /// End-of-iteration observability (outlined: flight-recorder progress +
  /// decision events, heartbeat mispredict streak). `edges_total`/`io_total`
  /// are cumulative over the run so far.
  void note_iteration(const IterationStats& istats, std::uint64_t edges_total,
                      std::uint64_t io_total) const;

  template <class P>
  void rop_row(const P& prog, const ProgramContext& ctx, std::uint32_t i,
               ValueStore<typename P::Value>& values, const Frontier& frontier,
               AtomicBitmap& next, std::atomic<std::uint64_t>& scanned) const;

  template <class P>
  void cop_blocks(const P& prog, const ProgramContext& ctx, std::uint32_t i,
                  const std::vector<std::uint32_t>& source_intervals,
                  ValueStore<typename P::Value>& values,
                  const Frontier& frontier, AtomicBitmap& next,
                  std::atomic<std::uint64_t>& scanned) const;

  template <class P>
  void rop_row_accumulating(const P& prog, const ProgramContext& ctx,
                            std::uint32_t i,
                            ValueStore<typename P::Value>& values,
                            std::vector<typename P::Value>& acc,
                            const Frontier& frontier,
                            std::atomic<std::uint64_t>& scanned) const;

  template <class P>
  void cop_column_accumulating(const P& prog, const ProgramContext& ctx,
                               std::uint32_t i,
                               ValueStore<typename P::Value>& values,
                               std::vector<typename P::Value>& acc,
                               AtomicBitmap& next,
                               std::atomic<std::uint64_t>& scanned) const;

  const DualBlockStore* store_;
  EngineOptions opts_;
  mutable ThreadPool pool_;
  IoCostPredictor predictor_;
  /// Buffer manager between the engine and the store. cache_ is null at
  /// budget 0 (reader_ then passes through untouched); declared before
  /// reader_ which borrows it.
  std::unique_ptr<BlockCache> cache_;
  CachedBlockReader reader_;
  /// Frontier-side skip filter (EngineOptions::skip_filter); null when off.
  std::unique_ptr<BlockSkipFilter> skip_;
  /// Resolved decode throughput for the predictor (0 for kNone stores).
  double decode_bps_ = 0;
  /// Skip-side codec counters (decode side lives in reader_).
  mutable std::atomic<std::uint64_t> blocks_skipped_{0};
  mutable std::atomic<std::uint64_t> skipped_bytes_{0};
};

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

template <VertexProgram P>
RunResult<typename P::Value> Engine::run(const P& prog,
                                         const Frontier& initial) {
  using V = typename P::Value;
  const StoreMeta& meta = store_->meta();
  const std::uint32_t p = meta.p();
  const VertexId n = static_cast<VertexId>(meta.num_vertices);
  ProgramContext ctx{store_->out_degrees(), store_->in_degrees(), 0};

  if constexpr (!P::kIdempotent) {
    HUSG_CHECK(opts_.granularity == DecisionGranularity::kGlobal,
               "per-interval hybrid granularity requires an idempotent "
               "program (coverage repair may double-apply edges)");
  }
  constexpr bool kHasOnProcessed =
      requires(const P& pr, const ProgramContext& c, VertexId v, V& a,
               const V& b) { pr.on_processed(c, v, a, b); };
  if constexpr (kHasOnProcessed) {
    HUSG_CHECK(opts_.sync == SyncMode::kJacobi,
               "programs with on_processed require SyncMode::kJacobi");
  }

  std::filesystem::path scratch = scratch_file();
  RunResult<V> result;
  const CodecStats codec_start = codec_stats();
  // Unwind path (cancellation, timeout, I/O failure): the ValueStore closes
  // and the scratch file is removed either way, so a cancelled job tears
  // down without leaking partial results on disk.
  try {
    ValueStore<V> values(meta, scratch, opts_.file_backed_values,
                         &store_->io());
    for (VertexId v = 0; v < n; ++v) values.values()[v] = prog.initial(ctx, v);
    values.flush_all();
    values.snapshot_all();

    Frontier frontier = initial;
    std::vector<V> acc;  // accumulating programs only

    std::uint64_t total_edges = 0;  // cumulative, for heartbeat ticks
    std::uint64_t total_io_bytes = 0;
    for (int iter = 0; iter < opts_.max_iterations && !frontier.empty();
         ++iter) {
      check_cancelled();
      heartbeat_touch();
      if constexpr (!kHasOnProcessed) {
        // Active vertices without out-edges cannot propagate anything; only
        // programs with an on_processed hook still need the pass (e.g.
        // PageRank-Delta consuming the final residuals).
        if (frontier.active_out_degree() == 0) break;
      }
      HUSG_SPAN("engine", "iteration", "iter", iter, "active_vertices",
                static_cast<std::int64_t>(frontier.active_vertices()));
      Timer iter_timer;
      IoSnapshot io_before = store_->io().snapshot();
      CacheStats cache_before = cache_stats();

      IterationStats istats;
      istats.iteration = iter;
      ctx.iteration = iter;
      istats.active_vertices = frontier.active_vertices();
      istats.active_edges = frontier.active_out_degree();
      // Bloom the frontier before deciding: decide()'s skip-aware byte
      // estimates and the row/column paths below consult the same filter.
      if (skip_) skip_->rebuild(frontier);
      istats.decisions = decide(frontier, sizeof(V), iter);

      if (opts_.sync == SyncMode::kJacobi) values.snapshot_all();

      AtomicBitmap next(n);
      std::atomic<std::uint64_t> rop_scanned{0};
      std::atomic<std::uint64_t> cop_scanned{0};

      if constexpr (P::kAccumulating) {
        acc.assign(n, V{});
        for (VertexId v = 0; v < n; ++v) acc[v] = prog.gather_zero(ctx, v);
        bool used_rop = istats.decisions.front().used_rop;
        if (used_rop) {
          for (std::uint32_t i = 0; i < p; ++i) {
            check_cancelled();
            heartbeat_touch();
            DecisionRecord& dec = istats.decisions[i];
            HUSG_SPAN("engine", "interval", "interval",
                      static_cast<std::int64_t>(i), "rop", 1);
            const IoSnapshot iv_io = store_->io().snapshot();
            Timer iv_timer;
            rop_row_accumulating(prog, ctx, i, values, acc, frontier,
                                 rop_scanned);
            dec.observed = true;
            dec.observed_io = store_->io().snapshot() - iv_io;
            dec.observed_wall_seconds = iv_timer.seconds();
          }
          // Apply phase: all rows gathered; commit every interval. The
          // pre-overwrite value is the previous iteration's (rows gather into
          // acc and never touch vals). The commit traffic belongs to the
          // interval's ROP cost, so it accrues to the same audit record.
          for (std::uint32_t i = 0; i < p; ++i) {
            const IoSnapshot iv_io = store_->io().snapshot();
            Timer iv_timer;
            VertexId b = meta.interval_begin(i), e = meta.interval_end(i);
            for (VertexId v = b; v < e; ++v) {
              V a = acc[v];
              if (prog.apply(ctx, v, a, values.values()[v])) next.set(v);
              values.values()[v] = a;
            }
            values.store_interval(i);
            istats.decisions[i].observed_io += store_->io().snapshot() - iv_io;
            istats.decisions[i].observed_wall_seconds += iv_timer.seconds();
          }
        } else {
          for (std::uint32_t i = 0; i < p; ++i) {
            check_cancelled();
            heartbeat_touch();
            DecisionRecord& dec = istats.decisions[i];
            HUSG_SPAN("engine", "interval", "interval",
                      static_cast<std::int64_t>(i), "rop", 0);
            const IoSnapshot iv_io = store_->io().snapshot();
            Timer iv_timer;
            cop_column_accumulating(prog, ctx, i, values, acc, next,
                                    cop_scanned);
            dec.observed = true;
            dec.observed_io = store_->io().snapshot() - iv_io;
            dec.observed_wall_seconds = iv_timer.seconds();
          }
        }
      } else {
        // Monotone path: process each interval with its chosen model.
        std::vector<std::uint32_t> all_sources(p);
        for (std::uint32_t j = 0; j < p; ++j) all_sources[j] = j;
        for (std::uint32_t i = 0; i < p; ++i) {
          check_cancelled();
          heartbeat_touch();
          DecisionRecord& dec = istats.decisions[i];
          HUSG_SPAN("engine", "interval", "interval",
                    static_cast<std::int64_t>(i), "rop", dec.used_rop ? 1 : 0);
          // Predicted-vs-observed for the audit log (obs/audit.hpp). The
          // store's IoStats is store-wide, so with a shared store concurrent
          // jobs' traffic can bleed into the delta — the same caveat as
          // IterationStats::io.
          const IoSnapshot iv_io = store_->io().snapshot();
          Timer iv_timer;
          if (dec.used_rop) {
            rop_row(prog, ctx, i, values, frontier, next, rop_scanned);
          } else {
            cop_blocks(prog, ctx, i, all_sources, values, frontier, next,
                       cop_scanned);
          }
          dec.observed = true;
          dec.observed_io = store_->io().snapshot() - iv_io;
          dec.observed_wall_seconds = iv_timer.seconds();
        }
        // Coverage repair for mixed per-interval decisions (see file header).
        if (opts_.granularity == DecisionGranularity::kPerInterval) {
          std::vector<std::uint32_t> cop_sources;
          for (std::uint32_t a = 0; a < p; ++a) {
            if (!istats.decisions[a].used_rop && frontier.active_in(a) > 0) {
              cop_sources.push_back(a);
            }
          }
          if (!cop_sources.empty()) {
            for (std::uint32_t b = 0; b < p; ++b) {
              if (!istats.decisions[b].used_rop) continue;
              // Repair traffic is part of the real cost of having chosen ROP
              // for interval b, so the audit charges it to b's record.
              DecisionRecord& dec = istats.decisions[b];
              const IoSnapshot iv_io = store_->io().snapshot();
              Timer iv_timer;
              cop_blocks(prog, ctx, b, cop_sources, values, frontier, next,
                         cop_scanned);
              dec.observed_io += store_->io().snapshot() - iv_io;
              dec.observed_wall_seconds += iv_timer.seconds();
            }
          }
        }
      }

      if constexpr (kHasOnProcessed) {
        Bitmap touched(p);
        for (std::uint32_t i = 0; i < p; ++i) {
          if (frontier.active_in(i) == 0) continue;
          frontier.for_each_active(
              meta.interval_begin(i), meta.interval_end(i), [&](VertexId v) {
                prog.on_processed(ctx, v, values.values()[v],
                                  values.prev()[v]);
              });
          touched.set(i);
        }
        for (std::uint32_t i = 0; i < p; ++i) {
          if (touched.get(i)) values.store_interval(i);
        }
      }

      frontier = Frontier::from_bits(meta, next, store_->out_degrees());

      istats.io = store_->io().snapshot() - io_before;
      istats.cache = cache_stats() - cache_before;
      istats.wall_seconds = iter_timer.seconds();
      istats.modeled_io_seconds = opts_.device.modeled_seconds(istats.io);
      std::uint64_t re = rop_scanned.load(), ce = cop_scanned.load();
      istats.edges_processed = re + ce;
      double eff_rop = static_cast<double>(
          std::min<std::size_t>(opts_.threads, std::max<std::uint32_t>(p, 1)));
      double eff_cop = static_cast<double>(std::max<std::size_t>(opts_.threads, 1));
      istats.modeled_cpu_seconds =
          opts_.cpu_ns_per_edge * 1e-9 *
          (static_cast<double>(re) / eff_rop + static_cast<double>(ce) / eff_cop);
      HUSG_INFO << "iter " << iter << ": active=" << istats.active_vertices
                << " edges=" << istats.edges_processed
                << " io=" << istats.io.total_bytes() << "B mode="
                << (istats.any_rop() && istats.any_cop()
                        ? "mixed"
                        : (istats.any_rop() ? "rop" : "cop"))
                << " wall=" << istats.wall_seconds << "s";
      total_edges += istats.edges_processed;
      total_io_bytes += istats.io.total_bytes();
      if (opts_.heartbeat != nullptr || obs::flight_enabled()) [[unlikely]] {
        note_iteration(istats, total_edges, total_io_bytes);
        if (opts_.heartbeat != nullptr) {
          opts_.heartbeat->tick(static_cast<std::uint64_t>(iter) + 1,
                                istats.active_vertices, total_edges,
                                total_io_bytes);
        }
      }
      result.stats.add_iteration(std::move(istats));
    }

    result.values = values.values();
    result.stats.codec = codec_stats() - codec_start;
  } catch (...) {
    if (opts_.file_backed_values) {
      std::error_code ec;
      std::filesystem::remove(scratch, ec);
    }
    throw;
  }
  if (opts_.file_backed_values) {
    std::error_code ec;
    std::filesystem::remove(scratch, ec);
  }
  return result;
}

template <class P>
void Engine::rop_row(const P& prog, const ProgramContext& ctx, std::uint32_t i,
                     ValueStore<typename P::Value>& values,
                     const Frontier& frontier, AtomicBitmap& next,
                     std::atomic<std::uint64_t>& scanned) const {
  const StoreMeta& meta = store_->meta();
  if (frontier.active_in(i) == 0) return;  // nothing to push from this row
  HUSG_SPAN("engine", "rop_row", "interval", static_cast<std::int64_t>(i));

  values.load_interval(i);  // S_i
  if (opts_.sync == SyncMode::kPaperAsync) values.snapshot_interval(i);

  // Materialize the active vertices of interval i once for all blocks.
  const VertexId base = meta.interval_begin(i);
  std::vector<VertexId> actives;
  actives.reserve(frontier.active_in(i));
  frontier.for_each_active(base, meta.interval_end(i),
                           [&](VertexId v) { actives.push_back(v); });

  const auto& prev = values.prev();
  auto& vals = values.values();
  std::vector<char> touched(meta.p(), 0);

  // §3.5: out-blocks of one row have disjoint destination intervals, so they
  // are processed by the pool in parallel.
  pool_.parallel_for(meta.p(), 1, [&](std::size_t jz) {
    std::uint32_t j = static_cast<std::uint32_t>(jz);
    const BlockExtent& block = meta.out_block(i, j);
    if (block.edge_count == 0) return;
    // Skip filter: a zero signature/frontier intersection proves no active
    // source has edges in this block — drop it before any I/O (even the
    // index load).
    if (skip_ && !skip_->may_have_active_source(i, j)) {
      blocks_skipped_.fetch_add(1, std::memory_order_relaxed);
      skipped_bytes_.fetch_add(block.adj_bytes, std::memory_order_relaxed);
      return;
    }
    std::vector<std::uint32_t> idx;
    reader_.load_out_index(i, j, idx);
    // Load D_j only if some active vertex actually has edges in this block
    // (Alg. 2 loads D_j to apply updates; a block none of the frontier
    // touches needs neither the values nor any edge I/O).
    bool block_touched = false;
    for (VertexId v : actives) {
      if (idx[v - base + 1] > idx[v - base]) {
        block_touched = true;
        break;
      }
    }
    if (!block_touched) return;
    values.load_interval(j);  // D_j
    AdjacencyBuffer buf;
    std::uint64_t local_scanned = 0;
    bool any = false;

    auto process_range = [&](std::uint32_t lo, std::uint32_t hi,
                             std::size_t first_active,
                             const AdjacencySlice& slice) {
      // One contiguous run covering [lo,hi) of the block's CSR: walk the
      // active vertices whose edges fall inside it.
      std::size_t a = first_active;
      while (a < actives.size()) {
        VertexId v = actives[a];
        std::uint32_t vlo = idx[v - base], vhi = idx[v - base + 1];
        if (vlo >= hi) break;
        for (std::uint32_t k = vlo; k < vhi; ++k) {
          VertexId d = slice.neighbors[k - lo];
          if (prog.update(ctx, prev[v], v, vals[d], d, slice.weight(k - lo))) {
            next.set(d);
          }
        }
        local_scanned += vhi - vlo;
        ++a;
      }
      any = true;
    };

    if (opts_.coalesce_rop_loads) {
      // Extension: merge point loads of adjacent active vertices into one
      // request when their edge runs are contiguous in the block. The merged
      // runs then go down as ONE backend batch (a single ring submission
      // under uring).
      std::vector<OutRange> runs;
      std::vector<std::size_t> run_first;
      std::size_t a = 0;
      while (a < actives.size()) {
        std::uint32_t lo = idx[actives[a] - base];
        std::uint32_t hi = idx[actives[a] - base + 1];
        std::size_t run_start = a;
        while (a + 1 < actives.size() &&
               idx[actives[a + 1] - base] == idx[actives[a] - base + 1]) {
          ++a;
          hi = idx[actives[a] - base + 1];
        }
        if (hi > lo) {
          runs.push_back(OutRange{lo, hi});
          run_first.push_back(run_start);
        }
        ++a;
      }
      reader_.load_out_edges_batch(
          i, j, runs.data(), runs.size(), buf,
          [&](std::size_t q, const AdjacencySlice& slice) {
            process_range(runs[q].lo, runs[q].hi, run_first[q], slice);
          });
    } else {
      // Per-vertex point loads of the whole row, batched into one backend
      // submission; emits arrive in active order, so updates apply in the
      // same order (and produce the same bytes) as the historical loop.
      std::vector<OutRange> rngs;
      std::vector<VertexId> rverts;
      for (std::size_t a = 0; a < actives.size(); ++a) {
        std::uint32_t lo = idx[actives[a] - base];
        std::uint32_t hi = idx[actives[a] - base + 1];
        if (hi > lo) {
          rngs.push_back(OutRange{lo, hi});
          rverts.push_back(actives[a]);
        }
      }
      reader_.load_out_edges_batch(
          i, j, rngs.data(), rngs.size(), buf,
          [&](std::size_t q, const AdjacencySlice& slice) {
            const std::uint32_t lo = rngs[q].lo, hi = rngs[q].hi;
            VertexId v = rverts[q];
            for (std::uint32_t k = lo; k < hi; ++k) {
              VertexId d = slice.neighbors[k - lo];
              if (prog.update(ctx, prev[v], v, vals[d], d,
                              slice.weight(k - lo))) {
                next.set(d);
              }
            }
            local_scanned += hi - lo;
            any = true;
          });
    }
    if (local_scanned > 0) {
      scanned.fetch_add(local_scanned, std::memory_order_relaxed);
    }
    if (any) touched[j] = 1;
  });

  for (std::uint32_t j = 0; j < meta.p(); ++j) {
    if (touched[j]) values.store_interval(j);
  }
}

template <class P>
void Engine::cop_blocks(const P& prog, const ProgramContext& ctx,
                        std::uint32_t i,
                        const std::vector<std::uint32_t>& source_intervals,
                        ValueStore<typename P::Value>& values,
                        const Frontier& frontier, AtomicBitmap& next,
                        std::atomic<std::uint64_t>& scanned) const {
  const StoreMeta& meta = store_->meta();
  const VertexId base = meta.interval_begin(i);
  const VertexId count = meta.interval_size(i);
  if (count == 0) return;
  HUSG_SPAN("engine", "cop_column", "interval", static_cast<std::int64_t>(i));

  values.load_interval(i);  // D_i
  if (opts_.sync == SyncMode::kPaperAsync) values.snapshot_interval(i);

  const auto& prev = values.prev();
  auto& vals = values.values();
  bool any = false;

  // Blocks this column will actually stream.
  std::vector<std::uint32_t> blocks;
  for (std::uint32_t j : source_intervals) {
    const BlockExtent& blk = meta.in_block(j, i);
    if (blk.edge_count == 0) continue;
    if (opts_.cop_skip_inactive_blocks && frontier.active_in(j) == 0) continue;
    // Skip filter: no active source touches this block — never stream it.
    if (skip_ && !skip_->may_have_active_source(j, i)) {
      blocks_skipped_.fetch_add(1, std::memory_order_relaxed);
      skipped_bytes_.fetch_add(blk.adj_bytes, std::memory_order_relaxed);
      continue;
    }
    blocks.push_back(j);
  }

  // §3.5 CPU/I-O overlap: ping-pong slots; while one block is processed the
  // next one's index and adjacency stream in on a pool worker (one-shot
  // lane — the pool bounds prefetch parallelism, where std::async spawned a
  // fresh thread per block and concurrent jobs would multiply them).
  struct Slot {
    std::vector<std::uint32_t> inidx;
    AdjacencyBuffer buf;
    AdjacencySlice slice;
  };
  Slot slots[2];
  auto fetch = [&](std::uint32_t j, Slot& slot) {
    HUSG_SPAN("engine", "cop_prefetch", "src", static_cast<std::int64_t>(j),
              "dst", static_cast<std::int64_t>(i));
    reader_.load_in_index(j, i, slot.inidx);
    slot.slice = reader_.stream_in_block(j, i, slot.buf);
  };
  std::future<void> pending;
  std::function<void()> deferred;
  // Unlike a std::async future, a packaged-task future does not block in its
  // destructor; an exception (cancellation, I/O error) must not unwind this
  // frame while a prefetch still references the slots.
  struct PendingGuard {
    std::future<void>* fut;
    ~PendingGuard() {
      if (fut->valid()) fut->wait();
    }
  } guard{&pending};

  for (std::size_t k = 0; k < blocks.size(); ++k) {
    check_cancelled();
    std::uint32_t j = blocks[k];
    const BlockExtent& block = meta.in_block(j, i);
    if (j == i) {
      // The diagonal's source values are the pre-column snapshot already in
      // memory; reloading into vals would clobber this column's own updates.
      values.load_interval_discard(j);
    } else {
      values.load_interval(j);  // S_j
    }
    Slot& cur = slots[k % 2];
    if (k == 0) {
      fetch(j, cur);
    } else if (pending.valid()) {
      pending.get();  // the prefetch of this block
    } else {
      deferred();  // no overlap: fetch at the consume point, same I/O order
      deferred = nullptr;
    }
    if (k + 1 < blocks.size()) {
      std::uint32_t nj = blocks[k + 1];
      Slot& nslot = slots[(k + 1) % 2];
      if (opts_.overlap_io) {
        pending = pool_.submit([&fetch, nj, &nslot] { fetch(nj, nslot); });
      } else {
        deferred = [&fetch, nj, &nslot] { fetch(nj, nslot); };
      }
    }
    const std::vector<std::uint32_t>& inidx = cur.inidx;
    const AdjacencySlice& slice = cur.slice;
    scanned.fetch_add(block.edge_count, std::memory_order_relaxed);
    any = true;

    const bool diagonal = (j == i);
    // §3.5: parallelism within an in-block — workers own disjoint
    // destination ranges; in-edges are sorted by destination so each worker
    // reads a contiguous slice.
    pool_.parallel_ranges(count, [&](std::size_t lo, std::size_t hi,
                                     std::size_t /*worker*/) {
      for (std::size_t local = lo; local < hi; ++local) {
        VertexId v = base + static_cast<VertexId>(local);
        for (std::uint32_t k = inidx[local]; k < inidx[local + 1]; ++k) {
          VertexId s = slice.neighbors[k];
          if (!frontier.is_active(s)) continue;  // Alg. 3 line 11
          // Source value: previous iteration (Jacobi) or the pre-column
          // snapshot for the diagonal block (paper-async).
          const auto& sval =
              (opts_.sync == SyncMode::kJacobi || diagonal) ? prev[s] : vals[s];
          if (prog.update(ctx, sval, s, vals[v], v, slice.weight(k))) {
            next.set(v);
          }
        }
      }
    });
  }
  if (any) values.store_interval(i);
}

template <class P>
void Engine::rop_row_accumulating(const P& prog, const ProgramContext& ctx,
                                  std::uint32_t i,
                                  ValueStore<typename P::Value>& values,
                                  std::vector<typename P::Value>& acc,
                                  const Frontier& frontier,
                                  std::atomic<std::uint64_t>& scanned) const {
  const StoreMeta& meta = store_->meta();
  const VertexId base = meta.interval_begin(i);
  HUSG_SPAN("engine", "rop_row", "interval", static_cast<std::int64_t>(i));
  values.load_interval(i);
  const auto& prev = values.prev();

  // Accumulating scatter pushes contributions from every vertex of the row
  // (activity does not gate contributions — a converged PageRank vertex
  // still feeds its neighbours). `frontier` is unused except as
  // documentation that accumulating ROP is dense by construction.
  (void)frontier;

  pool_.parallel_for(meta.p(), 1, [&](std::size_t jz) {
    std::uint32_t j = static_cast<std::uint32_t>(jz);
    const BlockExtent& block = meta.out_block(i, j);
    if (block.edge_count == 0) return;
    values.load_interval(j);
    std::vector<std::uint32_t> idx;
    reader_.load_out_index(i, j, idx);
    AdjacencyBuffer buf;
    std::uint64_t local_scanned = 0;
    // Accumulating scatter is dense, so the whole block's point loads go
    // down as one backend batch; gathers apply in the same vertex order as
    // the historical per-vertex loop (bit-identical accumulation).
    std::vector<OutRange> rngs;
    std::vector<VertexId> rverts;
    for (VertexId local = 0; local < meta.interval_size(i); ++local) {
      std::uint32_t lo = idx[local], hi = idx[local + 1];
      if (lo == hi) continue;
      rngs.push_back(OutRange{lo, hi});
      rverts.push_back(base + local);
    }
    reader_.load_out_edges_batch(
        i, j, rngs.data(), rngs.size(), buf,
        [&](std::size_t q, const AdjacencySlice& slice) {
          const std::uint32_t lo = rngs[q].lo, hi = rngs[q].hi;
          VertexId v = rverts[q];
          for (std::uint32_t k = lo; k < hi; ++k) {
            prog.gather(ctx, acc[slice.neighbors[k - lo]], prev[v], v,
                        slice.weight(k - lo));
          }
          local_scanned += hi - lo;
        });
    scanned.fetch_add(local_scanned, std::memory_order_relaxed);
  });
}

template <class P>
void Engine::cop_column_accumulating(const P& prog, const ProgramContext& ctx,
                                     std::uint32_t i,
                                     ValueStore<typename P::Value>& values,
                                     std::vector<typename P::Value>& acc,
                                     AtomicBitmap& next,
                                     std::atomic<std::uint64_t>& scanned) const {
  const StoreMeta& meta = store_->meta();
  const VertexId base = meta.interval_begin(i);
  const VertexId count = meta.interval_size(i);
  if (count == 0) return;
  HUSG_SPAN("engine", "cop_column", "interval", static_cast<std::int64_t>(i));
  values.load_interval(i);  // D_i

  const bool jacobi = (opts_.sync == SyncMode::kJacobi);

  std::vector<std::uint32_t> blocks;
  for (std::uint32_t j = 0; j < meta.p(); ++j) {
    if (meta.in_block(j, i).edge_count > 0) blocks.push_back(j);
  }

  // Same §3.5 prefetch pipeline as the monotone COP path.
  struct Slot {
    std::vector<std::uint32_t> inidx;
    AdjacencyBuffer buf;
    AdjacencySlice slice;
  };
  Slot slots[2];
  auto fetch = [&](std::uint32_t j, Slot& slot) {
    HUSG_SPAN("engine", "cop_prefetch", "src", static_cast<std::int64_t>(j),
              "dst", static_cast<std::int64_t>(i));
    reader_.load_in_index(j, i, slot.inidx);
    slot.slice = reader_.stream_in_block(j, i, slot.buf);
  };
  std::future<void> pending;
  std::function<void()> deferred;
  struct PendingGuard {
    std::future<void>* fut;
    ~PendingGuard() {
      if (fut->valid()) fut->wait();
    }
  } guard{&pending};

  for (std::size_t k = 0; k < blocks.size(); ++k) {
    check_cancelled();
    std::uint32_t j = blocks[k];
    const BlockExtent& block = meta.in_block(j, i);
    values.load_interval(j);  // S_j
    Slot& cur = slots[k % 2];
    if (k == 0) {
      fetch(j, cur);
    } else if (pending.valid()) {
      pending.get();
    } else {
      deferred();
      deferred = nullptr;
    }
    if (k + 1 < blocks.size()) {
      std::uint32_t nj = blocks[k + 1];
      Slot& nslot = slots[(k + 1) % 2];
      if (opts_.overlap_io) {
        pending = pool_.submit([&fetch, nj, &nslot] { fetch(nj, nslot); });
      } else {
        deferred = [&fetch, nj, &nslot] { fetch(nj, nslot); };
      }
    }
    const std::vector<std::uint32_t>& inidx = cur.inidx;
    const AdjacencySlice& slice = cur.slice;
    scanned.fetch_add(block.edge_count, std::memory_order_relaxed);

    // In paper-async mode sources read the live values (columns already
    // committed supply this iteration's values — Gauss-Seidel); the current
    // column's own interval is only committed below, so the diagonal reads
    // previous values either way.
    const auto& src = jacobi ? values.prev() : values.values();
    pool_.parallel_ranges(count, [&](std::size_t lo, std::size_t hi,
                                     std::size_t /*worker*/) {
      for (std::size_t local = lo; local < hi; ++local) {
        VertexId v = base + static_cast<VertexId>(local);
        for (std::uint32_t k = inidx[local]; k < inidx[local + 1]; ++k) {
          prog.gather(ctx, acc[v], src[slice.neighbors[k]],
                      slice.neighbors[k], slice.weight(k));
        }
      }
    });
  }

  // Apply and commit this column's interval. vals[v] still holds the
  // previous iteration's value at this point (gathers only wrote acc), which
  // is the correct "prev" in both sync modes.
  auto& vals = values.values();
  for (VertexId local = 0; local < count; ++local) {
    VertexId v = base + local;
    typename P::Value a = acc[v];
    if (prog.apply(ctx, v, a, vals[v])) next.set(v);
    vals[v] = a;
  }
  values.store_interval(i);
}

}  // namespace husg
