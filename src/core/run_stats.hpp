// Per-run and per-iteration statistics: measured wall time, exact I/O
// traffic, modeled device time (see io/device.hpp), and the hybrid
// strategy's per-interval decisions — everything Figures 7-9 and the
// predictor ablation report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_stats.hpp"
#include "codec/block_codec.hpp"
#include "core/predictor.hpp"
#include "io/io_stats.hpp"

namespace husg {

namespace obs {
class Registry;
}

enum class UpdateMode { kRop, kCop, kHybrid };

const char* to_string(UpdateMode mode);

/// One hybrid decision (per interval, or one per iteration with global
/// granularity), plus — when the engine observed the interval it covers —
/// the actual traffic and wall time of executing it. Predicted vs observed
/// is the predictor audit's raw material (obs/audit.hpp).
struct DecisionRecord {
  std::uint32_t interval = 0;
  Prediction prediction;
  /// The exact inputs the prediction was computed from, kept so audits can
  /// re-price the decision under a *different* DeviceProfile after the run
  /// (the calibration observe/apply delta, obs/audit.hpp from_run_wall).
  /// Zero-initialised (num_vertices == 0) when no formula ran.
  PredictionInputs inputs;
  bool used_rop = false;
  /// True once the engine filled in the observed_* fields below. Global
  /// decisions and engines that don't instrument per-interval leave false.
  bool observed = false;
  IoSnapshot observed_io;  ///< traffic attributable to this interval
  double observed_wall_seconds = 0;
};

struct IterationStats {
  int iteration = 0;
  std::uint64_t active_vertices = 0;
  std::uint64_t active_edges = 0;  ///< Σ out-degree over active vertices
  IoSnapshot io;                   ///< traffic of this iteration only
  CacheStats cache;                ///< block-cache activity of this iteration
  double wall_seconds = 0;
  double modeled_io_seconds = 0;
  double modeled_cpu_seconds = 0;
  std::uint64_t edges_processed = 0;
  std::vector<DecisionRecord> decisions;

  double modeled_seconds() const {
    return modeled_io_seconds + modeled_cpu_seconds;
  }
  /// True if any interval (or the global decision) used ROP this iteration.
  bool any_rop() const;
  bool any_cop() const;
};

struct RunStats {
  std::vector<IterationStats> iterations;
  IoSnapshot total_io;
  CacheStats cache;  ///< block-cache activity across the whole run
  CodecStats codec;  ///< decode + skip-filter activity across the whole run
  double wall_seconds = 0;
  double modeled_io_seconds = 0;
  double modeled_cpu_seconds = 0;
  std::uint64_t edges_processed = 0;

  double modeled_seconds() const {
    return modeled_io_seconds + modeled_cpu_seconds;
  }
  int iterations_run() const { return static_cast<int>(iterations.size()); }

  void add_iteration(IterationStats it);

  /// Exports this run into the metrics registry (`husg_run_*` gauges and
  /// counters, plus the per-iteration wall-time histogram). Call once per
  /// finished run — counters accumulate across calls by design.
  void publish(obs::Registry& registry) const;

  std::string summary() const;
};

}  // namespace husg
