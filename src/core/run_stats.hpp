// Per-run and per-iteration statistics: measured wall time, exact I/O
// traffic, modeled device time (see io/device.hpp), and the hybrid
// strategy's per-interval decisions — everything Figures 7-9 and the
// predictor ablation report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_stats.hpp"
#include "core/predictor.hpp"
#include "io/io_stats.hpp"

namespace husg {

enum class UpdateMode { kRop, kCop, kHybrid };

const char* to_string(UpdateMode mode);

/// One hybrid decision (per interval, or one per iteration with global
/// granularity).
struct DecisionRecord {
  std::uint32_t interval = 0;
  Prediction prediction;
  bool used_rop = false;
};

struct IterationStats {
  int iteration = 0;
  std::uint64_t active_vertices = 0;
  std::uint64_t active_edges = 0;  ///< Σ out-degree over active vertices
  IoSnapshot io;                   ///< traffic of this iteration only
  CacheStats cache;                ///< block-cache activity of this iteration
  double wall_seconds = 0;
  double modeled_io_seconds = 0;
  double modeled_cpu_seconds = 0;
  std::uint64_t edges_processed = 0;
  std::vector<DecisionRecord> decisions;

  double modeled_seconds() const {
    return modeled_io_seconds + modeled_cpu_seconds;
  }
  /// True if any interval (or the global decision) used ROP this iteration.
  bool any_rop() const;
  bool any_cop() const;
};

struct RunStats {
  std::vector<IterationStats> iterations;
  IoSnapshot total_io;
  CacheStats cache;  ///< block-cache activity across the whole run
  double wall_seconds = 0;
  double modeled_io_seconds = 0;
  double modeled_cpu_seconds = 0;
  std::uint64_t edges_processed = 0;

  double modeled_seconds() const {
    return modeled_io_seconds + modeled_cpu_seconds;
  }
  int iterations_run() const { return static_cast<int>(iterations.size()); }

  void add_iteration(IterationStats it);

  std::string summary() const;
};

}  // namespace husg
