// Double-buffered vertex values (the paper's S_i / D_i copies, §3.3).
//
// The canonical current values live in memory; when file backing is enabled
// (the default for out-of-core runs) they are mirrored to one flat file per
// engine run and the engine performs the LoadFromDisk/Store operations of
// Algorithms 2 and 3 as real reads and writes, so vertex-value traffic shows
// up in the measured I/O exactly as §3.4's (2|V|/P + |V|)·N term expects.
//
// The file is authoritative at every load point: an interval is always
// stored after modification and before any subsequent load, so the
// load-into-memory path is load-bearing (a desynchronization bug corrupts
// results and fails the equivalence tests rather than hiding).
#pragma once

#include <cstring>
#include <filesystem>
#include <vector>

#include "io/tracked_file.hpp"
#include "obs/trace.hpp"
#include "storage/layout.hpp"

namespace husg {

template <class V>
class ValueStore {
 public:
  ValueStore(const StoreMeta& meta, const std::filesystem::path& scratch_file,
             bool file_backed, IoStats* io)
      : meta_(&meta), file_backed_(file_backed) {
    vals_.resize(meta.num_vertices);
    prev_.resize(meta.num_vertices);
    if (file_backed_) {
      file_ = TrackedFile(scratch_file, File::Mode::kReadWrite, io);
    }
  }

  std::vector<V>& values() { return vals_; }
  const std::vector<V>& values() const { return vals_; }
  std::vector<V>& prev() { return prev_; }
  const std::vector<V>& prev() const { return prev_; }

  /// Writes the full value array to the backing file (run initialization).
  void flush_all() {
    if (!file_backed_) return;
    file_.write(vals_.data(), vals_.size() * sizeof(V), 0);
  }

  /// prev = vals for the whole graph (Jacobi iteration boundary).
  void snapshot_all() {
    std::memcpy(prev_.data(), vals_.data(), vals_.size() * sizeof(V));
  }

  /// prev[interval i] = vals[interval i] (paper-async row/column boundary).
  void snapshot_interval(std::uint32_t i) {
    VertexId b = meta_->interval_begin(i);
    VertexId e = meta_->interval_end(i);
    std::memcpy(prev_.data() + b, vals_.data() + b, (e - b) * sizeof(V));
  }

  /// LoadFromDisk(S_i / D_i): sequential read of one interval's values.
  void load_interval(std::uint32_t i) {
    if (!file_backed_) return;
    HUSG_SPAN("values", "swap_in", "interval", static_cast<std::int64_t>(i));
    VertexId b = meta_->interval_begin(i);
    VertexId e = meta_->interval_end(i);
    if (e > b) {
      file_.read_sequential(vals_.data() + b, (e - b) * sizeof(V),
                            static_cast<std::uint64_t>(b) * sizeof(V));
    }
  }

  /// Performs (and charges) the read of one interval without touching the
  /// in-memory array. Used when an algorithm re-reads an interval it already
  /// holds dirty in memory (e.g. the diagonal S_i of a COP column: the paper
  /// keeps S and D as separate on-disk copies, we keep one plus a snapshot).
  void load_interval_discard(std::uint32_t i) {
    if (!file_backed_) return;
    HUSG_SPAN("values", "swap_in", "interval", static_cast<std::int64_t>(i));
    VertexId b = meta_->interval_begin(i);
    VertexId e = meta_->interval_end(i);
    if (e > b) {
      discard_.resize(e - b);
      file_.read_sequential(discard_.data(), (e - b) * sizeof(V),
                            static_cast<std::uint64_t>(b) * sizeof(V));
    }
  }

  /// Write one interval's values back.
  void store_interval(std::uint32_t i) {
    if (!file_backed_) return;
    HUSG_SPAN("values", "swap_out", "interval", static_cast<std::int64_t>(i));
    VertexId b = meta_->interval_begin(i);
    VertexId e = meta_->interval_end(i);
    if (e > b) {
      file_.write(vals_.data() + b, (e - b) * sizeof(V),
                  static_cast<std::uint64_t>(b) * sizeof(V));
    }
  }

  bool file_backed() const { return file_backed_; }

 private:
  const StoreMeta* meta_;
  bool file_backed_;
  std::vector<V> vals_;
  std::vector<V> prev_;
  std::vector<V> discard_;
  TrackedFile file_;
};

}  // namespace husg
