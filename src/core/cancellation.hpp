// Cooperative cancellation for engine runs (and anything else long-running).
//
// A CancellationToken is a latch: once requested it stays cancelled, and it
// records whether the request came from an explicit cancel or a deadline
// (the service's per-job timeout watchdog). The engine polls the token at its
// cancellation points — the top of every iteration and between edge blocks —
// and unwinds by throwing OperationCancelled, which the run path converts
// into clean partial-result teardown (scratch files removed, ValueStore
// closed). Polling is a relaxed atomic load, so the checks are free on the
// hot path.
#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace husg {

enum class CancelKind : int {
  kNone = 0,
  kExplicit = 1,  ///< cancel() / service-initiated shutdown
  kTimeout = 2,   ///< per-job deadline expired
};

/// Thrown from a cancellation point once the token fires.
class OperationCancelled : public std::runtime_error {
 public:
  OperationCancelled(const std::string& what, CancelKind kind)
      : std::runtime_error(what), kind_(kind) {}

  CancelKind kind() const { return kind_; }
  bool timed_out() const { return kind_ == CancelKind::kTimeout; }

 private:
  CancelKind kind_;
};

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Fires the token. First request wins; a later request (e.g. a timeout
  /// racing an explicit cancel) does not change the recorded kind.
  void request(CancelKind kind) {
    int expected = 0;
    state_.compare_exchange_strong(expected, static_cast<int>(kind),
                                   std::memory_order_relaxed);
  }

  bool cancelled() const {
    return state_.load(std::memory_order_relaxed) != 0;
  }

  CancelKind kind() const {
    return static_cast<CancelKind>(state_.load(std::memory_order_relaxed));
  }

  /// Cancellation point: throws OperationCancelled once the token has fired.
  void check() const {
    int s = state_.load(std::memory_order_relaxed);
    if (s == 0) return;
    CancelKind k = static_cast<CancelKind>(s);
    throw OperationCancelled(
        k == CancelKind::kTimeout ? "operation timed out" : "operation cancelled",
        k);
  }

 private:
  std::atomic<int> state_{0};
};

}  // namespace husg
