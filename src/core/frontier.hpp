// Frontier: the set of active vertices for one iteration, with the
// per-interval statistics (|A_i| and Σ_{v∈A_i} d_v) the §3.4 predictor
// consumes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "storage/layout.hpp"
#include "util/bitmap.hpp"

namespace husg {

class Frontier {
 public:
  Frontier() = default;

  /// Empty frontier over |V| vertices.
  static Frontier none(const StoreMeta& meta);
  /// All vertices active.
  static Frontier all(const StoreMeta& meta,
                      std::span<const VertexId> out_degrees);
  /// Exactly one vertex active.
  static Frontier single(const StoreMeta& meta, VertexId v,
                         std::span<const VertexId> out_degrees);
  /// Adopts an atomic bitmap produced during an iteration; recomputes the
  /// per-interval statistics.
  static Frontier from_bits(const StoreMeta& meta, const AtomicBitmap& bits,
                            std::span<const VertexId> out_degrees);

  bool empty() const { return total_active_ == 0; }
  std::uint64_t active_vertices() const { return total_active_; }
  std::uint64_t active_out_degree() const { return total_degree_; }

  std::uint64_t active_in(std::uint32_t interval) const {
    return per_interval_count_[interval];
  }
  std::uint64_t active_degree_in(std::uint32_t interval) const {
    return per_interval_degree_[interval];
  }

  bool is_active(VertexId v) const { return bits_.get(v); }

  /// Iterate active vertices of one interval in ascending order.
  template <class Fn>
  void for_each_active(VertexId begin, VertexId end, Fn&& fn) const {
    bits_.for_each_set(begin, end, [&](std::size_t v) {
      fn(static_cast<VertexId>(v));
    });
  }

 private:
  void recount(const StoreMeta& meta, std::span<const VertexId> out_degrees);

  Bitmap bits_;
  std::vector<std::uint64_t> per_interval_count_;
  std::vector<std::uint64_t> per_interval_degree_;
  std::uint64_t total_active_ = 0;
  std::uint64_t total_degree_ = 0;
};

}  // namespace husg
