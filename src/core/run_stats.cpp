#include "core/run_stats.hpp"

#include <algorithm>
#include <sstream>

#include "util/format.hpp"

namespace husg {

const char* to_string(UpdateMode mode) {
  switch (mode) {
    case UpdateMode::kRop:
      return "ROP";
    case UpdateMode::kCop:
      return "COP";
    case UpdateMode::kHybrid:
      return "Hybrid";
  }
  return "?";
}

bool IterationStats::any_rop() const {
  return std::any_of(decisions.begin(), decisions.end(),
                     [](const DecisionRecord& d) { return d.used_rop; });
}

bool IterationStats::any_cop() const {
  return std::any_of(decisions.begin(), decisions.end(),
                     [](const DecisionRecord& d) { return !d.used_rop; });
}

void RunStats::add_iteration(IterationStats it) {
  total_io += it.io;
  cache += it.cache;
  wall_seconds += it.wall_seconds;
  modeled_io_seconds += it.modeled_io_seconds;
  modeled_cpu_seconds += it.modeled_cpu_seconds;
  edges_processed += it.edges_processed;
  iterations.push_back(std::move(it));
}

std::string RunStats::summary() const {
  std::ostringstream os;
  os << iterations.size() << " iterations, wall "
     << human_seconds(wall_seconds) << ", modeled "
     << human_seconds(modeled_seconds()) << ", io "
     << human_bytes(total_io.total_bytes()) << " ("
     << total_io.to_string() << "), edges processed "
     << with_commas(edges_processed);
  if (cache.lookups() > 0) os << ", cache " << cache.to_string();
  return os.str();
}

}  // namespace husg
