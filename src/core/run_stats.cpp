#include "core/run_stats.hpp"

#include <algorithm>
#include <sstream>

#include "io/backend/io_backend.hpp"
#include "obs/heatmap.hpp"
#include "obs/iotrace.hpp"
#include "obs/metrics.hpp"
#include "util/format.hpp"

namespace husg {

const char* to_string(UpdateMode mode) {
  switch (mode) {
    case UpdateMode::kRop:
      return "ROP";
    case UpdateMode::kCop:
      return "COP";
    case UpdateMode::kHybrid:
      return "Hybrid";
  }
  return "?";
}

bool IterationStats::any_rop() const {
  return std::any_of(decisions.begin(), decisions.end(),
                     [](const DecisionRecord& d) { return d.used_rop; });
}

bool IterationStats::any_cop() const {
  return std::any_of(decisions.begin(), decisions.end(),
                     [](const DecisionRecord& d) { return !d.used_rop; });
}

void RunStats::add_iteration(IterationStats it) {
  total_io += it.io;
  cache += it.cache;
  wall_seconds += it.wall_seconds;
  modeled_io_seconds += it.modeled_io_seconds;
  modeled_cpu_seconds += it.modeled_cpu_seconds;
  edges_processed += it.edges_processed;
  iterations.push_back(std::move(it));
}

void RunStats::publish(obs::Registry& reg) const {
  reg.gauge("husg_run_iterations", "Iterations executed by the last run")
      .set(static_cast<double>(iterations.size()));
  reg.gauge("husg_run_wall_seconds", "Measured wall time of the last run")
      .set(wall_seconds);
  reg.gauge("husg_run_modeled_io_seconds",
            "Device-model I/O time of the last run")
      .set(modeled_io_seconds);
  reg.gauge("husg_run_modeled_cpu_seconds",
            "CPU-model edge-work time of the last run")
      .set(modeled_cpu_seconds);
  reg.counter("husg_run_edges_processed_total", "Edges scanned across runs")
      .inc(edges_processed);
  reg.counter("husg_run_io_seq_read_bytes_total",
              "Sequential bytes read across runs")
      .inc(total_io.seq_read_bytes);
  reg.counter("husg_run_io_rand_read_bytes_total",
              "Random bytes read across runs")
      .inc(total_io.rand_read_bytes);
  reg.counter("husg_run_io_rand_read_ops_total",
              "Random read operations across runs")
      .inc(total_io.rand_read_ops);
  reg.counter("husg_run_io_write_bytes_total", "Bytes written across runs")
      .inc(total_io.write_bytes);
  obs::Histogram& iter_hist = reg.histogram(
      "husg_run_iteration_seconds", "Wall time per engine iteration", 1e-9);
  std::uint64_t rop_intervals = 0, cop_intervals = 0;
  for (const IterationStats& it : iterations) {
    iter_hist.record(static_cast<std::uint64_t>(it.wall_seconds * 1e9));
    for (const DecisionRecord& d : it.decisions) {
      (d.used_rop ? rop_intervals : cop_intervals) += 1;
    }
  }
  reg.counter("husg_run_rop_intervals_total",
              "Interval executions that used ROP across runs")
      .inc(rop_intervals);
  reg.counter("husg_run_cop_intervals_total",
              "Interval executions that used COP across runs")
      .inc(cop_intervals);
  if (codec.any()) {
    reg.counter("husg_codec_blocks_decoded_total",
                "Codec blocks decoded across runs")
        .inc(codec.blocks_decoded);
    reg.counter("husg_codec_encoded_bytes_total",
                "Encoded (on-disk) bytes decoded across runs")
        .inc(codec.encoded_bytes);
    reg.counter("husg_codec_decoded_bytes_total",
                "Decoded (raw CSR) bytes produced across runs")
        .inc(codec.decoded_bytes);
    reg.counter("husg_skip_filter_rebuilds_total",
                "Skip-filter frontier Bloom rebuilds across runs")
        .inc(codec.skip_filter_rebuilds);
    reg.counter("husg_skip_blocks_skipped_total",
                "Blocks proven inactive and skipped before I/O across runs")
        .inc(codec.blocks_skipped);
    reg.counter("husg_skip_bytes_total",
                "On-disk bytes of skipped blocks across runs")
        .inc(codec.skipped_bytes);
  }
  const IoBackendTotals be = io_backend_totals();
  if (be.reads_submitted > 0) {
    reg.gauge("husg_io_backend_reads_submitted",
              "Read operations handed to the I/O backend")
        .set(static_cast<double>(be.reads_submitted));
    reg.gauge("husg_io_backend_reads_completed",
              "Read operations completed by the I/O backend")
        .set(static_cast<double>(be.reads_completed));
    reg.gauge("husg_io_backend_batches",
              "Batched submissions issued to the I/O backend")
        .set(static_cast<double>(be.batches));
    reg.gauge("husg_io_backend_inflight_peak",
              "Peak reads in flight inside one backend submission")
        .set(static_cast<double>(be.inflight_peak));
    reg.gauge("husg_io_backend_uring_fallbacks",
              "Times auto backend selection fell back from uring to sync")
        .set(static_cast<double>(be.uring_fallbacks));
    reg.gauge("husg_io_backend_direct_denied",
              "O_DIRECT opens the filesystem refused (buffered fallback)")
        .set(static_cast<double>(be.direct_denied));
  }
  const obs::Heatmap& heat = obs::Heatmap::instance();
  if (heat.has_data()) heat.publish(reg);
  const obs::IoTrace& iotrace = obs::IoTrace::instance();
  if (iotrace.events_recorded() > 0 || iotrace.dropped() > 0) {
    iotrace.publish(reg);
  }
}

std::string RunStats::summary() const {
  std::ostringstream os;
  os << iterations.size() << " iterations, wall "
     << human_seconds(wall_seconds) << ", modeled "
     << human_seconds(modeled_seconds()) << ", io "
     << human_bytes(total_io.total_bytes()) << " ("
     << total_io.to_string() << "), edges processed "
     << with_commas(edges_processed);
  if (cache.lookups() > 0) os << ", cache " << cache.to_string();
  if (codec.any()) {
    os << ", codec " << with_commas(codec.blocks_decoded) << " decodes ("
       << human_bytes(codec.encoded_bytes) << " -> "
       << human_bytes(codec.decoded_bytes) << ")";
    if (codec.blocks_skipped > 0 || codec.skip_filter_rebuilds > 0) {
      os << ", skipped " << with_commas(codec.blocks_skipped) << " blocks ("
         << human_bytes(codec.skipped_bytes) << ")";
    }
  }
  return os.str();
}

}  // namespace husg
