#include "core/predictor.hpp"

#include <algorithm>

namespace husg {

Prediction IoCostPredictor::predict(const PredictionInputs& in,
                                    bool use_alpha) const {
  Prediction out;
  const double v = static_cast<double>(in.num_vertices);
  const double p = static_cast<double>(in.p);
  const double n_bytes = static_cast<double>(in.value_bytes);
  const double vertex_bytes = (2.0 * v / p + v) * n_bytes;
  const double rop_edge_bytes =
      static_cast<double>(in.active_degree_sum) * in.edge_bytes;

  // α shortcut (paper: if |A_i| > α|V|, select COP without evaluating).
  if (use_alpha && alpha_ > 0 &&
      static_cast<double>(in.active_vertices) > alpha_ * v) {
    out.alpha_shortcut = true;
    out.choose_rop = false;
    return out;
  }

  const double t_seq = std::max(device_.t_sequential(), 1.0);
  if (flavor_ == PredictorFlavor::kPaper) {
    const double t_rand = std::max(device_.t_random(4096.0), 1.0);
    const double cop_edge_bytes =
        static_cast<double>(in.num_edges) / p * in.edge_bytes;
    out.c_rop = rop_edge_bytes / t_rand + vertex_bytes / t_seq;
    out.c_cop = (cop_edge_bytes + vertex_bytes) / t_seq;
  } else {
    // Device-exact: point loads pay one positioning latency each; a vertex
    // active in the interval triggers up to one point load per block of the
    // row, so ops ≈ |A_i| · P (upper bound — empty runs are skipped).
    const double rand_bw = std::max(device_.rand_read_bw, 1.0);
    double ops = static_cast<double>(in.active_vertices) * p;
    double rop_bytes = rop_edge_bytes;
    if (in.whole_block_rop) {
      // Codec ROP: every touched block is read whole exactly once (memoized
      // decode), so the op count is the surviving block count and the bytes
      // are the encoded row bytes — not per-vertex loads.
      ops = static_cast<double>(in.row_block_loads);
      rop_bytes = static_cast<double>(in.row_edge_bytes);
    }
    double cop_bytes = static_cast<double>(in.column_edge_bytes);
    if (flavor_ == PredictorFlavor::kCacheAware) {
      // Resident bytes cost no I/O. Point loads land uniformly over the row
      // for prediction purposes, so the cached row fraction discounts both
      // the positioning ops and the transferred bytes; the column residual
      // is exact (COP streams whole blocks).
      if (in.row_edge_bytes > 0) {
        double uncached =
            1.0 - std::min<double>(1.0, static_cast<double>(
                                            in.cached_row_edge_bytes) /
                                            static_cast<double>(
                                                in.row_edge_bytes));
        ops *= uncached;
        rop_bytes *= uncached;
      }
      cop_bytes -= std::min<double>(
          cop_bytes, static_cast<double>(in.cached_column_edge_bytes));
    }
    out.c_rop = ops * device_.seek_seconds + rop_bytes / rand_bw +
                vertex_bytes / t_seq;
    out.c_cop = (cop_bytes + vertex_bytes) / t_seq;
    if (in.decode_bytes_per_sec > 0) {
      // T_decode: codec blocks trade transfer bytes for decode CPU; charge
      // the raw (decoded) volume behind each model's reads at the profiled
      // throughput.
      out.c_rop += static_cast<double>(in.row_raw_bytes) /
                   in.decode_bytes_per_sec;
      out.c_cop += static_cast<double>(in.column_raw_bytes) /
                   in.decode_bytes_per_sec;
    }
  }
  out.choose_rop = out.c_rop <= out.c_cop;
  return out;
}

}  // namespace husg
