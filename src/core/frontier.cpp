#include "core/frontier.hpp"

namespace husg {

Frontier Frontier::none(const StoreMeta& meta) {
  Frontier f;
  f.bits_.resize(meta.num_vertices);
  f.per_interval_count_.assign(meta.p(), 0);
  f.per_interval_degree_.assign(meta.p(), 0);
  return f;
}

Frontier Frontier::all(const StoreMeta& meta,
                       std::span<const VertexId> out_degrees) {
  Frontier f = none(meta);
  f.bits_.set_all();
  f.recount(meta, out_degrees);
  return f;
}

Frontier Frontier::single(const StoreMeta& meta, VertexId v,
                          std::span<const VertexId> out_degrees) {
  HUSG_CHECK(v < meta.num_vertices,
             "frontier vertex " << v << " out of range");
  Frontier f = none(meta);
  f.bits_.set(v);
  f.recount(meta, out_degrees);
  return f;
}

Frontier Frontier::from_bits(const StoreMeta& meta, const AtomicBitmap& bits,
                             std::span<const VertexId> out_degrees) {
  Frontier f = none(meta);
  bits.snapshot_into(f.bits_);
  f.recount(meta, out_degrees);
  return f;
}

void Frontier::recount(const StoreMeta& meta,
                       std::span<const VertexId> out_degrees) {
  total_active_ = 0;
  total_degree_ = 0;
  for (std::uint32_t i = 0; i < meta.p(); ++i) {
    std::uint64_t count = 0, degree = 0;
    bits_.for_each_set(meta.interval_begin(i), meta.interval_end(i),
                       [&](std::size_t v) {
                         ++count;
                         degree += out_degrees[v];
                       });
    per_interval_count_[i] = count;
    per_interval_degree_[i] = degree;
    total_active_ += count;
    total_degree_ += degree;
  }
}

}  // namespace husg
