// One entry point to run any algorithm on any of the six engines
// (HUS Hybrid/ROP/COP, GraphChi-like, GridGraph-like, X-Stream-like) over a
// registry dataset, returning uniform measurements.
#pragma once

#include <string>

#include "bench_support/datasets.hpp"
#include "core/engine.hpp"
#include "core/run_stats.hpp"
#include "io/device.hpp"

namespace husg::bench {

enum class SystemKind {
  kHusHybrid,
  kHusRop,
  kHusCop,
  kGraphChi,
  kGridGraph,
  kXStream,
};

enum class AlgoKind { kPageRank, kBfs, kWcc, kSssp };

const char* to_string(SystemKind s);
const char* to_string(AlgoKind a);

/// The registry graphs are ~1000x smaller than the paper's (Table 2). The
/// bench device profiles divide the positioning latency by the same factor
/// so the seek-to-full-sweep ratio — which determines every ROP/COP
/// crossover — matches the paper's testbed (see DESIGN.md, Substitutions).
inline constexpr double kDatasetScaleFactor = 1000.0;

inline DeviceProfile bench_hdd() {
  return DeviceProfile::hdd7200().with_seek_scale(1.0 / kDatasetScaleFactor);
}
inline DeviceProfile bench_ssd() {
  return DeviceProfile::sata_ssd().with_seek_scale(1.0 / kDatasetScaleFactor);
}
inline DeviceProfile bench_nvme() {
  return DeviceProfile::nvme_ssd().with_seek_scale(1.0 / kDatasetScaleFactor);
}

struct RunConfig {
  SystemKind system = SystemKind::kHusHybrid;
  AlgoKind algo = AlgoKind::kBfs;
  std::size_t threads = 16;
  DeviceProfile device = bench_hdd();
  int pagerank_iterations = 5;  ///< paper: 5 sweeps
  /// HUS-only knobs.
  SyncMode sync = SyncMode::kJacobi;
  PredictorFlavor predictor = PredictorFlavor::kDeviceExact;
  DecisionGranularity granularity = DecisionGranularity::kGlobal;
  double alpha = 0.05;
  /// Block-cache budget (0 disables the cache; HUS engines only).
  std::uint64_t cache_budget_bytes = 0;
  double cache_max_block_fraction = 0.25;
  bool cache_fill_rop = true;
  /// false = semi-external vertex values (HUS engines only); the cache
  /// ablation uses this to isolate edge-block traffic.
  bool file_backed_values = true;
};

struct RunOutcome {
  RunStats stats;
  double modeled_seconds = 0;
  double wall_seconds = 0;
  double io_gb = 0;

  std::string to_row() const;
};

/// Runs config.algo on config.system over the dataset; the right graph
/// variant (directed / symmetrized / weighted) is picked per algorithm as in
/// the paper (WCC treats the graph as undirected, SSSP adds weights).
RunOutcome run_system(Dataset& ds, const RunConfig& config);

/// Convenience: GB from bytes.
inline double gb(std::uint64_t bytes) { return static_cast<double>(bytes) / 1e9; }

}  // namespace husg::bench
