// Dataset registry for the reproduction benches.
//
// The paper evaluates on five public graphs (Table 2). This machine has no
// licence-encumbered multi-billion-edge downloads, so each entry is a
// deterministic synthetic stand-in scaled to laptop size with matched
// average degree and the right structural family (skewed R-MAT for the
// social graphs, low-noise R-MAT + chain backbone for the larger-diameter
// web graphs). See DESIGN.md "Substitutions".
//
// Stores for each (dataset, system, variant) are built once under a cache
// root and reused across bench binaries.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/graphchi/chi_store.hpp"
#include "baselines/gridgraph/grid_store.hpp"
#include "baselines/xstream/xstream_store.hpp"
#include "graph/edge_list.hpp"
#include "storage/store.hpp"

namespace husg::bench {

struct DatasetSpec {
  std::string name;        ///< registry key, e.g. "lj-sim"
  std::string paper_name;  ///< e.g. "LiveJournal"
  std::string paper_size;  ///< "4.8M vertices / 69M edges"
  std::string type;        ///< "Social Graph" / "Web Graph"
  unsigned scale;          ///< log2 vertices of the stand-in
  double avg_degree;
  bool web;  ///< web-graph generator (larger diameter) vs social R-MAT
  std::uint64_t seed;
};

/// All five Table-2 stand-ins, smallest first.
const std::vector<DatasetSpec>& all_datasets();
const DatasetSpec& dataset(const std::string& name);

/// Which graph variant a run needs.
enum class GraphVariant { kDirected, kSymmetrized, kWeighted };

/// Lazily-built handle over one dataset: the in-memory edge list plus cached
/// on-disk stores for every engine.
class Dataset {
 public:
  explicit Dataset(const DatasetSpec& spec, std::uint32_t p = 8);

  const DatasetSpec& spec() const { return spec_; }
  std::uint32_t p() const { return p_; }

  const EdgeList& graph(GraphVariant variant);

  /// A deterministic low-degree traversal source (hubs make iteration 1
  /// dense, which hides the hybrid behaviour the benches demonstrate).
  VertexId traversal_source();

  const DualBlockStore& hus_store(GraphVariant variant);
  const baselines::GridStore& grid_store(GraphVariant variant);
  const baselines::ChiStore& chi_store(GraphVariant variant);
  const baselines::XStreamStore& xs_store(GraphVariant variant);

  /// Cache root shared by all datasets (override with HUSG_DATA_DIR).
  static std::filesystem::path cache_root();

 private:
  std::filesystem::path variant_dir(const char* system, GraphVariant variant);

  DatasetSpec spec_;
  std::uint32_t p_;
  std::optional<EdgeList> graphs_[3];
  std::optional<DualBlockStore> hus_[3];
  std::optional<baselines::GridStore> grid_[3];
  std::optional<baselines::ChiStore> chi_[3];
  std::optional<baselines::XStreamStore> xs_[3];
  std::optional<VertexId> source_;
};

}  // namespace husg::bench
