#include "bench_support/datasets.hpp"

#include <cstdlib>

#include "graph/generators.hpp"
#include "util/logging.hpp"

namespace husg::bench {

const std::vector<DatasetSpec>& all_datasets() {
  // Average degrees match the paper's Table 2 graphs; scales are laptop-
  // sized (the paper's conclusions are about per-edge I/O behaviour, which
  // is scale-free).
  static const std::vector<DatasetSpec> kSpecs = {
      {"lj-sim", "LiveJournal", "4.8M vertices / 69M edges", "Social Graph",
       15, 14.4, false, 101},
      {"twitter-sim", "Twitter2010", "42M vertices / 1.5B edges",
       "Social Graph", 16, 24.0, false, 202},
      {"sk-sim", "SK2005", "51M vertices / 1.9B edges", "Social Graph", 16,
       28.0, false, 303},
      {"uk-sim", "UK2007", "106M vertices / 3.7B edges", "Web Graph", 16,
       23.0, true, 404},
      {"ukunion-sim", "UKunion", "133M vertices / 5.5B edges", "Web Graph",
       17, 20.0, true, 505},
  };
  return kSpecs;
}

const DatasetSpec& dataset(const std::string& name) {
  for (const DatasetSpec& s : all_datasets()) {
    if (s.name == name) return s;
  }
  throw DataError("unknown dataset '" + name + "'");
}

Dataset::Dataset(const DatasetSpec& spec, std::uint32_t p)
    : spec_(spec), p_(p) {}

std::filesystem::path Dataset::cache_root() {
  // Bump the version component whenever generators or store formats change,
  // so stale cached stores are never reused.
  constexpr const char* kCacheVersion = "v3";
  if (const char* env = std::getenv("HUSG_DATA_DIR")) {
    return std::filesystem::path(env) / kCacheVersion;
  }
  return std::filesystem::temp_directory_path() / "husg_bench_data" /
         kCacheVersion;
}

const EdgeList& Dataset::graph(GraphVariant variant) {
  auto idx = static_cast<std::size_t>(variant);
  if (!graphs_[idx]) {
    switch (variant) {
      case GraphVariant::kDirected:
        graphs_[idx] = spec_.web
                           ? gen::webgraph(spec_.scale, spec_.avg_degree,
                                           spec_.seed)
                           : gen::rmat(spec_.scale, spec_.avg_degree,
                                       spec_.seed);
        break;
      case GraphVariant::kSymmetrized:
        graphs_[idx] = graph(GraphVariant::kDirected).symmetrized();
        break;
      case GraphVariant::kWeighted:
        graphs_[idx] = gen::with_random_weights(
            graph(GraphVariant::kDirected), spec_.seed ^ 0x5EED);
        break;
    }
  }
  return *graphs_[idx];
}

VertexId Dataset::traversal_source() {
  if (!source_) {
    const EdgeList& g = graph(GraphVariant::kDirected);
    auto deg = g.out_degrees();
    VertexId pick = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (deg[v] >= 2 && deg[v] <= 8) {
        pick = v;
        break;
      }
    }
    source_ = pick;
  }
  return *source_;
}

std::filesystem::path Dataset::variant_dir(const char* system,
                                           GraphVariant variant) {
  static const char* kVariantNames[] = {"dir", "sym", "wgt"};
  auto dir = cache_root() / spec_.name /
             (std::string(system) + "_p" + std::to_string(p_) + "_" +
              kVariantNames[static_cast<std::size_t>(variant)]);
  return dir;
}

namespace {
/// Opens the cached store if present, else builds it.
template <class Store, class Build>
Store open_or_build(const std::filesystem::path& dir, Build&& build) {
  if (std::filesystem::exists(dir)) {
    try {
      return Store::open(dir);
    } catch (const std::exception& e) {
      HUSG_WARN << "cached store at " << dir.string()
                << " unusable, rebuilding: " << e.what();
      remove_tree(dir);
    }
  }
  return build(dir);
}
}  // namespace

const DualBlockStore& Dataset::hus_store(GraphVariant variant) {
  auto idx = static_cast<std::size_t>(variant);
  if (!hus_[idx]) {
    hus_[idx] = open_or_build<DualBlockStore>(
        variant_dir("hus", variant), [&](const std::filesystem::path& dir) {
          return DualBlockStore::build(graph(variant), dir, StoreOptions{p_});
        });
  }
  return *hus_[idx];
}

const baselines::GridStore& Dataset::grid_store(GraphVariant variant) {
  auto idx = static_cast<std::size_t>(variant);
  if (!grid_[idx]) {
    grid_[idx] = open_or_build<baselines::GridStore>(
        variant_dir("grid", variant), [&](const std::filesystem::path& dir) {
          return baselines::GridStore::build(graph(variant), dir, p_);
        });
  }
  return *grid_[idx];
}

const baselines::ChiStore& Dataset::chi_store(GraphVariant variant) {
  auto idx = static_cast<std::size_t>(variant);
  if (!chi_[idx]) {
    chi_[idx] = open_or_build<baselines::ChiStore>(
        variant_dir("chi", variant), [&](const std::filesystem::path& dir) {
          return baselines::ChiStore::build(graph(variant), dir, p_);
        });
  }
  return *chi_[idx];
}

const baselines::XStreamStore& Dataset::xs_store(GraphVariant variant) {
  auto idx = static_cast<std::size_t>(variant);
  if (!xs_[idx]) {
    xs_[idx] = open_or_build<baselines::XStreamStore>(
        variant_dir("xs", variant), [&](const std::filesystem::path& dir) {
          return baselines::XStreamStore::build(graph(variant), dir, p_);
        });
  }
  return *xs_[idx];
}

}  // namespace husg::bench
