// Paper-style fixed-width table and series printers for the bench binaries,
// plus a machine-readable JSON run log (BENCH_<name>.json) so successive
// checkouts can be compared as a trajectory.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/run_stats.hpp"
#include "obs/audit.hpp"

namespace husg::bench {

/// Fixed-width text table: header row, separator, data rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells);
  /// Renders to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "fig/table" banner with the paper reference and the reproduction claim.
void banner(const std::string& title, const std::string& paper_claim);

/// Prints one named numeric series (per-iteration plots like Fig. 1/8).
void print_series(const std::string& name, const std::vector<double>& ys,
                  const std::string& unit);

/// Formats helpers.
std::string fmt(double v, int precision = 2);
std::string fmt_ratio(double v);

/// Machine-readable run log. Each add_run records the uniform measurement
/// schema — iterations, modeled/wall seconds, I/O byte counts, and the
/// block-cache counters (hit rate, bytes saved) when the run used a cache.
/// write() emits `BENCH_<name>.json` so trajectories of the same bench
/// across checkouts can be diffed/plotted without parsing table output.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : name_(std::move(bench_name)) {}

  void add_run(const std::string& label, const RunStats& stats);
  /// Same, with predictor-audit accuracy fields (predictor_entries,
  /// predictor_mean_rel_error, ...) appended to the run object.
  void add_run(const std::string& label, const RunStats& stats,
               const obs::AuditSummary& audit);
  /// Same, with arbitrary extra counters appended to the run object (e.g.
  /// perf_smoke's heatmap totals). Keys must be unique within the run.
  void add_run(const std::string& label, const RunStats& stats,
               const std::vector<std::pair<std::string, std::uint64_t>>& extras);
  /// Same, with both integer counters and derived float metrics (e.g.
  /// bytes/edge ratios, gated by bench_regress.py with --model-tol).
  void add_run(const std::string& label, const RunStats& stats,
               const std::vector<std::pair<std::string, std::uint64_t>>& extras,
               const std::vector<std::pair<std::string, double>>& ratios);
  /// Writes BENCH_<name>.json into `dir`; returns the path written.
  std::string write(const std::string& dir = ".") const;

 private:
  std::string name_;
  std::vector<std::string> entries_;  ///< pre-serialized JSON objects
};

}  // namespace husg::bench
