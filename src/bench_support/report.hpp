// Paper-style fixed-width table and series printers for the bench binaries.
#pragma once

#include <string>
#include <vector>

namespace husg::bench {

/// Fixed-width text table: header row, separator, data rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells);
  /// Renders to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "fig/table" banner with the paper reference and the reproduction claim.
void banner(const std::string& title, const std::string& paper_claim);

/// Prints one named numeric series (per-iteration plots like Fig. 1/8).
void print_series(const std::string& name, const std::vector<double>& ys,
                  const std::string& unit);

/// Formats helpers.
std::string fmt(double v, int precision = 2);
std::string fmt_ratio(double v);

}  // namespace husg::bench
