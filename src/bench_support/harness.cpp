#include "bench_support/harness.hpp"

#include <sstream>

#include "algos/bfs.hpp"
#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "algos/wcc.hpp"
#include "baselines/graphchi/chi_engine.hpp"
#include "baselines/gridgraph/grid_engine.hpp"
#include "baselines/xstream/xstream_engine.hpp"
#include "util/format.hpp"

namespace husg::bench {

const char* to_string(SystemKind s) {
  switch (s) {
    case SystemKind::kHusHybrid:
      return "HUS-Graph";
    case SystemKind::kHusRop:
      return "HUS-ROP";
    case SystemKind::kHusCop:
      return "HUS-COP";
    case SystemKind::kGraphChi:
      return "GraphChi";
    case SystemKind::kGridGraph:
      return "GridGraph";
    case SystemKind::kXStream:
      return "X-Stream";
  }
  return "?";
}

const char* to_string(AlgoKind a) {
  switch (a) {
    case AlgoKind::kPageRank:
      return "PageRank";
    case AlgoKind::kBfs:
      return "BFS";
    case AlgoKind::kWcc:
      return "WCC";
    case AlgoKind::kSssp:
      return "SSSP";
  }
  return "?";
}

std::string RunOutcome::to_row() const {
  std::ostringstream os;
  os << human_seconds(modeled_seconds) << " (" << io_gb << " GB, "
     << stats.iterations_run() << " iters)";
  return os.str();
}

namespace {

GraphVariant variant_for(AlgoKind algo) {
  switch (algo) {
    case AlgoKind::kWcc:
      return GraphVariant::kSymmetrized;
    case AlgoKind::kSssp:
      return GraphVariant::kWeighted;
    default:
      return GraphVariant::kDirected;
  }
}

RunOutcome finish(RunStats stats) {
  RunOutcome out;
  out.modeled_seconds = stats.modeled_seconds();
  out.wall_seconds = stats.wall_seconds;
  out.io_gb = gb(stats.total_io.total_bytes());
  out.stats = std::move(stats);
  return out;
}

/// Runs one algorithm on the HUS engine.
RunOutcome run_hus(Dataset& ds, const RunConfig& cfg) {
  GraphVariant variant = variant_for(cfg.algo);
  const DualBlockStore& store = ds.hus_store(variant);

  EngineOptions opts;
  opts.mode = cfg.system == SystemKind::kHusRop   ? UpdateMode::kRop
              : cfg.system == SystemKind::kHusCop ? UpdateMode::kCop
                                                  : UpdateMode::kHybrid;
  opts.sync = cfg.sync;
  opts.predictor = cfg.predictor;
  opts.granularity = cfg.granularity;
  opts.threads = cfg.threads;
  opts.device = cfg.device;
  opts.alpha = cfg.alpha;
  opts.cache_budget_bytes = cfg.cache_budget_bytes;
  opts.cache_max_block_fraction = cfg.cache_max_block_fraction;
  opts.cache_fill_rop = cfg.cache_fill_rop;
  opts.file_backed_values = cfg.file_backed_values;
  if (cfg.algo == AlgoKind::kPageRank) {
    opts.max_iterations = cfg.pagerank_iterations;
  }
  Engine engine(store, opts);

  switch (cfg.algo) {
    case AlgoKind::kPageRank: {
      PageRankProgram pr;
      auto r = engine.run(
          pr, Frontier::all(store.meta(), store.out_degrees()));
      return finish(std::move(r.stats));
    }
    case AlgoKind::kBfs: {
      BfsProgram bfs{.source = ds.traversal_source()};
      auto r = engine.run(bfs, Frontier::single(store.meta(), bfs.source,
                                                store.out_degrees()));
      return finish(std::move(r.stats));
    }
    case AlgoKind::kWcc: {
      WccProgram wcc;
      auto r =
          engine.run(wcc, Frontier::all(store.meta(), store.out_degrees()));
      return finish(std::move(r.stats));
    }
    case AlgoKind::kSssp: {
      SsspProgram sssp{.source = ds.traversal_source()};
      auto r = engine.run(sssp, Frontier::single(store.meta(), sssp.source,
                                                 store.out_degrees()));
      return finish(std::move(r.stats));
    }
  }
  throw DataError("unreachable algo kind");
}

template <class EngineT, class StoreT, class OptionsT>
RunOutcome run_baseline_engine(Dataset& ds, const StoreT& store,
                               OptionsT opts, const RunConfig& cfg) {
  using baselines::StartSet;
  opts.threads = cfg.threads;
  opts.device = cfg.device;
  if (cfg.algo == AlgoKind::kPageRank) {
    opts.max_iterations = cfg.pagerank_iterations;
  }
  EngineT engine(store, opts);
  switch (cfg.algo) {
    case AlgoKind::kPageRank: {
      PageRankProgram pr;
      auto r = engine.run(pr, StartSet::all());
      return finish(std::move(r.stats));
    }
    case AlgoKind::kBfs: {
      BfsProgram bfs{.source = ds.traversal_source()};
      auto r = engine.run(bfs, StartSet::single(bfs.source));
      return finish(std::move(r.stats));
    }
    case AlgoKind::kWcc: {
      WccProgram wcc;
      auto r = engine.run(wcc, StartSet::all());
      return finish(std::move(r.stats));
    }
    case AlgoKind::kSssp: {
      SsspProgram sssp{.source = ds.traversal_source()};
      auto r = engine.run(sssp, StartSet::single(sssp.source));
      return finish(std::move(r.stats));
    }
  }
  throw DataError("unreachable algo kind");
}

}  // namespace

RunOutcome run_system(Dataset& ds, const RunConfig& cfg) {
  GraphVariant variant = variant_for(cfg.algo);
  switch (cfg.system) {
    case SystemKind::kHusHybrid:
    case SystemKind::kHusRop:
    case SystemKind::kHusCop:
      return run_hus(ds, cfg);
    case SystemKind::kGraphChi:
      return run_baseline_engine<baselines::ChiEngine>(
          ds, ds.chi_store(variant), baselines::ChiEngine::Options{}, cfg);
    case SystemKind::kGridGraph:
      return run_baseline_engine<baselines::GridEngine>(
          ds, ds.grid_store(variant), baselines::GridEngine::Options{}, cfg);
    case SystemKind::kXStream:
      return run_baseline_engine<baselines::XStreamEngine>(
          ds, ds.xs_store(variant), baselines::XStreamEngine::Options{}, cfg);
  }
  throw DataError("unreachable system kind");
}

}  // namespace husg::bench
