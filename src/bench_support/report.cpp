#include "bench_support/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace husg::bench {

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("  ");
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::vector<std::string> sep(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep[c] = std::string(widths[c], '-');
  }
  print_row(sep);
  for (const auto& row : rows_) print_row(row);
}

void banner(const std::string& title, const std::string& paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!paper_claim.empty()) {
    std::printf("paper: %s\n", paper_claim.c_str());
  }
  std::printf("================================================================\n");
}

void print_series(const std::string& name, const std::vector<double>& ys,
                  const std::string& unit) {
  std::printf("  %s (%s):", name.c_str(), unit.c_str());
  for (double y : ys) std::printf(" %.4g", y);
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_ratio(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1fx", v);
  return buf;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

namespace {

/// Common run-object body, without the closing brace so callers can append.
std::string run_json(const std::string& label, const RunStats& stats) {
  std::ostringstream os;
  os << "    {\"label\": \"" << json_escape(label) << "\","
     << " \"iterations\": " << stats.iterations_run() << ","
     << " \"modeled_seconds\": " << stats.modeled_seconds() << ","
     << " \"wall_seconds\": " << stats.wall_seconds << ","
     << " \"io_total_bytes\": " << stats.total_io.total_bytes() << ","
     << " \"io_seq_read_bytes\": " << stats.total_io.seq_read_bytes << ","
     << " \"io_rand_read_bytes\": " << stats.total_io.rand_read_bytes << ","
     << " \"io_rand_read_ops\": " << stats.total_io.rand_read_ops << ","
     << " \"cache_hits\": " << stats.cache.hits << ","
     << " \"cache_misses\": " << stats.cache.misses << ","
     << " \"cache_hit_rate\": " << stats.cache.hit_rate() << ","
     << " \"cache_bytes_saved\": " << stats.cache.bytes_saved << ","
     << " \"cache_evictions\": " << stats.cache.evictions << ","
     << " \"cache_cross_job_hits\": " << stats.cache.cross_job_hits;
  return os.str();
}

}  // namespace

void JsonReport::add_run(const std::string& label, const RunStats& stats) {
  entries_.push_back(run_json(label, stats) + "}");
}

void JsonReport::add_run(
    const std::string& label, const RunStats& stats,
    const std::vector<std::pair<std::string, std::uint64_t>>& extras) {
  std::ostringstream os;
  os << run_json(label, stats);
  for (const auto& [key, value] : extras) {
    os << ", \"" << json_escape(key) << "\": " << value;
  }
  os << "}";
  entries_.push_back(os.str());
}

void JsonReport::add_run(
    const std::string& label, const RunStats& stats,
    const std::vector<std::pair<std::string, std::uint64_t>>& extras,
    const std::vector<std::pair<std::string, double>>& ratios) {
  std::ostringstream os;
  os << run_json(label, stats);
  for (const auto& [key, value] : extras) {
    os << ", \"" << json_escape(key) << "\": " << value;
  }
  for (const auto& [key, value] : ratios) {
    os << ", \"" << json_escape(key) << "\": " << value;
  }
  os << "}";
  entries_.push_back(os.str());
}

void JsonReport::add_run(const std::string& label, const RunStats& stats,
                         const obs::AuditSummary& audit) {
  std::ostringstream os;
  os << run_json(label, stats) << ","
     << " \"predictor_entries\": " << audit.entries << ","
     << " \"predictor_evaluated\": " << audit.evaluated << ","
     << " \"predictor_mean_rel_error\": " << audit.mean_rel_error << ","
     << " \"predictor_mean_rel_error_rop\": " << audit.mean_rel_error_rop
     << "," << " \"predictor_mean_rel_error_cop\": "
     << audit.mean_rel_error_cop << ","
     << " \"predictor_max_rel_error\": " << audit.max_rel_error << "}";
  entries_.push_back(os.str());
}

std::string JsonReport::write(const std::string& dir) const {
  std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream f(path);
  f << "{\n  \"bench\": \"" << json_escape(name_) << "\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    f << entries_[i] << (i + 1 < entries_.size() ? ",\n" : "\n");
  }
  f << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return path;
}

}  // namespace husg::bench
