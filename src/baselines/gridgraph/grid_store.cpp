#include "baselines/gridgraph/grid_store.hpp"

#include <algorithm>
#include <cstring>

#include "baselines/common.hpp"
#include "io/file.hpp"

namespace husg::baselines {

namespace {
constexpr std::uint64_t kGridMagic = 0x4855534747524431ULL;  // HUSGGRD1
constexpr const char* kMetaFile = "grid_meta.bin";
constexpr const char* kDataFile = "grid.dat";
constexpr const char* kDegFile = "grid_degrees.bin";
}  // namespace

GridStore GridStore::build(const EdgeList& graph,
                           const std::filesystem::path& dir, std::uint32_t p) {
  HUSG_CHECK(p > 0, "grid: p must be positive");
  HUSG_CHECK(graph.num_vertices() > 0, "grid: empty vertex set");
  ensure_directory(dir);

  GridMeta meta;
  meta.num_vertices = graph.num_vertices();
  meta.num_edges = graph.num_edges();
  meta.p = p;
  meta.weighted = graph.weighted();
  meta.boundaries = equal_boundaries(meta.num_vertices, p);
  meta.blocks.assign(static_cast<std::size_t>(p) * p, GridBlockExtent{});

  std::vector<std::uint32_t> interval_of(meta.num_vertices);
  for (std::uint32_t k = 0; k < p; ++k) {
    for (VertexId v = meta.boundaries[k]; v < meta.boundaries[k + 1]; ++v) {
      interval_of[v] = k;
    }
  }

  // Bucket edges per block, then write blocks back to back.
  std::vector<std::vector<EdgeId>> bucket(meta.blocks.size());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& ed = graph.edge(e);
    bucket[static_cast<std::size_t>(interval_of[ed.src]) * p +
           interval_of[ed.dst]]
        .push_back(e);
  }

  File data(dir / kDataFile, File::Mode::kWrite);
  std::uint64_t off = 0;
  std::vector<char> buf;
  for (std::uint32_t i = 0; i < p; ++i) {
    for (std::uint32_t j = 0; j < p; ++j) {
      auto& ids = bucket[static_cast<std::size_t>(i) * p + j];
      GridBlockExtent& ext = meta.blocks[static_cast<std::size_t>(i) * p + j];
      ext.offset = off;
      ext.edge_count = ids.size();
      ext.bytes = ids.size() * meta.record_bytes();
      buf.resize(ext.bytes);
      for (std::size_t k = 0; k < ids.size(); ++k) {
        const Edge& e = graph.edge(ids[k]);
        if (meta.weighted) {
          WGridRecord r{e.src, e.dst, graph.weight(ids[k])};
          std::memcpy(buf.data() + k * sizeof(r), &r, sizeof(r));
        } else {
          GridRecord r{e.src, e.dst};
          std::memcpy(buf.data() + k * sizeof(r), &r, sizeof(r));
        }
      }
      if (!buf.empty()) data.pwrite_exact(buf.data(), buf.size(), off);
      off += ext.bytes;
      ids.clear();
      ids.shrink_to_fit();
    }
  }

  // Meta: header + boundaries + extents.
  {
    File f(dir / kMetaFile, File::Mode::kWrite);
    std::uint64_t hdr[5] = {kGridMagic, meta.num_vertices, meta.num_edges,
                            meta.p, meta.weighted ? 1u : 0u};
    std::uint64_t o = 0;
    f.pwrite_exact(hdr, sizeof(hdr), o);
    o += sizeof(hdr);
    f.pwrite_exact(meta.boundaries.data(),
                   meta.boundaries.size() * sizeof(VertexId), o);
    o += meta.boundaries.size() * sizeof(VertexId);
    f.pwrite_exact(meta.blocks.data(),
                   meta.blocks.size() * sizeof(GridBlockExtent), o);
  }
  {
    File f(dir / kDegFile, File::Mode::kWrite);
    auto od = graph.out_degrees();
    auto id = graph.in_degrees();
    f.pwrite_exact(od.data(), od.size() * sizeof(VertexId), 0);
    f.pwrite_exact(id.data(), id.size() * sizeof(VertexId),
                   od.size() * sizeof(VertexId));
  }
  return open(dir);
}

GridStore GridStore::open(const std::filesystem::path& dir) {
  GridStore s;
  s.dir_ = dir;
  s.io_ = std::make_unique<IoStats>();
  File meta_file(dir / kMetaFile, File::Mode::kRead);
  std::uint64_t hdr[5];
  HUSG_CHECK(meta_file.size() >= sizeof(hdr), "grid meta too small");
  meta_file.pread_exact(hdr, sizeof(hdr), 0);
  HUSG_CHECK(hdr[0] == kGridMagic, "bad grid magic");
  s.meta_.num_vertices = hdr[1];
  s.meta_.num_edges = hdr[2];
  s.meta_.p = static_cast<std::uint32_t>(hdr[3]);
  s.meta_.weighted = hdr[4] != 0;
  HUSG_CHECK(s.meta_.p > 0, "grid meta has zero partitions");
  std::size_t p = s.meta_.p;
  std::uint64_t expected = sizeof(hdr) + (p + 1) * sizeof(VertexId) +
                           p * p * sizeof(GridBlockExtent);
  HUSG_CHECK(meta_file.size() == expected, "grid meta size mismatch");
  s.meta_.boundaries.resize(p + 1);
  std::uint64_t o = sizeof(hdr);
  meta_file.pread_exact(s.meta_.boundaries.data(),
                        (p + 1) * sizeof(VertexId), o);
  o += (p + 1) * sizeof(VertexId);
  s.meta_.blocks.resize(p * p);
  meta_file.pread_exact(s.meta_.blocks.data(),
                        p * p * sizeof(GridBlockExtent), o);

  s.data_ = TrackedFile(dir / kDataFile, File::Mode::kRead, s.io_.get());
  std::uint64_t total = 0, edges = 0;
  for (const auto& b : s.meta_.blocks) {
    total += b.bytes;
    edges += b.edge_count;
  }
  HUSG_CHECK(edges == s.meta_.num_edges, "grid block counts do not sum to |E|");
  HUSG_CHECK(s.data_.size() == total, "grid.dat truncated");

  TrackedFile deg(dir / kDegFile, File::Mode::kRead, s.io_.get());
  std::uint64_t n = s.meta_.num_vertices;
  HUSG_CHECK(deg.size() == 2 * n * sizeof(VertexId), "grid degrees mismatch");
  s.out_degrees_.resize(n);
  s.in_degrees_.resize(n);
  deg.read_sequential(s.out_degrees_.data(), n * sizeof(VertexId), 0);
  deg.read_sequential(s.in_degrees_.data(), n * sizeof(VertexId),
                      n * sizeof(VertexId));
  return s;
}

}  // namespace husg::baselines
