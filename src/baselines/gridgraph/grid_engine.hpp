// GridGraph-like engine: streaming-apply push over the 2-D edge grid.
//
// Per iteration it streams edge blocks in row-major order and pushes updates
// from active sources to destinations ("one streaming-apply phase", avoiding
// GraphChi's intermediate writes). Selective scheduling skips a whole block
// when its source interval has no active vertices — the block granularity is
// the key difference from HUS-Graph's ROP, which point-loads only the active
// vertices' edges *within* a block and therefore reads much less when a
// block holds few active sources.
//
// Vertex values are kept in two in-memory arrays (current + previous) and
// mirrored through one read + one write of every interval's values per
// iteration, matching GridGraph's vertex streaming.
//
// Synchronization is Jacobi (sources read the previous iteration's values),
// so results are comparable bit-for-bit with the reference oracles.
#pragma once

#include <atomic>

#include "baselines/common.hpp"
#include "baselines/gridgraph/grid_store.hpp"
#include "core/program.hpp"
#include "core/run_stats.hpp"
#include "io/tracked_file.hpp"
#include "util/timer.hpp"

namespace husg::baselines {

class GridEngine {
 public:
  struct Options : BaselineOptions {
    /// Skip blocks whose source interval is fully inactive (GridGraph's
    /// selective scheduling; on by default as in the real system).
    bool selective_scheduling = true;
  };

  GridEngine(const GridStore& store, Options options)
      : store_(&store), opts_(std::move(options)) {}

  template <VertexProgram P>
  BaselineResult<typename P::Value> run(const P& prog, const StartSet& start);

 private:
  /// Charges the vertex-chunk streaming of one processed block: GridGraph's
  /// 2-level streaming-apply reads the source chunk's values and
  /// reads+writes the destination chunk's values around every edge block it
  /// streams.
  void charge_block_vertex_values(std::uint32_t i, std::uint32_t j,
                                  std::size_t value_bytes) const {
    const GridMeta& meta = store_->meta();
    std::uint64_t src_bytes =
        (meta.boundaries[i + 1] - meta.boundaries[i]) * value_bytes;
    std::uint64_t dst_bytes =
        (meta.boundaries[j + 1] - meta.boundaries[j]) * value_bytes;
    store_->io().add_seq_read(src_bytes);
    store_->io().add_seq_read(dst_bytes);
    store_->io().add_write(dst_bytes);
  }

  const GridStore* store_;
  Options opts_;
};

template <VertexProgram P>
BaselineResult<typename P::Value> GridEngine::run(const P& prog,
                                                  const StartSet& start) {
  using V = typename P::Value;
  const GridMeta& meta = store_->meta();
  const std::uint64_t n = meta.num_vertices;
  const std::uint32_t p = meta.p;
  ProgramContext ctx{store_->out_degrees(), store_->in_degrees(), 0};

  BaselineResult<V> result;
  std::vector<V> vals(n), prev(n);
  for (VertexId v = 0; v < n; ++v) vals[v] = prog.initial(ctx, v);
  Bitmap active = start.materialize(n);
  std::vector<V> acc;  // accumulating programs

  // Per-interval active counts for selective scheduling.
  auto count_active = [&](std::uint32_t i) {
    return active.count_range(meta.boundaries[i], meta.boundaries[i + 1]);
  };

  for (int iter = 0;
       iter < opts_.max_iterations && active.count() > 0; ++iter) {
    Timer timer;
    IoSnapshot before = store_->io().snapshot();
    IterationStats istats;
    istats.iteration = iter;
    ctx.iteration = iter;
    istats.active_vertices = active.count();

    prev = vals;
    Bitmap next(n);
    std::uint64_t scanned = 0;

    if constexpr (P::kAccumulating) {
      acc.assign(n, V{});
      for (VertexId v = 0; v < n; ++v) acc[v] = prog.gather_zero(ctx, v);
    }

    for (std::uint32_t i = 0; i < p; ++i) {
      bool row_active = !opts_.selective_scheduling || count_active(i) > 0;
      if (!row_active && !P::kAccumulating) continue;
      for (std::uint32_t j = 0; j < p; ++j) {
        const GridBlockExtent& block = meta.block(i, j);
        if (block.edge_count == 0) continue;
        scanned += block.edge_count;
        charge_block_vertex_values(i, j, sizeof(V));
        store_->stream_block(i, j, [&](VertexId s, VertexId d, Weight w) {
          if constexpr (P::kAccumulating) {
            prog.gather(ctx, acc[d], prev[s], s, w);
          } else {
            if (!active.get(s)) return;
            if (prog.update(ctx, prev[s], s, vals[d], d, w)) next.set(d);
          }
        });
      }
    }

    if constexpr (P::kAccumulating) {
      for (VertexId v = 0; v < n; ++v) {
        V a = acc[v];
        if (prog.apply(ctx, v, a, vals[v])) next.set(v);
        vals[v] = a;
      }
    }

    active = std::move(next);

    istats.active_edges = scanned;
    istats.edges_processed = scanned;
    istats.io = store_->io().snapshot() - before;
    istats.wall_seconds = timer.seconds();
    istats.modeled_io_seconds = opts_.device.modeled_seconds(istats.io);
    istats.modeled_cpu_seconds = modeled_cpu(opts_, scanned);
    result.stats.add_iteration(std::move(istats));
  }

  result.values = std::move(vals);
  return result;
}

}  // namespace husg::baselines
