// GridGraph-like on-disk format: a P×P grid of edge blocks, each holding raw
// (src, dst[, weight]) records — the edge-list layout the real GridGraph
// streams. Per-edge footprint is 8 bytes unweighted / 12 weighted, i.e. ~2x
// HUS-Graph's CSR-style blocks; the paper credits that difference for its
// PageRank I/O advantage (Fig. 9: 1.9x).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "io/io_stats.hpp"
#include "io/tracked_file.hpp"
#include "util/common.hpp"

namespace husg::baselines {

struct GridRecord {
  VertexId src;
  VertexId dst;
};
static_assert(sizeof(GridRecord) == 8);

struct WGridRecord {
  VertexId src;
  VertexId dst;
  Weight weight;
};
static_assert(sizeof(WGridRecord) == 12);

struct GridBlockExtent {
  std::uint64_t offset = 0;  ///< bytes into grid.dat
  std::uint64_t bytes = 0;
  std::uint64_t edge_count = 0;
};

struct GridMeta {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t p = 0;
  bool weighted = false;
  std::vector<VertexId> boundaries;
  std::vector<GridBlockExtent> blocks;  ///< row-major (i*p + j)

  std::uint32_t record_bytes() const {
    return weighted ? sizeof(WGridRecord) : sizeof(GridRecord);
  }
  const GridBlockExtent& block(std::uint32_t i, std::uint32_t j) const {
    return blocks[static_cast<std::size_t>(i) * p + j];
  }
};

class GridStore {
 public:
  static GridStore build(const EdgeList& graph,
                         const std::filesystem::path& dir, std::uint32_t p);
  static GridStore open(const std::filesystem::path& dir);

  GridStore(GridStore&&) = default;
  GridStore& operator=(GridStore&&) = default;

  const GridMeta& meta() const { return meta_; }
  IoStats& io() const { return *io_; }
  std::span<const VertexId> out_degrees() const { return out_degrees_; }
  std::span<const VertexId> in_degrees() const { return in_degrees_; }
  const std::filesystem::path& dir() const { return dir_; }

  /// Streams block (i,j), invoking fn(src, dst, weight) per edge.
  template <class Fn>
  void stream_block(std::uint32_t i, std::uint32_t j, Fn&& fn) const;

 private:
  GridStore() = default;

  std::filesystem::path dir_;
  GridMeta meta_;
  std::unique_ptr<IoStats> io_;
  TrackedFile data_;
  std::vector<VertexId> out_degrees_;
  std::vector<VertexId> in_degrees_;
};

template <class Fn>
void GridStore::stream_block(std::uint32_t i, std::uint32_t j, Fn&& fn) const {
  const GridBlockExtent& b = meta_.block(i, j);
  if (b.bytes == 0) return;
  std::vector<char> buf(b.bytes);
  // Whole-block streaming read in chunk-sized sequential ops.
  constexpr std::uint64_t kChunk = 4u << 20;
  std::uint64_t pos = 0;
  while (pos < b.bytes) {
    std::uint64_t len = std::min<std::uint64_t>(kChunk, b.bytes - pos);
    data_.read_sequential(buf.data() + pos, len, b.offset + pos);
    pos += len;
  }
  if (meta_.weighted) {
    const WGridRecord* recs = reinterpret_cast<const WGridRecord*>(buf.data());
    for (std::uint64_t k = 0; k < b.edge_count; ++k) {
      fn(recs[k].src, recs[k].dst, recs[k].weight);
    }
  } else {
    const GridRecord* recs = reinterpret_cast<const GridRecord*>(buf.data());
    for (std::uint64_t k = 0; k < b.edge_count; ++k) {
      fn(recs[k].src, recs[k].dst, Weight{1});
    }
  }
}

}  // namespace husg::baselines
