// Shared plumbing for the three baseline systems (GraphChi-like,
// GridGraph-like, X-Stream-like). Each baseline is a faithful miniature of
// the corresponding system's I/O architecture, runs the same VertexProgram
// definitions as the HUS engine, and reports the same RunStats, so the
// cross-system benchmarks compare storage/update architectures only.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "core/program.hpp"
#include "core/run_stats.hpp"
#include "io/device.hpp"
#include "util/bitmap.hpp"
#include "util/common.hpp"

namespace husg::baselines {

struct BaselineOptions {
  std::size_t threads = 4;
  DeviceProfile device = DeviceProfile::sata_ssd();
  int max_iterations = 100000;
  double cpu_ns_per_edge = 4.0;
  /// Effective parallel speedup cap for the modeled CPU component. GraphChi's
  /// deterministic parallelism caps low; streaming engines scale with the
  /// thread count (see DESIGN.md).
  double parallel_cap = 1e9;
};

/// Initial active set for a baseline run.
struct StartSet {
  enum class Kind { kAll, kSingle, kNone } kind = Kind::kAll;
  VertexId vertex = 0;

  static StartSet all() { return {Kind::kAll, 0}; }
  static StartSet single(VertexId v) { return {Kind::kSingle, v}; }

  Bitmap materialize(std::uint64_t n) const {
    Bitmap b(n);
    switch (kind) {
      case Kind::kAll:
        b.set_all();
        break;
      case Kind::kSingle:
        HUSG_CHECK(vertex < n, "start vertex out of range");
        b.set(vertex);
        break;
      case Kind::kNone:
        break;
    }
    return b;
  }
};

template <class V>
struct BaselineResult {
  std::vector<V> values;
  RunStats stats;
};

/// Modeled CPU seconds for one iteration of a baseline.
inline double modeled_cpu(const BaselineOptions& opts,
                          std::uint64_t edges_scanned) {
  double eff = std::min<double>(static_cast<double>(opts.threads),
                                opts.parallel_cap);
  if (eff < 1.0) eff = 1.0;
  return opts.cpu_ns_per_edge * 1e-9 * static_cast<double>(edges_scanned) /
         eff;
}

/// Equal-vertex interval boundaries (all baselines partition this way).
inline std::vector<VertexId> equal_boundaries(std::uint64_t n,
                                              std::uint32_t p) {
  std::vector<VertexId> b(p + 1);
  for (std::uint32_t k = 0; k <= p; ++k) {
    b[k] = static_cast<VertexId>(n * k / p);
  }
  return b;
}

}  // namespace husg::baselines
