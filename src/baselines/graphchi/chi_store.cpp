#include "baselines/graphchi/chi_store.hpp"

#include <algorithm>
#include <cstring>

#include "baselines/common.hpp"
#include "io/file.hpp"

namespace husg::baselines {

namespace {
constexpr std::uint64_t kChiMagic = 0x4855534743484931ULL;  // HUSGCHI1
constexpr const char* kMetaFile = "chi_meta.bin";
constexpr const char* kDataFile = "shards.dat";
constexpr const char* kDegFile = "chi_degrees.bin";
}  // namespace

ChiStore ChiStore::build(const EdgeList& graph,
                         const std::filesystem::path& dir, std::uint32_t p) {
  HUSG_CHECK(p > 0, "chi: p must be positive");
  HUSG_CHECK(graph.num_vertices() > 0, "chi: empty vertex set");
  ensure_directory(dir);

  ChiMeta meta;
  meta.num_vertices = graph.num_vertices();
  meta.num_edges = graph.num_edges();
  meta.p = p;
  meta.weighted = graph.weighted();
  meta.boundaries = equal_boundaries(meta.num_vertices, p);
  meta.shards.assign(p, ChiShardExtent{});
  meta.windows.assign(static_cast<std::size_t>(p) * (p + 1), 0);

  std::vector<std::uint32_t> interval_of(meta.num_vertices);
  for (std::uint32_t k = 0; k < p; ++k) {
    for (VertexId v = meta.boundaries[k]; v < meta.boundaries[k + 1]; ++v) {
      interval_of[v] = k;
    }
  }

  // Shard j = in-edges of interval j, sorted by (src, dst).
  std::vector<std::vector<EdgeId>> bucket(p);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    bucket[interval_of[graph.edge(e).dst]].push_back(e);
  }

  File data(dir / kDataFile, File::Mode::kWrite);
  std::uint64_t off = 0, global_edge = 0;
  std::vector<char> buf;
  for (std::uint32_t j = 0; j < p; ++j) {
    auto& ids = bucket[j];
    std::sort(ids.begin(), ids.end(), [&](EdgeId a, EdgeId b) {
      const Edge& ea = graph.edge(a);
      const Edge& eb = graph.edge(b);
      if (ea.src != eb.src) return ea.src < eb.src;
      return ea.dst < eb.dst;
    });
    ChiShardExtent& ext = meta.shards[j];
    ext.offset = off;
    ext.edge_count = ids.size();
    ext.bytes = ids.size() * meta.record_bytes();
    ext.first_edge = global_edge;
    buf.resize(ext.bytes);
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const Edge& e = graph.edge(ids[k]);
      if (meta.weighted) {
        WChiRecord r{e.src, e.dst, graph.weight(ids[k])};
        std::memcpy(buf.data() + k * sizeof(r), &r, sizeof(r));
      } else {
        ChiRecord r{e.src, e.dst};
        std::memcpy(buf.data() + k * sizeof(r), &r, sizeof(r));
      }
    }
    // Window offsets: first local edge index per source interval (edges are
    // sorted by src, so each interval's out-edges form one contiguous run).
    {
      std::size_t cursor = 0;
      for (std::uint32_t i = 0; i < p; ++i) {
        while (cursor < ids.size() &&
               graph.edge(ids[cursor]).src < meta.boundaries[i]) {
          ++cursor;
        }
        meta.windows[static_cast<std::size_t>(j) * (p + 1) + i] = cursor;
      }
      meta.windows[static_cast<std::size_t>(j) * (p + 1) + p] = ids.size();
    }

    if (!buf.empty()) data.pwrite_exact(buf.data(), buf.size(), off);
    off += ext.bytes;
    global_edge += ids.size();
    ids.clear();
    ids.shrink_to_fit();
  }

  {
    File f(dir / kMetaFile, File::Mode::kWrite);
    std::uint64_t hdr[5] = {kChiMagic, meta.num_vertices, meta.num_edges,
                            meta.p, meta.weighted ? 1u : 0u};
    std::uint64_t o = 0;
    f.pwrite_exact(hdr, sizeof(hdr), o);
    o += sizeof(hdr);
    f.pwrite_exact(meta.boundaries.data(),
                   meta.boundaries.size() * sizeof(VertexId), o);
    o += meta.boundaries.size() * sizeof(VertexId);
    f.pwrite_exact(meta.shards.data(),
                   meta.shards.size() * sizeof(ChiShardExtent), o);
    o += meta.shards.size() * sizeof(ChiShardExtent);
    f.pwrite_exact(meta.windows.data(),
                   meta.windows.size() * sizeof(std::uint64_t), o);
  }
  {
    File f(dir / kDegFile, File::Mode::kWrite);
    auto od = graph.out_degrees();
    auto id = graph.in_degrees();
    f.pwrite_exact(od.data(), od.size() * sizeof(VertexId), 0);
    f.pwrite_exact(id.data(), id.size() * sizeof(VertexId),
                   od.size() * sizeof(VertexId));
  }
  return open(dir);
}

ChiStore ChiStore::open(const std::filesystem::path& dir) {
  ChiStore s;
  s.dir_ = dir;
  s.io_ = std::make_unique<IoStats>();
  File meta_file(dir / kMetaFile, File::Mode::kRead);
  std::uint64_t hdr[5];
  HUSG_CHECK(meta_file.size() >= sizeof(hdr), "chi meta too small");
  meta_file.pread_exact(hdr, sizeof(hdr), 0);
  HUSG_CHECK(hdr[0] == kChiMagic, "bad chi magic");
  s.meta_.num_vertices = hdr[1];
  s.meta_.num_edges = hdr[2];
  s.meta_.p = static_cast<std::uint32_t>(hdr[3]);
  s.meta_.weighted = hdr[4] != 0;
  HUSG_CHECK(s.meta_.p > 0, "chi meta has zero shards");
  std::size_t p = s.meta_.p;
  std::uint64_t expected = sizeof(hdr) + (p + 1) * sizeof(VertexId) +
                           p * sizeof(ChiShardExtent) +
                           p * (p + 1) * sizeof(std::uint64_t);
  HUSG_CHECK(meta_file.size() == expected, "chi meta size mismatch");
  std::uint64_t o = sizeof(hdr);
  s.meta_.boundaries.resize(p + 1);
  meta_file.pread_exact(s.meta_.boundaries.data(), (p + 1) * sizeof(VertexId),
                        o);
  o += (p + 1) * sizeof(VertexId);
  s.meta_.shards.resize(p);
  meta_file.pread_exact(s.meta_.shards.data(), p * sizeof(ChiShardExtent), o);
  o += p * sizeof(ChiShardExtent);
  s.meta_.windows.resize(p * (p + 1));
  meta_file.pread_exact(s.meta_.windows.data(),
                        p * (p + 1) * sizeof(std::uint64_t), o);

  s.data_ = TrackedFile(dir / kDataFile, File::Mode::kRead, s.io_.get());
  std::uint64_t total = 0, edges = 0;
  for (const auto& sh : s.meta_.shards) {
    total += sh.bytes;
    edges += sh.edge_count;
  }
  HUSG_CHECK(edges == s.meta_.num_edges, "chi shard counts do not sum to |E|");
  HUSG_CHECK(s.data_.size() == total, "shards.dat truncated");

  TrackedFile deg(dir / kDegFile, File::Mode::kRead, s.io_.get());
  std::uint64_t n = s.meta_.num_vertices;
  HUSG_CHECK(deg.size() == 2 * n * sizeof(VertexId), "chi degrees mismatch");
  s.out_degrees_.resize(n);
  s.in_degrees_.resize(n);
  deg.read_sequential(s.out_degrees_.data(), n * sizeof(VertexId), 0);
  deg.read_sequential(s.in_degrees_.data(), n * sizeof(VertexId),
                      n * sizeof(VertexId));
  return s;
}

}  // namespace husg::baselines
