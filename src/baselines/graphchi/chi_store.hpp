// GraphChi-like on-disk format: P shards, shard j holding the in-edges of
// vertex interval j sorted by source (the PSW layout). Each edge carries an
// on-disk *edge value* (the message slot GraphChi's scatter writes and its
// gather reads) in a separate value file created per run; the structural
// records are immutable.
//
// The window index records, for every shard, where each source interval's
// edges begin — that contiguity (edges sorted by source) is what lets PSW
// load the out-edges of the execution interval from every other shard with
// one sequential window read.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "io/io_stats.hpp"
#include "io/tracked_file.hpp"
#include "util/common.hpp"

namespace husg::baselines {

struct ChiRecord {
  VertexId src;
  VertexId dst;
};
static_assert(sizeof(ChiRecord) == 8);

struct WChiRecord {
  VertexId src;
  VertexId dst;
  Weight weight;
};
static_assert(sizeof(WChiRecord) == 12);

struct ChiShardExtent {
  std::uint64_t offset = 0;  ///< bytes into shards.dat
  std::uint64_t bytes = 0;
  std::uint64_t edge_count = 0;
  std::uint64_t first_edge = 0;  ///< global edge index of the shard's start
};

struct ChiMeta {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t p = 0;
  bool weighted = false;
  std::vector<VertexId> boundaries;
  std::vector<ChiShardExtent> shards;
  /// windows[j * (p+1) + i] = local edge index in shard j where source
  /// interval i begins; entry p is the shard's edge count.
  std::vector<std::uint64_t> windows;

  std::uint32_t record_bytes() const {
    return weighted ? sizeof(WChiRecord) : sizeof(ChiRecord);
  }
  std::uint64_t window_begin(std::uint32_t shard, std::uint32_t interval) const {
    return windows[static_cast<std::size_t>(shard) * (p + 1) + interval];
  }
};

class ChiStore {
 public:
  static ChiStore build(const EdgeList& graph,
                        const std::filesystem::path& dir, std::uint32_t p);
  static ChiStore open(const std::filesystem::path& dir);

  ChiStore(ChiStore&&) = default;
  ChiStore& operator=(ChiStore&&) = default;

  const ChiMeta& meta() const { return meta_; }
  IoStats& io() const { return *io_; }
  std::span<const VertexId> out_degrees() const { return out_degrees_; }
  std::span<const VertexId> in_degrees() const { return in_degrees_; }
  const std::filesystem::path& dir() const { return dir_; }

  /// Sequentially reads shard j's records [lo, hi) (local edge indices) into
  /// a scratch buffer; fn(k, src, dst, weight) gets the local index too so
  /// callers can address the parallel edge-value range.
  template <class Fn>
  void read_records(std::uint32_t shard, std::uint64_t lo, std::uint64_t hi,
                    Fn&& fn) const;

 private:
  ChiStore() = default;

  std::filesystem::path dir_;
  ChiMeta meta_;
  std::unique_ptr<IoStats> io_;
  TrackedFile data_;
  std::vector<VertexId> out_degrees_;
  std::vector<VertexId> in_degrees_;
};

template <class Fn>
void ChiStore::read_records(std::uint32_t shard, std::uint64_t lo,
                            std::uint64_t hi, Fn&& fn) const {
  if (hi <= lo) return;
  const ChiShardExtent& ext = meta_.shards[shard];
  HUSG_CHECK(hi <= ext.edge_count, "read_records: range beyond shard");
  const std::uint32_t rec = meta_.record_bytes();
  std::uint64_t bytes = (hi - lo) * rec;
  std::vector<char> buf(bytes);
  constexpr std::uint64_t kChunk = 4u << 20;
  std::uint64_t pos = 0;
  while (pos < bytes) {
    std::uint64_t len = std::min<std::uint64_t>(kChunk, bytes - pos);
    data_.read_sequential(buf.data() + pos, len, ext.offset + lo * rec + pos);
    pos += len;
  }
  if (meta_.weighted) {
    const WChiRecord* recs = reinterpret_cast<const WChiRecord*>(buf.data());
    for (std::uint64_t k = 0; k < hi - lo; ++k) {
      fn(lo + k, recs[k].src, recs[k].dst, recs[k].weight);
    }
  } else {
    const ChiRecord* recs = reinterpret_cast<const ChiRecord*>(buf.data());
    for (std::uint64_t k = 0; k < hi - lo; ++k) {
      fn(lo + k, recs[k].src, recs[k].dst, Weight{1});
    }
  }
}

}  // namespace husg::baselines
