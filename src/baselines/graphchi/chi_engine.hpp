// GraphChi-like PSW engine.
//
// Per execution interval i it (1) loads shard i's records plus their on-disk
// edge values and applies each in-edge's message to the destination vertex,
// then (2) slides a window over every shard to rewrite the messages on
// interval i's out-edges with the vertices' new values. Over one full
// iteration every shard is read twice (memory shard + windows) and its edge
// values written once — the intermediate-update write traffic the paper
// blames for GraphChi's I/O amount (Fig. 9).
//
// Processing is asynchronous across intervals like the real system (later
// intervals observe messages scattered earlier in the same iteration), which
// converges to the same fixed point for the monotone algorithms and to the
// standard PageRank fixed point for the accumulating one.
//
// GraphChi's "deterministic parallelism" schedules only independent vertices
// concurrently, which the paper shows caps its thread scaling (Fig. 10); the
// modeled CPU term inherits that cap through BaselineOptions::parallel_cap
// (default 2 for this engine).
#pragma once

#include "baselines/common.hpp"
#include "baselines/graphchi/chi_store.hpp"
#include "core/program.hpp"
#include "core/run_stats.hpp"
#include "io/tracked_file.hpp"
#include "util/timer.hpp"

namespace husg::baselines {

class ChiEngine {
 public:
  struct Options : BaselineOptions {
    Options() { parallel_cap = 2.0; }
  };

  ChiEngine(const ChiStore& store, Options options)
      : store_(&store), opts_(std::move(options)) {}

  template <VertexProgram P>
  BaselineResult<typename P::Value> run(const P& prog, const StartSet& start);

 private:
  const ChiStore* store_;
  Options opts_;
};

template <VertexProgram P>
BaselineResult<typename P::Value> ChiEngine::run(const P& prog,
                                                 const StartSet& start) {
  using V = typename P::Value;
  const ChiMeta& meta = store_->meta();
  const std::uint64_t n = meta.num_vertices;
  const std::uint32_t p = meta.p;
  ProgramContext ctx{store_->out_degrees(), store_->in_degrees(), 0};

  BaselineResult<V> result;
  std::vector<V> vals(n);
  for (VertexId v = 0; v < n; ++v) vals[v] = prog.initial(ctx, v);

  // Snapshot before edge-value initialization so GraphChi's "subgraph
  // construction" traffic is charged to the first iteration of this run
  // (not to whatever used the store earlier).
  IoSnapshot last_snapshot = store_->io().snapshot();

  // The per-run edge-value file: one V per shard record, in shard order.
  std::filesystem::path evpath =
      store_->dir() / ("chi_evalues_" + std::to_string(::getpid()) + ".tmp");
  TrackedFile evalues(evpath, File::Mode::kReadWrite, &store_->io());
  {
    // Initialize every message with its source's initial value (full
    // sequential write of |E| values).
    std::vector<V> init_buf;
    for (std::uint32_t j = 0; j < p; ++j) {
      const ChiShardExtent& ext = meta.shards[j];
      init_buf.assign(ext.edge_count, V{});
      store_->read_records(j, 0, ext.edge_count,
                           [&](std::uint64_t k, VertexId s, VertexId,
                               Weight) { init_buf[k] = vals[s]; });
      if (!init_buf.empty()) {
        evalues.write(init_buf.data(), init_buf.size() * sizeof(V),
                      ext.first_edge * sizeof(V));
      }
    }
  }

  Bitmap active = start.materialize(n);
  std::vector<V> ev_buf;
  std::vector<V> acc;

  for (int iter = 0;
       iter < opts_.max_iterations && active.count() > 0; ++iter) {
    Timer timer;
    IoSnapshot before = last_snapshot;
    IterationStats istats;
    istats.iteration = iter;
    ctx.iteration = iter;
    istats.active_vertices = active.count();

    Bitmap next(n);
    std::uint64_t scanned = 0;

    for (std::uint32_t i = 0; i < p; ++i) {
      const VertexId vbegin = meta.boundaries[i];
      const VertexId vend = meta.boundaries[i + 1];

      // --- Gather: load shard i (records + values), apply messages. -------
      const ChiShardExtent& shard = meta.shards[i];
      if constexpr (P::kAccumulating) {
        acc.assign(vend - vbegin, V{});
        for (VertexId v = vbegin; v < vend; ++v) {
          acc[v - vbegin] = prog.gather_zero(ctx, v);
        }
      }
      if (shard.edge_count > 0) {
        ev_buf.resize(shard.edge_count);
        // One contiguous region per shard: sequential.
        evalues.read_sequential(ev_buf.data(), shard.edge_count * sizeof(V),
                                shard.first_edge * sizeof(V));
        scanned += shard.edge_count;
        store_->read_records(
            i, 0, shard.edge_count,
            [&](std::uint64_t k, VertexId s, VertexId d, Weight w) {
              if constexpr (P::kAccumulating) {
                prog.gather(ctx, acc[d - vbegin], ev_buf[k], s, w);
              } else {
                if (!active.get(s)) return;
                if (prog.update(ctx, ev_buf[k], s, vals[d], d, w)) next.set(d);
              }
            });
      }
      if constexpr (P::kAccumulating) {
        for (VertexId v = vbegin; v < vend; ++v) {
          V a = acc[v - vbegin];
          if (prog.apply(ctx, v, a, vals[v])) next.set(v);
          vals[v] = a;
        }
      }

      // --- Scatter: rewrite interval i's out-edge messages in all shards. --
      for (std::uint32_t k = 0; k < p; ++k) {
        std::uint64_t lo = meta.window_begin(k, i);
        std::uint64_t hi = meta.window_begin(k, i + 1);
        if (hi <= lo) continue;
        ev_buf.resize(hi - lo);
        store_->read_records(k, lo, hi,
                             [&](std::uint64_t idx, VertexId s, VertexId,
                                 Weight) { ev_buf[idx - lo] = vals[s]; });
        evalues.write(ev_buf.data(), (hi - lo) * sizeof(V),
                      (meta.shards[k].first_edge + lo) * sizeof(V));
        scanned += hi - lo;
      }
    }

    active = std::move(next);

    last_snapshot = store_->io().snapshot();
    istats.active_edges = scanned;
    istats.edges_processed = scanned;
    istats.io = last_snapshot - before;
    istats.wall_seconds = timer.seconds();
    istats.modeled_io_seconds = opts_.device.modeled_seconds(istats.io);
    istats.modeled_cpu_seconds = modeled_cpu(opts_, scanned);
    result.stats.add_iteration(std::move(istats));
  }

  evalues.set_stats(nullptr);
  std::error_code ec;
  std::filesystem::remove(evpath, ec);
  result.values = std::move(vals);
  return result;
}

}  // namespace husg::baselines
