#include "baselines/xstream/xstream_store.hpp"

#include "baselines/common.hpp"
#include "io/file.hpp"

namespace husg::baselines {

namespace {
constexpr std::uint64_t kXsMagic = 0x4855534758535431ULL;  // HUSGXST1
constexpr const char* kMetaFile = "xs_meta.bin";
constexpr const char* kDataFile = "xs_edges.dat";
constexpr const char* kDegFile = "xs_degrees.bin";
}  // namespace

XStreamStore XStreamStore::build(const EdgeList& graph,
                                 const std::filesystem::path& dir,
                                 std::uint32_t p) {
  HUSG_CHECK(p > 0, "xstream: p must be positive");
  HUSG_CHECK(graph.num_vertices() > 0, "xstream: empty vertex set");
  ensure_directory(dir);

  XStreamMeta meta;
  meta.num_vertices = graph.num_vertices();
  meta.num_edges = graph.num_edges();
  meta.p = p;
  meta.boundaries = equal_boundaries(meta.num_vertices, p);
  meta.partitions.assign(p, XsPartitionExtent{});

  std::vector<std::vector<EdgeId>> bucket(p);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    bucket[meta.partition_of(graph.edge(e).src)].push_back(e);
  }

  File data(dir / kDataFile, File::Mode::kWrite);
  std::uint64_t off = 0;
  std::vector<XsRecord> buf;
  for (std::uint32_t k = 0; k < p; ++k) {
    auto& ids = bucket[k];
    XsPartitionExtent& ext = meta.partitions[k];
    ext.offset = off;
    ext.edge_count = ids.size();
    ext.bytes = ids.size() * sizeof(XsRecord);
    buf.resize(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const Edge& e = graph.edge(ids[i]);
      buf[i] = XsRecord{e.src, e.dst, graph.weight(ids[i])};
    }
    if (!buf.empty()) data.pwrite_exact(buf.data(), ext.bytes, off);
    off += ext.bytes;
    ids.clear();
    ids.shrink_to_fit();
  }

  {
    File f(dir / kMetaFile, File::Mode::kWrite);
    std::uint64_t hdr[4] = {kXsMagic, meta.num_vertices, meta.num_edges,
                            meta.p};
    std::uint64_t o = 0;
    f.pwrite_exact(hdr, sizeof(hdr), o);
    o += sizeof(hdr);
    f.pwrite_exact(meta.boundaries.data(),
                   meta.boundaries.size() * sizeof(VertexId), o);
    o += meta.boundaries.size() * sizeof(VertexId);
    f.pwrite_exact(meta.partitions.data(),
                   meta.partitions.size() * sizeof(XsPartitionExtent), o);
  }
  {
    File f(dir / kDegFile, File::Mode::kWrite);
    auto od = graph.out_degrees();
    auto id = graph.in_degrees();
    f.pwrite_exact(od.data(), od.size() * sizeof(VertexId), 0);
    f.pwrite_exact(id.data(), id.size() * sizeof(VertexId),
                   od.size() * sizeof(VertexId));
  }
  return open(dir);
}

XStreamStore XStreamStore::open(const std::filesystem::path& dir) {
  XStreamStore s;
  s.dir_ = dir;
  s.io_ = std::make_unique<IoStats>();
  File meta_file(dir / kMetaFile, File::Mode::kRead);
  std::uint64_t hdr[4];
  HUSG_CHECK(meta_file.size() >= sizeof(hdr), "xs meta too small");
  meta_file.pread_exact(hdr, sizeof(hdr), 0);
  HUSG_CHECK(hdr[0] == kXsMagic, "bad xstream magic");
  s.meta_.num_vertices = hdr[1];
  s.meta_.num_edges = hdr[2];
  s.meta_.p = static_cast<std::uint32_t>(hdr[3]);
  HUSG_CHECK(s.meta_.p > 0, "xs meta has zero partitions");
  std::size_t p = s.meta_.p;
  std::uint64_t expected = sizeof(hdr) + (p + 1) * sizeof(VertexId) +
                           p * sizeof(XsPartitionExtent);
  HUSG_CHECK(meta_file.size() == expected, "xs meta size mismatch");
  std::uint64_t o = sizeof(hdr);
  s.meta_.boundaries.resize(p + 1);
  meta_file.pread_exact(s.meta_.boundaries.data(), (p + 1) * sizeof(VertexId),
                        o);
  o += (p + 1) * sizeof(VertexId);
  s.meta_.partitions.resize(p);
  meta_file.pread_exact(s.meta_.partitions.data(),
                        p * sizeof(XsPartitionExtent), o);

  s.data_ = TrackedFile(dir / kDataFile, File::Mode::kRead, s.io_.get());
  std::uint64_t total = 0, edges = 0;
  for (const auto& ext : s.meta_.partitions) {
    total += ext.bytes;
    edges += ext.edge_count;
  }
  HUSG_CHECK(edges == s.meta_.num_edges,
             "xs partition counts do not sum to |E|");
  HUSG_CHECK(s.data_.size() == total, "xs_edges.dat truncated");

  TrackedFile deg(dir / kDegFile, File::Mode::kRead, s.io_.get());
  std::uint64_t n = s.meta_.num_vertices;
  HUSG_CHECK(deg.size() == 2 * n * sizeof(VertexId), "xs degrees mismatch");
  s.out_degrees_.resize(n);
  s.in_degrees_.resize(n);
  deg.read_sequential(s.out_degrees_.data(), n * sizeof(VertexId), 0);
  deg.read_sequential(s.in_degrees_.data(), n * sizeof(VertexId),
                      n * sizeof(VertexId));
  return s;
}

}  // namespace husg::baselines
