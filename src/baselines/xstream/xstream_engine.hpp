// X-Stream-like engine: edge-centric scatter/gather over streaming
// partitions.
//
// The edge list is split into P partitions by source vertex. Each iteration:
//   * scatter — stream every partition's full, unordered edge list; for each
//     edge whose source is active, append an update record (src, dst, value
//     [, weight]) to the destination partition's on-disk update file;
//   * gather — stream each partition's update file and apply the updates to
//     its vertices.
// All I/O is sequential (X-Stream's design goal) but the entire edge list is
// read every iteration regardless of how few sources are active, and the
// update traffic is written to disk and read back — the behaviour Fig. 11
// contrasts with HUS-Graph's selective access.
#pragma once

#include <filesystem>

#include "baselines/common.hpp"
#include "baselines/xstream/xstream_store.hpp"
#include "core/program.hpp"
#include "core/run_stats.hpp"
#include "io/buffered.hpp"
#include "util/timer.hpp"

namespace husg::baselines {

class XStreamEngine {
 public:
  struct Options : BaselineOptions {};

  XStreamEngine(const XStreamStore& store, Options options)
      : store_(&store), opts_(std::move(options)) {}

  template <VertexProgram P>
  BaselineResult<typename P::Value> run(const P& prog, const StartSet& start);

 private:
  const XStreamStore* store_;
  Options opts_;
};

template <VertexProgram P>
BaselineResult<typename P::Value> XStreamEngine::run(const P& prog,
                                                     const StartSet& start) {
  using V = typename P::Value;
  struct Update {
    VertexId src;
    VertexId dst;
    V value;  ///< source value at scatter time
    Weight weight;
  };

  const XStreamMeta& meta = store_->meta();
  const std::uint64_t n = meta.num_vertices;
  const std::uint32_t p = meta.p;
  ProgramContext ctx{store_->out_degrees(), store_->in_degrees(), 0};

  BaselineResult<V> result;
  std::vector<V> vals(n), prev(n);
  for (VertexId v = 0; v < n; ++v) vals[v] = prog.initial(ctx, v);
  Bitmap active = start.materialize(n);
  std::vector<V> acc;

  // Per-destination-partition update files, recreated each iteration.
  std::vector<std::filesystem::path> upd_paths(p);
  for (std::uint32_t k = 0; k < p; ++k) {
    upd_paths[k] = store_->dir() / ("xs_updates_" + std::to_string(::getpid()) +
                                    "_" + std::to_string(k) + ".tmp");
  }

  for (int iter = 0;
       iter < opts_.max_iterations && active.count() > 0; ++iter) {
    Timer timer;
    IoSnapshot before = store_->io().snapshot();
    IterationStats istats;
    istats.iteration = iter;
    ctx.iteration = iter;
    istats.active_vertices = active.count();

    prev = vals;
    Bitmap next(n);
    std::uint64_t scanned = 0;

    if constexpr (P::kAccumulating) {
      acc.assign(n, V{});
      for (VertexId v = 0; v < n; ++v) acc[v] = prog.gather_zero(ctx, v);
    }

    // --- Scatter phase ------------------------------------------------------
    {
      std::vector<TrackedFile> upd_files;
      std::vector<std::unique_ptr<RecordWriter<Update>>> writers;
      upd_files.reserve(p);
      for (std::uint32_t k = 0; k < p; ++k) {
        // Truncate the previous iteration's updates.
        std::error_code ec;
        std::filesystem::remove(upd_paths[k], ec);
        upd_files.emplace_back(upd_paths[k], File::Mode::kReadWrite,
                               &store_->io());
      }
      for (std::uint32_t k = 0; k < p; ++k) {
        writers.push_back(
            std::make_unique<RecordWriter<Update>>(upd_files[k]));
      }
      for (std::uint32_t part = 0; part < p; ++part) {
        std::uint64_t edges = store_->partition_edges(part);
        scanned += edges;
        store_->stream_partition(
            part, [&](VertexId s, VertexId d, Weight w) {
              if constexpr (!P::kAccumulating) {
                if (!active.get(s)) return;
              }
              writers[meta.partition_of(d)]->push(Update{s, d, prev[s], w});
            });
      }
      for (auto& w : writers) w->flush();
    }

    // --- Gather phase --------------------------------------------------------
    for (std::uint32_t k = 0; k < p; ++k) {
      TrackedFile f(upd_paths[k], File::Mode::kRead, &store_->io());
      stream_records<Update>(f, 0, f.size(), [&](const Update& u) {
        if constexpr (P::kAccumulating) {
          prog.gather(ctx, acc[u.dst], u.value, u.src, u.weight);
        } else {
          if (prog.update(ctx, u.value, u.src, vals[u.dst], u.dst, u.weight)) {
            next.set(u.dst);
          }
        }
      });
    }

    if constexpr (P::kAccumulating) {
      for (VertexId v = 0; v < n; ++v) {
        V a = acc[v];
        if (prog.apply(ctx, v, a, vals[v])) next.set(v);
        vals[v] = a;
      }
    }

    active = std::move(next);

    istats.active_edges = scanned;
    istats.edges_processed = scanned;
    istats.io = store_->io().snapshot() - before;
    istats.wall_seconds = timer.seconds();
    istats.modeled_io_seconds = opts_.device.modeled_seconds(istats.io);
    istats.modeled_cpu_seconds = modeled_cpu(opts_, scanned);
    result.stats.add_iteration(std::move(istats));
  }

  for (const auto& path : upd_paths) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  result.values = std::move(vals);
  return result;
}

}  // namespace husg::baselines
