// X-Stream-like on-disk format: the unordered edge list split into P
// streaming partitions by source vertex. No indices, no sorting within a
// partition — X-Stream's bet is that pure sequential streaming beats any
// index on spinning disks.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "io/io_stats.hpp"
#include "io/tracked_file.hpp"
#include "util/common.hpp"

namespace husg::baselines {

struct XsRecord {
  VertexId src;
  VertexId dst;
  Weight weight;  ///< 1.0 for unweighted graphs (uniform record keeps the
                  ///< streaming loop branch-free, as in X-Stream's type-2)
};
static_assert(sizeof(XsRecord) == 12);

struct XsPartitionExtent {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t edge_count = 0;
};

struct XStreamMeta {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t p = 0;
  std::vector<VertexId> boundaries;
  std::vector<XsPartitionExtent> partitions;

  std::uint32_t partition_of(VertexId v) const {
    // Equal-width partitions: direct computation, with a rounding nudge.
    std::uint32_t k = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(v) * p / num_vertices);
    if (k >= p) k = p - 1;
    while (k + 1 < p && v >= boundaries[k + 1]) ++k;
    while (k > 0 && v < boundaries[k]) --k;
    return k;
  }
};

class XStreamStore {
 public:
  static XStreamStore build(const EdgeList& graph,
                            const std::filesystem::path& dir, std::uint32_t p);
  static XStreamStore open(const std::filesystem::path& dir);

  XStreamStore(XStreamStore&&) = default;
  XStreamStore& operator=(XStreamStore&&) = default;

  const XStreamMeta& meta() const { return meta_; }
  IoStats& io() const { return *io_; }
  std::span<const VertexId> out_degrees() const { return out_degrees_; }
  std::span<const VertexId> in_degrees() const { return in_degrees_; }
  const std::filesystem::path& dir() const { return dir_; }

  std::uint64_t partition_edges(std::uint32_t part) const {
    return meta_.partitions[part].edge_count;
  }

  /// Streams one partition's edges sequentially; fn(src, dst, weight).
  template <class Fn>
  void stream_partition(std::uint32_t part, Fn&& fn) const {
    const XsPartitionExtent& ext = meta_.partitions[part];
    if (ext.bytes == 0) return;
    std::vector<char> buf(ext.bytes);
    constexpr std::uint64_t kChunk = 4u << 20;
    std::uint64_t pos = 0;
    while (pos < ext.bytes) {
      std::uint64_t len = std::min<std::uint64_t>(kChunk, ext.bytes - pos);
      data_.read_sequential(buf.data() + pos, len, ext.offset + pos);
      pos += len;
    }
    const XsRecord* recs = reinterpret_cast<const XsRecord*>(buf.data());
    for (std::uint64_t k = 0; k < ext.edge_count; ++k) {
      fn(recs[k].src, recs[k].dst, recs[k].weight);
    }
  }

 private:
  XStreamStore() = default;

  std::filesystem::path dir_;
  XStreamMeta meta_;
  std::unique_ptr<IoStats> io_;
  TrackedFile data_;
  std::vector<VertexId> out_degrees_;
  std::vector<VertexId> in_degrees_;
};

}  // namespace husg::baselines
