// FlashGraph-like semi-external engine (paper §5's SSD-oriented class):
// vertex values and the CSR index live in memory, adjacency lists on flash.
// Each iteration reads only the ACTIVE vertices' adjacency lists, merging
// requests whose lists are adjacent on disk (FlashGraph's I/O merging), and
// pushes updates. No vertex-value I/O at all.
//
// This architecture is superb on SSDs and terrible on HDDs — the paper's
// point when it contrasts FlashGraph/Graphene ("rely on expensive SSD
// arrays") with HDD-friendly streaming systems. The semi-external bench
// quantifies exactly that trade.
#pragma once

#include "baselines/common.hpp"
#include "baselines/flashgraph/flash_store.hpp"
#include "core/program.hpp"
#include "core/run_stats.hpp"
#include "util/timer.hpp"

namespace husg::baselines {

class FlashEngine {
 public:
  struct Options : BaselineOptions {
    /// Merge point reads when the gap between consecutive active vertices'
    /// lists is at most this many records (0 = exact-adjacency merging
    /// only). Gap bytes are read and discarded, like real request merging.
    std::uint64_t merge_gap_records = 16;
  };

  FlashEngine(const FlashStore& store, Options options)
      : store_(&store), opts_(std::move(options)) {}

  template <VertexProgram P>
  BaselineResult<typename P::Value> run(const P& prog, const StartSet& start);

 private:
  const FlashStore* store_;
  Options opts_;
};

template <VertexProgram P>
BaselineResult<typename P::Value> FlashEngine::run(const P& prog,
                                                   const StartSet& start) {
  using V = typename P::Value;
  const FlashMeta& meta = store_->meta();
  const std::uint64_t n = meta.num_vertices;
  ProgramContext ctx{store_->out_degrees(), store_->in_degrees(), 0};
  std::span<const std::uint64_t> offsets = store_->offsets();

  BaselineResult<V> result;
  std::vector<V> vals(n), prev(n);
  for (VertexId v = 0; v < n; ++v) vals[v] = prog.initial(ctx, v);
  Bitmap active = start.materialize(n);
  std::vector<V> acc;

  for (int iter = 0;
       iter < opts_.max_iterations && active.count() > 0; ++iter) {
    Timer timer;
    IoSnapshot before = store_->io().snapshot();
    IterationStats istats;
    istats.iteration = iter;
    ctx.iteration = iter;
    istats.active_vertices = active.count();

    prev = vals;
    Bitmap next(n);
    std::uint64_t scanned = 0;

    if constexpr (P::kAccumulating) {
      acc.assign(n, V{});
      for (VertexId v = 0; v < n; ++v) acc[v] = prog.gather_zero(ctx, v);
    }

    // Dense iterations (or accumulating programs, which gather from every
    // source) degenerate into one sequential scan of the adjacency file.
    bool dense = P::kAccumulating || active.count() * 2 >= n;

    if (dense) {
      // One sequential scan over the whole adjacency file.
      VertexId src = 0;
      store_->read_run(0, meta.num_edges, /*sequential=*/true,
                       [&](std::uint64_t k, VertexId d, Weight w) {
                         while (offsets[src + 1] <= k) ++src;
                         ++scanned;
                         if constexpr (P::kAccumulating) {
                           prog.gather(ctx, acc[d], prev[src], src, w);
                         } else {
                           if (!active.get(src)) return;
                           if (prog.update(ctx, prev[src], src, vals[d], d,
                                           w)) {
                             next.set(d);
                           }
                         }
                       });
    } else if constexpr (!P::kAccumulating) {
      // Selective reads: merge active vertices' runs when the disk gap is
      // small, then issue one random request per merged run. (Accumulating
      // programs always take the dense path above.)
      VertexId v = 0;
      while (v < n) {
        if (!active.get(v) || offsets[v + 1] == offsets[v]) {
          ++v;
          continue;
        }
        std::uint64_t lo = offsets[v];
        std::uint64_t hi = offsets[v + 1];
        // Extend the run while the next ACTIVE vertex's list starts within
        // the merge gap.
        VertexId w = v + 1;
        while (w < n) {
          if (active.get(w) && offsets[w + 1] > offsets[w]) {
            if (offsets[w] <= hi + opts_.merge_gap_records) {
              hi = offsets[w + 1];
              ++w;
              continue;
            }
            break;
          }
          // Inactive vertex: may still sit inside the merged window.
          if (offsets[w + 1] <= hi + opts_.merge_gap_records) {
            ++w;
            continue;
          }
          break;
        }
        VertexId src = v;
        store_->read_run(lo, hi, /*sequential=*/false,
                         [&](std::uint64_t k, VertexId d, Weight wgt) {
                           while (offsets[src + 1] <= k) ++src;
                           if (!active.get(src)) return;
                           ++scanned;
                           if (prog.update(ctx, prev[src], src, vals[d], d,
                                           wgt)) {
                             next.set(d);
                           }
                         });
        v = w;  // first vertex not covered by the merged run
      }
    }

    if constexpr (P::kAccumulating) {
      for (VertexId u = 0; u < n; ++u) {
        V a = acc[u];
        if (prog.apply(ctx, u, a, vals[u])) next.set(u);
        vals[u] = a;
      }
    }

    active = std::move(next);

    istats.active_edges = scanned;
    istats.edges_processed = scanned;
    istats.io = store_->io().snapshot() - before;
    istats.wall_seconds = timer.seconds();
    istats.modeled_io_seconds = opts_.device.modeled_seconds(istats.io);
    istats.modeled_cpu_seconds = modeled_cpu(opts_, scanned);
    result.stats.add_iteration(std::move(istats));
  }

  result.values = std::move(vals);
  return result;
}

}  // namespace husg::baselines
