#include "baselines/flashgraph/flash_store.hpp"

#include <algorithm>
#include <cstring>

#include "io/file.hpp"

namespace husg::baselines {

namespace {
constexpr std::uint64_t kFlashMagic = 0x48555347464C5331ULL;  // HUSGFLS1
constexpr const char* kMetaFile = "flash_meta.bin";
constexpr const char* kAdjFile = "flash.adj";
constexpr const char* kIdxFile = "flash.idx";
constexpr const char* kDegFile = "flash_degrees.bin";
}  // namespace

FlashStore FlashStore::build(const EdgeList& graph,
                             const std::filesystem::path& dir) {
  HUSG_CHECK(graph.num_vertices() > 0, "flash: empty vertex set");
  ensure_directory(dir);

  FlashMeta meta;
  meta.num_vertices = graph.num_vertices();
  meta.num_edges = graph.num_edges();
  meta.weighted = graph.weighted();

  // Global CSR over out-edges, sorted by (src, dst).
  std::vector<std::uint64_t> offsets(meta.num_vertices + 1, 0);
  for (const Edge& e : graph.edges()) ++offsets[e.src + 1];
  for (std::size_t v = 1; v < offsets.size(); ++v) offsets[v] += offsets[v - 1];

  const std::uint32_t rec = meta.record_bytes();
  std::vector<char> adj(meta.num_edges * rec);
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& ed = graph.edge(e);
    std::uint64_t at = cursor[ed.src]++;
    if (meta.weighted) {
      struct Rec {
        VertexId dst;
        Weight w;
      } r{ed.dst, graph.weight(e)};
      std::memcpy(adj.data() + at * rec, &r, rec);
    } else {
      std::memcpy(adj.data() + at * rec, &ed.dst, rec);
    }
  }

  {
    File f(dir / kAdjFile, File::Mode::kWrite);
    if (!adj.empty()) f.pwrite_exact(adj.data(), adj.size(), 0);
  }
  {
    File f(dir / kIdxFile, File::Mode::kWrite);
    f.pwrite_exact(offsets.data(), offsets.size() * sizeof(std::uint64_t), 0);
  }
  {
    File f(dir / kMetaFile, File::Mode::kWrite);
    std::uint64_t hdr[4] = {kFlashMagic, meta.num_vertices, meta.num_edges,
                            meta.weighted ? 1u : 0u};
    f.pwrite_exact(hdr, sizeof(hdr), 0);
  }
  {
    File f(dir / kDegFile, File::Mode::kWrite);
    auto od = graph.out_degrees();
    auto id = graph.in_degrees();
    f.pwrite_exact(od.data(), od.size() * sizeof(VertexId), 0);
    f.pwrite_exact(id.data(), id.size() * sizeof(VertexId),
                   od.size() * sizeof(VertexId));
  }
  return open(dir);
}

FlashStore FlashStore::open(const std::filesystem::path& dir) {
  FlashStore s;
  s.dir_ = dir;
  s.io_ = std::make_unique<IoStats>();
  File meta_file(dir / kMetaFile, File::Mode::kRead);
  std::uint64_t hdr[4];
  HUSG_CHECK(meta_file.size() == sizeof(hdr), "flash meta size mismatch");
  meta_file.pread_exact(hdr, sizeof(hdr), 0);
  HUSG_CHECK(hdr[0] == kFlashMagic, "bad flash magic");
  s.meta_.num_vertices = hdr[1];
  s.meta_.num_edges = hdr[2];
  s.meta_.weighted = hdr[3] != 0;

  std::uint64_t n = s.meta_.num_vertices;
  // FlashGraph keeps the CSR index in memory (semi-external): load once,
  // charged as a sequential pass.
  TrackedFile idx(dir / kIdxFile, File::Mode::kRead, s.io_.get());
  HUSG_CHECK(idx.size() == (n + 1) * sizeof(std::uint64_t),
             "flash.idx size mismatch");
  s.offsets_.resize(n + 1);
  idx.read_sequential(s.offsets_.data(), (n + 1) * sizeof(std::uint64_t), 0);
  HUSG_CHECK(s.offsets_.front() == 0 && s.offsets_.back() == s.meta_.num_edges,
             "flash.idx corrupt");

  s.adj_ = TrackedFile(dir / kAdjFile, File::Mode::kRead, s.io_.get());
  HUSG_CHECK(s.adj_.size() == s.meta_.num_edges * s.meta_.record_bytes(),
             "flash.adj truncated");

  TrackedFile deg(dir / kDegFile, File::Mode::kRead, s.io_.get());
  HUSG_CHECK(deg.size() == 2 * n * sizeof(VertexId), "flash degrees mismatch");
  s.out_degrees_.resize(n);
  s.in_degrees_.resize(n);
  deg.read_sequential(s.out_degrees_.data(), n * sizeof(VertexId), 0);
  deg.read_sequential(s.in_degrees_.data(), n * sizeof(VertexId),
                      n * sizeof(VertexId));
  return s;
}

}  // namespace husg::baselines
