// FlashGraph-like on-disk format: one global CSR adjacency file per
// direction, with the offset index held in memory (semi-external memory:
// vertex state and indices in RAM, edges on flash). No partitioning — the
// engine reads exactly the adjacency lists it needs.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "io/io_stats.hpp"
#include "io/tracked_file.hpp"
#include "util/common.hpp"

namespace husg::baselines {

struct FlashMeta {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  bool weighted = false;

  std::uint32_t record_bytes() const {
    return weighted ? 8 : 4;  // {dst[,w]} like the dual-block records
  }
};

class FlashStore {
 public:
  static FlashStore build(const EdgeList& graph,
                          const std::filesystem::path& dir);
  static FlashStore open(const std::filesystem::path& dir);

  FlashStore(FlashStore&&) = default;
  FlashStore& operator=(FlashStore&&) = default;

  const FlashMeta& meta() const { return meta_; }
  IoStats& io() const { return *io_; }
  const std::filesystem::path& dir() const { return dir_; }
  std::span<const VertexId> out_degrees() const { return out_degrees_; }
  std::span<const VertexId> in_degrees() const { return in_degrees_; }

  /// In-memory CSR offset index over the out-adjacency file (edge units).
  std::span<const std::uint64_t> offsets() const { return offsets_; }

  /// Reads the out-adjacency run covering edge range [lo, hi) with ONE
  /// request (FlashGraph merges adjacent requests before issuing them);
  /// fn(edge_index, dst, weight) per edge.
  template <class Fn>
  void read_run(std::uint64_t lo, std::uint64_t hi, bool sequential,
                Fn&& fn) const {
    if (hi <= lo) return;
    const std::uint32_t rec = meta_.record_bytes();
    std::vector<char> buf((hi - lo) * rec);
    if (sequential) {
      adj_.read_sequential(buf.data(), buf.size(), lo * rec);
    } else {
      adj_.read_random(buf.data(), buf.size(), lo * rec);
    }
    if (meta_.weighted) {
      struct Rec {
        VertexId dst;
        Weight w;
      };
      const Rec* recs = reinterpret_cast<const Rec*>(buf.data());
      for (std::uint64_t k = 0; k < hi - lo; ++k) {
        fn(lo + k, recs[k].dst, recs[k].w);
      }
    } else {
      const VertexId* recs = reinterpret_cast<const VertexId*>(buf.data());
      for (std::uint64_t k = 0; k < hi - lo; ++k) {
        fn(lo + k, recs[k], Weight{1});
      }
    }
  }

 private:
  FlashStore() = default;

  std::filesystem::path dir_;
  FlashMeta meta_;
  std::unique_ptr<IoStats> io_;
  TrackedFile adj_;
  std::vector<std::uint64_t> offsets_;
  std::vector<VertexId> out_degrees_;
  std::vector<VertexId> in_degrees_;
};

}  // namespace husg::baselines
