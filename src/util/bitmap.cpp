#include "util/bitmap.hpp"

namespace husg {

std::size_t Bitmap::count_range(std::size_t lo, std::size_t hi) const {
  std::size_t n = 0;
  for_each_set(lo, hi, [&](std::size_t) { ++n; });
  return n;
}

void AtomicBitmap::snapshot_into(Bitmap& out) const {
  HUSG_CHECK(out.size() == bits_, "snapshot size mismatch: " << out.size()
                                                             << " vs " << bits_);
  for (std::size_t i = 0; i < bits_; i += 64) {
    std::uint64_t w = words_[i >> 6].load(std::memory_order_relaxed);
    while (w != 0) {
      std::size_t bit = i + static_cast<std::size_t>(__builtin_ctzll(w));
      if (bit >= bits_) break;
      out.set(bit);
      w &= w - 1;
    }
  }
}

}  // namespace husg
