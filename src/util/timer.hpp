// Wall-clock timers used for measured (as opposed to device-modeled) time.
#pragma once

#include <chrono>

namespace husg {

/// Simple steady-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed seconds into a double on destruction; useful for
/// attributing time to phases across many calls.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ~ScopedAccumulator() { sink_ += timer_.seconds(); }
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_;
  Timer timer_;
};

}  // namespace husg
