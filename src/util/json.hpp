// Minimal recursive-descent JSON reader shared by the tool-facing loaders
// (service jobs files, postmortem bundles). Just enough JSON for
// configuration and diagnostics payloads: null / bool / number / string /
// array / object, no \uXXXX escapes, doubles for all numbers. Errors throw
// DataError with a "<context>:<line>:<col>" prefix so callers can point at
// the offending file.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace husg {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses one JSON value spanning the whole of `text` (trailing content is an
/// error). `context` prefixes error messages, typically the source file name.
JsonValue parse_json(const std::string& text, const std::string& context);

}  // namespace husg
