#include "util/options.hpp"

#include <cstdlib>

#include "util/common.hpp"

namespace husg {

Options Options::parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opts.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      opts.values_[arg] = argv[++i];
    } else {
      opts.values_[arg] = "true";
    }
  }
  return opts;
}

bool Options::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace husg
