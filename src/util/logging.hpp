// Minimal leveled logger. Out-of-core runs are long; operators want progress
// lines without a logging framework dependency.
#pragma once

#include <sstream>
#include <string>

namespace husg::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default: kWarn so tests
/// and benches stay quiet unless asked.
void set_level(Level level);
Level level();

/// Emit one line to stderr with a level tag and wall-clock offset.
void write(Level level, const std::string& message);

namespace detail {
class LineStream {
 public:
  explicit LineStream(Level lv) : level_(lv) {}
  ~LineStream() { write(level_, os_.str()); }
  template <class T>
  LineStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace husg::log

#define HUSG_LOG(lv)                                         \
  if (static_cast<int>(lv) < static_cast<int>(::husg::log::level())) \
    ;                                                        \
  else                                                       \
    ::husg::log::detail::LineStream(lv)

#define HUSG_DEBUG HUSG_LOG(::husg::log::Level::kDebug)
#define HUSG_INFO HUSG_LOG(::husg::log::Level::kInfo)
#define HUSG_WARN HUSG_LOG(::husg::log::Level::kWarn)
#define HUSG_ERROR HUSG_LOG(::husg::log::Level::kError)
