// Fixed-size bitmaps. The engine's frontier needs a plain bitmap (single
// writer per region) and an atomic bitmap (concurrent activation from
// multiple worker threads in ROP/COP).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace husg {

/// Non-atomic dense bitmap.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  std::size_t size() const { return bits_; }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }

  void clear(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  void clear_all() { std::fill(words_.begin(), words_.end(), 0); }

  void set_all() {
    std::fill(words_.begin(), words_.end(), ~0ULL);
    mask_tail();
  }

  /// Population count over the whole bitmap.
  std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  /// Population count over [lo, hi).
  std::size_t count_range(std::size_t lo, std::size_t hi) const;

  /// Invoke fn(i) for each set bit in [lo, hi).
  template <class Fn>
  void for_each_set(std::size_t lo, std::size_t hi, Fn&& fn) const {
    for (std::size_t i = lo; i < hi;) {
      std::size_t word_idx = i >> 6;
      std::uint64_t w = words_[word_idx] >> (i & 63);
      if (w == 0) {
        i = (word_idx + 1) << 6;
        continue;
      }
      std::size_t bit = i + static_cast<std::size_t>(__builtin_ctzll(w));
      if (bit >= hi) return;
      fn(bit);
      i = bit + 1;
    }
  }

 private:
  void mask_tail() {
    if (bits_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (1ULL << (bits_ % 64)) - 1;
    }
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Bitmap supporting lock-free concurrent set() from many threads.
class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_ = std::vector<std::atomic<std::uint64_t>>((bits + 63) / 64);
    clear_all();
  }

  std::size_t size() const { return bits_; }

  bool get(std::size_t i) const {
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1ULL;
  }

  /// Set bit i; returns true if this call transitioned it 0 -> 1.
  bool set(std::size_t i) {
    std::uint64_t mask = 1ULL << (i & 63);
    std::uint64_t old =
        words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (old & mask) == 0;
  }

  void clear_all() {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  /// Copy the contents into a plain Bitmap (must have the same size).
  void snapshot_into(Bitmap& out) const;

 private:
  std::size_t bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace husg
