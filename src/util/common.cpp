#include "util/common.hpp"

namespace husg::detail {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& msg) {
  std::ostringstream os;
  os << "HUSG_CHECK failed at " << file << ":" << line << ": (" << expr
     << ") " << msg;
  throw DataError(os.str());
}

}  // namespace husg::detail
