#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace husg::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;

const char* tag(Level lv) {
  switch (lv) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
  }
  return "?????";
}

double seconds_since_start() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lv, const std::string& message) {
  if (static_cast<int>(lv) < static_cast<int>(level())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%8.3f] %s %s\n", seconds_since_start(), tag(lv),
               message.c_str());
}

}  // namespace husg::log
