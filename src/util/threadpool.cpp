#include "util/threadpool.hpp"

#include <atomic>
#include <chrono>
#include <exception>

#include "obs/profiler.hpp"
#include "util/common.hpp"

namespace husg {

struct ThreadPool::Task {
  std::size_t n = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* indexed = nullptr;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* ranged =
      nullptr;
  std::size_t workers_total = 0;
  /// Job usage of the submitting thread: gang workers bind it for the
  /// task's duration so their CPU/waits charge to the owning job.
  obs::JobUsage* usage = nullptr;

  std::atomic<std::size_t> next{0};          // chunk cursor (indexed mode)
  std::atomic<std::size_t> slice_cursor{0};  // slice cursor (ranged mode)
  std::atomic<std::size_t> remaining{0};     // participants still running
  std::exception_ptr error;
  std::mutex error_mutex;
};

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? 1 : threads) {
  if (threads_ > 1) {
    workers_.reserve(threads_ - 1);
    for (std::size_t i = 0; i + 1 < threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_task(Task& task) {
  try {
    if (task.indexed != nullptr) {
      for (;;) {
        std::size_t begin =
            task.next.fetch_add(task.grain, std::memory_order_relaxed);
        if (begin >= task.n) break;
        std::size_t end = std::min(task.n, begin + task.grain);
        for (std::size_t i = begin; i < end; ++i) (*task.indexed)(i);
      }
    } else {
      std::size_t slice =
          task.slice_cursor.fetch_add(1, std::memory_order_relaxed);
      if (slice < task.workers_total) {
        std::size_t per =
            (task.n + task.workers_total - 1) / task.workers_total;
        std::size_t begin = std::min(task.n, slice * per);
        std::size_t end = std::min(task.n, begin + per);
        if (begin < end) (*task.ranged)(begin, end, slice);
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(task.error_mutex);
    if (!task.error) task.error = std::current_exception();
  }
  if (task.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    cv_done_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  obs::Profiler::set_thread_role("pool_worker");
  std::uint64_t seen_generation = 0;
  for (;;) {
    Task* task = nullptr;
    std::packaged_task<void()> oneshot;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation ||
               !oneshots_.empty();
      });
      // Gang work first: a pending generation cannot complete without every
      // worker's participation, so it outranks queued one-shots. Shutdown is
      // honoured only once the one-shot queue is drained (pending futures
      // must complete).
      if (generation_ != seen_generation) {
        seen_generation = generation_;
        task = current_;
      } else if (!oneshots_.empty()) {
        oneshot = std::move(oneshots_.front());
        oneshots_.pop_front();
      } else {
        return;  // shutdown_, no work left
      }
    }
    // Dequeue points double as lazy profiler checkpoints (one relaxed load
    // disarmed): a worker picking up work attaches its CPU-clock sampler.
    obs::Profiler::tick_current_thread();
    if (task != nullptr) {
      // Every worker participates in each generation exactly once; the atomic
      // cursors inside the task partition the work. The submitter's job
      // usage (if any) is bound so this worker's CPU and waits charge to it;
      // the submitter itself is already bound and is not re-wrapped (nesting
      // the same binding would double-charge its CPU).
      obs::UsageScope usage_scope(task->usage, obs::UsageScope::kHelper);
      run_task(*task);
    } else {
      oneshot();  // exceptions land in the task's future
    }
  }
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  if (threads_ > 1) {
    // Carry the submitter's job-usage binding to whichever worker runs the
    // one-shot. The inline (threads_ == 1) path runs on the already-bound
    // submitting thread, so wrapping there would double-charge.
    if (obs::JobUsage* usage = obs::current_usage()) {
      fn = [usage, inner = std::move(fn)] {
        obs::UsageScope usage_scope(usage, obs::UsageScope::kHelper);
        inner();
      };
    }
  }
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  if (threads_ == 1) {
    task();  // no workers; run inline (future carries any exception)
    return fut;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    oneshots_.push_back(std::move(task));
  }
  cv_task_.notify_all();
  return fut;
}

void ThreadPool::submit_and_wait(Task& task) {
  task.workers_total = threads_;
  task.usage = obs::current_usage();
  task.remaining.store(threads_, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &task;
    ++generation_;
  }
  cv_task_.notify_all();
  run_task(task);  // the caller is a participant too
  {
    // The straggler wait at the gang barrier is real job wall that is
    // neither CPU nor I/O: charge it as lock (synchronization) wait so the
    // per-job decomposition (scheduler cpu_json, serve report) accounts for
    // load imbalance instead of leaving it in the unattributed remainder.
    const bool charge =
        task.usage != nullptr && obs::attribution_enabled() &&
        task.remaining.load(std::memory_order_acquire) != 0;
    const auto wait_start = charge ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&task] {
      return task.remaining.load(std::memory_order_acquire) == 0;
    });
    current_ = nullptr;
    if (charge) {
      obs::charge_lock_wait(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - wait_start)
              .count()));
    }
  }
  if (task.error) std::rethrow_exception(task.error);
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (threads_ == 1 || n <= grain) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Task task;
  task.n = n;
  task.grain = grain;
  task.indexed = &fn;
  submit_and_wait(task);
}

void ThreadPool::parallel_ranges(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1) {
    fn(0, n, 0);
    return;
  }
  Task task;
  task.n = n;
  task.ranged = &fn;
  submit_and_wait(task);
}

}  // namespace husg
