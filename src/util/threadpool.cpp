#include "util/threadpool.hpp"

#include <atomic>
#include <exception>

#include "util/common.hpp"

namespace husg {

struct ThreadPool::Task {
  std::size_t n = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* indexed = nullptr;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* ranged =
      nullptr;
  std::size_t workers_total = 0;

  std::atomic<std::size_t> next{0};          // chunk cursor (indexed mode)
  std::atomic<std::size_t> slice_cursor{0};  // slice cursor (ranged mode)
  std::atomic<std::size_t> remaining{0};     // participants still running
  std::exception_ptr error;
  std::mutex error_mutex;
};

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? 1 : threads) {
  if (threads_ > 1) {
    workers_.reserve(threads_ - 1);
    for (std::size_t i = 0; i + 1 < threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_task(Task& task) {
  try {
    if (task.indexed != nullptr) {
      for (;;) {
        std::size_t begin =
            task.next.fetch_add(task.grain, std::memory_order_relaxed);
        if (begin >= task.n) break;
        std::size_t end = std::min(task.n, begin + task.grain);
        for (std::size_t i = begin; i < end; ++i) (*task.indexed)(i);
      }
    } else {
      std::size_t slice =
          task.slice_cursor.fetch_add(1, std::memory_order_relaxed);
      if (slice < task.workers_total) {
        std::size_t per =
            (task.n + task.workers_total - 1) / task.workers_total;
        std::size_t begin = std::min(task.n, slice * per);
        std::size_t end = std::min(task.n, begin + per);
        if (begin < end) (*task.ranged)(begin, end, slice);
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(task.error_mutex);
    if (!task.error) task.error = std::current_exception();
  }
  if (task.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    cv_done_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Task* task = nullptr;
    std::packaged_task<void()> oneshot;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this, seen_generation] {
        return shutdown_ || generation_ != seen_generation ||
               !oneshots_.empty();
      });
      // Gang work first: a pending generation cannot complete without every
      // worker's participation, so it outranks queued one-shots. Shutdown is
      // honoured only once the one-shot queue is drained (pending futures
      // must complete).
      if (generation_ != seen_generation) {
        seen_generation = generation_;
        task = current_;
      } else if (!oneshots_.empty()) {
        oneshot = std::move(oneshots_.front());
        oneshots_.pop_front();
      } else {
        return;  // shutdown_, no work left
      }
    }
    if (task != nullptr) {
      // Every worker participates in each generation exactly once; the atomic
      // cursors inside the task partition the work.
      run_task(*task);
    } else {
      oneshot();  // exceptions land in the task's future
    }
  }
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  if (threads_ == 1) {
    task();  // no workers; run inline (future carries any exception)
    return fut;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    oneshots_.push_back(std::move(task));
  }
  cv_task_.notify_all();
  return fut;
}

void ThreadPool::submit_and_wait(Task& task) {
  task.workers_total = threads_;
  task.remaining.store(threads_, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &task;
    ++generation_;
  }
  cv_task_.notify_all();
  run_task(task);  // the caller is a participant too
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&task] {
      return task.remaining.load(std::memory_order_acquire) == 0;
    });
    current_ = nullptr;
  }
  if (task.error) std::rethrow_exception(task.error);
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (threads_ == 1 || n <= grain) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Task task;
  task.n = n;
  task.grain = grain;
  task.indexed = &fn;
  submit_and_wait(task);
}

void ThreadPool::parallel_ranges(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1) {
    fn(0, n, 0);
    return;
  }
  Task task;
  task.n = n;
  task.ranged = &fn;
  submit_and_wait(task);
}

}  // namespace husg
