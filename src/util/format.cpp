#include "util/format.hpp"

#include <cstdio>

namespace husg {

std::string human_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string human_seconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  }
  return buf;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace husg
