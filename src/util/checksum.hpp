// FNV-1a 64-bit checksum, used by the dual-block store's on-demand file
// verification. Not cryptographic — it detects corruption and truncation,
// not adversaries.
#pragma once

#include <cstddef>
#include <cstdint>

namespace husg {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Folds `len` bytes into a running FNV-1a state (start with kFnvOffset).
inline std::uint64_t fnv1a(const void* data, std::size_t len,
                           std::uint64_t state = kFnvOffset) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    state ^= p[i];
    state *= kFnvPrime;
  }
  return state;
}

}  // namespace husg
