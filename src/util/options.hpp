// Tiny command-line option parser for examples and bench drivers.
// Supports --key=value, --key value, and --flag forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace husg {

class Options {
 public:
  Options() = default;

  /// Parse argv; unknown positional arguments are collected separately.
  static Options parse(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace husg
