// LEB128-style unsigned varint codec, used by the dual-block store's
// compressed in-block encoding (sorted adjacency runs stored as
// first-value + deltas).
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace husg {

/// Appends v to out; 1-5 bytes.
inline void varint_encode(std::uint32_t v, std::vector<char>& out) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Decodes one varint starting at data[pos]; advances pos. Throws DataError
/// on truncation or overlong encodings past 32 bits.
inline std::uint32_t varint_decode(const char* data, std::size_t size,
                                   std::size_t& pos) {
  std::uint32_t value = 0;
  int shift = 0;
  for (;;) {
    HUSG_CHECK(pos < size, "varint truncated at byte " << pos);
    HUSG_CHECK(shift < 35, "varint longer than 32 bits");
    std::uint8_t byte = static_cast<std::uint8_t>(data[pos++]);
    value |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

/// Appends v to out; 1-10 bytes (64-bit LEB128). The block codec's run tags
/// and zigzag deltas can exceed 32 bits even when the ids themselves fit.
inline void varint64_encode(std::uint64_t v, std::vector<char>& out) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Decodes one 64-bit varint starting at data[pos]; advances pos. Throws
/// DataError on truncation or overlong encodings past 64 bits.
inline std::uint64_t varint64_decode(const char* data, std::size_t size,
                                     std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    HUSG_CHECK(pos < size, "varint64 truncated at byte " << pos);
    HUSG_CHECK(shift < 70, "varint64 longer than 64 bits");
    std::uint8_t byte = static_cast<std::uint8_t>(data[pos++]);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

/// Zigzag maps signed deltas onto small unsigned varints (0,-1,1,-2,... ->
/// 0,1,2,3,...), so unsorted neighbor runs still encode compactly.
inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Encodes a sorted (ascending) id run as first-value + deltas.
inline void varint_encode_run(const VertexId* ids, std::size_t n,
                              std::vector<char>& out) {
  if (n == 0) return;
  varint_encode(ids[0], out);
  for (std::size_t k = 1; k < n; ++k) {
    HUSG_CHECK(ids[k] >= ids[k - 1], "varint run must be sorted");
    varint_encode(ids[k] - ids[k - 1], out);
  }
}

/// Decodes a run of n ids written by varint_encode_run into out[0..n).
inline void varint_decode_run(const char* data, std::size_t size,
                              std::size_t& pos, VertexId* out, std::size_t n) {
  if (n == 0) return;
  out[0] = varint_decode(data, size, pos);
  for (std::size_t k = 1; k < n; ++k) {
    out[k] = out[k - 1] + varint_decode(data, size, pos);
  }
}

}  // namespace husg
