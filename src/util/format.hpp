// Small formatting helpers shared by stats reporting and benches.
#pragma once

#include <cstdint>
#include <string>

namespace husg {

/// "1.50 GB", "312.0 MB", "17 B" — powers of 1024.
std::string human_bytes(std::uint64_t bytes);

/// "12.3 s", "450 ms", "17 us".
std::string human_seconds(double seconds);

/// Thousands separators: 1234567 -> "1,234,567".
std::string with_commas(std::uint64_t value);

}  // namespace husg
