// Fixed-size worker pool with a blocking parallel_for. This is the engine's
// only parallelism primitive: ROP overlaps the out-blocks of a row across
// workers; COP splits the destination range of one in-block across workers
// (paper §3.5, "Fine-grained Parallelism").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace husg {

class ThreadPool {
 public:
  /// Creates `threads` workers. threads == 1 executes inline on the caller
  /// (no worker threads at all) which keeps single-threaded runs deterministic
  /// and cheap.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return threads_; }

  /// Runs fn(i) for every i in [0, n), distributing dynamically in chunks of
  /// `grain`. Blocks until all iterations finish. Exceptions thrown by fn are
  /// captured and the first one is rethrown on the caller thread.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)>& fn);

  /// Static range split: runs fn(begin, end, worker_index) on each worker
  /// with contiguous slices of [0, n). Useful when each worker needs
  /// per-worker scratch state.
  void parallel_ranges(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  struct Task;
  void worker_loop();
  void run_task(Task& task);
  void submit_and_wait(Task& task);

  std::size_t threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  Task* current_ = nullptr;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace husg
