// Fixed-size worker pool with a blocking parallel_for. This is the engine's
// only parallelism primitive: ROP overlaps the out-blocks of a row across
// workers; COP splits the destination range of one in-block across workers
// (paper §3.5, "Fine-grained Parallelism").
//
// Besides the gang lanes (parallel_for / parallel_ranges, one collective task
// at a time, driven by the submitting thread plus every worker) the pool has
// a one-shot lane: submit() queues an independent task that any single worker
// picks up. The engine's §3.5 COP prefetch and the service's job execution
// both ride this lane, so no code path ever spawns threads beyond the pool
// (the old prefetch used std::launch::async, one fresh thread per block).
// Workers prefer a pending gang generation over one-shots; a worker busy in a
// one-shot joins the gang when it finishes, so a gang barrier completes no
// earlier than the one-shots running at its start — exactly the overlap
// semantics the prefetch wants, but callers mixing long one-shots with gang
// work on one pool should expect the gang to wait for them.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace husg {

class ThreadPool {
 public:
  /// Creates `threads` workers. threads == 1 executes inline on the caller
  /// (no worker threads at all) which keeps single-threaded runs deterministic
  /// and cheap.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return threads_; }

  /// Runs fn(i) for every i in [0, n), distributing dynamically in chunks of
  /// `grain`. Blocks until all iterations finish. Exceptions thrown by fn are
  /// captured and the first one is rethrown on the caller thread.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)>& fn);

  /// Static range split: runs fn(begin, end, worker_index) on each worker
  /// with contiguous slices of [0, n). Useful when each worker needs
  /// per-worker scratch state.
  void parallel_ranges(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// One-shot lane: queues fn for execution by one worker and returns a
  /// future that completes (or rethrows fn's exception) when it ran. With
  /// thread_count() == 1 there are no workers, so fn runs inline before
  /// submit returns — callers get synchronous, still-correct behaviour.
  /// Queued one-shots are drained (not dropped) at pool destruction.
  std::future<void> submit(std::function<void()> fn);

 private:
  struct Task;
  void worker_loop();
  void run_task(Task& task);
  void submit_and_wait(Task& task);

  std::size_t threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  Task* current_ = nullptr;
  std::uint64_t generation_ = 0;
  std::deque<std::packaged_task<void()>> oneshots_;
  bool shutdown_ = false;
};

}  // namespace husg
