#include "util/json.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "util/common.hpp"

namespace husg {
namespace {

class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& context)
      : text_(text), context_(context) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t k = 0; k < pos_ && k < text_.size(); ++k) {
      if (text_[k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream msg;
    msg << context_ << ":" << line << ":" << col << ": " << what;
    throw DataError(msg.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    char c = peek();
    JsonValue v;
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.str = string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.b = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return v;
      default:
        return number();
    }
  }

  JsonValue number() {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    double num = std::strtod(begin, &end);
    if (end == begin) fail("expected a JSON value");
    pos_ += static_cast<std::size_t>(end - begin);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.num = num;
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        default:
          fail("unsupported string escape");
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(value());
      char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      std::string key = (peek(), string());
      expect(':');
      v.obj.emplace_back(std::move(key), value());
      char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  const std::string& context_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text, const std::string& context) {
  return JsonParser(text, context).parse();
}

}  // namespace husg
