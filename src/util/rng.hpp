// Deterministic, fast PRNG. All generators and benches must be reproducible
// across runs and platforms, so we avoid std::mt19937 distribution quirks.
#pragma once

#include <cstdint>

namespace husg {

/// SplitMix64: tiny, statistically solid, and identical everywhere.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

 private:
  std::uint64_t state_;
};

}  // namespace husg
