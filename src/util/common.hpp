// Common basic types and error-checking macros used across HUS-Graph.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace husg {

/// Vertex identifier. Graphs up to ~4.2 billion vertices are addressable.
using VertexId = std::uint32_t;

/// Edge count / offset type. Blocks may exceed 4 GiB in aggregate.
using EdgeId = std::uint64_t;

/// Edge weight used by weighted algorithms (SSSP).
using Weight = float;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// Exception thrown on malformed input data or corrupt on-disk stores.
class DataError : public std::runtime_error {
 public:
  explicit DataError(const std::string& what) : std::runtime_error(what) {}
};

/// Exception thrown on I/O failures (open/read/write/stat).
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& msg);
}  // namespace detail

}  // namespace husg

/// Always-on invariant check (used on untrusted input paths and internal
/// invariants whose violation would corrupt results). Throws husg::DataError.
#define HUSG_CHECK(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::husg::detail::check_failed(__FILE__, __LINE__, #expr,              \
                                   static_cast<std::ostringstream&&>(      \
                                       std::ostringstream{} << msg)        \
                                       .str());                            \
    }                                                                      \
  } while (0)
