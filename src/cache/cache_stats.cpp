#include "cache/cache_stats.hpp"

#include <sstream>

#include "util/format.hpp"

namespace husg {

CacheStats CacheStats::operator-(const CacheStats& rhs) const {
  CacheStats out = *this;
  out.hits -= rhs.hits;
  out.misses -= rhs.misses;
  out.cross_job_hits -= rhs.cross_job_hits;
  out.insertions -= rhs.insertions;
  out.evictions -= rhs.evictions;
  out.admission_rejects -= rhs.admission_rejects;
  out.bytes_saved -= rhs.bytes_saved;
  out.bytes_inserted -= rhs.bytes_inserted;
  out.bytes_evicted -= rhs.bytes_evicted;
  // resident_* are gauges: keep the current (minuend) values.
  return out;
}

CacheStats& CacheStats::operator+=(const CacheStats& rhs) {
  hits += rhs.hits;
  misses += rhs.misses;
  cross_job_hits += rhs.cross_job_hits;
  insertions += rhs.insertions;
  evictions += rhs.evictions;
  admission_rejects += rhs.admission_rejects;
  bytes_saved += rhs.bytes_saved;
  bytes_inserted += rhs.bytes_inserted;
  bytes_evicted += rhs.bytes_evicted;
  resident_bytes = rhs.resident_bytes;
  resident_blocks = rhs.resident_blocks;
  return *this;
}

std::string CacheStats::to_string() const {
  std::ostringstream os;
  os << hits << " hits / " << misses << " misses ("
     << static_cast<int>(hit_rate() * 100.0) << "%), saved "
     << human_bytes(bytes_saved) << ", resident "
     << human_bytes(resident_bytes) << " in " << resident_blocks
     << " blocks, " << evictions << " evictions";
  return os.str();
}

}  // namespace husg
