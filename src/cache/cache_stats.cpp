#include "cache/cache_stats.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "util/format.hpp"

namespace husg {

CacheStats CacheStats::operator-(const CacheStats& rhs) const {
  CacheStats out = *this;
  out.hits -= rhs.hits;
  out.misses -= rhs.misses;
  out.cross_job_hits -= rhs.cross_job_hits;
  out.insertions -= rhs.insertions;
  out.evictions -= rhs.evictions;
  out.admission_rejects -= rhs.admission_rejects;
  out.bytes_saved -= rhs.bytes_saved;
  out.bytes_inserted -= rhs.bytes_inserted;
  out.bytes_evicted -= rhs.bytes_evicted;
  // resident_* are gauges: keep the current (minuend) values.
  return out;
}

CacheStats& CacheStats::operator+=(const CacheStats& rhs) {
  hits += rhs.hits;
  misses += rhs.misses;
  cross_job_hits += rhs.cross_job_hits;
  insertions += rhs.insertions;
  evictions += rhs.evictions;
  admission_rejects += rhs.admission_rejects;
  bytes_saved += rhs.bytes_saved;
  bytes_inserted += rhs.bytes_inserted;
  bytes_evicted += rhs.bytes_evicted;
  resident_bytes = rhs.resident_bytes;
  resident_blocks = rhs.resident_blocks;
  return *this;
}

void CacheStats::publish(obs::Registry& reg) const {
  reg.counter("husg_cache_hits_total", "Block-cache hits").inc(hits);
  reg.counter("husg_cache_misses_total", "Block-cache misses").inc(misses);
  reg.counter("husg_cache_cross_job_hits_total",
              "Hits on blocks inserted by a different job")
      .inc(cross_job_hits);
  reg.counter("husg_cache_insertions_total", "Block-cache insertions")
      .inc(insertions);
  reg.counter("husg_cache_evictions_total", "Block-cache evictions")
      .inc(evictions);
  reg.counter("husg_cache_admission_rejects_total",
              "Inserts refused by the admission policy")
      .inc(admission_rejects);
  reg.counter("husg_cache_bytes_saved_total",
              "Disk bytes avoided by serving from the cache")
      .inc(bytes_saved);
  reg.gauge("husg_cache_resident_bytes", "Bytes resident in the cache")
      .set(static_cast<double>(resident_bytes));
  reg.gauge("husg_cache_resident_blocks", "Blocks resident in the cache")
      .set(static_cast<double>(resident_blocks));
}

std::string CacheStats::to_string() const {
  std::ostringstream os;
  os << hits << " hits / " << misses << " misses ("
     << static_cast<int>(hit_rate() * 100.0) << "%), saved "
     << human_bytes(bytes_saved) << ", resident "
     << human_bytes(resident_bytes) << " in " << resident_blocks
     << " blocks, " << evictions << " evictions";
  return os.str();
}

}  // namespace husg
