// Memory-budgeted block cache (buffer manager) for the dual-block store.
//
// The engine re-reads every out-/in-block from disk on every iteration even
// when the machine has spare RAM for the hot working set (GraphMP-style
// semi-external caching is the single biggest lever for iterative
// algorithms). BlockCache sits between the engine and the store and keeps
// decoded block payloads — adjacency bytes and CSR indices — under a
// byte-accurate budget:
//
//  * keyed by (BlockKind, row, col), one entry per on-disk block;
//  * CLOCK (second-chance) eviction with per-entry reference bits;
//  * pinning: find()/insert() return shared-ownership handles; an entry is
//    pinned exactly while a handle to it is alive, and the evictor never
//    reclaims a pinned entry (pool workers process blocks in parallel, so a
//    block being scanned by one worker must survive another worker's
//    insert-triggered eviction sweep);
//  * admission policy: a payload larger than max_block_fraction * budget is
//    never cached (one huge block must not wipe the whole working set), and
//    an insert that cannot free enough unpinned bytes is rejected rather
//    than blocked.
//
// With a zero budget the engine bypasses the cache entirely, so per-iteration
// I/O is bit-identical to the uncached engine (verified by cache_test).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cache/cache_stats.hpp"
#include "obs/profiler.hpp"

namespace husg {

/// Which of the store's four block-granular shard files an entry caches.
enum class BlockKind : std::uint8_t { kOutAdj, kOutIdx, kInAdj, kInIdx };

const char* to_string(BlockKind kind);

struct BlockKey {
  BlockKind kind = BlockKind::kOutAdj;
  std::uint32_t row = 0;
  std::uint32_t col = 0;

  bool operator==(const BlockKey&) const = default;
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const {
    std::uint64_t packed = (static_cast<std::uint64_t>(k.kind) << 60) ^
                           (static_cast<std::uint64_t>(k.row) << 30) ^
                           static_cast<std::uint64_t>(k.col);
    // splitmix64 finalizer.
    packed ^= packed >> 30;
    packed *= 0xbf58476d1ce4e5b9ULL;
    packed ^= packed >> 27;
    packed *= 0x94d049bb133111ebULL;
    packed ^= packed >> 31;
    return static_cast<std::size_t>(packed);
  }
};

class BlockCache {
 public:
  struct Options {
    std::uint64_t budget_bytes = 0;
    /// Admission: never cache a payload larger than this fraction of the
    /// budget.
    double max_block_fraction = 0.25;
  };

  /// Shared-ownership view of a cached payload. Holding one pins the entry:
  /// the evictor skips it and the bytes stay valid until the handle dies.
  using PinnedBytes = std::shared_ptr<const std::vector<char>>;

  explicit BlockCache(Options options);

  /// Lookup; counts a hit or miss. A hit marks the CLOCK reference bit and
  /// returns a pinned handle; a miss returns nullptr. `owner` tags the caller
  /// (the service passes the job id); a hit on an entry inserted by a
  /// different owner is additionally counted as a cross-job hit.
  PinnedBytes find(const BlockKey& key, std::uint32_t owner = 0);

  /// Inserts a payload (the caller just read/decoded it from disk), evicting
  /// unpinned entries CLOCK-wise until it fits. `disk_bytes` is what a future
  /// hit saves in disk reads (== payload size except for compressed blocks);
  /// `owner` is recorded for cross-job hit attribution. Returns a pinned
  /// handle to the resident entry — the existing one if the key was
  /// concurrently inserted by another worker — or nullptr if the admission
  /// policy rejected the payload.
  PinnedBytes insert(const BlockKey& key, std::vector<char> payload,
                     std::uint64_t disk_bytes, std::uint32_t owner = 0);

  /// Read-only peek (no stats, no reference bit): is the block resident?
  /// Used by the cache-aware predictor to cost the uncached residual.
  bool contains(const BlockKey& key) const;

  /// Disk bytes a hit on this key would save, or 0 if not resident.
  std::uint64_t resident_disk_bytes(const BlockKey& key) const;

  /// Charge disk bytes avoided by a hit (the reader knows how much of the
  /// payload a request actually covered, e.g. one ROP point-load range).
  void add_bytes_saved(std::uint64_t bytes);

  CacheStats stats() const;
  std::uint64_t resident_bytes() const;
  std::uint64_t budget_bytes() const { return opts_.budget_bytes; }
  std::uint64_t max_admissible_bytes() const { return max_payload_bytes_; }

  /// True while some handle to the key's entry is held outside the cache.
  /// Test hook for the pinning contract.
  bool is_pinned(const BlockKey& key) const;

  /// Installs per-owner byte quotas (the MRC-driven partition,
  /// src/service/cache_partition.hpp). An owner with a quota may never hold
  /// more resident bytes than it: inserts evict that owner's own coldest
  /// entries first, and installing a tighter quota trims the owner
  /// immediately (pinned entries can transiently exceed it). Owners without
  /// a quota are constrained only by the global budget, and an empty vector
  /// clears the partition entirely — the cache then behaves exactly as
  /// before this API existed.
  void set_partition(
      const std::vector<std::pair<std::uint32_t, std::uint64_t>>& quotas);
  bool partitioned() const;
  std::uint64_t owner_quota(std::uint32_t owner) const;  ///< 0 = none
  std::uint64_t owner_resident_bytes(std::uint32_t owner) const;

 private:
  struct Entry {
    BlockKey key;
    std::shared_ptr<const std::vector<char>> payload;
    std::uint64_t disk_bytes = 0;
    std::uint32_t owner = 0;  ///< inserting job (cross-job hit attribution)
    bool referenced = true;   ///< CLOCK second-chance bit
  };

  /// Evicts unpinned entries until `needed` bytes fit under the budget.
  /// Returns false if a full sweep frees too little (everything pinned).
  /// Caller holds mu_.
  bool make_room(std::uint64_t needed);

  /// Same sweep restricted to one owner's entries, against its quota.
  /// Caller holds mu_.
  bool make_room_owner(std::uint32_t owner, std::uint64_t needed,
                       std::uint64_t quota);

  /// Evicts ring_[pos] (heat/trace events, index fixup, byte accounting).
  /// Caller holds mu_; pos must be unpinned.
  void evict_at(std::size_t pos);

  Options opts_;
  std::uint64_t max_payload_bytes_ = 0;

  /// One mutex serializes every consult/insert of every worker sharing this
  /// cache — the canonical contention suspect, hence profiled (§15).
  mutable obs::ProfiledMutex mu_{"block_cache"};
  std::unordered_map<BlockKey, std::size_t, BlockKeyHash> index_;
  std::vector<Entry> ring_;  ///< CLOCK ring; erase is swap-with-back
  std::size_t hand_ = 0;
  std::uint64_t resident_bytes_ = 0;
  /// Per-owner residency, maintained unconditionally (cheap) so a partition
  /// can be installed mid-run; quotas only exist while partitioned.
  std::unordered_map<std::uint32_t, std::uint64_t> owner_resident_;
  std::unordered_map<std::uint32_t, std::uint64_t> quota_;
  CacheStats stats_;
};

}  // namespace husg
