// CachedBlockReader: the engine's view of the dual-block store through the
// block cache. Mirrors the store's four access methods; every consult goes
// cache-first, misses fall through to the store (charged to IoStats exactly
// as before) and are admitted into the cache. With no cache attached every
// method is a direct passthrough, so a zero-budget engine performs
// bit-identical I/O to the uncached one.
//
// ROP fill policy: a point-load miss on an admissible out-block reads the
// WHOLE block once (one positioning + one transfer) and caches it, so every
// later point load of the row — this iteration's remaining active vertices
// and all future iterations — is served from memory. This front-loads some
// transfer bytes to kill the per-vertex seeks that dominate ROP on spinning
// media; `fill_rop` off restores the paper's per-vertex loads with caching
// only on the COP/streaming side.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "cache/block_cache.hpp"
#include "cache/shadow_mrc.hpp"
#include "storage/store.hpp"

namespace husg {

/// One local CSR range [lo,hi) of a batched ROP row load.
struct OutRange {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
};

class CachedBlockReader {
 public:
  /// `owner` tags this reader's cache accesses for per-job charge accounting
  /// and cross-job hit attribution (the service passes the job id; standalone
  /// engines use the default 0).
  CachedBlockReader(const DualBlockStore& store, BlockCache* cache,
                    bool fill_rop, std::uint32_t owner = 0)
      : store_(&store), cache_(cache), fill_rop_(fill_rop), owner_(owner) {}

  const DualBlockStore& store() const { return *store_; }
  BlockCache* cache() const { return cache_; }
  bool enabled() const { return cache_ != nullptr; }
  std::uint32_t owner() const { return owner_; }

  /// This reader's share of the (possibly shared) cache's activity: hits,
  /// misses, bytes saved and inserts issued through *this* reader. Eviction
  /// counters and residency gauges stay zero — they are global properties of
  /// the cache, not attributable to one reader. Thread-safe (pool workers
  /// drive one reader concurrently).
  CacheStats local_stats() const;

  void load_out_index(std::uint32_t i, std::uint32_t j,
                      std::vector<std::uint32_t>& out) const;

  AdjacencySlice load_out_edges(std::uint32_t i, std::uint32_t j,
                                std::uint32_t lo, std::uint32_t hi,
                                AdjacencyBuffer& buf) const;

  /// Batched ROP: point-loads `count` CSR ranges of out-block (i,j), and
  /// invokes emit(k, slice) for each range in k order (each slice is valid
  /// only during its emit call, like consecutive load_out_edges results).
  ///
  /// Per-range cache consults, heat events, trace events and IoStats charges
  /// replicate a load_out_edges loop exactly — including the ROP fill path,
  /// which runs inline so later ranges of the row hit the cache just as they
  /// would per-vertex. The ranges that do fall through to disk are submitted
  /// to the I/O backend as ONE batch (a single ring submission under uring)
  /// instead of one pread per vertex.
  void load_out_edges_batch(
      std::uint32_t i, std::uint32_t j, const OutRange* ranges,
      std::size_t count, AdjacencyBuffer& buf,
      const std::function<void(std::size_t, const AdjacencySlice&)>& emit)
      const;

  void load_in_index(std::uint32_t i, std::uint32_t j,
                     std::vector<std::uint32_t>& out) const;

  AdjacencySlice stream_in_block(std::uint32_t i, std::uint32_t j,
                                 AdjacencyBuffer& buf) const;

  /// Decode-side codec counters of this reader (blocks decoded, encoded and
  /// decoded byte volumes). All-zero for kNone stores. Thread-safe.
  CodecStats codec_stats() const;

  /// Resident out-adjacency bytes of row i / in-adjacency bytes of column i
  /// (on-disk sizes). The cache-aware predictor costs the uncached residual.
  std::uint64_t cached_row_bytes(std::uint32_t i) const;
  std::uint64_t cached_column_bytes(std::uint32_t i) const;

  /// Attach a shadow miss-ratio tracker (cache/shadow_mrc.hpp): every cache
  /// consult through this reader is then mirrored into it. The tracker must
  /// outlive the reader; null detaches. No-op without a cache.
  void set_shadow(ShadowMrc* shadow) { shadow_ = shadow; }
  ShadowMrc* shadow() const { return shadow_; }

 private:
  /// Copies a uint32 array into a cache payload byte vector.
  static std::vector<char> to_payload(const std::uint32_t* data,
                                      std::size_t count);

  /// Decodes `count` fixed-width records starting at record `first` of a
  /// cached block payload. Unweighted payloads are served zero-copy: the
  /// returned spans point into the cache entry and `buf.guard` keeps it
  /// pinned until the caller's next decode.
  AdjacencySlice decode_payload(const BlockCache::PinnedBytes& payload,
                                std::size_t first, std::size_t count,
                                bool weighted, AdjacencyBuffer& buf) const;

  /// Cache-first lookup that also charges this reader's local ledger. On a
  /// hit, `saved_bytes` (the disk bytes this request would otherwise read)
  /// are credited both globally and locally. `payload_bytes` is the bytes
  /// the block occupies when resident (== saved_bytes except for ROP point
  /// loads, which save a point read but keep the whole block) — the shadow
  /// tracker's stack-distance weight.
  BlockCache::PinnedBytes consult(const BlockKey& key,
                                  std::uint64_t saved_bytes,
                                  std::uint64_t payload_bytes) const;

  /// Insert through the cache, charging the local ledger.
  BlockCache::PinnedBytes admit(const BlockKey& key, std::vector<char> payload,
                                std::uint64_t disk_bytes) const;

  /// Decodes a codec block's raw bytes into buf.ids, memoizes the decode and
  /// charges the codec counters. Returns the decoded id count.
  std::size_t decode_codec(const char* data, std::size_t size,
                           std::uint8_t kind, std::uint32_t i, std::uint32_t j,
                           std::uint64_t expected, AdjacencyBuffer& buf) const;

  /// Codec twins of the two adjacency paths: whole-block reads, encoded
  /// payloads in the cache, per-buffer decode memo consulted before the
  /// cache so repeated point loads of one block count one cache event.
  AdjacencySlice load_out_edges_codec(std::uint32_t i, std::uint32_t j,
                                      std::uint32_t lo, std::uint32_t hi,
                                      AdjacencyBuffer& buf) const;
  AdjacencySlice stream_in_block_codec(std::uint32_t i, std::uint32_t j,
                                       AdjacencyBuffer& buf) const;

  const DualBlockStore* store_;
  BlockCache* cache_;
  bool fill_rop_;
  std::uint32_t owner_ = 0;
  ShadowMrc* shadow_ = nullptr;

  /// Per-reader counters (relaxed atomics; snapshot via local_stats()).
  mutable std::atomic<std::uint64_t> local_hits_{0};
  mutable std::atomic<std::uint64_t> local_misses_{0};
  mutable std::atomic<std::uint64_t> local_insertions_{0};
  mutable std::atomic<std::uint64_t> local_rejects_{0};
  mutable std::atomic<std::uint64_t> local_bytes_saved_{0};

  /// Codec decode counters (skip-side counters live in the engine).
  mutable std::atomic<std::uint64_t> blocks_decoded_{0};
  mutable std::atomic<std::uint64_t> encoded_bytes_{0};
  mutable std::atomic<std::uint64_t> decoded_bytes_{0};
  /// Decode CPU wall; only advances while obs attribution is armed.
  mutable std::atomic<std::uint64_t> decode_ns_{0};
};

}  // namespace husg
