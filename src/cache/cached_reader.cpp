#include "cache/cached_reader.hpp"

#include <cstring>

#include "obs/heatmap.hpp"
#include "obs/iotrace.hpp"
#include "obs/trace.hpp"

namespace husg {

namespace {

// Heatmap feeds (adjacency payloads only; index I/O is excluded by design —
// see obs/heatmap.hpp). One relaxed-ish atomic load and a branch when the
// profiler is disarmed.
inline void heat_read(obs::HeatDir dir, std::uint32_t i, std::uint32_t j,
                      std::uint64_t bytes) {
  if (obs::heatmap_enabled()) [[unlikely]] {
    obs::Heatmap::instance().record_read(dir, i, j, bytes);
  }
}

// Codec reads: disk bytes (encoded) and logical payload bytes differ.
inline void heat_read(obs::HeatDir dir, std::uint32_t i, std::uint32_t j,
                      std::uint64_t bytes, std::uint64_t payload_bytes) {
  if (obs::heatmap_enabled()) [[unlikely]] {
    obs::Heatmap::instance().record_read(dir, i, j, bytes, payload_bytes);
  }
}

inline void heat_hit(obs::HeatDir dir, std::uint32_t i, std::uint32_t j) {
  if (obs::heatmap_enabled()) [[unlikely]] {
    obs::Heatmap::instance().record_hit(dir, i, j);
  }
}

inline void heat_miss(obs::HeatDir dir, std::uint32_t i, std::uint32_t j) {
  if (obs::heatmap_enabled()) [[unlikely]] {
    obs::Heatmap::instance().record_miss(dir, i, j);
  }
}

// I/O trace feed (obs/iotrace.hpp). Every call site records the
// budget-INDEPENDENT facts of the request — what a hit saves (`saved`), what
// a miss would insert (`payload`) and read (`disk`) — alongside the observed
// outcome, so the offline replay can take either branch at any budget. Call
// sites gate on iotrace_enabled() so the disarmed cost is one acquire load.
inline void trace_access(obs::TraceBlockKind kind, obs::TraceOutcome outcome,
                         obs::TraceInsertMode mode, obs::TraceAdmit admit,
                         std::uint32_t row, std::uint32_t col,
                         std::uint32_t owner, std::uint64_t saved,
                         std::uint64_t payload, std::uint64_t disk) {
  obs::AccessEvent e;
  e.kind = kind;
  e.outcome = outcome;
  e.insert_mode = mode;
  e.admit = admit;
  e.row = row;
  e.col = col;
  e.owner = owner;
  e.saved_bytes = saved;
  e.payload_bytes = payload;
  e.disk_bytes = disk;
  obs::IoTrace::instance().record_access(e);
}

}  // namespace

CodecStats CachedBlockReader::codec_stats() const {
  CodecStats s;
  s.blocks_decoded = blocks_decoded_.load(std::memory_order_relaxed);
  s.encoded_bytes = encoded_bytes_.load(std::memory_order_relaxed);
  s.decoded_bytes = decoded_bytes_.load(std::memory_order_relaxed);
  s.decode_ns = decode_ns_.load(std::memory_order_relaxed);
  return s;
}

CacheStats CachedBlockReader::local_stats() const {
  CacheStats s;
  s.hits = local_hits_.load(std::memory_order_relaxed);
  s.misses = local_misses_.load(std::memory_order_relaxed);
  s.insertions = local_insertions_.load(std::memory_order_relaxed);
  s.admission_rejects = local_rejects_.load(std::memory_order_relaxed);
  s.bytes_saved = local_bytes_saved_.load(std::memory_order_relaxed);
  return s;
}

BlockCache::PinnedBytes CachedBlockReader::consult(
    const BlockKey& key, std::uint64_t saved_bytes,
    std::uint64_t payload_bytes) const {
  if (shadow_ != nullptr) shadow_->record(key, payload_bytes, saved_bytes);
  BlockCache::PinnedBytes hit = cache_->find(key, owner_);
  if (hit != nullptr) {
    cache_->add_bytes_saved(saved_bytes);
    local_hits_.fetch_add(1, std::memory_order_relaxed);
    local_bytes_saved_.fetch_add(saved_bytes, std::memory_order_relaxed);
  } else {
    local_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return hit;
}

BlockCache::PinnedBytes CachedBlockReader::admit(const BlockKey& key,
                                                 std::vector<char> payload,
                                                 std::uint64_t disk_bytes) const {
  BlockCache::PinnedBytes in =
      cache_->insert(key, std::move(payload), disk_bytes, owner_);
  // A non-null return may be another worker's racing copy; attributing it
  // here keeps the local ledger monotone and at worst over-credits one
  // insert per race.
  (in != nullptr ? local_insertions_ : local_rejects_)
      .fetch_add(1, std::memory_order_relaxed);
  return in;
}

std::vector<char> CachedBlockReader::to_payload(const std::uint32_t* data,
                                                std::size_t count) {
  std::vector<char> bytes(count * sizeof(std::uint32_t));
  std::memcpy(bytes.data(), data, bytes.size());
  return bytes;
}

AdjacencySlice CachedBlockReader::decode_payload(
    const BlockCache::PinnedBytes& payload, std::size_t first,
    std::size_t count, bool weighted, AdjacencyBuffer& buf) const {
  if (!weighted) {
    // Payload is a bare uint32 id array; serve a zero-copy view, pinned via
    // buf.guard. (Codec payloads never reach here — they decode via
    // decode_codec into buf.ids.)
    const auto* ids = reinterpret_cast<const VertexId*>(payload->data());
    buf.guard = payload;
    return AdjacencySlice{std::span<const VertexId>(ids + first, count), {}};
  }
  const auto* recs = reinterpret_cast<const WeightedRecord*>(payload->data());
  buf.ids.resize(count);
  buf.ws.resize(count);
  for (std::size_t k = 0; k < count; ++k) {
    buf.ids[k] = recs[first + k].vid;
    buf.ws[k] = recs[first + k].weight;
  }
  buf.guard.reset();
  return AdjacencySlice{std::span<const VertexId>(buf.ids),
                        std::span<const Weight>(buf.ws)};
}

void CachedBlockReader::load_out_index(std::uint32_t i, std::uint32_t j,
                                       std::vector<std::uint32_t>& out) const {
  HUSG_SPAN("cache", "load_out_index", "i", static_cast<std::int64_t>(i), "j",
            static_cast<std::int64_t>(j));
  std::uint64_t idx_bytes =
      (static_cast<std::uint64_t>(store_->meta().interval_size(i)) + 1) *
      sizeof(std::uint32_t);
  if (cache_ == nullptr) {
    store_->load_out_index(i, j, out);
    if (obs::iotrace_enabled()) [[unlikely]] {
      trace_access(obs::TraceBlockKind::kOutIdx, obs::TraceOutcome::kBypass,
                   obs::TraceInsertMode::kAlways, obs::TraceAdmit::kNone, i, j,
                   owner_, idx_bytes, idx_bytes, idx_bytes);
    }
    return;
  }
  BlockKey key{BlockKind::kOutIdx, i, j};
  if (BlockCache::PinnedBytes hit = consult(key, idx_bytes, idx_bytes)) {
    out.resize(hit->size() / sizeof(std::uint32_t));
    std::memcpy(out.data(), hit->data(), hit->size());
    if (obs::iotrace_enabled()) [[unlikely]] {
      trace_access(obs::TraceBlockKind::kOutIdx, obs::TraceOutcome::kHit,
                   obs::TraceInsertMode::kAlways, obs::TraceAdmit::kNone, i, j,
                   owner_, idx_bytes, idx_bytes, idx_bytes);
    }
    return;
  }
  store_->load_out_index(i, j, out);
  BlockCache::PinnedBytes in = admit(key, to_payload(out.data(), out.size()),
                                     out.size() * sizeof(std::uint32_t));
  if (obs::iotrace_enabled()) [[unlikely]] {
    trace_access(obs::TraceBlockKind::kOutIdx, obs::TraceOutcome::kMiss,
                 obs::TraceInsertMode::kAlways,
                 in != nullptr ? obs::TraceAdmit::kInserted
                               : obs::TraceAdmit::kRejected,
                 i, j, owner_, idx_bytes, idx_bytes, idx_bytes);
  }
}

void CachedBlockReader::load_in_index(std::uint32_t i, std::uint32_t j,
                                      std::vector<std::uint32_t>& out) const {
  HUSG_SPAN("cache", "load_in_index", "i", static_cast<std::int64_t>(i), "j",
            static_cast<std::int64_t>(j));
  std::uint64_t idx_bytes =
      (static_cast<std::uint64_t>(store_->meta().interval_size(j)) + 1) *
      sizeof(std::uint32_t);
  if (cache_ == nullptr) {
    store_->load_in_index(i, j, out);
    if (obs::iotrace_enabled()) [[unlikely]] {
      trace_access(obs::TraceBlockKind::kInIdx, obs::TraceOutcome::kBypass,
                   obs::TraceInsertMode::kAlways, obs::TraceAdmit::kNone, i, j,
                   owner_, idx_bytes, idx_bytes, idx_bytes);
    }
    return;
  }
  BlockKey key{BlockKind::kInIdx, i, j};
  if (BlockCache::PinnedBytes hit = consult(key, idx_bytes, idx_bytes)) {
    out.resize(hit->size() / sizeof(std::uint32_t));
    std::memcpy(out.data(), hit->data(), hit->size());
    if (obs::iotrace_enabled()) [[unlikely]] {
      trace_access(obs::TraceBlockKind::kInIdx, obs::TraceOutcome::kHit,
                   obs::TraceInsertMode::kAlways, obs::TraceAdmit::kNone, i, j,
                   owner_, idx_bytes, idx_bytes, idx_bytes);
    }
    return;
  }
  store_->load_in_index(i, j, out);
  BlockCache::PinnedBytes in = admit(key, to_payload(out.data(), out.size()),
                                     out.size() * sizeof(std::uint32_t));
  if (obs::iotrace_enabled()) [[unlikely]] {
    trace_access(obs::TraceBlockKind::kInIdx, obs::TraceOutcome::kMiss,
                 obs::TraceInsertMode::kAlways,
                 in != nullptr ? obs::TraceAdmit::kInserted
                               : obs::TraceAdmit::kRejected,
                 i, j, owner_, idx_bytes, idx_bytes, idx_bytes);
  }
}

std::size_t CachedBlockReader::decode_codec(const char* data, std::size_t size,
                                            std::uint8_t kind, std::uint32_t i,
                                            std::uint32_t j,
                                            std::uint64_t expected,
                                            AdjacencyBuffer& buf) const {
  buf.guard.reset();
  // Decode timing is gated on attribution (same contract as --io-timing): the
  // default engine path pays no clock reads, armed runs feed CodecStats
  // .decode_ns, the per-job usage split, and the T_decode audit.
  const bool timed = obs::attribution_enabled();
  const std::uint64_t t0 = timed ? obs::now_ns() : 0;
  std::size_t n = decode_block(data, size, buf.ids);
  if (timed) {
    const std::uint64_t dt = obs::now_ns() - t0;
    decode_ns_.fetch_add(dt, std::memory_order_relaxed);
    obs::charge_decode(dt);
  }
  HUSG_CHECK(n == expected, (kind == 0 ? "out" : "in")
                                << "-block (" << i << "," << j << ") decoded "
                                << n << " ids, directory says " << expected);
  buf.memo_set(kind, i, j);
  blocks_decoded_.fetch_add(1, std::memory_order_relaxed);
  encoded_bytes_.fetch_add(size, std::memory_order_relaxed);
  decoded_bytes_.fetch_add(n * sizeof(VertexId), std::memory_order_relaxed);
  return n;
}

AdjacencySlice CachedBlockReader::load_out_edges_codec(
    std::uint32_t i, std::uint32_t j, std::uint32_t lo, std::uint32_t hi,
    AdjacencyBuffer& buf) const {
  const StoreMeta& meta = store_->meta();
  const BlockExtent& block = meta.out_block(i, j);
  const std::uint64_t adj = block.adj_bytes;
  const std::uint64_t logical = block.edge_count * sizeof(VertexId);
  auto serve = [&]() -> AdjacencySlice {
    HUSG_CHECK(lo <= hi && hi <= buf.ids.size(),
               "load_out_edges: range beyond block");
    return AdjacencySlice{
        std::span<const VertexId>(buf.ids).subspan(lo, hi - lo), {}};
  };
  // Memoized whole-block decode: every later point load of this block through
  // this buffer is pure memory — no I/O, no cache event, no heat.
  if (buf.memo_matches(0, i, j)) return serve();
  const obs::TraceInsertMode fill_mode =
      fill_rop_ ? obs::TraceInsertMode::kIfAdmissible
                : obs::TraceInsertMode::kNone;
  if (cache_ == nullptr) {
    heat_read(obs::HeatDir::kOut, i, j, adj, logical);
    if (obs::iotrace_enabled()) [[unlikely]] {
      trace_access(obs::TraceBlockKind::kOutAdj, obs::TraceOutcome::kBypass,
                   fill_mode, obs::TraceAdmit::kNone, i, j, owner_, adj, adj,
                   adj);
    }
    store_->read_out_block_raw(i, j, buf.raw);
    decode_codec(buf.raw.data(), buf.raw.size(), 0, i, j, block.edge_count,
                 buf);
    return serve();
  }
  BlockKey key{BlockKind::kOutAdj, i, j};
  // Cached payloads are the ENCODED bytes (admission charges the compressed
  // size); a hit skips the disk read but still decodes into the buffer memo.
  if (BlockCache::PinnedBytes hit = consult(key, adj, adj)) {
    heat_hit(obs::HeatDir::kOut, i, j);
    if (obs::iotrace_enabled()) [[unlikely]] {
      trace_access(obs::TraceBlockKind::kOutAdj, obs::TraceOutcome::kHit,
                   fill_mode, obs::TraceAdmit::kNone, i, j, owner_, adj, adj,
                   adj);
    }
    decode_codec(hit->data(), hit->size(), 0, i, j, block.edge_count, buf);
    return serve();
  }
  heat_miss(obs::HeatDir::kOut, i, j);
  heat_read(obs::HeatDir::kOut, i, j, adj, logical);
  store_->read_out_block_raw(i, j, buf.raw);
  BlockCache::PinnedBytes pinned;
  bool attempted = fill_rop_ && adj <= cache_->max_admissible_bytes();
  if (attempted) {
    pinned = admit(key, std::vector<char>(buf.raw.begin(), buf.raw.end()), adj);
  }
  if (obs::iotrace_enabled()) [[unlikely]] {
    trace_access(obs::TraceBlockKind::kOutAdj, obs::TraceOutcome::kMiss,
                 fill_mode,
                 pinned != nullptr ? obs::TraceAdmit::kInserted
                 : attempted       ? obs::TraceAdmit::kRejected
                                   : obs::TraceAdmit::kNone,
                 i, j, owner_, adj, adj, adj);
  }
  decode_codec(buf.raw.data(), buf.raw.size(), 0, i, j, block.edge_count, buf);
  return serve();
}

AdjacencySlice CachedBlockReader::stream_in_block_codec(
    std::uint32_t i, std::uint32_t j, AdjacencyBuffer& buf) const {
  const StoreMeta& meta = store_->meta();
  const BlockExtent& block = meta.in_block(i, j);
  const std::uint64_t adj = block.adj_bytes;
  const std::uint64_t logical = block.edge_count * sizeof(VertexId);
  auto serve = [&]() -> AdjacencySlice {
    return AdjacencySlice{std::span<const VertexId>(buf.ids), {}};
  };
  if (buf.memo_matches(1, i, j)) return serve();
  if (cache_ == nullptr) {
    heat_read(obs::HeatDir::kIn, i, j, adj, logical);
    if (obs::iotrace_enabled()) [[unlikely]] {
      trace_access(obs::TraceBlockKind::kInAdj, obs::TraceOutcome::kBypass,
                   obs::TraceInsertMode::kAlways, obs::TraceAdmit::kNone, i, j,
                   owner_, adj, adj, adj);
    }
    store_->read_in_block_raw(i, j, buf.raw);
    decode_codec(buf.raw.data(), buf.raw.size(), 1, i, j, block.edge_count,
                 buf);
    return serve();
  }
  BlockKey key{BlockKind::kInAdj, i, j};
  if (BlockCache::PinnedBytes hit = consult(key, adj, adj)) {
    heat_hit(obs::HeatDir::kIn, i, j);
    if (obs::iotrace_enabled()) [[unlikely]] {
      trace_access(obs::TraceBlockKind::kInAdj, obs::TraceOutcome::kHit,
                   obs::TraceInsertMode::kAlways, obs::TraceAdmit::kNone, i, j,
                   owner_, adj, adj, adj);
    }
    decode_codec(hit->data(), hit->size(), 1, i, j, block.edge_count, buf);
    return serve();
  }
  heat_miss(obs::HeatDir::kIn, i, j);
  heat_read(obs::HeatDir::kIn, i, j, adj, logical);
  store_->read_in_block_raw(i, j, buf.raw);
  BlockCache::PinnedBytes in =
      admit(key, std::vector<char>(buf.raw.begin(), buf.raw.end()), adj);
  if (obs::iotrace_enabled()) [[unlikely]] {
    trace_access(obs::TraceBlockKind::kInAdj, obs::TraceOutcome::kMiss,
                 obs::TraceInsertMode::kAlways,
                 in != nullptr ? obs::TraceAdmit::kInserted
                               : obs::TraceAdmit::kRejected,
                 i, j, owner_, adj, adj, adj);
  }
  decode_codec(buf.raw.data(), buf.raw.size(), 1, i, j, block.edge_count, buf);
  return serve();
}

AdjacencySlice CachedBlockReader::load_out_edges(std::uint32_t i,
                                                 std::uint32_t j,
                                                 std::uint32_t lo,
                                                 std::uint32_t hi,
                                                 AdjacencyBuffer& buf) const {
  const StoreMeta& meta = store_->meta();
  if (meta.codec != BlockCodecKind::kNone) {
    return load_out_edges_codec(i, j, lo, hi, buf);
  }
  const std::uint32_t rec = meta.edge_record_bytes();
  const std::uint64_t point_bytes = static_cast<std::uint64_t>(hi - lo) * rec;
  // Budget-independent insert facts for the trace: whether this block WOULD
  // be fill-admitted depends on the replaying cache's budget, so the trace
  // records the policy (kIfAdmissible) and the whole-block payload, not the
  // live gate's verdict.
  const obs::TraceInsertMode fill_mode =
      fill_rop_ ? obs::TraceInsertMode::kIfAdmissible
                : obs::TraceInsertMode::kNone;
  if (cache_ == nullptr) {
    heat_read(obs::HeatDir::kOut, i, j, point_bytes);
    if (obs::iotrace_enabled()) [[unlikely]] {
      const std::uint64_t adj = meta.out_block(i, j).adj_bytes;
      trace_access(obs::TraceBlockKind::kOutAdj, obs::TraceOutcome::kBypass,
                   fill_mode, obs::TraceAdmit::kNone, i, j, owner_,
                   point_bytes, adj, adj);
    }
    return store_->load_out_edges(i, j, lo, hi, buf);
  }
  const bool weighted = meta.weighted;
  BlockKey key{BlockKind::kOutAdj, i, j};
  if (BlockCache::PinnedBytes hit =
          consult(key, point_bytes, meta.out_block(i, j).adj_bytes)) {
    heat_hit(obs::HeatDir::kOut, i, j);
    if (obs::iotrace_enabled()) [[unlikely]] {
      const std::uint64_t adj = meta.out_block(i, j).adj_bytes;
      trace_access(obs::TraceBlockKind::kOutAdj, obs::TraceOutcome::kHit,
                   fill_mode, obs::TraceAdmit::kNone, i, j, owner_,
                   point_bytes, adj, adj);
    }
    return decode_payload(hit, lo, hi - lo, weighted, buf);
  }
  heat_miss(obs::HeatDir::kOut, i, j);
  const BlockExtent& block = meta.out_block(i, j);
  if (fill_rop_ && block.adj_bytes <= cache_->max_admissible_bytes()) {
    // Fill: one whole-block read replaces this and all future point loads.
    // (No span on the per-vertex point-load path above — it is too hot.)
    HUSG_SPAN("cache", "fill_out_block", "i", static_cast<std::int64_t>(i),
              "j", static_cast<std::int64_t>(j));
    heat_read(obs::HeatDir::kOut, i, j, block.adj_bytes);
    buf.guard.reset();
    store_->load_out_edges(i, j, 0,
                           static_cast<std::uint32_t>(block.edge_count), buf);
    std::vector<char> payload(buf.raw.begin(), buf.raw.end());
    BlockCache::PinnedBytes pinned =
        admit(key, std::move(payload), block.adj_bytes);
    if (obs::iotrace_enabled()) [[unlikely]] {
      trace_access(obs::TraceBlockKind::kOutAdj, obs::TraceOutcome::kMiss,
                   fill_mode,
                   pinned != nullptr ? obs::TraceAdmit::kInserted
                                     : obs::TraceAdmit::kRejected,
                   i, j, owner_, point_bytes, block.adj_bytes,
                   block.adj_bytes);
    }
    if (pinned != nullptr) {
      return decode_payload(pinned, lo, hi - lo, weighted, buf);
    }
    // Admission raced or was rejected; serve from the just-read bytes.
    return decode_payload(
        std::make_shared<const std::vector<char>>(buf.raw.begin(),
                                                  buf.raw.end()),
        lo, hi - lo, weighted, buf);
  }
  heat_read(obs::HeatDir::kOut, i, j, point_bytes);
  if (obs::iotrace_enabled()) [[unlikely]] {
    trace_access(obs::TraceBlockKind::kOutAdj, obs::TraceOutcome::kMiss,
                 fill_mode, obs::TraceAdmit::kNone, i, j, owner_, point_bytes,
                 block.adj_bytes, block.adj_bytes);
  }
  buf.guard.reset();
  return store_->load_out_edges(i, j, lo, hi, buf);
}

void CachedBlockReader::load_out_edges_batch(
    std::uint32_t i, std::uint32_t j, const OutRange* ranges, std::size_t count,
    AdjacencyBuffer& buf,
    const std::function<void(std::size_t, const AdjacencySlice&)>& emit) const {
  if (count == 0) return;
  const StoreMeta& meta = store_->meta();
  if (meta.codec != BlockCodecKind::kNone) {
    // Codec blocks decode whole-block into the buffer memo on the first
    // range; the rest are pure memory. Nothing left to batch.
    for (std::size_t k = 0; k < count; ++k) {
      emit(k, load_out_edges_codec(i, j, ranges[k].lo, ranges[k].hi, buf));
    }
    return;
  }
  const std::uint32_t rec = meta.edge_record_bytes();
  const bool weighted = meta.weighted;
  const BlockExtent& block = meta.out_block(i, j);
  const obs::TraceInsertMode fill_mode =
      fill_rop_ ? obs::TraceInsertMode::kIfAdmissible
                : obs::TraceInsertMode::kNone;

  // Per-range plan: either a payload to decode from (cache hit / inline
  // fill), or a staging window the batched disk read lands in.
  struct Plan {
    BlockCache::PinnedBytes payload;  ///< non-null: serve from these bytes
    std::size_t staging = 0;          ///< else: offset into buf.raw
  };
  std::vector<Plan> plans(count);
  std::vector<IoReadOp> ops;  // block-relative; resolved after staging sizes
  std::vector<std::size_t> op_staging;
  std::size_t staging_bytes = 0;

  // Phase 1 — consult/heat/trace per range, in order, replicating the
  // per-vertex loop's cache events exactly. Ranges that need disk queue up.
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint32_t lo = ranges[k].lo;
    const std::uint32_t hi = ranges[k].hi;
    const std::uint64_t point_bytes = static_cast<std::uint64_t>(hi - lo) * rec;
    auto queue_pending = [&] {
      staging_bytes = (staging_bytes + 3) & ~std::size_t{3};
      plans[k].staging = staging_bytes;
      if (point_bytes > 0) {
        ops.push_back(IoReadOp{nullptr, static_cast<std::size_t>(point_bytes),
                               static_cast<std::uint64_t>(lo) * rec});
        op_staging.push_back(staging_bytes);
        staging_bytes += point_bytes;
      }
    };
    if (cache_ == nullptr) {
      heat_read(obs::HeatDir::kOut, i, j, point_bytes);
      if (obs::iotrace_enabled()) [[unlikely]] {
        trace_access(obs::TraceBlockKind::kOutAdj, obs::TraceOutcome::kBypass,
                     fill_mode, obs::TraceAdmit::kNone, i, j, owner_,
                     point_bytes, block.adj_bytes, block.adj_bytes);
      }
      queue_pending();
      continue;
    }
    BlockKey key{BlockKind::kOutAdj, i, j};
    if (BlockCache::PinnedBytes hit =
            consult(key, point_bytes, block.adj_bytes)) {
      heat_hit(obs::HeatDir::kOut, i, j);
      if (obs::iotrace_enabled()) [[unlikely]] {
        trace_access(obs::TraceBlockKind::kOutAdj, obs::TraceOutcome::kHit,
                     fill_mode, obs::TraceAdmit::kNone, i, j, owner_,
                     point_bytes, block.adj_bytes, block.adj_bytes);
      }
      plans[k].payload = std::move(hit);
      continue;
    }
    heat_miss(obs::HeatDir::kOut, i, j);
    if (fill_rop_ && block.adj_bytes <= cache_->max_admissible_bytes()) {
      // Inline fill (same as the per-vertex path): one whole-block read,
      // admitted now, so every later range of this row hits. Because the
      // fill fires on the FIRST miss, no pending ranges can precede it.
      HUSG_SPAN("cache", "fill_out_block", "i", static_cast<std::int64_t>(i),
                "j", static_cast<std::int64_t>(j));
      heat_read(obs::HeatDir::kOut, i, j, block.adj_bytes);
      buf.guard.reset();
      store_->load_out_edges(i, j, 0,
                             static_cast<std::uint32_t>(block.edge_count), buf);
      std::vector<char> payload(buf.raw.begin(), buf.raw.end());
      BlockCache::PinnedBytes pinned =
          admit(key, std::move(payload), block.adj_bytes);
      if (obs::iotrace_enabled()) [[unlikely]] {
        trace_access(obs::TraceBlockKind::kOutAdj, obs::TraceOutcome::kMiss,
                     fill_mode,
                     pinned != nullptr ? obs::TraceAdmit::kInserted
                                       : obs::TraceAdmit::kRejected,
                     i, j, owner_, point_bytes, block.adj_bytes,
                     block.adj_bytes);
      }
      plans[k].payload =
          pinned != nullptr
              ? std::move(pinned)
              : std::make_shared<const std::vector<char>>(buf.raw.begin(),
                                                          buf.raw.end());
      continue;
    }
    heat_read(obs::HeatDir::kOut, i, j, point_bytes);
    if (obs::iotrace_enabled()) [[unlikely]] {
      trace_access(obs::TraceBlockKind::kOutAdj, obs::TraceOutcome::kMiss,
                   fill_mode, obs::TraceAdmit::kNone, i, j, owner_,
                   point_bytes, block.adj_bytes, block.adj_bytes);
    }
    queue_pending();
  }

  // Phase 2 — one backend submission for every range that needs disk.
  // IoStats charges (one random op per range) are identical to the loop.
  if (!ops.empty()) {
    buf.guard.reset();
    buf.raw.resize(staging_bytes);
    for (std::size_t q = 0; q < ops.size(); ++q) {
      ops[q].buf = buf.raw.data() + op_staging[q];
    }
    store_->load_out_ranges(i, j, ops.data(), ops.size());
  }

  // Phase 3 — emit every range in k order (floating-point apply order, and
  // therefore engine results, stay bit-identical to the per-vertex loop).
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint32_t lo = ranges[k].lo;
    const std::uint32_t hi = ranges[k].hi;
    const std::size_t n = hi - lo;
    if (plans[k].payload != nullptr) {
      emit(k, decode_payload(plans[k].payload, lo, n, weighted, buf));
      continue;
    }
    const char* raw = buf.raw.data() + plans[k].staging;
    buf.memo_valid = false;
    buf.guard.reset();
    if (!weighted) {
      buf.ids.resize(n);
      std::memcpy(buf.ids.data(), raw, n * sizeof(VertexId));
      emit(k, AdjacencySlice{std::span<const VertexId>(buf.ids), {}});
      continue;
    }
    buf.ids.resize(n);
    buf.ws.resize(n);
    const auto* recs = reinterpret_cast<const WeightedRecord*>(raw);
    for (std::size_t t = 0; t < n; ++t) {
      buf.ids[t] = recs[t].vid;
      buf.ws[t] = recs[t].weight;
    }
    emit(k, AdjacencySlice{std::span<const VertexId>(buf.ids),
                           std::span<const Weight>(buf.ws)});
  }
}

AdjacencySlice CachedBlockReader::stream_in_block(std::uint32_t i,
                                                  std::uint32_t j,
                                                  AdjacencyBuffer& buf) const {
  HUSG_SPAN("cache", "stream_in_block", "i", static_cast<std::int64_t>(i), "j",
            static_cast<std::int64_t>(j));
  const StoreMeta& meta = store_->meta();
  if (meta.codec != BlockCodecKind::kNone) {
    return stream_in_block_codec(i, j, buf);
  }
  const BlockExtent& block = meta.in_block(i, j);
  if (cache_ == nullptr) {
    heat_read(obs::HeatDir::kIn, i, j, block.adj_bytes);
    if (obs::iotrace_enabled()) [[unlikely]] {
      trace_access(obs::TraceBlockKind::kInAdj, obs::TraceOutcome::kBypass,
                   obs::TraceInsertMode::kAlways, obs::TraceAdmit::kNone, i, j,
                   owner_, block.adj_bytes, block.adj_bytes, block.adj_bytes);
    }
    return store_->stream_in_block(i, j, buf);
  }
  BlockKey key{BlockKind::kInAdj, i, j};
  if (BlockCache::PinnedBytes hit =
          consult(key, block.adj_bytes, block.adj_bytes)) {
    heat_hit(obs::HeatDir::kIn, i, j);
    if (obs::iotrace_enabled()) [[unlikely]] {
      trace_access(obs::TraceBlockKind::kInAdj, obs::TraceOutcome::kHit,
                   obs::TraceInsertMode::kAlways, obs::TraceAdmit::kNone, i, j,
                   owner_, block.adj_bytes, block.adj_bytes, block.adj_bytes);
    }
    return decode_payload(hit, 0, block.edge_count, meta.weighted, buf);
  }
  heat_miss(obs::HeatDir::kIn, i, j);
  heat_read(obs::HeatDir::kIn, i, j, block.adj_bytes);
  buf.guard.reset();
  AdjacencySlice slice = store_->stream_in_block(i, j, buf);
  std::vector<char> payload(buf.raw.begin(), buf.raw.end());
  BlockCache::PinnedBytes in = admit(key, std::move(payload), block.adj_bytes);
  if (obs::iotrace_enabled()) [[unlikely]] {
    trace_access(obs::TraceBlockKind::kInAdj, obs::TraceOutcome::kMiss,
                 obs::TraceInsertMode::kAlways,
                 in != nullptr ? obs::TraceAdmit::kInserted
                               : obs::TraceAdmit::kRejected,
                 i, j, owner_, block.adj_bytes, block.adj_bytes,
                 block.adj_bytes);
  }
  return slice;
}

std::uint64_t CachedBlockReader::cached_row_bytes(std::uint32_t i) const {
  if (cache_ == nullptr) return 0;
  const StoreMeta& meta = store_->meta();
  std::uint64_t bytes = 0;
  for (std::uint32_t j = 0; j < meta.p(); ++j) {
    if (cache_->contains(BlockKey{BlockKind::kOutAdj, i, j})) {
      bytes += meta.out_block(i, j).adj_bytes;
    }
  }
  return bytes;
}

std::uint64_t CachedBlockReader::cached_column_bytes(std::uint32_t i) const {
  if (cache_ == nullptr) return 0;
  const StoreMeta& meta = store_->meta();
  std::uint64_t bytes = 0;
  for (std::uint32_t j = 0; j < meta.p(); ++j) {
    if (cache_->contains(BlockKey{BlockKind::kInAdj, j, i})) {
      bytes += meta.in_block(j, i).adj_bytes;
    }
  }
  return bytes;
}

}  // namespace husg
