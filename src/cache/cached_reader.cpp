#include "cache/cached_reader.hpp"

#include <cstring>

#include "obs/heatmap.hpp"
#include "obs/trace.hpp"

namespace husg {

namespace {

// Heatmap feeds (adjacency payloads only; index I/O is excluded by design —
// see obs/heatmap.hpp). One relaxed-ish atomic load and a branch when the
// profiler is disarmed.
inline void heat_read(obs::HeatDir dir, std::uint32_t i, std::uint32_t j,
                      std::uint64_t bytes) {
  if (obs::heatmap_enabled()) [[unlikely]] {
    obs::Heatmap::instance().record_read(dir, i, j, bytes);
  }
}

inline void heat_hit(obs::HeatDir dir, std::uint32_t i, std::uint32_t j) {
  if (obs::heatmap_enabled()) [[unlikely]] {
    obs::Heatmap::instance().record_hit(dir, i, j);
  }
}

inline void heat_miss(obs::HeatDir dir, std::uint32_t i, std::uint32_t j) {
  if (obs::heatmap_enabled()) [[unlikely]] {
    obs::Heatmap::instance().record_miss(dir, i, j);
  }
}

}  // namespace

CacheStats CachedBlockReader::local_stats() const {
  CacheStats s;
  s.hits = local_hits_.load(std::memory_order_relaxed);
  s.misses = local_misses_.load(std::memory_order_relaxed);
  s.insertions = local_insertions_.load(std::memory_order_relaxed);
  s.admission_rejects = local_rejects_.load(std::memory_order_relaxed);
  s.bytes_saved = local_bytes_saved_.load(std::memory_order_relaxed);
  return s;
}

BlockCache::PinnedBytes CachedBlockReader::consult(
    const BlockKey& key, std::uint64_t saved_bytes) const {
  BlockCache::PinnedBytes hit = cache_->find(key, owner_);
  if (hit != nullptr) {
    cache_->add_bytes_saved(saved_bytes);
    local_hits_.fetch_add(1, std::memory_order_relaxed);
    local_bytes_saved_.fetch_add(saved_bytes, std::memory_order_relaxed);
  } else {
    local_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return hit;
}

BlockCache::PinnedBytes CachedBlockReader::admit(const BlockKey& key,
                                                 std::vector<char> payload,
                                                 std::uint64_t disk_bytes) const {
  BlockCache::PinnedBytes in =
      cache_->insert(key, std::move(payload), disk_bytes, owner_);
  // A non-null return may be another worker's racing copy; attributing it
  // here keeps the local ledger monotone and at worst over-credits one
  // insert per race.
  (in != nullptr ? local_insertions_ : local_rejects_)
      .fetch_add(1, std::memory_order_relaxed);
  return in;
}

std::vector<char> CachedBlockReader::to_payload(const std::uint32_t* data,
                                                std::size_t count) {
  std::vector<char> bytes(count * sizeof(std::uint32_t));
  std::memcpy(bytes.data(), data, bytes.size());
  return bytes;
}

AdjacencySlice CachedBlockReader::decode_payload(
    const BlockCache::PinnedBytes& payload, std::size_t first,
    std::size_t count, bool weighted, AdjacencyBuffer& buf) const {
  if (!weighted) {
    // Payload is a bare uint32 id array (decompressed at insert time for
    // varint in-blocks); serve a zero-copy view, pinned via buf.guard.
    const auto* ids = reinterpret_cast<const VertexId*>(payload->data());
    buf.guard = payload;
    return AdjacencySlice{std::span<const VertexId>(ids + first, count), {}};
  }
  const auto* recs = reinterpret_cast<const WeightedRecord*>(payload->data());
  buf.ids.resize(count);
  buf.ws.resize(count);
  for (std::size_t k = 0; k < count; ++k) {
    buf.ids[k] = recs[first + k].vid;
    buf.ws[k] = recs[first + k].weight;
  }
  buf.guard.reset();
  return AdjacencySlice{std::span<const VertexId>(buf.ids),
                        std::span<const Weight>(buf.ws)};
}

void CachedBlockReader::load_out_index(std::uint32_t i, std::uint32_t j,
                                       std::vector<std::uint32_t>& out) const {
  HUSG_SPAN("cache", "load_out_index", "i", static_cast<std::int64_t>(i), "j",
            static_cast<std::int64_t>(j));
  if (cache_ == nullptr) {
    store_->load_out_index(i, j, out);
    return;
  }
  BlockKey key{BlockKind::kOutIdx, i, j};
  std::uint64_t idx_bytes =
      (static_cast<std::uint64_t>(store_->meta().interval_size(i)) + 1) *
      sizeof(std::uint32_t);
  if (BlockCache::PinnedBytes hit = consult(key, idx_bytes)) {
    out.resize(hit->size() / sizeof(std::uint32_t));
    std::memcpy(out.data(), hit->data(), hit->size());
    return;
  }
  store_->load_out_index(i, j, out);
  admit(key, to_payload(out.data(), out.size()),
        out.size() * sizeof(std::uint32_t));
}

void CachedBlockReader::load_in_index(std::uint32_t i, std::uint32_t j,
                                      std::vector<std::uint32_t>& out) const {
  HUSG_SPAN("cache", "load_in_index", "i", static_cast<std::int64_t>(i), "j",
            static_cast<std::int64_t>(j));
  if (cache_ == nullptr) {
    store_->load_in_index(i, j, out);
    return;
  }
  BlockKey key{BlockKind::kInIdx, i, j};
  std::uint64_t idx_bytes =
      (static_cast<std::uint64_t>(store_->meta().interval_size(j)) + 1) *
      sizeof(std::uint32_t);
  if (BlockCache::PinnedBytes hit = consult(key, idx_bytes)) {
    out.resize(hit->size() / sizeof(std::uint32_t));
    std::memcpy(out.data(), hit->data(), hit->size());
    return;
  }
  store_->load_in_index(i, j, out);
  admit(key, to_payload(out.data(), out.size()),
        out.size() * sizeof(std::uint32_t));
}

AdjacencySlice CachedBlockReader::load_out_edges(std::uint32_t i,
                                                 std::uint32_t j,
                                                 std::uint32_t lo,
                                                 std::uint32_t hi,
                                                 AdjacencyBuffer& buf) const {
  const std::uint32_t rec = store_->meta().edge_record_bytes();
  if (cache_ == nullptr) {
    heat_read(obs::HeatDir::kOut, i, j,
              static_cast<std::uint64_t>(hi - lo) * rec);
    return store_->load_out_edges(i, j, lo, hi, buf);
  }
  const StoreMeta& meta = store_->meta();
  const bool weighted = meta.weighted;
  BlockKey key{BlockKind::kOutAdj, i, j};
  if (BlockCache::PinnedBytes hit =
          consult(key, static_cast<std::uint64_t>(hi - lo) * rec)) {
    heat_hit(obs::HeatDir::kOut, i, j);
    return decode_payload(hit, lo, hi - lo, weighted, buf);
  }
  heat_miss(obs::HeatDir::kOut, i, j);
  const BlockExtent& block = meta.out_block(i, j);
  if (fill_rop_ && block.adj_bytes <= cache_->max_admissible_bytes()) {
    // Fill: one whole-block read replaces this and all future point loads.
    // (No span on the per-vertex point-load path above — it is too hot.)
    HUSG_SPAN("cache", "fill_out_block", "i", static_cast<std::int64_t>(i),
              "j", static_cast<std::int64_t>(j));
    heat_read(obs::HeatDir::kOut, i, j, block.adj_bytes);
    buf.guard.reset();
    store_->load_out_edges(i, j, 0,
                           static_cast<std::uint32_t>(block.edge_count), buf);
    std::vector<char> payload(buf.raw.begin(), buf.raw.end());
    if (BlockCache::PinnedBytes pinned =
            admit(key, std::move(payload), block.adj_bytes)) {
      return decode_payload(pinned, lo, hi - lo, weighted, buf);
    }
    // Admission raced or was rejected; serve from the just-read bytes.
    return decode_payload(
        std::make_shared<const std::vector<char>>(buf.raw.begin(),
                                                  buf.raw.end()),
        lo, hi - lo, weighted, buf);
  }
  heat_read(obs::HeatDir::kOut, i, j,
            static_cast<std::uint64_t>(hi - lo) * rec);
  buf.guard.reset();
  return store_->load_out_edges(i, j, lo, hi, buf);
}

AdjacencySlice CachedBlockReader::stream_in_block(
    std::uint32_t i, std::uint32_t j, AdjacencyBuffer& buf,
    const std::vector<std::uint32_t>* run_index) const {
  HUSG_SPAN("cache", "stream_in_block", "i", static_cast<std::int64_t>(i), "j",
            static_cast<std::int64_t>(j));
  if (cache_ == nullptr) {
    heat_read(obs::HeatDir::kIn, i, j, store_->meta().in_block(i, j).adj_bytes);
    return store_->stream_in_block(i, j, buf, run_index);
  }
  const StoreMeta& meta = store_->meta();
  const BlockExtent& block = meta.in_block(i, j);
  BlockKey key{BlockKind::kInAdj, i, j};
  // Payloads are stored decompressed, so a hit on a varint block saves its
  // (smaller) on-disk size while serving fixed-width records.
  if (BlockCache::PinnedBytes hit = consult(key, block.adj_bytes)) {
    heat_hit(obs::HeatDir::kIn, i, j);
    return decode_payload(hit, 0, block.edge_count, meta.weighted, buf);
  }
  heat_miss(obs::HeatDir::kIn, i, j);
  heat_read(obs::HeatDir::kIn, i, j, block.adj_bytes);
  buf.guard.reset();
  AdjacencySlice slice = store_->stream_in_block(i, j, buf, run_index);
  std::vector<char> payload =
      meta.in_blocks_compressed
          ? to_payload(slice.neighbors.data(), slice.neighbors.size())
          : std::vector<char>(buf.raw.begin(), buf.raw.end());
  admit(key, std::move(payload), block.adj_bytes);
  return slice;
}

std::uint64_t CachedBlockReader::cached_row_bytes(std::uint32_t i) const {
  if (cache_ == nullptr) return 0;
  const StoreMeta& meta = store_->meta();
  std::uint64_t bytes = 0;
  for (std::uint32_t j = 0; j < meta.p(); ++j) {
    if (cache_->contains(BlockKey{BlockKind::kOutAdj, i, j})) {
      bytes += meta.out_block(i, j).adj_bytes;
    }
  }
  return bytes;
}

std::uint64_t CachedBlockReader::cached_column_bytes(std::uint32_t i) const {
  if (cache_ == nullptr) return 0;
  const StoreMeta& meta = store_->meta();
  std::uint64_t bytes = 0;
  for (std::uint32_t j = 0; j < meta.p(); ++j) {
    if (cache_->contains(BlockKey{BlockKind::kInAdj, j, i})) {
      bytes += meta.in_block(j, i).adj_bytes;
    }
  }
  return bytes;
}

}  // namespace husg
