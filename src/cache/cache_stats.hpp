// Counters for the memory-budgeted block cache. Hits are bytes the engine
// did NOT read from disk, so they are deliberately kept out of IoStats (which
// stays pure measured traffic); RunStats carries a CacheStats alongside every
// IoSnapshot so reports can show both sides of the ledger.
#pragma once

#include <cstdint>
#include <string>

namespace husg {

namespace obs {
class Registry;
}

/// Point-in-time snapshot of block-cache counters (plain values; copyable).
/// The monotone counters support per-iteration deltas via operator-; the
/// resident_* fields are gauges and keep the minuend's (current) value.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Hits on an entry inserted by a different owner (job). Zero unless
  /// callers tag their accesses with distinct owner ids — the service does,
  /// so this measures cross-job sharing (one job warming another's blocks).
  std::uint64_t cross_job_hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Inserts refused by the admission policy (block larger than the
  /// configured fraction of the budget, or nothing evictable).
  std::uint64_t admission_rejects = 0;
  /// Disk bytes avoided by serving from the cache (what the miss path would
  /// have read; for compressed in-blocks this is the on-disk size, not the
  /// decompressed payload size).
  std::uint64_t bytes_saved = 0;
  std::uint64_t bytes_inserted = 0;
  std::uint64_t bytes_evicted = 0;
  /// Gauges at snapshot time.
  std::uint64_t resident_bytes = 0;
  std::uint64_t resident_blocks = 0;

  std::uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }

  CacheStats operator-(const CacheStats& rhs) const;
  CacheStats& operator+=(const CacheStats& rhs);

  /// Exports into the metrics registry (`husg_cache_*`). Call once per
  /// finished run — counters accumulate across calls by design.
  void publish(obs::Registry& registry) const;

  std::string to_string() const;
};

}  // namespace husg
