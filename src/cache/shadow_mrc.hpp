// Online miss-ratio curves via spatially-sampled shadow counters
// (DESIGN.md §13).
//
// The offline `husg_replay --curve` answers "what would this job's miss
// ratio have been at budget B?" by replaying a captured iotrace once per
// budget. This tracker answers the same question *live*, per cache owner,
// with bounded memory, so the service can re-partition the shared cache
// while jobs run (src/service/cache_partition.hpp).
//
// Technique: SHARDS-style spatial sampling. A fixed hash of the BlockKey
// selects a `sample_rate` subset of the key population; only sampled keys
// enter a small LRU stack from which *byte-weighted* reuse distances are
// measured (bytes of distinct blocks touched since the previous access to
// this key — exactly the resident size an LRU cache would need for the
// access to hit). Because the subset is chosen by key, every access to a
// sampled key is seen, and distances measured in the sampled population are
// scaled by 1/rate to estimate the full population's. Reuse distances land
// in logarithmic buckets; a miss-ratio estimate at budget B is then
//
//   miss(B) = (cold + reuses with distance > B) / (cold + all reuses)
//
// — cold (first-touch) accesses are compulsory misses at every budget, as in
// the offline replay. Unsampled accesses only bump two relaxed atomics, so
// the record() fast path is cheap enough to leave on for whole runs.
//
// Accuracy caveats, all tolerance-gated by tests/selftune_test.cpp: the
// shadow stack is LRU while the real cache is CLOCK with admission control,
// and the tracked-key cap turns the oldest keys' reuses into cold misses.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cache/block_cache.hpp"

namespace husg {

class ShadowMrc {
 public:
  struct Options {
    /// Fraction of the key population tracked (by hash). 1.0 = exact LRU
    /// distances (tests); the service default 1/16 keeps the stack tiny.
    double sample_rate = 1.0 / 16.0;
    /// Hard cap on tracked keys — the memory bound. Beyond it the coldest
    /// key is dropped (its next access counts as a compulsory miss).
    std::size_t max_tracked = 4096;
    /// Budget points per emitted curve.
    std::size_t num_points = 16;
  };

  ShadowMrc();
  explicit ShadowMrc(Options options);

  /// One cached block access: `payload_bytes` is the bytes the block
  /// occupies resident (the stack-distance weight), `saved_bytes` the disk
  /// bytes the access reads on a miss. Thread-safe; unsampled accesses cost
  /// two relaxed atomic adds.
  void record(const BlockKey& key, std::uint64_t payload_bytes,
              std::uint64_t saved_bytes);

  struct CurvePoint {
    std::uint64_t budget_bytes = 0;
    double miss_ratio = 0;
  };
  struct Curve {
    std::vector<CurvePoint> points;
    std::uint64_t knee_budget_bytes = 0;
    /// Scaled estimate of the working set (Σ payload over distinct keys).
    std::uint64_t unique_payload_bytes = 0;
    std::uint64_t accesses = 0;  ///< all accesses (sampled or not)
    std::uint64_t sampled = 0;   ///< accesses that hit the shadow stack
  };

  /// Miss ratio estimate at one budget, in [0, 1]. A cold tracker (nothing
  /// sampled yet) reports 1.0 — everything would miss.
  double miss_ratio(std::uint64_t budget_bytes) const;

  /// Expected total disk bytes to serve the recorded accesses were the
  /// owner's cache `budget_bytes` — miss_ratio(B) × Σ saved_bytes. The
  /// partitioner's objective function.
  double predicted_miss_bytes(std::uint64_t budget_bytes) const;

  /// The live curve: same geometric budget sweep and chord-distance knee as
  /// the offline `husg_replay --curve` (obs/iotrace_replay.cpp).
  Curve curve() const;

  std::uint64_t accesses() const {
    return accesses_.load(std::memory_order_relaxed);
  }
  std::uint64_t sampled() const;
  /// True once enough reuse activity has been sampled for curves to mean
  /// something (the partitioner ignores cold trackers).
  bool warm() const;

  void reset();

  const Options& options() const { return opts_; }

 private:
  /// 4 sub-buckets per octave of byte distance; 160 buckets span 2^40 bytes.
  static constexpr std::size_t kBuckets = 160;

  static std::size_t bucket_of(double distance_bytes);
  static double bucket_mid(std::size_t idx);

  double miss_ratio_locked(std::uint64_t budget_bytes) const;

  struct Tracked {
    BlockKey key;
    std::uint64_t bytes = 0;
  };

  Options opts_;
  std::uint64_t sample_threshold_ = 0;  ///< sampled iff mixed hash < this

  std::atomic<std::uint64_t> accesses_{0};
  std::atomic<std::uint64_t> saved_bytes_sum_{0};

  mutable std::mutex mu_;
  /// Most-recent first; byte-weighted stack distances walk from the front.
  std::list<Tracked> lru_;
  std::unordered_map<BlockKey, std::list<Tracked>::iterator, BlockKeyHash>
      index_;
  std::array<double, kBuckets> reuse_count_{};  ///< sampled reuses by distance
  std::uint64_t sampled_ = 0;
  std::uint64_t cold_ = 0;    ///< sampled first-touch accesses
  std::uint64_t reuses_ = 0;  ///< sampled re-references
  double unique_bytes_scaled_ = 0;
};

}  // namespace husg
