#include "cache/shadow_mrc.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace husg {

namespace {

// An independent finalizer pass over BlockKeyHash's output, so sampling
// selection is decorrelated from the cache's bucket placement.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

ShadowMrc::ShadowMrc() : ShadowMrc(Options{}) {}

ShadowMrc::ShadowMrc(Options options) : opts_(options) {
  opts_.sample_rate = std::clamp(opts_.sample_rate, 1e-6, 1.0);
  if (opts_.max_tracked == 0) opts_.max_tracked = 1;
  if (opts_.num_points < 2) opts_.num_points = 2;
  // sampled iff mix(hash) < rate · 2^64; rate 1.0 must catch every key, so
  // the threshold saturates instead of wrapping to zero.
  const double scaled = opts_.sample_rate * 18446744073709551616.0;
  sample_threshold_ =
      scaled >= 18446744073709551615.0
          ? UINT64_MAX
          : static_cast<std::uint64_t>(scaled);
}

std::size_t ShadowMrc::bucket_of(double distance_bytes) {
  if (distance_bytes < 1.0) return 0;
  const double idx = std::floor(std::log2(distance_bytes) * 4.0);
  return std::min<std::size_t>(kBuckets - 1,
                               static_cast<std::size_t>(std::max(0.0, idx)));
}

double ShadowMrc::bucket_mid(std::size_t idx) {
  return std::exp2((static_cast<double>(idx) + 0.5) / 4.0);
}

void ShadowMrc::record(const BlockKey& key, std::uint64_t payload_bytes,
                       std::uint64_t saved_bytes) {
  accesses_.fetch_add(1, std::memory_order_relaxed);
  saved_bytes_sum_.fetch_add(saved_bytes, std::memory_order_relaxed);
  const std::uint64_t h = mix(static_cast<std::uint64_t>(BlockKeyHash{}(key)));
  if (h >= sample_threshold_) return;

  std::lock_guard<std::mutex> lock(mu_);
  ++sampled_;
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Byte-weighted stack distance: resident bytes of the distinct blocks
    // touched since this key's previous access, scaled to the full
    // population. O(stack position) — bounded by max_tracked.
    std::uint64_t dist = 0;
    for (auto li = lru_.begin(); li != it->second; ++li) dist += li->bytes;
    const double scaled_dist =
        static_cast<double>(dist) / opts_.sample_rate;
    reuse_count_[bucket_of(scaled_dist)] += 1.0;
    ++reuses_;
    lru_.erase(it->second);
    lru_.push_front(Tracked{key, payload_bytes});
    it->second = lru_.begin();
  } else {
    ++cold_;
    unique_bytes_scaled_ +=
        static_cast<double>(payload_bytes) / opts_.sample_rate;
    lru_.push_front(Tracked{key, payload_bytes});
    index_.emplace(key, lru_.begin());
    if (lru_.size() > opts_.max_tracked) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
    }
  }
}

double ShadowMrc::miss_ratio_locked(std::uint64_t budget_bytes) const {
  const double lookups = static_cast<double>(cold_ + reuses_);
  if (lookups <= 0) return 1.0;
  double hits = 0;
  const double budget = static_cast<double>(budget_bytes);
  for (std::size_t idx = 0; idx < kBuckets; ++idx) {
    if (reuse_count_[idx] <= 0) continue;
    if (bucket_mid(idx) <= budget) hits += reuse_count_[idx];
  }
  return std::clamp(1.0 - hits / lookups, 0.0, 1.0);
}

double ShadowMrc::miss_ratio(std::uint64_t budget_bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  return miss_ratio_locked(budget_bytes);
}

double ShadowMrc::predicted_miss_bytes(std::uint64_t budget_bytes) const {
  return miss_ratio(budget_bytes) *
         static_cast<double>(saved_bytes_sum_.load(std::memory_order_relaxed));
}

std::uint64_t ShadowMrc::sampled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_;
}

bool ShadowMrc::warm() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Curves need reuse structure, not just cold traffic: a handful of
  // re-references is enough for the partitioner to stop treating the job as
  // unknowable.
  return reuses_ >= 16;
}

ShadowMrc::Curve ShadowMrc::curve() const {
  std::lock_guard<std::mutex> lock(mu_);
  Curve c;
  c.accesses = accesses_.load(std::memory_order_relaxed);
  c.sampled = sampled_;
  c.unique_payload_bytes =
      static_cast<std::uint64_t>(std::llround(unique_bytes_scaled_));

  // Same geometric sweep as the offline curve (obs/iotrace_replay.cpp):
  // max(4096, U/64) … 1.25·U.
  std::set<std::uint64_t> budgets;
  const std::uint64_t u = c.unique_payload_bytes;
  if (u > 0) {
    const double lo =
        static_cast<double>(std::max<std::uint64_t>(4096, u / 64));
    const double hi = std::max(lo + 1, 1.25 * static_cast<double>(u));
    const double ratio =
        std::pow(hi / lo, 1.0 / static_cast<double>(opts_.num_points - 1));
    double b = lo;
    for (std::size_t k = 0; k < opts_.num_points; ++k, b *= ratio) {
      budgets.insert(static_cast<std::uint64_t>(std::llround(b)));
    }
  }
  for (std::uint64_t b : budgets) {
    c.points.push_back(CurvePoint{b, miss_ratio_locked(b)});
  }

  // Chord-distance knee, both axes normalized — same rule as the offline
  // curve so knees from the two paths are comparable.
  if (!c.points.empty()) {
    const double max_b =
        std::max<double>(1.0, static_cast<double>(c.points.back().budget_bytes));
    const double x0 =
        static_cast<double>(c.points.front().budget_bytes) / max_b;
    const double y0 = c.points.front().miss_ratio;
    const double x1 = static_cast<double>(c.points.back().budget_bytes) / max_b;
    const double y1 = c.points.back().miss_ratio;
    double best = 0;
    c.knee_budget_bytes = c.points.front().budget_bytes;
    for (const CurvePoint& pt : c.points) {
      const double x = static_cast<double>(pt.budget_bytes) / max_b;
      const double y = pt.miss_ratio;
      const double dist = std::abs((x1 - x0) * (y0 - y) - (x0 - x) * (y1 - y0));
      if (dist > best) {
        best = dist;
        c.knee_budget_bytes = pt.budget_bytes;
      }
    }
    if (best <= 0) {
      for (const CurvePoint& pt : c.points) {
        if (pt.miss_ratio <= y1 + 1e-12) {
          c.knee_budget_bytes = pt.budget_bytes;
          break;
        }
      }
    }
  }
  return c;
}

void ShadowMrc::reset() {
  accesses_.store(0, std::memory_order_relaxed);
  saved_bytes_sum_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  reuse_count_.fill(0.0);
  sampled_ = 0;
  cold_ = 0;
  reuses_ = 0;
  unique_bytes_scaled_ = 0;
}

}  // namespace husg
