#include "cache/block_cache.hpp"

#include <algorithm>

#include "obs/heatmap.hpp"
#include "obs/iotrace.hpp"
#include "obs/trace.hpp"
#include "util/common.hpp"

namespace husg {

const char* to_string(BlockKind kind) {
  switch (kind) {
    case BlockKind::kOutAdj:
      return "out.adj";
    case BlockKind::kOutIdx:
      return "out.idx";
    case BlockKind::kInAdj:
      return "in.adj";
    case BlockKind::kInIdx:
      return "in.idx";
  }
  return "?";
}

BlockCache::BlockCache(Options options) : opts_(options) {
  HUSG_CHECK(opts_.max_block_fraction > 0,
             "cache max_block_fraction must be positive");
  double cap = std::min(opts_.max_block_fraction, 1.0) *
               static_cast<double>(opts_.budget_bytes);
  max_payload_bytes_ = static_cast<std::uint64_t>(cap);
}

BlockCache::PinnedBytes BlockCache::find(const BlockKey& key,
                                         std::uint32_t owner) {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  Entry& e = ring_[it->second];
  e.referenced = true;
  ++stats_.hits;
  if (e.owner != owner) ++stats_.cross_job_hits;
  return e.payload;
}

BlockCache::PinnedBytes BlockCache::insert(const BlockKey& key,
                                           std::vector<char> payload,
                                           std::uint64_t disk_bytes,
                                           std::uint32_t owner) {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Another worker inserted the same block between our miss and now; keep
    // the resident copy (payloads for one key are identical by construction).
    Entry& e = ring_[it->second];
    e.referenced = true;
    return e.payload;
  }
  const std::uint64_t size = payload.size();
  if (size > max_payload_bytes_) {
    ++stats_.admission_rejects;
    return nullptr;
  }
  // Partitioned owners make room inside their own quota first (evicting
  // their own coldest entries), then the global sweep tops up as usual.
  if (!quota_.empty()) {
    auto q = quota_.find(owner);
    if (q != quota_.end() &&
        (size > q->second || !make_room_owner(owner, size, q->second))) {
      ++stats_.admission_rejects;
      return nullptr;
    }
  }
  if (!make_room(size)) {
    ++stats_.admission_rejects;
    return nullptr;
  }
  Entry e;
  e.key = key;
  e.payload = std::make_shared<const std::vector<char>>(std::move(payload));
  e.disk_bytes = disk_bytes;
  e.owner = owner;
  index_[key] = ring_.size();
  ring_.push_back(e);
  resident_bytes_ += size;
  owner_resident_[owner] += size;
  ++stats_.insertions;
  stats_.bytes_inserted += size;
  return e.payload;
}

void BlockCache::evict_at(std::size_t pos) {
  Entry& e = ring_[pos];
  const std::uint64_t size = e.payload->size();
  // Heatmap tracks adjacency payloads only (index kinds excluded, see
  // obs/heatmap.hpp).
  if (obs::heatmap_enabled() && (e.key.kind == BlockKind::kOutAdj ||
                                 e.key.kind == BlockKind::kInAdj)) {
    obs::Heatmap::instance().record_eviction(
        e.key.kind == BlockKind::kOutAdj ? obs::HeatDir::kOut
                                         : obs::HeatDir::kIn,
        e.key.row, e.key.col);
  }
  // The iotrace records every kind — its eviction stream must add up to
  // stats_.evictions for the replay fidelity check.
  if (obs::iotrace_enabled()) [[unlikely]] {
    obs::IoTrace::instance().record_evict(
        static_cast<obs::TraceBlockKind>(e.key.kind), e.key.row, e.key.col,
        size);
  }
  auto owned = owner_resident_.find(e.owner);
  if (owned != owner_resident_.end()) {
    owned->second -= std::min(owned->second, size);
  }
  index_.erase(e.key);
  if (pos != ring_.size() - 1) {
    ring_[pos] = std::move(ring_.back());
    index_[ring_[pos].key] = pos;
  }
  ring_.pop_back();
  if (hand_ >= ring_.size()) hand_ = 0;
  resident_bytes_ -= size;
  ++stats_.evictions;
  stats_.bytes_evicted += size;
}

bool BlockCache::make_room(std::uint64_t needed) {
  if (needed > opts_.budget_bytes) return false;
  HUSG_SPAN("cache", "evict_sweep", "needed_bytes",
            static_cast<std::int64_t>(needed));
  // CLOCK sweep: referenced entries get a second chance, pinned entries
  // (use_count > 1: some worker holds a handle) are skipped outright. Two
  // full revolutions without an eviction means everything left is pinned.
  std::size_t examined_since_evict = 0;
  while (resident_bytes_ + needed > opts_.budget_bytes) {
    if (ring_.empty() || examined_since_evict > 2 * ring_.size()) return false;
    Entry& e = ring_[hand_];
    const bool pinned = e.payload.use_count() > 1;
    if (!pinned && !e.referenced) {
      evict_at(hand_);
      examined_since_evict = 0;
      continue;
    }
    if (!pinned) e.referenced = false;
    hand_ = (hand_ + 1) % ring_.size();
    ++examined_since_evict;
  }
  return true;
}

bool BlockCache::make_room_owner(std::uint32_t owner, std::uint64_t needed,
                                 std::uint64_t quota) {
  if (needed > quota) return false;
  std::size_t examined_since_evict = 0;
  while (true) {
    auto owned = owner_resident_.find(owner);
    const std::uint64_t resident =
        owned != owner_resident_.end() ? owned->second : 0;
    if (resident + needed <= quota) return true;
    if (ring_.empty() || examined_since_evict > 2 * ring_.size()) return false;
    Entry& e = ring_[hand_];
    if (e.owner == owner) {
      const bool pinned = e.payload.use_count() > 1;
      if (!pinned && !e.referenced) {
        evict_at(hand_);
        examined_since_evict = 0;
        continue;
      }
      if (!pinned) e.referenced = false;
    }
    hand_ = (hand_ + 1) % ring_.size();
    ++examined_since_evict;
  }
}

bool BlockCache::contains(const BlockKey& key) const {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  return index_.contains(key);
}

std::uint64_t BlockCache::resident_disk_bytes(const BlockKey& key) const {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  auto it = index_.find(key);
  return it == index_.end() ? 0 : ring_[it->second].disk_bytes;
}

void BlockCache::add_bytes_saved(std::uint64_t bytes) {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  stats_.bytes_saved += bytes;
}

CacheStats BlockCache::stats() const {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  CacheStats out = stats_;
  out.resident_bytes = resident_bytes_;
  out.resident_blocks = ring_.size();
  return out;
}

std::uint64_t BlockCache::resident_bytes() const {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  return resident_bytes_;
}

bool BlockCache::is_pinned(const BlockKey& key) const {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  auto it = index_.find(key);
  return it != index_.end() && ring_[it->second].payload.use_count() > 1;
}

void BlockCache::set_partition(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& quotas) {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  quota_.clear();
  for (const auto& [owner, bytes] : quotas) quota_[owner] = bytes;
  // Trim owners already over their new quota so the partition takes effect
  // now, not on their next insert. Pinned entries can keep an owner over
  // quota transiently; the next insert-side sweep finishes the job.
  for (const auto& [owner, bytes] : quota_) {
    make_room_owner(owner, 0, bytes);
  }
}

bool BlockCache::partitioned() const {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  return !quota_.empty();
}

std::uint64_t BlockCache::owner_quota(std::uint32_t owner) const {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  auto it = quota_.find(owner);
  return it == quota_.end() ? 0 : it->second;
}

std::uint64_t BlockCache::owner_resident_bytes(std::uint32_t owner) const {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  auto it = owner_resident_.find(owner);
  return it == owner_resident_.end() ? 0 : it->second;
}

}  // namespace husg
