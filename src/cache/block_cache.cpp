#include "cache/block_cache.hpp"

#include <algorithm>

#include "obs/heatmap.hpp"
#include "obs/iotrace.hpp"
#include "obs/trace.hpp"
#include "util/common.hpp"

namespace husg {

const char* to_string(BlockKind kind) {
  switch (kind) {
    case BlockKind::kOutAdj:
      return "out.adj";
    case BlockKind::kOutIdx:
      return "out.idx";
    case BlockKind::kInAdj:
      return "in.adj";
    case BlockKind::kInIdx:
      return "in.idx";
  }
  return "?";
}

BlockCache::BlockCache(Options options) : opts_(options) {
  HUSG_CHECK(opts_.max_block_fraction > 0,
             "cache max_block_fraction must be positive");
  double cap = std::min(opts_.max_block_fraction, 1.0) *
               static_cast<double>(opts_.budget_bytes);
  max_payload_bytes_ = static_cast<std::uint64_t>(cap);
}

BlockCache::PinnedBytes BlockCache::find(const BlockKey& key,
                                         std::uint32_t owner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  Entry& e = ring_[it->second];
  e.referenced = true;
  ++stats_.hits;
  if (e.owner != owner) ++stats_.cross_job_hits;
  return e.payload;
}

BlockCache::PinnedBytes BlockCache::insert(const BlockKey& key,
                                           std::vector<char> payload,
                                           std::uint64_t disk_bytes,
                                           std::uint32_t owner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Another worker inserted the same block between our miss and now; keep
    // the resident copy (payloads for one key are identical by construction).
    Entry& e = ring_[it->second];
    e.referenced = true;
    return e.payload;
  }
  const std::uint64_t size = payload.size();
  if (size > max_payload_bytes_ || !make_room(size)) {
    ++stats_.admission_rejects;
    return nullptr;
  }
  Entry e;
  e.key = key;
  e.payload = std::make_shared<const std::vector<char>>(std::move(payload));
  e.disk_bytes = disk_bytes;
  e.owner = owner;
  index_[key] = ring_.size();
  ring_.push_back(e);
  resident_bytes_ += size;
  ++stats_.insertions;
  stats_.bytes_inserted += size;
  return e.payload;
}

bool BlockCache::make_room(std::uint64_t needed) {
  if (needed > opts_.budget_bytes) return false;
  HUSG_SPAN("cache", "evict_sweep", "needed_bytes",
            static_cast<std::int64_t>(needed));
  // CLOCK sweep: referenced entries get a second chance, pinned entries
  // (use_count > 1: some worker holds a handle) are skipped outright. Two
  // full revolutions without an eviction means everything left is pinned.
  std::size_t examined_since_evict = 0;
  while (resident_bytes_ + needed > opts_.budget_bytes) {
    if (ring_.empty() || examined_since_evict > 2 * ring_.size()) return false;
    Entry& e = ring_[hand_];
    const bool pinned = e.payload.use_count() > 1;
    if (!pinned && !e.referenced) {
      const std::uint64_t size = e.payload->size();
      // Heatmap tracks adjacency payloads only (index kinds excluded, see
      // obs/heatmap.hpp).
      if (obs::heatmap_enabled() && (e.key.kind == BlockKind::kOutAdj ||
                                     e.key.kind == BlockKind::kInAdj)) {
        obs::Heatmap::instance().record_eviction(
            e.key.kind == BlockKind::kOutAdj ? obs::HeatDir::kOut
                                             : obs::HeatDir::kIn,
            e.key.row, e.key.col);
      }
      // The iotrace records every kind — its eviction stream must add up to
      // stats_.evictions for the replay fidelity check.
      if (obs::iotrace_enabled()) [[unlikely]] {
        obs::IoTrace::instance().record_evict(
            static_cast<obs::TraceBlockKind>(e.key.kind), e.key.row,
            e.key.col, size);
      }
      index_.erase(e.key);
      if (hand_ != ring_.size() - 1) {
        ring_[hand_] = std::move(ring_.back());
        index_[ring_[hand_].key] = hand_;
      }
      ring_.pop_back();
      if (hand_ >= ring_.size()) hand_ = 0;
      resident_bytes_ -= size;
      ++stats_.evictions;
      stats_.bytes_evicted += size;
      examined_since_evict = 0;
      continue;
    }
    if (!pinned) e.referenced = false;
    hand_ = (hand_ + 1) % ring_.size();
    ++examined_since_evict;
  }
  return true;
}

bool BlockCache::contains(const BlockKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.contains(key);
}

std::uint64_t BlockCache::resident_disk_bytes(const BlockKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  return it == index_.end() ? 0 : ring_[it->second].disk_bytes;
}

void BlockCache::add_bytes_saved(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_saved += bytes;
}

CacheStats BlockCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats out = stats_;
  out.resident_bytes = resident_bytes_;
  out.resident_blocks = ring_.size();
  return out;
}

std::uint64_t BlockCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

bool BlockCache::is_pinned(const BlockKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  return it != index_.end() && ring_[it->second].payload.use_count() > 1;
}

}  // namespace husg
