// Job model for the concurrent graph service: what a caller submits
// (JobSpec), what admission hands back (JobTicket), what a finished job
// reports (JobResult), and the service-wide ledger (ServiceStats).
//
// A job is one engine run of a named algorithm over the service's store.
// Results carry the full RunStats so per-job I/O, per-iteration decisions
// and cache charge accounting survive into the service report.
#pragma once

#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "core/run_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/common.hpp"

namespace husg {

/// Algorithms the service can run. WCC is included for symmetrized stores;
/// on a directed store its fixed point is the min-reachable-ancestor label
/// (see src/algos/wcc.hpp).
enum class ServiceAlgo { kBfs, kWcc, kSssp, kPageRank, kSpmv };

const char* to_string(ServiceAlgo algo);

/// Parses "bfs" / "wcc" / "sssp" / "pagerank" / "spmv"; returns false on an
/// unknown name (the caller decides whether that is a usage error).
bool parse_service_algo(const std::string& name, ServiceAlgo& out);

using JobId = std::uint64_t;

enum class JobStatus {
  kQueued,
  kRunning,
  kCompleted,
  kFailed,     ///< runner threw a non-cancellation exception
  kCancelled,  ///< explicit cancel() or service shutdown
  kTimedOut,   ///< per-job deadline fired
};

const char* to_string(JobStatus status);

/// Why admission refused a submit. Typed backpressure: the caller can tell
/// "retry later" (kQueueFull) from "will never fit" (kMemoryBudget) from
/// "stop submitting" (kShuttingDown).
enum class RejectReason { kNone, kQueueFull, kMemoryBudget, kShuttingDown };

const char* to_string(RejectReason reason);

struct JobSpec {
  std::string name;  ///< caller's label, echoed in results and reports
  ServiceAlgo algo = ServiceAlgo::kPageRank;
  VertexId source = 0;     ///< BFS / SSSP start vertex (ignored otherwise)
  int max_iterations = 0;  ///< 0 = per-algorithm default (PageRank 5, SpMV 1)
  /// Strictly higher priority admits first; ties run in submit order.
  int priority = 0;
  /// Wall-clock budget measured from the moment the job starts running;
  /// 0 = unlimited. Expiry cancels cooperatively (status kTimedOut).
  std::int64_t timeout_ms = 0;
  UpdateMode mode = UpdateMode::kHybrid;
};

struct JobResult {
  JobId id = 0;
  std::string name;
  JobStatus status = JobStatus::kQueued;
  std::string error;  ///< set for kFailed / kCancelled / kTimedOut
  RunStats stats;     ///< engine stats; cache counters are this job's share
  /// Final vertex values widened to double (empty unless kCompleted).
  std::vector<double> values;
  double wall_seconds = 0;  ///< queue-exit to finish (includes engine setup)
  /// Wall decomposition (DESIGN.md §15): cpu is charged at every usage-scope
  /// boundary; io-wait/lock-wait/decode only advance while obs attribution
  /// is armed. cpu may honestly exceed wall for multi-threaded jobs.
  obs::JobUsageSnapshot usage;
};

/// Admission outcome. `result` is valid only when `accepted`; it becomes
/// ready when the job reaches a terminal status (including cancellation).
struct JobTicket {
  bool accepted = false;
  JobId id = 0;
  RejectReason reject = RejectReason::kNone;
  std::string message;
  std::shared_future<JobResult> result;
};

/// Service-wide ledger, aggregated from every terminal job plus the shared
/// cache's global counters.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_memory = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t edges_processed = 0;
  /// Summed over terminal jobs' reported stats (a cancelled run unwinds
  /// before reporting, so it contributes nothing here; the store's global
  /// IoStats still saw its traffic).
  IoSnapshot io;
  /// High-water mark of concurrently reserved working-set bytes.
  std::uint64_t peak_reserved_bytes = 0;
  /// Shared-cache global counters (includes cross_job_hits).
  CacheStats cache;
  /// Per-job wall-clock distribution over terminal jobs (queue-exit to
  /// finish): min/mean/max plus p50/p95/p99 from the scheduler's histogram.
  obs::LatencySummary job_wall;
  /// Summed CPU/wait attribution over terminal jobs (husg_cpu_jobs_*).
  obs::JobUsageSnapshot usage_total;

  std::uint64_t rejected() const {
    return rejected_queue_full + rejected_memory + rejected_shutdown;
  }
  std::uint64_t terminal() const {
    return completed + failed + cancelled + timed_out;
  }

  /// Exports into the metrics registry (`husg_service_*`, including the
  /// cache ledger). Call once per service snapshot — counters accumulate
  /// across calls by design.
  void publish(obs::Registry& registry) const;
};

/// Live snapshot of one non-terminal job, as served by the admin plane's
/// /jobs route (status is kQueued or kRunning; terminal jobs leave the
/// scheduler and are visible only through the service counters).
struct JobView {
  JobId id = 0;
  std::string name;
  JobStatus status = JobStatus::kQueued;
  std::string algo;
  int priority = 0;
  /// Working-set reservation: charged against the budget when running,
  /// what admission will charge when queued.
  std::uint64_t estimate_bytes = 0;
  /// Seconds since submit (queued) or since dispatch (running).
  double wall_seconds = 0;
  /// Heartbeat snapshot (running jobs with a ProgressBeat; zero otherwise).
  std::uint64_t iteration = 0;
  std::uint64_t edges = 0;
  std::uint64_t io_bytes = 0;
  /// Seconds since the last heartbeat tick; negative when no tick yet.
  double last_tick_age_seconds = -1;
};

/// {"jobs": [...]} for the admin /jobs route. Names are JSON-escaped.
std::string jobs_view_json(const std::vector<JobView>& jobs);

}  // namespace husg
