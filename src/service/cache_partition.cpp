#include "service/cache_partition.hpp"

#include <algorithm>
#include <ostream>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/common.hpp"

namespace husg {

CachePartitionManager::CachePartitionManager(BlockCache& cache,
                                             Options options)
    : cache_(cache), opts_(options) {
  HUSG_CHECK(opts_.steps >= 2, "partition steps must be at least 2");
}

ShadowMrc* CachePartitionManager::shadow_for(std::uint32_t owner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = trackers_.find(owner);
  if (it == trackers_.end()) {
    it = trackers_.emplace(owner, std::make_unique<ShadowMrc>(opts_.shadow))
             .first;
  }
  return it->second.get();
}

void CachePartitionManager::job_finished(std::uint32_t owner) {
  std::lock_guard<std::mutex> lock(mu_);
  trackers_.erase(owner);
  auto it = std::find_if(installed_.begin(), installed_.end(),
                         [owner](const auto& p) { return p.first == owner; });
  if (it == installed_.end()) return;
  installed_.erase(it);
  // A lone quota is pure overhead: the survivor should get the whole cache.
  if (installed_.size() < 2) installed_.clear();
  cache_.set_partition(installed_);
}

double CachePartitionManager::objective(
    const std::vector<const ShadowMrc*>& owners,
    const std::vector<std::uint64_t>& alloc) const {
  double total = 0;
  for (std::size_t k = 0; k < owners.size(); ++k) {
    total += owners[k]->predicted_miss_bytes(alloc[k]);
  }
  return total;
}

void CachePartitionManager::repartition(const std::vector<JobId>& running) {
  std::lock_guard<std::mutex> lock(mu_);
  // Candidates: running jobs whose shadows have sampled enough reuse to make
  // their curves trustworthy.
  std::vector<std::uint32_t> ids;
  std::vector<const ShadowMrc*> shadows;
  for (JobId id : running) {
    const auto it = trackers_.find(static_cast<std::uint32_t>(id));
    if (it == trackers_.end() || !it->second->warm()) continue;
    ids.push_back(static_cast<std::uint32_t>(id));
    shadows.push_back(it->second.get());
  }
  if (ids.size() < 2) {
    if (!installed_.empty()) {
      installed_.clear();
      cache_.set_partition(installed_);
    }
    return;
  }

  const std::uint64_t budget = cache_.budget_bytes();
  const std::uint64_t chunk = budget / opts_.steps;
  if (chunk == 0) return;

  // Start from an even split; the leftover of integer division goes to the
  // first job (it is well under one chunk, the search granularity).
  std::vector<std::uint64_t> alloc(ids.size(), budget / ids.size());
  alloc[0] += budget - (budget / ids.size()) * ids.size();

  // Greedy hill-climb: the best single chunk move per round, until none
  // improves. Bounded by steps² rounds in theory; in practice a handful.
  double current = objective(shadows, alloc);
  for (std::size_t round = 0; round < opts_.steps * opts_.steps; ++round) {
    double best = current;
    std::size_t best_from = 0;
    std::size_t best_to = 0;
    for (std::size_t from = 0; from < alloc.size(); ++from) {
      if (alloc[from] < chunk) continue;
      alloc[from] -= chunk;
      for (std::size_t to = 0; to < alloc.size(); ++to) {
        if (to == from) continue;
        alloc[to] += chunk;
        const double cand = objective(shadows, alloc);
        if (cand < best) {
          best = cand;
          best_from = from;
          best_to = to;
        }
        alloc[to] -= chunk;
      }
      alloc[from] += chunk;
    }
    if (best >= current) break;
    alloc[best_from] -= chunk;
    alloc[best_to] += chunk;
    current = best;
  }

  // Hysteresis: compare against what the installed split (or the shared
  // cache, modelled as the same even start point) already achieves, and only
  // re-partition on a clear win — quotas force evictions when applied.
  std::vector<std::uint64_t> incumbent(ids.size(), budget / ids.size());
  incumbent[0] += budget - (budget / ids.size()) * ids.size();
  bool have_installed = !installed_.empty();
  if (have_installed) {
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const auto it =
          std::find_if(installed_.begin(), installed_.end(),
                       [&](const auto& p) { return p.first == ids[k]; });
      if (it == installed_.end()) {
        have_installed = false;  // membership changed; incumbent = even split
        break;
      }
      incumbent[k] = it->second;
    }
  }
  const double incumbent_cost = objective(shadows, incumbent);
  if (current >= incumbent_cost * (1.0 - opts_.hysteresis)) return;
  installed_.clear();
  for (std::size_t k = 0; k < ids.size(); ++k) {
    installed_.emplace_back(ids[k], alloc[k]);
  }
  cache_.set_partition(installed_);
  ++applied_;
  if (obs::flight_enabled()) [[unlikely]] {
    for (std::size_t k = 0; k < ids.size(); ++k) {
      obs::FlightEvent e;
      e.type = obs::FlightEventType::kRepartition;
      e.job = static_cast<std::uint32_t>(ids[k]);
      e.v1 = incumbent[k];  // quota before this split (even share if fresh)
      e.v2 = alloc[k];      // quota installed now
      obs::FlightRecorder::instance().record(e);
    }
  }
}

std::uint64_t CachePartitionManager::repartitions_applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_;
}

bool CachePartitionManager::partitioned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !installed_.empty();
}

void CachePartitionManager::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"budget_bytes\":" << cache_.budget_bytes()
     << ",\"partitioned\":" << (installed_.empty() ? "false" : "true")
     << ",\"repartitions_applied\":" << applied_ << ",\"partition\":[";
  for (std::size_t k = 0; k < installed_.size(); ++k) {
    if (k) os << ",";
    os << "{\"job\":" << installed_[k].first
       << ",\"quota_bytes\":" << installed_[k].second
       << ",\"resident_bytes\":"
       << cache_.owner_resident_bytes(installed_[k].first) << "}";
  }
  os << "],\"jobs\":[";
  // Deterministic order for the route's consumers (tests scrape this).
  std::vector<std::uint32_t> ids;
  ids.reserve(trackers_.size());
  for (const auto& [owner, tracker] : trackers_) ids.push_back(owner);
  std::sort(ids.begin(), ids.end());
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const ShadowMrc& t = *trackers_.at(ids[k]);
    const ShadowMrc::Curve c = t.curve();
    if (k) os << ",";
    os << "{\"job\":" << ids[k] << ",\"warm\":" << (t.warm() ? "true" : "false")
       << ",\"accesses\":" << c.accesses << ",\"sampled\":" << c.sampled
       << ",\"unique_payload_bytes\":" << c.unique_payload_bytes
       << ",\"knee_budget_bytes\":" << c.knee_budget_bytes << ",\"curve\":[";
    for (std::size_t p = 0; p < c.points.size(); ++p) {
      if (p) os << ",";
      os << "{\"budget_bytes\":" << c.points[p].budget_bytes
         << ",\"miss_ratio\":" << c.points[p].miss_ratio << "}";
    }
    os << "]}";
  }
  os << "]}";
}

void CachePartitionManager::publish(obs::Registry& registry) const {
  std::uint64_t tracked = 0;
  std::uint64_t warm = 0;
  std::uint64_t accesses = 0;
  std::uint64_t sampled = 0;
  std::uint64_t applied = 0;
  bool part = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tracked = trackers_.size();
    for (const auto& [owner, tracker] : trackers_) {
      if (tracker->warm()) ++warm;
      accesses += tracker->accesses();
      sampled += tracker->sampled();
    }
    applied = applied_;
    part = !installed_.empty();
  }
  registry
      .gauge("husg_mrc_tracked_jobs",
             "Jobs with a live shadow miss-ratio tracker")
      .set(static_cast<double>(tracked));
  registry
      .gauge("husg_mrc_warm_jobs",
             "Trackers past the reuse warmup floor (eligible to partition)")
      .set(static_cast<double>(warm));
  registry
      .gauge("husg_mrc_accesses",
             "Block accesses seen by all shadow trackers")
      .set(static_cast<double>(accesses));
  registry
      .gauge("husg_mrc_sampled_accesses",
             "Accesses that entered a shadow LRU stack (SHARDS sample)")
      .set(static_cast<double>(sampled));
  registry
      .gauge("husg_mrc_partitioned",
             "1 while a per-job quota split is installed in the block cache")
      .set(part ? 1 : 0);
  registry
      .gauge("husg_mrc_repartitions_applied",
             "Quota splits installed since service start")
      .set(static_cast<double>(applied));
}

}  // namespace husg
