// JobScheduler: admission control + dispatch for concurrent jobs.
//
// Admission is typed backpressure, not unbounded queueing: a submit is
// rejected outright when the pending queue is full (kQueueFull), when the
// job's working-set estimate can never fit the memory budget
// (kMemoryBudget), or after stop() (kShuttingDown). Accepted jobs wait in a
// strict-priority queue (higher priority first, FIFO within a priority) and
// start when (a) a concurrency slot is free and (b) the head job's estimate
// fits under `memory_budget_bytes` minus the bytes reserved by running
// jobs. The head job blocks lower-priority jobs even when those would fit
// (head-of-line blocking) — that is deliberate: skipping the head would
// starve large jobs forever under a stream of small ones. Progress is
// guaranteed because submit() rejects any estimate larger than the whole
// budget, so the head always fits once the running set drains.
//
// Each running job gets a CancellationToken. cancel() cancels a pending job
// immediately (its future completes with kCancelled) or requests
// cooperative cancellation of a running one; a per-job timeout is a
// deadline the dispatcher converts into a kTimeout request, so the engine
// unwinds at its next cancellation point and the job reports kTimedOut.
//
// The scheduler is generic over a Runner callback so it can be unit-tested
// with stub runners (no store, no engine).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/cancellation.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "service/job.hpp"
#include "util/threadpool.hpp"

namespace husg {

struct SchedulerOptions {
  std::size_t max_concurrent = 2;
  /// Pending (accepted, not yet running) jobs beyond this are rejected.
  std::size_t max_queue = 16;
  /// Total working-set bytes running jobs may reserve concurrently.
  std::uint64_t memory_budget_bytes = 1ull << 30;
  /// MRC-driven cache partitioning tick (DESIGN.md §13): every interval the
  /// dispatcher calls `repartition` with the ids of the currently running
  /// jobs, outside the scheduler lock (the callback talks to the cache and
  /// the partition manager, never back into the scheduler). 0 disables the
  /// tick — the dispatcher then never wakes for it.
  std::uint32_t repartition_interval_ms = 0;
  std::function<void(const std::vector<JobId>&)> repartition;
  /// Anomaly-watchdog tick (DESIGN.md §14): every interval the dispatcher
  /// samples each running job's ProgressBeat into a JobHealth row and calls
  /// `watchdog` with the rows plus the job-wall latency digest, outside the
  /// scheduler lock. Runs with an empty row set too, so service-wide
  /// anomalies clear once their cause is gone. 0 disables the tick.
  std::uint32_t watchdog_interval_ms = 0;
  std::function<void(const std::vector<obs::JobHealth>&,
                     const obs::LatencySummary&)>
      watchdog;
  /// Fired on a pool worker (no scheduler lock held) when a job reaches a
  /// bad terminal status — timeout, cancellation, or failure — after the
  /// ledger has been updated; the service hooks the postmortem bundle
  /// writer here.
  std::function<void(const obs::IncidentInfo&)> on_incident;
};

class JobScheduler {
 public:
  /// Executes one job. Runs on a pool worker; must poll `token` (the engine
  /// does via EngineOptions::cancel) and may throw: OperationCancelled maps
  /// to kCancelled/kTimedOut, anything else to kFailed. On normal return the
  /// result's status is forced to kCompleted and id/name are filled in.
  using Runner = std::function<JobResult(const JobSpec&, JobId,
                                         const CancellationToken&)>;

  /// Jobs execute as one-shot tasks on `pool`, which must outlive the
  /// scheduler and have at least one worker thread (ThreadPool(n >= 2));
  /// with zero workers submit() would run jobs inline in the dispatcher and
  /// deadline watchdogs could never fire.
  JobScheduler(ThreadPool& pool, SchedulerOptions options, Runner runner);
  ~JobScheduler();  ///< stop()s if the caller has not.

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admission: rejects (typed) or accepts and returns a ticket whose
  /// shared_future completes when the job reaches a terminal status.
  /// `estimate_bytes` is the job's working-set reservation (see
  /// estimate_job_bytes in graph_service.hpp).
  JobTicket submit(JobSpec spec, std::uint64_t estimate_bytes);

  /// Cancels a pending job (future completes with kCancelled now) or
  /// requests cooperative cancellation of a running one (future completes
  /// when it unwinds). False if the id is unknown or already terminal.
  bool cancel(JobId id);

  /// Blocks until no job is pending or running.
  void wait_idle();

  /// Rejects future submits, cancels pending and running jobs, waits for
  /// running jobs to unwind, joins the dispatcher. Idempotent.
  void stop();

  ServiceStats stats() const;
  std::uint64_t reserved_bytes() const;
  std::size_t pending_jobs() const;
  std::size_t running_jobs() const;

  /// Live queued + running jobs for the admin /jobs route, sorted by id.
  std::vector<JobView> snapshot_jobs() const;

  /// Per-job CPU/wait breakdown for the admin /cpu route: running jobs
  /// (live usage snapshot) followed by the most recent terminal jobs,
  /// `{"jobs": [...]}` with wall decomposed into cpu / io_wait / lock_wait /
  /// decode / queued / other seconds. Always well-formed; `[]` when nothing
  /// ran yet.
  std::string cpu_json() const;

  /// The heartbeat of a running job (null when unknown or not yet started).
  /// The pointer stays valid past the job's finish — the engine may keep
  /// ticking it while unwinding.
  std::shared_ptr<obs::ProgressBeat> beat_for(JobId id) const;

  /// Test hook: freezes a running job's heartbeat so every future tick is a
  /// no-op — simulates a wedged worker for watchdog coverage. False when
  /// the job is not running.
  bool freeze_heartbeat(JobId id);

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    JobSpec spec;
    JobId id = 0;
    std::uint64_t estimate = 0;
    std::promise<JobResult> promise;
    std::shared_ptr<CancellationToken> token;
    std::uint64_t submit_ns = 0;  ///< queue-entry time for the trace
    /// CPU/wait attribution ledger (§15); shared with Running so the
    /// watchdog tick can snapshot it while the job executes.
    std::shared_ptr<obs::JobUsage> usage;
  };

  struct Running {
    std::uint64_t estimate = 0;
    std::shared_ptr<CancellationToken> token;
    bool has_deadline = false;
    Clock::time_point deadline;
    // Snapshot fields for /jobs: the Pending moves to the pool worker at
    // dispatch, so the bits the admin plane reports are copied here.
    std::string name;
    ServiceAlgo algo = ServiceAlgo::kPageRank;
    int priority = 0;
    std::uint64_t start_ns = 0;  ///< dispatch time (obs::now_ns)
    /// Shared with the engine (EngineOptions::heartbeat) and sampled by the
    /// watchdog tick; shared_ptr so it outlives this entry (run_one erases
    /// it while the runner's stack may still unwind through engine code).
    std::shared_ptr<obs::ProgressBeat> beat;
    /// Same object as Pending::usage; the watchdog tick snapshots it to
    /// classify a slow job as io/decode/lock/cpu-bound.
    std::shared_ptr<obs::JobUsage> usage;
  };

  /// Terminal-job usage rows retained for /cpu and the serve report.
  struct FinishedUsage {
    JobId id = 0;
    std::string name;
    JobStatus status = JobStatus::kCompleted;
    double wall_seconds = 0;
    obs::JobUsageSnapshot usage;
  };
  static constexpr std::size_t kRecentUsage = 64;

  void dispatcher_loop();
  /// Highest priority, then lowest id. Caller holds mu_.
  std::size_t best_pending_index() const;
  /// Moves pending_[index] into running_ and launches it. Caller holds mu_.
  void start_locked(std::size_t index);
  /// Job body on a pool worker: run, classify outcome, release reservation.
  void run_one(std::shared_ptr<Pending> job);

  ThreadPool& pool_;
  SchedulerOptions opts_;
  Runner runner_;

  /// Contention-profiled (§15): every submit/cancel/snapshot and the
  /// dispatcher serialize here. condition_variable_any pairs with the
  /// wrapper's BasicLockable interface.
  mutable obs::ProfiledMutex mu_{"scheduler_queue"};
  std::condition_variable_any cv_dispatch_;  ///< wakes the dispatcher
  std::condition_variable_any cv_idle_;      ///< wakes wait_idle()
  std::vector<std::unique_ptr<Pending>> pending_;
  std::unordered_map<JobId, Running> running_;
  std::deque<FinishedUsage> recent_usage_;  ///< newest at the back
  std::uint64_t reserved_bytes_ = 0;
  JobId next_id_ = 1;  ///< 0 is the cache's "no job" owner tag
  bool stopping_ = false;
  ServiceStats stats_;
  /// Wall time of every terminal job in nanoseconds (exported in seconds);
  /// lock-free, so run_one records outside mu_.
  obs::Histogram job_wall_ns_{1e-9};

  std::mutex stop_mu_;  ///< serializes stop() (join is not reentrant)
  std::thread dispatcher_;
};

}  // namespace husg
