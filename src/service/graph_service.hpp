// GraphService: one open dual-block store served to many concurrent jobs.
//
// The service owns the shared pieces — a single BlockCache (all jobs hit
// each other's resident blocks; cross-job hits are counted) and a ThreadPool
// whose one-shot lane runs the job bodies — and a JobScheduler for admission
// and dispatch. Each admitted job gets its own Engine (own gang pool of
// `threads_per_job`, own scratch value file) wired to the shared cache with
// its job id as the cache owner tag, and a CancellationToken the engine
// polls, so explicit cancels and deadline timeouts unwind mid-iteration
// with scratch files cleaned up and the service staying fully usable.
//
// Admission charges each job a working-set estimate derived from the §3.4
// cost-model quantities (value arrays, accumulator, frontier bitmaps, COP
// ping-pong block slots, per-worker index scratch) against
// `memory_budget_bytes`; the shared cache's budget is accounted separately
// because cache bytes are reclaimable at any time while a job's working set
// is not. See DESIGN.md §8.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>

#include "cache/block_cache.hpp"
#include "core/engine.hpp"
#include "obs/calibrate.hpp"
#include "obs/postmortem.hpp"
#include "obs/watchdog.hpp"
#include "service/cache_partition.hpp"
#include "service/scheduler.hpp"
#include "storage/store.hpp"

namespace husg {

struct ServiceOptions {
  /// Total non-cache working-set bytes running jobs may reserve.
  std::uint64_t memory_budget_bytes = 1ull << 30;
  /// Shared block-cache budget (0 disables the cache; jobs still run).
  std::uint64_t cache_budget_bytes = 256ull << 20;
  std::size_t max_concurrent_jobs = 2;
  std::size_t max_queued_jobs = 16;
  /// Gang-pool width of each job's engine.
  std::size_t threads_per_job = 2;
  DeviceProfile device = DeviceProfile::sata_ssd();
  PredictorFlavor predictor = PredictorFlavor::kDeviceExact;
  double alpha = 0.05;
  double cache_max_block_fraction = 0.25;
  bool cache_fill_rop = true;
  /// Rebuild frontier Bloom skip filters each iteration in every job's
  /// engine; requires a store built with block signatures.
  bool skip_filter = false;
  bool file_backed_values = true;
  std::filesystem::path scratch_dir;  ///< default: the store directory
  /// Forwarded to every job's engine (EngineOptions::calibrate): kApply
  /// re-prices §3.4 decisions with the live DeviceCalibrator profile once it
  /// is warm. kOff leaves all calibration machinery dormant.
  obs::CalibrationMode calibrate = obs::CalibrationMode::kOff;
  /// MRC-driven cache partitioning (DESIGN.md §13): give every job a shadow
  /// miss-ratio tracker and let the scheduler tick re-split the shared cache
  /// budget across running jobs. Requires cache_budget_bytes > 0.
  bool cache_partition = false;
  /// Scheduler re-partition tick; only used when cache_partition is on.
  std::uint32_t repartition_interval_ms = 250;
  /// Per-job shadow tracker configuration (cache_partition only).
  ShadowMrc::Options shadow;
  /// Flight-recorder budget (DESIGN.md §14): events per thread ring. The
  /// service arms the process-wide recorder at construction unless another
  /// owner already did; 0 leaves it disarmed (record sites stay one relaxed
  /// load).
  std::size_t flight_events = obs::FlightRecorder::kDefaultEventsPerThread;
  /// Anomaly watchdog: a running job whose heartbeat is silent this long is
  /// flagged as stalled and /readyz degrades. 0 disables the watchdog.
  std::uint32_t watchdog_ms = 5000;
  /// Watchdog evaluation tick; 0 derives a quarter of watchdog_ms.
  std::uint32_t watchdog_interval_ms = 0;
  /// Job-wall p95 SLO in milliseconds (watchdog SLO-burn rule); 0 disables.
  std::uint32_t slo_ms = 0;
  /// Postmortem bundles are written here on watchdog trips and bad terminal
  /// job statuses; empty disables file output (GET /debug/bundle still
  /// serves an in-memory bundle).
  std::filesystem::path bundle_dir;
  /// Cap on retained bundle files in bundle_dir (oldest pruned first).
  std::size_t max_bundles = 16;
};

/// Working-set bytes one job reserves while running: value arrays (current +
/// previous), the accumulator for gather/apply programs, two frontier
/// bitmaps, the two §3.5 ping-pong slots sized for the largest decompressed
/// in-block plus its CSR index, and per-worker index scratch. Deliberately a
/// slight over-estimate — admission errs toward rejecting, never toward
/// thrashing.
std::uint64_t estimate_job_bytes(const StoreMeta& meta, const JobSpec& spec,
                                 std::size_t threads);

/// Per-algorithm max_iterations when JobSpec::max_iterations == 0 (PageRank
/// runs the paper's 5 sweeps, SpMV a single multiply, traversals to
/// convergence).
int default_iterations(ServiceAlgo algo);

class GraphService {
 public:
  GraphService(const DualBlockStore& store, ServiceOptions options);
  ~GraphService();  ///< shutdown()s if the caller has not.

  GraphService(const GraphService&) = delete;
  GraphService& operator=(const GraphService&) = delete;

  /// Admission + enqueue; see JobScheduler::submit. The working-set estimate
  /// is computed here from the store's metadata.
  JobTicket submit(JobSpec spec);

  bool cancel(JobId id);
  void wait_idle();
  /// Stops the scheduler (cancels queued and running jobs). Idempotent.
  void shutdown();

  /// Scheduler ledger merged with the shared cache's global counters.
  ServiceStats stats() const;
  /// Live queued + running jobs (admin /jobs route).
  std::vector<JobView> snapshot_jobs() const {
    return scheduler_->snapshot_jobs();
  }
  /// Per-job CPU/wait breakdown (admin /cpu route and the serve report).
  std::string cpu_json() const { return scheduler_->cpu_json(); }
  std::uint64_t estimate_bytes(const JobSpec& spec) const;
  std::uint64_t reserved_bytes() const { return scheduler_->reserved_bytes(); }
  const BlockCache* cache() const { return cache_.get(); }
  const DualBlockStore& store() const { return *store_; }
  const ServiceOptions& options() const { return opts_; }
  /// Null unless cache_partition is on (and the cache exists).
  const CachePartitionManager* partition() const { return partition_.get(); }
  CachePartitionManager* partition() { return partition_.get(); }
  /// Null when watchdog_ms == 0.
  const obs::AnomalyWatchdog* watchdog() const { return watchdog_.get(); }
  /// Always present; file output disabled when bundle_dir is empty.
  obs::PostmortemWriter* postmortem() { return postmortem_.get(); }
  /// One serialized postmortem bundle (GET /debug/bundle).
  std::string bundle_json(const std::string& reason) const {
    return postmortem_->bundle_json(reason);
  }
  /// Test hook: freeze a running job's heartbeat (see JobScheduler).
  bool freeze_heartbeat(JobId id) { return scheduler_->freeze_heartbeat(id); }

 private:
  /// Scheduler Runner: builds an engine against the shared cache and runs
  /// the requested algorithm. Executes on a pool worker.
  JobResult execute(const JobSpec& spec, JobId id,
                    const CancellationToken& token);
  obs::BundleContext bundle_context(const std::string& reason) const;

  const DualBlockStore* store_;
  ServiceOptions opts_;
  std::unique_ptr<BlockCache> cache_;  ///< null when cache_budget_bytes == 0
  /// Declared after cache_ (it holds a reference); null unless partitioning.
  std::unique_ptr<CachePartitionManager> partition_;
  /// Declared before scheduler_: its callbacks (watchdog tick, on_incident)
  /// reference these, and the scheduler joins its threads first on teardown.
  std::unique_ptr<obs::AnomalyWatchdog> watchdog_;
  std::unique_ptr<obs::PostmortemWriter> postmortem_;
  bool armed_flight_ = false;  ///< this service started the flight recorder
  ThreadPool pool_;            ///< one-shot lane runs job bodies
  std::unique_ptr<JobScheduler> scheduler_;
};

}  // namespace husg
