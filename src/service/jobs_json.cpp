#include "service/jobs_json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/common.hpp"

namespace husg {
namespace {

/// Just enough JSON for jobs.json: null/bool/number/string/array/object.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t k = 0; k < pos_ && k < text_.size(); ++k) {
      if (text_[k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream msg;
    msg << "jobs.json:" << line << ":" << col << ": " << what;
    throw DataError(msg.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    char c = peek();
    JsonValue v;
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.str = string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.b = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v.kind = JsonValue::Kind::kBool;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return v;
      default:
        return number();
    }
  }

  JsonValue number() {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    double num = std::strtod(begin, &end);
    if (end == begin) fail("expected a JSON value");
    pos_ += static_cast<std::size_t>(end - begin);
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.num = num;
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        default:
          fail("unsupported string escape");
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(value());
      char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      std::string key = (peek(), string());
      expect(':');
      v.obj.emplace_back(std::move(key), value());
      char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void schema_fail(std::size_t job_index, const std::string& what) {
  std::ostringstream msg;
  msg << "jobs.json: job " << job_index << ": " << what;
  throw DataError(msg.str());
}

std::int64_t require_int(const JsonValue& v, std::size_t job_index,
                         const std::string& key) {
  if (v.kind != JsonValue::Kind::kNumber ||
      v.num != static_cast<double>(static_cast<std::int64_t>(v.num))) {
    schema_fail(job_index, "\"" + key + "\" must be an integer");
  }
  return static_cast<std::int64_t>(v.num);
}

JobSpec parse_job(const JsonValue& v, std::size_t job_index) {
  if (v.kind != JsonValue::Kind::kObject) {
    schema_fail(job_index, "expected an object");
  }
  JobSpec spec;
  spec.name = "job" + std::to_string(job_index);
  bool saw_algo = false;
  for (const auto& [key, val] : v.obj) {
    if (key == "name") {
      if (val.kind != JsonValue::Kind::kString) {
        schema_fail(job_index, "\"name\" must be a string");
      }
      spec.name = val.str;
    } else if (key == "algo") {
      if (val.kind != JsonValue::Kind::kString ||
          !parse_service_algo(val.str, spec.algo)) {
        schema_fail(job_index,
                    "\"algo\" must be one of bfs|wcc|sssp|pagerank|spmv");
      }
      saw_algo = true;
    } else if (key == "source") {
      std::int64_t s = require_int(val, job_index, key);
      if (s < 0) schema_fail(job_index, "\"source\" must be non-negative");
      spec.source = static_cast<VertexId>(s);
    } else if (key == "iterations") {
      std::int64_t it = require_int(val, job_index, key);
      if (it < 0) schema_fail(job_index, "\"iterations\" must be >= 0");
      spec.max_iterations = static_cast<int>(it);
    } else if (key == "priority") {
      spec.priority = static_cast<int>(require_int(val, job_index, key));
    } else if (key == "timeout_ms") {
      std::int64_t t = require_int(val, job_index, key);
      if (t < 0) schema_fail(job_index, "\"timeout_ms\" must be >= 0");
      spec.timeout_ms = t;
    } else if (key == "mode") {
      if (val.kind != JsonValue::Kind::kString ||
          (val.str != "hybrid" && val.str != "rop" && val.str != "cop")) {
        schema_fail(job_index, "\"mode\" must be hybrid|rop|cop");
      }
      spec.mode = val.str == "rop"   ? UpdateMode::kRop
                  : val.str == "cop" ? UpdateMode::kCop
                                     : UpdateMode::kHybrid;
    } else {
      schema_fail(job_index, "unknown key \"" + key + "\"");
    }
  }
  if (!saw_algo) schema_fail(job_index, "missing required key \"algo\"");
  return spec;
}

}  // namespace

std::vector<JobSpec> parse_jobs_json(const std::string& text) {
  JsonValue root = JsonParser(text).parse();
  const JsonValue* jobs = &root;
  if (root.kind == JsonValue::Kind::kObject) {
    jobs = root.get("jobs");
    if (jobs == nullptr) {
      throw DataError("jobs.json: top-level object has no \"jobs\" array");
    }
  }
  if (jobs->kind != JsonValue::Kind::kArray) {
    throw DataError("jobs.json: expected an array of job objects");
  }
  std::vector<JobSpec> out;
  out.reserve(jobs->arr.size());
  for (std::size_t k = 0; k < jobs->arr.size(); ++k) {
    out.push_back(parse_job(jobs->arr[k], k));
  }
  return out;
}

std::vector<JobSpec> load_jobs_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DataError("cannot open jobs file: " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_jobs_json(buf.str());
}

}  // namespace husg
