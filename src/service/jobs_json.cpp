#include "service/jobs_json.hpp"

#include <fstream>
#include <sstream>

#include "util/common.hpp"
#include "util/json.hpp"

namespace husg {
namespace {

[[noreturn]] void schema_fail(std::size_t job_index, const std::string& what) {
  std::ostringstream msg;
  msg << "jobs.json: job " << job_index << ": " << what;
  throw DataError(msg.str());
}

std::int64_t require_int(const JsonValue& v, std::size_t job_index,
                         const std::string& key) {
  if (v.kind != JsonValue::Kind::kNumber ||
      v.num != static_cast<double>(static_cast<std::int64_t>(v.num))) {
    schema_fail(job_index, "\"" + key + "\" must be an integer");
  }
  return static_cast<std::int64_t>(v.num);
}

JobSpec parse_job(const JsonValue& v, std::size_t job_index) {
  if (v.kind != JsonValue::Kind::kObject) {
    schema_fail(job_index, "expected an object");
  }
  JobSpec spec;
  spec.name = "job" + std::to_string(job_index);
  bool saw_algo = false;
  for (const auto& [key, val] : v.obj) {
    if (key == "name") {
      if (val.kind != JsonValue::Kind::kString) {
        schema_fail(job_index, "\"name\" must be a string");
      }
      spec.name = val.str;
    } else if (key == "algo") {
      if (val.kind != JsonValue::Kind::kString ||
          !parse_service_algo(val.str, spec.algo)) {
        schema_fail(job_index,
                    "\"algo\" must be one of bfs|wcc|sssp|pagerank|spmv");
      }
      saw_algo = true;
    } else if (key == "source") {
      std::int64_t s = require_int(val, job_index, key);
      if (s < 0) schema_fail(job_index, "\"source\" must be non-negative");
      spec.source = static_cast<VertexId>(s);
    } else if (key == "iterations") {
      std::int64_t it = require_int(val, job_index, key);
      if (it < 0) schema_fail(job_index, "\"iterations\" must be >= 0");
      spec.max_iterations = static_cast<int>(it);
    } else if (key == "priority") {
      spec.priority = static_cast<int>(require_int(val, job_index, key));
    } else if (key == "timeout_ms") {
      std::int64_t t = require_int(val, job_index, key);
      if (t < 0) schema_fail(job_index, "\"timeout_ms\" must be >= 0");
      spec.timeout_ms = t;
    } else if (key == "mode") {
      if (val.kind != JsonValue::Kind::kString ||
          (val.str != "hybrid" && val.str != "rop" && val.str != "cop")) {
        schema_fail(job_index, "\"mode\" must be hybrid|rop|cop");
      }
      spec.mode = val.str == "rop"   ? UpdateMode::kRop
                  : val.str == "cop" ? UpdateMode::kCop
                                     : UpdateMode::kHybrid;
    } else {
      schema_fail(job_index, "unknown key \"" + key + "\"");
    }
  }
  if (!saw_algo) schema_fail(job_index, "missing required key \"algo\"");
  return spec;
}

}  // namespace

std::vector<JobSpec> parse_jobs_json(const std::string& text) {
  JsonValue root = parse_json(text, "jobs.json");
  const JsonValue* jobs = &root;
  if (root.kind == JsonValue::Kind::kObject) {
    jobs = root.get("jobs");
    if (jobs == nullptr) {
      throw DataError("jobs.json: top-level object has no \"jobs\" array");
    }
  }
  if (jobs->kind != JsonValue::Kind::kArray) {
    throw DataError("jobs.json: expected an array of job objects");
  }
  std::vector<JobSpec> out;
  out.reserve(jobs->arr.size());
  for (std::size_t k = 0; k < jobs->arr.size(); ++k) {
    out.push_back(parse_job(jobs->arr[k], k));
  }
  return out;
}

std::vector<JobSpec> load_jobs_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DataError("cannot open jobs file: " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_jobs_json(buf.str());
}

}  // namespace husg
