// MRC-driven cache partitioning for the multi-job service (DESIGN.md §13).
//
// Each running job feeds a per-owner ShadowMrc through its CachedBlockReader
// (Engine wires EngineOptions::shadow_mrc). On the scheduler's re-partition
// tick this manager reads every warm job's live miss-ratio curve and searches
// for the split of the shared BlockCache budget that minimizes the total
// predicted disk traffic
//
//   Σ_j  miss_j(B_j) × saved_bytes_j      s.t.  Σ_j B_j = budget
//
// with a greedy hill-climb over fixed-size chunks (budget / `steps`): start
// from an even split and repeatedly move one chunk from the donor whose curve
// loses least to the receiver whose curve gains most, until no move improves
// the objective. The result is installed through BlockCache::set_partition
// only when it beats the currently installed split by more than `hysteresis`
// (relative) — quotas force evictions, so flapping between near-equal splits
// would cost real I/O. With fewer than two warm jobs the partition is cleared
// and the cache falls back to the plain shared CLOCK sweep.
//
// Thread model: shadow_for / job_finished are called by pool workers,
// repartition by the scheduler dispatcher, write_json by the admin plane; one
// mutex guards the tracker map and the installed split. ShadowMrc::record
// runs on engine workers *without* this mutex — trackers are internally
// synchronized and stay alive until job_finished, which the service calls
// only after the job's engine is destroyed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cache/block_cache.hpp"
#include "cache/shadow_mrc.hpp"
#include "service/job.hpp"

namespace husg {

namespace obs {
class Registry;
}  // namespace obs

class CachePartitionManager {
 public:
  struct Options {
    /// Forwarded to each per-job tracker.
    ShadowMrc::Options shadow;
    /// Hill-climb granularity: quotas move in chunks of budget / steps.
    std::size_t steps = 16;
    /// Minimum relative improvement over the installed split before a new
    /// partition is applied (re-partitioning evicts, so flapping is costly).
    double hysteresis = 0.05;
  };

  /// `cache` must outlive the manager (GraphService owns both).
  CachePartitionManager(BlockCache& cache, Options options);

  /// The tracker for one job, created on first use. The pointer stays valid
  /// until job_finished(owner); the caller must not use it after that.
  ShadowMrc* shadow_for(std::uint32_t owner);

  /// Drops the job's tracker and releases its quota. If fewer than two
  /// partitioned owners remain the partition is cleared entirely.
  void job_finished(std::uint32_t owner);

  /// The scheduler tick: recompute the best split across `running` jobs and
  /// install it if it clears the hysteresis gate. Safe to call with ids that
  /// have no tracker yet (they are skipped until warm).
  void repartition(const std::vector<JobId>& running);

  /// Times a split was installed (not counting clears). Test hook.
  std::uint64_t repartitions_applied() const;
  bool partitioned() const;

  /// JSON for the admin /mrc route: the installed partition plus every live
  /// tracker's curve, knee, and counters.
  void write_json(std::ostream& os) const;

  /// husg_mrc_* gauges (aggregate — the text exposition has no labels).
  void publish(obs::Registry& registry) const;

 private:
  /// Σ predicted miss bytes for `alloc` (same order as `owners`).
  double objective(const std::vector<const ShadowMrc*>& owners,
                   const std::vector<std::uint64_t>& alloc) const;

  BlockCache& cache_;
  Options opts_;

  mutable std::mutex mu_;
  std::unordered_map<std::uint32_t, std::unique_ptr<ShadowMrc>> trackers_;
  /// The split currently installed in the cache (empty = not partitioned).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> installed_;
  std::uint64_t applied_ = 0;
};

}  // namespace husg
