#include "service/graph_service.hpp"

#include <algorithm>
#include <cstdlib>

#include "algos/bfs.hpp"
#include "algos/pagerank.hpp"
#include "algos/spmv.hpp"
#include "algos/sssp.hpp"
#include "algos/wcc.hpp"
#include "util/timer.hpp"

namespace husg {
namespace {

bool accumulating(ServiceAlgo algo) {
  return algo == ServiceAlgo::kPageRank || algo == ServiceAlgo::kSpmv;
}

/// Widens a typed engine result into the JobResult payload.
template <class V>
void fill_result(JobResult& res, RunResult<V>&& run) {
  res.stats = std::move(run.stats);
  res.values.assign(run.values.begin(), run.values.end());
}

}  // namespace

int default_iterations(ServiceAlgo algo) {
  switch (algo) {
    case ServiceAlgo::kPageRank:
      return 5;
    case ServiceAlgo::kSpmv:
      return 1;
    default:
      return 100000;  // traversals: run to convergence
  }
}

std::uint64_t estimate_job_bytes(const StoreMeta& meta, const JobSpec& spec,
                                 std::size_t threads) {
  const std::uint64_t n = meta.num_vertices;
  // Every service algorithm uses a 4-byte value (uint32 hops/labels, float
  // ranks/distances/products).
  const std::uint64_t value_bytes = 4;
  std::uint64_t bytes = 2 * n * value_bytes;  // ValueStore: vals + prev
  if (accumulating(spec.algo)) bytes += n * value_bytes;  // gather acc
  bytes += 2 * (n / 8 + 1);  // frontier + next-frontier bitmaps
  // §3.5 ping-pong slots: two decompressed in-blocks + their CSR indices.
  // Varint blocks are held decoded, so size by records, not disk bytes.
  std::uint64_t max_block = 0;
  std::uint64_t max_index = 0;
  const std::uint32_t p = meta.p();
  for (std::uint32_t i = 0; i < p; ++i) {
    max_index = std::max<std::uint64_t>(
        max_index, (static_cast<std::uint64_t>(meta.interval_size(i)) + 1) *
                       sizeof(std::uint32_t));
    for (std::uint32_t j = 0; j < p; ++j) {
      max_block = std::max(max_block, meta.in_block(i, j).edge_count *
                                          meta.edge_record_bytes());
    }
  }
  bytes += 2 * (max_block + max_index);
  // Per-worker ROP scratch: an index plus point-load buffers (bounded by an
  // index-sized slab in practice).
  bytes += static_cast<std::uint64_t>(threads) * max_index;
  return bytes;
}

GraphService::GraphService(const DualBlockStore& store, ServiceOptions options)
    : store_(&store),
      opts_(options),
      cache_(opts_.cache_budget_bytes > 0
                 ? std::make_unique<BlockCache>(BlockCache::Options{
                       opts_.cache_budget_bytes,
                       opts_.cache_max_block_fraction})
                 : nullptr),
      // +1: ThreadPool(n) spawns n-1 workers (the caller is a gang
      // participant); job bodies run as one-shots, which only workers serve.
      pool_(opts_.max_concurrent_jobs + 1) {
  HUSG_CHECK(opts_.max_concurrent_jobs > 0,
             "max_concurrent_jobs must be positive");
  HUSG_CHECK(opts_.threads_per_job > 0, "threads_per_job must be positive");
  if (opts_.cache_partition && cache_) {
    CachePartitionManager::Options po;
    po.shadow = opts_.shadow;
    partition_ = std::make_unique<CachePartitionManager>(*cache_, po);
  }
  // Arm the process-wide flight recorder unless another owner (an earlier
  // service, the CLI, a test) already did; disarm again in the destructor so
  // record sites go back to a single relaxed load.
  if (opts_.flight_events > 0 && !obs::flight_enabled()) {
    obs::FlightRecorder::instance().start(opts_.flight_events);
    armed_flight_ = true;
  }
  obs::PostmortemWriter::Options bo;
  bo.dir = opts_.bundle_dir;
  bo.max_bundles = opts_.max_bundles;
  postmortem_ = std::make_unique<obs::PostmortemWriter>(
      bo, [this](const std::string& reason) { return bundle_context(reason); });
  SchedulerOptions sched;
  sched.max_concurrent = opts_.max_concurrent_jobs;
  sched.max_queue = opts_.max_queued_jobs;
  sched.memory_budget_bytes = opts_.memory_budget_bytes;
  if (partition_) {
    sched.repartition_interval_ms = opts_.repartition_interval_ms;
    sched.repartition = [this](const std::vector<JobId>& running) {
      partition_->repartition(running);
    };
  }
  if (opts_.watchdog_ms > 0) {
    obs::WatchdogOptions wo;
    wo.stall_ms = opts_.watchdog_ms;
    wo.slo_ms = opts_.slo_ms;
    watchdog_ = std::make_unique<obs::AnomalyWatchdog>(wo);
    watchdog_->set_on_trip([this](const obs::Anomaly& a) {
      if (!opts_.bundle_dir.empty()) {
        postmortem_->write(std::string("watchdog-") + obs::to_string(a.kind));
      }
    });
    sched.watchdog_interval_ms =
        opts_.watchdog_interval_ms > 0
            ? opts_.watchdog_interval_ms
            : std::max<std::uint32_t>(50, opts_.watchdog_ms / 4);
    sched.watchdog = [this](const std::vector<obs::JobHealth>& health,
                            const obs::LatencySummary& wall) {
      CacheStats cs;
      const CacheStats* csp = nullptr;
      if (cache_) {
        cs = cache_->stats();
        csp = &cs;
      }
      watchdog_->evaluate(health, wall, csp);
    };
  }
  sched.on_incident = [this](const obs::IncidentInfo& inc) {
    if (!opts_.bundle_dir.empty()) {
      postmortem_->write("job-" + inc.status, &inc);
    }
  };
  scheduler_ = std::make_unique<JobScheduler>(
      pool_, sched,
      [this](const JobSpec& spec, JobId id, const CancellationToken& token) {
        return execute(spec, id, token);
      });
}

GraphService::~GraphService() {
  shutdown();
  if (armed_flight_) obs::FlightRecorder::instance().stop();
}

obs::BundleContext GraphService::bundle_context(
    const std::string& reason) const {
  obs::BundleContext ctx;
  ctx.reason = reason;
  ctx.store_dir = store_->dir().string();
  ctx.meta = &store_->meta();
  if (watchdog_) ctx.anomalies = watchdog_->active();
  ctx.jobs = scheduler_ ? scheduler_->snapshot_jobs() : std::vector<JobView>{};
  if (scheduler_) {
    ctx.has_stats = true;
    ctx.stats = stats();
  }
  ctx.calibration_json = [](std::ostream& os) {
    obs::DeviceCalibrator::instance().write_json(os);
  };
  if (partition_) {
    CachePartitionManager* mgr = partition_.get();
    ctx.mrc_json = [mgr](std::ostream& os) { mgr->write_json(os); };
  }
  ctx.registry = &obs::Registry::global();
  return ctx;
}

std::uint64_t GraphService::estimate_bytes(const JobSpec& spec) const {
  return estimate_job_bytes(store_->meta(), spec, opts_.threads_per_job);
}

JobTicket GraphService::submit(JobSpec spec) {
  std::uint64_t estimate = estimate_bytes(spec);
  return scheduler_->submit(std::move(spec), estimate);
}

bool GraphService::cancel(JobId id) { return scheduler_->cancel(id); }

void GraphService::wait_idle() { scheduler_->wait_idle(); }

void GraphService::shutdown() { scheduler_->stop(); }

ServiceStats GraphService::stats() const {
  ServiceStats out = scheduler_->stats();
  if (cache_) out.cache = cache_->stats();
  return out;
}

JobResult GraphService::execute(const JobSpec& spec, JobId id,
                                const CancellationToken& token) {
  const StoreMeta& meta = store_->meta();
  EngineOptions eo;
  eo.mode = spec.mode;
  eo.threads = opts_.threads_per_job;
  eo.device = opts_.device;
  eo.predictor = opts_.predictor;
  eo.alpha = opts_.alpha;
  eo.file_backed_values = opts_.file_backed_values;
  eo.scratch_dir = opts_.scratch_dir;
  eo.cache_fill_rop = opts_.cache_fill_rop;
  eo.skip_filter = opts_.skip_filter;
  eo.shared_cache = cache_.get();
  eo.cache_owner = static_cast<std::uint32_t>(id);
  eo.calibrate = opts_.calibrate;
  eo.shadow_mrc =
      partition_ ? partition_->shadow_for(static_cast<std::uint32_t>(id))
                 : nullptr;
  eo.cancel = &token;
  // Heartbeat: the scheduler owns the beat (shared so it outlives the
  // Running entry); the engine ticks it each iteration. The env hook wedges
  // a named job's beat for watchdog end-to-end tests.
  std::shared_ptr<obs::ProgressBeat> beat = scheduler_->beat_for(id);
  if (beat) {
    if (const char* freeze = std::getenv("HUSG_TEST_FREEZE_HEARTBEAT");
        freeze != nullptr && spec.name == freeze) {
      beat->frozen.store(true, std::memory_order_relaxed);
    }
    eo.heartbeat = beat.get();
  }
  eo.max_iterations = spec.max_iterations > 0 ? spec.max_iterations
                                              : default_iterations(spec.algo);
  HUSG_CHECK(spec.source < meta.num_vertices,
             "job source vertex " << spec.source << " out of range (|V| = "
                                  << meta.num_vertices << ")");
  // The tracker must outlive the engine (whose reader records into it), so
  // retire it on every exit path only after the engine is destroyed — the
  // guard's destructor runs after `engine`'s even when run() throws.
  struct ShadowRetirer {
    CachePartitionManager* mgr;
    std::uint32_t owner;
    ~ShadowRetirer() {
      if (mgr != nullptr) mgr->job_finished(owner);
    }
  } retirer{partition_.get(), static_cast<std::uint32_t>(id)};
  Engine engine(*store_, eo);
  JobResult res;
  switch (spec.algo) {
    case ServiceAlgo::kBfs: {
      BfsProgram prog;
      prog.source = spec.source;
      fill_result(res, engine.run(prog, Frontier::single(meta, spec.source,
                                                         store_->out_degrees())));
      break;
    }
    case ServiceAlgo::kWcc: {
      WccProgram prog;
      fill_result(res, engine.run(prog, Frontier::all(meta,
                                                      store_->out_degrees())));
      break;
    }
    case ServiceAlgo::kSssp: {
      SsspProgram prog;
      prog.source = spec.source;
      fill_result(res, engine.run(prog, Frontier::single(meta, spec.source,
                                                         store_->out_degrees())));
      break;
    }
    case ServiceAlgo::kPageRank: {
      PageRankProgram prog;
      fill_result(res, engine.run(prog, Frontier::all(meta,
                                                      store_->out_degrees())));
      break;
    }
    case ServiceAlgo::kSpmv: {
      SpmvProgram prog;
      fill_result(res, engine.run(prog, Frontier::all(meta,
                                                      store_->out_degrees())));
      break;
    }
  }
  return res;
}

}  // namespace husg
