#include "service/job.hpp"

namespace husg {

const char* to_string(ServiceAlgo algo) {
  switch (algo) {
    case ServiceAlgo::kBfs:
      return "bfs";
    case ServiceAlgo::kWcc:
      return "wcc";
    case ServiceAlgo::kSssp:
      return "sssp";
    case ServiceAlgo::kPageRank:
      return "pagerank";
    case ServiceAlgo::kSpmv:
      return "spmv";
  }
  return "?";
}

bool parse_service_algo(const std::string& name, ServiceAlgo& out) {
  if (name == "bfs") {
    out = ServiceAlgo::kBfs;
  } else if (name == "wcc") {
    out = ServiceAlgo::kWcc;
  } else if (name == "sssp") {
    out = ServiceAlgo::kSssp;
  } else if (name == "pagerank") {
    out = ServiceAlgo::kPageRank;
  } else if (name == "spmv") {
    out = ServiceAlgo::kSpmv;
  } else {
    return false;
  }
  return true;
}

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kCompleted:
      return "completed";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kCancelled:
      return "cancelled";
    case JobStatus::kTimedOut:
      return "timed_out";
  }
  return "?";
}

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kMemoryBudget:
      return "memory_budget";
    case RejectReason::kShuttingDown:
      return "shutting_down";
  }
  return "?";
}

}  // namespace husg
