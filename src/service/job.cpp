#include "service/job.hpp"

#include <cstdio>
#include <sstream>

namespace husg {

namespace {

void append_json_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::string jobs_view_json(const std::vector<JobView>& jobs) {
  std::ostringstream os;
  os << "{\"jobs\": [";
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const JobView& j = jobs[k];
    if (k != 0) os << ", ";
    os << "{\"id\": " << j.id << ", \"name\": \"";
    append_json_escaped(os, j.name);
    os << "\", \"status\": \"" << to_string(j.status) << "\", \"algo\": \""
       << j.algo << "\", \"priority\": " << j.priority
       << ", \"estimate_bytes\": " << j.estimate_bytes
       << ", \"wall_seconds\": " << j.wall_seconds
       << ", \"iteration\": " << j.iteration << ", \"edges\": " << j.edges
       << ", \"io_bytes\": " << j.io_bytes
       << ", \"last_tick_age_seconds\": " << j.last_tick_age_seconds << "}";
  }
  os << "]}\n";
  return os.str();
}

const char* to_string(ServiceAlgo algo) {
  switch (algo) {
    case ServiceAlgo::kBfs:
      return "bfs";
    case ServiceAlgo::kWcc:
      return "wcc";
    case ServiceAlgo::kSssp:
      return "sssp";
    case ServiceAlgo::kPageRank:
      return "pagerank";
    case ServiceAlgo::kSpmv:
      return "spmv";
  }
  return "?";
}

bool parse_service_algo(const std::string& name, ServiceAlgo& out) {
  if (name == "bfs") {
    out = ServiceAlgo::kBfs;
  } else if (name == "wcc") {
    out = ServiceAlgo::kWcc;
  } else if (name == "sssp") {
    out = ServiceAlgo::kSssp;
  } else if (name == "pagerank") {
    out = ServiceAlgo::kPageRank;
  } else if (name == "spmv") {
    out = ServiceAlgo::kSpmv;
  } else {
    return false;
  }
  return true;
}

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kCompleted:
      return "completed";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kCancelled:
      return "cancelled";
    case JobStatus::kTimedOut:
      return "timed_out";
  }
  return "?";
}

void ServiceStats::publish(obs::Registry& reg) const {
  reg.counter("husg_service_jobs_submitted_total", "Jobs submitted")
      .inc(submitted);
  reg.counter("husg_service_jobs_accepted_total", "Jobs admitted")
      .inc(accepted);
  reg.counter("husg_service_jobs_rejected_queue_full_total",
              "Submits rejected because the pending queue was full")
      .inc(rejected_queue_full);
  reg.counter("husg_service_jobs_rejected_memory_total",
              "Submits rejected because the estimate exceeds the budget")
      .inc(rejected_memory);
  reg.counter("husg_service_jobs_rejected_shutdown_total",
              "Submits rejected during shutdown")
      .inc(rejected_shutdown);
  reg.counter("husg_service_jobs_completed_total", "Jobs completed")
      .inc(completed);
  reg.counter("husg_service_jobs_failed_total", "Jobs failed").inc(failed);
  reg.counter("husg_service_jobs_cancelled_total", "Jobs cancelled")
      .inc(cancelled);
  reg.counter("husg_service_jobs_timed_out_total", "Jobs timed out")
      .inc(timed_out);
  reg.counter("husg_service_edges_processed_total",
              "Edges scanned by terminal jobs")
      .inc(edges_processed);
  reg.gauge("husg_service_peak_reserved_bytes",
            "High-water mark of reserved working-set bytes")
      .set(static_cast<double>(peak_reserved_bytes));
  // Per-job CPU/wait attribution, aggregated over terminal jobs (§15).
  // Gauges (cumulative values), so this block is also safe to re-publish
  // from the admin pre-scrape hook.
  reg.gauge("husg_cpu_jobs_cpu_seconds", "CPU charged to terminal jobs")
      .set(static_cast<double>(usage_total.cpu_ns) / 1e9);
  reg.gauge("husg_cpu_jobs_io_wait_seconds",
            "I/O wait charged to terminal jobs")
      .set(static_cast<double>(usage_total.io_wait_ns) / 1e9);
  reg.gauge("husg_cpu_jobs_lock_wait_seconds",
            "Lock wait charged to terminal jobs")
      .set(static_cast<double>(usage_total.lock_wait_ns) / 1e9);
  reg.gauge("husg_cpu_jobs_decode_seconds",
            "Codec decode time charged to terminal jobs")
      .set(static_cast<double>(usage_total.decode_ns) / 1e9);
  reg.gauge("husg_cpu_jobs_queued_seconds",
            "Queue wait accumulated by terminal jobs")
      .set(static_cast<double>(usage_total.queued_ns) / 1e9);
  cache.publish(reg);
}

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kMemoryBudget:
      return "memory_budget";
    case RejectReason::kShuttingDown:
      return "shutting_down";
  }
  return "?";
}

}  // namespace husg
