#include "service/scheduler.hpp"

#include <algorithm>
#include <sstream>

#include "util/timer.hpp"

namespace husg {

JobScheduler::JobScheduler(ThreadPool& pool, SchedulerOptions options,
                           Runner runner)
    : pool_(pool), opts_(options), runner_(std::move(runner)) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

JobScheduler::~JobScheduler() { stop(); }

JobTicket JobScheduler::submit(JobSpec spec, std::uint64_t estimate_bytes) {
  JobTicket ticket;
  std::unique_lock<obs::ProfiledMutex> lock(mu_);
  ++stats_.submitted;
  if (stopping_) {
    ++stats_.rejected_shutdown;
    ticket.reject = RejectReason::kShuttingDown;
    ticket.message = "service is shutting down";
    return ticket;
  }
  if (estimate_bytes > opts_.memory_budget_bytes) {
    // Would never fit even alone; rejecting here is also what guarantees the
    // dispatcher's head-of-line wait always terminates.
    ++stats_.rejected_memory;
    ticket.reject = RejectReason::kMemoryBudget;
    std::ostringstream msg;
    msg << "estimated working set " << estimate_bytes
        << " B exceeds the service memory budget "
        << opts_.memory_budget_bytes << " B";
    ticket.message = msg.str();
    return ticket;
  }
  if (pending_.size() >= opts_.max_queue) {
    ++stats_.rejected_queue_full;
    ticket.reject = RejectReason::kQueueFull;
    std::ostringstream msg;
    msg << "pending queue is full (" << opts_.max_queue << " jobs); retry";
    ticket.message = msg.str();
    return ticket;
  }
  auto job = std::make_unique<Pending>();
  job->spec = std::move(spec);
  job->id = next_id_++;
  job->estimate = estimate_bytes;
  job->token = std::make_shared<CancellationToken>();
  job->submit_ns = obs::now_ns();
  job->usage = std::make_shared<obs::JobUsage>();
  ticket.accepted = true;
  ticket.id = job->id;
  ticket.result = job->promise.get_future().share();
  ++stats_.accepted;
  const int priority = job->spec.priority;
  pending_.push_back(std::move(job));
  lock.unlock();
  cv_dispatch_.notify_all();
  if (obs::flight_enabled()) [[unlikely]] {
    obs::FlightEvent e;
    e.type = obs::FlightEventType::kJobSubmitted;
    e.job = ticket.id;
    e.v1 = static_cast<std::uint64_t>(static_cast<std::int64_t>(priority));
    e.v2 = estimate_bytes;
    obs::FlightRecorder::instance().record(e);
  }
  return ticket;
}

std::size_t JobScheduler::best_pending_index() const {
  std::size_t best = 0;
  for (std::size_t k = 1; k < pending_.size(); ++k) {
    if (pending_[k]->spec.priority > pending_[best]->spec.priority) best = k;
    // ids are monotone in submit order, so equal priority keeps the earlier
    // submit (smaller index) — FIFO within a priority class.
  }
  return best;
}

void JobScheduler::start_locked(std::size_t index) {
  std::shared_ptr<Pending> job(std::move(pending_[index]));
  pending_.erase(pending_.begin() +
                 static_cast<std::ptrdiff_t>(index));
  // Trace the queued phase as a completed span: submit time to admission.
  if (obs::Tracer::instance().enabled()) {
    obs::Tracer::instance().record(
        "service", "job_queued", job->submit_ns,
        obs::now_ns() - job->submit_ns, "job",
        static_cast<std::int64_t>(job->id), "priority", job->spec.priority);
  }
  reserved_bytes_ += job->estimate;
  stats_.peak_reserved_bytes =
      std::max(stats_.peak_reserved_bytes, reserved_bytes_);
  Running r;
  r.estimate = job->estimate;
  r.token = job->token;
  r.name = job->spec.name;
  r.algo = job->spec.algo;
  r.priority = job->spec.priority;
  r.start_ns = obs::now_ns();
  // Queue wait is final here: written once before any worker binds the
  // usage, so the plain (non-atomic) field is race-free.
  job->usage->queued_ns = r.start_ns - std::min(r.start_ns, job->submit_ns);
  r.usage = job->usage;
  r.beat = std::make_shared<obs::ProgressBeat>();
  if (job->spec.timeout_ms > 0) {
    r.has_deadline = true;
    r.deadline = Clock::now() + std::chrono::milliseconds(job->spec.timeout_ms);
  }
  running_.emplace(job->id, std::move(r));
  if (obs::flight_enabled()) [[unlikely]] {
    obs::FlightEvent e;
    e.type = obs::FlightEventType::kJobStarted;
    e.job = job->id;
    e.v1 = job->estimate;
    obs::FlightRecorder::instance().record(e);
  }
  pool_.submit([this, job] { run_one(job); });
}

void JobScheduler::dispatcher_loop() {
  obs::Profiler::set_thread_role("dispatcher");
  const bool tick_enabled =
      opts_.repartition_interval_ms > 0 && opts_.repartition != nullptr;
  const auto tick_interval =
      std::chrono::milliseconds(opts_.repartition_interval_ms);
  Clock::time_point next_tick =
      tick_enabled ? Clock::now() + tick_interval : Clock::time_point::max();
  const bool wd_enabled =
      opts_.watchdog_interval_ms > 0 && opts_.watchdog != nullptr;
  const auto wd_interval =
      std::chrono::milliseconds(opts_.watchdog_interval_ms);
  Clock::time_point next_wd =
      wd_enabled ? Clock::now() + wd_interval : Clock::time_point::max();
  std::unique_lock<obs::ProfiledMutex> lock(mu_);
  for (;;) {
    // Start the head job while slots and memory allow. Memory shortfall
    // blocks the queue (see header) until running reservations release.
    while (!stopping_ && !pending_.empty() &&
           running_.size() < opts_.max_concurrent) {
      std::size_t best = best_pending_index();
      if (reserved_bytes_ + pending_[best]->estimate >
          opts_.memory_budget_bytes) {
        break;
      }
      start_locked(best);
    }
    if (stopping_ && pending_.empty() && running_.empty()) return;
    // Deadline watchdog: fire expired timeouts, find the next wake-up.
    // Scanned after the start loop so a just-started job's deadline is
    // armed before this pass sleeps.
    const Clock::time_point now = Clock::now();
    Clock::time_point next_deadline = Clock::time_point::max();
    for (auto& [id, r] : running_) {
      if (!r.has_deadline || r.token->cancelled()) continue;
      if (r.deadline <= now) {
        r.token->request(CancelKind::kTimeout);
      } else {
        next_deadline = std::min(next_deadline, r.deadline);
      }
    }
    // Re-partition tick: the callback runs unlocked (it takes the cache and
    // partition-manager locks), then the loop re-evaluates from the top —
    // jobs may have finished while the lock was dropped.
    if (tick_enabled && now >= next_tick) {
      next_tick = Clock::now() + tick_interval;
      if (!stopping_ && !running_.empty()) {
        std::vector<JobId> ids;
        ids.reserve(running_.size());
        for (const auto& [id, r] : running_) ids.push_back(id);
        lock.unlock();
        opts_.repartition(ids);
        lock.lock();
        continue;
      }
    }
    // Watchdog tick: sample heartbeats under the lock, evaluate unlocked
    // (the callback takes the watchdog's own lock and may write a bundle).
    // Runs with zero rows too, so service-wide anomalies can clear.
    if (wd_enabled && now >= next_wd) {
      next_wd = Clock::now() + wd_interval;
      if (!stopping_) {
        std::vector<obs::JobHealth> health;
        health.reserve(running_.size());
        for (const auto& [id, r] : running_) {
          obs::JobHealth h;
          h.id = id;
          h.name = r.name;
          h.start_ns = r.start_ns;
          if (r.beat) {
            h.last_tick_ns =
                r.beat->last_tick_ns.load(std::memory_order_relaxed);
            h.iteration = r.beat->iteration.load(std::memory_order_relaxed);
            h.edges = r.beat->edges.load(std::memory_order_relaxed);
            h.io_bytes = r.beat->io_bytes.load(std::memory_order_relaxed);
            h.mispredict_streak =
                r.beat->mispredict_streak.load(std::memory_order_relaxed);
          }
          if (r.usage) {
            h.usage = obs::snapshot_usage(*r.usage);
            h.has_usage = true;
          }
          health.push_back(std::move(h));
        }
        const obs::LatencySummary wall =
            obs::LatencySummary::from(job_wall_ns_.snapshot());
        lock.unlock();
        opts_.watchdog(health, wall);
        lock.lock();
        continue;
      }
    }
    Clock::time_point wake =
        tick_enabled && !running_.empty() ? std::min(next_deadline, next_tick)
                                          : next_deadline;
    if (wd_enabled) wake = std::min(wake, next_wd);
    if (wake == Clock::time_point::max()) {
      cv_dispatch_.wait(lock);
    } else {
      cv_dispatch_.wait_until(lock, wake);
    }
  }
}

void JobScheduler::run_one(std::shared_ptr<Pending> job) {
  HUSG_SPAN("service", "job_run", "job", static_cast<std::int64_t>(job->id));
  Timer timer;
  JobResult res;
  try {
    // Bind this worker's charges (CPU, io/lock waits, decode) to the job;
    // the pool propagates the binding to gang workers and one-shots the
    // runner spawns. The scope closes (charging this thread's CPU delta)
    // before the bookkeeping below.
    obs::UsageScope usage_scope(job->usage.get());
    res = runner_(job->spec, job->id, *job->token);
    res.status = JobStatus::kCompleted;
  } catch (const OperationCancelled& e) {
    res = JobResult{};
    res.status = e.timed_out() ? JobStatus::kTimedOut : JobStatus::kCancelled;
    res.error = e.what();
  } catch (const std::exception& e) {
    res = JobResult{};
    res.status = JobStatus::kFailed;
    res.error = e.what();
  }
  res.id = job->id;
  res.name = job->spec.name;
  res.wall_seconds = timer.seconds();
  res.usage = obs::snapshot_usage(*job->usage);
  job_wall_ns_.record(static_cast<std::uint64_t>(res.wall_seconds * 1e9));
  std::shared_ptr<obs::ProgressBeat> beat;
  {
    std::lock_guard<obs::ProfiledMutex> lock(mu_);
    auto run_it = running_.find(job->id);
    if (run_it != running_.end()) beat = run_it->second.beat;
    reserved_bytes_ -= job->estimate;
    running_.erase(job->id);
    FinishedUsage fin;
    fin.id = res.id;
    fin.name = res.name;
    fin.status = res.status;
    fin.wall_seconds = res.wall_seconds;
    fin.usage = res.usage;
    recent_usage_.push_back(std::move(fin));
    if (recent_usage_.size() > kRecentUsage) recent_usage_.pop_front();
    stats_.usage_total.cpu_ns += res.usage.cpu_ns;
    stats_.usage_total.io_wait_ns += res.usage.io_wait_ns;
    stats_.usage_total.lock_wait_ns += res.usage.lock_wait_ns;
    stats_.usage_total.decode_ns += res.usage.decode_ns;
    stats_.usage_total.root_cpu_ns += res.usage.root_cpu_ns;
    stats_.usage_total.root_io_wait_ns += res.usage.root_io_wait_ns;
    stats_.usage_total.root_lock_wait_ns += res.usage.root_lock_wait_ns;
    stats_.usage_total.root_sched_wait_ns += res.usage.root_sched_wait_ns;
    stats_.usage_total.queued_ns += res.usage.queued_ns;
    switch (res.status) {
      case JobStatus::kCompleted:
        ++stats_.completed;
        break;
      case JobStatus::kFailed:
        ++stats_.failed;
        break;
      case JobStatus::kTimedOut:
        ++stats_.timed_out;
        break;
      default:
        ++stats_.cancelled;
        break;
    }
    stats_.edges_processed += res.stats.edges_processed;
    stats_.io += res.stats.total_io;
    // Notify while still holding the mutex: once `running_` is observed
    // empty (wait_idle acquires mu_), the caller may destroy the scheduler,
    // so the condvars must not be touched after the unlock.
    cv_dispatch_.notify_all();
    cv_idle_.notify_all();
  }
  if (obs::flight_enabled()) [[unlikely]] {
    obs::FlightEvent e;
    e.type = obs::FlightEventType::kJobFinished;
    e.flag = static_cast<std::uint8_t>(res.status);
    e.job = res.id;
    e.v1 = static_cast<std::uint64_t>(res.wall_seconds * 1e6);
    obs::FlightRecorder::instance().record(e);
  }
  // Incident hook (timeout/cancel/failure): fired after the ledger update so
  // a bundle written from the hook sees this job counted, with the final
  // heartbeat snapshot attached — by now the job has left the live table.
  if (res.status != JobStatus::kCompleted && opts_.on_incident) {
    obs::IncidentInfo incident;
    incident.id = res.id;
    incident.name = res.name;
    incident.status = to_string(res.status);
    incident.error = res.error;
    incident.wall_seconds = res.wall_seconds;
    if (beat) {
      incident.iteration = beat->iteration.load(std::memory_order_relaxed);
      incident.edges = beat->edges.load(std::memory_order_relaxed);
      incident.io_bytes = beat->io_bytes.load(std::memory_order_relaxed);
      const std::uint64_t last =
          beat->last_tick_ns.load(std::memory_order_relaxed);
      if (last > 0) {
        const std::uint64_t now = obs::now_ns();
        incident.last_tick_age_seconds =
            static_cast<double>(now - std::min(now, last)) * 1e-9;
      }
    }
    opts_.on_incident(incident);
  }
  // Fulfil last: a waiter observing the future ready sees the ledger and the
  // released reservation.
  job->promise.set_value(std::move(res));
}

std::shared_ptr<obs::ProgressBeat> JobScheduler::beat_for(JobId id) const {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  auto it = running_.find(id);
  return it == running_.end() ? nullptr : it->second.beat;
}

bool JobScheduler::freeze_heartbeat(JobId id) {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  auto it = running_.find(id);
  if (it == running_.end() || !it->second.beat) return false;
  it->second.beat->frozen.store(true, std::memory_order_relaxed);
  return true;
}

bool JobScheduler::cancel(JobId id) {
  std::unique_lock<obs::ProfiledMutex> lock(mu_);
  for (std::size_t k = 0; k < pending_.size(); ++k) {
    if (pending_[k]->id != id) continue;
    std::unique_ptr<Pending> job = std::move(pending_[k]);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(k));
    ++stats_.cancelled;
    // A removed pending job can unblock the head-of-line memory wait.
    // Notified under the lock for the same lifetime reason as run_one.
    cv_dispatch_.notify_all();
    cv_idle_.notify_all();
    lock.unlock();
    JobResult res;
    res.id = job->id;
    res.name = job->spec.name;
    res.status = JobStatus::kCancelled;
    res.error = "cancelled before start";
    job->promise.set_value(std::move(res));
    return true;
  }
  auto it = running_.find(id);
  if (it == running_.end()) return false;
  it->second.token->request(CancelKind::kExplicit);
  return true;
}

void JobScheduler::wait_idle() {
  std::unique_lock<obs::ProfiledMutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return pending_.empty() && running_.empty(); });
}

void JobScheduler::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!dispatcher_.joinable()) return;  // already stopped
  std::vector<std::unique_ptr<Pending>> dropped;
  {
    std::lock_guard<obs::ProfiledMutex> lock(mu_);
    stopping_ = true;
    dropped.swap(pending_);
    stats_.cancelled += dropped.size();
    for (auto& [id, r] : running_) r.token->request(CancelKind::kExplicit);
  }
  cv_dispatch_.notify_all();
  cv_idle_.notify_all();
  for (auto& job : dropped) {
    JobResult res;
    res.id = job->id;
    res.name = job->spec.name;
    res.status = JobStatus::kCancelled;
    res.error = "service shutting down";
    job->promise.set_value(std::move(res));
  }
  dispatcher_.join();
}

ServiceStats JobScheduler::stats() const {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  ServiceStats out = stats_;
  out.job_wall = obs::LatencySummary::from(job_wall_ns_.snapshot());
  return out;
}

std::uint64_t JobScheduler::reserved_bytes() const {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  return reserved_bytes_;
}

std::size_t JobScheduler::pending_jobs() const {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  return pending_.size();
}

std::size_t JobScheduler::running_jobs() const {
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  return running_.size();
}

std::string JobScheduler::cpu_json() const {
  const std::uint64_t now = obs::now_ns();
  std::ostringstream os;
  auto escape = [&os](const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') {
        os << '\\' << c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        os << ' ';
      } else {
        os << c;
      }
    }
  };
  bool first = true;
  auto emit = [&](JobId id, const std::string& name, const char* status,
                  double wall_seconds, const obs::JobUsageSnapshot& u) {
    // The wall split uses the critical-path (root) lane: helper-thread
    // charges overlap the body thread's wall, so only the root lane sums to
    // wall_seconds. total_cpu_seconds prices the job's full CPU cost across
    // every thread that worked for it.
    const double cpu = static_cast<double>(u.root_cpu_ns) / 1e9;
    const double io = static_cast<double>(u.root_io_wait_ns) / 1e9;
    const double lock = static_cast<double>(u.root_lock_wait_ns) / 1e9;
    // Run-queue wait partially overlaps the io/lock wall windows (each
    // blocking wait ends with a wakeup→scheduled delay that schedstat also
    // counts), so it is capped at the otherwise-unattributed residual: it
    // explains the gap, never inflates the sum past wall.
    const double sched =
        std::min(static_cast<double>(u.root_sched_wait_ns) / 1e9,
                 std::max(0.0, wall_seconds - cpu - io - lock));
    // "other" is the wall the attribution cannot see (scheduler overheads,
    // untimed waits); decode is a subset of cpu and deliberately excluded
    // from the residual.
    const double other =
        std::max(0.0, wall_seconds - cpu - io - lock - sched);
    if (!first) os << ", ";
    first = false;
    os << "{\"id\": " << id << ", \"name\": \"";
    escape(name);
    os << "\", \"status\": \"" << status
       << "\", \"wall_seconds\": " << wall_seconds
       << ", \"cpu_seconds\": " << cpu << ", \"io_wait_seconds\": " << io
       << ", \"lock_wait_seconds\": " << lock
       << ", \"sched_wait_seconds\": " << sched
       << ", \"total_cpu_seconds\": " << static_cast<double>(u.cpu_ns) / 1e9
       << ", \"decode_seconds\": " << static_cast<double>(u.decode_ns) / 1e9
       << ", \"queued_seconds\": " << static_cast<double>(u.queued_ns) / 1e9
       << ", \"other_seconds\": " << other << "}";
  };
  os << "{\"jobs\": [";
  {
    std::lock_guard<obs::ProfiledMutex> lock(mu_);
    std::vector<JobId> running_ids;
    running_ids.reserve(running_.size());
    for (const auto& [id, r] : running_) running_ids.push_back(id);
    std::sort(running_ids.begin(), running_ids.end());
    for (JobId id : running_ids) {
      const Running& r = running_.at(id);
      obs::JobUsageSnapshot u;
      if (r.usage) u = obs::snapshot_usage(*r.usage);
      const double wall =
          static_cast<double>(now - std::min(now, r.start_ns)) * 1e-9;
      emit(id, r.name, "running", wall, u);
    }
    for (auto it = recent_usage_.rbegin(); it != recent_usage_.rend(); ++it) {
      emit(it->id, it->name, to_string(it->status), it->wall_seconds,
           it->usage);
    }
  }
  os << "]}\n";
  return os.str();
}

std::vector<JobView> JobScheduler::snapshot_jobs() const {
  const std::uint64_t now = obs::now_ns();
  std::vector<JobView> out;
  std::lock_guard<obs::ProfiledMutex> lock(mu_);
  out.reserve(pending_.size() + running_.size());
  for (const auto& job : pending_) {
    JobView v;
    v.id = job->id;
    v.name = job->spec.name;
    v.status = JobStatus::kQueued;
    v.algo = to_string(job->spec.algo);
    v.priority = job->spec.priority;
    v.estimate_bytes = job->estimate;
    v.wall_seconds =
        static_cast<double>(now - std::min(now, job->submit_ns)) * 1e-9;
    out.push_back(std::move(v));
  }
  for (const auto& [id, r] : running_) {
    JobView v;
    v.id = id;
    v.name = r.name;
    v.status = JobStatus::kRunning;
    v.algo = to_string(r.algo);
    v.priority = r.priority;
    v.estimate_bytes = r.estimate;
    v.wall_seconds =
        static_cast<double>(now - std::min(now, r.start_ns)) * 1e-9;
    if (r.beat) {
      v.iteration = r.beat->iteration.load(std::memory_order_relaxed);
      v.edges = r.beat->edges.load(std::memory_order_relaxed);
      v.io_bytes = r.beat->io_bytes.load(std::memory_order_relaxed);
      const std::uint64_t last =
          r.beat->last_tick_ns.load(std::memory_order_relaxed);
      if (last > 0) {
        v.last_tick_age_seconds =
            static_cast<double>(now - std::min(now, last)) * 1e-9;
      }
    }
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(),
            [](const JobView& a, const JobView& b) { return a.id < b.id; });
  return out;
}

}  // namespace husg
