// jobs.json: the batch input of `husg_cli serve`. Parsed with a minimal
// recursive-descent JSON reader (the repo takes no third-party
// dependencies) that accepts the standard grammar minus exotica we do not
// emit: no \u escapes beyond Latin-1, numbers via strtod.
//
// Schema — either a top-level array of job objects or {"jobs": [...]}:
//
//   [
//     {"name": "ranks",  "algo": "pagerank", "iterations": 5,
//      "priority": 1},
//     {"name": "reach",  "algo": "bfs", "source": 0,
//      "timeout_ms": 2000, "mode": "hybrid"}
//   ]
//
// "algo" is required; everything else defaults as in JobSpec ("name"
// defaults to "job<N>"). Unknown keys are a DataError — a typoed field
// silently meaning "default" is how jobs run with the wrong parameters.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "service/job.hpp"

namespace husg {

/// Parses jobs.json text. Throws DataError with a position-annotated message
/// on malformed JSON or schema violations.
std::vector<JobSpec> parse_jobs_json(const std::string& text);

/// Reads and parses a jobs.json file.
std::vector<JobSpec> load_jobs_file(const std::filesystem::path& path);

}  // namespace husg
