#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace husg::gen {

namespace {

Edge rmat_edge(unsigned scale, const RmatParams& p, SplitMix64& rng) {
  VertexId src = 0, dst = 0;
  for (unsigned level = 0; level < scale; ++level) {
    double a = p.a, b = p.b, c = p.c;
    if (p.noise > 0) {
      // Perturb the quadrant probabilities each level (standard R-MAT
      // "smoothing" to avoid exact self-similarity artifacts).
      a *= 1.0 + p.noise * (rng.next_double() - 0.5);
      b *= 1.0 + p.noise * (rng.next_double() - 0.5);
      c *= 1.0 + p.noise * (rng.next_double() - 0.5);
    }
    double r = rng.next_double();
    unsigned bit_src = 0, bit_dst = 0;
    if (r < a) {
      // top-left
    } else if (r < a + b) {
      bit_dst = 1;
    } else if (r < a + b + c) {
      bit_src = 1;
    } else {
      bit_src = 1;
      bit_dst = 1;
    }
    src = (src << 1) | bit_src;
    dst = (dst << 1) | bit_dst;
  }
  return Edge{src, dst};
}

}  // namespace

EdgeList rmat(unsigned scale, double avg_degree, std::uint64_t seed,
              const RmatParams& params) {
  HUSG_CHECK(scale > 0 && scale < 31, "rmat scale out of range: " << scale);
  VertexId n = VertexId{1} << scale;
  EdgeId m = static_cast<EdgeId>(avg_degree * static_cast<double>(n));
  SplitMix64 rng(seed * 0x9e3779b9u + 1);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (EdgeId i = 0; i < m; ++i) edges.push_back(rmat_edge(scale, params, rng));
  return EdgeList(n, std::move(edges));
}

EdgeList erdos_renyi(VertexId n, EdgeId m, std::uint64_t seed) {
  HUSG_CHECK(n > 0, "erdos_renyi needs at least one vertex");
  SplitMix64 rng(seed * 0x2545F491u + 7);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (EdgeId i = 0; i < m; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(rng.next_below(n)),
                         static_cast<VertexId>(rng.next_below(n))});
  }
  return EdgeList(n, std::move(edges));
}

EdgeList chain(VertexId n) {
  HUSG_CHECK(n > 0, "chain needs at least one vertex");
  std::vector<Edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (VertexId v = 0; v + 1 < n; ++v) edges.push_back(Edge{v, v + 1});
  return EdgeList(n, std::move(edges));
}

EdgeList star(VertexId n) {
  HUSG_CHECK(n > 0, "star needs at least one vertex");
  std::vector<Edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (VertexId v = 1; v < n; ++v) edges.push_back(Edge{0, v});
  return EdgeList(n, std::move(edges));
}

EdgeList grid2d(VertexId rows, VertexId cols) {
  HUSG_CHECK(rows > 0 && cols > 0, "grid2d needs positive dimensions");
  VertexId n = rows * cols;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      VertexId v = r * cols + c;
      if (c + 1 < cols) edges.push_back(Edge{v, v + 1});
      if (r + 1 < rows) edges.push_back(Edge{v, v + cols});
    }
  }
  return EdgeList(n, std::move(edges)).symmetrized();
}

EdgeList webgraph(unsigned scale, double avg_degree, std::uint64_t seed) {
  RmatParams web;
  web.a = 0.62;
  web.b = 0.18;
  web.c = 0.14;
  web.noise = 0.02;
  EdgeList base = rmat(scale, avg_degree - 1.0, seed, web);
  VertexId n = base.num_vertices();
  // Reserve a strand of vertices that receive no R-MAT edges (endpoints are
  // remapped off them); they are reachable only through the path appended
  // below. Hyperlink graphs have exactly this long-tail structure, which is
  // why the paper's web graphs need far more BFS/WCC iterations than its
  // social graphs. Strand vertices are spread across the whole id space
  // (crawl tails are not clustered), so interval/chunk-granular skipping
  // cannot isolate them.
  VertexId strand = std::min<VertexId>(96, n / 8);
  VertexId stride = strand > 0 ? n / strand : n;
  auto is_strand = [&](VertexId v) {
    return strand > 0 && stride >= 2 && v % stride == stride - 1 &&
           v / stride < strand;
  };
  auto remap = [&](VertexId v) { return is_strand(v) ? v - 1 : v; };
  std::vector<Edge> edges(base.edges().begin(), base.edges().end());
  for (Edge& e : edges) {
    e.src = remap(e.src);
    e.dst = remap(e.dst);
  }
  // Stitch a chain through a permutation of the non-strand vertices so the
  // graph has one weakly connected backbone, like hyperlink graphs.
  std::vector<VertexId> perm;
  perm.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (!is_strand(v)) perm.push_back(v);
  }
  SplitMix64 rng(seed ^ 0xC0FFEEULL);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  edges.reserve(edges.size() + n);
  for (std::size_t i = 0; i + 1 < perm.size(); ++i) {
    edges.push_back(Edge{perm[i], perm[i + 1]});
  }
  // The long-tail strand hangs off the end of the backbone, hopping across
  // the id space.
  VertexId prev = perm.empty() ? 0 : perm.back();
  for (VertexId k = 0; k < strand && stride >= 2; ++k) {
    VertexId s = k * stride + stride - 1;
    edges.push_back(Edge{prev, s});
    prev = s;
  }
  return EdgeList(n, std::move(edges));
}

EdgeList with_random_weights(const EdgeList& g, std::uint64_t seed, Weight lo,
                             Weight hi) {
  SplitMix64 rng(seed ^ 0xABCDEF12ULL);
  std::vector<Weight> w(g.num_edges());
  for (auto& x : w) x = rng.next_float(lo, hi);
  std::vector<Edge> edges(g.edges().begin(), g.edges().end());
  return EdgeList(g.num_vertices(), std::move(edges), std::move(w));
}

}  // namespace husg::gen
