// Deterministic synthetic graph generators.
//
// The paper evaluates on public real-world graphs (Table 2); this
// reproduction substitutes deterministic R-MAT power-law graphs for the
// social networks and lower-noise R-MAT with chain stitching for the larger-
// diameter web graphs (see DESIGN.md, "Substitutions").
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace husg::gen {

struct RmatParams {
  /// R-MAT quadrant probabilities; a+b+c+d must be ~1. Defaults are the
  /// canonical Graph500 skew, which yields power-law degrees like the
  /// paper's social graphs.
  double a = 0.57, b = 0.19, c = 0.19;
  /// Per-level probability perturbation; lower noise => more regular
  /// structure and larger effective diameter (web-graph-like).
  double noise = 0.10;
};

/// R-MAT graph with 2^scale vertices and avg_degree * 2^scale edges.
EdgeList rmat(unsigned scale, double avg_degree, std::uint64_t seed,
              const RmatParams& params = {});

/// Erdős–Rényi G(n, m): m directed edges chosen uniformly.
EdgeList erdos_renyi(VertexId n, EdgeId m, std::uint64_t seed);

/// Directed path 0 -> 1 -> ... -> n-1 (diameter n-1; worst case for BFS
/// iteration count).
EdgeList chain(VertexId n);

/// Star: hub 0 -> {1..n-1}.
EdgeList star(VertexId n);

/// 2-D grid (rows x cols) with edges to right and down neighbours, then
/// symmetrized; a road-network-like workload for SSSP.
EdgeList grid2d(VertexId rows, VertexId cols);

/// Web-graph stand-in: low-noise skewed R-MAT plus a Hamiltonian-ish chain
/// through a random permutation, which stretches the diameter the way
/// hyperlink graphs do relative to social graphs.
EdgeList webgraph(unsigned scale, double avg_degree, std::uint64_t seed);

/// Assigns deterministic uniform weights in [lo, hi) to an unweighted list.
EdgeList with_random_weights(const EdgeList& g, std::uint64_t seed,
                             Weight lo = 0.01f, Weight hi = 1.0f);

}  // namespace husg::gen
