// Exact in-memory reference algorithms. These are the oracles every engine
// (HUS ROP/COP/Hybrid and all three baselines) is tested against, plus the
// per-iteration active-edge profiler behind Figure 1.
#pragma once

#include <limits>
#include <vector>

#include "graph/edge_list.hpp"

namespace husg::ref {

inline constexpr std::uint32_t kUnreachedLevel =
    std::numeric_limits<std::uint32_t>::max();
inline constexpr float kUnreachedDist = std::numeric_limits<float>::infinity();

/// BFS hop distance from `source` (kUnreachedLevel if unreachable).
std::vector<std::uint32_t> bfs_levels(const EdgeList& g, VertexId source);

/// Weakly connected component label per vertex: the minimum vertex id in the
/// component (matches label-propagation fixed point).
std::vector<VertexId> wcc_labels(const EdgeList& g);

/// Single-source shortest path distances (Dijkstra; weights must be >= 0,
/// unweighted edges count as 1).
std::vector<float> sssp_distances(const EdgeList& g, VertexId source);

/// Synchronous (Jacobi) PageRank, `iterations` full sweeps, damping 0.85.
/// Dangling mass is NOT redistributed (matches the engine's per-edge
/// formulation: pr(v) = 0.15 + 0.85 * sum(pr(u)/outdeg(u))).
std::vector<double> pagerank(const EdgeList& g, int iterations,
                             double damping = 0.85);

/// k-core membership on the (directed multigraph's) out-degree structure:
/// true if the vertex survives iterative peeling of vertices with remaining
/// degree < k. Call on a symmetrized graph for the standard undirected
/// k-core.
std::vector<bool> kcore_membership(const EdgeList& g, std::uint32_t k);

/// Per-iteration active-edge counts for the Figure 1 profile: an edge is
/// active when its source vertex changed value in the previous iteration.
struct ActivityProfile {
  std::vector<std::uint64_t> active_edges_per_iter;
  std::vector<std::uint64_t> active_vertices_per_iter;
  EdgeId total_edges = 0;
};

ActivityProfile bfs_activity(const EdgeList& g, VertexId source);
ActivityProfile wcc_activity(const EdgeList& g);
/// PageRank: all vertices active every iteration (footnote 1 of the paper).
ActivityProfile pagerank_activity(const EdgeList& g, int iterations);

}  // namespace husg::ref
