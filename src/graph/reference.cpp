#include "graph/reference.hpp"

#include <algorithm>
#include <queue>

namespace husg::ref {

namespace {

/// CSR over out-edges for traversal oracles.
struct Csr {
  std::vector<EdgeId> offsets;
  std::vector<VertexId> targets;
  std::vector<Weight> weights;

  explicit Csr(const EdgeList& g) {
    VertexId n = g.num_vertices();
    offsets.assign(static_cast<std::size_t>(n) + 1, 0);
    for (const Edge& e : g.edges()) ++offsets[e.src + 1];
    for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    targets.resize(g.num_edges());
    weights.resize(g.num_edges());
    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (EdgeId i = 0; i < g.num_edges(); ++i) {
      const Edge& e = g.edge(i);
      EdgeId at = cursor[e.src]++;
      targets[at] = e.dst;
      weights[at] = g.weight(i);
    }
  }
};

}  // namespace

std::vector<std::uint32_t> bfs_levels(const EdgeList& g, VertexId source) {
  HUSG_CHECK(source < g.num_vertices(), "bfs source out of range");
  Csr csr(g);
  std::vector<std::uint32_t> level(g.num_vertices(), kUnreachedLevel);
  std::queue<VertexId> q;
  level[source] = 0;
  q.push(source);
  while (!q.empty()) {
    VertexId u = q.front();
    q.pop();
    for (EdgeId i = csr.offsets[u]; i < csr.offsets[u + 1]; ++i) {
      VertexId v = csr.targets[i];
      if (level[v] == kUnreachedLevel) {
        level[v] = level[u] + 1;
        q.push(v);
      }
    }
  }
  return level;
}

std::vector<VertexId> wcc_labels(const EdgeList& g) {
  // Union-find over the undirected structure, then canonicalize each root to
  // the minimum id of its component so labels match label-propagation.
  VertexId n = g.num_vertices();
  std::vector<VertexId> parent(n);
  for (VertexId v = 0; v < n; ++v) parent[v] = v;
  auto find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const Edge& e : g.edges()) {
    VertexId a = find(e.src), b = find(e.dst);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = find(v);
  return label;
}

std::vector<float> sssp_distances(const EdgeList& g, VertexId source) {
  HUSG_CHECK(source < g.num_vertices(), "sssp source out of range");
  Csr csr(g);
  std::vector<float> dist(g.num_vertices(), kUnreachedDist);
  using Entry = std::pair<float, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[source] = 0;
  pq.emplace(0.0f, source);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (EdgeId i = csr.offsets[u]; i < csr.offsets[u + 1]; ++i) {
      VertexId v = csr.targets[i];
      float w = csr.weights[i];
      HUSG_CHECK(w >= 0, "sssp requires non-negative weights");
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        pq.emplace(dist[v], v);
      }
    }
  }
  return dist;
}

std::vector<double> pagerank(const EdgeList& g, int iterations,
                             double damping) {
  VertexId n = g.num_vertices();
  std::vector<VertexId> outdeg = g.out_degrees();
  std::vector<double> rank(n, 1.0);
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (const Edge& e : g.edges()) {
      next[e.dst] += rank[e.src] / outdeg[e.src];
    }
    for (VertexId v = 0; v < n; ++v) {
      next[v] = (1.0 - damping) + damping * next[v];
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<bool> kcore_membership(const EdgeList& g, std::uint32_t k) {
  Csr csr(g);
  VertexId n = g.num_vertices();
  std::vector<std::uint32_t> degree = g.out_degrees();
  std::vector<bool> in_core(n, true);
  std::vector<VertexId> stack;
  for (VertexId v = 0; v < n; ++v) {
    if (degree[v] < k) {
      in_core[v] = false;
      stack.push_back(v);
    }
  }
  while (!stack.empty()) {
    VertexId u = stack.back();
    stack.pop_back();
    for (EdgeId i = csr.offsets[u]; i < csr.offsets[u + 1]; ++i) {
      VertexId w = csr.targets[i];
      if (!in_core[w]) continue;
      if (degree[w] > 0) --degree[w];
      if (degree[w] < k) {
        in_core[w] = false;
        stack.push_back(w);
      }
    }
  }
  return in_core;
}

namespace {

/// Generic synchronous frontier simulation counting active edges.
template <class Init, class Relax>
ActivityProfile simulate(const EdgeList& g, Init&& init, Relax&& relax) {
  Csr csr(g);
  VertexId n = g.num_vertices();
  std::vector<char> active(n, 0), next_active(n, 0);
  init(active);
  ActivityProfile prof;
  prof.total_edges = g.num_edges();
  bool any = std::any_of(active.begin(), active.end(),
                         [](char c) { return c != 0; });
  while (any) {
    std::uint64_t act_edges = 0, act_verts = 0;
    for (VertexId u = 0; u < n; ++u) {
      if (!active[u]) continue;
      ++act_verts;
      act_edges += csr.offsets[u + 1] - csr.offsets[u];
    }
    prof.active_edges_per_iter.push_back(act_edges);
    prof.active_vertices_per_iter.push_back(act_verts);
    std::fill(next_active.begin(), next_active.end(), 0);
    for (VertexId u = 0; u < n; ++u) {
      if (!active[u]) continue;
      for (EdgeId i = csr.offsets[u]; i < csr.offsets[u + 1]; ++i) {
        if (relax(u, csr.targets[i])) next_active[csr.targets[i]] = 1;
      }
    }
    active.swap(next_active);
    any = std::any_of(active.begin(), active.end(),
                      [](char c) { return c != 0; });
  }
  return prof;
}

}  // namespace

ActivityProfile bfs_activity(const EdgeList& g, VertexId source) {
  std::vector<std::uint32_t> level(g.num_vertices(), kUnreachedLevel);
  level[source] = 0;
  return simulate(
      g, [&](std::vector<char>& a) { a[source] = 1; },
      [&](VertexId u, VertexId v) {
        if (level[v] == kUnreachedLevel) {
          level[v] = level[u] + 1;
          return true;
        }
        return false;
      });
}

ActivityProfile wcc_activity(const EdgeList& g) {
  EdgeList sym = g.symmetrized();
  std::vector<VertexId> label(sym.num_vertices());
  for (VertexId v = 0; v < sym.num_vertices(); ++v) label[v] = v;
  return simulate(
      sym, [&](std::vector<char>& a) { std::fill(a.begin(), a.end(), 1); },
      [&](VertexId u, VertexId v) {
        if (label[u] < label[v]) {
          label[v] = label[u];
          return true;
        }
        return false;
      });
}

ActivityProfile pagerank_activity(const EdgeList& g, int iterations) {
  ActivityProfile prof;
  prof.total_edges = g.num_edges();
  std::uint64_t verts = g.num_vertices();
  for (int i = 0; i < iterations; ++i) {
    prof.active_edges_per_iter.push_back(g.num_edges());
    prof.active_vertices_per_iter.push_back(verts);
  }
  return prof;
}

}  // namespace husg::ref
