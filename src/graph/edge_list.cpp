#include "graph/edge_list.hpp"

#include <algorithm>
#include <numeric>

namespace husg {

void EdgeList::validate() const {
  for (const Edge& e : edges_) {
    HUSG_CHECK(e.src < num_vertices_ && e.dst < num_vertices_,
               "edge (" << e.src << "," << e.dst << ") out of range for |V|="
                        << num_vertices_);
  }
}

void EdgeList::add_edge(VertexId src, VertexId dst, Weight w) {
  HUSG_CHECK(src < num_vertices_ && dst < num_vertices_,
             "edge (" << src << "," << dst << ") out of range for |V|="
                      << num_vertices_);
  edges_.push_back(Edge{src, dst});
  if (weighted()) {
    weights_.push_back(w);
  } else if (w != Weight{1}) {
    // First non-unit weight upgrades the list to weighted.
    weights_.assign(edges_.size() - 1, Weight{1});
    weights_.push_back(w);
  }
}

std::vector<VertexId> EdgeList::out_degrees() const {
  std::vector<VertexId> deg(num_vertices_, 0);
  for (const Edge& e : edges_) ++deg[e.src];
  return deg;
}

std::vector<VertexId> EdgeList::in_degrees() const {
  std::vector<VertexId> deg(num_vertices_, 0);
  for (const Edge& e : edges_) ++deg[e.dst];
  return deg;
}

EdgeList EdgeList::transposed() const {
  std::vector<Edge> rev(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    rev[i] = Edge{edges_[i].dst, edges_[i].src};
  }
  if (weighted()) return EdgeList(num_vertices_, std::move(rev), weights_);
  return EdgeList(num_vertices_, std::move(rev));
}

EdgeList EdgeList::symmetrized() const {
  std::vector<Edge> out;
  std::vector<Weight> w;
  out.reserve(edges_.size() * 2);
  if (weighted()) w.reserve(edges_.size() * 2);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    out.push_back(e);
    if (weighted()) w.push_back(weights_[i]);
    if (e.src != e.dst) {
      out.push_back(Edge{e.dst, e.src});
      if (weighted()) w.push_back(weights_[i]);
    }
  }
  if (weighted()) return EdgeList(num_vertices_, std::move(out), std::move(w));
  return EdgeList(num_vertices_, std::move(out));
}

void EdgeList::sort_and_maybe_dedupe(bool dedupe) {
  std::vector<std::size_t> order(edges_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (edges_[a].src != edges_[b].src) return edges_[a].src < edges_[b].src;
    return edges_[a].dst < edges_[b].dst;
  });
  std::vector<Edge> sorted;
  std::vector<Weight> sorted_w;
  sorted.reserve(edges_.size());
  if (weighted()) sorted_w.reserve(edges_.size());
  for (std::size_t idx : order) {
    if (dedupe && !sorted.empty() && sorted.back() == edges_[idx]) continue;
    sorted.push_back(edges_[idx]);
    if (weighted()) sorted_w.push_back(weights_[idx]);
  }
  edges_ = std::move(sorted);
  weights_ = std::move(sorted_w);
}

}  // namespace husg
