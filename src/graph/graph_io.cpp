#include "graph/graph_io.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "io/file.hpp"

namespace husg {

namespace {
constexpr std::uint64_t kBinMagic = 0x48555347454C3031ULL;  // "HUSGEL01"
}

EdgeList load_text_edges(const std::filesystem::path& path,
                         VertexId min_vertices) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open text edge file '" + path.string() + "'");
  std::vector<Edge> edges;
  std::vector<Weight> weights;
  bool weighted = false;
  VertexId max_id = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t src = 0, dst = 0;
    double w = 1.0;
    if (!(ls >> src >> dst)) {
      throw DataError("malformed edge at " + path.string() + ":" +
                      std::to_string(lineno) + ": '" + line + "'");
    }
    HUSG_CHECK(src < kInvalidVertex && dst < kInvalidVertex,
               "vertex id too large at line " << lineno);
    if (ls >> w) {
      if (!weighted) {
        weighted = true;
        weights.assign(edges.size(), Weight{1});
      }
    }
    edges.push_back(
        Edge{static_cast<VertexId>(src), static_cast<VertexId>(dst)});
    if (weighted) weights.push_back(static_cast<Weight>(w));
    max_id = std::max({max_id, static_cast<VertexId>(src),
                       static_cast<VertexId>(dst)});
  }
  VertexId n = edges.empty() ? min_vertices
                             : std::max<VertexId>(min_vertices, max_id + 1);
  if (n == 0) n = 1;
  if (weighted) return EdgeList(n, std::move(edges), std::move(weights));
  return EdgeList(n, std::move(edges));
}

void save_text_edges(const EdgeList& g, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create text edge file '" + path.string() + "'");
  out << "# husgraph edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    const Edge& e = g.edge(i);
    out << e.src << ' ' << e.dst;
    if (g.weighted()) out << ' ' << g.weight(i);
    out << '\n';
  }
}

void save_binary_edges(const EdgeList& g, const std::filesystem::path& path) {
  File f(path, File::Mode::kWrite);
  std::uint64_t header[4] = {kBinMagic, g.num_vertices(), g.num_edges(),
                             g.weighted() ? 1ULL : 0ULL};
  std::uint64_t off = 0;
  f.pwrite_exact(header, sizeof(header), off);
  off += sizeof(header);
  if (g.num_edges() > 0) {
    f.pwrite_exact(g.edges().data(), g.num_edges() * sizeof(Edge), off);
    off += g.num_edges() * sizeof(Edge);
    if (g.weighted()) {
      f.pwrite_exact(g.weights().data(), g.num_edges() * sizeof(Weight), off);
    }
  }
}

EdgeList load_binary_edges(const std::filesystem::path& path) {
  File f(path, File::Mode::kRead);
  std::uint64_t header[4] = {0, 0, 0, 0};
  HUSG_CHECK(f.size() >= sizeof(header),
             "binary edge file too small: " << path.string());
  f.pread_exact(header, sizeof(header), 0);
  HUSG_CHECK(header[0] == kBinMagic,
             "bad magic in binary edge file: " << path.string());
  VertexId n = static_cast<VertexId>(header[1]);
  EdgeId m = header[2];
  bool weighted = header[3] != 0;
  std::uint64_t expected = sizeof(header) + m * sizeof(Edge) +
                           (weighted ? m * sizeof(Weight) : 0);
  HUSG_CHECK(f.size() == expected, "truncated binary edge file: "
                                       << path.string() << " (" << f.size()
                                       << " vs expected " << expected << ")");
  std::vector<Edge> edges(m);
  std::uint64_t off = sizeof(header);
  if (m > 0) {
    f.pread_exact(edges.data(), m * sizeof(Edge), off);
    off += m * sizeof(Edge);
  }
  if (weighted) {
    std::vector<Weight> weights(m);
    if (m > 0) f.pread_exact(weights.data(), m * sizeof(Weight), off);
    return EdgeList(n, std::move(edges), std::move(weights));
  }
  return EdgeList(n, std::move(edges));
}

}  // namespace husg
