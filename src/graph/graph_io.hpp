// Text and binary edge-list serialization, for interoperability with the
// SNAP-style files the paper's datasets ship as.
#pragma once

#include <filesystem>

#include "graph/edge_list.hpp"

namespace husg {

/// Loads a whitespace-separated "src dst [weight]" file. Lines starting with
/// '#' or '%' are comments. num_vertices is max id + 1 unless a larger hint
/// is given.
EdgeList load_text_edges(const std::filesystem::path& path,
                         VertexId min_vertices = 0);

/// Writes "src dst [weight]\n" lines.
void save_text_edges(const EdgeList& g, const std::filesystem::path& path);

/// Compact binary round-trip format (magic + counts + raw arrays).
void save_binary_edges(const EdgeList& g, const std::filesystem::path& path);
EdgeList load_binary_edges(const std::filesystem::path& path);

}  // namespace husg
