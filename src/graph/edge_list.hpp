// In-memory edge list: the ingestion format every on-disk store is built
// from, and the substrate for the exact reference algorithms used in tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.hpp"

namespace husg {

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A directed multigraph with optional per-edge weights.
class EdgeList {
 public:
  EdgeList() = default;
  EdgeList(VertexId num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {
    validate();
  }
  EdgeList(VertexId num_vertices, std::vector<Edge> edges,
           std::vector<Weight> weights)
      : num_vertices_(num_vertices),
        edges_(std::move(edges)),
        weights_(std::move(weights)) {
    HUSG_CHECK(weights_.size() == edges_.size(),
               "weights/edges size mismatch: " << weights_.size() << " vs "
                                               << edges_.size());
    validate();
  }

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return edges_.size(); }
  bool weighted() const { return !weights_.empty(); }

  std::span<const Edge> edges() const { return edges_; }
  std::span<const Weight> weights() const { return weights_; }

  const Edge& edge(EdgeId i) const { return edges_[i]; }
  Weight weight(EdgeId i) const { return weighted() ? weights_[i] : Weight{1}; }

  /// Appends an edge (and weight if this list is weighted).
  void add_edge(VertexId src, VertexId dst, Weight w = Weight{1});

  /// Out-degree of every vertex.
  std::vector<VertexId> out_degrees() const;
  /// In-degree of every vertex.
  std::vector<VertexId> in_degrees() const;

  /// Returns a copy with src/dst swapped on every edge.
  EdgeList transposed() const;

  /// Returns an undirected version: every edge doubled (u,v) + (v,u),
  /// self-loops kept single. Mirrors the paper's §3.1 convention.
  EdgeList symmetrized() const;

  /// Sorts edges by (src, dst) keeping weights aligned; removes exact
  /// duplicate (src,dst) pairs if dedupe is true (first weight wins).
  void sort_and_maybe_dedupe(bool dedupe);

 private:
  void validate() const;

  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
  std::vector<Weight> weights_;
};

}  // namespace husg
