#include "io/io_stats.hpp"

#include <sstream>

#include "util/format.hpp"

namespace husg {

IoSnapshot IoSnapshot::operator-(const IoSnapshot& rhs) const {
  IoSnapshot d;
  d.seq_read_bytes = seq_read_bytes - rhs.seq_read_bytes;
  d.seq_read_ops = seq_read_ops - rhs.seq_read_ops;
  d.rand_read_bytes = rand_read_bytes - rhs.rand_read_bytes;
  d.rand_read_ops = rand_read_ops - rhs.rand_read_ops;
  d.write_bytes = write_bytes - rhs.write_bytes;
  d.write_ops = write_ops - rhs.write_ops;
  return d;
}

IoSnapshot& IoSnapshot::operator+=(const IoSnapshot& rhs) {
  seq_read_bytes += rhs.seq_read_bytes;
  seq_read_ops += rhs.seq_read_ops;
  rand_read_bytes += rhs.rand_read_bytes;
  rand_read_ops += rhs.rand_read_ops;
  write_bytes += rhs.write_bytes;
  write_ops += rhs.write_ops;
  return *this;
}

std::string IoSnapshot::to_string() const {
  std::ostringstream os;
  os << "seq_read=" << human_bytes(seq_read_bytes) << "/" << seq_read_ops
     << "ops rand_read=" << human_bytes(rand_read_bytes) << "/" << rand_read_ops
     << "ops write=" << human_bytes(write_bytes) << "/" << write_ops << "ops";
  return os.str();
}

}  // namespace husg
