#include "io/device.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace husg {

double DeviceProfile::t_random(double mean_request_bytes) const {
  if (rand_read_bw <= 0) return 0;
  if (mean_request_bytes <= 0) mean_request_bytes = 4096;
  double per_request = seek_seconds + mean_request_bytes / rand_read_bw;
  return mean_request_bytes / per_request;
}

double DeviceProfile::modeled_seconds(const IoSnapshot& io) const {
  double t = 0;
  if (seq_read_bw > 0) {
    t += static_cast<double>(io.seq_read_bytes) / seq_read_bw;
  }
  if (rand_read_bw > 0) {
    t += static_cast<double>(io.rand_read_bytes) / rand_read_bw;
  }
  t += static_cast<double>(io.rand_read_ops) * seek_seconds;
  if (write_bw > 0) {
    t += static_cast<double>(io.write_bytes) / write_bw;
  }
  return t;
}

void DeviceProfile::publish(obs::Registry& reg) const {
  reg.gauge("husg_device_seq_read_bw_bytes_per_second",
            "Cost-model sequential read bandwidth")
      .set(seq_read_bw);
  reg.gauge("husg_device_rand_read_bw_bytes_per_second",
            "Cost-model random read transfer bandwidth")
      .set(rand_read_bw);
  reg.gauge("husg_device_write_bw_bytes_per_second",
            "Cost-model write bandwidth")
      .set(write_bw);
  reg.gauge("husg_device_seek_seconds",
            "Cost-model per-random-op positioning latency")
      .set(seek_seconds);
  reg.gauge("husg_device_queue_lanes",
            "Concurrent request lanes the cost model assumes the device has")
      .set(static_cast<double>(queue_lanes));
}

DeviceProfile DeviceProfile::hdd7200() {
  DeviceProfile d;
  d.name = "hdd7200";
  d.seq_read_bw = 160e6;   // ~160 MB/s outer-track sequential
  d.rand_read_bw = 160e6;  // transfer at media rate once positioned
  d.write_bw = 140e6;
  d.seek_seconds = 8e-3;   // avg seek + rotational latency
  d.queue_lanes = 1;       // one actuator: depth hides nothing
  return d;
}

DeviceProfile DeviceProfile::sata_ssd() {
  DeviceProfile d;
  d.name = "sata_ssd";
  d.seq_read_bw = 260e6;   // SATA2-era SSD (paper's 128 GB SATA2 drive)
  d.rand_read_bw = 200e6;
  d.write_bw = 200e6;
  d.seek_seconds = 9e-5;   // flash access latency
  d.queue_lanes = 8;       // SATA NCQ-era internal parallelism
  return d;
}

DeviceProfile DeviceProfile::nvme_ssd() {
  DeviceProfile d;
  d.name = "nvme_ssd";
  d.seq_read_bw = 3200e6;
  d.rand_read_bw = 2400e6;
  d.write_bw = 2000e6;
  d.seek_seconds = 1.5e-5;
  d.queue_lanes = 32;      // NVMe: deep per-queue parallelism
  return d;
}

DeviceProfile DeviceProfile::with_seek_scale(double factor) const {
  DeviceProfile d = *this;
  d.seek_seconds *= factor;
  d.name += "-seekx" + std::to_string(factor);
  return d;
}

DeviceProfile DeviceProfile::for_backend(IoBackendKind backend,
                                         std::uint32_t queue_depth) const {
  DeviceProfile d = *this;
  if (backend != IoBackendKind::kUring || queue_depth <= 1) return d;
  const std::uint32_t lanes =
      std::min(queue_depth, std::max<std::uint32_t>(queue_lanes, 1));
  if (lanes <= 1) return d;
  d.seek_seconds /= static_cast<double>(lanes);
  d.name += "+uring-qd" + std::to_string(queue_depth);
  return d;
}

DeviceProfile DeviceProfile::null_device() {
  DeviceProfile d;
  d.name = "null";
  d.seq_read_bw = 0;
  d.rand_read_bw = 0;
  d.write_bw = 0;
  d.seek_seconds = 0;
  return d;
}

}  // namespace husg
