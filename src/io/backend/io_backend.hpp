// Pluggable I/O backend subsystem (DESIGN.md §12).
//
// Every read the engine issues — ROP point loads, COP block streams, index
// and value-store traffic — goes through an IoBackend. Two implementations:
//
//  * SyncBackend  — the classic pread path. Always available; a "batch" is a
//    sequential loop, so counters, byte totals and read order are identical
//    to the historical engine (the perf_smoke baseline is pinned to it).
//  * UringBackend — io_uring submission/completion rings driven with raw
//    syscalls (no liburing dependency). A batch becomes one ring submission;
//    completions are reaped as callers wait. Runtime-detected: when the
//    kernel or a seccomp filter denies io_uring_setup, construction fails
//    and `auto` resolution degrades to SyncBackend.
//
// O_DIRECT support is orthogonal to the backend: a file opened with
// File::direct routes its reads through pooled aligned bounce buffers
// (backend/aligned.hpp) so unaligned offsets/lengths still read exact bytes.
//
// Thread safety: all methods are safe to call from pool workers. The sync
// backend is stateless; the uring backend serializes ring manipulation
// behind one mutex (submission batching, not lock-free rings, is where the
// win is for this workload).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace husg {

enum class IoBackendKind : std::uint8_t { kSync = 0, kUring = 1, kAuto = 2 };

const char* to_string(IoBackendKind kind);

/// Parses "sync" / "uring" / "auto"; returns false on anything else.
bool parse_io_backend(const std::string& text, IoBackendKind* out);

/// Queue depths outside [1, kMaxQueueDepth] are rejected up front (CLI exit
/// code 3), not clamped.
inline constexpr std::uint32_t kMaxQueueDepth = 4096;
inline constexpr std::uint32_t kDefaultQueueDepth = 64;

struct IoBackendConfig {
  IoBackendKind kind = IoBackendKind::kSync;
  std::uint32_t queue_depth = kDefaultQueueDepth;
  /// Open store data files with O_DIRECT (falls back to buffered I/O with a
  /// warning when the filesystem refuses, e.g. tmpfs).
  bool direct = false;
};

/// One read request of a batch. `buf` must stay valid until the batch's
/// pending handle completes.
struct IoReadOp {
  void* buf = nullptr;
  std::size_t len = 0;
  std::uint64_t offset = 0;
};

/// Handle to an in-flight batch. wait() blocks until every op of the batch
/// completed, then throws IoError if any op failed. The destructor drains
/// the batch without throwing, so no completion is ever leaked in the ring
/// (cancellation unwinds through here).
class IoPending {
 public:
  virtual ~IoPending() = default;
  virtual void wait() = 0;
};

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual IoBackendKind kind() const = 0;
  virtual const char* name() const = 0;
  /// Submission-queue depth the backend was configured with (1 for sync).
  virtual std::uint32_t queue_depth() const = 0;

  /// Blocking exact read. `align` > 0 means the fd was opened O_DIRECT with
  /// that logical block size: unaligned requests bounce through the pooled
  /// aligned buffers.
  void read(int fd, void* buf, std::size_t len, std::uint64_t offset,
            std::uint32_t align = 0) const;

  /// Submits `count` reads as one batch and returns the pending handle.
  /// The destinations must outlive the handle; ops complete in any order.
  std::unique_ptr<IoPending> start_batch(int fd, const IoReadOp* ops,
                                         std::size_t count,
                                         std::uint32_t align = 0) const;

  /// Blocking batch: one submission, wait for all completions.
  void read_batch(int fd, const IoReadOp* ops, std::size_t count,
                  std::uint32_t align = 0) const;

 protected:
  /// Alignment-resolved op handed to implementations: `op` is safe to issue
  /// as-is; only the first `required` bytes must exist (`required` ≤ op.len —
  /// an O_DIRECT bounce rounds the length up past EOF).
  struct RawOp {
    IoReadOp op;
    std::size_t required = 0;
  };

  /// Backend-specific exact read of one already-alignment-safe range.
  virtual void do_read(int fd, void* buf, std::size_t len,
                       std::uint64_t offset) const = 0;
  /// Backend-specific batch of alignment-resolved ops (ownership passes to
  /// the implementation; destinations outlive the returned handle).
  virtual std::unique_ptr<IoPending> do_start_batch(
      int fd, std::vector<RawOp> ops) const = 0;
};

/// True when this kernel accepts io_uring_setup (probed once, cached).
/// A denial (ENOSYS, seccomp EPERM) makes every `auto` resolution pick sync.
bool uring_available();

/// Instantiates a backend. kAuto resolves to uring when available, sync
/// otherwise (counted in IoBackendTotals::fallbacks). kUring throws IoError
/// when io_uring is unavailable — the CLI turns that into exit code 3.
std::unique_ptr<IoBackend> make_io_backend(const IoBackendConfig& config = {});

/// The process-wide sync backend every TrackedFile uses unless its store
/// wired in an explicit one; keeps the single-read-path invariant without
/// threading a backend through every scratch-file construction.
const IoBackend& default_sync_backend();

/// Process-wide submission/completion counters across every backend
/// instance. RunStats::publish() exports them as `husg_io_backend_*` gauges
/// plus the `husg_io_backend_batch_size` histogram.
struct IoBackendTotals {
  std::uint64_t reads_submitted = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t batches = 0;
  std::uint64_t inflight_peak = 0;  ///< max ops concurrently in a ring
  std::uint64_t uring_fallbacks = 0;  ///< auto wanted uring, got sync
  std::uint64_t direct_denied = 0;    ///< O_DIRECT open fell back to buffered
};

IoBackendTotals io_backend_totals();

namespace detail {
/// Counter feeds for backend implementations (relaxed atomics).
void note_batch(std::size_t ops);
void note_completed(std::size_t ops);
void note_inflight(std::uint64_t inflight);
void note_uring_fallback();
void note_direct_denied();
/// Flight-recorder feed: called just before a backend throws IoError
/// (kBackendError event, v1=errno or 0, v2=bytes involved). No-op while the
/// recorder is disarmed.
void note_io_error(int err, std::uint64_t bytes);
}  // namespace detail

/// Shared pread loop (EINTR retry, short-read detection). The single sync
/// read implementation: File::pread_exact and SyncBackend both call it.
/// `required` ≤ `len` tolerates an EOF tail beyond `required` bytes —
/// O_DIRECT reads round the length up past a file's end.
void posix_read_exact(int fd, void* buf, std::size_t len, std::uint64_t offset,
                      std::size_t required);

}  // namespace husg
