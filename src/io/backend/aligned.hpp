// Pooled aligned buffers for O_DIRECT bounce reads (DESIGN.md §12).
//
// O_DIRECT requires the offset, length and destination address of every read
// to be multiples of the device's logical block size. Engine requests are
// byte-granular (a point load starts wherever the CSR says), so direct reads
// bounce: acquire a pooled buffer covering the aligned superset of the
// request, read that, memcpy the requested window out. The pool caps
// per-read allocations — workers reuse the small set of buffers the steady
// state needs — and both backends share it (the uring path keeps the lease
// alive until the completion is reaped).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace husg {

/// Alignment every O_DIRECT file in this codebase assumes. 4096 satisfies
/// every 512e/4Kn device; a looser actual device alignment only wastes a few
/// bounce bytes.
inline constexpr std::uint32_t kDirectIoAlign = 4096;

inline std::uint64_t align_down(std::uint64_t v, std::uint64_t a) {
  return v / a * a;
}
inline std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) / a * a;
}

class AlignedBufferPool {
 public:
  /// An aligned allocation leased from the pool; returns to the freelist on
  /// destruction. Movable, not copyable.
  class Lease {
   public:
    Lease() = default;
    Lease(AlignedBufferPool* pool, std::size_t index, char* data,
          std::size_t capacity)
        : pool_(pool), index_(index), data_(data), capacity_(capacity) {}
    ~Lease() { release(); }
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    char* data() const { return data_; }
    std::size_t capacity() const { return capacity_; }
    explicit operator bool() const { return data_ != nullptr; }

   private:
    void release();
    AlignedBufferPool* pool_ = nullptr;
    std::size_t index_ = 0;
    char* data_ = nullptr;
    std::size_t capacity_ = 0;
  };

  explicit AlignedBufferPool(std::uint32_t alignment = kDirectIoAlign)
      : alignment_(alignment) {}

  /// Buffer of at least `bytes` capacity (rounded up to the alignment), the
  /// address aligned to the pool's alignment. Reuses a free buffer when one
  /// is large enough, else allocates.
  Lease acquire(std::size_t bytes);

  std::uint32_t alignment() const { return alignment_; }

  /// The pool shared by every backend instance in the process.
  static AlignedBufferPool& instance();

 private:
  friend class Lease;
  struct Slot {
    std::unique_ptr<char, void (*)(char*)> data{nullptr, nullptr};
    std::size_t capacity = 0;
    bool in_use = false;
  };

  std::uint32_t alignment_;
  std::mutex mu_;
  std::vector<Slot> slots_;
};

}  // namespace husg
