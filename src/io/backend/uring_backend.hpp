// io_uring backend construction + runtime probe (DESIGN.md §12).
//
// Raw-syscall implementation — the container has no liburing, and the ring
// protocol is small enough to drive directly: io_uring_setup to create the
// rings, mmap to map SQ/CQ/SQE arrays, io_uring_enter to submit and reap.
// Compiled out (probe returns false, factory returns nullptr) on platforms
// without <linux/io_uring.h> or the syscall numbers.
#pragma once

#include <cstdint>
#include <memory>

#include "io/backend/io_backend.hpp"

namespace husg {

/// One io_uring_setup(1, ...) attempt; true when the kernel accepted it.
/// Uncached — callers go through uring_available() for the cached answer.
bool probe_uring();

/// UringBackend with the given submission-queue depth, or nullptr when this
/// kernel (or its seccomp policy) denies io_uring_setup.
std::unique_ptr<IoBackend> make_uring_backend(std::uint32_t queue_depth);

}  // namespace husg
