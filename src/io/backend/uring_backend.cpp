#include "io/backend/uring_backend.hpp"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#if defined(__NR_io_uring_setup) && defined(__NR_io_uring_enter)
#define HUSG_HAS_URING 1
#endif

#endif  // __linux__ && <linux/io_uring.h>

#ifdef HUSG_HAS_URING

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/common.hpp"

namespace husg {

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

unsigned load_acquire(unsigned* p) {
  return std::atomic_ref<unsigned>(*p).load(std::memory_order_acquire);
}

void store_release(unsigned* p, unsigned v) {
  std::atomic_ref<unsigned>(*p).store(v, std::memory_order_release);
}

class UringBackend;

/// One read in flight (or queued for submission). `user_data` of the SQE is
/// the address of this struct; the owning batch keeps it alive until the
/// final completion is reaped.
struct OpState {
  int fd = 0;
  char* dst = nullptr;
  std::uint64_t off = 0;
  std::size_t len = 0;       ///< total bytes to ask the kernel for
  std::size_t required = 0;  ///< bytes that must exist (≤ len, EOF tail ok)
  std::size_t done = 0;      ///< bytes landed so far (short reads resubmit)
  class UringBatch* batch = nullptr;
};

/// IoPending over one ring submission. All mutable state (remaining, error,
/// the backlog the ops sit in before submission) is guarded by the backend's
/// ring mutex.
class UringBatch final : public IoPending {
 public:
  UringBatch(const UringBackend* ring,
             std::vector<std::unique_ptr<OpState>> ops)
      : ring_(ring), ops_(std::move(ops)), remaining_(ops_.size()) {}
  ~UringBatch() override;

  void wait() override;

 private:
  friend class UringBackend;
  const UringBackend* ring_;
  std::vector<std::unique_ptr<OpState>> ops_;
  std::size_t remaining_;  ///< ops not yet fully completed (guarded by ring)
  std::string error_;      ///< first failure (guarded by ring)
};

class UringBackend final : public IoBackend {
 public:
  explicit UringBackend(std::uint32_t queue_depth) {
    std::memset(&params_, 0, sizeof(params_));
    ring_fd_ = sys_io_uring_setup(queue_depth, &params_);
    if (ring_fd_ < 0) {
      throw IoError(std::string("io_uring_setup: ") + std::strerror(errno));
    }
    try {
      map_rings();
    } catch (...) {
      ::close(ring_fd_);
      throw;
    }
    name_ = "uring-qd" + std::to_string(params_.sq_entries);
  }

  ~UringBackend() override {
    // Batches always outlive their backend (stores own both, batches are
    // stack-scoped inside read calls), so nothing can be in flight here.
    if (sqe_mmap_ != MAP_FAILED) ::munmap(sqe_mmap_, sqe_mmap_len_);
    if (cq_mmap_ != MAP_FAILED && cq_mmap_ != sq_mmap_) {
      ::munmap(cq_mmap_, cq_mmap_len_);
    }
    if (sq_mmap_ != MAP_FAILED) ::munmap(sq_mmap_, sq_mmap_len_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  IoBackendKind kind() const override { return IoBackendKind::kUring; }
  const char* name() const override { return name_.c_str(); }
  std::uint32_t queue_depth() const override { return params_.sq_entries; }

  /// Blocks until every op of `batch` completed; called by UringBatch.
  void wait_batch(UringBatch* batch) const {
    std::unique_lock<obs::ProfiledMutex> lk(mu_);
    reap_locked();
    while (batch->remaining_ > 0) {
      enter_getevents_locked();
      reap_locked();
    }
    if (!batch->error_.empty()) {
      detail::note_io_error(0, 0);
      throw IoError(batch->error_);
    }
  }

  /// Destructor path: unqueue this batch's unsubmitted ops and wait out its
  /// in-flight ones so the kernel never writes into freed buffers. Never
  /// throws — errors of an abandoned batch are dropped.
  void drain_batch(UringBatch* batch) const noexcept {
    std::unique_lock<obs::ProfiledMutex> lk(mu_);
    for (auto it = backlog_.begin(); it != backlog_.end();) {
      if ((*it)->batch == batch) {
        --batch->remaining_;
        it = backlog_.erase(it);
      } else {
        ++it;
      }
    }
    while (batch->remaining_ > 0) {
      reap_locked();
      if (batch->remaining_ == 0) break;
      try {
        enter_getevents_locked();
      } catch (const IoError&) {
        break;  // ring wedged; nothing more we can do from a destructor
      }
    }
  }

 protected:
  void do_read(int fd, void* buf, std::size_t len,
               std::uint64_t offset) const override {
    std::vector<RawOp> one(1);
    one[0] = RawOp{IoReadOp{buf, len, offset}, len};
    do_start_batch(fd, std::move(one))->wait();
  }

  std::unique_ptr<IoPending> do_start_batch(
      int fd, std::vector<RawOp> ops) const override {
    std::vector<std::unique_ptr<OpState>> states;
    states.reserve(ops.size());
    for (const RawOp& raw : ops) {
      auto st = std::make_unique<OpState>();
      st->fd = fd;
      st->dst = static_cast<char*>(raw.op.buf);
      st->off = raw.op.offset;
      st->len = raw.op.len;
      st->required = raw.required;
      states.push_back(std::move(st));
    }
    auto batch = std::make_unique<UringBatch>(this, std::move(states));
    {
      HUSG_SPAN("io", "uring_submit", "ops",
                static_cast<std::int64_t>(batch->ops_.size()));
      std::unique_lock<obs::ProfiledMutex> lk(mu_);
      for (auto& st : batch->ops_) {
        st->batch = batch.get();
        backlog_.push_back(st.get());
      }
      submit_backlog_locked();
    }
    return batch;
  }

 private:
  friend class UringBatch;

  void map_rings() {
    sq_mmap_len_ = params_.sq_off.array + params_.sq_entries * sizeof(unsigned);
    cq_mmap_len_ =
        params_.cq_off.cqes + params_.cq_entries * sizeof(io_uring_cqe);
    if (params_.features & IORING_FEAT_SINGLE_MMAP) {
      sq_mmap_len_ = std::max(sq_mmap_len_, cq_mmap_len_);
      cq_mmap_len_ = sq_mmap_len_;
    }
    sq_mmap_ = ::mmap(nullptr, sq_mmap_len_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_mmap_ == MAP_FAILED) {
      throw IoError(std::string("io_uring sq mmap: ") + std::strerror(errno));
    }
    if (params_.features & IORING_FEAT_SINGLE_MMAP) {
      cq_mmap_ = sq_mmap_;
    } else {
      cq_mmap_ = ::mmap(nullptr, cq_mmap_len_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_CQ_RING);
      if (cq_mmap_ == MAP_FAILED) {
        throw IoError(std::string("io_uring cq mmap: ") + std::strerror(errno));
      }
    }
    sqe_mmap_len_ = params_.sq_entries * sizeof(io_uring_sqe);
    sqe_mmap_ = ::mmap(nullptr, sqe_mmap_len_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqe_mmap_ == MAP_FAILED) {
      throw IoError(std::string("io_uring sqe mmap: ") + std::strerror(errno));
    }

    char* sq = static_cast<char*>(sq_mmap_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params_.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params_.sq_off.array);
    sqes_ = static_cast<io_uring_sqe*>(sqe_mmap_);

    char* cq = static_cast<char*>(cq_mmap_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params_.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params_.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params_.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params_.cq_off.cqes);
  }

  /// Moves backlog ops into SQEs (bounded by free CQ capacity so completions
  /// can never overflow) and submits them with one io_uring_enter.
  void submit_backlog_locked() const {
    unsigned to_submit = 0;
    while (!backlog_.empty() && inflight_ < params_.cq_entries) {
      unsigned tail = *sq_tail_;
      if (tail - load_acquire(sq_head_) >= params_.sq_entries) break;
      OpState* op = backlog_.front();
      backlog_.pop_front();
      unsigned idx = tail & sq_mask_;
      io_uring_sqe* sqe = &sqes_[idx];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READ;
      sqe->fd = op->fd;
      sqe->addr = reinterpret_cast<std::uint64_t>(op->dst + op->done);
      sqe->len = static_cast<unsigned>(op->len - op->done);
      sqe->off = op->off + op->done;
      sqe->user_data = reinterpret_cast<std::uint64_t>(op);
      sq_array_[idx] = idx;
      store_release(sq_tail_, tail + 1);
      ++to_submit;
      ++inflight_;
    }
    if (to_submit == 0) return;
    detail::note_inflight(inflight_);
    unsigned submitted = 0;
    while (submitted < to_submit) {
      int ret = sys_io_uring_enter(ring_fd_, to_submit - submitted, 0, 0);
      if (ret < 0) {
        if (errno == EINTR) continue;
        // Submission refused (the kernel consumed none of the remaining
        // SQEs): rewind the tail and fail their ops, so waiters see an
        // IoError instead of hanging on completions that will never post.
        const std::string msg =
            std::string("io_uring_enter(submit): ") + std::strerror(errno);
        const unsigned khead = load_acquire(sq_head_);
        const unsigned tail = *sq_tail_;
        for (unsigned t = khead; t != tail; ++t) {
          unsigned idx = sq_array_[t & sq_mask_];
          OpState* op = reinterpret_cast<OpState*>(
              static_cast<std::uintptr_t>(sqes_[idx].user_data));
          --inflight_;
          fail_op(op, msg);
        }
        store_release(sq_tail_, khead);
        return;
      }
      submitted += static_cast<unsigned>(ret);
    }
  }

  /// Blocks (lock held — waiters serialize, which keeps wakeups lossless)
  /// until at least one completion is available.
  void enter_getevents_locked() const {
    while (true) {
      int ret = sys_io_uring_enter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
      if (ret >= 0) return;
      if (errno == EINTR) continue;
      detail::note_io_error(errno, 0);
      throw IoError(std::string("io_uring_enter(getevents): ") +
                    std::strerror(errno));
    }
  }

  /// Pops every available CQE, advances the ops they belong to (completing,
  /// failing, or resubmitting short reads), then refills the ring from the
  /// backlog.
  void reap_locked() const {
    unsigned head = *cq_head_;
    const unsigned tail = load_acquire(cq_tail_);
    if (head != tail) {
      HUSG_SPAN("io", "uring_reap", "cqes",
                static_cast<std::int64_t>(tail - head));
      while (head != tail) {
        const io_uring_cqe& cqe = cqes_[head & cq_mask_];
        OpState* op = reinterpret_cast<OpState*>(
            static_cast<std::uintptr_t>(cqe.user_data));
        const std::int32_t res = cqe.res;
        ++head;
        --inflight_;
        if (res < 0) {
          if (res == -EINTR || res == -EAGAIN) {
            backlog_.push_front(op);  // retry with no progress
          } else {
            fail_op(op, std::string("io_uring read: ") + std::strerror(-res));
          }
        } else if (res == 0) {
          if (op->done >= op->required) {
            complete_op(op);
          } else {
            fail_op(op, "short read at offset " +
                            std::to_string(op->off + op->done) + " (wanted " +
                            std::to_string(op->required) + " bytes, got " +
                            std::to_string(op->done) + ")");
          }
        } else {
          op->done += static_cast<std::size_t>(res);
          if (op->done >= op->len || op->done >= op->required) {
            complete_op(op);
          } else {
            backlog_.push_front(op);  // short read: resubmit the remainder
          }
        }
      }
      store_release(cq_head_, head);
    }
    submit_backlog_locked();
  }

  void complete_op(OpState* op) const {
    --op->batch->remaining_;
    detail::note_completed(1);
  }

  void fail_op(OpState* op, std::string msg) const {
    if (op->batch->error_.empty()) op->batch->error_ = std::move(msg);
    --op->batch->remaining_;
    detail::note_completed(1);
  }

  int ring_fd_ = -1;
  io_uring_params params_;
  std::string name_;

  void* sq_mmap_ = MAP_FAILED;
  void* cq_mmap_ = MAP_FAILED;
  void* sqe_mmap_ = MAP_FAILED;
  std::size_t sq_mmap_len_ = 0;
  std::size_t cq_mmap_len_ = 0;
  std::size_t sqe_mmap_len_ = 0;

  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  // Ring discipline: one mutex guards SQ/CQ manipulation, the backlog and
  // every batch's remaining/error. Waiters hold it across the GETEVENTS
  // syscall — completions are only ever reaped under the lock, so a reap by
  // one waiter cannot strand another in the kernel with an empty CQ.
  mutable obs::ProfiledMutex mu_{"uring_submit"};
  mutable std::deque<OpState*> backlog_;  ///< accepted, not yet in the SQ
  mutable unsigned inflight_ = 0;         ///< SQEs submitted, CQEs not reaped
};

UringBatch::~UringBatch() { ring_->drain_batch(this); }

void UringBatch::wait() { ring_->wait_batch(this); }

}  // namespace

bool probe_uring() {
  io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  int fd = sys_io_uring_setup(1, &p);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

std::unique_ptr<IoBackend> make_uring_backend(std::uint32_t queue_depth) {
  try {
    return std::make_unique<UringBackend>(queue_depth);
  } catch (const IoError&) {
    return nullptr;
  }
}

}  // namespace husg

#else  // !HUSG_HAS_URING

namespace husg {

bool probe_uring() { return false; }

std::unique_ptr<IoBackend> make_uring_backend(std::uint32_t /*queue_depth*/) {
  return nullptr;
}

}  // namespace husg

#endif  // HUSG_HAS_URING
