#include "io/backend/io_backend.hpp"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <vector>

#include "io/backend/aligned.hpp"
#include "io/backend/uring_backend.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/common.hpp"

namespace husg {

namespace {

std::atomic<std::uint64_t> g_reads_submitted{0};
std::atomic<std::uint64_t> g_reads_completed{0};
std::atomic<std::uint64_t> g_batches{0};
std::atomic<std::uint64_t> g_inflight_peak{0};
std::atomic<std::uint64_t> g_uring_fallbacks{0};
std::atomic<std::uint64_t> g_direct_denied{0};

obs::Histogram& batch_size_histogram() {
  static obs::Histogram* hist = &obs::Registry::global().histogram(
      "husg_io_backend_batch_size",
      "Read ops per backend batch submission");
  return *hist;
}

}  // namespace

namespace detail {

void note_batch(std::size_t ops) {
  g_batches.fetch_add(1, std::memory_order_relaxed);
  g_reads_submitted.fetch_add(ops, std::memory_order_relaxed);
  batch_size_histogram().record(ops);
}

void note_completed(std::size_t ops) {
  g_reads_completed.fetch_add(ops, std::memory_order_relaxed);
}

void note_inflight(std::uint64_t inflight) {
  std::uint64_t cur = g_inflight_peak.load(std::memory_order_relaxed);
  while (inflight > cur && !g_inflight_peak.compare_exchange_weak(
                               cur, inflight, std::memory_order_relaxed)) {
  }
}

void note_uring_fallback() {
  g_uring_fallbacks.fetch_add(1, std::memory_order_relaxed);
}

void note_direct_denied() {
  g_direct_denied.fetch_add(1, std::memory_order_relaxed);
}

void note_io_error(int err, std::uint64_t bytes) {
  if (!obs::flight_enabled()) return;
  obs::FlightEvent e;
  e.type = obs::FlightEventType::kBackendError;
  e.v1 = err > 0 ? static_cast<std::uint64_t>(err) : 0;
  e.v2 = bytes;
  obs::FlightRecorder::instance().record(e);
}

}  // namespace detail

IoBackendTotals io_backend_totals() {
  IoBackendTotals t;
  t.reads_submitted = g_reads_submitted.load(std::memory_order_relaxed);
  t.reads_completed = g_reads_completed.load(std::memory_order_relaxed);
  t.batches = g_batches.load(std::memory_order_relaxed);
  t.inflight_peak = g_inflight_peak.load(std::memory_order_relaxed);
  t.uring_fallbacks = g_uring_fallbacks.load(std::memory_order_relaxed);
  t.direct_denied = g_direct_denied.load(std::memory_order_relaxed);
  return t;
}

const char* to_string(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kSync:
      return "sync";
    case IoBackendKind::kUring:
      return "uring";
    case IoBackendKind::kAuto:
      return "auto";
  }
  return "?";
}

bool parse_io_backend(const std::string& text, IoBackendKind* out) {
  if (text == "sync") {
    *out = IoBackendKind::kSync;
  } else if (text == "uring") {
    *out = IoBackendKind::kUring;
  } else if (text == "auto") {
    *out = IoBackendKind::kAuto;
  } else {
    return false;
  }
  return true;
}

void posix_read_exact(int fd, void* buf, std::size_t len, std::uint64_t offset,
                      std::size_t required) {
  char* dst = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    ssize_t got = ::pread(fd, dst + done, len - done,
                          static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      detail::note_io_error(errno, len - done);
      throw IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (got == 0) {
      // EOF. Fine once the caller's required window is covered (O_DIRECT
      // rounds lengths up past the end of the file); short otherwise.
      if (done >= required) return;
      detail::note_io_error(0, required - done);
      throw IoError("short read at offset " + std::to_string(offset + done) +
                    " (wanted " + std::to_string(required) + " bytes, got " +
                    std::to_string(done) + ")");
    }
    done += static_cast<std::size_t>(got);
  }
}

// ---------------------------------------------------------------------------
// Alignment bounce (shared by both backends).
// ---------------------------------------------------------------------------

namespace {

bool op_is_aligned(const void* buf, std::size_t len, std::uint64_t offset,
                   std::uint32_t align) {
  return offset % align == 0 && len % align == 0 &&
         reinterpret_cast<std::uintptr_t>(buf) % align == 0;
}

/// Wraps a batch whose unaligned ops were redirected into pooled aligned
/// buffers; the requested windows are copied out once the reads land.
class BouncePending final : public IoPending {
 public:
  struct Copy {
    AlignedBufferPool::Lease lease;
    char* dst = nullptr;
    std::size_t len = 0;
    std::size_t skew = 0;
  };

  BouncePending(std::unique_ptr<IoPending> inner, std::vector<Copy> copies)
      : inner_(std::move(inner)), copies_(std::move(copies)) {}

  void wait() override {
    if (done_) return;
    inner_->wait();
    for (const Copy& c : copies_) {
      std::memcpy(c.dst, c.lease.data() + c.skew, c.len);
    }
    copies_.clear();
    done_ = true;
  }

 private:
  std::unique_ptr<IoPending> inner_;  ///< drains the ring in its destructor
  std::vector<Copy> copies_;
  bool done_ = false;
};

}  // namespace

void IoBackend::read(int fd, void* buf, std::size_t len, std::uint64_t offset,
                     std::uint32_t align) const {
  if (len == 0) return;
  g_reads_submitted.fetch_add(1, std::memory_order_relaxed);
  if (align == 0 || op_is_aligned(buf, len, offset, align)) {
    do_read(fd, buf, len, offset);
  } else {
    const std::uint64_t a_off = align_down(offset, align);
    const std::size_t skew = static_cast<std::size_t>(offset - a_off);
    const std::size_t a_len =
        static_cast<std::size_t>(align_up(skew + len, align));
    AlignedBufferPool::Lease lease = AlignedBufferPool::instance().acquire(a_len);
    IoReadOp op{lease.data(), a_len, a_off};
    RawOp raw{op, skew + len};
    do_start_batch(fd, {raw})->wait();
    std::memcpy(buf, lease.data() + skew, len);
  }
}

std::unique_ptr<IoPending> IoBackend::start_batch(int fd, const IoReadOp* ops,
                                                  std::size_t count,
                                                  std::uint32_t align) const {
  detail::note_batch(count);
  std::vector<RawOp> raw;
  raw.reserve(count);
  if (align == 0) {
    for (std::size_t k = 0; k < count; ++k) {
      if (ops[k].len == 0) continue;
      raw.push_back(RawOp{ops[k], ops[k].len});
    }
    return do_start_batch(fd, std::move(raw));
  }
  std::vector<BouncePending::Copy> copies;
  for (std::size_t k = 0; k < count; ++k) {
    const IoReadOp& op = ops[k];
    if (op.len == 0) continue;
    if (op_is_aligned(op.buf, op.len, op.offset, align)) {
      raw.push_back(RawOp{op, op.len});
      continue;
    }
    const std::uint64_t a_off = align_down(op.offset, align);
    const std::size_t skew = static_cast<std::size_t>(op.offset - a_off);
    const std::size_t a_len =
        static_cast<std::size_t>(align_up(skew + op.len, align));
    AlignedBufferPool::Lease lease = AlignedBufferPool::instance().acquire(a_len);
    raw.push_back(RawOp{IoReadOp{lease.data(), a_len, a_off}, skew + op.len});
    copies.push_back(BouncePending::Copy{std::move(lease),
                                         static_cast<char*>(op.buf), op.len,
                                         skew});
  }
  std::unique_ptr<IoPending> inner = do_start_batch(fd, std::move(raw));
  if (copies.empty()) return inner;
  return std::make_unique<BouncePending>(std::move(inner), std::move(copies));
}

void IoBackend::read_batch(int fd, const IoReadOp* ops, std::size_t count,
                           std::uint32_t align) const {
  if (count == 0) return;
  start_batch(fd, ops, count, align)->wait();
}

// ---------------------------------------------------------------------------
// SyncBackend
// ---------------------------------------------------------------------------

namespace {

/// Already-completed batch: the sync backend reads eagerly at submission, so
/// the pending handle has nothing left to wait for.
class CompletedPending final : public IoPending {
 public:
  void wait() override {}
};

class SyncBackend final : public IoBackend {
 public:
  IoBackendKind kind() const override { return IoBackendKind::kSync; }
  const char* name() const override { return "sync"; }
  std::uint32_t queue_depth() const override { return 1; }

 protected:
  void do_read(int fd, void* buf, std::size_t len,
               std::uint64_t offset) const override {
    posix_read_exact(fd, buf, len, offset, len);
    detail::note_completed(1);
  }

  std::unique_ptr<IoPending> do_start_batch(
      int fd, std::vector<RawOp> ops) const override {
    for (const RawOp& op : ops) {
      posix_read_exact(fd, op.op.buf, op.op.len, op.op.offset, op.required);
    }
    detail::note_completed(ops.size());
    detail::note_inflight(1);
    return std::make_unique<CompletedPending>();
  }
};

}  // namespace

const IoBackend& default_sync_backend() {
  static const SyncBackend* backend = new SyncBackend();
  return *backend;
}

bool uring_available() {
  static const bool available = probe_uring();
  return available;
}

std::unique_ptr<IoBackend> make_io_backend(const IoBackendConfig& config) {
  HUSG_CHECK(config.queue_depth >= 1 && config.queue_depth <= kMaxQueueDepth,
             "queue depth must be in [1, " << kMaxQueueDepth << "], got "
                                           << config.queue_depth);
  switch (config.kind) {
    case IoBackendKind::kSync:
      return std::make_unique<SyncBackend>();
    case IoBackendKind::kUring: {
      std::unique_ptr<IoBackend> b = make_uring_backend(config.queue_depth);
      if (b == nullptr) {
        throw IoError(
            "io_uring backend requested but unavailable on this kernel "
            "(io_uring_setup denied)");
      }
      return b;
    }
    case IoBackendKind::kAuto: {
      if (uring_available()) {
        if (std::unique_ptr<IoBackend> b =
                make_uring_backend(config.queue_depth)) {
          return b;
        }
      }
      detail::note_uring_fallback();
      return std::make_unique<SyncBackend>();
    }
  }
  return std::make_unique<SyncBackend>();
}

}  // namespace husg
