#include "io/backend/aligned.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "util/common.hpp"

namespace husg {

AlignedBufferPool::Lease& AlignedBufferPool::Lease::operator=(
    Lease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = std::exchange(other.pool_, nullptr);
    index_ = other.index_;
    data_ = std::exchange(other.data_, nullptr);
    capacity_ = other.capacity_;
  }
  return *this;
}

void AlignedBufferPool::Lease::release() {
  if (pool_ == nullptr) return;
  std::lock_guard<std::mutex> lk(pool_->mu_);
  pool_->slots_[index_].in_use = false;
  pool_ = nullptr;
  data_ = nullptr;
}

AlignedBufferPool::Lease AlignedBufferPool::acquire(std::size_t bytes) {
  std::size_t need = static_cast<std::size_t>(
      align_up(std::max<std::size_t>(bytes, 1), alignment_));
  std::lock_guard<std::mutex> lk(mu_);
  // First fit among the free slots; steady-state workloads settle on a few
  // buffers sized to the largest bounce they issue.
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    Slot& s = slots_[k];
    if (!s.in_use && s.capacity >= need) {
      s.in_use = true;
      return Lease(this, k, s.data.get(), s.capacity);
    }
  }
  void* mem = std::aligned_alloc(alignment_, need);
  HUSG_CHECK(mem != nullptr,
             "aligned_alloc(" << alignment_ << ", " << need << ") failed");
  Slot slot;
  slot.data = std::unique_ptr<char, void (*)(char*)>(
      static_cast<char*>(mem), [](char* p) { std::free(p); });
  slot.capacity = need;
  slot.in_use = true;
  slots_.push_back(std::move(slot));
  return Lease(this, slots_.size() - 1, slots_.back().data.get(), need);
}

AlignedBufferPool& AlignedBufferPool::instance() {
  static AlignedBufferPool* pool =
      new AlignedBufferPool();  // leaked: leases may outlive main
  return *pool;
}

}  // namespace husg
