// Chunked sequential reader/writer over TrackedFile. Streaming engines (COP
// columns, GridGraph blocks, X-Stream partitions) consume edge regions
// through BufferedRegionReader so large regions are charged as a few large
// sequential ops, matching how a real streaming engine issues I/O.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "io/tracked_file.hpp"
#include "util/common.hpp"

namespace husg {

/// Default streaming chunk: 4 MiB, a typical out-of-core streaming unit.
inline constexpr std::size_t kDefaultStreamChunk = 4u << 20;

/// Reads the byte region [offset, offset+length) of a file in fixed chunks,
/// handing each chunk to a callback. Tracked as sequential I/O.
///
/// Chunks are double-buffered through the file's IoBackend: chunk N+1 is
/// submitted before fn(chunk N) runs, so under an async backend its bytes
/// are in flight while the caller decodes/applies chunk N (§3.5 overlap).
/// Under the sync backend the submission reads eagerly on this thread —
/// byte totals, op counts and chunk order are identical to the historical
/// blocking loop.
class BufferedRegionReader {
 public:
  BufferedRegionReader(const TrackedFile& file, std::uint64_t offset,
                       std::uint64_t length,
                       std::size_t chunk = kDefaultStreamChunk)
      : file_(file), offset_(offset), end_(offset + length),
        chunk_(chunk == 0 ? kDefaultStreamChunk : chunk) {
    buffers_[0].resize(std::min<std::uint64_t>(chunk_, length));
  }

  /// Invokes fn(ptr, bytes) for successive chunks until the region ends.
  template <class Fn>
  void for_each_chunk(Fn&& fn) {
    std::uint64_t pos = offset_;
    if (pos >= end_) return;
    if (pos + chunk_ < end_) buffers_[1].resize(buffers_[0].size());
    int cur = 0;
    std::size_t len =
        static_cast<std::size_t>(std::min<std::uint64_t>(chunk_, end_ - pos));
    IoReadOp op{buffers_[cur].data(), len, pos};
    std::unique_ptr<IoPending> inflight = file_.start_sequential(&op, 1);
    while (pos < end_) {
      const std::uint64_t next_pos = pos + len;
      std::size_t next_len = 0;
      std::unique_ptr<IoPending> next;
      if (next_pos < end_) {
        next_len = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk_, end_ - next_pos));
        IoReadOp next_op{buffers_[1 - cur].data(), next_len, next_pos};
        next = file_.start_sequential(&next_op, 1);
      }
      inflight->wait();
      fn(buffers_[cur].data(), len);
      inflight = std::move(next);
      cur = 1 - cur;
      pos = next_pos;
      len = next_len;
    }
  }

 private:
  const TrackedFile& file_;
  std::uint64_t offset_;
  std::uint64_t end_;
  std::size_t chunk_;
  std::vector<char> buffers_[2];
};

/// Streams fixed-size records out of a region. Requires the region length to
/// be a multiple of sizeof(Record).
template <class Record, class Fn>
void stream_records(const TrackedFile& file, std::uint64_t offset,
                    std::uint64_t length, Fn&& fn,
                    std::size_t chunk = kDefaultStreamChunk) {
  HUSG_CHECK(length % sizeof(Record) == 0,
             "region length " << length << " not a multiple of record size "
                              << sizeof(Record));
  // Align the chunk to whole records.
  chunk = std::max<std::size_t>(sizeof(Record), chunk - chunk % sizeof(Record));
  BufferedRegionReader reader(file, offset, length, chunk);
  reader.for_each_chunk([&](const char* data, std::size_t bytes) {
    std::size_t n = bytes / sizeof(Record);
    const Record* recs = reinterpret_cast<const Record*>(data);
    for (std::size_t i = 0; i < n; ++i) fn(recs[i]);
  });
}

/// Append-only buffered writer of fixed-size records.
template <class Record>
class RecordWriter {
 public:
  explicit RecordWriter(TrackedFile& file,
                        std::size_t chunk = kDefaultStreamChunk)
      : file_(file) {
    buffer_.reserve(chunk / sizeof(Record));
  }
  ~RecordWriter() { flush(); }
  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  void push(const Record& r) {
    buffer_.push_back(r);
    if (buffer_.size() == buffer_.capacity()) flush();
  }

  void flush() {
    if (!buffer_.empty()) {
      file_.append(buffer_.data(), buffer_.size() * sizeof(Record));
      written_ += buffer_.size();
      buffer_.clear();
    }
  }

  std::uint64_t records_written() const { return written_ + buffer_.size(); }

 private:
  TrackedFile& file_;
  std::vector<Record> buffer_;
  std::uint64_t written_ = 0;
};

}  // namespace husg
