// Chunked sequential reader/writer over TrackedFile. Streaming engines (COP
// columns, GridGraph blocks, X-Stream partitions) consume edge regions
// through BufferedRegionReader so large regions are charged as a few large
// sequential ops, matching how a real streaming engine issues I/O.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "io/tracked_file.hpp"
#include "util/common.hpp"

namespace husg {

/// Default streaming chunk: 4 MiB, a typical out-of-core streaming unit.
inline constexpr std::size_t kDefaultStreamChunk = 4u << 20;

/// Reads the byte region [offset, offset+length) of a file in fixed chunks,
/// handing each chunk to a callback. Tracked as sequential I/O.
class BufferedRegionReader {
 public:
  BufferedRegionReader(const TrackedFile& file, std::uint64_t offset,
                       std::uint64_t length,
                       std::size_t chunk = kDefaultStreamChunk)
      : file_(file), offset_(offset), end_(offset + length),
        chunk_(chunk == 0 ? kDefaultStreamChunk : chunk) {
    buffer_.resize(std::min<std::uint64_t>(chunk_, length));
  }

  /// Invokes fn(ptr, bytes) for successive chunks until the region ends.
  template <class Fn>
  void for_each_chunk(Fn&& fn) {
    std::uint64_t pos = offset_;
    while (pos < end_) {
      std::size_t len =
          static_cast<std::size_t>(std::min<std::uint64_t>(chunk_, end_ - pos));
      file_.read_sequential(buffer_.data(), len, pos);
      fn(buffer_.data(), len);
      pos += len;
    }
  }

 private:
  const TrackedFile& file_;
  std::uint64_t offset_;
  std::uint64_t end_;
  std::size_t chunk_;
  std::vector<char> buffer_;
};

/// Streams fixed-size records out of a region. Requires the region length to
/// be a multiple of sizeof(Record).
template <class Record, class Fn>
void stream_records(const TrackedFile& file, std::uint64_t offset,
                    std::uint64_t length, Fn&& fn,
                    std::size_t chunk = kDefaultStreamChunk) {
  HUSG_CHECK(length % sizeof(Record) == 0,
             "region length " << length << " not a multiple of record size "
                              << sizeof(Record));
  // Align the chunk to whole records.
  chunk = std::max<std::size_t>(sizeof(Record), chunk - chunk % sizeof(Record));
  BufferedRegionReader reader(file, offset, length, chunk);
  reader.for_each_chunk([&](const char* data, std::size_t bytes) {
    std::size_t n = bytes / sizeof(Record);
    const Record* recs = reinterpret_cast<const Record*>(data);
    for (std::size_t i = 0; i < n; ++i) fn(recs[i]);
  });
}

/// Append-only buffered writer of fixed-size records.
template <class Record>
class RecordWriter {
 public:
  explicit RecordWriter(TrackedFile& file,
                        std::size_t chunk = kDefaultStreamChunk)
      : file_(file) {
    buffer_.reserve(chunk / sizeof(Record));
  }
  ~RecordWriter() { flush(); }
  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  void push(const Record& r) {
    buffer_.push_back(r);
    if (buffer_.size() == buffer_.capacity()) flush();
  }

  void flush() {
    if (!buffer_.empty()) {
      file_.append(buffer_.data(), buffer_.size() * sizeof(Record));
      written_ += buffer_.size();
      buffer_.clear();
    }
  }

  std::uint64_t records_written() const { return written_ + buffer_.size(); }

 private:
  TrackedFile& file_;
  std::vector<Record> buffer_;
  std::uint64_t written_ = 0;
};

}  // namespace husg
