// File wrapper that classifies each access as sequential or random and
// charges it to an IoStats instance. Engines never bypass this wrapper.
//
// Every read goes through an IoBackend (DESIGN.md §12): the default is the
// process-wide sync backend (plain pread, behaviour identical to the
// historical code), a store can wire in a uring backend instead. Batch
// variants submit many ranges as one backend batch while still charging
// IoStats per logical op — byte and op totals are independent of the backend
// in use.
//
// When obs::set_io_timing(true) is active (the CLI enables it with
// --metrics-out), every access is additionally timed into the global
// husg_io_{seq_read,rand_read,write}_seconds latency histograms (one sample
// per batch for batched reads). The gate is one relaxed atomic load, so the
// default path pays no clock reads.
//
// Independently, when the device calibrator is armed (--calibrate, see
// obs/calibrate.hpp), a cheap 1-in-N sampled path times just the sampled ops
// and feeds their (bytes, latency) to the calibrator — full io-timing is not
// required for calibration. With io-timing on anyway, every timed op feeds
// the calibrator at no extra clock cost.
//
// A third independent gate, obs::attribution_enabled() (DESIGN.md §15),
// charges each access's wall to the owning job's io_wait bucket via
// obs::charge_io_wait — this is how a job's wall decomposes into
// cpu / io-wait / lock-wait / queued. All gates disarmed costs three
// relaxed loads per op and no clock reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>

#include "io/backend/io_backend.hpp"
#include "io/file.hpp"
#include "io/io_stats.hpp"
#include "obs/calibrate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace husg {

class TrackedFile {
 public:
  TrackedFile() = default;
  TrackedFile(const std::filesystem::path& path, File::Mode mode,
              IoStats* stats)
      : file_(path, mode), stats_(stats) {}
  TrackedFile(const std::filesystem::path& path, File::Mode mode,
              IoStats* stats, const IoBackend* backend, bool direct)
      : file_(path, mode, direct),
        stats_(stats),
        backend_(backend != nullptr ? backend : &default_sync_backend()) {}

  bool is_open() const { return file_.is_open(); }
  std::uint64_t size() const { return file_.size(); }
  const std::string& path() const { return file_.path(); }
  const IoBackend& backend() const { return *backend_; }
  /// Alignment reads on this file must honour (0 unless opened O_DIRECT).
  std::uint32_t read_align() const { return file_.read_align(); }

  /// Random (point) read: charged as one random op regardless of position.
  void read_random(void* buf, std::size_t len, std::uint64_t offset) const {
    const bool timed = obs::io_timing_enabled();
    if (timed || obs::attribution_enabled() || obs::calibration_sample()) {
      const std::uint64_t t0 = obs::now_ns();
      backend_->read(file_.fd(), buf, len, offset, file_.read_align());
      const std::uint64_t dt = obs::now_ns() - t0;
      if (timed) obs::io_latency().rand_read->record(dt);
      if (obs::attribution_enabled()) obs::charge_io_wait(dt);
      if (obs::calibration_enabled()) {
        obs::DeviceCalibrator::instance().record_random(1, len, dt);
      }
    } else {
      backend_->read(file_.fd(), buf, len, offset, file_.read_align());
    }
    if (stats_ != nullptr) stats_->add_rand_read(len);
  }

  /// Batched point loads: one backend submission for all `count` ranges
  /// (one ring submission under uring, a plain loop under sync). Charged as
  /// `count` random ops — IoStats totals are identical to a read_random
  /// loop. Timing records one sample for the whole batch.
  void read_random_batch(const IoReadOp* ops, std::size_t count) const {
    if (count == 0) return;
    const bool timed = obs::io_timing_enabled();
    if (timed || obs::attribution_enabled() || obs::calibration_sample()) {
      const std::uint64_t t0 = obs::now_ns();
      backend_->read_batch(file_.fd(), ops, count, file_.read_align());
      const std::uint64_t dt = obs::now_ns() - t0;
      if (timed) obs::io_latency().rand_read->record(dt);
      if (obs::attribution_enabled()) obs::charge_io_wait(dt);
      if (obs::calibration_enabled()) {
        std::uint64_t bytes = 0;
        for (std::size_t k = 0; k < count; ++k) bytes += ops[k].len;
        obs::DeviceCalibrator::instance().record_random(count, bytes, dt);
      }
    } else {
      backend_->read_batch(file_.fd(), ops, count, file_.read_align());
    }
    if (stats_ != nullptr) {
      for (std::size_t k = 0; k < count; ++k) {
        stats_->add_rand_read(ops[k].len);
      }
    }
  }

  /// Sequential (streaming) read: charged as sequential traffic. Callers use
  /// this when they stream a contiguous region (COP block scans, shard loads).
  void read_sequential(void* buf, std::size_t len, std::uint64_t offset) const {
    const bool timed = obs::io_timing_enabled();
    if (timed || obs::attribution_enabled() || obs::calibration_sample()) {
      const std::uint64_t t0 = obs::now_ns();
      backend_->read(file_.fd(), buf, len, offset, file_.read_align());
      const std::uint64_t dt = obs::now_ns() - t0;
      if (timed) obs::io_latency().seq_read->record(dt);
      if (obs::attribution_enabled()) obs::charge_io_wait(dt);
      if (obs::calibration_enabled()) {
        obs::DeviceCalibrator::instance().record_sequential(len, dt);
      }
    } else {
      backend_->read(file_.fd(), buf, len, offset, file_.read_align());
    }
    if (stats_ != nullptr) stats_->add_seq_read(len);
  }

  /// Starts `count` streaming reads without waiting for them (double-buffer
  /// pipelines overlap chunk N+1's I/O with chunk N's compute). Each op is
  /// charged as one sequential read at submission; the sync backend performs
  /// the reads eagerly, so totals and byte counts never depend on the
  /// backend. Destinations must outlive the returned handle.
  std::unique_ptr<IoPending> start_sequential(const IoReadOp* ops,
                                              std::size_t count) const {
    std::unique_ptr<IoPending> pending =
        backend_->start_batch(file_.fd(), ops, count, file_.read_align());
    if (stats_ != nullptr) {
      for (std::size_t k = 0; k < count; ++k) {
        stats_->add_seq_read(ops[k].len);
      }
    }
    return pending;
  }

  /// Blocking batched sequential read (one submission, wait for all).
  void read_sequential_batch(const IoReadOp* ops, std::size_t count) const {
    if (count == 0) return;
    const bool timed = obs::io_timing_enabled();
    if (timed || obs::attribution_enabled() || obs::calibration_sample()) {
      const std::uint64_t t0 = obs::now_ns();
      start_sequential(ops, count)->wait();
      const std::uint64_t dt = obs::now_ns() - t0;
      if (timed) obs::io_latency().seq_read->record(dt);
      if (obs::attribution_enabled()) obs::charge_io_wait(dt);
      if (obs::calibration_enabled()) {
        std::uint64_t bytes = 0;
        for (std::size_t k = 0; k < count; ++k) bytes += ops[k].len;
        obs::DeviceCalibrator::instance().record_sequential(bytes, dt);
      }
    } else {
      start_sequential(ops, count)->wait();
    }
  }

  void write(const void* buf, std::size_t len, std::uint64_t offset) {
    const bool timed = obs::io_timing_enabled();
    if (timed || obs::attribution_enabled() || obs::calibration_sample()) {
      const std::uint64_t t0 = obs::now_ns();
      file_.pwrite_exact(buf, len, offset);
      const std::uint64_t dt = obs::now_ns() - t0;
      if (timed) obs::io_latency().write->record(dt);
      if (obs::attribution_enabled()) obs::charge_io_wait(dt);
      if (obs::calibration_enabled()) {
        obs::DeviceCalibrator::instance().record_write(len, dt);
      }
    } else {
      file_.pwrite_exact(buf, len, offset);
    }
    if (stats_ != nullptr) stats_->add_write(len);
  }

  std::uint64_t append(const void* buf, std::size_t len) {
    std::uint64_t at;
    const bool timed = obs::io_timing_enabled();
    if (timed || obs::attribution_enabled() || obs::calibration_sample()) {
      const std::uint64_t t0 = obs::now_ns();
      at = file_.append(buf, len);
      const std::uint64_t dt = obs::now_ns() - t0;
      if (timed) obs::io_latency().write->record(dt);
      if (obs::attribution_enabled()) obs::charge_io_wait(dt);
      if (obs::calibration_enabled()) {
        obs::DeviceCalibrator::instance().record_write(len, dt);
      }
    } else {
      at = file_.append(buf, len);
    }
    if (stats_ != nullptr) stats_->add_write(len);
    return at;
  }

  void set_stats(IoStats* stats) { stats_ = stats; }
  IoStats* stats() const { return stats_; }
  void set_backend(const IoBackend* backend) {
    backend_ = backend != nullptr ? backend : &default_sync_backend();
  }

 private:
  File file_;
  IoStats* stats_ = nullptr;
  const IoBackend* backend_ = &default_sync_backend();
};

}  // namespace husg
