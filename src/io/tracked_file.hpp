// File wrapper that classifies each access as sequential or random and
// charges it to an IoStats instance. Engines never bypass this wrapper.
//
// When obs::set_io_timing(true) is active (the CLI enables it with
// --metrics-out), every access is additionally timed into the global
// husg_io_{seq_read,rand_read,write}_seconds latency histograms. The gate is
// one relaxed atomic load, so the default path pays no clock reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>

#include "io/file.hpp"
#include "io/io_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace husg {

class TrackedFile {
 public:
  TrackedFile() = default;
  TrackedFile(const std::filesystem::path& path, File::Mode mode,
              IoStats* stats)
      : file_(path, mode), stats_(stats) {}

  bool is_open() const { return file_.is_open(); }
  std::uint64_t size() const { return file_.size(); }
  const std::string& path() const { return file_.path(); }

  /// Random (point) read: charged as one random op regardless of position.
  void read_random(void* buf, std::size_t len, std::uint64_t offset) const {
    if (obs::io_timing_enabled()) {
      const std::uint64_t t0 = obs::now_ns();
      file_.pread_exact(buf, len, offset);
      obs::io_latency().rand_read->record(obs::now_ns() - t0);
    } else {
      file_.pread_exact(buf, len, offset);
    }
    if (stats_ != nullptr) stats_->add_rand_read(len);
  }

  /// Sequential (streaming) read: charged as sequential traffic. Callers use
  /// this when they stream a contiguous region (COP block scans, shard loads).
  void read_sequential(void* buf, std::size_t len, std::uint64_t offset) const {
    if (obs::io_timing_enabled()) {
      const std::uint64_t t0 = obs::now_ns();
      file_.pread_exact(buf, len, offset);
      obs::io_latency().seq_read->record(obs::now_ns() - t0);
    } else {
      file_.pread_exact(buf, len, offset);
    }
    if (stats_ != nullptr) stats_->add_seq_read(len);
  }

  void write(const void* buf, std::size_t len, std::uint64_t offset) {
    if (obs::io_timing_enabled()) {
      const std::uint64_t t0 = obs::now_ns();
      file_.pwrite_exact(buf, len, offset);
      obs::io_latency().write->record(obs::now_ns() - t0);
    } else {
      file_.pwrite_exact(buf, len, offset);
    }
    if (stats_ != nullptr) stats_->add_write(len);
  }

  std::uint64_t append(const void* buf, std::size_t len) {
    std::uint64_t at;
    if (obs::io_timing_enabled()) {
      const std::uint64_t t0 = obs::now_ns();
      at = file_.append(buf, len);
      obs::io_latency().write->record(obs::now_ns() - t0);
    } else {
      at = file_.append(buf, len);
    }
    if (stats_ != nullptr) stats_->add_write(len);
    return at;
  }

  void set_stats(IoStats* stats) { stats_ = stats; }
  IoStats* stats() const { return stats_; }

 private:
  File file_;
  IoStats* stats_ = nullptr;
};

}  // namespace husg
