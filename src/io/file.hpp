// RAII wrapper around POSIX file descriptors with full-length pread/pwrite.
// All HUS-Graph on-disk structures go through this layer so that byte and
// operation counts are exact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>

namespace husg {

class File {
 public:
  enum class Mode { kRead, kWrite, kReadWrite };

  File() = default;
  File(const std::filesystem::path& path, Mode mode);
  /// `direct` requests O_DIRECT (read mode only); when the filesystem
  /// refuses (EINVAL on tmpfs and friends) the open falls back to buffered
  /// I/O and counts the denial in IoBackendTotals::direct_denied.
  File(const std::filesystem::path& path, Mode mode, bool direct);
  ~File();

  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  /// Raw descriptor for IoBackend reads; -1 when closed.
  int fd() const { return fd_; }
  /// True when the descriptor is O_DIRECT (reads need aligned buffers).
  bool direct() const { return direct_; }
  /// Alignment every read on this fd must honour (0 = none, buffered).
  std::uint32_t read_align() const;

  /// Size in bytes (fstat).
  std::uint64_t size() const;

  /// Read exactly `len` bytes at `offset`; throws IoError on short read.
  void pread_exact(void* buf, std::size_t len, std::uint64_t offset) const;

  /// Write exactly `len` bytes at `offset`.
  void pwrite_exact(const void* buf, std::size_t len, std::uint64_t offset);

  /// Append `len` bytes at the current append cursor; returns the offset the
  /// data was written at.
  std::uint64_t append(const void* buf, std::size_t len);

  /// Flush file data to the device.
  void sync();

  void close();

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t append_offset_ = 0;
  bool direct_ = false;
};

/// Create directory (and parents) if missing; throws IoError on failure.
void ensure_directory(const std::filesystem::path& dir);

/// Remove a directory tree if it exists (best-effort helper for tests/benches).
void remove_tree(const std::filesystem::path& dir);

}  // namespace husg
