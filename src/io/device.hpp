// Storage device cost model.
//
// The paper's experiments ran on a 7200 RPM HDD and a SATA2 SSD; runtime for
// out-of-core systems is dominated by I/O time (§3.4 and [21] in the paper).
// This host exposes neither device (everything lands in page cache), so each
// run reports, alongside measured wall time, a *modeled device time*
// computed from the exact I/O traffic:
//
//   modeled_seconds = seq_bytes / seq_bw
//                   + rand_ops * seek_latency + rand_bytes / rand_bw
//                   + write_bytes / write_bw + write_ops_penalty
//
// The same profile provides the T_sequential / T_random constants that
// §3.4's C_rop / C_cop predictor needs (the paper measures them with fio).
#pragma once

#include <cstdint>
#include <string>

#include "io/backend/io_backend.hpp"
#include "io/io_stats.hpp"

namespace husg {

namespace obs {
class Registry;
}

struct DeviceProfile {
  std::string name;
  double seq_read_bw = 0;   ///< bytes/second, large sequential reads
  double rand_read_bw = 0;  ///< bytes/second, transfer part of random reads
  double write_bw = 0;      ///< bytes/second, sequential writes
  double seek_seconds = 0;  ///< per random-read-op positioning cost
  /// Independent request streams the device can serve concurrently (NCQ/NVMe
  /// queue lanes). Deep async queues amortise the per-op positioning cost
  /// across lanes; a depth-1 sync path uses exactly one.
  std::uint32_t queue_lanes = 1;

  /// Effective throughput constants for the §3.4 predictor.
  /// T_sequential is simply the sequential bandwidth; T_random folds the
  /// per-op seek into an effective bytes/second at the given mean request
  /// size.
  double t_sequential() const { return seq_read_bw; }
  double t_random(double mean_request_bytes) const;

  /// Modeled seconds for a traffic snapshot.
  double modeled_seconds(const IoSnapshot& io) const;

  /// Exports the profile's parameters as `husg_device_*` gauges so a metrics
  /// scrape records which cost model priced the run.
  void publish(obs::Registry& registry) const;

  /// Presets loosely matching the paper's testbed. Values are representative
  /// of the device classes, not of any specific drive.
  static DeviceProfile hdd7200();
  static DeviceProfile sata_ssd();
  static DeviceProfile nvme_ssd();
  /// Zero-latency infinite-bandwidth device (modeled time == 0); used by
  /// tests that only care about results.
  static DeviceProfile null_device();

  /// Returns a copy with the positioning latency multiplied by `factor`
  /// (bandwidths unchanged). The reproduction benches run graphs ~1000x
  /// smaller than the paper's; dividing the seek cost by the same factor
  /// preserves the paper testbed's seek-to-full-sweep ratio (dimensional
  /// matching), which is what the hybrid strategy's crossovers depend on.
  DeviceProfile with_seek_scale(double factor) const;

  /// Specialises the profile for the I/O backend actually in use so the
  /// §3.4 C_rop/C_cop decision is priced against it. Sync (or queue depth
  /// ≤ 1) returns an unchanged copy — the historical cost model, and the
  /// reason sync-backend baselines stay byte-identical. An async backend at
  /// depth N spreads the per-op positioning cost over min(N, queue_lanes)
  /// concurrent lanes, raising effective T_random while T_sequential is
  /// untouched.
  DeviceProfile for_backend(IoBackendKind backend,
                            std::uint32_t queue_depth) const;
};

}  // namespace husg
