#include "io/file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "io/backend/aligned.hpp"
#include "io/backend/io_backend.hpp"
#include "util/common.hpp"

namespace husg {

namespace {
[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw IoError(what + " '" + path + "': " + std::strerror(errno));
}
}  // namespace

File::File(const std::filesystem::path& path, Mode mode)
    : File(path, mode, false) {}

File::File(const std::filesystem::path& path, Mode mode, bool direct)
    : path_(path.string()) {
  int flags = 0;
  switch (mode) {
    case Mode::kRead:
      flags = O_RDONLY;
      break;
    case Mode::kWrite:
      flags = O_WRONLY | O_CREAT | O_TRUNC;
      break;
    case Mode::kReadWrite:
      flags = O_RDWR | O_CREAT;
      break;
  }
  if (direct && mode == Mode::kRead) {
    fd_ = ::open(path_.c_str(), flags | O_DIRECT, 0644);
    if (fd_ >= 0) {
      direct_ = true;
    } else if (errno != EINVAL && errno != EOPNOTSUPP) {
      throw_errno("open", path_);
    } else {
      detail::note_direct_denied();  // tmpfs & co: buffered fallback below
    }
  }
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), flags, 0644);
    if (fd_ < 0) throw_errno("open", path_);
  }
  if (mode == Mode::kReadWrite) {
    struct stat st{};
    if (::fstat(fd_, &st) == 0) append_offset_ = static_cast<std::uint64_t>(st.st_size);
  }
}

std::uint32_t File::read_align() const { return direct_ ? kDirectIoAlign : 0; }

File::~File() { close(); }

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      append_offset_(other.append_offset_),
      direct_(other.direct_) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    append_offset_ = other.append_offset_;
    direct_ = other.direct_;
  }
  return *this;
}

std::uint64_t File::size() const {
  HUSG_CHECK(is_open(), "size() on closed file");
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throw_errno("fstat", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void File::pread_exact(void* buf, std::size_t len, std::uint64_t offset) const {
  HUSG_CHECK(is_open(), "pread on closed file");
  if (direct_) {
    // O_DIRECT rejects unaligned preads; the backend bounce path handles it.
    default_sync_backend().read(fd_, buf, len, offset, kDirectIoAlign);
    return;
  }
  char* dst = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    ssize_t got = ::pread(fd_, dst + done, len - done,
                          static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread", path_);
    }
    if (got == 0) {
      throw IoError("short read from '" + path_ + "' at offset " +
                    std::to_string(offset + done) + " (wanted " +
                    std::to_string(len) + " bytes)");
    }
    done += static_cast<std::size_t>(got);
  }
}

void File::pwrite_exact(const void* buf, std::size_t len, std::uint64_t offset) {
  HUSG_CHECK(is_open(), "pwrite on closed file");
  const char* src = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < len) {
    ssize_t put = ::pwrite(fd_, src + done, len - done,
                           static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      throw_errno("pwrite", path_);
    }
    done += static_cast<std::size_t>(put);
  }
  append_offset_ = std::max(append_offset_, offset + len);
}

std::uint64_t File::append(const void* buf, std::size_t len) {
  std::uint64_t at = append_offset_;
  pwrite_exact(buf, len, at);
  return at;
}

void File::sync() {
  HUSG_CHECK(is_open(), "sync on closed file");
  if (::fdatasync(fd_) != 0) throw_errno("fdatasync", path_);
}

void File::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ensure_directory(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec && !std::filesystem::is_directory(dir)) {
    throw IoError("create_directories '" + dir.string() + "': " + ec.message());
  }
}

void remove_tree(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace husg
