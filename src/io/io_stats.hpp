// Exact I/O accounting. The paper's evaluation (Fig. 7b/7d, Fig. 9) compares
// systems by "I/O amount"; every engine in this repository funnels reads and
// writes through TrackedFile so the reported traffic is measured, not
// estimated. Sequential vs random classification feeds the device cost model
// (§3.4's T_sequential / T_random).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace husg {

/// Point-in-time snapshot of I/O counters (plain values; copyable).
struct IoSnapshot {
  std::uint64_t seq_read_bytes = 0;
  std::uint64_t seq_read_ops = 0;
  std::uint64_t rand_read_bytes = 0;
  std::uint64_t rand_read_ops = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t write_ops = 0;

  std::uint64_t total_read_bytes() const {
    return seq_read_bytes + rand_read_bytes;
  }
  std::uint64_t total_bytes() const { return total_read_bytes() + write_bytes; }
  std::uint64_t total_ops() const {
    return seq_read_ops + rand_read_ops + write_ops;
  }

  IoSnapshot operator-(const IoSnapshot& rhs) const;
  IoSnapshot& operator+=(const IoSnapshot& rhs);

  std::string to_string() const;
};

/// Thread-safe accumulating counters.
class IoStats {
 public:
  void add_seq_read(std::uint64_t bytes) {
    seq_read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    seq_read_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_rand_read(std::uint64_t bytes) {
    rand_read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    rand_read_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_write(std::uint64_t bytes) {
    write_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    write_ops_.fetch_add(1, std::memory_order_relaxed);
  }

  IoSnapshot snapshot() const {
    IoSnapshot s;
    s.seq_read_bytes = seq_read_bytes_.load(std::memory_order_relaxed);
    s.seq_read_ops = seq_read_ops_.load(std::memory_order_relaxed);
    s.rand_read_bytes = rand_read_bytes_.load(std::memory_order_relaxed);
    s.rand_read_ops = rand_read_ops_.load(std::memory_order_relaxed);
    s.write_bytes = write_bytes_.load(std::memory_order_relaxed);
    s.write_ops = write_ops_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    seq_read_bytes_ = 0;
    seq_read_ops_ = 0;
    rand_read_bytes_ = 0;
    rand_read_ops_ = 0;
    write_bytes_ = 0;
    write_ops_ = 0;
  }

 private:
  std::atomic<std::uint64_t> seq_read_bytes_{0};
  std::atomic<std::uint64_t> seq_read_ops_{0};
  std::atomic<std::uint64_t> rand_read_bytes_{0};
  std::atomic<std::uint64_t> rand_read_ops_{0};
  std::atomic<std::uint64_t> write_bytes_{0};
  std::atomic<std::uint64_t> write_ops_{0};
};

}  // namespace husg
