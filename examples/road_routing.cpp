// Road-network routing: single-source shortest paths over a weighted grid
// (a planar road-network-like topology). SSSP frontiers on grids stay small
// for the whole run, so the hybrid engine should stick to selective ROP I/O
// after the predictor sees the first few iterations.
//
//   ./examples/road_routing [--rows 192] [--cols 192]
#include <cstdio>
#include <filesystem>

#include "husg/husg.hpp"

int main(int argc, char** argv) {
  using namespace husg;
  Options opts = Options::parse(argc, argv);
  VertexId rows = static_cast<VertexId>(opts.get_int("rows", 192));
  VertexId cols = static_cast<VertexId>(opts.get_int("cols", 192));

  // Grid with random travel times per road segment.
  EdgeList roads =
      gen::with_random_weights(gen::grid2d(rows, cols), /*seed=*/3,
                               /*lo=*/0.5f, /*hi=*/3.0f);
  auto dir = std::filesystem::temp_directory_path() / "husg_roads";
  remove_tree(dir);
  DualBlockStore store = DualBlockStore::build(roads, dir, StoreOptions{8});
  std::printf("road network: %ux%u grid, %llu directed segments (weighted "
              "store, %u bytes/edge)\n",
              rows, cols, static_cast<unsigned long long>(roads.num_edges()),
              store.meta().edge_record_bytes());

  EngineOptions engine_opts;
  engine_opts.device = DeviceProfile::sata_ssd().with_seek_scale(1e-2);
  Engine engine(store, engine_opts);

  VertexId depot = 0;  // top-left corner
  SsspProgram sssp{.source = depot};
  auto result = engine.run(
      sssp, Frontier::single(store.meta(), depot, store.out_degrees()));

  auto at = [&](VertexId r, VertexId c) { return r * cols + c; };
  std::printf("travel times from the depot (corner 0,0):\n");
  std::printf("  to (%u,%u): %.2f\n", rows / 2, cols / 2,
              result.values[at(rows / 2, cols / 2)]);
  std::printf("  to (%u,%u): %.2f\n", rows - 1, cols - 1,
              result.values[at(rows - 1, cols - 1)]);
  std::printf("  to (0,%u):  %.2f\n", cols - 1,
              result.values[at(0, cols - 1)]);

  std::uint64_t rop_iters = 0;
  for (const auto& iter : result.stats.iterations) {
    rop_iters += iter.any_rop() ? 1 : 0;
  }
  std::printf("run: %s\n", result.stats.summary().c_str());
  std::printf("grid frontiers stay narrow: %llu of %d iterations used "
              "selective ROP I/O\n",
              static_cast<unsigned long long>(rop_iters),
              result.stats.iterations_run());
  remove_tree(dir);
  return 0;
}
