// Community-core analysis: peel a social network down to its k-core (the
// maximal subgraph where everyone has >= k in-core neighbours), then use one
// 64-way bit-parallel multi-source BFS to check how much of the graph the
// core reaches. Demonstrates the k-core and MultiBfs programs on the same
// store within one process.
//
//   ./examples/community_cores [--scale 14] [--degree 12] [--k 8]
#include <cstdio>
#include <filesystem>

#include "husg/husg.hpp"

int main(int argc, char** argv) {
  using namespace husg;
  Options opts = Options::parse(argc, argv);
  unsigned scale = static_cast<unsigned>(opts.get_int("scale", 14));
  double degree = opts.get_double("degree", 12.0);
  std::uint32_t k = static_cast<std::uint32_t>(opts.get_int("k", 8));

  // k-core is defined on the undirected structure.
  EdgeList social = gen::rmat(scale, degree, /*seed=*/13).symmetrized();
  auto dir = std::filesystem::temp_directory_path() / "husg_cores";
  remove_tree(dir);
  DualBlockStore store = DualBlockStore::build(social, dir, StoreOptions{8});
  Engine engine(store, EngineOptions{});

  // --- Peel to the k-core.
  KCoreProgram kcore;
  kcore.k = k;
  auto peel = engine.run(kcore, kcore_initial_frontier(store, k));
  std::uint64_t in_core = 0;
  VertexId sample_member = kInvalidVertex;
  for (VertexId v = 0; v < social.num_vertices(); ++v) {
    if (peel.values[v].removed == 0) {
      ++in_core;
      if (sample_member == kInvalidVertex) sample_member = v;
    }
  }
  std::printf("%u-core of %u users: %llu members (%.1f %%), peeled in %d "
              "iterations\n",
              k, social.num_vertices(),
              static_cast<unsigned long long>(in_core),
              100.0 * static_cast<double>(in_core) / social.num_vertices(),
              peel.stats.iterations_run());
  if (in_core == 0) {
    std::printf("no %u-core in this graph; try a smaller --k\n", k);
    remove_tree(dir);
    return 0;
  }

  // --- Reach of 64 core members, one engine pass.
  MultiBfsProgram reach;
  for (VertexId v = sample_member;
       v < social.num_vertices() && reach.roots.size() < 64; ++v) {
    if (peel.values[v].removed == 0) reach.roots.push_back(v);
  }
  AtomicBitmap bits(social.num_vertices());
  for (VertexId r : reach.roots) bits.set(r);
  auto reached = engine.run(
      reach, Frontier::from_bits(store.meta(), bits, store.out_degrees()));
  std::uint64_t reached_any = 0, reached_all = 0;
  std::uint64_t full = reach.roots.size() == 64
                           ? ~0ULL
                           : (1ULL << reach.roots.size()) - 1;
  for (VertexId v = 0; v < social.num_vertices(); ++v) {
    if (reached.values[v] != 0) ++reached_any;
    if (reached.values[v] == full) ++reached_all;
  }
  std::printf("%zu core members reach %llu users total; %llu users are "
              "reachable from every probed member\n",
              reach.roots.size(),
              static_cast<unsigned long long>(reached_any),
              static_cast<unsigned long long>(reached_all));
  std::printf("multi-BFS: %s\n", reached.stats.summary().c_str());
  remove_tree(dir);
  return 0;
}
