// Social-network influence analysis: rank users of a power-law social graph
// with standard PageRank, then show how PageRank-Delta gets the same answer
// while letting the frontier (and hence the I/O) collapse — the workload
// class the paper's hybrid strategy is built for.
//
//   ./examples/social_influence [--scale 15] [--degree 16] [--topk 10]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "husg/husg.hpp"

int main(int argc, char** argv) {
  using namespace husg;
  Options opts = Options::parse(argc, argv);
  unsigned scale = static_cast<unsigned>(opts.get_int("scale", 15));
  double degree = opts.get_double("degree", 16.0);
  int topk = static_cast<int>(opts.get_int("topk", 10));

  EdgeList graph = gen::rmat(scale, degree, /*seed=*/7);
  auto dir = std::filesystem::temp_directory_path() / "husg_social";
  remove_tree(dir);
  DualBlockStore store = DualBlockStore::build(graph, dir, StoreOptions{8});

  // --- Standard PageRank: every vertex recomputes every iteration, so the
  // engine streams with COP (the dense regime).
  EngineOptions pr_opts;
  pr_opts.mode = UpdateMode::kCop;
  pr_opts.max_iterations = 20;
  Engine pr_engine(store, pr_opts);
  PageRankProgram pr;
  auto ranks =
      pr_engine.run(pr, Frontier::all(store.meta(), store.out_degrees()));
  std::printf("standard PageRank: %s\n", ranks.stats.summary().c_str());

  std::vector<VertexId> order(graph.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + topk, order.end(),
                    [&](VertexId a, VertexId b) {
                      return ranks.values[a] > ranks.values[b];
                    });
  std::printf("top-%d influencers (vertex: rank, followers):\n", topk);
  for (int i = 0; i < topk; ++i) {
    VertexId v = order[i];
    std::printf("  %8u: %.3f  %u\n", v, ranks.values[v],
                store.in_degrees()[v]);
  }

  // --- PageRank-Delta: only vertices with enough pending residual stay
  // active, so the frontier thins and the hybrid engine can switch to
  // selective ROP I/O for the long convergence tail.
  EngineOptions prd_opts;
  prd_opts.mode = UpdateMode::kHybrid;
  prd_opts.max_iterations = 500;
  Engine prd_engine(store, prd_opts);
  PageRankDeltaProgram prd;
  prd.epsilon = 1e-4f;
  auto delta =
      prd_engine.run(prd, Frontier::all(store.meta(), store.out_degrees()));
  std::printf("\nPageRank-Delta: %s\n", delta.stats.summary().c_str());
  std::printf("frontier decay (active vertices per iteration):");
  for (const auto& iter : delta.stats.iterations) {
    std::printf(" %llu",
                static_cast<unsigned long long>(iter.active_vertices));
  }
  std::printf("\n");

  // The two formulations agree at their common fixed point (up to the
  // truncation of the 20-sweep run and the residual threshold).
  double worst = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    worst = std::max(
        worst, std::abs(static_cast<double>(delta.values[v].rank) -
                        ranks.values[v]));
  }
  std::printf("max |PR - PR-Delta| over all vertices: %.4f\n", worst);
  remove_tree(dir);
  return 0;
}
