// Quickstart: build a graph, store it in the dual-block format, run BFS with
// the hybrid engine, and inspect the results and I/O statistics.
//
//   ./examples/quickstart [--scale 14] [--degree 8] [--threads 4]
#include <cstdio>
#include <filesystem>

#include "husg/husg.hpp"
#include "util/format.hpp"

int main(int argc, char** argv) {
  using namespace husg;
  Options opts = Options::parse(argc, argv);
  unsigned scale = static_cast<unsigned>(opts.get_int("scale", 14));
  double degree = opts.get_double("degree", 8.0);

  // 1. Get a graph. Any EdgeList works: load_text_edges("file.txt"),
  //    load_binary_edges(...), or a generator.
  EdgeList graph = gen::rmat(scale, degree, /*seed=*/42);
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. Build (or open) the on-disk dual-block store.
  auto dir = std::filesystem::temp_directory_path() / "husg_quickstart";
  remove_tree(dir);
  DualBlockStore store = DualBlockStore::build(graph, dir, StoreOptions{8});

  // 3. Configure the engine. UpdateMode::kHybrid picks ROP or COP per
  //    iteration using the I/O cost predictor for the chosen device.
  EngineOptions engine_opts;
  engine_opts.threads = static_cast<std::size_t>(opts.get_int("threads", 4));
  // Scale the device's positioning latency to this toy graph's size so the
  // ROP/COP crossover is visible (see DeviceProfile::with_seek_scale).
  engine_opts.device = DeviceProfile::sata_ssd().with_seek_scale(1e-2);
  Engine engine(store, engine_opts);

  // 4. Run a program. BFS starts from a single-vertex frontier.
  BfsProgram bfs{.source = 1};
  auto result = engine.run(
      bfs, Frontier::single(store.meta(), bfs.source, store.out_degrees()));

  // 5. Inspect results and statistics.
  std::uint64_t reached = 0;
  std::uint32_t max_level = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (result.values[v] != BfsProgram::kUnreached) {
      ++reached;
      max_level = std::max(max_level, result.values[v]);
    }
  }
  std::printf("BFS from %u: reached %llu vertices, eccentricity %u\n",
              bfs.source, static_cast<unsigned long long>(reached), max_level);
  std::printf("run: %s\n", result.stats.summary().c_str());
  for (const auto& iter : result.stats.iterations) {
    std::printf(
        "  iter %2d: %8llu active vertices, %s, io %s\n", iter.iteration,
        static_cast<unsigned long long>(iter.active_vertices),
        iter.any_rop() ? "ROP" : "COP",
        human_bytes(iter.io.total_bytes()).c_str());
  }
  remove_tree(dir);
  return 0;
}
