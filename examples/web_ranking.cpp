// Web-graph analytics: find the weakly connected components of a hyperlink
// graph, then rank the main component's pages. Web graphs have long-tail
// diameters, so WCC runs many sparse iterations after the dense start — the
// regime where the hybrid engine's per-iteration ROP/COP switching shows up
// clearly in the decision log.
//
//   ./examples/web_ranking [--scale 15] [--degree 12]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>

#include "husg/husg.hpp"

int main(int argc, char** argv) {
  using namespace husg;
  Options opts = Options::parse(argc, argv);
  unsigned scale = static_cast<unsigned>(opts.get_int("scale", 15));
  double degree = opts.get_double("degree", 12.0);

  EdgeList web = gen::webgraph(scale, degree, /*seed=*/11);
  auto dir = std::filesystem::temp_directory_path() / "husg_web";
  remove_tree(dir);

  // WCC treats the hyperlink graph as undirected (paper §3.1 convention).
  DualBlockStore sym_store =
      DualBlockStore::build(web.symmetrized(), dir / "sym", StoreOptions{8});
  EngineOptions wcc_opts;
  wcc_opts.device = DeviceProfile::hdd7200().with_seek_scale(1e-3);
  Engine wcc_engine(sym_store, wcc_opts);
  WccProgram wcc;
  auto components = wcc_engine.run(
      wcc, Frontier::all(sym_store.meta(), sym_store.out_degrees()));

  std::map<VertexId, std::uint64_t> sizes;
  for (VertexId v = 0; v < web.num_vertices(); ++v) {
    ++sizes[components.values[v]];
  }
  std::printf("WCC: %zu components; %s\n", sizes.size(),
              components.stats.summary().c_str());
  std::printf("hybrid decisions per iteration:");
  for (const auto& iter : components.stats.iterations) {
    std::printf(" %s", iter.any_rop() ? "ROP" : "COP");
  }
  std::printf("\n  (dense early iterations pull with COP; the long sparse "
              "tail pushes with ROP)\n");

  // Rank pages of the whole graph with PageRank on the directed store.
  DualBlockStore store =
      DualBlockStore::build(web, dir / "dir", StoreOptions{8});
  EngineOptions pr_opts;
  pr_opts.mode = UpdateMode::kCop;
  pr_opts.max_iterations = 15;
  Engine pr_engine(store, pr_opts);
  PageRankProgram pr;
  auto ranks =
      pr_engine.run(pr, Frontier::all(store.meta(), store.out_degrees()));

  VertexId best = 0;
  for (VertexId v = 1; v < web.num_vertices(); ++v) {
    if (ranks.values[v] > ranks.values[best]) best = v;
  }
  std::printf("\nPageRank over %d sweeps: %s\n", 15,
              ranks.stats.summary().c_str());
  std::printf("highest-ranked page: vertex %u (rank %.2f, in-degree %u)\n",
              best, ranks.values[best], store.in_degrees()[best]);
  remove_tree(dir);
  return 0;
}
