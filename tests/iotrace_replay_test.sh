#!/bin/sh
# I/O trace replay fidelity gate: record the perf_smoke cache run's block
# trace, replay it through the simulated cache at the recorded budget, and
# require the simulated counters to match (a) the live outcomes in the trace
# and (b) the engine's own counters in BENCH_perf_smoke.json. Then doctor the
# trace header's budget field and require the check to fail — proof the gate
# can actually detect divergence. Invoked by ctest with the perf_smoke binary
# as $1 and the husg_replay binary as $2.
set -eu

BENCH="$1"
REPLAY="$2"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/husg_iotrace_replay.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

if ! command -v python3 > /dev/null 2>&1; then
  echo "iotrace_replay_test SKIPPED (no python3)"
  exit 0
fi

"$BENCH" --out-dir "$WORK" --data-dir "$WORK/data" \
  --iotrace-out "$WORK/trace.bin" > "$WORK/bench.log" \
  || fail "perf_smoke exited nonzero"
[ -s "$WORK/trace.bin" ] || fail "perf_smoke wrote no trace"

# Fidelity at the recorded budget, plus the miss-ratio curve for the
# monotonicity check below.
"$REPLAY" --trace "$WORK/trace.bin" --check --curve \
  --json "$WORK/replay.json" > "$WORK/replay.log" \
  || fail "replay fidelity check failed (simulated cache diverged from live)"

# The trace's live counters must equal the engine's own cache counters from
# the bench report: the recorder saw every consult the engine made.
python3 - "$WORK/replay.json" "$WORK/BENCH_perf_smoke.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    replay = json.load(f)
with open(sys.argv[2]) as f:
    bench = json.load(f)
live = next(r for r in replay["runs"] if r["label"] == "live")
engine = next(r for r in bench["runs"] if r["label"] == "pagerank/rop+cache")
for field in ("cache_hits", "cache_misses", "cache_evictions",
              "cache_bytes_saved"):
    if live[field] != engine[field]:
        sys.exit(f"trace live {field}={live[field]} != engine "
                 f"{field}={engine[field]}")
if not replay["fidelity_ok"]:
    sys.exit("replay report says fidelity_ok=false")
curve = replay["curve"]
if len(curve) < 4:
    sys.exit(f"curve has only {len(curve)} points")
ratios = [p["miss_ratio"] for p in curve]
for a, b in zip(ratios, ratios[1:]):
    if b > a + 1e-9:
        sys.exit(f"miss-ratio curve not monotone non-increasing: {ratios}")
if not any(w["flavor"] == "paper" for w in replay["whatif"]):
    sys.exit("what-if panel missing the paper flavor")
EOF

# Negative control: halving the recorded budget (u64 at header offset 16)
# must make the replayed counters diverge and the check exit nonzero.
python3 - "$WORK/trace.bin" "$WORK/doctored.bin" <<'EOF'
import struct, sys
with open(sys.argv[1], "rb") as f:
    data = bytearray(f.read())
(budget,) = struct.unpack_from("<Q", data, 16)
struct.pack_into("<Q", data, 16, budget // 2)
with open(sys.argv[2], "wb") as f:
    f.write(data)
EOF
if "$REPLAY" --trace "$WORK/doctored.bin" --check --quiet \
    > /dev/null 2>&1; then
  fail "fidelity check passed against a doctored trace"
fi

echo "iotrace_replay_test OK"
