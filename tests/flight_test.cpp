// Tests for the serve-mode incident stack (DESIGN.md §14): the FlightRecorder
// lock-free event rings, ProgressBeat heartbeats, the AnomalyWatchdog rules,
// and postmortem bundle serialization. The concurrent record/drain/scrape
// test doubles as the TSan witness for the seqlock slot protocol.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "husg/husg.hpp"

namespace husg {
namespace {

namespace fs = std::filesystem;
using obs::Anomaly;
using obs::AnomalyKind;
using obs::AnomalyWatchdog;
using obs::FlightEvent;
using obs::FlightEventType;
using obs::FlightRecorder;
using obs::JobHealth;
using obs::ProgressBeat;
using obs::WatchdogOptions;

/// Every test arms/disarms the process-wide recorder; this guard restores
/// the disabled state even on assertion failure.
struct RecorderGuard {
  explicit RecorderGuard(std::size_t budget) {
    FlightRecorder::instance().start(budget);
  }
  ~RecorderGuard() { FlightRecorder::instance().stop(); }
};

FlightEvent make_event(FlightEventType type, std::uint64_t job,
                       std::uint64_t v1) {
  FlightEvent e;
  e.type = type;
  e.job = job;
  e.v1 = v1;
  return e;
}

// ---------------------------------------------------------------------------
// FlightRecorder

TEST(FlightRecorderTest, DisabledRecorderIsInertAndFree) {
  FlightRecorder& rec = FlightRecorder::instance();
  ASSERT_FALSE(obs::flight_enabled());
  rec.record(make_event(FlightEventType::kProgress, 1, 2));
  EXPECT_TRUE(rec.drain().empty());
}

TEST(FlightRecorderTest, RecordDrainRoundTrip) {
  RecorderGuard guard(64);
  FlightRecorder& rec = FlightRecorder::instance();
  EXPECT_TRUE(obs::flight_enabled());

  for (std::uint64_t k = 0; k < 10; ++k) {
    FlightEvent e;
    e.type = FlightEventType::kProgress;
    e.flag = 1;
    e.a = static_cast<std::uint32_t>(k);
    e.job = 7;
    e.v1 = k * 10;
    e.v2 = k * 100;
    e.v3 = k * 1000;
    rec.record(e);
  }

  std::vector<FlightEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 10u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 0u);
  for (std::size_t k = 0; k < events.size(); ++k) {
    // Sorted by process-wide seq; a single thread recorded in order.
    if (k > 0) EXPECT_GT(events[k].seq, events[k - 1].seq);
    EXPECT_EQ(events[k].type, FlightEventType::kProgress);
    EXPECT_EQ(events[k].flag, 1);
    EXPECT_EQ(events[k].a, k);
    EXPECT_EQ(events[k].job, 7u);
    EXPECT_EQ(events[k].v1, k * 10);
    EXPECT_EQ(events[k].v2, k * 100);
    EXPECT_EQ(events[k].v3, k * 1000);
    EXPECT_GT(events[k].ts_ns, 0u);
  }
}

TEST(FlightRecorderTest, RingOverwriteKeepsNewestAndCountsDropped) {
  RecorderGuard guard(16);
  FlightRecorder& rec = FlightRecorder::instance();
  for (std::uint64_t k = 0; k < 100; ++k) {
    rec.record(make_event(FlightEventType::kDecision, 1, k));
  }
  std::vector<FlightEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 16u);
  // The ring holds the newest 16 of 100 (v1 = 84..99, in seq order).
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].v1, 84 + k);
  }
  EXPECT_EQ(rec.recorded(), 100u);
  EXPECT_EQ(rec.dropped(), 84u);
}

TEST(FlightRecorderTest, RestartResetsCountsAndBudget) {
  FlightRecorder& rec = FlightRecorder::instance();
  {
    RecorderGuard guard(16);
    rec.record(make_event(FlightEventType::kProgress, 1, 1));
    EXPECT_EQ(rec.recorded(), 1u);
  }
  EXPECT_FALSE(obs::flight_enabled());
  RecorderGuard guard(32);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.events_per_thread(), 32u);
  rec.record(make_event(FlightEventType::kProgress, 2, 2));
  std::vector<FlightEvent> events = rec.drain();
  // The old epoch's event must not leak into the new epoch's drain.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].job, 2u);
}

TEST(FlightRecorderTest, EventsFromMultipleThreadsCarryDistinctTids) {
  RecorderGuard guard(64);
  FlightRecorder& rec = FlightRecorder::instance();
  std::thread other(
      [&rec] { rec.record(make_event(FlightEventType::kProgress, 2, 0)); });
  other.join();
  rec.record(make_event(FlightEventType::kProgress, 1, 0));
  std::vector<FlightEvent> events = rec.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(FlightRecorderTest, ConcurrentRecordDrainAndScrape) {
  RecorderGuard guard(256);
  FlightRecorder& rec = FlightRecorder::instance();
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    obs::Registry reg;
    while (!stop.load(std::memory_order_acquire)) {
      // Concurrent snapshot + scrape while writers are mid-flight: every
      // drained event must be internally consistent (the seqlock re-check
      // discards torn slots).
      for (const FlightEvent& e : rec.drain()) {
        ASSERT_EQ(e.type, FlightEventType::kProgress);
        ASSERT_EQ(e.v2, e.v1 * 2) << "torn slot leaked through the seqlock";
      }
      rec.publish(reg);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (std::uint64_t k = 0; k < kPerWriter; ++k) {
        FlightEvent e;
        e.type = FlightEventType::kProgress;
        e.job = static_cast<std::uint64_t>(w);
        e.v1 = k;
        e.v2 = k * 2;
        rec.record(e);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(rec.recorded(), kWriters * kPerWriter);
  std::vector<FlightEvent> events = rec.drain();
  EXPECT_EQ(events.size(), kWriters * 256u);  // every ring full
  EXPECT_EQ(rec.dropped(), kWriters * (kPerWriter - 256));
  // Global seq is unique across threads.
  std::set<std::uint64_t> seqs;
  for (const FlightEvent& e : events) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), events.size());
}

TEST(FlightRecorderTest, DrainToFdWritesParseableJson) {
  RecorderGuard guard(32);
  FlightRecorder& rec = FlightRecorder::instance();
  for (std::uint64_t k = 0; k < 5; ++k) {
    rec.record(make_event(FlightEventType::kAnomaly, k, k + 1));
  }
  const fs::path path =
      fs::temp_directory_path() / "husg_flight_fd_test.json";
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  rec.drain_to_fd(fd);
  ::close(fd);

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue root = parse_json(buf.str(), "drain_to_fd");
  ASSERT_EQ(root.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(root.arr.size(), 5u);
  for (const JsonValue& e : root.arr) {
    EXPECT_EQ(e.get("type")->str, "anomaly");
    EXPECT_EQ(e.get("v1")->num, e.get("job")->num + 1);
  }
  fs::remove(path);
}

TEST(FlightRecorderTest, WriteEventsJsonMatchesDrain) {
  RecorderGuard guard(32);
  FlightRecorder& rec = FlightRecorder::instance();
  rec.record(make_event(FlightEventType::kJobStarted, 3, 42));
  std::ostringstream os;
  rec.write_events_json(os);
  JsonValue root = parse_json(os.str(), "write_events_json");
  ASSERT_EQ(root.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(root.arr.size(), 1u);
  EXPECT_EQ(root.arr[0].get("type")->str, "job_started");
  EXPECT_EQ(root.arr[0].get("job")->num, 3);
  EXPECT_EQ(root.arr[0].get("v1")->num, 42);
}

// ---------------------------------------------------------------------------
// ProgressBeat

TEST(ProgressBeatTest, TickRecordsProgressAndFreezeStopsIt) {
  ProgressBeat beat;
  EXPECT_EQ(beat.last_tick_ns.load(), 0u);
  beat.tick(3, 100, 2000, 4096);
  EXPECT_EQ(beat.iteration.load(), 3u);
  EXPECT_EQ(beat.active_vertices.load(), 100u);
  EXPECT_EQ(beat.edges.load(), 2000u);
  EXPECT_EQ(beat.io_bytes.load(), 4096u);
  const std::uint64_t t1 = beat.last_tick_ns.load();
  EXPECT_GT(t1, 0u);

  beat.frozen.store(true);
  beat.tick(4, 1, 1, 1);
  beat.touch();
  EXPECT_EQ(beat.iteration.load(), 3u) << "frozen beat must ignore ticks";
  EXPECT_EQ(beat.last_tick_ns.load(), t1);

  beat.frozen.store(false);
  beat.touch();
  EXPECT_GE(beat.last_tick_ns.load(), t1);
}

TEST(ProgressBeatTest, MispredictStreakCountsAndResets) {
  ProgressBeat beat;
  beat.note_prediction(true);
  beat.note_prediction(true);
  EXPECT_EQ(beat.mispredict_streak.load(), 2u);
  beat.note_prediction(false);
  EXPECT_EQ(beat.mispredict_streak.load(), 0u);
}

// ---------------------------------------------------------------------------
// AnomalyWatchdog

JobHealth healthy_job(std::uint64_t id, const std::string& name) {
  JobHealth j;
  j.id = id;
  j.name = name;
  j.start_ns = obs::now_ns();
  j.last_tick_ns = obs::now_ns();
  return j;
}

TEST(WatchdogTest, StalledJobTripsThenClears) {
  obs::Registry reg;
  WatchdogOptions wo;
  wo.stall_ms = 10;
  AnomalyWatchdog wd(wo, reg);
  std::vector<Anomaly> trips;
  wd.set_on_trip([&trips](const Anomaly& a) { trips.push_back(a); });

  JobHealth j = healthy_job(7, "wedged");
  j.iteration = 3;
  wd.evaluate({j}, obs::LatencySummary{}, nullptr);
  EXPECT_FALSE(wd.degraded());

  // Let the heartbeat age past the stall threshold (now_ns() is a
  // steady-clock epoch, so rewinding a timestamp can underflow early in the
  // process — aging forward is the robust way).
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  wd.evaluate({j}, obs::LatencySummary{}, nullptr);
  EXPECT_TRUE(wd.degraded());
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_EQ(trips[0].kind, AnomalyKind::kStalledJob);
  EXPECT_EQ(trips[0].job, 7u);
  EXPECT_EQ(reg.counter("husg_anomaly_stalled_jobs_total", "").value(), 1u);
  EXPECT_EQ(wd.trips(), 1u);

  std::vector<Anomaly> active = wd.active();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_NE(active[0].detail.find("wedged"), std::string::npos);
  const std::uint64_t since = active[0].since_ns;

  // Still stalled next tick: no re-trip, since_ns is carried over.
  wd.evaluate({j}, obs::LatencySummary{}, nullptr);
  EXPECT_EQ(trips.size(), 1u);
  EXPECT_EQ(wd.active()[0].since_ns, since);

  // Fresh heartbeat clears it.
  j.last_tick_ns = obs::now_ns();
  wd.evaluate({j}, obs::LatencySummary{}, nullptr);
  EXPECT_FALSE(wd.degraded());
  EXPECT_TRUE(wd.active().empty());
  EXPECT_EQ(trips.size(), 1u);
}

TEST(WatchdogTest, SloBurnUsesP95AgainstTarget) {
  obs::Registry reg;
  WatchdogOptions wo;
  wo.slo_ms = 100;
  AnomalyWatchdog wd(wo, reg);

  obs::LatencySummary wall;
  wall.count = 10;
  wall.p95_seconds = 0.05;  // 50 ms: under target
  wd.evaluate({}, wall, nullptr);
  EXPECT_FALSE(wd.degraded());

  wall.p95_seconds = 0.5;  // 500 ms: SLO burn
  wd.evaluate({}, wall, nullptr);
  EXPECT_TRUE(wd.degraded());
  ASSERT_EQ(wd.active().size(), 1u);
  EXPECT_EQ(wd.active()[0].kind, AnomalyKind::kSloBurn);
  EXPECT_EQ(wd.active()[0].job, 0u) << "SLO burn is service-wide";
  EXPECT_EQ(reg.counter("husg_anomaly_slo_burn_total", "").value(), 1u);
}

TEST(WatchdogTest, CacheThrashNeedsFreshTrafficDelta) {
  obs::Registry reg;
  WatchdogOptions wo;
  wo.min_cache_lookups = 100;
  AnomalyWatchdog wd(wo, reg);

  CacheStats first;
  first.hits = 1000;
  first.misses = 100;
  wd.evaluate({}, obs::LatencySummary{}, &first);
  EXPECT_FALSE(wd.degraded()) << "first sample only seeds the delta";

  // Between ticks: all misses, evicting nearly every insert.
  CacheStats second = first;
  second.misses += 2000;
  second.insertions += 2000;
  second.evictions += 1990;
  wd.evaluate({}, obs::LatencySummary{}, &second);
  EXPECT_TRUE(wd.degraded());
  ASSERT_EQ(wd.active().size(), 1u);
  EXPECT_EQ(wd.active()[0].kind, AnomalyKind::kCacheThrash);
  EXPECT_EQ(reg.counter("husg_anomaly_cache_thrash_total", "").value(), 1u);

  // A healthy delta (hits, few evictions) clears it.
  CacheStats third = second;
  third.hits += 5000;
  third.insertions += 10;
  wd.evaluate({}, obs::LatencySummary{}, &third);
  EXPECT_FALSE(wd.degraded());
}

TEST(WatchdogTest, MispredictStreakRule) {
  obs::Registry reg;
  WatchdogOptions wo;
  wo.mispredict_streak = 4;
  AnomalyWatchdog wd(wo, reg);

  JobHealth j = healthy_job(3, "mispredicted");
  j.mispredict_streak = 3;
  wd.evaluate({j}, obs::LatencySummary{}, nullptr);
  EXPECT_FALSE(wd.degraded());

  j.mispredict_streak = 4;
  wd.evaluate({j}, obs::LatencySummary{}, nullptr);
  EXPECT_TRUE(wd.degraded());
  EXPECT_EQ(wd.active()[0].kind, AnomalyKind::kMispredictStreak);
  EXPECT_EQ(wd.active()[0].job, 3u);
  EXPECT_EQ(reg.counter("husg_anomaly_mispredict_streak_total", "").value(),
            1u);
}

TEST(WatchdogTest, ReadyzJsonIsParseableAndNamesTheJob) {
  obs::Registry reg;
  WatchdogOptions wo;
  wo.stall_ms = 10;
  AnomalyWatchdog wd(wo, reg);
  JobHealth j = healthy_job(9, "quoted \"name\"");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  wd.evaluate({j}, obs::LatencySummary{}, nullptr);

  const std::string json = wd.readyz_json();
  JsonValue root = parse_json(json, "readyz");
  EXPECT_EQ(root.get("status")->str, "degraded");
  ASSERT_EQ(root.get("reasons")->arr.size(), 1u);
  const JsonValue& reason = root.get("reasons")->arr[0];
  EXPECT_EQ(reason.get("kind")->str, "stalled_job");
  EXPECT_EQ(reason.get("job")->num, 9);
  EXPECT_NE(reason.get("detail")->str.find("job 9"), std::string::npos);
}

TEST(WatchdogTest, TripRecordsFlightEvent) {
  RecorderGuard guard(32);
  obs::Registry reg;
  WatchdogOptions wo;
  wo.stall_ms = 10;
  AnomalyWatchdog wd(wo, reg);
  JobHealth j = healthy_job(5, "stalled");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  wd.evaluate({j}, obs::LatencySummary{}, nullptr);

  bool saw_anomaly = false;
  for (const FlightEvent& e : FlightRecorder::instance().drain()) {
    if (e.type == FlightEventType::kAnomaly && e.job == 5) saw_anomaly = true;
  }
  EXPECT_TRUE(saw_anomaly);
}

// ---------------------------------------------------------------------------
// Postmortem bundles

TEST(BundleTest, WriteBundleJsonRoundTripsThroughParser) {
  RecorderGuard guard(32);
  FlightRecorder::instance().record(
      make_event(FlightEventType::kProgress, 11, 4));

  obs::BundleContext ctx;
  ctx.reason = "unit \"test\"";
  ctx.has_incident = true;
  ctx.incident.id = 11;
  ctx.incident.name = "timed-out-job";
  ctx.incident.status = "timed_out";
  ctx.incident.error = "deadline exceeded";
  ctx.incident.wall_seconds = 1.5;
  ctx.incident.iteration = 4;
  ctx.incident.last_tick_age_seconds = 0.25;
  Anomaly a;
  a.kind = AnomalyKind::kStalledJob;
  a.job = 11;
  a.detail = "job 11 silent";
  ctx.anomalies.push_back(a);
  JobView v;
  v.id = 12;
  v.name = "bystander";
  v.status = JobStatus::kRunning;
  v.algo = "pagerank";
  v.iteration = 2;
  ctx.jobs.push_back(v);
  ctx.has_stats = true;
  ctx.stats.submitted = 2;
  ctx.stats.timed_out = 1;
  obs::Registry reg;
  reg.counter("bundle_test_marker_total", "marker").inc(5);
  ctx.registry = &reg;

  std::ostringstream os;
  obs::write_bundle_json(os, ctx);
  JsonValue root = parse_json(os.str(), "bundle");

  EXPECT_EQ(root.get("bundle_version")->num, 1);
  EXPECT_EQ(root.get("reason")->str, "unit \"test\"");
  EXPECT_GT(root.get("written_ns")->num, 0);
  const JsonValue* inc = root.get("incident");
  ASSERT_NE(inc, nullptr);
  EXPECT_EQ(inc->get("name")->str, "timed-out-job");
  EXPECT_EQ(inc->get("status")->str, "timed_out");
  EXPECT_EQ(inc->get("iteration")->num, 4);
  ASSERT_EQ(root.get("anomalies")->arr.size(), 1u);
  EXPECT_EQ(root.get("anomalies")->arr[0].get("kind")->str, "stalled_job");
  const JsonValue* jobs = root.get("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_EQ(jobs->get("jobs")->arr.size(), 1u);
  EXPECT_EQ(jobs->get("jobs")->arr[0].get("name")->str, "bystander");
  EXPECT_EQ(root.get("service")->get("timed_out")->num, 1);
  EXPECT_EQ(root.get("flight")->get("recorded")->num, 1);
  ASSERT_EQ(root.get("flight_events")->arr.size(), 1u);
  EXPECT_EQ(root.get("flight_events")->arr[0].get("job")->num, 11);
  EXPECT_NE(root.get("metrics_prom")->str.find("bundle_test_marker_total 5"),
            std::string::npos);
}

TEST(PostmortemWriterTest, WritesFilesAndPrunesOldest) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("husg_bundle_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  obs::PostmortemWriter::Options po;
  po.dir = dir;
  po.max_bundles = 2;
  obs::PostmortemWriter writer(po, [](const std::string& reason) {
    obs::BundleContext ctx;
    ctx.reason = reason;
    return ctx;
  });

  std::vector<fs::path> written;
  for (int k = 0; k < 4; ++k) {
    fs::path p = writer.write("watchdog-stalled_job");
    ASSERT_FALSE(p.empty());
    written.push_back(p);
  }
  EXPECT_EQ(writer.bundles_written(), 4u);

  std::size_t remaining = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++remaining;
  }
  EXPECT_EQ(remaining, 2u) << "oldest bundles past max_bundles must be pruned";
  EXPECT_TRUE(fs::exists(written.back()));

  // Each surviving file parses and carries the reason.
  std::ifstream in(written.back());
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue root = parse_json(buf.str(), "bundle-file");
  EXPECT_EQ(root.get("reason")->str, "watchdog-stalled_job");
  fs::remove_all(dir);
}

TEST(PostmortemWriterTest, EmptyDirDisablesFilesButServesJson) {
  obs::PostmortemWriter writer(obs::PostmortemWriter::Options{},
                               [](const std::string& reason) {
                                 obs::BundleContext ctx;
                                 ctx.reason = reason;
                                 return ctx;
                               });
  EXPECT_TRUE(writer.write("nope").empty());
  EXPECT_EQ(writer.bundles_written(), 0u);
  JsonValue root = parse_json(writer.bundle_json("debug"), "bundle");
  EXPECT_EQ(root.get("reason")->str, "debug");
}

// ---------------------------------------------------------------------------
// util/json parser (extracted from jobs_json; shared by the bundle readers)

TEST(JsonParserTest, ParsesScalarsContainersAndReportsContext) {
  JsonValue v = parse_json(
      "{\"a\": [1, 2.5, -3], \"b\": {\"nested\": true}, \"c\": null, "
      "\"s\": \"hi\\n\"}",
      "inline");
  EXPECT_EQ(v.get("a")->arr.size(), 3u);
  EXPECT_EQ(v.get("a")->arr[1].num, 2.5);
  EXPECT_EQ(v.get("a")->arr[2].num, -3);
  EXPECT_TRUE(v.get("b")->get("nested")->b);
  EXPECT_EQ(v.get("c")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.get("s")->str, "hi\n");
  EXPECT_EQ(v.get("missing"), nullptr);

  try {
    parse_json("{\"a\": }", "ctx-name");
    FAIL() << "expected DataError";
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx-name"), std::string::npos);
  }
}

}  // namespace
}  // namespace husg
