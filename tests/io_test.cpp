#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "io/buffered.hpp"
#include "io/device.hpp"
#include "io/file.hpp"
#include "io/io_stats.hpp"
#include "io/tracked_file.hpp"
#include "test_util.hpp"

namespace husg {
namespace {

using testing::ScratchDir;

TEST(File, WriteReadRoundTrip) {
  ScratchDir dir("file");
  File w(dir / "a.bin", File::Mode::kWrite);
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  w.pwrite_exact(data.data(), data.size() * sizeof(int), 0);
  w.close();

  File r(dir / "a.bin", File::Mode::kRead);
  EXPECT_EQ(r.size(), 100 * sizeof(int));
  std::vector<int> back(100);
  r.pread_exact(back.data(), back.size() * sizeof(int), 0);
  EXPECT_EQ(back, data);
}

TEST(File, ShortReadThrows) {
  ScratchDir dir("file2");
  File w(dir / "b.bin", File::Mode::kWrite);
  char c = 'x';
  w.pwrite_exact(&c, 1, 0);
  w.close();
  File r(dir / "b.bin", File::Mode::kRead);
  char buf[16];
  EXPECT_THROW(r.pread_exact(buf, 16, 0), IoError);
}

TEST(File, OpenMissingThrows) {
  ScratchDir dir("file3");
  EXPECT_THROW(File(dir / "missing.bin", File::Mode::kRead), IoError);
}

TEST(File, AppendAdvancesCursor) {
  ScratchDir dir("file4");
  File f(dir / "c.bin", File::Mode::kReadWrite);
  EXPECT_EQ(f.append("abc", 3), 0u);
  EXPECT_EQ(f.append("de", 2), 3u);
  EXPECT_EQ(f.size(), 5u);
}

TEST(File, MoveTransfersOwnership) {
  ScratchDir dir("file5");
  File a(dir / "d.bin", File::Mode::kWrite);
  a.pwrite_exact("hi", 2, 0);
  File b = std::move(a);
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_TRUE(b.is_open());
  EXPECT_EQ(b.size(), 2u);
}

// --- IoStats -----------------------------------------------------------------

TEST(IoStats, CountersAccumulate) {
  IoStats s;
  s.add_seq_read(100);
  s.add_seq_read(50);
  s.add_rand_read(8);
  s.add_write(20);
  IoSnapshot snap = s.snapshot();
  EXPECT_EQ(snap.seq_read_bytes, 150u);
  EXPECT_EQ(snap.seq_read_ops, 2u);
  EXPECT_EQ(snap.rand_read_bytes, 8u);
  EXPECT_EQ(snap.rand_read_ops, 1u);
  EXPECT_EQ(snap.write_bytes, 20u);
  EXPECT_EQ(snap.total_read_bytes(), 158u);
  EXPECT_EQ(snap.total_bytes(), 178u);
  EXPECT_EQ(snap.total_ops(), 4u);
}

TEST(IoStats, SnapshotDiff) {
  IoStats s;
  s.add_seq_read(100);
  IoSnapshot before = s.snapshot();
  s.add_seq_read(40);
  s.add_rand_read(4);
  IoSnapshot delta = s.snapshot() - before;
  EXPECT_EQ(delta.seq_read_bytes, 40u);
  EXPECT_EQ(delta.rand_read_bytes, 4u);
  EXPECT_EQ(delta.seq_read_ops, 1u);
}

TEST(IoStats, PlusEquals) {
  IoSnapshot a, b;
  a.seq_read_bytes = 10;
  a.write_ops = 2;
  b.seq_read_bytes = 5;
  b.write_ops = 1;
  a += b;
  EXPECT_EQ(a.seq_read_bytes, 15u);
  EXPECT_EQ(a.write_ops, 3u);
}

// --- TrackedFile ---------------------------------------------------------------

TEST(TrackedFile, ClassifiesAccess) {
  ScratchDir dir("tracked");
  IoStats stats;
  {
    TrackedFile f(dir / "t.bin", File::Mode::kWrite, &stats);
    std::vector<char> big(10000, 'a');
    f.write(big.data(), big.size(), 0);
  }
  TrackedFile f(dir / "t.bin", File::Mode::kRead, &stats);
  char buf[100];
  f.read_random(buf, 100, 50);
  f.read_sequential(buf, 100, 0);
  IoSnapshot s = stats.snapshot();
  EXPECT_EQ(s.write_bytes, 10000u);
  EXPECT_EQ(s.rand_read_bytes, 100u);
  EXPECT_EQ(s.seq_read_bytes, 100u);
  EXPECT_EQ(s.rand_read_ops, 1u);
  EXPECT_EQ(s.seq_read_ops, 1u);
}

// --- Device model -----------------------------------------------------------------

TEST(DeviceProfile, ModeledSecondsComposition) {
  DeviceProfile d;
  d.seq_read_bw = 100e6;
  d.rand_read_bw = 100e6;
  d.write_bw = 50e6;
  d.seek_seconds = 0.01;
  IoSnapshot io;
  io.seq_read_bytes = 100'000'000;  // 1 s
  io.rand_read_bytes = 50'000'000;  // 0.5 s transfer
  io.rand_read_ops = 10;            // 0.1 s seeks
  io.write_bytes = 50'000'000;      // 1 s
  EXPECT_NEAR(d.modeled_seconds(io), 2.6, 1e-9);
}

TEST(DeviceProfile, HddRandomMuchSlowerThanSequential) {
  DeviceProfile hdd = DeviceProfile::hdd7200();
  // At 4 KiB requests an HDD delivers well under 1 MB/s effective.
  EXPECT_LT(hdd.t_random(4096), 1e6);
  EXPECT_GT(hdd.t_sequential(), 1e8);
}

TEST(DeviceProfile, SsdNarrowsRandomPenalty) {
  DeviceProfile hdd = DeviceProfile::hdd7200();
  DeviceProfile ssd = DeviceProfile::sata_ssd();
  double hdd_ratio = hdd.t_sequential() / hdd.t_random(4096);
  double ssd_ratio = ssd.t_sequential() / ssd.t_random(4096);
  EXPECT_GT(hdd_ratio, 50.0);
  EXPECT_LT(ssd_ratio, 10.0);
}

TEST(DeviceProfile, NullDeviceModelsZero) {
  IoSnapshot io;
  io.seq_read_bytes = 1 << 30;
  io.rand_read_ops = 1000;
  EXPECT_EQ(DeviceProfile::null_device().modeled_seconds(io), 0.0);
}

// --- Buffered streaming -------------------------------------------------------------

TEST(Buffered, StreamRecordsInChunks) {
  ScratchDir dir("buf");
  IoStats stats;
  std::vector<std::uint64_t> data(10000);
  std::iota(data.begin(), data.end(), 0);
  {
    TrackedFile f(dir / "r.bin", File::Mode::kWrite, &stats);
    f.write(data.data(), data.size() * sizeof(std::uint64_t), 0);
  }
  TrackedFile f(dir / "r.bin", File::Mode::kRead, &stats);
  std::vector<std::uint64_t> seen;
  stream_records<std::uint64_t>(
      f, 0, data.size() * sizeof(std::uint64_t),
      [&](const std::uint64_t& r) { seen.push_back(r); },
      /*chunk=*/4096);
  EXPECT_EQ(seen, data);
  // 80000 bytes at 4096-per-chunk => 20 sequential ops.
  EXPECT_EQ(stats.snapshot().seq_read_ops, 20u);
}

TEST(Buffered, StreamRecordsRejectsMisalignedRegion) {
  ScratchDir dir("buf2");
  IoStats stats;
  TrackedFile f(dir / "r.bin", File::Mode::kReadWrite, &stats);
  char zeros[16] = {};
  f.write(zeros, 16, 0);
  EXPECT_THROW(stream_records<std::uint64_t>(f, 0, 12, [](auto&) {}),
               DataError);
}

TEST(Buffered, RecordWriterFlushes) {
  ScratchDir dir("buf3");
  IoStats stats;
  {
    TrackedFile f(dir / "w.bin", File::Mode::kReadWrite, &stats);
    RecordWriter<std::uint32_t> w(f, /*chunk=*/64);
    for (std::uint32_t i = 0; i < 100; ++i) w.push(i);
    EXPECT_EQ(w.records_written(), 100u);
  }
  TrackedFile f(dir / "w.bin", File::Mode::kRead, &stats);
  EXPECT_EQ(f.size(), 400u);
  std::vector<std::uint32_t> back(100);
  f.read_sequential(back.data(), 400, 0);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(back[i], i);
}

}  // namespace
}  // namespace husg
