// Tests for the concurrent graph service (src/service/): scheduler admission
// and dispatch against stub runners (priority order, typed backpressure,
// reservation accounting, cancellation and timeouts), the GraphService
// end-to-end contract (concurrent results bit-identical to serial runs,
// timeout cancellation with the service staying usable, scratch cleanup on
// unwind, cross-job cache sharing), and the jobs.json parser.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "husg/husg.hpp"
#include "test_util.hpp"

namespace husg {
namespace {

using testing::ScratchDir;

// --- Scheduler unit tests (stub runners, no store) -------------------------

/// Manually opened gate blocking stub jobs; every test opens its gates
/// before the scheduler is destroyed (stop() waits for running jobs).
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;

  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
};

JobResult stub_result(std::uint64_t edges = 0) {
  JobResult res;
  res.stats.edges_processed = edges;
  return res;
}

void spin_until(const std::function<bool()>& pred) {
  for (int k = 0; k < 10000 && !pred(); ++k) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(pred());
}

TEST(JobSchedulerTest, RunsJobsAndAggregatesLedger) {
  ThreadPool pool(3);
  Gate gate;  // holds both jobs running so the peak reservation is their sum
  JobScheduler sched(pool, {/*max_concurrent=*/2, /*max_queue=*/8,
                            /*memory_budget_bytes=*/1 << 20},
                     [&](const JobSpec&, JobId, const CancellationToken&) {
                       gate.wait();
                       return stub_result(100);
                     });
  JobSpec spec;
  spec.name = "a";
  JobTicket t1 = sched.submit(spec, 1000);
  spec.name = "b";
  JobTicket t2 = sched.submit(spec, 1000);
  ASSERT_TRUE(t1.accepted);
  ASSERT_TRUE(t2.accepted);
  EXPECT_NE(t1.id, t2.id);
  spin_until([&] { return sched.running_jobs() == 2; });
  gate.release();
  JobResult r1 = t1.result.get();
  JobResult r2 = t2.result.get();
  EXPECT_EQ(r1.status, JobStatus::kCompleted);
  EXPECT_EQ(r2.status, JobStatus::kCompleted);
  EXPECT_EQ(r1.name, "a");
  EXPECT_EQ(r2.name, "b");
  sched.wait_idle();
  ServiceStats st = sched.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.accepted, 2u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.edges_processed, 200u);
  EXPECT_EQ(sched.reserved_bytes(), 0u);
  EXPECT_EQ(st.peak_reserved_bytes, 2000u);
}

TEST(JobSchedulerTest, StrictPriorityWithFifoTies) {
  ThreadPool pool(2);
  Gate gate;
  std::mutex order_mu;
  std::vector<std::string> order;
  JobScheduler sched(pool, {/*max_concurrent=*/1, 16, 1 << 20},
                     [&](const JobSpec& spec, JobId,
                         const CancellationToken&) {
                       if (spec.name == "blocker") gate.wait();
                       std::lock_guard<std::mutex> lock(order_mu);
                       order.push_back(spec.name);
                       return stub_result();
                     });
  JobSpec spec;
  spec.name = "blocker";
  JobTicket blocker = sched.submit(spec, 0);
  spin_until([&] { return sched.running_jobs() == 1; });

  auto enqueue = [&](const std::string& name, int priority) {
    JobSpec s;
    s.name = name;
    s.priority = priority;
    ASSERT_TRUE(sched.submit(s, 0).accepted);
  };
  enqueue("low", 0);
  enqueue("high-1", 5);
  enqueue("high-2", 5);
  enqueue("mid", 1);
  gate.release();
  sched.wait_idle();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], "blocker");
  EXPECT_EQ(order[1], "high-1");  // highest priority first
  EXPECT_EQ(order[2], "high-2");  // FIFO within a priority class
  EXPECT_EQ(order[3], "mid");
  EXPECT_EQ(order[4], "low");
}

TEST(JobSchedulerTest, TypedRejections) {
  ThreadPool pool(2);
  Gate gate;
  JobScheduler sched(pool, {/*max_concurrent=*/1, /*max_queue=*/1,
                            /*memory_budget_bytes=*/1000},
                     [&](const JobSpec&, JobId, const CancellationToken&) {
                       gate.wait();
                       return stub_result();
                     });
  // Memory: an estimate that can never fit is rejected outright.
  JobTicket mem = sched.submit(JobSpec{}, 2000);
  EXPECT_FALSE(mem.accepted);
  EXPECT_EQ(mem.reject, RejectReason::kMemoryBudget);
  EXPECT_FALSE(mem.message.empty());

  // Queue: one running + one pending fills the queue; the next is rejected.
  ASSERT_TRUE(sched.submit(JobSpec{}, 100).accepted);
  spin_until([&] { return sched.running_jobs() == 1; });
  ASSERT_TRUE(sched.submit(JobSpec{}, 100).accepted);
  JobTicket full = sched.submit(JobSpec{}, 100);
  EXPECT_FALSE(full.accepted);
  EXPECT_EQ(full.reject, RejectReason::kQueueFull);

  gate.release();
  sched.wait_idle();

  // Shutdown: submits after stop() are rejected, not queued.
  sched.stop();
  JobTicket late = sched.submit(JobSpec{}, 100);
  EXPECT_FALSE(late.accepted);
  EXPECT_EQ(late.reject, RejectReason::kShuttingDown);
  ServiceStats st = sched.stats();
  EXPECT_EQ(st.rejected_memory, 1u);
  EXPECT_EQ(st.rejected_queue_full, 1u);
  EXPECT_EQ(st.rejected_shutdown, 1u);
}

TEST(JobSchedulerTest, MemoryShortfallBlocksUntilReservationReleases) {
  ThreadPool pool(3);
  Gate gate;
  JobScheduler sched(pool, {/*max_concurrent=*/2, 16,
                            /*memory_budget_bytes=*/100},
                     [&](const JobSpec&, JobId, const CancellationToken&) {
                       gate.wait();
                       return stub_result();
                     });
  JobTicket big = sched.submit(JobSpec{}, 80);
  ASSERT_TRUE(big.accepted);
  spin_until([&] { return sched.running_jobs() == 1; });
  EXPECT_EQ(sched.reserved_bytes(), 80u);

  // 80 + 50 > 100: accepted but must wait despite the free slot.
  JobTicket small = sched.submit(JobSpec{}, 50);
  ASSERT_TRUE(small.accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(sched.running_jobs(), 1u);
  EXPECT_EQ(sched.pending_jobs(), 1u);

  gate.release();
  EXPECT_EQ(small.result.get().status, JobStatus::kCompleted);
  sched.wait_idle();
  EXPECT_EQ(sched.reserved_bytes(), 0u);
}

TEST(JobSchedulerTest, FailedJobReleasesReservation) {
  ThreadPool pool(2);
  JobScheduler sched(pool, {1, 16, 1000},
                     [](const JobSpec&, JobId,
                        const CancellationToken&) -> JobResult {
                       throw DataError("boom");
                     });
  JobTicket t = sched.submit(JobSpec{}, 500);
  ASSERT_TRUE(t.accepted);
  JobResult res = t.result.get();
  EXPECT_EQ(res.status, JobStatus::kFailed);
  EXPECT_EQ(res.error, "boom");
  sched.wait_idle();
  EXPECT_EQ(sched.reserved_bytes(), 0u);
  EXPECT_EQ(sched.stats().failed, 1u);
}

TEST(JobSchedulerTest, CancelPendingAndRunning) {
  ThreadPool pool(2);
  Gate gate;
  JobScheduler sched(
      pool, {/*max_concurrent=*/1, 16, 1 << 20},
      [&](const JobSpec& spec, JobId, const CancellationToken& token) {
        if (spec.name == "blocker") gate.wait();
        for (;;) {  // cooperative job: poll until cancelled
          token.check();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return stub_result();
      });
  JobSpec spec;
  spec.name = "blocker";
  JobTicket running = sched.submit(spec, 0);
  spec.name = "queued";
  JobTicket pending = sched.submit(spec, 0);
  ASSERT_TRUE(running.accepted);
  ASSERT_TRUE(pending.accepted);
  spin_until([&] { return sched.running_jobs() == 1; });

  // Pending: future completes immediately, runner never sees it.
  EXPECT_TRUE(sched.cancel(pending.id));
  JobResult pres = pending.result.get();
  EXPECT_EQ(pres.status, JobStatus::kCancelled);

  // Running: token fires, job unwinds at its next check.
  gate.release();
  EXPECT_TRUE(sched.cancel(running.id));
  JobResult rres = running.result.get();
  EXPECT_EQ(rres.status, JobStatus::kCancelled);

  EXPECT_FALSE(sched.cancel(running.id));  // already terminal
  EXPECT_FALSE(sched.cancel(JobId{9999}));
  sched.wait_idle();
  EXPECT_EQ(sched.stats().cancelled, 2u);
}

TEST(JobSchedulerTest, DeadlineFiresTimeout) {
  ThreadPool pool(2);
  JobScheduler sched(
      pool, {1, 16, 1 << 20},
      [](const JobSpec&, JobId, const CancellationToken& token) {
        for (;;) {
          token.check();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return stub_result();
      });
  JobSpec spec;
  spec.timeout_ms = 50;
  JobTicket t = sched.submit(spec, 0);
  ASSERT_TRUE(t.accepted);
  JobResult res = t.result.get();
  EXPECT_EQ(res.status, JobStatus::kTimedOut);
  sched.wait_idle();
  EXPECT_EQ(sched.stats().timed_out, 1u);

  // The scheduler stays usable after a timeout.
  JobSpec ok;
  JobTicket t2 = sched.submit(ok, 0);
  ASSERT_TRUE(t2.accepted);
  sched.cancel(t2.id);  // runner loops forever; cancel to finish the test
  t2.result.wait();
}

TEST(JobSchedulerTest, StopCancelsQueuedAndRunning) {
  ThreadPool pool(2);
  JobScheduler sched(
      pool, {1, 16, 1 << 20},
      [](const JobSpec&, JobId, const CancellationToken& token) {
        for (;;) {
          token.check();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return stub_result();
      });
  JobTicket running = sched.submit(JobSpec{}, 0);
  JobTicket queued = sched.submit(JobSpec{}, 0);
  spin_until([&] { return sched.running_jobs() == 1; });
  sched.stop();
  EXPECT_EQ(running.result.get().status, JobStatus::kCancelled);
  EXPECT_EQ(queued.result.get().status, JobStatus::kCancelled);
  sched.stop();  // idempotent
}

// --- GraphService end-to-end -----------------------------------------------

ServiceOptions small_service_options() {
  ServiceOptions so;
  so.max_concurrent_jobs = 2;
  so.threads_per_job = 2;
  so.cache_budget_bytes = 8ull << 20;
  return so;
}

TEST(GraphServiceTest, ConcurrentResultsBitIdenticalToSerial) {
  ScratchDir scratch("service_serial");
  EdgeList g = gen::rmat(10, 8.0, /*seed=*/7);
  StoreOptions sopt;
  sopt.num_partitions = 4;
  DualBlockStore store = DualBlockStore::build(g, scratch / "store", sopt);

  // Serial oracles: one private engine per algorithm, no shared cache.
  EngineOptions eo;
  eo.threads = 2;
  auto serial_pr = [&] {
    EngineOptions o = eo;
    o.max_iterations = 5;
    Engine e(store, o);
    return e.run(PageRankProgram{},
                 Frontier::all(store.meta(), store.out_degrees()));
  }();
  auto serial_bfs = [&] {
    Engine e(store, eo);
    BfsProgram p;
    p.source = 3;
    return e.run(p, Frontier::single(store.meta(), 3, store.out_degrees()));
  }();

  GraphService service(store, small_service_options());
  std::vector<JobTicket> tickets;
  for (int round = 0; round < 2; ++round) {
    JobSpec pr;
    pr.name = "pr";
    pr.algo = ServiceAlgo::kPageRank;
    tickets.push_back(service.submit(pr));
    JobSpec bfs;
    bfs.name = "bfs";
    bfs.algo = ServiceAlgo::kBfs;
    bfs.source = 3;
    tickets.push_back(service.submit(bfs));
  }
  for (std::size_t k = 0; k < tickets.size(); ++k) {
    ASSERT_TRUE(tickets[k].accepted);
    JobResult res = tickets[k].result.get();
    ASSERT_EQ(res.status, JobStatus::kCompleted) << res.error;
    const bool is_pr = res.name == "pr";
    const auto& prv = serial_pr.values;
    const auto& bfv = serial_bfs.values;
    ASSERT_EQ(res.values.size(), store.meta().num_vertices);
    for (std::size_t v = 0; v < res.values.size(); ++v) {
      // Widening float/uint32 to double is exact, so equality is bitwise.
      double expect = is_pr ? static_cast<double>(prv[v])
                            : static_cast<double>(bfv[v]);
      ASSERT_EQ(res.values[v], expect)
          << res.name << " diverged at vertex " << v;
    }
  }
  ServiceStats st = service.stats();
  EXPECT_EQ(st.completed, 4u);
  // The repeated rounds hit blocks the other jobs (different owners)
  // inserted: the shared cache demonstrably serves cross-job traffic.
  EXPECT_GT(st.cache.cross_job_hits, 0u);
}

TEST(GraphServiceTest, TimeoutCancelsAndServiceStaysUsable) {
  ScratchDir scratch("service_timeout");
  // A chain's BFS runs diameter-many iterations (65535 here), each with real
  // value-store I/O — far beyond a 100 ms budget, so the deadline always
  // fires mid-run regardless of machine speed.
  EdgeList g = gen::chain(VertexId{1} << 16);
  StoreOptions sopt;
  sopt.num_partitions = 4;
  DualBlockStore store = DualBlockStore::build(g, scratch / "store", sopt);

  GraphService service(store, small_service_options());
  JobSpec slow;
  slow.name = "slow-bfs";
  slow.algo = ServiceAlgo::kBfs;
  slow.timeout_ms = 100;
  JobTicket t = service.submit(slow);
  ASSERT_TRUE(t.accepted);
  JobResult res = t.result.get();
  EXPECT_EQ(res.status, JobStatus::kTimedOut);
  EXPECT_FALSE(res.error.empty());
  EXPECT_TRUE(res.values.empty());

  // Partial-result teardown: the cancelled engine removed its scratch value
  // file on unwind.
  for (const auto& entry :
       std::filesystem::directory_iterator(scratch / "store")) {
    EXPECT_FALSE(entry.path().filename().string().starts_with("values_"))
        << "leaked scratch file: " << entry.path();
  }

  // The service keeps serving after a timeout.
  JobSpec quick;
  quick.name = "spmv";
  quick.algo = ServiceAlgo::kSpmv;
  JobTicket t2 = service.submit(quick);
  ASSERT_TRUE(t2.accepted);
  EXPECT_EQ(t2.result.get().status, JobStatus::kCompleted);
  ServiceStats st = service.stats();
  EXPECT_EQ(st.timed_out, 1u);
  EXPECT_EQ(st.completed, 1u);
}

TEST(GraphServiceTest, TimeoutEmitsPostmortemBundle) {
  ScratchDir scratch("service_timeout_bundle");
  EdgeList g = gen::chain(VertexId{1} << 16);
  StoreOptions sopt;
  sopt.num_partitions = 4;
  DualBlockStore store = DualBlockStore::build(g, scratch / "store", sopt);

  ServiceOptions so = small_service_options();
  so.bundle_dir = scratch / "bundles";
  GraphService service(store, so);
  JobSpec slow;
  slow.name = "slow-bfs";
  slow.algo = ServiceAlgo::kBfs;
  slow.timeout_ms = 100;
  JobTicket t = service.submit(slow);
  ASSERT_TRUE(t.accepted);
  EXPECT_EQ(t.result.get().status, JobStatus::kTimedOut);

  // The incident hook fires on the scheduler thread after the result promise
  // is fulfilled; poll briefly for the bundle file to land.
  auto find_bundle = [&]() -> std::filesystem::path {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(so.bundle_dir, ec)) {
      if (entry.path().filename().string().ends_with(".bundle.json")) {
        return entry.path();
      }
    }
    return {};
  };
  spin_until([&] { return !find_bundle().empty(); });
  const std::filesystem::path bundle = find_bundle();

  std::ifstream in(bundle);
  ASSERT_TRUE(in.good()) << bundle;
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonValue doc = parse_json(buf.str(), bundle.string());
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);

  const JsonValue* reason = doc.get("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_EQ(reason->str, "job-timed_out");

  // The incident section names the job that timed out.
  const JsonValue* inc = doc.get("incident");
  ASSERT_NE(inc, nullptr);
  ASSERT_NE(inc->get("id"), nullptr);
  ASSERT_NE(inc->get("status"), nullptr);
  EXPECT_EQ(static_cast<JobId>(inc->get("id")->num), t.id);
  EXPECT_EQ(inc->get("name")->str, "slow-bfs");
  EXPECT_EQ(inc->get("status")->str, "timed_out");

  // The bundle's service counters agree with the live ServiceStats (the jobs
  // table only lists queued/running jobs; the terminal job is the incident).
  ServiceStats st = service.stats();
  const JsonValue* svc = doc.get("service");
  ASSERT_NE(svc, nullptr);
  ASSERT_NE(svc->get("timed_out"), nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(svc->get("timed_out")->num),
            st.timed_out);
  EXPECT_EQ(st.timed_out, 1u);
}

TEST(GraphServiceTest, ExplicitCancelMidRun) {
  ScratchDir scratch("service_cancel");
  EdgeList g = gen::chain(VertexId{1} << 16);
  StoreOptions sopt;
  sopt.num_partitions = 4;
  DualBlockStore store = DualBlockStore::build(g, scratch / "store", sopt);

  GraphService service(store, small_service_options());
  JobSpec slow;
  slow.algo = ServiceAlgo::kBfs;
  JobTicket t = service.submit(slow);
  ASSERT_TRUE(t.accepted);
  // Let it get underway, then cancel.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(service.cancel(t.id));
  JobResult res = t.result.get();
  EXPECT_EQ(res.status, JobStatus::kCancelled);
  service.wait_idle();
  EXPECT_EQ(service.reserved_bytes(), 0u);
}

TEST(GraphServiceTest, MemoryBudgetRejectsOversizedJob) {
  ScratchDir scratch("service_reject");
  EdgeList g = gen::rmat(10, 8.0, 7);
  StoreOptions sopt;
  sopt.num_partitions = 4;
  DualBlockStore store = DualBlockStore::build(g, scratch / "store", sopt);

  ServiceOptions so = small_service_options();
  so.memory_budget_bytes = 1024;  // far below any real working set
  GraphService service(store, so);
  JobSpec spec;
  spec.algo = ServiceAlgo::kPageRank;
  EXPECT_GT(service.estimate_bytes(spec), so.memory_budget_bytes);
  JobTicket t = service.submit(spec);
  EXPECT_FALSE(t.accepted);
  EXPECT_EQ(t.reject, RejectReason::kMemoryBudget);
  EXPECT_EQ(service.stats().rejected_memory, 1u);
}

TEST(GraphServiceTest, EstimateChargesAccumulatorForGatherAlgos) {
  ScratchDir scratch("service_estimate");
  EdgeList g = gen::rmat(9, 8.0, 7);
  StoreOptions sopt;
  sopt.num_partitions = 4;
  DualBlockStore store = DualBlockStore::build(g, scratch / "store", sopt);
  JobSpec bfs;
  bfs.algo = ServiceAlgo::kBfs;
  JobSpec pr;
  pr.algo = ServiceAlgo::kPageRank;
  std::uint64_t n = store.meta().num_vertices;
  std::uint64_t b = estimate_job_bytes(store.meta(), bfs, 2);
  std::uint64_t p = estimate_job_bytes(store.meta(), pr, 2);
  EXPECT_GE(b, 2 * n * 4);  // at least the two value arrays
  EXPECT_EQ(p, b + n * 4);  // plus the gather accumulator
}

// --- jobs.json -------------------------------------------------------------

TEST(JobsJsonTest, ParsesFullSchema) {
  std::vector<JobSpec> jobs = parse_jobs_json(R"({
    "jobs": [
      {"name": "ranks", "algo": "pagerank", "iterations": 5, "priority": 2},
      {"algo": "bfs", "source": 42, "timeout_ms": 1500, "mode": "rop"}
    ]
  })");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "ranks");
  EXPECT_EQ(jobs[0].algo, ServiceAlgo::kPageRank);
  EXPECT_EQ(jobs[0].max_iterations, 5);
  EXPECT_EQ(jobs[0].priority, 2);
  EXPECT_EQ(jobs[1].name, "job1");  // defaulted
  EXPECT_EQ(jobs[1].algo, ServiceAlgo::kBfs);
  EXPECT_EQ(jobs[1].source, 42u);
  EXPECT_EQ(jobs[1].timeout_ms, 1500);
  EXPECT_EQ(jobs[1].mode, UpdateMode::kRop);
}

TEST(JobsJsonTest, AcceptsTopLevelArray) {
  std::vector<JobSpec> jobs = parse_jobs_json(R"([{"algo": "wcc"}])");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].algo, ServiceAlgo::kWcc);
}

TEST(JobsJsonTest, RejectsSchemaViolations) {
  EXPECT_THROW(parse_jobs_json(R"([{"algo": "dijkstra"}])"), DataError);
  EXPECT_THROW(parse_jobs_json(R"([{"name": "x"}])"), DataError);  // no algo
  EXPECT_THROW(parse_jobs_json(R"([{"algo": "bfs", "sourcee": 1}])"),
               DataError);  // typoed key must not silently default
  EXPECT_THROW(parse_jobs_json(R"([{"algo": "bfs", "source": -1}])"),
               DataError);
  EXPECT_THROW(parse_jobs_json(R"([{"algo": "bfs", "iterations": 1.5}])"),
               DataError);
  EXPECT_THROW(parse_jobs_json(R"({"not_jobs": []})"), DataError);
  EXPECT_THROW(parse_jobs_json("[{"), DataError);
  EXPECT_THROW(parse_jobs_json(R"([{"algo": "bfs"}] trailing)"), DataError);
}

}  // namespace
}  // namespace husg
