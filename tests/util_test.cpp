#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "util/bitmap.hpp"
#include "util/format.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace husg {
namespace {

// --- Bitmap -------------------------------------------------------------------

TEST(Bitmap, SetGetClear) {
  Bitmap b(130);
  EXPECT_EQ(b.count(), 0u);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.get(0));
  EXPECT_TRUE(b.get(63));
  EXPECT_TRUE(b.get(64));
  EXPECT_TRUE(b.get(129));
  EXPECT_FALSE(b.get(1));
  EXPECT_EQ(b.count(), 4u);
  b.clear(63);
  EXPECT_FALSE(b.get(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitmap, SetAllMasksTail) {
  Bitmap b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
}

TEST(Bitmap, ForEachSetRange) {
  Bitmap b(200);
  std::set<std::size_t> expected = {3, 64, 65, 127, 128, 199};
  for (auto i : expected) b.set(i);
  std::set<std::size_t> seen;
  b.for_each_set(0, 200, [&](std::size_t i) { seen.insert(i); });
  EXPECT_EQ(seen, expected);

  seen.clear();
  b.for_each_set(64, 128, [&](std::size_t i) { seen.insert(i); });
  EXPECT_EQ(seen, (std::set<std::size_t>{64, 65, 127}));
  EXPECT_EQ(b.count_range(64, 128), 3u);
}

TEST(Bitmap, ForEachSetEmptyRange) {
  Bitmap b(100);
  b.set(50);
  int calls = 0;
  b.for_each_set(50, 50, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(AtomicBitmap, SetReturnsTransition) {
  AtomicBitmap b(100);
  EXPECT_TRUE(b.set(42));
  EXPECT_FALSE(b.set(42));
  EXPECT_TRUE(b.get(42));
}

TEST(AtomicBitmap, SnapshotInto) {
  AtomicBitmap a(130);
  a.set(0);
  a.set(129);
  Bitmap b(130);
  a.snapshot_into(b);
  EXPECT_TRUE(b.get(0));
  EXPECT_TRUE(b.get(129));
  EXPECT_EQ(b.count(), 2u);
}

TEST(AtomicBitmap, SnapshotSizeMismatchThrows) {
  AtomicBitmap a(10);
  Bitmap b(11);
  EXPECT_THROW(a.snapshot_into(b), DataError);
}

// --- ThreadPool ----------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversAllIndices) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(1000, 7, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, ParallelForReusableAcrossCalls) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, 3, [&](std::size_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 50ull * (99 * 100 / 2));
}

TEST(ThreadPool, ParallelRangesPartition) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1003);
  pool.parallel_ranges(1003, [&](std::size_t lo, std::size_t hi, std::size_t) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(100, 1,
                                 [&](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  // Pool still usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(10, 1, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, 1, [](std::size_t) { FAIL(); });
  pool.parallel_ranges(0, [](std::size_t, std::size_t, std::size_t) { FAIL(); });
}

// --- RNG -----------------------------------------------------------------------

TEST(Rng, Deterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DoubleInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowBounds) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, FloatRange) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    float f = rng.next_float(2.0f, 5.0f);
    EXPECT_GE(f, 2.0f);
    EXPECT_LT(f, 5.0f);
  }
}

// --- Options ---------------------------------------------------------------------

TEST(Options, ParseForms) {
  // Note: a bare "--flag" consumes a following non-flag token as its value,
  // so positionals must precede flag-form options.
  const char* argv[] = {"prog",      "positional", "--alpha=0.07",
                        "--threads", "8",          "--verbose"};
  Options o = Options::parse(6, argv);
  EXPECT_DOUBLE_EQ(o.get_double("alpha", 0), 0.07);
  EXPECT_EQ(o.get_int("threads", 0), 8);
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_FALSE(o.get_bool("quiet", false));
  EXPECT_EQ(o.get("missing", "dflt"), "dflt");
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "positional");
}

// --- Format ----------------------------------------------------------------------

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(17), "17 B");
  EXPECT_EQ(human_bytes(1536), "1.50 KB");
  EXPECT_EQ(human_bytes(3ull << 30), "3.00 GB");
}

TEST(Format, HumanSeconds) {
  EXPECT_EQ(human_seconds(2.5), "2.50 s");
  EXPECT_EQ(human_seconds(0.0125), "12.50 ms");
  EXPECT_EQ(human_seconds(42e-6), "42.00 us");
}

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
}

}  // namespace
}  // namespace husg
