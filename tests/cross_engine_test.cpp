// Cross-engine equivalence property tests: every engine in the repository
// (HUS ROP / COP / Hybrid and the four baseline systems) must compute the
// same fixed points as the in-memory reference, across generator families,
// seeds and algorithms. These sweeps are the repository's strongest
// correctness net: a bug in any store format, update model or
// synchronization path shows up as a cross-engine mismatch.
#include <gtest/gtest.h>

#include "baselines/flashgraph/flash_engine.hpp"
#include "baselines/graphchi/chi_engine.hpp"
#include "baselines/gridgraph/grid_engine.hpp"
#include "baselines/xstream/xstream_engine.hpp"
#include "husg/husg.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace husg {
namespace {

using baselines::ChiEngine;
using baselines::ChiStore;
using baselines::GridEngine;
using baselines::GridStore;
using baselines::StartSet;
using baselines::XStreamEngine;
using baselines::XStreamStore;
using testing::ScratchDir;

struct GraphCase {
  std::string family;  // "rmat", "er", "web", "grid"
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<GraphCase>& info) {
  return info.param.family + "_s" + std::to_string(info.param.seed);
}

EdgeList make_graph(const GraphCase& c) {
  switch (c.family[0]) {
    case 'r':
      return gen::rmat(8, 6.0, c.seed);
    case 'e':
      return gen::erdos_renyi(200, 900, c.seed);
    case 'w':
      return gen::webgraph(8, 6.0, c.seed);
    default:
      return gen::grid2d(12, 18);
  }
}

std::vector<GraphCase> all_cases() {
  std::vector<GraphCase> cases;
  for (std::uint64_t seed : {1ULL, 17ULL, 99ULL}) {
    cases.push_back({"rmat", seed});
    cases.push_back({"er", seed});
  }
  cases.push_back({"web", 5});
  cases.push_back({"grid", 0});
  return cases;
}

/// Runs BFS on every engine, returns one value vector per engine.
template <class Prog>
std::vector<std::vector<typename Prog::Value>> run_everywhere(
    const EdgeList& g, const ScratchDir& dir, const Prog& prog,
    bool from_single, VertexId source) {
  std::vector<std::vector<typename Prog::Value>> results;

  auto hus_store = DualBlockStore::build(g, dir / "hus", StoreOptions{3});
  for (UpdateMode mode :
       {UpdateMode::kRop, UpdateMode::kCop, UpdateMode::kHybrid}) {
    EngineOptions o;
    o.mode = mode;
    o.threads = 2;
    Engine e(hus_store, o);
    Frontier f = from_single
                     ? Frontier::single(hus_store.meta(), source,
                                        hus_store.out_degrees())
                     : Frontier::all(hus_store.meta(), hus_store.out_degrees());
    results.push_back(e.run(prog, f).values);
  }

  StartSet start = from_single ? StartSet::single(source) : StartSet::all();
  {
    auto store = GridStore::build(g, dir / "grid", 3);
    results.push_back(
        GridEngine(store, GridEngine::Options{}).run(prog, start).values);
  }
  {
    auto store = ChiStore::build(g, dir / "chi", 3);
    results.push_back(
        ChiEngine(store, ChiEngine::Options{}).run(prog, start).values);
  }
  {
    auto store = XStreamStore::build(g, dir / "xs", 3);
    results.push_back(
        XStreamEngine(store, XStreamEngine::Options{}).run(prog, start).values);
  }
  {
    auto store = baselines::FlashStore::build(g, dir / "flash");
    results.push_back(baselines::FlashEngine(
                          store, baselines::FlashEngine::Options{})
                          .run(prog, start)
                          .values);
  }
  return results;
}

class CrossEngine : public ::testing::TestWithParam<GraphCase> {};

TEST_P(CrossEngine, BfsAgreesEverywhere) {
  EdgeList g = make_graph(GetParam());
  ScratchDir dir("xe_bfs");
  VertexId source = 2 % g.num_vertices();
  auto all = run_everywhere(g, dir, BfsProgram{.source = source}, true, source);
  auto want = ref::bfs_levels(g, source);
  for (std::size_t e = 0; e < all.size(); ++e) {
    ASSERT_EQ(all[e].size(), want.size());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(all[e][v], want[v]) << "engine " << e << " vertex " << v;
    }
  }
}

TEST_P(CrossEngine, WccAgreesEverywhere) {
  EdgeList g = make_graph(GetParam()).symmetrized();
  ScratchDir dir("xe_wcc");
  auto all = run_everywhere(g, dir, WccProgram{}, false, 0);
  auto want = ref::wcc_labels(g);
  for (std::size_t e = 0; e < all.size(); ++e) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(all[e][v], want[v]) << "engine " << e << " vertex " << v;
    }
  }
}

TEST_P(CrossEngine, SsspAgreesEverywhere) {
  EdgeList g = gen::with_random_weights(make_graph(GetParam()), GetParam().seed);
  ScratchDir dir("xe_sssp");
  VertexId source = 2 % g.num_vertices();
  auto all =
      run_everywhere(g, dir, SsspProgram{.source = source}, true, source);
  auto want = ref::sssp_distances(g, source);
  for (std::size_t e = 0; e < all.size(); ++e) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (std::isinf(want[v])) {
        ASSERT_TRUE(std::isinf(all[e][v])) << "engine " << e << " vertex " << v;
      } else {
        ASSERT_NEAR(all[e][v], want[v], 1e-4)
            << "engine " << e << " vertex " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, CrossEngine, ::testing::ValuesIn(all_cases()),
                         case_name);

// --- New algorithm programs ---------------------------------------------------

TEST(MultiBfs, MatchesPerSourceReachability) {
  EdgeList g = gen::rmat(8, 5.0, 31);
  ScratchDir dir("mbfs");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  MultiBfsProgram prog;
  prog.roots = {0, 7, 50, 199};
  Engine engine(store, EngineOptions{});
  // Frontier = all roots.
  AtomicBitmap bits(g.num_vertices());
  for (VertexId r : prog.roots) bits.set(r);
  auto frontier = Frontier::from_bits(store.meta(), bits, store.out_degrees());
  auto result = engine.run(prog, frontier);

  for (std::size_t i = 0; i < prog.roots.size(); ++i) {
    auto levels = ref::bfs_levels(g, prog.roots[i]);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      bool reached_ref = levels[v] != ref::kUnreachedLevel;
      bool reached_engine = (result.values[v] >> i) & 1;
      ASSERT_EQ(reached_engine, reached_ref)
          << "root " << prog.roots[i] << " vertex " << v;
    }
  }
}

TEST(MultiBfs, SixtyFourRootsInOnePass) {
  EdgeList g = gen::erdos_renyi(500, 3000, 41).symmetrized();
  ScratchDir dir("mbfs64");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  MultiBfsProgram prog;
  SplitMix64 rng(5);
  for (int i = 0; i < 64; ++i) {
    prog.roots.push_back(static_cast<VertexId>(rng.next_below(500)));
  }
  AtomicBitmap bits(g.num_vertices());
  for (VertexId r : prog.roots) bits.set(r);
  Engine engine(store, EngineOptions{});
  auto result = engine.run(
      prog, Frontier::from_bits(store.meta(), bits, store.out_degrees()));
  // Spot-check two roots exhaustively.
  for (std::size_t i : std::vector<std::size_t>{0, 63}) {
    auto levels = ref::bfs_levels(g, prog.roots[i]);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(((result.values[v] >> i) & 1) != 0,
                levels[v] != ref::kUnreachedLevel);
    }
  }
}

TEST(Eccentricity, LevelsMatchMaxReferenceBfsDistance) {
  EdgeList g = gen::rmat(8, 5.0, 83).symmetrized();
  ScratchDir dir("ecc");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  EccentricityProgram prog;
  prog.roots = {1, 10, 100, 200};
  AtomicBitmap bits(g.num_vertices());
  for (VertexId r : prog.roots) bits.set(r);
  Engine engine(store, EngineOptions{});  // Jacobi: levels == hop counts
  auto result = engine.run(
      prog, Frontier::from_bits(store.meta(), bits, store.out_degrees()));

  std::vector<std::vector<std::uint32_t>> levels;
  for (VertexId r : prog.roots) levels.push_back(ref::bfs_levels(g, r));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::uint32_t want = 0;
    std::uint64_t want_bits = 0;
    for (std::size_t i = 0; i < prog.roots.size(); ++i) {
      if (levels[i][v] != ref::kUnreachedLevel) {
        want = std::max(want, levels[i][v]);
        want_bits |= (1ULL << i);
      }
    }
    ASSERT_EQ(result.values[v].bits, want_bits) << "vertex " << v;
    if (want_bits != 0) {
      ASSERT_EQ(result.values[v].level, want) << "vertex " << v;
    }
  }
}

TEST(Eccentricity, DiameterLowerBoundOnChain) {
  // Chain of 40 with roots at both ends: the middle sees max distance ~20+,
  // the far ends see 39.
  EdgeList g = gen::chain(40).symmetrized();
  ScratchDir dir("ecc2");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  EccentricityProgram prog;
  prog.roots = {0, 39};
  AtomicBitmap bits(40);
  bits.set(0);
  bits.set(39);
  Engine engine(store, EngineOptions{});
  auto r = engine.run(
      prog, Frontier::from_bits(store.meta(), bits, store.out_degrees()));
  std::uint32_t diameter_bound = 0;
  for (VertexId v = 0; v < 40; ++v) {
    diameter_bound = std::max(diameter_bound, r.values[v].level);
  }
  EXPECT_EQ(diameter_bound, 39u);
}

class KCoreSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KCoreSweep, MembershipMatchesPeelingReference) {
  std::uint32_t k = GetParam();
  EdgeList g = gen::rmat(8, 6.0, 71).symmetrized();
  ScratchDir dir("kcore");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  KCoreProgram prog;
  prog.k = k;
  Engine engine(store, EngineOptions{});
  auto result = engine.run(prog, kcore_initial_frontier(store, k));
  auto want = ref::kcore_membership(g, k);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(result.values[v].removed == 0, want[v])
        << "k=" << k << " vertex " << v;
  }
}

TEST_P(KCoreSweep, CoresAreNested) {
  std::uint32_t k = GetParam();
  EdgeList g = gen::erdos_renyi(300, 2400, 73).symmetrized();
  ScratchDir dir("kcore2");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  Engine engine(store, EngineOptions{});
  KCoreProgram lo;
  lo.k = k;
  KCoreProgram hi;
  hi.k = k + 2;
  auto core_lo = engine.run(lo, kcore_initial_frontier(store, lo.k));
  auto core_hi = engine.run(hi, kcore_initial_frontier(store, hi.k));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (core_hi.values[v].removed == 0) {
      ASSERT_EQ(core_lo.values[v].removed, 0u)
          << "vertex " << v << " in " << hi.k << "-core but not " << lo.k
          << "-core";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KCoreSweep, ::testing::Values(2, 3, 5, 8));

TEST(Spmv, SingleIterationMatchesDirectComputation) {
  EdgeList g = gen::with_random_weights(gen::erdos_renyi(128, 700, 3), 3);
  ScratchDir dir("spmv");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  std::vector<float> x(g.num_vertices());
  SplitMix64 rng(9);
  for (auto& v : x) v = rng.next_float(-1.0f, 1.0f);

  SpmvProgram prog;
  prog.x = x;
  EngineOptions opts;
  opts.mode = UpdateMode::kCop;
  opts.max_iterations = 1;
  Engine engine(store, opts);
  auto result =
      engine.run(prog, Frontier::all(store.meta(), store.out_degrees()));

  std::vector<double> want(g.num_vertices(), 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    want[g.edge(e).dst] += static_cast<double>(g.weight(e)) * x[g.edge(e).src];
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NEAR(result.values[v], want[v], 1e-3) << "vertex " << v;
  }
}

TEST(Spmv, PowerIterationGrowsWithSpectralRadius) {
  // On the all-ones vector over a cycle, A^k * 1 = 1 for every k (each
  // vertex has exactly one in-edge of weight 1).
  EdgeList cyc(8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7},
                   {7, 0}});
  ScratchDir dir("spmv2");
  auto store = DualBlockStore::build(cyc, dir.path(), StoreOptions{2});
  SpmvProgram prog;
  EngineOptions opts;
  opts.mode = UpdateMode::kCop;
  opts.max_iterations = 5;
  Engine engine(store, opts);
  auto r = engine.run(prog, Frontier::all(store.meta(), store.out_degrees()));
  for (VertexId v = 0; v < 8; ++v) ASSERT_FLOAT_EQ(r.values[v], 1.0f);
}

}  // namespace
}  // namespace husg
