// Codec subsystem invariants: block codec roundtrips and negative cases,
// scratch-pool reuse, Bloom signature false-positive rate, and the skip
// filter's zero-I/O guarantee on provably inactive blocks.
#include <gtest/gtest.h>

#include <random>

#include "algos/bfs.hpp"
#include "codec/block_codec.hpp"
#include "codec/block_signature.hpp"
#include "codec/skip_filter.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "obs/heatmap.hpp"
#include "storage/store.hpp"
#include "test_util.hpp"
#include "util/varint.hpp"

namespace husg {
namespace {

using testing::ScratchDir;

// --- varint64 / zigzag helpers ------------------------------------------------

TEST(Varint64, RoundTripAndZigzag) {
  std::vector<char> out;
  std::vector<std::uint64_t> values = {0, 1, 127, 128, 1ull << 20, 1ull << 40,
                                       ~0ull};
  for (auto v : values) varint64_encode(v, out);
  std::size_t pos = 0;
  for (auto v : values) {
    EXPECT_EQ(varint64_decode(out.data(), out.size(), pos), v);
  }
  EXPECT_EQ(pos, out.size());
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
                         std::int64_t{-123456}, std::int64_t{1} << 40}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

// --- Block codec roundtrip -----------------------------------------------------

/// Random CSR block: `runs` runs over ids < max_id, each sorted or shuffled.
struct RandomBlock {
  std::vector<VertexId> ids;
  std::vector<std::uint32_t> offsets;  // runs + 1 entries
};

RandomBlock make_block(std::mt19937_64& rng, std::size_t runs, VertexId max_id,
                       bool sorted, double empty_fraction = 0.2) {
  RandomBlock b;
  b.offsets.push_back(0);
  std::uniform_int_distribution<VertexId> id(0, max_id);
  std::uniform_int_distribution<int> len(1, 24);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (std::size_t r = 0; r < runs; ++r) {
    if (coin(rng) >= empty_fraction) {
      std::size_t n = static_cast<std::size_t>(len(rng));
      std::vector<VertexId> run;
      for (std::size_t k = 0; k < n; ++k) run.push_back(id(rng));
      if (sorted) std::sort(run.begin(), run.end());
      b.ids.insert(b.ids.end(), run.begin(), run.end());
    }
    b.offsets.push_back(static_cast<std::uint32_t>(b.ids.size()));
  }
  return b;
}

class CodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTrip, RandomizedSortedAndUnsorted) {
  std::mt19937_64 rng(GetParam());
  std::vector<char> enc;
  std::vector<VertexId> dec;
  for (bool sorted : {true, false}) {
    for (std::size_t runs : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      RandomBlock b = make_block(rng, runs, /*max_id=*/1u << 20, sorted);
      encode_block(b.ids.data(), b.ids.size(), b.offsets.data(), runs, enc);
      ASSERT_EQ(decode_block(enc.data(), enc.size(), dec), b.ids.size());
      EXPECT_EQ(dec, b.ids) << (sorted ? "sorted" : "unsorted") << " runs="
                            << runs;
      if (!b.ids.empty()) {
        // Header accounting: encoded_bytes + header == total size.
        ASSERT_GE(enc.size(), sizeof(CodecBlockHeader));
        CodecBlockHeader hdr;
        std::memcpy(&hdr, enc.data(), sizeof(hdr));
        EXPECT_EQ(hdr.magic, kCodecBlockMagic);
        EXPECT_EQ(hdr.raw_bytes, b.ids.size() * sizeof(VertexId));
        EXPECT_EQ(enc.size(), sizeof(hdr) + hdr.encoded_bytes);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip, ::testing::Values(1, 42, 777));

TEST(Codec, EmptyAndSingleVertexBlocks) {
  std::vector<char> enc;
  std::vector<VertexId> dec{99};
  // Empty block: zero on-disk bytes, decodes to zero ids.
  std::uint32_t offsets1[] = {0};
  encode_block(nullptr, 0, offsets1, 0, enc);
  EXPECT_TRUE(enc.empty());
  EXPECT_EQ(decode_block(enc.data(), enc.size(), dec), 0u);
  EXPECT_TRUE(dec.empty());
  // All-empty runs behave like an empty block.
  std::uint32_t offsets2[] = {0, 0, 0, 0};
  encode_block(nullptr, 0, offsets2, 3, enc);
  EXPECT_TRUE(enc.empty());
  // Single run of one id.
  VertexId one = 123456;
  std::uint32_t offsets3[] = {0, 1};
  encode_block(&one, 1, offsets3, 1, enc);
  ASSERT_FALSE(enc.empty());
  ASSERT_EQ(decode_block(enc.data(), enc.size(), dec), 1u);
  EXPECT_EQ(dec[0], one);
}

TEST(Codec, DeltaVarintShrinksSortedRuns) {
  // A dense sorted neighborhood must beat 4 bytes/id comfortably.
  std::vector<VertexId> ids;
  for (VertexId v = 1000; v < 3000; v += 2) ids.push_back(v);
  std::uint32_t offsets[] = {0, static_cast<std::uint32_t>(ids.size())};
  std::vector<char> enc;
  encode_block(ids.data(), ids.size(), offsets, 1, enc);
  EXPECT_LT(enc.size(), ids.size() * sizeof(VertexId) / 2);
}

TEST(Codec, CorruptedHeaderAndPayloadRejected) {
  std::mt19937_64 rng(5);
  RandomBlock b = make_block(rng, 16, 1u << 16, /*sorted=*/true, 0.0);
  std::vector<char> enc;
  std::vector<VertexId> dec;
  encode_block(b.ids.data(), b.ids.size(), b.offsets.data(), 16, enc);
  ASSERT_FALSE(enc.empty());

  auto corrupt = [&](std::size_t at, char mask) {
    std::vector<char> bad = enc;
    bad[at] = static_cast<char>(bad[at] ^ mask);
    return bad;
  };
  // Bad magic.
  auto bad_magic = corrupt(0, 0x01);
  EXPECT_THROW(decode_block(bad_magic.data(), bad_magic.size(), dec),
               DataError);
  // Unknown codec id.
  auto bad_codec = corrupt(4, 0x7F);
  EXPECT_THROW(decode_block(bad_codec.data(), bad_codec.size(), dec),
               DataError);
  // Tampered raw size.
  auto bad_raw = corrupt(8, 0x04);
  EXPECT_THROW(decode_block(bad_raw.data(), bad_raw.size(), dec), DataError);
  // Flipped payload byte: checksum must catch it.
  auto bad_payload = corrupt(sizeof(CodecBlockHeader) + enc.size() / 3, 0x10);
  EXPECT_THROW(decode_block(bad_payload.data(), bad_payload.size(), dec),
               DataError);
  // Truncation: header alone, and header + partial payload.
  EXPECT_THROW(decode_block(enc.data(), sizeof(CodecBlockHeader), dec),
               DataError);
  EXPECT_THROW(decode_block(enc.data(), enc.size() - 3, dec), DataError);
  // Short garbage that cannot even hold a header.
  EXPECT_THROW(decode_block(enc.data(), 7, dec), DataError);
  // The pristine buffer still decodes after all that.
  EXPECT_EQ(decode_block(enc.data(), enc.size(), dec), b.ids.size());
}

TEST(Codec, ScratchPoolRecyclesBuffers) {
  ScratchPool pool;
  const char* first_data;
  {
    auto lease = pool.acquire();
    lease->assign(4096, 'x');
    first_data = lease->data();
  }
  {
    // The freed buffer (with its capacity) comes back, cleared.
    auto lease = pool.acquire();
    EXPECT_TRUE(lease->empty());
    EXPECT_GE(lease->capacity(), 4096u);
    EXPECT_EQ(lease->data(), first_data);
  }
}

TEST(Codec, ProfileDecodeThroughput) {
  EXPECT_EQ(profile_decode_throughput(BlockCodecKind::kNone), 0.0);
  double bps = profile_decode_throughput(BlockCodecKind::kDeltaVarint);
  // Any real machine decodes varints faster than 1 MB/s and slower than 1 TB/s.
  EXPECT_GT(bps, 1e6);
  EXPECT_LT(bps, 1e12);
}

// --- Signature false-positive rate ---------------------------------------------

TEST(BlockSignatureTest, FalsePositiveRateStaysLow) {
  // 50 members in a 512-bit Bloom, one probe bit each: expected fill 1 -
  // e^(-50/512) ~ 9.3%, which is also the single-probe intersection FPR.
  // The rng is seeded, so the count is deterministic; 15% gives headroom
  // over the ~9.3% mean without masking a broken hash (which lands near
  // 100%).
  std::mt19937_64 rng(17);
  BlockSignature sig;
  std::vector<VertexId> members;
  for (int k = 0; k < 50; ++k) {
    VertexId v = static_cast<VertexId>(rng() % 1000000);
    members.push_back(v);
    signature_add(sig.src, v);
  }
  // Members always intersect (no false negatives, ever).
  for (VertexId v : members) {
    std::uint64_t probe[kSignatureWords] = {};
    signature_add(probe, v);
    EXPECT_TRUE(signature_intersects(sig.src, probe));
  }
  int false_positives = 0;
  for (int k = 0; k < 1000; ++k) {
    VertexId v = static_cast<VertexId>(1000000 + rng() % 1000000);
    std::uint64_t probe[kSignatureWords] = {};
    signature_add(probe, v);
    if (signature_intersects(sig.src, probe)) ++false_positives;
  }
  EXPECT_LT(false_positives, 150) << "FPR " << false_positives / 10.0 << "%";
}

// --- Store signatures + skip filter --------------------------------------------

/// Two-interval graph (p=2, 64 vertices split 32/32) where interval 1 only
/// feeds INTO interval 0: a chain inside interval 0 plus edges 32+k -> k.
/// BFS from vertex 0 never activates interval 1, yet in-block (1,0) is
/// non-empty — the canonical provably-skippable block.
EdgeList one_way_graph() {
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < 32; ++v) edges.push_back(Edge{v, v + 1});
  for (VertexId k = 0; k < 32; ++k) {
    edges.push_back(Edge{static_cast<VertexId>(32 + k), k});
  }
  return EdgeList(64, std::move(edges));
}

TEST(SkipFilterTest, SignaturesRoundTripThroughMeta) {
  EdgeList g = gen::rmat(8, 6.0, 31);
  ScratchDir dir("sig_rt");
  StoreOptions opts{4};
  auto built = DualBlockStore::build(g, dir.path(), opts);
  ASSERT_TRUE(built.meta().has_skip_filters);
  auto opened = DualBlockStore::open(dir.path());
  ASSERT_TRUE(opened.meta().has_skip_filters);
  ASSERT_EQ(opened.meta().block_signatures.size(), 16u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      const BlockSignature& a = built.meta().block_signature(i, j);
      const BlockSignature& b = opened.meta().block_signature(i, j);
      for (std::size_t w = 0; w < kSignatureWords; ++w) {
        EXPECT_EQ(a.src[w], b.src[w]);
        EXPECT_EQ(a.dst[w], b.dst[w]);
      }
    }
  }
}

TEST(SkipFilterTest, EmptyIntervalIsDeterministicSkip) {
  EdgeList g = one_way_graph();
  ScratchDir dir("skip_det");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{2});
  BlockSkipFilter filter(store.meta());
  ASSERT_TRUE(filter.available());
  // Frontier = {0}: interval 1's Bloom is all-zero, so every block with
  // sources in interval 1 tests negative — no false-positive caveat.
  Frontier f = Frontier::single(store.meta(), 0, store.out_degrees());
  filter.rebuild(f);
  EXPECT_TRUE(filter.may_have_active_source(0, 0));
  EXPECT_FALSE(filter.may_have_active_source(1, 0));
  EXPECT_FALSE(filter.may_have_active_source(1, 1));
  EXPECT_EQ(filter.rebuilds(), 1u);
}

TEST(SkipFilterTest, InactiveBlockIssuesZeroIo) {
  EdgeList g = one_way_graph();
  ScratchDir dir("skip_io");
  StoreOptions opts{2};
  opts.codec = BlockCodecKind::kDeltaVarint;
  auto store = DualBlockStore::build(g, dir.path(), opts);
  ASSERT_GT(store.meta().in_block(1, 0).edge_count, 0u);

  auto run_bfs = [&](bool skip) {
    obs::Heatmap::instance().start(store.meta().p());
    EngineOptions o;
    o.mode = UpdateMode::kCop;
    o.skip_filter = skip;
    Engine e(store, o);
    BfsProgram p{.source = 0};
    auto r = e.run(p, Frontier::single(store.meta(), 0, store.out_degrees()));
    obs::Heatmap::instance().stop();
    return r;
  };

  auto base = run_bfs(false);
  // Without the filter, COP streams the (1,0) in-block every iteration.
  EXPECT_FALSE(obs::Heatmap::instance().cell(obs::HeatDir::kIn, 1, 0).empty());

  auto skipped = run_bfs(true);
  // With it, blocks whose source interval has no active vertex issue ZERO
  // I/O: the (in,1,*) heat cells stay untouched.
  for (std::uint32_t j = 0; j < 2; ++j) {
    EXPECT_TRUE(obs::Heatmap::instance().cell(obs::HeatDir::kIn, 1, j).empty())
        << "in-block (1," << j << ") saw I/O despite an inactive interval";
  }
  obs::Heatmap::instance().clear();

  EXPECT_EQ(skipped.values, base.values);
  EXPECT_GT(skipped.stats.codec.blocks_skipped, 0u);
  EXPECT_GT(skipped.stats.codec.skipped_bytes, 0u);
  EXPECT_GT(skipped.stats.codec.skip_filter_rebuilds, 0u);
  EXPECT_LT(skipped.stats.total_io.total_bytes(),
            base.stats.total_io.total_bytes());
}

TEST(SkipFilterTest, EngineResultsMatchReferenceAcrossModes) {
  EdgeList g = gen::rmat(9, 7.0, 41).symmetrized();
  ScratchDir dir("skip_ref");
  StoreOptions opts{4};
  opts.codec = BlockCodecKind::kDeltaVarint;
  auto store = DualBlockStore::build(g, dir.path(), opts);
  auto want = ref::bfs_levels(g, 0);
  for (UpdateMode mode :
       {UpdateMode::kRop, UpdateMode::kCop, UpdateMode::kHybrid}) {
    EngineOptions o;
    o.mode = mode;
    o.skip_filter = true;
    Engine e(store, o);
    BfsProgram p{.source = 0};
    auto r = e.run(p, Frontier::single(store.meta(), 0, store.out_degrees()));
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(r.values[v], want[v]) << to_string(mode) << " vertex " << v;
    }
  }
}

TEST(SkipFilterTest, RequiresStoreSignatures) {
  EdgeList g = gen::chain(16);
  ScratchDir dir("skip_nosig");
  StoreOptions opts{2};
  opts.skip_filters = false;
  auto store = DualBlockStore::build(g, dir.path(), opts);
  ASSERT_FALSE(store.meta().has_skip_filters);
  EngineOptions o;
  o.skip_filter = true;
  EXPECT_THROW(Engine(store, o), DataError);
}

}  // namespace
}  // namespace husg
