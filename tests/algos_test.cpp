// Program-level unit tests: the update/gather/apply callbacks in isolation.
#include <gtest/gtest.h>

#include "algos/bfs.hpp"
#include "algos/pagerank.hpp"
#include "algos/pagerank_delta.hpp"
#include "algos/sssp.hpp"
#include "algos/wcc.hpp"

namespace husg {
namespace {

ProgramContext make_ctx(const std::vector<VertexId>& out,
                        const std::vector<VertexId>& in) {
  return ProgramContext{std::span<const VertexId>(out),
                        std::span<const VertexId>(in)};
}

TEST(BfsProgramTest, UpdateSemantics) {
  BfsProgram p{.source = 2};
  auto ctx = make_ctx({}, {});
  EXPECT_EQ(p.initial(ctx, 2), 0u);
  EXPECT_EQ(p.initial(ctx, 0), BfsProgram::kUnreached);

  BfsProgram::Value dst = BfsProgram::kUnreached;
  EXPECT_TRUE(p.update(ctx, 0, 2, dst, 3, 1.0f));
  EXPECT_EQ(dst, 1u);
  // Worse candidate rejected.
  EXPECT_FALSE(p.update(ctx, 5, 0, dst, 3, 1.0f));
  EXPECT_EQ(dst, 1u);
  // Unreached source pushes nothing (no overflow wraparound).
  EXPECT_FALSE(p.update(ctx, BfsProgram::kUnreached, 0, dst, 3, 1.0f));
}

TEST(WccProgramTest, MinPropagation) {
  WccProgram p;
  auto ctx = make_ctx({}, {});
  EXPECT_EQ(p.initial(ctx, 7), 7u);
  WccProgram::Value dst = 5;
  EXPECT_TRUE(p.update(ctx, 3, 0, dst, 0, 1.0f));
  EXPECT_EQ(dst, 3u);
  EXPECT_FALSE(p.update(ctx, 4, 0, dst, 0, 1.0f));
  // Idempotent: re-applying is a no-op.
  EXPECT_FALSE(p.update(ctx, 3, 0, dst, 0, 1.0f));
}

TEST(SsspProgramTest, WeightedRelaxation) {
  SsspProgram p{.source = 0};
  auto ctx = make_ctx({}, {});
  EXPECT_EQ(p.initial(ctx, 0), 0.0f);
  EXPECT_TRUE(std::isinf(p.initial(ctx, 1)));
  SsspProgram::Value dst = 10.0f;
  EXPECT_TRUE(p.update(ctx, 2.0f, 0, dst, 1, 3.5f));
  EXPECT_FLOAT_EQ(dst, 5.5f);
  EXPECT_FALSE(p.update(ctx, 2.0f, 0, dst, 1, 4.0f));
  EXPECT_FALSE(
      p.update(ctx, SsspProgram::kUnreached, 0, dst, 1, 1.0f));
}

TEST(PageRankProgramTest, GatherApply) {
  PageRankProgram p;
  std::vector<VertexId> outdeg = {4, 2};
  auto ctx = make_ctx(outdeg, {});
  float acc = p.gather_zero(ctx, 0);
  p.gather(ctx, acc, 1.0f, 0, 1.0f);  // 1.0 / 4
  p.gather(ctx, acc, 2.0f, 1, 1.0f);  // 2.0 / 2
  EXPECT_FLOAT_EQ(acc, 1.25f);
  float val = acc;
  bool active = p.apply(ctx, 0, val, 1.0f);
  EXPECT_FLOAT_EQ(val, 0.15f + 0.85f * 1.25f);
  EXPECT_TRUE(active);  // tolerance 0 keeps everything active
}

TEST(PageRankProgramTest, ToleranceDeactivates) {
  PageRankProgram p;
  p.tolerance = 0.01f;
  auto ctx = make_ctx({}, {});
  // acc chosen so the new value equals the previous one exactly.
  float acc = (1.0f - 0.15f) / 0.85f;
  EXPECT_FALSE(p.apply(ctx, 0, acc, 1.0f));
}

TEST(PageRankDeltaProgramTest, ResidualFlow) {
  PageRankDeltaProgram p;
  std::vector<VertexId> outdeg = {2};
  auto ctx = make_ctx(outdeg, {});
  auto init = p.initial(ctx, 0);
  EXPECT_FLOAT_EQ(init.rank, 0.0f);
  EXPECT_FLOAT_EQ(init.residual, 0.15f);

  PageRankDeltaValue src{0.0f, 0.4f};
  PageRankDeltaValue dst{0.0f, 0.0f};
  bool activated = p.update(ctx, src, 0, dst, 1, 1.0f);
  EXPECT_FLOAT_EQ(dst.residual, 0.85f * 0.4f / 2.0f);  // 0.17 > epsilon
  EXPECT_TRUE(activated);

  // on_processed consumes exactly the residual that was pushed.
  PageRankDeltaValue val{1.0f, 0.5f};
  PageRankDeltaValue prev{1.0f, 0.3f};
  p.on_processed(ctx, 0, val, prev);
  EXPECT_FLOAT_EQ(val.rank, 1.3f);
  EXPECT_FLOAT_EQ(val.residual, 0.2f);
}

TEST(PageRankDeltaProgramTest, ZeroDegreeSourcePushesNothing) {
  PageRankDeltaProgram p;
  std::vector<VertexId> outdeg = {0};
  auto ctx = make_ctx(outdeg, {});
  PageRankDeltaValue src{0.0f, 1.0f};
  PageRankDeltaValue dst{0.0f, 0.0f};
  EXPECT_FALSE(p.update(ctx, src, 0, dst, 1, 1.0f));
  EXPECT_FLOAT_EQ(dst.residual, 0.0f);
}

TEST(ProgramTraits, ConceptsHold) {
  static_assert(MonotoneProgram<BfsProgram>);
  static_assert(MonotoneProgram<WccProgram>);
  static_assert(MonotoneProgram<SsspProgram>);
  static_assert(MonotoneProgram<PageRankDeltaProgram>);
  static_assert(AccumulatingProgram<PageRankProgram>);
  static_assert(!MonotoneProgram<PageRankProgram>);
  static_assert(VertexProgram<BfsProgram> && VertexProgram<PageRankProgram>);
  SUCCEED();
}

}  // namespace
}  // namespace husg
